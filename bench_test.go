package intellisphere

// Benchmarks regenerate every table and figure of the paper's evaluation
// (Section 7) plus the design-choice ablations. Each benchmark reports the
// experiment's headline metrics through b.ReportMetric so a -bench run
// doubles as a results table:
//
//	go test -bench=. -benchmem
//
// Benchmarks run the Quick experiment configuration (reduced workloads,
// identical shapes); cmd/experiments -full reproduces the paper-scale run.

import (
	"strconv"
	"testing"

	"intellisphere/internal/experiments"
)

func benchEnv(b *testing.B) *experiments.Env {
	b.Helper()
	env, err := experiments.NewEnv(experiments.Quick())
	if err != nil {
		b.Fatalf("NewEnv: %v", err)
	}
	return env
}

// BenchmarkFig07ReadDFS regenerates Figure 7: the ReadDFS sub-operator's
// per-record flatness across record counts and its fitted linear model
// (paper: y = 0.0041x + 0.6323).
func BenchmarkFig07ReadDFS(b *testing.B) {
	env := benchEnv(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig7(env)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Model.Slope, "slope_us_per_B")
		b.ReportMetric(res.Model.Intercept, "intercept_us")
		b.ReportMetric(res.Model.R2, "R2")
	}
}

// BenchmarkFig11AggLogicalOp regenerates Figure 11: aggregation logical-op
// training cost, NN convergence, and NN-vs-linear-regression accuracy.
func BenchmarkFig11AggLogicalOp(b *testing.B) {
	env := benchEnv(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig11(env)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.TotalTrainSec/3600, "train_hours")
		b.ReportMetric(res.NNLine.R2, "nn_R2")
		b.ReportMetric(res.LinRegLine.R2, "linreg_R2")
		b.ReportMetric(res.NNRMSEPct, "nn_rmse_pct")
	}
}

// BenchmarkFig12JoinLogicalOp regenerates Figure 12: join logical-op
// training cost and accuracy (the NN-vs-linreg gap is the paper's point).
func BenchmarkFig12JoinLogicalOp(b *testing.B) {
	env := benchEnv(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig12(env)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.TotalTrainSec/3600, "train_hours")
		b.ReportMetric(res.NNLine.R2, "nn_R2")
		b.ReportMetric(res.LinRegLine.R2, "linreg_R2")
	}
}

// BenchmarkFig13SubOps regenerates Figure 13: sub-operator probe training,
// the learned per-record models, and the composed merge-join formula's
// accuracy (paper: slope 1.578, R² 0.929 — slight overestimation).
func BenchmarkFig13SubOps(b *testing.B) {
	env := benchEnv(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig13(env)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Report.TotalCount), "probe_queries")
		b.ReportMetric(res.Report.TotalSec/60, "train_minutes")
		b.ReportMetric(res.MergeJoinLine.Slope, "mergejoin_slope")
		b.ReportMetric(res.MergeJoinLine.R2, "mergejoin_R2")
	}
}

// BenchmarkFig14OutOfRange regenerates Figure 14: out-of-range prediction
// with sub-op, raw NN, NN+online-remedy, and NN+offline-tuning.
func BenchmarkFig14OutOfRange(b *testing.B) {
	env := benchEnv(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig14(env)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.SubOpPct, "subop_rmse_pct")
		b.ReportMetric(res.NNPct, "nn_rmse_pct")
		b.ReportMetric(res.RemedyPct, "remedy_rmse_pct")
		b.ReportMetric(res.TunedPct, "tuned_rmse_pct")
	}
}

// BenchmarkTable1AlphaAdaptation regenerates Table 1: the α auto-adjustment
// across five batches of nine out-of-range queries.
func BenchmarkTable1AlphaAdaptation(b *testing.B) {
	env := benchEnv(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTable1(env)
		if err != nil {
			b.Fatal(err)
		}
		first, last := res.Rows[0], res.Rows[len(res.Rows)-1]
		b.ReportMetric(last.Alpha, "final_alpha")
		b.ReportMetric(first.RMSEPct, "batch1_rmse_pct")
		b.ReportMetric(last.RMSEPct, "batch5_rmse_pct")
	}
}

// BenchmarkAblationLogOutput quantifies the log-space-target design choice.
func BenchmarkAblationLogOutput(b *testing.B) {
	env := benchEnv(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunLogOutputAblation(env)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.RawMedRelErr, "raw_med_rel_err")
		b.ReportMetric(res.LogMedRelErr, "log_med_rel_err")
	}
}

// BenchmarkAblationAlphaPolicy compares fixed α = 0.5 with the adaptive
// re-fit.
func BenchmarkAblationAlphaPolicy(b *testing.B) {
	env := benchEnv(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunAlphaAblation(env)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.FixedRMSEPct, "fixed_rmse_pct")
		b.ReportMetric(res.AdaptiveRMSEPct, "adaptive_rmse_pct")
	}
}

// BenchmarkAblationChoicePolicy compares the worst/average/in-house
// policies on ambiguous joins.
func BenchmarkAblationChoicePolicy(b *testing.B) {
	env := benchEnv(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunPolicyAblation(env)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.WorstPct, "worst_rmse_pct")
		b.ReportMetric(res.AvgPct, "avg_rmse_pct")
		b.ReportMetric(res.InHousePct, "inhouse_rmse_pct")
	}
}

// BenchmarkAblationNeighborK sweeps the online remedy's neighborhood size.
func BenchmarkAblationNeighborK(b *testing.B) {
	env := benchEnv(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunNeighborKAblation(env, []int{4, 12, 24})
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			b.ReportMetric(row.RMSEPct, "k"+strconv.Itoa(row.K)+"_rmse_pct")
		}
	}
}

// BenchmarkAblationTopology compares the cross-validated topology search
// with the fixed (2d, d) default.
func BenchmarkAblationTopology(b *testing.B) {
	cfg := experiments.Quick()
	cfg.NNIterations = 200
	env, err := experiments.NewEnv(cfg)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTopologyAblation(env)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.FixedRMSEPct, "fixed_rmse_pct")
		b.ReportMetric(res.BestRMSEPct, "searched_rmse_pct")
		b.ReportMetric(float64(res.TopologiesTried), "topologies")
	}
}

// BenchmarkTrainingSizeCurve traces join-model quality against remote
// training spend — the economics behind the hybrid costing profile.
func BenchmarkTrainingSizeCurve(b *testing.B) {
	env := benchEnv(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTrainingSizeCurve(env, []float64{0.1, 1.0})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Points[0].RMSEPct, "rmse_pct_at_10pct")
		b.ReportMetric(res.Points[len(res.Points)-1].RMSEPct, "rmse_pct_at_100pct")
	}
}
