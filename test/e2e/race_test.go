//go:build race

package e2e

// raceEnabled makes the soak build the server binary with -race too, so a
// race-instrumented harness exercises a race-instrumented server.
const raceEnabled = true
