// Package e2e black-box tests the real serve binary. The crash-recovery
// soak here is the durability subsystem's acceptance test: a seeded stream
// of randomized actions — queries, batches, catalog registrations,
// materializations, link overrides, fault pulses, model tunes and rollbacks
// — interleaved with SIGKILL+restart cycles against the same data
// directory. After every recovery it asserts that every acknowledged
// mutation survived, that /explain answers byte-identical plans to both the
// pre-kill process and a never-killed in-process reference engine fed the
// same mutations, that circuit breakers recover after fault pulses, and
// that the server process does not leak goroutines between kills.
//
//	go test ./test/e2e                                   # short seeded soak (CI)
//	go test -race ./test/e2e -chaos.actions=2000 -timeout 30m   # long soak
//	go test ./test/e2e -chaos.seed=7                     # different action stream
package e2e

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/url"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"

	"intellisphere/internal/catalog"
	"intellisphere/internal/datagen"
	"intellisphere/internal/demo"
	"intellisphere/internal/engine"
	"intellisphere/internal/obs"
	"intellisphere/internal/querygrid"
)

var (
	chaosActions = flag.Int("chaos.actions", 200, "randomized actions to drive through the soak")
	chaosSeed    = flag.Int64("chaos.seed", 1, "action-stream seed (same seed, same soak)")
)

// demoSeed is the -seed both the server process and the in-process
// reference engine build from; identical seeds make their boot states
// bit-identical.
const demoSeed = 1

// flinkStatements exercise the blackbox logical-op remote: the aggregation
// the tuner smoke drifts plus a scan. They feed flink's execution log (so
// tune actions have material) and join the byte-compare probe set.
var flinkStatements = []string{
	"SELECT a10, SUM(a1) FROM t80000000_500 GROUP BY a10",
	"SELECT a1 FROM t500000_250 WHERE a1 < 100000",
}

// probe is one statement in the byte-compare set. flink-touching probes
// leave the reference comparison once a server-side tune or rollback
// mutates flink's models (the reference never tunes — tuning consumes the
// server's own execution log), but they always stay in the pre-kill vs
// post-recovery self-comparison.
type probe struct {
	sql   string
	flink bool
}

// tableSpec records one acknowledged catalog registration so recovery
// checks know what must survive.
type tableSpec struct {
	name         string
	rows         int64
	width        int
	system       string
	materialized bool
}

// soak owns the server process, the reference engine, and the mirrored
// mutation state.
type soak struct {
	t       *testing.T
	r       *rand.Rand
	bin     string
	dataDir string
	addr    string
	base    string
	logPath string
	cmd     *exec.Cmd
	exited  chan struct{}

	ref           *engine.Engine
	probes        []probe
	specs         []tableSpec
	links         map[string]querygrid.LinkConfig
	flinkDiverged bool
	nextTable     int
	baseGoroutine int
}

// serverArgs are the flags every server incarnation starts with: the same
// deterministic federation seed, the durable data directory, the blackbox
// tunable remote, pprof (for the goroutine-leak check), a tight breaker
// so fault pulses cycle closed → open → closed quickly, and a wide-event
// log inside the data directory so every SIGKILL also tears the NDJSON
// sink mid-write (the torn-tail check below).
func (s *soak) serverArgs() []string {
	return []string{
		"-addr", s.addr,
		"-data-dir", s.dataDir,
		"-seed", strconv.Itoa(demoSeed),
		"-logical-remote",
		"-pprof",
		"-breaker-failures", "2",
		"-breaker-open-timeout", "200ms",
		"-event-log", s.eventLog(),
	}
}

func (s *soak) eventLog() string {
	return filepath.Join(s.dataDir, "events.ndjson")
}

func goCmd() string {
	if g := os.Getenv("GO"); g != "" {
		return g
	}
	return "go"
}

// buildServe compiles the real binary (with -race when the harness itself
// is race-instrumented, so the soak exercises the same build).
func buildServe(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "serve")
	args := []string{"build"}
	if raceEnabled {
		args = append(args, "-race")
	}
	args = append(args, "-o", bin, "./cmd/serve")
	cmd := exec.Command(goCmd(), args...)
	cmd.Dir = "../.."
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("build serve: %v\n%s", err, out)
	}
	return bin
}

func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// start launches a server incarnation and waits for it to serve.
func (s *soak) start() {
	s.t.Helper()
	f, err := os.OpenFile(s.logPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		s.t.Fatal(err)
	}
	cmd := exec.Command(s.bin, s.serverArgs()...)
	cmd.Stdout, cmd.Stderr = f, f
	if err := cmd.Start(); err != nil {
		f.Close()
		s.t.Fatalf("start serve: %v", err)
	}
	s.cmd = cmd
	exited := make(chan struct{})
	s.exited = exited
	go func() {
		cmd.Wait()
		f.Close()
		close(exited)
	}()
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get(s.base + "/profiles")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		if time.Now().After(deadline) {
			s.fatalf("server did not come up")
		}
		select {
		case <-exited:
			s.fatalf("server exited during startup")
		case <-time.After(100 * time.Millisecond):
		}
	}
}

// kill SIGKILLs the server — the crash under test.
func (s *soak) kill() {
	s.t.Helper()
	if err := s.cmd.Process.Kill(); err != nil {
		s.t.Fatalf("kill: %v", err)
	}
	<-s.exited
}

// fatalf fails the test with the tail of the server log attached.
func (s *soak) fatalf(format string, args ...any) {
	s.t.Helper()
	tail := ""
	if data, err := os.ReadFile(s.logPath); err == nil {
		lines := strings.Split(strings.TrimSpace(string(data)), "\n")
		if len(lines) > 40 {
			lines = lines[len(lines)-40:]
		}
		tail = "\nserver log tail:\n" + strings.Join(lines, "\n")
	}
	s.t.Fatalf(format+tail, args...)
}

func (s *soak) get(path string, out any) *http.Response {
	s.t.Helper()
	resp, err := http.Get(s.base + path)
	if err != nil {
		s.fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			s.fatalf("GET %s: decode: %v", path, err)
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return resp
}

// post sends a JSON body and returns (status, response bytes).
func (s *soak) post(path, body string) (int, []byte) {
	s.t.Helper()
	resp, err := http.Post(s.base+path, "application/json", strings.NewReader(body))
	if err != nil {
		s.fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, data
}

// explain fetches the server's rendered plan for one statement.
func (s *soak) explain(sql string) string {
	s.t.Helper()
	var out struct {
		Explain string `json:"explain"`
	}
	resp := s.get("/explain?q="+url.QueryEscape(sql), &out)
	if resp.StatusCode != http.StatusOK {
		s.fatalf("explain %q: status %d", sql, resp.StatusCode)
	}
	return out.Explain
}

// goroutines reads the server's live goroutine count from pprof.
func (s *soak) goroutines() int {
	s.t.Helper()
	resp, err := http.Get(s.base + "/debug/pprof/goroutine?debug=1")
	if err != nil {
		s.fatalf("pprof goroutine: %v", err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	var n int
	if _, err := fmt.Sscanf(string(data), "goroutine profile: total %d", &n); err != nil {
		s.fatalf("parse goroutine profile: %v\n%s", err, data)
	}
	return n
}

// soakTable builds the deterministic table both the server mutation and the
// reference registration share: datagen is a pure function of (rows, width,
// system), renamed to a unique soak name.
func soakTable(t *testing.T, name string, rows int64, width int, system string) *catalog.Table {
	t.Helper()
	tb, err := datagen.Table(rows, width, system)
	if err != nil {
		t.Fatal(err)
	}
	tb.Name = name
	return tb
}

// actRegisterTable registers a fresh table through POST /catalog (half the
// time materializing it in the same request) and mirrors the acknowledged
// mutation onto the reference engine.
func (s *soak) actRegisterTable() {
	s.t.Helper()
	s.nextTable++
	name := fmt.Sprintf("soak_t%d", s.nextTable)
	rows := int64(2000 + s.r.Intn(28000))
	width := []int{40, 100, 250}[s.r.Intn(3)]
	system := []string{"hive", "spark", "presto"}[s.r.Intn(3)]
	mat := s.r.Intn(2) == 0

	tb := soakTable(s.t, name, rows, width, system)
	tbJSON, err := json.Marshal(tb)
	if err != nil {
		s.t.Fatal(err)
	}
	body := fmt.Sprintf(`{"table": %s}`, tbJSON)
	if mat {
		body = fmt.Sprintf(`{"table": %s, "materialize": %q}`, tbJSON, name)
	}
	status, resp := s.post("/catalog", body)
	if status != http.StatusOK {
		s.fatalf("register %s: status %d: %s", name, status, resp)
	}
	if err := s.ref.RegisterTable(soakTable(s.t, name, rows, width, system)); err != nil {
		s.t.Fatalf("reference register %s: %v", name, err)
	}
	if mat {
		if err := s.ref.Materialize(name); err != nil {
			s.t.Fatalf("reference materialize %s: %v", name, err)
		}
	}
	s.specs = append(s.specs, tableSpec{name: name, rows: rows, width: width, system: system, materialized: mat})
	s.probes = append(s.probes, probe{
		sql: fmt.Sprintf("SELECT %s.a1 FROM %s JOIN t100000_100 ON %s.a1 = t100000_100.a1", name, name, name),
	})
}

// actSetLink installs a random QueryGrid override and mirrors it.
func (s *soak) actSetLink() {
	s.t.Helper()
	system := []string{"hive", "spark", "presto", "flink"}[s.r.Intn(4)]
	cfg := querygrid.LinkConfig{
		BandwidthBytesPerSec: 1e7 + s.r.Float64()*9e8,
		LatencySec:           s.r.Float64() * 0.5,
		PerRowOverheadUS:     s.r.Float64() * 5,
	}
	body, err := json.Marshal(map[string]any{"system": system, "link": cfg})
	if err != nil {
		s.t.Fatal(err)
	}
	status, resp := s.post("/links", string(body))
	if status != http.StatusOK {
		s.fatalf("set link %s: status %d: %s", system, status, resp)
	}
	if err := s.ref.SetLink(system, cfg); err != nil {
		s.t.Fatalf("reference set link %s: %v", system, err)
	}
	s.links[system] = cfg
}

// actQuery runs one random probe through /query; execution results are not
// byte-compared (actuals are wall-clock), only that the server answers.
func (s *soak) actQuery() {
	s.t.Helper()
	sql := s.probes[s.r.Intn(len(s.probes))].sql
	resp, err := http.Get(s.base + "/query?q=" + url.QueryEscape(sql))
	if err != nil {
		s.fatalf("query: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}

// actBatch runs three random probes through /query/batch.
func (s *soak) actBatch() {
	s.t.Helper()
	sqls := make([]string, 3)
	for i := range sqls {
		sqls[i] = s.probes[s.r.Intn(len(s.probes))].sql
	}
	body, _ := json.Marshal(sqls)
	status, resp := s.post("/query/batch", string(body))
	if status != http.StatusOK {
		s.fatalf("batch: status %d: %s", status, resp)
	}
}

// actExplainCompare byte-compares one probe against the reference engine
// (self-comparison against the pre-kill process happens at kill points).
func (s *soak) actExplainCompare() {
	s.t.Helper()
	p := s.probes[s.r.Intn(len(s.probes))]
	if p.flink && s.flinkDiverged {
		return
	}
	want, err := s.ref.Explain(p.sql)
	if err != nil {
		s.t.Fatalf("reference explain %q: %v", p.sql, err)
	}
	if got := s.explain(p.sql); got != want {
		s.t.Fatalf("explain %q diverged from reference:\nserver:\n%s\nreference:\n%s", p.sql, got, want)
	}
}

// actFaultPulse forces an outage on hive, drives queries until the breaker
// opens (health 503), lifts the outage, and drives queries until the
// breaker closes again (health 200) — the breakers-recover assertion.
func (s *soak) actFaultPulse() {
	s.t.Helper()
	if status, resp := s.post("/faults", `{"system": "hive", "outage": true}`); status != http.StatusOK {
		s.fatalf("force outage: status %d: %s", status, resp)
	}
	hiveSQL := "SELECT a2, COUNT(*) FROM t1000000_100 GROUP BY a2"
	opened := false
	for i := 0; i < 50; i++ {
		resp, err := http.Get(s.base + "/query?q=" + url.QueryEscape(hiveSQL))
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		if s.get("/health", nil).StatusCode == http.StatusServiceUnavailable {
			opened = true
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if !opened {
		s.fatalf("breaker never opened under forced outage")
	}
	if status, resp := s.post("/faults", `{"system": "hive", "outage": false}`); status != http.StatusOK {
		s.fatalf("lift outage: status %d: %s", status, resp)
	}
	for i := 0; i < 100; i++ {
		resp, err := http.Get(s.base + "/query?q=" + url.QueryEscape(hiveSQL))
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		if s.get("/health", nil).StatusCode == http.StatusOK {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	s.fatalf("breaker never recovered after outage lifted")
}

// actModel tunes or rolls back flink's models through POST /models. A 400
// is a legitimate verdict (log too small, nothing to roll back); a 200 that
// changed the live model retires flink probes from the reference
// comparison — the reference cannot reproduce a tune built from the
// server's own execution log.
func (s *soak) actModel() {
	s.t.Helper()
	if s.r.Intn(2) == 0 {
		// Feed flink's execution log first — tuning consumes it, and the
		// random query mix alone rarely leaves min_log records pending.
		for i := 0; i < 6; i++ {
			resp, err := http.Get(s.base + "/query?q=" + url.QueryEscape(flinkStatements[0]))
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}
		status, resp := s.post("/models",
			`{"action": "force-tune", "system": "flink", "holdout": 2, "min_log": 4, "train_iterations": 120}`)
		switch status {
		case http.StatusOK:
			var out struct {
				Promoted bool `json:"promoted"`
			}
			if err := json.Unmarshal(resp, &out); err != nil {
				s.fatalf("decode tune response: %v: %s", err, resp)
			}
			if out.Promoted {
				s.flinkDiverged = true
			}
		case http.StatusBadRequest:
		default:
			s.fatalf("tune: status %d: %s", status, resp)
		}
		return
	}
	status, resp := s.post("/models", `{"action": "rollback", "system": "flink"}`)
	switch status {
	case http.StatusOK:
		s.flinkDiverged = true
	case http.StatusBadRequest:
	default:
		s.fatalf("rollback: status %d: %s", status, resp)
	}
}

// step runs one weighted random action.
func (s *soak) step() {
	switch n := s.r.Intn(100); {
	case n < 35:
		s.actQuery()
	case n < 55:
		s.actExplainCompare()
	case n < 70:
		s.actRegisterTable()
	case n < 80:
		s.actSetLink()
	case n < 88:
		s.actBatch()
	case n < 94:
		s.actFaultPulse()
	default:
		s.actModel()
	}
}

// modelLineage is the crash-stable slice of GET /models: version IDs,
// origins, and live flags per system (timestamps are re-stamped on replay,
// so they are excluded by construction).
type modelLineage map[string][]string

func (s *soak) lineage() modelLineage {
	s.t.Helper()
	var out struct {
		Systems []struct {
			System   string `json:"system"`
			Versions []struct {
				ID     int    `json:"id"`
				Origin string `json:"origin"`
				Live   bool   `json:"live"`
			} `json:"versions"`
		} `json:"systems"`
	}
	s.get("/models", &out)
	lin := modelLineage{}
	for _, sys := range out.Systems {
		for _, v := range sys.Versions {
			lin[sys.System] = append(lin[sys.System], fmt.Sprintf("%d/%s/%v", v.ID, v.Origin, v.Live))
		}
	}
	return lin
}

// checkRecovery is the post-restart invariant sweep: acked catalog and link
// mutations present, Explain byte-identical to both the pre-kill capture
// and the reference (non-diverged probes), model lineage intact.
func (s *soak) checkRecovery(preKill map[string]string, preLineage modelLineage) {
	s.t.Helper()
	var health struct {
		Status     string `json:"status"`
		Durability *struct {
			Recovery struct {
				Restored bool `json:"restored"`
				Replayed int  `json:"replayed"`
			} `json:"recovery"`
		} `json:"durability"`
	}
	if resp := s.get("/health", &health); resp.StatusCode != http.StatusOK {
		s.fatalf("post-recovery health: %d (%+v)", resp.StatusCode, health)
	}
	if health.Durability == nil {
		s.fatalf("recovered server reports no durability block")
	}

	for _, p := range s.probes {
		got := s.explain(p.sql)
		if want := preKill[p.sql]; got != want {
			s.t.Fatalf("explain %q diverged across SIGKILL:\npre-kill:\n%s\nrecovered:\n%s", p.sql, want, got)
		}
		if !p.flink || !s.flinkDiverged {
			want, err := s.ref.Explain(p.sql)
			if err != nil {
				s.t.Fatalf("reference explain %q: %v", p.sql, err)
			}
			if got != want {
				s.t.Fatalf("recovered explain %q diverged from reference:\nserver:\n%s\nreference:\n%s", p.sql, got, want)
			}
		}
	}

	var entries []struct {
		Table struct {
			Name string `json:"name"`
		} `json:"table"`
		Materialized bool `json:"materialized"`
	}
	s.get("/catalog", &entries)
	mat := map[string]bool{}
	have := map[string]bool{}
	for _, e := range entries {
		have[e.Table.Name] = true
		mat[e.Table.Name] = e.Materialized
	}
	for _, spec := range s.specs {
		if !have[spec.name] {
			s.fatalf("acked table %s lost across SIGKILL", spec.name)
		}
		if mat[spec.name] != spec.materialized {
			s.fatalf("table %s materialization flag = %v, want %v", spec.name, mat[spec.name], spec.materialized)
		}
	}

	var links struct {
		Links map[string]querygrid.LinkConfig `json:"links"`
	}
	s.get("/links", &links)
	for system, want := range s.links {
		if got, ok := links.Links[system]; !ok || got != want {
			s.fatalf("acked link override on %s lost across SIGKILL: got %+v want %+v", system, links.Links[system], want)
		}
	}

	if got := s.lineage(); fmt.Sprint(got) != fmt.Sprint(preLineage) {
		s.t.Fatalf("model lineage diverged across SIGKILL:\npre-kill: %v\nrecovered: %v", preLineage, got)
	}

	s.checkEventLog()
}

// checkEventLog validates the wide-event NDJSON sink after a crash: the
// sink writes with no fsync, so SIGKILL may tear the final line mid-write,
// but every complete (newline-terminated) line must still parse as a wide
// event. At most one torn trailing fragment is tolerated — a torn line
// anywhere else means interleaved or corrupted writes.
func (s *soak) checkEventLog() {
	s.t.Helper()
	data, err := os.ReadFile(s.eventLog())
	if err != nil {
		s.fatalf("read event log: %v", err)
	}
	lines := strings.Split(string(data), "\n")
	// A well-formed file ends with "\n", leaving one empty trailing element;
	// anything non-empty there is the (single permitted) torn fragment.
	complete, tail := lines[:len(lines)-1], lines[len(lines)-1]
	parsed := 0
	for i, line := range complete {
		var ev obs.Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			s.fatalf("event log line %d is torn or corrupt mid-file: %v: %q", i+1, err, line)
		}
		if ev.ID == 0 || ev.Kind == "" {
			s.fatalf("event log line %d parsed but is not a wide event: %q", i+1, line)
		}
		parsed++
	}
	if tail != "" {
		var ev obs.Event
		if json.Unmarshal([]byte(tail), &ev) == nil && ev.ID != 0 {
			parsed++ // the kill landed exactly between the event and its newline
		}
	}
	if parsed == 0 {
		s.fatalf("event log has no parseable events after %d queries", len(s.probes))
	}
}

// TestCrashRecoverySoak is the seeded black-box soak. See the package
// comment for invocation variants.
func TestCrashRecoverySoak(t *testing.T) {
	if testing.Short() {
		t.Skip("crash soak builds and repeatedly restarts the real binary")
	}
	ref, err := demo.BuildFederation(demo.Config{Seed: demoSeed, LogicalRemote: true})
	if err != nil {
		t.Fatal(err)
	}
	s := &soak{
		t:       t,
		r:       rand.New(rand.NewSource(*chaosSeed)),
		bin:     buildServe(t),
		dataDir: t.TempDir(),
		addr:    freeAddr(t),
		logPath: filepath.Join(t.TempDir(), "serve.log"),
		ref:     ref.Engine,
		links:   map[string]querygrid.LinkConfig{},
	}
	s.base = "http://" + s.addr
	for _, sql := range demo.Statements() {
		s.probes = append(s.probes, probe{sql: sql})
	}
	for _, sql := range flinkStatements {
		s.probes = append(s.probes, probe{sql: sql, flink: true})
	}
	s.start()
	defer func() {
		if s.cmd != nil && s.cmd.Process != nil {
			s.cmd.Process.Kill()
		}
	}()
	s.baseGoroutine = s.goroutines()

	actions := *chaosActions
	cycles := actions / 40
	if cycles < 3 {
		cycles = 3
	}
	perCycle := actions / cycles
	t.Logf("soak: %d actions, %d SIGKILL cycles, seed %d", actions, cycles, *chaosSeed)

	done := 0
	for cycle := 0; cycle < cycles; cycle++ {
		for i := 0; i < perCycle && done < actions; i++ {
			s.step()
			done++
		}
		// Quiesce, then check the process has not grown its goroutine count
		// beyond transient slack (drainer, background snapshot, in-flight
		// HTTP) since this incarnation booted.
		time.Sleep(300 * time.Millisecond)
		if n := s.goroutines(); n > s.baseGoroutine+30 {
			s.fatalf("goroutine leak: %d now vs %d at boot", n, s.baseGoroutine)
		}

		preKill := map[string]string{}
		for _, p := range s.probes {
			preKill[p.sql] = s.explain(p.sql)
		}
		preLineage := s.lineage()

		// Half the kills land while a registration is in flight, so the WAL
		// tail is torn mid-mutation. The response is never received, so the
		// mutation is unacknowledged: the recovered server may or may not
		// have it (either is correct), and the name is burned so a later
		// registration cannot collide with a survivor.
		if s.r.Intn(2) == 0 {
			s.nextTable++
			name := fmt.Sprintf("soak_t%d", s.nextTable)
			tb := soakTable(t, name, 5000, 40, "hive")
			tbJSON, _ := json.Marshal(tb)
			go http.Post(s.base+"/catalog", "application/json",
				strings.NewReader(fmt.Sprintf(`{"table": %s}`, tbJSON)))
			time.Sleep(time.Duration(s.r.Intn(3)) * time.Millisecond)
		}
		s.kill()
		s.start()
		s.baseGoroutine = s.goroutines()
		s.checkRecovery(preKill, preLineage)
	}

	// Final cycle: graceful SIGTERM writes a shutdown snapshot; the next
	// boot must recover from it (restored, nothing to replay) and still
	// answer byte-identical plans.
	preKill := map[string]string{}
	for _, p := range s.probes {
		preKill[p.sql] = s.explain(p.sql)
	}
	preLineage := s.lineage()
	if err := s.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("SIGTERM: %v", err)
	}
	select {
	case <-s.exited:
	case <-time.After(30 * time.Second):
		s.fatalf("server did not exit on SIGTERM")
	}
	s.start()
	var health struct {
		Durability *struct {
			Recovery struct {
				Restored bool `json:"restored"`
				Replayed int  `json:"replayed"`
			} `json:"recovery"`
		} `json:"durability"`
	}
	s.get("/health", &health)
	if health.Durability == nil || !health.Durability.Recovery.Restored || health.Durability.Recovery.Replayed != 0 {
		s.fatalf("boot after SIGTERM did not recover from the shutdown snapshot: %+v", health.Durability)
	}
	s.checkRecovery(preKill, preLineage)
	t.Logf("soak done: %d actions, %d tables registered, flink diverged=%v", done, len(s.specs), s.flinkDiverged)
}
