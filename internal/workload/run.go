package workload

import (
	"fmt"

	"intellisphere/internal/parallel"
	"intellisphere/internal/plan"
	"intellisphere/internal/remote"
)

// RunResult captures the execution of a training workload on a remote
// system: the per-query dimension vectors and observed costs (the labeled
// training set of Section 3), plus the cumulative training time curve the
// paper plots in Figures 11(a) and 12(a).
type RunResult struct {
	X          [][]float64
	Y          []float64 // observed elapsed seconds per query
	Cumulative []float64 // running total of training time after each query
	TotalSec   float64
}

// sample is one executed training query: its dimension vector plus observed
// cost. Queries execute concurrently (the simulators are stateless, so each
// query's outcome is independent of execution order); the result vectors are
// then assembled serially in query order, making the RunResult identical to
// a sequential sweep.
type sample struct {
	dims []float64
	sec  float64
}

func collect(samples []sample) *RunResult {
	res := &RunResult{
		X:          make([][]float64, 0, len(samples)),
		Y:          make([]float64, 0, len(samples)),
		Cumulative: make([]float64, 0, len(samples)),
	}
	for _, s := range samples {
		res.X = append(res.X, s.dims)
		res.Y = append(res.Y, s.sec)
		res.TotalSec += s.sec
		res.Cumulative = append(res.Cumulative, res.TotalSec)
	}
	return res
}

// RunJoinSet executes every join training query on the remote system and
// labels it with the observed cost.
func RunJoinSet(sys remote.System, qs []JoinQuery) (*RunResult, error) {
	return RunJoinSetN(0, sys, qs)
}

// RunJoinSetN is RunJoinSet with an explicit worker bound (0 = process
// default) so callers can scope fan-out without mutating the global pool.
func RunJoinSetN(workers int, sys remote.System, qs []JoinQuery) (*RunResult, error) {
	if len(qs) == 0 {
		return nil, fmt.Errorf("workload: empty join training set")
	}
	samples, err := parallel.MapN(workers, len(qs), func(i int) (sample, error) {
		ex, err := sys.ExecuteJoin(qs[i].Spec)
		if err != nil {
			return sample{}, fmt.Errorf("workload: join query %d (%s): %w", i, qs[i].SQL(), err)
		}
		return sample{dims: qs[i].Spec.Dims(), sec: ex.ElapsedSec}, nil
	})
	if err != nil {
		return nil, err
	}
	return collect(samples), nil
}

// RunAggSet executes every aggregation training query on the remote system.
func RunAggSet(sys remote.System, qs []AggQuery) (*RunResult, error) {
	return RunAggSetN(0, sys, qs)
}

// RunAggSetN is RunAggSet with an explicit worker bound (0 = process
// default).
func RunAggSetN(workers int, sys remote.System, qs []AggQuery) (*RunResult, error) {
	if len(qs) == 0 {
		return nil, fmt.Errorf("workload: empty aggregation training set")
	}
	samples, err := parallel.MapN(workers, len(qs), func(i int) (sample, error) {
		ex, err := sys.ExecuteAgg(qs[i].Spec)
		if err != nil {
			return sample{}, fmt.Errorf("workload: agg query %d (%s): %w", i, qs[i].SQL(), err)
		}
		return sample{dims: qs[i].Spec.Dims(), sec: ex.ElapsedSec}, nil
	})
	if err != nil {
		return nil, err
	}
	return collect(samples), nil
}

// RunJoinSpecs executes raw join specs (the out-of-range suite) and returns
// the observed costs.
func RunJoinSpecs(sys remote.System, specs []plan.JoinSpec) ([]float64, error) {
	return parallel.Map(len(specs), func(i int) (float64, error) {
		ex, err := sys.ExecuteJoin(specs[i])
		if err != nil {
			return 0, fmt.Errorf("workload: join spec %d: %w", i, err)
		}
		return ex.ElapsedSec, nil
	})
}

// RunScanSet executes every scan training query on the remote system. The
// dimension vectors follow the scan model's four dimensions (input rows,
// input row size, output rows, output row size).
func RunScanSet(sys remote.System, qs []ScanQuery) (*RunResult, error) {
	return RunScanSetN(0, sys, qs)
}

// RunScanSetN is RunScanSet with an explicit worker bound (0 = process
// default).
func RunScanSetN(workers int, sys remote.System, qs []ScanQuery) (*RunResult, error) {
	if len(qs) == 0 {
		return nil, fmt.Errorf("workload: empty scan training set")
	}
	samples, err := parallel.MapN(workers, len(qs), func(i int) (sample, error) {
		ex, err := sys.ExecuteScan(qs[i].Spec)
		if err != nil {
			return sample{}, fmt.Errorf("workload: scan query %d (%s): %w", i, qs[i].SQL(), err)
		}
		spec := qs[i].Spec
		return sample{
			dims: []float64{spec.InputRows, spec.InputRowSize, spec.OutputRows(), spec.OutputRowSize},
			sec:  ex.ElapsedSec,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return collect(samples), nil
}
