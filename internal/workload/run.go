package workload

import (
	"fmt"

	"intellisphere/internal/plan"
	"intellisphere/internal/remote"
)

// RunResult captures the execution of a training workload on a remote
// system: the per-query dimension vectors and observed costs (the labeled
// training set of Section 3), plus the cumulative training time curve the
// paper plots in Figures 11(a) and 12(a).
type RunResult struct {
	X          [][]float64
	Y          []float64 // observed elapsed seconds per query
	Cumulative []float64 // running total of training time after each query
	TotalSec   float64
}

// RunJoinSet executes every join training query on the remote system and
// labels it with the observed cost.
func RunJoinSet(sys remote.System, qs []JoinQuery) (*RunResult, error) {
	if len(qs) == 0 {
		return nil, fmt.Errorf("workload: empty join training set")
	}
	res := &RunResult{}
	for i, q := range qs {
		ex, err := sys.ExecuteJoin(q.Spec)
		if err != nil {
			return nil, fmt.Errorf("workload: join query %d (%s): %w", i, q.SQL(), err)
		}
		res.X = append(res.X, q.Spec.Dims())
		res.Y = append(res.Y, ex.ElapsedSec)
		res.TotalSec += ex.ElapsedSec
		res.Cumulative = append(res.Cumulative, res.TotalSec)
	}
	return res, nil
}

// RunAggSet executes every aggregation training query on the remote system.
func RunAggSet(sys remote.System, qs []AggQuery) (*RunResult, error) {
	if len(qs) == 0 {
		return nil, fmt.Errorf("workload: empty aggregation training set")
	}
	res := &RunResult{}
	for i, q := range qs {
		ex, err := sys.ExecuteAgg(q.Spec)
		if err != nil {
			return nil, fmt.Errorf("workload: agg query %d (%s): %w", i, q.SQL(), err)
		}
		res.X = append(res.X, q.Spec.Dims())
		res.Y = append(res.Y, ex.ElapsedSec)
		res.TotalSec += ex.ElapsedSec
		res.Cumulative = append(res.Cumulative, res.TotalSec)
	}
	return res, nil
}

// RunJoinSpecs executes raw join specs (the out-of-range suite) and returns
// the observed costs.
func RunJoinSpecs(sys remote.System, specs []plan.JoinSpec) ([]float64, error) {
	out := make([]float64, 0, len(specs))
	for i, s := range specs {
		ex, err := sys.ExecuteJoin(s)
		if err != nil {
			return nil, fmt.Errorf("workload: join spec %d: %w", i, err)
		}
		out = append(out, ex.ElapsedSec)
	}
	return out, nil
}

// RunScanSet executes every scan training query on the remote system. The
// dimension vectors follow the scan model's four dimensions (input rows,
// input row size, output rows, output row size).
func RunScanSet(sys remote.System, qs []ScanQuery) (*RunResult, error) {
	if len(qs) == 0 {
		return nil, fmt.Errorf("workload: empty scan training set")
	}
	res := &RunResult{}
	for i, q := range qs {
		ex, err := sys.ExecuteScan(q.Spec)
		if err != nil {
			return nil, fmt.Errorf("workload: scan query %d (%s): %w", i, q.SQL(), err)
		}
		res.X = append(res.X, []float64{q.Spec.InputRows, q.Spec.InputRowSize, q.Spec.OutputRows(), q.Spec.OutputRowSize})
		res.Y = append(res.Y, ex.ElapsedSec)
		res.TotalSec += ex.ElapsedSec
		res.Cumulative = append(res.Cumulative, res.TotalSec)
	}
	return res, nil
}
