// Package workload builds the training query sets of the paper's evaluation
// (Figure 10): roughly 3 600 aggregation configurations (120 tables × 6
// shrink factors × 5 aggregate counts), about 4 000 join configurations
// (sampled table pairs × 4 output selectivities, joined on the unique a1
// columns with the z-predicate trick controlling output cardinality), and
// the 45-query out-of-range suite used by Figure 14 and Table 1.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"intellisphere/internal/catalog"
	"intellisphere/internal/plan"
)

// AggQuery is one aggregation training configuration.
type AggQuery struct {
	Table    *catalog.Table
	GroupCol string // a_i column; i is the shrink factor
	NumAggs  int    // number of SUM() aggregates, 1..5
	Spec     plan.AggSpec
}

// SQL renders the query the way it would be submitted to the remote system.
func (q AggQuery) SQL() string {
	sums := ""
	for i := 0; i < q.NumAggs; i++ {
		sums += fmt.Sprintf(", SUM(a1+%d)", i)
	}
	return fmt.Sprintf("SELECT %s%s FROM %s GROUP BY %s", q.GroupCol, sums, q.Table.Name, q.GroupCol)
}

// aggKeyWidth is the group-key width and aggValWidth one SUM() output width.
const (
	aggKeyWidth = 4
	aggValWidth = 8
	maxAggs     = 5
)

// ShrinkColumns lists the grouping columns used for training (the a_i
// columns with i > 1, so every query actually shrinks its input).
func ShrinkColumns() []string {
	return []string{"a2", "a5", "a10", "a20", "a50", "a100"}
}

// AggTrainingSet builds the aggregation training configurations for the
// given tables: every table × shrink column × aggregate count.
func AggTrainingSet(tables []*catalog.Table) ([]AggQuery, error) {
	var out []AggQuery
	for _, t := range tables {
		for _, col := range ShrinkColumns() {
			ndv, err := t.NDV(col)
			if err != nil {
				return nil, fmt.Errorf("workload: %w", err)
			}
			if ndv < 1 {
				continue
			}
			for n := 1; n <= maxAggs; n++ {
				spec := plan.AggSpec{
					InputRows:     float64(t.Rows),
					InputRowSize:  float64(t.RowSize()),
					OutputRows:    ndv,
					OutputRowSize: aggKeyWidth + float64(n)*aggValWidth,
					NumAggregates: n,
				}
				if err := spec.Validate(); err != nil {
					return nil, fmt.Errorf("workload: agg on %s group %s: %w", t.Name, col, err)
				}
				out = append(out, AggQuery{Table: t, GroupCol: col, NumAggs: n, Spec: spec})
			}
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("workload: no aggregation queries produced")
	}
	return out, nil
}

// Selectivities are the controlled join output fractions of Figure 10.
func Selectivities() []float64 { return []float64{1.0, 0.5, 0.25, 0.01} }

// JoinQuery is one join training configuration: R ⋈ S on a1 with an extra
// (R.a1 + S.z < threshold) predicate controlling the output cardinality.
type JoinQuery struct {
	R, S        *catalog.Table
	Selectivity float64
	Spec        plan.JoinSpec
}

// SQL renders the query the way it would be submitted to the remote system.
func (q JoinQuery) SQL() string {
	if q.R == nil || q.S == nil {
		return "<unbound join query>"
	}
	threshold := int64(q.Selectivity * float64(q.S.Rows))
	return fmt.Sprintf(
		"SELECT r.a1, s.a1 FROM %s r JOIN %s s ON r.a1 = s.a1 WHERE r.a1 + s.z < %d",
		q.R.Name, q.S.Name, threshold)
}

// projChoices enumerates the projected-size variants (in bytes) cycled
// through join configurations so the two projection dimensions of the
// seven-dim join model get training coverage.
var projChoices = []float64{4, 8, 16, 28}

// buildJoinSpec assembles the seven-dimension spec for a pair. The smaller
// table plays S (its a1 values are a subset of R's, per the data generator),
// so the equi-join alone matches every S row and the threshold predicate
// scales the output.
func buildJoinSpec(r, s *catalog.Table, sel float64, projR, projS float64) (plan.JoinSpec, error) {
	out := math.Floor(sel * float64(s.Rows))
	if out < 1 {
		out = 1
	}
	clampProj := func(p float64, rowSize int) float64 {
		if p > float64(rowSize) {
			return float64(rowSize)
		}
		return p
	}
	spec := plan.JoinSpec{
		Left: plan.TableSide{
			Rows: float64(r.Rows), RowSize: float64(r.RowSize()),
			ProjectedSize: clampProj(projR, r.RowSize()), KeyNDV: float64(r.Rows),
			PartitionedOn: r.PartitionedOn == "a1", SortedOn: r.SortedOn == "a1",
		},
		Right: plan.TableSide{
			Rows: float64(s.Rows), RowSize: float64(s.RowSize()),
			ProjectedSize: clampProj(projS, s.RowSize()), KeyNDV: float64(s.Rows),
			PartitionedOn: s.PartitionedOn == "a1", SortedOn: s.SortedOn == "a1",
		},
		OutputRows: out,
	}
	if err := spec.Validate(); err != nil {
		return plan.JoinSpec{}, err
	}
	return spec, nil
}

// JoinTrainingSet samples up to maxPairs distinct table pairs (deterministic
// for a given seed) and crosses each with the four selectivities, yielding
// roughly the paper's 4 000 join training queries when maxPairs = 1000.
func JoinTrainingSet(tables []*catalog.Table, maxPairs int, seed int64) ([]JoinQuery, error) {
	if len(tables) < 2 {
		return nil, fmt.Errorf("workload: need at least two tables, have %d", len(tables))
	}
	if maxPairs <= 0 {
		return nil, fmt.Errorf("workload: maxPairs %d must be positive", maxPairs)
	}
	rng := rand.New(rand.NewSource(seed))
	type pairKey struct{ a, b int }
	seen := map[pairKey]bool{}
	var out []JoinQuery
	attempts := 0
	for len(seen) < maxPairs && attempts < maxPairs*20 {
		attempts++
		i := rng.Intn(len(tables))
		j := rng.Intn(len(tables))
		if i == j {
			continue
		}
		// Bigger table is R, smaller is S (ties by index for determinism).
		r, s := tables[i], tables[j]
		if s.Rows > r.Rows || (s.Rows == r.Rows && i > j) {
			r, s = s, r
		}
		k := pairKey{a: i, b: j}
		if i > j {
			k = pairKey{a: j, b: i}
		}
		if seen[k] {
			continue
		}
		seen[k] = true
		projR := projChoices[len(seen)%len(projChoices)]
		projS := projChoices[(len(seen)/len(projChoices))%len(projChoices)]
		for _, sel := range Selectivities() {
			spec, err := buildJoinSpec(r, s, sel, projR, projS)
			if err != nil {
				return nil, fmt.Errorf("workload: join %s ⋈ %s: %w", r.Name, s.Name, err)
			}
			out = append(out, JoinQuery{R: r, S: s, Selectivity: sel, Spec: spec})
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("workload: no join queries produced")
	}
	return out, nil
}

// OutOfRangeConfig controls the Figure 14 suite.
type OutOfRangeConfig struct {
	Rows        float64 // out-of-range cardinality (paper: 20×10^6)
	RecordSizes []int   // in-range record sizes to cycle
	Count       int     // number of queries (paper: 45)
	Seed        int64
}

// DefaultOutOfRange reproduces the paper's setting: models are trained on
// up to 8×10^6 records; the evaluation queries use 20×10^6, with some
// configurations taking only one side out of range and others both.
func DefaultOutOfRange() OutOfRangeConfig {
	return OutOfRangeConfig{Rows: 20e6, RecordSizes: []int{40, 70, 100, 250, 500, 1000}, Count: 45, Seed: 14}
}

// OutOfRangeJoins builds the evaluation suite: every spec has at least one
// side at cfg.Rows (beyond any trained cardinality) while record sizes stay
// within the trained range. Specs force both sides large enough that the
// remote picks its merge/shuffle join, matching the paper's experiment.
func OutOfRangeJoins(cfg OutOfRangeConfig) ([]plan.JoinSpec, error) {
	if cfg.Rows <= 0 || cfg.Count <= 0 || len(cfg.RecordSizes) == 0 {
		return nil, fmt.Errorf("workload: invalid out-of-range config %+v", cfg)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	inRangeRows := []float64{2e6, 4e6, 6e6, 8e6}
	var out []plan.JoinSpec
	for i := 0; i < cfg.Count; i++ {
		sizeR := float64(cfg.RecordSizes[rng.Intn(len(cfg.RecordSizes))])
		sizeS := float64(cfg.RecordSizes[rng.Intn(len(cfg.RecordSizes))])
		rowsR := cfg.Rows
		rowsS := cfg.Rows
		if i%2 == 0 { // only one side out of range
			rowsS = inRangeRows[rng.Intn(len(inRangeRows))]
		}
		sel := Selectivities()[rng.Intn(len(Selectivities()))]
		small := rowsS
		if rowsR < small {
			small = rowsR
		}
		outRows := math.Floor(sel * small)
		if outRows < 1 {
			outRows = 1
		}
		proj := projChoices[i%len(projChoices)]
		spec := plan.JoinSpec{
			Left:       plan.TableSide{Rows: rowsR, RowSize: sizeR, ProjectedSize: proj, KeyNDV: rowsR},
			Right:      plan.TableSide{Rows: rowsS, RowSize: sizeS, ProjectedSize: proj, KeyNDV: rowsS},
			OutputRows: outRows,
		}
		if err := spec.Validate(); err != nil {
			return nil, fmt.Errorf("workload: out-of-range spec %d: %w", i, err)
		}
		out = append(out, spec)
	}
	return out, nil
}

// ScanQuery is one filter/project training configuration.
type ScanQuery struct {
	Table       *catalog.Table
	Selectivity float64
	Spec        plan.ScanSpec
}

// SQL renders the query the way it would be submitted to the remote system.
func (q ScanQuery) SQL() string {
	if q.Table == nil {
		return "<unbound scan query>"
	}
	threshold := int64(q.Selectivity * float64(q.Table.Rows))
	return fmt.Sprintf("SELECT a1, a2 FROM %s WHERE a1 < %d", q.Table.Name, threshold)
}

// ScanTrainingSet builds filter/project training configurations: every
// table × the four selectivities × two projection widths.
func ScanTrainingSet(tables []*catalog.Table) ([]ScanQuery, error) {
	var out []ScanQuery
	for _, t := range tables {
		for _, sel := range Selectivities() {
			for _, proj := range []float64{8, 28} {
				p := proj
				if p > float64(t.RowSize()) {
					p = float64(t.RowSize())
				}
				spec := plan.ScanSpec{
					InputRows:     float64(t.Rows),
					InputRowSize:  float64(t.RowSize()),
					Selectivity:   sel,
					OutputRowSize: p,
				}
				if err := spec.Validate(); err != nil {
					return nil, fmt.Errorf("workload: scan on %s: %w", t.Name, err)
				}
				out = append(out, ScanQuery{Table: t, Selectivity: sel, Spec: spec})
			}
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("workload: no scan queries produced")
	}
	return out, nil
}
