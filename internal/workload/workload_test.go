package workload

import (
	"strings"
	"testing"

	"intellisphere/internal/cluster"
	"intellisphere/internal/datagen"
	"intellisphere/internal/plan"
	"intellisphere/internal/remote"
)

func TestAggTrainingSetSize(t *testing.T) {
	tables, err := datagen.Tables("hive")
	if err != nil {
		t.Fatal(err)
	}
	qs, err := AggTrainingSet(tables)
	if err != nil {
		t.Fatalf("AggTrainingSet: %v", err)
	}
	// 120 tables × 6 shrink columns × 5 aggregate counts = 3600 — the
	// paper's "approximately 3,700".
	if len(qs) != 3600 {
		t.Errorf("got %d agg queries, want 3600", len(qs))
	}
	for _, q := range qs[:50] {
		if err := q.Spec.Validate(); err != nil {
			t.Fatalf("invalid spec for %s: %v", q.SQL(), err)
		}
		if q.Spec.OutputRows > q.Spec.InputRows {
			t.Fatalf("agg output exceeds input: %+v", q.Spec)
		}
	}
}

func TestAggQueryDims(t *testing.T) {
	tables, _ := datagen.Tables("hive")
	qs, _ := AggTrainingSet(tables[:1]) // t10000_40
	// group by a10 with 3 aggs: output rows = 1000, output size = 4+24.
	var found bool
	for _, q := range qs {
		if q.GroupCol == "a10" && q.NumAggs == 3 {
			found = true
			if q.Spec.OutputRows != 1000 {
				t.Errorf("output rows = %v, want 1000", q.Spec.OutputRows)
			}
			if q.Spec.OutputRowSize != 28 {
				t.Errorf("output row size = %v, want 28", q.Spec.OutputRowSize)
			}
			if q.Spec.InputRows != 10000 || q.Spec.InputRowSize != 40 {
				t.Errorf("input dims = %v×%v", q.Spec.InputRows, q.Spec.InputRowSize)
			}
		}
	}
	if !found {
		t.Fatal("a10×3 configuration missing")
	}
}

func TestAggSQL(t *testing.T) {
	tables, _ := datagen.Tables("hive")
	qs, _ := AggTrainingSet(tables[:1])
	sql := qs[0].SQL()
	if !strings.Contains(sql, "GROUP BY") || !strings.Contains(sql, "SUM(") {
		t.Errorf("SQL = %q", sql)
	}
}

func TestAggTrainingSetEmpty(t *testing.T) {
	if _, err := AggTrainingSet(nil); err == nil {
		t.Error("empty table list accepted")
	}
}

func TestJoinTrainingSet(t *testing.T) {
	tables, _ := datagen.Tables("hive")
	qs, err := JoinTrainingSet(tables, 1000, 7)
	if err != nil {
		t.Fatalf("JoinTrainingSet: %v", err)
	}
	if len(qs) != 4000 {
		t.Errorf("got %d join queries, want 4000 (1000 pairs × 4 selectivities)", len(qs))
	}
	for _, q := range qs {
		if err := q.Spec.Validate(); err != nil {
			t.Fatalf("invalid join spec: %v", err)
		}
		// S must be the smaller (subset) side.
		if q.S.Rows > q.R.Rows {
			t.Fatalf("S (%d rows) bigger than R (%d rows)", q.S.Rows, q.R.Rows)
		}
		// Output cardinality = selectivity × |S| (floored, min 1).
		want := q.Selectivity * float64(q.S.Rows)
		if want < 1 {
			want = 1
		}
		if q.Spec.OutputRows > want+1 {
			t.Fatalf("output rows %v exceed selectivity bound %v", q.Spec.OutputRows, want)
		}
	}
}

func TestJoinTrainingSetDeterministic(t *testing.T) {
	tables, _ := datagen.Tables("hive")
	a, _ := JoinTrainingSet(tables, 50, 3)
	b, _ := JoinTrainingSet(tables, 50, 3)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].R.Name != b[i].R.Name || a[i].S.Name != b[i].S.Name || a[i].Selectivity != b[i].Selectivity {
			t.Fatal("same seed produced different workloads")
		}
	}
	c, _ := JoinTrainingSet(tables, 50, 4)
	same := true
	for i := range a {
		if a[i].R.Name != c[i].R.Name || a[i].S.Name != c[i].S.Name {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical workloads")
	}
}

func TestJoinSQL(t *testing.T) {
	tables, _ := datagen.Tables("hive")
	qs, _ := JoinTrainingSet(tables, 5, 1)
	sql := qs[0].SQL()
	if !strings.Contains(sql, "JOIN") || !strings.Contains(sql, "r.a1 = s.a1") ||
		!strings.Contains(sql, "r.a1 + s.z <") {
		t.Errorf("SQL = %q", sql)
	}
}

func TestJoinTrainingSetErrors(t *testing.T) {
	tables, _ := datagen.Tables("hive")
	if _, err := JoinTrainingSet(tables[:1], 10, 1); err == nil {
		t.Error("single table accepted")
	}
	if _, err := JoinTrainingSet(tables, 0, 1); err == nil {
		t.Error("zero pairs accepted")
	}
}

func TestSelectivities(t *testing.T) {
	s := Selectivities()
	want := []float64{1.0, 0.5, 0.25, 0.01}
	if len(s) != 4 {
		t.Fatalf("got %d selectivities", len(s))
	}
	for i := range want {
		if s[i] != want[i] {
			t.Errorf("sel[%d] = %v, want %v", i, s[i], want[i])
		}
	}
}

func TestOutOfRangeJoins(t *testing.T) {
	cfg := DefaultOutOfRange()
	specs, err := OutOfRangeJoins(cfg)
	if err != nil {
		t.Fatalf("OutOfRangeJoins: %v", err)
	}
	if len(specs) != 45 {
		t.Fatalf("got %d specs, want 45", len(specs))
	}
	oneOut, bothOut := 0, 0
	for _, s := range specs {
		if err := s.Validate(); err != nil {
			t.Fatalf("invalid spec: %v", err)
		}
		lOut := s.Left.Rows >= cfg.Rows
		rOut := s.Right.Rows >= cfg.Rows
		if !lOut && !rOut {
			t.Fatal("spec with no out-of-range side")
		}
		if lOut && rOut {
			bothOut++
		} else {
			oneOut++
		}
		// Record sizes must stay in the trained range.
		if s.Left.RowSize > 1000 || s.Right.RowSize > 1000 {
			t.Fatal("record size out of trained range")
		}
	}
	if oneOut == 0 || bothOut == 0 {
		t.Errorf("want a mix of one-side (%d) and both-side (%d) out-of-range specs", oneOut, bothOut)
	}
}

func TestOutOfRangeJoinsInvalid(t *testing.T) {
	if _, err := OutOfRangeJoins(OutOfRangeConfig{}); err == nil {
		t.Error("zero config accepted")
	}
}

func TestShrinkColumnsMatchSchema(t *testing.T) {
	tables, _ := datagen.Tables("hive")
	for _, col := range ShrinkColumns() {
		if _, ok := tables[0].Schema.Column(col); !ok {
			t.Errorf("shrink column %s missing from Figure 10 schema", col)
		}
	}
}

func TestRunAggAndJoinSets(t *testing.T) {
	tables, err := datagen.Tables("hive")
	if err != nil {
		t.Fatal(err)
	}
	small := tables[:6]
	sys, err := remote.NewHive("hive", cluster.DefaultHive(), remote.Options{NoiseAmp: 0.01, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	aggQs, err := AggTrainingSet(small)
	if err != nil {
		t.Fatal(err)
	}
	aggRun, err := RunAggSet(sys, aggQs)
	if err != nil {
		t.Fatalf("RunAggSet: %v", err)
	}
	if len(aggRun.X) != len(aggQs) || len(aggRun.Y) != len(aggQs) {
		t.Fatalf("run sizes = %d/%d, want %d", len(aggRun.X), len(aggRun.Y), len(aggQs))
	}
	// Cumulative curve is nondecreasing and ends at the total.
	last := 0.0
	for _, c := range aggRun.Cumulative {
		if c < last {
			t.Fatal("cumulative curve decreased")
		}
		last = c
	}
	if last != aggRun.TotalSec {
		t.Errorf("cumulative end %v != total %v", last, aggRun.TotalSec)
	}

	joinQs, err := JoinTrainingSet(small, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	joinRun, err := RunJoinSet(sys, joinQs)
	if err != nil {
		t.Fatalf("RunJoinSet: %v", err)
	}
	if len(joinRun.X) != len(joinQs) {
		t.Errorf("join run size = %d", len(joinRun.X))
	}
	for _, x := range joinRun.X {
		if len(x) != 7 {
			t.Fatal("join dims must be 7-wide")
		}
	}

	// Out-of-range specs execute too.
	specs, err := OutOfRangeJoins(OutOfRangeConfig{Rows: 20e6, RecordSizes: []int{100}, Count: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	costs, err := RunJoinSpecs(sys, specs)
	if err != nil {
		t.Fatalf("RunJoinSpecs: %v", err)
	}
	if len(costs) != 3 {
		t.Errorf("costs = %v", costs)
	}
	for _, c := range costs {
		if c <= 0 {
			t.Errorf("non-positive cost %v", c)
		}
	}
}

func TestRunSetErrors(t *testing.T) {
	sys, err := remote.NewHive("hive", cluster.DefaultHive(), remote.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunAggSet(sys, nil); err == nil {
		t.Error("empty agg set accepted")
	}
	if _, err := RunJoinSet(sys, nil); err == nil {
		t.Error("empty join set accepted")
	}
	// An invalid spec inside the set surfaces as an error.
	bad := []JoinQuery{{R: nil, S: nil}}
	if _, err := RunJoinSet(sys, bad); err == nil {
		t.Error("invalid join query accepted")
	}
	if _, err := RunJoinSpecs(sys, []plan.JoinSpec{{}}); err == nil {
		t.Error("invalid spec accepted")
	}
}

func TestScanTrainingSet(t *testing.T) {
	tables, _ := datagen.Tables("hive")
	qs, err := ScanTrainingSet(tables[:3])
	if err != nil {
		t.Fatalf("ScanTrainingSet: %v", err)
	}
	// 3 tables × 4 selectivities × 2 projections.
	if len(qs) != 24 {
		t.Fatalf("got %d scan queries, want 24", len(qs))
	}
	for _, q := range qs {
		if err := q.Spec.Validate(); err != nil {
			t.Fatalf("invalid scan spec: %v", err)
		}
		if !strings.Contains(q.SQL(), "WHERE a1 <") {
			t.Errorf("SQL = %q", q.SQL())
		}
	}
	if _, err := ScanTrainingSet(nil); err == nil {
		t.Error("empty table list accepted")
	}
	if (ScanQuery{}).SQL() != "<unbound scan query>" {
		t.Error("nil-table SQL rendering wrong")
	}

	sys, err := remote.NewHive("hive", cluster.DefaultHive(), remote.Options{NoiseAmp: 0.01, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	run, err := RunScanSet(sys, qs)
	if err != nil {
		t.Fatalf("RunScanSet: %v", err)
	}
	if len(run.X) != 24 || run.TotalSec <= 0 {
		t.Errorf("run = %d queries, %v s", len(run.X), run.TotalSec)
	}
	for _, x := range run.X {
		if len(x) != 4 {
			t.Fatal("scan dims must be 4-wide")
		}
	}
	if _, err := RunScanSet(sys, nil); err == nil {
		t.Error("empty scan set accepted")
	}
}
