package querygrid

import (
	"fmt"
	"math"

	"intellisphere/internal/regress"
)

// The paper scopes network costs out of the operator estimator and assumes
// they are "learned through some other mechanisms" (Section 2). This file
// is that mechanism: a link's bandwidth, latency, and per-row overhead are
// recovered from a handful of timed probe transfers, the same way the
// sub-operator costing recovers per-record costs from probe queries.

// MeasureFunc times one transfer of rows × rowSize bytes over a link and
// returns the observed seconds.
type MeasureFunc func(rows, rowSize float64) (float64, error)

// CalibrateConfig controls the probe sweep.
type CalibrateConfig struct {
	// RowCounts and RowSizes form the probe grid; defaults sweep 1k–1M rows
	// at 100–1000 B.
	RowCounts []float64
	RowSizes  []float64
}

func (c *CalibrateConfig) normalize() {
	if len(c.RowCounts) == 0 {
		c.RowCounts = []float64{1e3, 1e4, 1e5, 1e6}
	}
	if len(c.RowSizes) == 0 {
		c.RowSizes = []float64{100, 250, 500, 1000}
	}
}

// Calibrate fits a LinkConfig from timed probe transfers. The transfer
// model is elapsed = latency + bytes/bandwidth + rows·perRowUS/1e6, which is
// linear in (bytes, rows), so an OLS fit over the probe grid recovers all
// three parameters.
func Calibrate(measure MeasureFunc, cfg CalibrateConfig) (LinkConfig, error) {
	if measure == nil {
		return LinkConfig{}, fmt.Errorf("querygrid: calibration needs a measure function")
	}
	cfg.normalize()
	var x [][]float64
	var y []float64
	for _, rows := range cfg.RowCounts {
		for _, size := range cfg.RowSizes {
			sec, err := measure(rows, size)
			if err != nil {
				return LinkConfig{}, fmt.Errorf("querygrid: probe transfer %v×%v: %w", rows, size, err)
			}
			x = append(x, []float64{rows * size, rows})
			y = append(y, sec)
		}
	}
	m, err := regress.Fit(x, y)
	if err != nil {
		return LinkConfig{}, fmt.Errorf("querygrid: calibration fit: %w", err)
	}
	out := LinkConfig{
		LatencySec:       math.Max(m.Intercept, 0),
		PerRowOverheadUS: math.Max(m.Coef[1], 0) * 1e6,
	}
	if m.Coef[0] <= 0 {
		return LinkConfig{}, fmt.Errorf("querygrid: calibration produced non-positive byte cost %v", m.Coef[0])
	}
	out.BandwidthBytesPerSec = 1 / m.Coef[0]
	if err := out.Validate(); err != nil {
		return LinkConfig{}, err
	}
	return out, nil
}

// SimulatedLink is a network link with hidden true characteristics, used to
// exercise calibration end to end (it plays the role the remote-system
// simulators play for operator costing).
type SimulatedLink struct {
	Truth    LinkConfig
	NoiseAmp float64 // multiplicative, deterministic per probe shape
	Seed     int64
}

// Measure implements MeasureFunc against the hidden truth.
func (l *SimulatedLink) Measure(rows, rowSize float64) (float64, error) {
	if rows <= 0 || rowSize <= 0 {
		return 0, fmt.Errorf("querygrid: probe needs positive volume")
	}
	sec := hop(l.Truth, rows, rowSize)
	key := fmt.Sprintf("link|%v|%v", rows, rowSize)
	sec *= linkNoise(key, l.Seed, l.NoiseAmp)
	return sec, nil
}

// linkNoise mirrors the remote simulators' deterministic noise.
func linkNoise(key string, seed int64, amp float64) float64 {
	if amp == 0 {
		return 1
	}
	h := uint64(seed)*0x9e3779b97f4a7c15 + 0x2545F4914F6CDD1D
	for _, c := range key {
		h ^= uint64(c)
		h *= 0x100000001b3
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	u := float64(h>>11) / float64(1<<53)
	return 1 + amp*(2*u-1)
}
