package querygrid

import (
	"fmt"
	"testing"
	"testing/quick"
)

func newGrid(t *testing.T) *Grid {
	t.Helper()
	g, err := New(DefaultLink())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return g
}

func TestNewValidates(t *testing.T) {
	if _, err := New(LinkConfig{}); err == nil {
		t.Error("zero bandwidth accepted")
	}
	if _, err := New(LinkConfig{BandwidthBytesPerSec: 1, LatencySec: -1}); err == nil {
		t.Error("negative latency accepted")
	}
}

func TestTransferSameSystemFree(t *testing.T) {
	g := newGrid(t)
	c, err := g.TransferCost("hive", "hive", 1e6, 100)
	if err != nil || c != 0 {
		t.Errorf("same-system transfer = %v, %v", c, err)
	}
}

func TestTransferMasterToRemote(t *testing.T) {
	g := newGrid(t)
	c, err := g.TransferCost(Master, "hive", 1e6, 125)
	if err != nil {
		t.Fatalf("TransferCost: %v", err)
	}
	// 125 MB over 125 MB/s + 0.5 s latency + 0.2 s row overhead = 1.7 s.
	want := 0.5 + 1.0 + 0.2
	if diff := c - want; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("cost = %v, want %v", c, want)
	}
}

func TestTransferRemoteToRemoteTwoHops(t *testing.T) {
	g := newGrid(t)
	direct, _ := g.TransferCost("hive", Master, 1e6, 100)
	twoHop, err := g.TransferCost("hive", "presto", 1e6, 100)
	if err != nil {
		t.Fatalf("TransferCost: %v", err)
	}
	if twoHop != 2*direct {
		t.Errorf("remote→remote = %v, want 2×%v (must route via master)", twoHop, direct)
	}
}

func TestTransferErrors(t *testing.T) {
	g := newGrid(t)
	if _, err := g.TransferCost("", "hive", 1, 1); err == nil {
		t.Error("empty source accepted")
	}
	if _, err := g.TransferCost("hive", "", 1, 1); err == nil {
		t.Error("empty destination accepted")
	}
	if _, err := g.TransferCost(Master, "hive", -1, 1); err == nil {
		t.Error("negative rows accepted")
	}
}

func TestSetLink(t *testing.T) {
	g := newGrid(t)
	fast := LinkConfig{BandwidthBytesPerSec: 1.25e9, LatencySec: 0.1, PerRowOverheadUS: 0.05}
	if err := g.SetLink("spark", fast); err != nil {
		t.Fatalf("SetLink: %v", err)
	}
	slow, _ := g.TransferCost(Master, "hive", 1e7, 100)
	quickLink, _ := g.TransferCost(Master, "spark", 1e7, 100)
	if quickLink >= slow {
		t.Errorf("fast link (%v) not faster than default (%v)", quickLink, slow)
	}
	if err := g.SetLink("", fast); err == nil {
		t.Error("empty link name accepted")
	}
	if err := g.SetLink(Master, fast); err == nil {
		t.Error("master link override accepted")
	}
	if err := g.SetLink("x", LinkConfig{}); err == nil {
		t.Error("invalid link config accepted")
	}
}

func TestFilteredTransferSavesVolume(t *testing.T) {
	g := newGrid(t)
	full, _ := g.TransferCost("hive", Master, 1e7, 100)
	filtered, err := g.TransferCostFiltered("hive", Master, 1e7, 100, 0.1)
	if err != nil {
		t.Fatalf("TransferCostFiltered: %v", err)
	}
	if filtered >= full {
		t.Errorf("filtered transfer (%v) not cheaper than full (%v)", filtered, full)
	}
	same, _ := g.TransferCostFiltered("hive", "hive", 1e7, 100, 0.1)
	if same != 0 {
		t.Error("same-system filtered transfer should be free")
	}
	if _, err := g.TransferCostFiltered("hive", Master, 1, 1, 0); err == nil {
		t.Error("zero selectivity accepted")
	}
	if _, err := g.TransferCostFiltered("hive", Master, 1, 1, 1.5); err == nil {
		t.Error("selectivity > 1 accepted")
	}
	if _, err := g.TransferCostFiltered("", Master, 1, 1, 0.5); err == nil {
		t.Error("empty system accepted")
	}
	if _, err := g.TransferCostFiltered("hive", Master, -1, 1, 0.5); err == nil {
		t.Error("negative volume accepted")
	}
}

// Property: transfer cost is monotone in rows and never below the link
// latency for cross-system moves.
func TestTransferMonotoneProperty(t *testing.T) {
	g := newGrid(t)
	f := func(a, b uint32) bool {
		r1, r2 := float64(a), float64(b)
		if r1 > r2 {
			r1, r2 = r2, r1
		}
		c1, err1 := g.TransferCost(Master, "hive", r1, 100)
		c2, err2 := g.TransferCost(Master, "hive", r2, 100)
		if err1 != nil || err2 != nil {
			return false
		}
		return c1 <= c2 && c1 >= DefaultLink().LatencySec
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCalibrateRecoversLink(t *testing.T) {
	truth := LinkConfig{BandwidthBytesPerSec: 125e6, LatencySec: 0.5, PerRowOverheadUS: 0.2}
	link := &SimulatedLink{Truth: truth, NoiseAmp: 0.02, Seed: 4}
	got, err := Calibrate(link.Measure, CalibrateConfig{})
	if err != nil {
		t.Fatalf("Calibrate: %v", err)
	}
	within := func(got, want, tol float64) bool {
		d := got - want
		if d < 0 {
			d = -d
		}
		return d <= tol*want
	}
	if !within(got.BandwidthBytesPerSec, truth.BandwidthBytesPerSec, 0.15) {
		t.Errorf("bandwidth = %v, truth %v", got.BandwidthBytesPerSec, truth.BandwidthBytesPerSec)
	}
	if !within(got.LatencySec, truth.LatencySec, 0.3) {
		t.Errorf("latency = %v, truth %v", got.LatencySec, truth.LatencySec)
	}
	if !within(got.PerRowOverheadUS, truth.PerRowOverheadUS, 0.5) {
		t.Errorf("per-row overhead = %v, truth %v", got.PerRowOverheadUS, truth.PerRowOverheadUS)
	}
	// The calibrated link slots straight into a grid.
	g := newGrid(t)
	if err := g.SetLink("hive", got); err != nil {
		t.Fatalf("SetLink: %v", err)
	}
}

func TestCalibrateErrors(t *testing.T) {
	if _, err := Calibrate(nil, CalibrateConfig{}); err == nil {
		t.Error("nil measure accepted")
	}
	failing := func(rows, rowSize float64) (float64, error) {
		return 0, fmt.Errorf("link down")
	}
	if _, err := Calibrate(failing, CalibrateConfig{}); err == nil {
		t.Error("failing measure accepted")
	}
	// A constant-time link has no positive byte cost to invert.
	constant := func(rows, rowSize float64) (float64, error) { return 1, nil }
	if _, err := Calibrate(constant, CalibrateConfig{}); err == nil {
		t.Error("degenerate link accepted")
	}
	link := &SimulatedLink{Truth: DefaultLink()}
	if _, err := link.Measure(0, 100); err == nil {
		t.Error("zero-volume probe accepted")
	}
}

func TestSimulatedLinkDeterministic(t *testing.T) {
	link := &SimulatedLink{Truth: DefaultLink(), NoiseAmp: 0.05, Seed: 9}
	a, err := link.Measure(1e5, 100)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := link.Measure(1e5, 100)
	if a != b {
		t.Error("simulated link not deterministic")
	}
	link2 := &SimulatedLink{Truth: DefaultLink(), NoiseAmp: 0.05, Seed: 10}
	c, _ := link2.Measure(1e5, 100)
	if a == c {
		t.Error("different seeds produced identical noise")
	}
}

// TestTransferValidationOrderAgreement drives TransferCost and
// TransferCostFiltered (at selectivity 1, where they must agree) through the
// same edge cases: both entry points must accept and reject the same calls,
// including bad volumes on a same-system "free" transfer.
func TestTransferValidationOrderAgreement(t *testing.T) {
	g := newGrid(t)
	cases := []struct {
		name     string
		from, to string
		rows     float64
		rowSize  float64
		wantErr  bool
		wantFree bool
	}{
		{name: "remote to master", from: "hive", to: Master, rows: 1e6, rowSize: 100},
		{name: "master to remote", from: Master, to: "hive", rows: 1e6, rowSize: 100},
		{name: "remote to remote", from: "hive", to: "presto", rows: 1e6, rowSize: 100},
		{name: "same system free", from: "hive", to: "hive", rows: 1e6, rowSize: 100, wantFree: true},
		{name: "zero rows", from: "hive", to: Master, rows: 0, rowSize: 100},
		{name: "zero row size", from: "hive", to: Master, rows: 100, rowSize: 0},
		{name: "negative rows", from: "hive", to: Master, rows: -1, rowSize: 100, wantErr: true},
		{name: "negative row size", from: "hive", to: Master, rows: 100, rowSize: -1, wantErr: true},
		// Bad volume must be rejected even when from == to would make the
		// transfer free — the same-system short-circuit cannot hide it.
		{name: "negative rows same system", from: "hive", to: "hive", rows: -1, rowSize: 100, wantErr: true},
		{name: "negative size same system", from: "hive", to: "hive", rows: 100, rowSize: -1, wantErr: true},
		{name: "empty from", from: "", to: "hive", rows: 1, rowSize: 1, wantErr: true},
		{name: "empty to", from: "hive", to: "", rows: 1, rowSize: 1, wantErr: true},
		{name: "both empty", from: "", to: "", rows: 1, rowSize: 1, wantFree: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			plain, plainErr := g.TransferCost(tc.from, tc.to, tc.rows, tc.rowSize)
			filt, filtErr := g.TransferCostFiltered(tc.from, tc.to, tc.rows, tc.rowSize, 1)
			if (plainErr != nil) != tc.wantErr {
				t.Errorf("TransferCost err = %v, wantErr %v", plainErr, tc.wantErr)
			}
			if (filtErr != nil) != (plainErr != nil) {
				t.Errorf("validation disagreement: TransferCost err %v, TransferCostFiltered err %v", plainErr, filtErr)
			}
			if tc.wantErr {
				return
			}
			if plain != filt {
				t.Errorf("selectivity-1 filtered cost %v != plain cost %v", filt, plain)
			}
			if tc.wantFree && plain != 0 {
				t.Errorf("free transfer cost = %v", plain)
			}
			if !tc.wantFree && tc.rows > 0 && tc.rowSize > 0 && plain <= 0 {
				t.Errorf("paid transfer cost = %v, want > 0", plain)
			}
		})
	}
}

// TestTransferFilteredSelectivityEdges pins the selectivity validation.
func TestTransferFilteredSelectivityEdges(t *testing.T) {
	g := newGrid(t)
	for _, sel := range []float64{0, -0.5, 1.0001, 2} {
		if _, err := g.TransferCostFiltered("hive", Master, 1e6, 100, sel); err == nil {
			t.Errorf("selectivity %v accepted", sel)
		}
	}
	// Selectivity is checked even on the free same-system path, mirroring
	// the volume checks.
	if _, err := g.TransferCostFiltered("hive", "hive", 1e6, 100, 0); err == nil {
		t.Error("zero selectivity accepted on same-system transfer")
	}
	full, err := g.TransferCostFiltered("hive", Master, 1e6, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	half, err := g.TransferCostFiltered("hive", Master, 1e6, 100, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if half >= full {
		t.Errorf("half-selectivity transfer (%v) not cheaper than full (%v)", half, full)
	}
}

// TestGridGeneration checks the invalidation counter advances on SetLink.
func TestGridGeneration(t *testing.T) {
	g := newGrid(t)
	g0 := g.Generation()
	if err := g.SetLink("hive", DefaultLink()); err != nil {
		t.Fatal(err)
	}
	if g.Generation() <= g0 {
		t.Errorf("generation %d not advanced from %d by SetLink", g.Generation(), g0)
	}
}
