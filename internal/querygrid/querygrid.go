// Package querygrid models the QueryGrid communication layer (Section 2):
// data transfer between the master engine and remote systems, with
// per-link bandwidth/latency characteristics and the on-the-fly predicate
// evaluation QueryGrid performs while data is in flight. The paper's
// topology rule is enforced here: data never moves directly between two
// remote systems — it always routes through the master.
package querygrid

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Master is the reserved name of the master (Teradata) engine.
const Master = "teradata"

// LinkConfig characterizes one direction of a master↔remote link.
type LinkConfig struct {
	BandwidthBytesPerSec float64 `json:"bandwidth_bytes_per_sec"`
	LatencySec           float64 `json:"latency_sec"`
	PerRowOverheadUS     float64 `json:"per_row_overhead_us"`
}

// Validate reports configuration problems.
func (l LinkConfig) Validate() error {
	if l.BandwidthBytesPerSec <= 0 {
		return fmt.Errorf("querygrid: bandwidth %v must be positive", l.BandwidthBytesPerSec)
	}
	if l.LatencySec < 0 || l.PerRowOverheadUS < 0 {
		return fmt.Errorf("querygrid: negative latency/overhead")
	}
	return nil
}

// DefaultLink returns a 1 Gbit/s link with connector setup latency.
func DefaultLink() LinkConfig {
	return LinkConfig{BandwidthBytesPerSec: 125e6, LatencySec: 0.5, PerRowOverheadUS: 0.2}
}

// Grid is the transfer-cost model. Links are keyed by remote-system name;
// both directions of a link share one config unless overridden.
type Grid struct {
	mu    sync.RWMutex
	def   LinkConfig
	links map[string]LinkConfig
	gen   atomic.Uint64
}

// New builds a grid with the given default link characteristics.
func New(def LinkConfig) (*Grid, error) {
	if err := def.Validate(); err != nil {
		return nil, err
	}
	return &Grid{def: def, links: make(map[string]LinkConfig)}, nil
}

// SetLink overrides the link characteristics for one remote system.
func (g *Grid) SetLink(system string, cfg LinkConfig) error {
	if system == "" || system == Master {
		return fmt.Errorf("querygrid: link must name a remote system, got %q", system)
	}
	if err := cfg.Validate(); err != nil {
		return err
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	g.links[system] = cfg
	g.gen.Add(1)
	return nil
}

// Generation returns the link-configuration mutation counter: it advances on
// every SetLink so cached transfer costs can detect staleness.
func (g *Grid) Generation() uint64 { return g.gen.Load() }

// Links returns a copy of the per-system link overrides (systems on the
// default link are absent) — the durable-snapshot and admin-API view.
func (g *Grid) Links() map[string]LinkConfig {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make(map[string]LinkConfig, len(g.links))
	for k, v := range g.links {
		out[k] = v
	}
	return out
}

// Default returns the link characteristics systems without an override use.
func (g *Grid) Default() LinkConfig {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.def
}

func (g *Grid) link(system string) LinkConfig {
	g.mu.RLock()
	defer g.mu.RUnlock()
	if cfg, ok := g.links[system]; ok {
		return cfg
	}
	return g.def
}

// hop computes the cost of moving rows across one master↔remote link.
func hop(cfg LinkConfig, rows, rowSize float64) float64 {
	return cfg.LatencySec + rows*rowSize/cfg.BandwidthBytesPerSec + rows*cfg.PerRowOverheadUS/1e6
}

// validateTransfer applies the argument checks shared by TransferCost and
// TransferCostFiltered, in one canonical order: volumes first, then
// selectivity, then the same-system short-circuit, then system names
// (TransferCost passes selectivity 1, which never fails). free reports
// that the transfer is a validated same-system no-op.
func validateTransfer(from, to string, rows, rowSize, selectivity float64) (free bool, err error) {
	if rows < 0 || rowSize < 0 {
		return false, fmt.Errorf("querygrid: negative transfer volume (%v rows × %v B)", rows, rowSize)
	}
	if selectivity <= 0 || selectivity > 1 {
		return false, fmt.Errorf("querygrid: selectivity %v must be in (0,1]", selectivity)
	}
	if from == to {
		return true, nil
	}
	if from == "" || to == "" {
		return false, fmt.Errorf("querygrid: empty system name in transfer %q→%q", from, to)
	}
	return false, nil
}

// TransferCost returns the estimated seconds to move rows×rowSize bytes
// from one system to another. Moving data between two remote systems routes
// through the master (two hops), matching the IntelliSphere topology.
// Same-system transfers are free. Invalid volumes are rejected even when
// from == to, so callers cannot mask bad statistics behind the
// short-circuit.
func (g *Grid) TransferCost(from, to string, rows, rowSize float64) (float64, error) {
	free, err := validateTransfer(from, to, rows, rowSize, 1)
	if err != nil {
		return 0, err
	}
	if free {
		return 0, nil
	}
	switch {
	case from == Master:
		return hop(g.link(to), rows, rowSize), nil
	case to == Master:
		return hop(g.link(from), rows, rowSize), nil
	default:
		// Remote → master → remote.
		return hop(g.link(from), rows, rowSize) + hop(g.link(to), rows, rowSize), nil
	}
}

// TransferCostFiltered is TransferCost with QueryGrid's in-flight predicate
// evaluation: only selectivity × rows survive past the source hop, saving
// the second hop's volume (and the destination's ingest) entirely. It
// validates its arguments in the same order as TransferCost (volumes and
// selectivity before the same-system short-circuit), so the two entry
// points agree on which calls are errors.
func (g *Grid) TransferCostFiltered(from, to string, rows, rowSize, selectivity float64) (float64, error) {
	free, err := validateTransfer(from, to, rows, rowSize, selectivity)
	if err != nil {
		return 0, err
	}
	if free {
		return 0, nil
	}
	kept := rows * selectivity
	switch {
	case from == Master:
		// Filter applies at the source; only kept rows travel.
		return hop(g.link(to), kept, rowSize), nil
	case to == Master:
		return hop(g.link(from), kept, rowSize), nil
	default:
		return hop(g.link(from), kept, rowSize) + hop(g.link(to), kept, rowSize), nil
	}
}
