package rowengine

import (
	"testing"
	"testing/quick"

	"intellisphere/internal/sqlparse"
)

func exec(t *testing.T, sql string, tables map[string]*Table) *Result {
	t.Helper()
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	res, err := Execute(stmt, tables)
	if err != nil {
		t.Fatalf("Execute(%q): %v", sql, err)
	}
	return res
}

func tables(t *testing.T, specs map[string]int64) map[string]*Table {
	t.Helper()
	out := map[string]*Table{}
	for name, rows := range specs {
		tb, err := Materialize(name, rows)
		if err != nil {
			t.Fatalf("Materialize(%s): %v", name, err)
		}
		out[name] = tb
	}
	return out
}

func TestSimpleProjection(t *testing.T) {
	ts := tables(t, map[string]int64{"t": 10})
	res := exec(t, "SELECT a1, a5 FROM t", ts)
	if len(res.Rows) != 10 || len(res.Columns) != 2 {
		t.Fatalf("result = %dx%d", len(res.Rows), len(res.Columns))
	}
	if res.Rows[7][0] != 7 || res.Rows[7][1] != 1 {
		t.Errorf("row 7 = %v, want [7 1]", res.Rows[7])
	}
}

func TestStarProjection(t *testing.T) {
	ts := tables(t, map[string]int64{"t": 3})
	res := exec(t, "SELECT * FROM t", ts)
	if len(res.Columns) != 8 {
		t.Fatalf("star expanded to %d columns, want 8", len(res.Columns))
	}
}

func TestFilter(t *testing.T) {
	ts := tables(t, map[string]int64{"t": 100})
	res := exec(t, "SELECT a1 FROM t WHERE a1 < 25", ts)
	if len(res.Rows) != 25 {
		t.Errorf("got %d rows, want 25", len(res.Rows))
	}
	res = exec(t, "SELECT a1 FROM t WHERE a1 >= 90 AND a1 <> 95", ts)
	if len(res.Rows) != 9 {
		t.Errorf("got %d rows, want 9", len(res.Rows))
	}
	res = exec(t, "SELECT a1 FROM t WHERE a1 + z = 42", ts)
	if len(res.Rows) != 1 || res.Rows[0][0] != 42 {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestFig10JoinSemantics(t *testing.T) {
	// R has 1000 rows, S has 100; S's a1 values are a subset of R's, so the
	// equi-join matches every S row, and the z-predicate scales the output:
	// threshold 50 keeps 50 rows.
	ts := tables(t, map[string]int64{"r": 1000, "s": 100})
	res := exec(t, "SELECT r.a1, s.a1 FROM r JOIN s ON r.a1 = s.a1 WHERE r.a1 + s.z < 50", ts)
	if len(res.Rows) != 50 {
		t.Fatalf("join output = %d rows, want 50", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row[0] != row[1] {
			t.Fatalf("join mismatch: %v", row)
		}
	}
	// Without the predicate, output = |S| exactly.
	res = exec(t, "SELECT r.a1 FROM r JOIN s ON r.a1 = s.a1", ts)
	if len(res.Rows) != 100 {
		t.Errorf("full join output = %d rows, want 100", len(res.Rows))
	}
}

func TestJoinDuplicateKeys(t *testing.T) {
	// Joining on a5 (each value duplicated 5 times in both tables of 50
	// rows): 10 distinct values × 5 × 5 = 250 output rows.
	ts := tables(t, map[string]int64{"r": 50, "s": 50})
	res := exec(t, "SELECT r.a5 FROM r JOIN s ON r.a5 = s.a5", ts)
	if len(res.Rows) != 250 {
		t.Errorf("duplicate-key join = %d rows, want 250", len(res.Rows))
	}
}

func TestCrossJoin(t *testing.T) {
	ts := tables(t, map[string]int64{"r": 20, "s": 30})
	res := exec(t, "SELECT r.a1 FROM r CROSS JOIN s", ts)
	if len(res.Rows) != 600 {
		t.Errorf("cross join = %d rows, want 600", len(res.Rows))
	}
}

func TestAggregationSumCount(t *testing.T) {
	ts := tables(t, map[string]int64{"t": 100})
	// Group by a10: 10 groups of 10 rows each.
	res := exec(t, "SELECT a10, COUNT(a1), SUM(a1) FROM t GROUP BY a10", ts)
	if len(res.Rows) != 10 {
		t.Fatalf("groups = %d, want 10", len(res.Rows))
	}
	// Group 0 holds a1 values 0..9: count 10, sum 45.
	for _, row := range res.Rows {
		if row[0] == 0 {
			if row[1] != 10 || row[2] != 45 {
				t.Errorf("group 0 = %v, want count 10 sum 45", row)
			}
		}
	}
}

func TestAggregationAvgMinMax(t *testing.T) {
	ts := tables(t, map[string]int64{"t": 100})
	res := exec(t, "SELECT AVG(a1), MIN(a1), MAX(a1) FROM t", ts)
	if len(res.Rows) != 1 {
		t.Fatalf("global aggregate rows = %d", len(res.Rows))
	}
	row := res.Rows[0]
	if row[0] != 49.5 || row[1] != 0 || row[2] != 99 {
		t.Errorf("avg/min/max = %v, want [49.5 0 99]", row)
	}
}

func TestAggregationCountStar(t *testing.T) {
	ts := tables(t, map[string]int64{"t": 42})
	res := exec(t, "SELECT COUNT(*) FROM t", ts)
	if res.Rows[0][0] != 42 {
		t.Errorf("COUNT(*) = %v, want 42", res.Rows[0][0])
	}
}

func TestAggregationAfterJoin(t *testing.T) {
	ts := tables(t, map[string]int64{"r": 100, "s": 50})
	res := exec(t, "SELECT r.a10, SUM(s.a1) FROM r JOIN s ON r.a1 = s.a1 GROUP BY r.a10", ts)
	// Joined rows are a1 = 0..49; groups on a10 → 5 groups.
	if len(res.Rows) != 5 {
		t.Fatalf("groups = %d, want 5", len(res.Rows))
	}
}

func TestAggregateExpressionArg(t *testing.T) {
	ts := tables(t, map[string]int64{"t": 10})
	res := exec(t, "SELECT SUM(a1 + 1) FROM t", ts)
	if res.Rows[0][0] != 55 {
		t.Errorf("SUM(a1+1) = %v, want 55", res.Rows[0][0])
	}
}

func TestErrors(t *testing.T) {
	ts := tables(t, map[string]int64{"t": 10, "u": 10})
	cases := []string{
		"SELECT a1 FROM missing",
		"SELECT dummy FROM t",                         // unmaterialized column
		"SELECT a1 FROM t JOIN u ON t.a1 = u.a1",      // ambiguous unqualified a1 in select
		"SELECT t.a1 FROM t JOIN u ON t.dummy = u.a1", // bad join column
		"SELECT x.a1 FROM t",                          // unknown binding
		"SELECT a1, SUM(a2) FROM t",                   // non-grouped column with aggregate
		"SELECT *, SUM(a1) FROM t GROUP BY a1",        // star with aggregates
	}
	for _, sql := range cases {
		stmt, err := sqlparse.Parse(sql)
		if err != nil {
			t.Fatalf("Parse(%q): %v", sql, err)
		}
		if _, err := Execute(stmt, ts); err == nil {
			t.Errorf("Execute(%q) succeeded, want error", sql)
		}
	}
	// Duplicate binding.
	stmt, _ := sqlparse.Parse("SELECT t.a1 FROM t JOIN t ON t.a1 = t.a1")
	if _, err := Execute(stmt, ts); err == nil {
		t.Error("duplicate binding accepted")
	}
}

func TestMaterializeHelper(t *testing.T) {
	if _, err := Materialize("t", 0); err == nil {
		t.Error("zero-row materialization accepted")
	}
}

// Property: Figure 10 join semantics hold for arbitrary sizes and
// thresholds — output rows = min(threshold, |S|) when joining on the unique
// a1 with R ≥ S.
func TestJoinSelectivityProperty(t *testing.T) {
	f := func(rRows, sRows uint8, threshold uint8) bool {
		r := int64(rRows%50) + 50 // 50..99
		s := int64(sRows%40) + 10 // 10..49 (always ≤ r)
		th := int64(threshold)
		rt, err := Materialize("r", r)
		if err != nil {
			return false
		}
		st, err := Materialize("s", s)
		if err != nil {
			return false
		}
		stmt, err := sqlparse.Parse("SELECT r.a1 FROM r JOIN s ON r.a1 = s.a1 WHERE r.a1 + s.z < " + itoa(th))
		if err != nil {
			return false
		}
		res, err := Execute(stmt, map[string]*Table{"r": rt, "s": st})
		if err != nil {
			return false
		}
		want := th
		if want > s {
			want = s
		}
		return int64(len(res.Rows)) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	var d []byte
	for v > 0 {
		d = append([]byte{byte('0' + v%10)}, d...)
		v /= 10
	}
	return string(d)
}

func TestOrderByAscDesc(t *testing.T) {
	ts := tables(t, map[string]int64{"t": 50})
	res := exec(t, "SELECT a1 FROM t WHERE a1 < 10 ORDER BY a1 DESC", ts)
	if len(res.Rows) != 10 || res.Rows[0][0] != 9 || res.Rows[9][0] != 0 {
		t.Errorf("desc order wrong: first=%v last=%v", res.Rows[0], res.Rows[9])
	}
	res = exec(t, "SELECT a1 FROM t WHERE a1 < 10 ORDER BY a1", ts)
	if res.Rows[0][0] != 0 {
		t.Errorf("asc order wrong: %v", res.Rows[0])
	}
}

func TestOrderByMultiKey(t *testing.T) {
	ts := tables(t, map[string]int64{"t": 20})
	// a5 groups of 5 identical values; within each, a1 ascending breaks ties.
	res := exec(t, "SELECT a5, a1 FROM t ORDER BY a5 DESC, a1", ts)
	if res.Rows[0][0] != 3 || res.Rows[0][1] != 15 {
		t.Errorf("first row = %v, want [3 15]", res.Rows[0])
	}
}

func TestOrderByAliasAndAggregate(t *testing.T) {
	ts := tables(t, map[string]int64{"t": 100})
	res := exec(t, "SELECT a10, SUM(a1) AS total FROM t GROUP BY a10 ORDER BY total DESC LIMIT 3", ts)
	if len(res.Rows) != 3 {
		t.Fatalf("limit not applied: %d rows", len(res.Rows))
	}
	// Highest total group first: a10 = 9 holds a1 values 90..99 → 945.
	if res.Rows[0][0] != 9 || res.Rows[0][1] != 945 {
		t.Errorf("top group = %v, want [9 945]", res.Rows[0])
	}
	if res.Rows[0][1] < res.Rows[1][1] || res.Rows[1][1] < res.Rows[2][1] {
		t.Error("not descending")
	}
}

func TestLimitWithoutOrder(t *testing.T) {
	ts := tables(t, map[string]int64{"t": 100})
	res := exec(t, "SELECT a1 FROM t LIMIT 7", ts)
	if len(res.Rows) != 7 {
		t.Errorf("limit = %d rows", len(res.Rows))
	}
}

func TestOrderByErrors(t *testing.T) {
	ts := tables(t, map[string]int64{"t": 10})
	stmt, err := sqlparse.Parse("SELECT a1 FROM t ORDER BY a50")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Execute(stmt, ts); err == nil {
		t.Error("ORDER BY on non-output column accepted")
	}
}

func TestThreeWayJoin(t *testing.T) {
	// r(200) ⋈ s(100) ⋈ u(50) on a1: the chain intersects down to |u| rows,
	// and the threshold predicate scales it (Figure 10 semantics, chained).
	ts3 := tables(t, map[string]int64{"r": 200, "s": 100, "u": 50})
	res := exec(t, "SELECT r.a1, s.a1, u.a1 FROM r JOIN s ON r.a1 = s.a1 JOIN u ON s.a1 = u.a1", ts3)
	if len(res.Rows) != 50 {
		t.Fatalf("3-way join = %d rows, want 50", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row[0] != row[1] || row[1] != row[2] {
			t.Fatalf("chain mismatch: %v", row)
		}
	}
	res = exec(t, "SELECT r.a1 FROM r JOIN s ON r.a1 = s.a1 JOIN u ON s.a1 = u.a1 WHERE r.a1 + u.z < 20", ts3)
	if len(res.Rows) != 20 {
		t.Errorf("filtered 3-way join = %d rows, want 20", len(res.Rows))
	}
	// The second join may also probe the FIRST table's columns.
	res = exec(t, "SELECT r.a1 FROM r JOIN s ON r.a1 = s.a1 JOIN u ON r.a1 = u.a1", ts3)
	if len(res.Rows) != 50 {
		t.Errorf("probe-first-table join = %d rows, want 50", len(res.Rows))
	}
}

func TestThreeWayJoinWithAggregation(t *testing.T) {
	ts3 := tables(t, map[string]int64{"r": 200, "s": 100, "u": 50})
	res := exec(t, "SELECT u.a10, COUNT(r.a1) FROM r JOIN s ON r.a1 = s.a1 JOIN u ON s.a1 = u.a1 GROUP BY u.a10 ORDER BY u.a10", ts3)
	if len(res.Rows) != 5 {
		t.Fatalf("groups = %d, want 5", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row[1] != 10 {
			t.Errorf("group %v count = %v, want 10", row[0], row[1])
		}
	}
}

func TestThreeWayCrossJoin(t *testing.T) {
	ts3 := tables(t, map[string]int64{"r": 4, "s": 3, "u": 2})
	res := exec(t, "SELECT r.a1 FROM r CROSS JOIN s CROSS JOIN u", ts3)
	if len(res.Rows) != 24 {
		t.Errorf("cross chain = %d rows, want 24", len(res.Rows))
	}
}

func TestJoinConditionOnUnjoinedTable(t *testing.T) {
	ts3 := tables(t, map[string]int64{"r": 10, "s": 10, "u": 10})
	// The second join's condition references only r and s — it never links u.
	stmt, err := sqlparse.Parse("SELECT r.a1 FROM r JOIN s ON r.a1 = s.a1 JOIN u ON r.a1 = s.a2")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Execute(stmt, ts3); err == nil {
		t.Error("join condition not referencing the new table accepted")
	}
}
