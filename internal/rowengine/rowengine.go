// Package rowengine is a row-at-a-time executor for materialized synthetic
// tables. The remote-system simulators cost operators analytically over
// statistics; this engine complements them by actually computing answers
// (hash joins, cross joins, filters, grouped aggregation) for the small
// tables the examples and integration tests materialize, so end-to-end
// federated queries return real rows, not just cost numbers.
package rowengine

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"intellisphere/internal/datagen"
	"intellisphere/internal/sqlparse"
)

// Table is a materialized table: Figure 10 rows keyed by the generator's
// column layout.
type Table struct {
	Name string
	Rows []datagen.Row
}

// Materialize builds a table of the given cardinality.
func Materialize(name string, rows int64) (*Table, error) {
	data, err := datagen.Materialize(rows)
	if err != nil {
		return nil, err
	}
	return &Table{Name: name, Rows: data}, nil
}

// Result is a computed relation.
type Result struct {
	Columns []string
	Rows    [][]float64
}

// boundRow is one (possibly joined) input tuple: one row per binding in
// FROM/JOIN order (later entries are nil while the join chain is still
// being built).
type boundRow struct {
	rows []*datagen.Row
}

// executor holds the bound execution state.
type executor struct {
	stmt     *sqlparse.SelectStmt
	bindings []string // in FROM order
	tables   map[string]*Table
}

// Execute runs the statement over the given tables (keyed by table name).
func Execute(stmt *sqlparse.SelectStmt, tables map[string]*Table) (*Result, error) {
	ex := &executor{stmt: stmt, tables: map[string]*Table{}}
	bind := func(tr sqlparse.TableRef) error {
		t, ok := tables[tr.Name]
		if !ok {
			return fmt.Errorf("rowengine: table %q is not materialized", tr.Name)
		}
		b := tr.Binding()
		if _, dup := ex.tables[b]; dup {
			return fmt.Errorf("rowengine: duplicate binding %q", b)
		}
		ex.tables[b] = t
		ex.bindings = append(ex.bindings, b)
		return nil
	}
	if err := bind(stmt.From); err != nil {
		return nil, err
	}
	for i := range stmt.Joins {
		if err := bind(stmt.Joins[i].Table); err != nil {
			return nil, err
		}
	}

	rows, err := ex.produce()
	if err != nil {
		return nil, err
	}
	rows, err = ex.filter(rows)
	if err != nil {
		return nil, err
	}
	var res *Result
	if ex.stmt.HasAggregates() || len(ex.stmt.GroupBy) > 0 {
		res, err = ex.aggregate(rows)
	} else {
		res, err = ex.project(rows)
	}
	if err != nil {
		return nil, err
	}
	if err := orderAndLimit(res, stmt); err != nil {
		return nil, err
	}
	return res, nil
}

// orderAndLimit applies the ORDER BY keys (which must name output columns)
// and the LIMIT row cap to a computed result.
func orderAndLimit(res *Result, stmt *sqlparse.SelectStmt) error {
	if len(stmt.OrderBy) > 0 {
		idx := make([]int, len(stmt.OrderBy))
		for i, o := range stmt.OrderBy {
			j, err := outputColumn(res.Columns, o.Col)
			if err != nil {
				return err
			}
			idx[i] = j
		}
		sort.SliceStable(res.Rows, func(a, b int) bool {
			for i, o := range stmt.OrderBy {
				va, vb := res.Rows[a][idx[i]], res.Rows[b][idx[i]]
				if va == vb {
					continue
				}
				if o.Desc {
					return va > vb
				}
				return va < vb
			}
			return false
		})
	}
	if stmt.Limit > 0 && int64(len(res.Rows)) > stmt.Limit {
		res.Rows = res.Rows[:stmt.Limit]
	}
	return nil
}

// outputColumn resolves an ORDER BY reference against the result's output
// column names (exact rendered name, alias, or unqualified suffix match).
func outputColumn(columns []string, c sqlparse.ColRef) (int, error) {
	want := c.String()
	match := -1
	for j, name := range columns {
		if name == want || name == c.Column || strings.HasSuffix(name, "."+c.Column) {
			if match >= 0 {
				return 0, fmt.Errorf("rowengine: ambiguous ORDER BY column %q", want)
			}
			match = j
		}
	}
	if match < 0 {
		return 0, fmt.Errorf("rowengine: ORDER BY column %q is not in the output", want)
	}
	return match, nil
}

// colIndex resolves a column reference to (binding, row index).
func (ex *executor) colIndex(c sqlparse.ColRef) (string, int, error) {
	idx, err := datagen.ColumnIndex(c.Column)
	if err != nil {
		return "", 0, err
	}
	if c.Qualifier != "" {
		if _, ok := ex.tables[c.Qualifier]; !ok {
			return "", 0, fmt.Errorf("rowengine: unknown binding %q", c.Qualifier)
		}
		return c.Qualifier, idx, nil
	}
	if len(ex.bindings) == 1 {
		return ex.bindings[0], idx, nil
	}
	return "", 0, fmt.Errorf("rowengine: ambiguous unqualified column %q in a join", c.Column)
}

// bindingIndex returns a binding's position in FROM/JOIN order.
func (ex *executor) bindingIndex(binding string) (int, error) {
	for i, b := range ex.bindings {
		if b == binding {
			return i, nil
		}
	}
	return 0, fmt.Errorf("rowengine: unresolved binding %q", binding)
}

// value evaluates a column reference on a bound row.
func (ex *executor) value(r boundRow, c sqlparse.ColRef) (float64, error) {
	b, idx, err := ex.colIndex(c)
	if err != nil {
		return 0, err
	}
	bi, err := ex.bindingIndex(b)
	if err != nil {
		return 0, err
	}
	if bi >= len(r.rows) || r.rows[bi] == nil {
		return 0, fmt.Errorf("rowengine: no joined row for binding %q", b)
	}
	return float64(r.rows[bi][idx]), nil
}

// eval evaluates an additive expression on a bound row.
func (ex *executor) eval(r boundRow, e sqlparse.Expr) (float64, error) {
	total := 0.0
	for _, t := range e.Terms {
		v := t.Constant
		if t.Col != nil {
			var err error
			v, err = ex.value(r, *t.Col)
			if err != nil {
				return 0, err
			}
		}
		if t.Negated {
			total -= v
		} else {
			total += v
		}
	}
	return total, nil
}

// produce yields the scan output or the left-deep join chain's tuples:
// each JOIN hash-builds on the newly joined table and probes with the
// intermediate result so far.
func (ex *executor) produce() ([]boundRow, error) {
	n := len(ex.bindings)
	left := ex.tables[ex.bindings[0]]
	cur := make([]boundRow, len(left.Rows))
	for i := range left.Rows {
		rows := make([]*datagen.Row, n)
		rows[0] = &left.Rows[i]
		cur[i] = boundRow{rows: rows}
	}
	for ji := range ex.stmt.Joins {
		j := &ex.stmt.Joins[ji]
		next := ex.tables[ex.bindings[ji+1]]
		if j.Cross {
			out := make([]boundRow, 0, len(cur)*len(next.Rows))
			for _, r := range cur {
				for k := range next.Rows {
					rows := append([]*datagen.Row(nil), r.rows...)
					rows[ji+1] = &next.Rows[k]
					out = append(out, boundRow{rows: rows})
				}
			}
			cur = out
			continue
		}
		// One condition side must reference the newly joined table; the
		// other references an earlier binding in the chain.
		newCol, probeCol := j.Left, j.Right
		nb, _, err := ex.colIndex(newCol)
		if err != nil {
			return nil, err
		}
		if nb != ex.bindings[ji+1] {
			newCol, probeCol = j.Right, j.Left
		}
		nb, nIdx, err := ex.colIndex(newCol)
		if err != nil {
			return nil, err
		}
		if nb != ex.bindings[ji+1] {
			return nil, fmt.Errorf("rowengine: join %d condition does not reference %q", ji+1, ex.bindings[ji+1])
		}
		pb, _, err := ex.colIndex(probeCol)
		if err != nil {
			return nil, err
		}
		pi, err := ex.bindingIndex(pb)
		if err != nil {
			return nil, err
		}
		if pi > ji {
			return nil, fmt.Errorf("rowengine: join %d probes binding %q which is not yet joined", ji+1, pb)
		}
		ht := make(map[int32][]*datagen.Row, len(next.Rows))
		for k := range next.Rows {
			key := next.Rows[k][nIdx]
			ht[key] = append(ht[key], &next.Rows[k])
		}
		var out []boundRow
		for _, r := range cur {
			key, err := ex.value(r, probeCol)
			if err != nil {
				return nil, err
			}
			for _, match := range ht[int32(key)] {
				rows := append([]*datagen.Row(nil), r.rows...)
				rows[ji+1] = match
				out = append(out, boundRow{rows: rows})
			}
		}
		cur = out
	}
	return cur, nil
}

// filter applies the WHERE conjuncts.
func (ex *executor) filter(rows []boundRow) ([]boundRow, error) {
	if len(ex.stmt.Where) == 0 {
		return rows, nil
	}
	out := rows[:0]
	for _, r := range rows {
		keep := true
		for _, p := range ex.stmt.Where {
			v, err := ex.eval(r, p.Left)
			if err != nil {
				return nil, err
			}
			if !compare(v, p.Op, p.Value) {
				keep = false
				break
			}
		}
		if keep {
			out = append(out, r)
		}
	}
	return out, nil
}

func compare(v float64, op string, rhs float64) bool {
	switch op {
	case "=":
		return v == rhs
	case "<":
		return v < rhs
	case "<=":
		return v <= rhs
	case ">":
		return v > rhs
	case ">=":
		return v >= rhs
	case "<>":
		return v != rhs
	default:
		return false
	}
}

// project renders non-aggregate output.
func (ex *executor) project(rows []boundRow) (*Result, error) {
	items := ex.stmt.Items
	// Expand `*` to every materialized column of every binding.
	var cols []sqlparse.ColRef
	var names []string
	for _, it := range items {
		if it.Star {
			for _, b := range ex.bindings {
				for _, d := range datagen.DupFactors() {
					name := fmt.Sprintf("a%d", d)
					cols = append(cols, sqlparse.ColRef{Qualifier: b, Column: name})
					names = append(names, b+"."+name)
				}
				cols = append(cols, sqlparse.ColRef{Qualifier: b, Column: "z"})
				names = append(names, b+".z")
			}
			continue
		}
		cols = append(cols, it.Col)
		if it.Alias != "" {
			names = append(names, it.Alias)
		} else {
			names = append(names, it.Col.String())
		}
	}
	res := &Result{Columns: names}
	for _, r := range rows {
		out := make([]float64, len(cols))
		for i, c := range cols {
			v, err := ex.value(r, c)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		res.Rows = append(res.Rows, out)
	}
	return res, nil
}

// aggState accumulates one aggregate for one group.
type aggState struct {
	sum   float64
	count float64
	min   float64
	max   float64
}

// aggregate computes GROUP BY output.
func (ex *executor) aggregate(rows []boundRow) (*Result, error) {
	type group struct {
		keys []float64
		aggs []aggState
	}
	var aggItems []sqlparse.SelectItem
	var names []string
	for _, it := range ex.stmt.Items {
		if it.Star {
			return nil, fmt.Errorf("rowengine: * cannot mix with aggregates")
		}
		if it.Agg == sqlparse.AggNone {
			// Plain columns must appear in GROUP BY.
			found := false
			for _, g := range ex.stmt.GroupBy {
				if g.String() == it.Col.String() || g.Column == it.Col.Column {
					found = true
					break
				}
			}
			if !found {
				return nil, fmt.Errorf("rowengine: column %s not in GROUP BY", it.Col)
			}
		}
		if it.Alias != "" {
			names = append(names, it.Alias)
		} else {
			names = append(names, it.String())
		}
		aggItems = append(aggItems, it)
	}

	groups := map[string]*group{}
	var order []string
	for _, r := range rows {
		keys := make([]float64, len(ex.stmt.GroupBy))
		keyStr := ""
		for i, g := range ex.stmt.GroupBy {
			v, err := ex.value(r, g)
			if err != nil {
				return nil, err
			}
			keys[i] = v
			keyStr += fmt.Sprintf("%v|", v)
		}
		gr, ok := groups[keyStr]
		if !ok {
			gr = &group{keys: keys, aggs: make([]aggState, len(aggItems))}
			for i := range gr.aggs {
				gr.aggs[i].min = math.Inf(1)
				gr.aggs[i].max = math.Inf(-1)
			}
			groups[keyStr] = gr
			order = append(order, keyStr)
		}
		for i, it := range aggItems {
			if it.Agg == sqlparse.AggNone {
				continue
			}
			v, err := ex.eval(r, it.Arg)
			if err != nil {
				return nil, err
			}
			st := &gr.aggs[i]
			st.sum += v
			st.count++
			if v < st.min {
				st.min = v
			}
			if v > st.max {
				st.max = v
			}
		}
	}
	sort.Strings(order)
	res := &Result{Columns: names}
	for _, k := range order {
		gr := groups[k]
		out := make([]float64, len(aggItems))
		for i, it := range aggItems {
			switch it.Agg {
			case sqlparse.AggNone:
				// Group key column: find its position in GROUP BY.
				for gi, g := range ex.stmt.GroupBy {
					if g.String() == it.Col.String() || g.Column == it.Col.Column {
						out[i] = gr.keys[gi]
						break
					}
				}
			case sqlparse.AggSum:
				out[i] = gr.aggs[i].sum
			case sqlparse.AggCount:
				out[i] = gr.aggs[i].count
			case sqlparse.AggAvg:
				if gr.aggs[i].count > 0 {
					out[i] = gr.aggs[i].sum / gr.aggs[i].count
				}
			case sqlparse.AggMin:
				out[i] = gr.aggs[i].min
			case sqlparse.AggMax:
				out[i] = gr.aggs[i].max
			}
		}
		res.Rows = append(res.Rows, out)
	}
	return res, nil
}
