package metrics

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	c.Add(5)
	if c.Value() != 8005 {
		t.Errorf("Counter = %d, want 8005", c.Value())
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	h := NewLatencyHistogram()
	if s := h.Snapshot(); s.Count != 0 || len(s.Buckets) != len(h.bounds) {
		t.Errorf("empty snapshot = %+v", s)
	}
	// 90 fast observations, 10 slow ones.
	for i := 0; i < 90; i++ {
		h.Observe(100 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(2 * time.Second)
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.P50Sec > 0.001 {
		t.Errorf("p50 = %v, want sub-millisecond", s.P50Sec)
	}
	if s.P95Sec < 1 || s.P99Sec < 1 {
		t.Errorf("p95/p99 = %v/%v, want seconds-scale", s.P95Sec, s.P99Sec)
	}
	if s.MeanSec <= 0 || s.SumSeconds < 20 {
		t.Errorf("mean/sum = %v/%v", s.MeanSec, s.SumSeconds)
	}
	var bucketTotal uint64
	for _, b := range s.Buckets {
		bucketTotal += b.Count
	}
	if bucketTotal != 100 {
		t.Errorf("bucket counts sum to %d", bucketTotal)
	}
}

func TestHistogramOverflow(t *testing.T) {
	h := NewLatencyHistogram()
	h.Observe(10 * time.Minute)
	s := h.Snapshot()
	if s.Overflow != 1 {
		t.Errorf("overflow = %d, want 1", s.Overflow)
	}
	for _, b := range s.Buckets {
		if b.Count != 0 {
			t.Errorf("bucket %v holds %d observations, want 0", b.UpperBoundSec, b.Count)
		}
	}
	// Quantiles clamp to the top finite bound (the snapshot stays
	// JSON-marshalable — no infinities).
	top := s.Buckets[len(s.Buckets)-1].UpperBoundSec
	if s.P50Sec != top {
		t.Errorf("p50 of all-overflow = %v, want clamp to %v", s.P50Sec, top)
	}
}

// TestHistogramBucketBounds pins the latency bucket layout: exponential
// bounds from 50 µs, doubling to the last bound under 110 s. The Prometheus
// exposition renders exactly these bounds as le labels, so a layout change
// must be deliberate.
func TestHistogramBucketBounds(t *testing.T) {
	want := []float64{
		5e-05, 0.0001, 0.0002, 0.0004, 0.0008, 0.0016, 0.0032, 0.0064,
		0.0128, 0.0256, 0.0512, 0.1024, 0.2048, 0.4096, 0.8192, 1.6384,
		3.2768, 6.5536, 13.1072, 26.2144, 52.4288, 104.8576,
	}
	s := NewLatencyHistogram().Snapshot()
	if len(s.Buckets) != len(want) {
		t.Fatalf("bucket count = %d, want %d", len(s.Buckets), len(want))
	}
	for i, tc := range want {
		if got := s.Buckets[i].UpperBoundSec; got != tc {
			t.Errorf("bound[%d] = %v, want %v", i, got, tc)
		}
	}
	// An observation on a bound lands in that bucket (bounds are inclusive).
	h := NewLatencyHistogram()
	h.Observe(time.Duration(want[3] * float64(time.Second)))
	if s := h.Snapshot(); s.Buckets[3].Count != 1 {
		t.Errorf("boundary observation landed in %+v", s.Buckets[:5])
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewLatencyHistogram()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				h.Observe(time.Millisecond)
				h.Snapshot()
			}
		}()
	}
	wg.Wait()
	if got := h.Snapshot().Count; got != 4000 {
		t.Errorf("count = %d, want 4000", got)
	}
}

// TestRateMeterClock drives the sliding window deterministically through the
// injectable clock — no sleeps: ticks spread over advancing seconds, partial
// expiry as the window slides, and full expiry once it passes.
func TestRateMeterClock(t *testing.T) {
	now := time.Unix(5000, 0)
	r := NewRateMeterClock(func() time.Time { return now })
	// 3 events/sec for 10 consecutive seconds.
	for s := 0; s < 10; s++ {
		for i := 0; i < 3; i++ {
			r.Tick()
		}
		now = now.Add(time.Second)
	}
	if rate := r.Rate(); math.Abs(rate-30.0/rateWindow) > 1e-9 {
		t.Errorf("rate = %v, want %v", rate, 30.0/rateWindow)
	}
	// Slide most of the window past the burst: events sit in seconds
	// [5000,5010); at now = 5065 only slots strictly newer than now-60
	// (5006..5009) survive → 12 events.
	now = time.Unix(5000+65, 0)
	if rate := r.Rate(); math.Abs(rate-12.0/rateWindow) > 1e-9 {
		t.Errorf("partially expired rate = %v, want %v", rate, 12.0/rateWindow)
	}
	// Everything expires once the window fully passes.
	now = time.Unix(5000+10+rateWindow, 0)
	if rate := r.Rate(); rate != 0 {
		t.Errorf("expired rate = %v", rate)
	}
	// Nil clock selects the wall clock rather than panicking.
	NewRateMeterClock(nil).Tick()
}

func TestAccuracyWindow(t *testing.T) {
	a := NewAccuracy(4)
	if s := a.Snapshot(); s.Count != 0 || s.Window != 0 || s.MeanQError != 0 {
		t.Errorf("empty snapshot = %+v", s)
	}
	// Perfect predictions: q-error exactly 1, MAPE 0.
	for i := 0; i < 3; i++ {
		a.Observe(2.0, 2.0)
	}
	s := a.Snapshot()
	if s.Count != 3 || s.Window != 3 {
		t.Fatalf("count/window = %d/%d", s.Count, s.Window)
	}
	if s.MeanQError != 1 || s.MaxQError != 1 || s.MAPEPercent != 0 || s.Drifting {
		t.Errorf("perfect snapshot = %+v", s)
	}
	// The window rolls: 4 skewed observations evict the perfect ones.
	// predicted 1 vs actual 4 → q-error 4, MAPE 75%.
	for i := 0; i < 4; i++ {
		a.Observe(1.0, 4.0)
	}
	s = a.Snapshot()
	if s.Count != 7 || s.Window != 4 {
		t.Fatalf("rolled count/window = %d/%d", s.Count, s.Window)
	}
	if s.MeanQError != 4 || s.MedianQError != 4 || s.P95QError != 4 || s.MaxQError != 4 {
		t.Errorf("skewed q-errors = %+v", s)
	}
	if math.Abs(s.MAPEPercent-75) > 1e-9 {
		t.Errorf("MAPE = %v, want 75", s.MAPEPercent)
	}
	if !s.Drifting {
		t.Error("mean q-error 4 not flagged as drifting")
	}
	// Overestimates count symmetrically: predicted 4 vs actual 1 is the
	// same q-error 4.
	b := NewAccuracy(0)
	b.Observe(4.0, 1.0)
	if s := b.Snapshot(); s.MeanQError != 4 {
		t.Errorf("overestimate q-error = %v, want 4", s.MeanQError)
	}
	// Degenerate actuals stay finite.
	b.Observe(1.0, 0)
	if s := b.Snapshot(); math.IsInf(s.MaxQError, 1) || math.IsNaN(s.MaxQError) {
		t.Errorf("zero-actual q-error = %v", s.MaxQError)
	}
	// A raised threshold unflags drift.
	a.SetDriftThreshold(10)
	if a.Snapshot().Drifting {
		t.Error("drift flagged above custom threshold")
	}
	a.SetDriftThreshold(0) // restores the default
	if !a.Snapshot().Drifting {
		t.Error("default threshold not restored")
	}
}

func TestAccuracyConcurrent(t *testing.T) {
	a := NewAccuracy(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				a.Observe(1.0, 2.0)
				a.Snapshot()
			}
		}()
	}
	wg.Wait()
	if s := a.Snapshot(); s.Count != 4000 || s.MeanQError != 2 {
		t.Errorf("concurrent snapshot = %+v", s)
	}
}

func TestRateMeter(t *testing.T) {
	now := time.Unix(1000, 0)
	r := NewRateMeter()
	r.now = func() time.Time { return now }
	for i := 0; i < 120; i++ {
		r.Tick()
	}
	if rate := r.Rate(); math.Abs(rate-2) > 1e-9 {
		t.Errorf("rate = %v, want 2 (120 events / 60s window)", rate)
	}
	// Everything expires once the window slides past.
	now = time.Unix(1000+2*rateWindow, 0)
	if rate := r.Rate(); rate != 0 {
		t.Errorf("rate after expiry = %v", rate)
	}
	// A slot is reused cleanly after expiry.
	r.Tick()
	if rate := r.Rate(); math.Abs(rate-1.0/rateWindow) > 1e-9 {
		t.Errorf("rate after reuse = %v", rate)
	}
}

// TestRateMeterConcurrent pins the CAS tick path: with the clock frozen,
// every concurrent Tick must land in the same slot without losing a count,
// and Rate scans without blocking the writers.
func TestRateMeterConcurrent(t *testing.T) {
	r := NewRateMeterClock(func() time.Time { return time.Unix(5000, 0) })
	var wg sync.WaitGroup
	const goroutines, ticks = 8, 500
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < ticks; i++ {
				r.Tick()
				if i%97 == 0 {
					r.Rate()
				}
			}
		}()
	}
	wg.Wait()
	if got, want := r.Rate(), float64(goroutines*ticks)/60; got != want {
		t.Errorf("rate = %v, want %v", got, want)
	}
}

// TestAccuracyResetRefill checks the striped window refills evenly after
// Reset and keeps the lifetime count.
func TestAccuracyResetRefill(t *testing.T) {
	a := NewAccuracy(16)
	for i := 0; i < 10; i++ {
		a.Observe(1, 1)
	}
	a.Reset()
	for i := 0; i < 6; i++ {
		a.Observe(2, 1)
	}
	s := a.Snapshot()
	if s.Count != 16 {
		t.Errorf("lifetime count = %d, want 16", s.Count)
	}
	if s.Window != 6 {
		t.Errorf("window after reset+6 = %d, want 6", s.Window)
	}
	if s.MeanQError != 2 {
		t.Errorf("mean q-error = %v, want 2 (only post-reset samples)", s.MeanQError)
	}
}
