package metrics

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	c.Add(5)
	if c.Value() != 8005 {
		t.Errorf("Counter = %d, want 8005", c.Value())
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	h := NewLatencyHistogram()
	if s := h.Snapshot(); s.Count != 0 || len(s.Buckets) != 0 {
		t.Errorf("empty snapshot = %+v", s)
	}
	// 90 fast observations, 10 slow ones.
	for i := 0; i < 90; i++ {
		h.Observe(100 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(2 * time.Second)
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.P50Sec > 0.001 {
		t.Errorf("p50 = %v, want sub-millisecond", s.P50Sec)
	}
	if s.P95Sec < 1 || s.P99Sec < 1 {
		t.Errorf("p95/p99 = %v/%v, want seconds-scale", s.P95Sec, s.P99Sec)
	}
	if s.MeanSec <= 0 || s.SumSeconds < 20 {
		t.Errorf("mean/sum = %v/%v", s.MeanSec, s.SumSeconds)
	}
	var bucketTotal uint64
	for _, b := range s.Buckets {
		bucketTotal += b.Count
	}
	if bucketTotal != 100 {
		t.Errorf("bucket counts sum to %d", bucketTotal)
	}
}

func TestHistogramOverflow(t *testing.T) {
	h := NewLatencyHistogram()
	h.Observe(10 * time.Minute)
	s := h.Snapshot()
	if len(s.Buckets) != 1 || !math.IsInf(s.Buckets[0].UpperBoundSec, 1) {
		t.Errorf("overflow snapshot = %+v", s)
	}
	if !math.IsInf(s.P50Sec, 1) {
		t.Errorf("p50 of all-overflow = %v", s.P50Sec)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewLatencyHistogram()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				h.Observe(time.Millisecond)
				h.Snapshot()
			}
		}()
	}
	wg.Wait()
	if got := h.Snapshot().Count; got != 4000 {
		t.Errorf("count = %d, want 4000", got)
	}
}

func TestRateMeter(t *testing.T) {
	now := time.Unix(1000, 0)
	r := NewRateMeter()
	r.now = func() time.Time { return now }
	for i := 0; i < 120; i++ {
		r.Tick()
	}
	if rate := r.Rate(); math.Abs(rate-2) > 1e-9 {
		t.Errorf("rate = %v, want 2 (120 events / 60s window)", rate)
	}
	// Everything expires once the window slides past.
	now = time.Unix(1000+2*rateWindow, 0)
	if rate := r.Rate(); rate != 0 {
		t.Errorf("rate after expiry = %v", rate)
	}
	// A slot is reused cleanly after expiry.
	r.Tick()
	if rate := r.Rate(); math.Abs(rate-1.0/rateWindow) > 1e-9 {
		t.Errorf("rate after reuse = %v", rate)
	}
}
