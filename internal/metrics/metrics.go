// Package metrics provides the lightweight instrumentation primitives the
// serving layer exports on /metrics: lock-free counters, striped fixed-bucket
// exponential latency histograms, and a sliding-window rate meter for QPS.
// Everything is safe for concurrent use and allocation-free on the hot
// (Observe/Inc/Tick) paths, and the write paths are striped or CAS-based so
// concurrent recorders on different cores do not serialize on a mutex or a
// shared cache line.
package metrics

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing event count.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// histStripes is the write fan-out of a Histogram. Fixed rather than sized
// from GOMAXPROCS so a histogram built early keeps scaling if the process is
// later given more cores (benchmarks sweep -cpu); 8 stripes of ~2 cache
// lines each is cheap enough to pay unconditionally.
const histStripes = 8

// histStripe is one independent accumulator. The trailing pad pushes the
// next stripe's hot fields (count/sumNanos, written on every observation)
// onto different cache lines.
type histStripe struct {
	counts   []atomic.Uint64
	overflow atomic.Uint64
	count    atomic.Uint64
	sumNanos atomic.Uint64
	_        [64]byte
}

// Histogram accumulates duration observations into exponential buckets. The
// zero value is not usable; call NewLatencyHistogram.
//
// Writes land on one of histStripes stripes; Snapshot merges them. Stripe
// selection rides sync.Pool's per-P caching: each P that observes gets a
// sticky stripe index from the pool, so steady-state recording touches only
// that core's stripe with no shared writes at all.
type Histogram struct {
	bounds  []float64 // upper bound (seconds) per bucket, ascending
	stripes [histStripes]histStripe
	idxPool sync.Pool // *int stripe indices, handed out round-robin

	// exemplars holds the most recent traced observation per bucket (index
	// len(bounds) is the overflow bucket). Written only by ObserveExemplar
	// when the observation carries a trace ID, read by Snapshot; a plain
	// last-writer-wins atomic pointer per slot, so the untraced hot path
	// never touches it.
	exemplars []atomic.Pointer[Exemplar]
}

// Exemplar ties one histogram observation back to the trace that produced
// it — the OpenMetrics exemplar carried on /metrics/prom bucket lines.
type Exemplar struct {
	ValueSec float64 `json:"value_sec"`
	TraceID  uint64  `json:"trace_id"`
	UnixNano int64   `json:"ts_ns"`
}

// NewLatencyHistogram builds a histogram with exponential bounds from 50 µs
// to ~100 s (factor 2 per bucket), suiting both sub-millisecond cache hits
// and multi-second cold plans.
func NewLatencyHistogram() *Histogram {
	var bounds []float64
	for b := 50e-6; b < 110; b *= 2 {
		bounds = append(bounds, b)
	}
	h := &Histogram{bounds: bounds, exemplars: make([]atomic.Pointer[Exemplar], len(bounds)+1)}
	for i := range h.stripes {
		h.stripes[i].counts = make([]atomic.Uint64, len(bounds))
	}
	var next atomic.Uint32
	h.idxPool.New = func() any {
		i := int(next.Add(1)-1) % histStripes
		return &i
	}
	return h
}

// stripe picks this P's sticky stripe. Get immediately followed by Put keeps
// the index in the pool's per-P private slot, so the same P keeps hitting the
// same stripe while different Ps spread round-robin — no goroutine IDs, no
// unsafe.
func (h *Histogram) stripe() *histStripe {
	v := h.idxPool.Get().(*int)
	s := &h.stripes[*v]
	h.idxPool.Put(v)
	return s
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	sec := d.Seconds()
	if sec < 0 {
		sec, d = 0, 0
	}
	st := h.stripe()
	st.count.Add(1)
	st.sumNanos.Add(uint64(d.Nanoseconds()))
	for i, b := range h.bounds {
		if sec <= b {
			st.counts[i].Add(1)
			return
		}
	}
	st.overflow.Add(1)
}

// ObserveExemplar records one duration and, when traceID is non-zero, pins
// an exemplar on the bucket the observation landed in. Traced queries pay
// one allocation and one atomic store beyond Observe; traceID 0 (the
// untraced case) is exactly Observe.
func (h *Histogram) ObserveExemplar(d time.Duration, traceID uint64) {
	if traceID == 0 {
		h.Observe(d)
		return
	}
	sec := d.Seconds()
	if sec < 0 {
		sec, d = 0, 0
	}
	ex := &Exemplar{ValueSec: sec, TraceID: traceID, UnixNano: time.Now().UnixNano()}
	st := h.stripe()
	st.count.Add(1)
	st.sumNanos.Add(uint64(d.Nanoseconds()))
	for i, b := range h.bounds {
		if sec <= b {
			st.counts[i].Add(1)
			h.exemplars[i].Store(ex)
			return
		}
	}
	st.overflow.Add(1)
	h.exemplars[len(h.bounds)].Store(ex)
}

// ObserveN records n observations of d each. Batch callers use it to
// attribute a batch's elapsed time across its statements with one bucket
// walk and three atomic adds instead of n of each.
func (h *Histogram) ObserveN(d time.Duration, n int) {
	if n <= 0 {
		return
	}
	sec := d.Seconds()
	if sec < 0 {
		sec, d = 0, 0
	}
	un := uint64(n)
	st := h.stripe()
	st.count.Add(un)
	st.sumNanos.Add(un * uint64(d.Nanoseconds()))
	for i, b := range h.bounds {
		if sec <= b {
			st.counts[i].Add(un)
			return
		}
	}
	st.overflow.Add(un)
}

// Bucket is one histogram bucket in a snapshot.
type Bucket struct {
	UpperBoundSec float64 `json:"le"`
	Count         uint64  `json:"count"`
	// Exemplar is the most recent traced observation that landed in this
	// bucket, when any query traced through it.
	Exemplar *Exemplar `json:"exemplar,omitempty"`
}

// HistogramSnapshot is a point-in-time view of a histogram with
// pre-computed quantile estimates. Buckets reports every bucket with its
// explicit upper bound — zero counts included — so consumers (the Prometheus
// exposition above all) see the full, stable bucket layout; observations
// beyond the last bound are counted in Overflow rather than as an infinite
// bound, keeping the snapshot JSON-marshalable and round-trippable.
type HistogramSnapshot struct {
	Count      uint64   `json:"count"`
	SumSeconds float64  `json:"sum_seconds"`
	MeanSec    float64  `json:"mean_sec"`
	P50Sec     float64  `json:"p50_sec"`
	P95Sec     float64  `json:"p95_sec"`
	P99Sec     float64  `json:"p99_sec"`
	Buckets    []Bucket `json:"buckets,omitempty"`
	// Overflow counts observations above the last bucket bound (the +Inf
	// bucket of the Prometheus exposition).
	Overflow uint64 `json:"overflow,omitempty"`
	// OverflowExemplar is the exemplar for the overflow (+Inf) bucket.
	OverflowExemplar *Exemplar `json:"overflow_exemplar,omitempty"`
}

// Snapshot captures the histogram by merging all stripes. Quantiles are
// upper-bound estimates from the bucket layout (each quantile reports the
// bound of the bucket that contains it, clamped to the last bound when the
// quantile falls into the overflow region).
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	var sumNanos uint64
	counts := make([]uint64, len(h.bounds))
	var total uint64
	for i := range h.stripes {
		st := &h.stripes[i]
		s.Count += st.count.Load()
		sumNanos += st.sumNanos.Load()
		s.Overflow += st.overflow.Load()
		for j := range counts {
			counts[j] += st.counts[j].Load()
		}
	}
	s.SumSeconds = float64(sumNanos) / 1e9
	if s.Count > 0 {
		s.MeanSec = s.SumSeconds / float64(s.Count)
	}
	s.Buckets = make([]Bucket, len(h.bounds))
	for i, b := range h.bounds {
		s.Buckets[i] = Bucket{UpperBoundSec: b, Count: counts[i], Exemplar: h.exemplars[i].Load()}
		total += counts[i]
	}
	s.OverflowExemplar = h.exemplars[len(h.bounds)].Load()
	total += s.Overflow
	if total == 0 {
		return s
	}
	quantile := func(q float64) float64 {
		target := uint64(math.Ceil(q * float64(total)))
		if target == 0 {
			target = 1
		}
		var cum uint64
		for i, c := range counts {
			cum += c
			if cum >= target {
				return h.bounds[i]
			}
		}
		return h.bounds[len(h.bounds)-1]
	}
	s.P50Sec = quantile(0.50)
	s.P95Sec = quantile(0.95)
	s.P99Sec = quantile(0.99)
	return s
}

// rateWindow is the sliding window width of a RateMeter.
const rateWindow = 60

// RateMeter tracks events per second over a sliding 60-second window (the
// /metrics QPS figure). It keeps one slot per second and expires slots
// lazily as time advances.
//
// Each slot is a single atomic word packing the slot's unix second (top 32
// bits, truncated) with its event count (low 32 bits), so Tick is a CAS loop
// with no mutex and Rate is a pure scan — a /metrics scrape never stalls the
// per-request tick on the serving path. A slot only counts toward Rate when
// its stamp matches the one second in the current window that maps to it, so
// lazily-expired slots read as zero exactly as before. The 32-bit count
// saturation point (4.29 billion events in one second) and the 136-year
// stamp wrap are both beyond any rate this process can see.
type RateMeter struct {
	slots [rateWindow]atomic.Uint64
	now   func() time.Time // injectable clock for tests
}

// NewRateMeter builds a meter using the wall clock.
func NewRateMeter() *RateMeter { return &RateMeter{now: time.Now} }

// NewRateMeterClock builds a meter reading time from now — the injectable
// clock form, so sliding-window behaviour is testable without sleeping.
// A nil now selects the wall clock.
func NewRateMeterClock(now func() time.Time) *RateMeter {
	if now == nil {
		now = time.Now
	}
	return &RateMeter{now: now}
}

// Tick records one event.
func (r *RateMeter) Tick() {
	sec := r.now().Unix()
	slot := &r.slots[int(sec%rateWindow)]
	stamp := uint64(uint32(sec)) << 32
	for {
		v := slot.Load()
		if v&^uint64(1<<32-1) == stamp {
			if slot.CompareAndSwap(v, v+1) {
				return
			}
		} else if slot.CompareAndSwap(v, stamp|1) {
			return
		}
	}
}

// Rate returns events/second averaged over the window, counting only slots
// that belong to the last rateWindow seconds.
func (r *RateMeter) Rate() float64 {
	sec := r.now().Unix()
	var total uint64
	for i := range r.slots {
		v := r.slots[i].Load()
		if v == 0 {
			continue
		}
		// The one second in (sec-rateWindow, sec] that maps to slot i; the
		// slot counts only if it was stamped for exactly that second.
		want := sec - ((sec-int64(i))%rateWindow+rateWindow)%rateWindow
		if uint32(v>>32) == uint32(want) {
			total += v & (1<<32 - 1)
		}
	}
	return float64(total) / rateWindow
}
