// Package metrics provides the lightweight instrumentation primitives the
// serving layer exports on /metrics: lock-free counters, fixed-bucket
// exponential latency histograms, and a sliding-window rate meter for QPS.
// Everything is safe for concurrent use and allocation-free on the hot
// (Observe/Inc) paths.
package metrics

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing event count.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Histogram accumulates duration observations into exponential buckets. The
// zero value is not usable; call NewLatencyHistogram.
type Histogram struct {
	bounds   []float64 // upper bound (seconds) per bucket, ascending
	counts   []atomic.Uint64
	overflow atomic.Uint64
	count    atomic.Uint64
	sumNanos atomic.Uint64
}

// NewLatencyHistogram builds a histogram with exponential bounds from 50 µs
// to ~100 s (factor 2 per bucket), suiting both sub-millisecond cache hits
// and multi-second cold plans.
func NewLatencyHistogram() *Histogram {
	var bounds []float64
	for b := 50e-6; b < 110; b *= 2 {
		bounds = append(bounds, b)
	}
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds))}
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	sec := d.Seconds()
	if sec < 0 {
		sec = 0
	}
	h.count.Add(1)
	h.sumNanos.Add(uint64(d.Nanoseconds()))
	for i, b := range h.bounds {
		if sec <= b {
			h.counts[i].Add(1)
			return
		}
	}
	h.overflow.Add(1)
}

// ObserveN records n observations of d each. Batch callers use it to
// attribute a batch's elapsed time across its statements with one bucket
// walk and three atomic adds instead of n of each.
func (h *Histogram) ObserveN(d time.Duration, n int) {
	if n <= 0 {
		return
	}
	sec := d.Seconds()
	if sec < 0 {
		sec, d = 0, 0
	}
	un := uint64(n)
	h.count.Add(un)
	h.sumNanos.Add(un * uint64(d.Nanoseconds()))
	for i, b := range h.bounds {
		if sec <= b {
			h.counts[i].Add(un)
			return
		}
	}
	h.overflow.Add(un)
}

// Bucket is one histogram bucket in a snapshot.
type Bucket struct {
	UpperBoundSec float64 `json:"le"`
	Count         uint64  `json:"count"`
}

// HistogramSnapshot is a point-in-time view of a histogram with
// pre-computed quantile estimates. Buckets reports every bucket with its
// explicit upper bound — zero counts included — so consumers (the Prometheus
// exposition above all) see the full, stable bucket layout; observations
// beyond the last bound are counted in Overflow rather than as an infinite
// bound, keeping the snapshot JSON-marshalable and round-trippable.
type HistogramSnapshot struct {
	Count      uint64   `json:"count"`
	SumSeconds float64  `json:"sum_seconds"`
	MeanSec    float64  `json:"mean_sec"`
	P50Sec     float64  `json:"p50_sec"`
	P95Sec     float64  `json:"p95_sec"`
	P99Sec     float64  `json:"p99_sec"`
	Buckets    []Bucket `json:"buckets,omitempty"`
	// Overflow counts observations above the last bucket bound (the +Inf
	// bucket of the Prometheus exposition).
	Overflow uint64 `json:"overflow,omitempty"`
}

// Snapshot captures the histogram. Quantiles are upper-bound estimates from
// the bucket layout (each quantile reports the bound of the bucket that
// contains it, clamped to the last bound when the quantile falls into the
// overflow region).
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Count: h.count.Load()}
	s.SumSeconds = float64(h.sumNanos.Load()) / 1e9
	if s.Count > 0 {
		s.MeanSec = s.SumSeconds / float64(s.Count)
	}
	counts := make([]uint64, len(h.bounds))
	var total uint64
	s.Buckets = make([]Bucket, len(h.bounds))
	for i, b := range h.bounds {
		counts[i] = h.counts[i].Load()
		total += counts[i]
		s.Buckets[i] = Bucket{UpperBoundSec: b, Count: counts[i]}
	}
	s.Overflow = h.overflow.Load()
	total += s.Overflow
	if total == 0 {
		return s
	}
	quantile := func(q float64) float64 {
		target := uint64(math.Ceil(q * float64(total)))
		if target == 0 {
			target = 1
		}
		var cum uint64
		for i, c := range counts {
			cum += c
			if cum >= target {
				return h.bounds[i]
			}
		}
		return h.bounds[len(h.bounds)-1]
	}
	s.P50Sec = quantile(0.50)
	s.P95Sec = quantile(0.95)
	s.P99Sec = quantile(0.99)
	return s
}

// rateWindow is the sliding window width of a RateMeter.
const rateWindow = 60

// RateMeter tracks events per second over a sliding 60-second window (the
// /metrics QPS figure). It keeps one slot per second and expires slots
// lazily as time advances.
type RateMeter struct {
	mu    sync.Mutex
	slots [rateWindow]uint64
	// stamp[i] is the unix second slots[i] last counted for; a slot whose
	// stamp is outside the window holds stale data and reads as zero.
	stamp [rateWindow]int64
	now   func() time.Time // injectable clock for tests
}

// NewRateMeter builds a meter using the wall clock.
func NewRateMeter() *RateMeter { return &RateMeter{now: time.Now} }

// NewRateMeterClock builds a meter reading time from now — the injectable
// clock form, so sliding-window behaviour is testable without sleeping.
// A nil now selects the wall clock.
func NewRateMeterClock(now func() time.Time) *RateMeter {
	if now == nil {
		now = time.Now
	}
	return &RateMeter{now: now}
}

// Tick records one event.
func (r *RateMeter) Tick() {
	sec := r.now().Unix()
	i := int(sec % rateWindow)
	r.mu.Lock()
	if r.stamp[i] != sec {
		r.stamp[i] = sec
		r.slots[i] = 0
	}
	r.slots[i]++
	r.mu.Unlock()
}

// Rate returns events/second averaged over the window, counting only slots
// that belong to the last rateWindow seconds.
func (r *RateMeter) Rate() float64 {
	sec := r.now().Unix()
	r.mu.Lock()
	defer r.mu.Unlock()
	var total uint64
	for i := range r.slots {
		if sec-r.stamp[i] < rateWindow {
			total += r.slots[i]
		}
	}
	return float64(total) / rateWindow
}
