package metrics

import (
	"math"
	"sort"
	"sync"
)

// DefaultAccuracyWindow is the rolling sample count an Accuracy keeps when
// none is configured.
const DefaultAccuracyWindow = 256

// DefaultDriftQError is the mean q-error above which an Accuracy flags its
// model as drifting. A q-error of 1 is a perfect estimate; the learned-cost
// literature treats sustained q-errors beyond ~2 as a model worth retuning.
const DefaultDriftQError = 2.0

// Accuracy tracks how well one estimator's predictions track reality: a
// rolling window of (predicted, actual) pairs per (system, operator kind),
// summarized as q-error and MAPE. The engine feeds it from every executed
// plan step, closing the paper's estimate-vs-observed loop operationally.
type Accuracy struct {
	mu     sync.Mutex
	pred   []float64
	act    []float64
	next   int    // next slot to overwrite
	filled int    // live samples (≤ window)
	total  uint64 // lifetime observations
	driftQ float64
}

// NewAccuracy builds a window holding the last n samples (n <= 0 selects
// DefaultAccuracyWindow) with the default drift threshold.
func NewAccuracy(n int) *Accuracy {
	if n <= 0 {
		n = DefaultAccuracyWindow
	}
	return &Accuracy{pred: make([]float64, n), act: make([]float64, n), driftQ: DefaultDriftQError}
}

// SetDriftThreshold overrides the mean q-error above which Snapshot reports
// Drifting (q <= 0 restores the default).
func (a *Accuracy) SetDriftThreshold(q float64) {
	if q <= 0 {
		q = DefaultDriftQError
	}
	a.mu.Lock()
	a.driftQ = q
	a.mu.Unlock()
}

// Observe records one executed operator: its predicted cost and the elapsed
// time actually observed.
func (a *Accuracy) Observe(predictedSec, actualSec float64) {
	a.mu.Lock()
	a.pred[a.next] = predictedSec
	a.act[a.next] = actualSec
	a.next = (a.next + 1) % len(a.pred)
	if a.filled < len(a.pred) {
		a.filled++
	}
	a.total++
	a.mu.Unlock()
}

// Reset empties the rolling window without discarding the lifetime
// observation count. The engine resets a (system, operator) window whenever
// the model behind it changes — promotion, rollback, or an in-place tuning
// pass — because the retained samples scored the *old* model: leaving them
// in place would keep the Drifting flag latched (and re-fire the tuner)
// long after the new model fixed the calibration.
func (a *Accuracy) Reset() {
	a.mu.Lock()
	a.next = 0
	a.filled = 0
	a.mu.Unlock()
}

// qError is the symmetric relative error max(p/a, a/p) — the standard
// cardinality/cost-estimation accuracy measure ("How Good Are Query
// Optimizers, Really?"). Non-positive inputs clamp to a tiny epsilon so the
// ratio stays finite.
func qError(p, a float64) float64 {
	const eps = 1e-9
	if p < eps {
		p = eps
	}
	if a < eps {
		a = eps
	}
	if p > a {
		return p / a
	}
	return a / p
}

// AccuracySnapshot summarizes one estimator's rolling accuracy window.
type AccuracySnapshot struct {
	// Count is the lifetime number of observations; Window is how many of
	// them the rolling statistics below cover.
	Count  uint64 `json:"count"`
	Window int    `json:"window"`
	// Q-error statistics over the window: 1 is perfect, 2 means estimates
	// are within 2x of reality.
	MeanQError   float64 `json:"mean_q_error"`
	MedianQError float64 `json:"median_q_error"`
	P95QError    float64 `json:"p95_q_error"`
	MaxQError    float64 `json:"max_q_error"`
	// MAPEPercent is the mean absolute percentage error of predictions
	// against observed times, over the window.
	MAPEPercent float64 `json:"mape_percent"`
	// Drifting reports the window's mean q-error exceeds the drift
	// threshold — the signal an offline retune should pick this model up.
	Drifting bool `json:"drifting"`
}

// Snapshot computes the window's accuracy statistics.
func (a *Accuracy) Snapshot() AccuracySnapshot {
	a.mu.Lock()
	n := a.filled
	qs := make([]float64, n)
	var mape float64
	for i := 0; i < n; i++ {
		p, ac := a.pred[i], a.act[i]
		qs[i] = qError(p, ac)
		den := math.Abs(ac)
		if den < 1e-9 {
			den = 1e-9
		}
		mape += math.Abs(p-ac) / den
	}
	s := AccuracySnapshot{Count: a.total, Window: n}
	drift := a.driftQ
	a.mu.Unlock()
	if n == 0 {
		return s
	}
	sort.Float64s(qs)
	var sum float64
	for _, q := range qs {
		sum += q
	}
	s.MeanQError = sum / float64(n)
	s.MedianQError = qs[(n-1)/2]
	s.P95QError = qs[int(math.Ceil(0.95*float64(n)))-1]
	s.MaxQError = qs[n-1]
	s.MAPEPercent = 100 * mape / float64(n)
	s.Drifting = s.MeanQError > drift
	return s
}
