package metrics

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// DefaultAccuracyWindow is the rolling sample count an Accuracy keeps when
// none is configured.
const DefaultAccuracyWindow = 256

// DefaultDriftQError is the mean q-error above which an Accuracy flags its
// model as drifting. A q-error of 1 is a perfect estimate; the learned-cost
// literature treats sustained q-errors beyond ~2 as a model worth retuning.
const DefaultDriftQError = 2.0

// accMaxStripes bounds the write fan-out of an Accuracy window.
const accMaxStripes = 8

// accStripe is one slice of the rolling window: window/S ring slots behind a
// small mutex. The pad keeps adjacent stripes' mutexes and ring cursors off
// shared cache lines.
type accStripe struct {
	mu     sync.Mutex
	pred   []float64
	act    []float64
	next   int // next slot to overwrite
	filled int // live samples (≤ len(pred))
	_      [64]byte
}

// Accuracy tracks how well one estimator's predictions track reality: a
// rolling window of (predicted, actual) pairs per (system, operator kind),
// summarized as q-error and MAPE. The engine feeds it from every executed
// plan step, closing the paper's estimate-vs-observed loop operationally.
//
// The window is striped: a global atomic cursor assigns observations to
// stripes round-robin, so the i-th observation always lands in stripe
// i mod S, slot (i/S) mod (window/S). That placement is a bijection onto the
// ring positions of the unsharded design — sequential callers keep exactly
// the last `window` samples, while concurrent recorders (every executed step
// on every core funnels through one of these) contend only 1/S of the time
// instead of on a single mutex. The stripe count is the largest power of two
// ≤ accMaxStripes dividing the window (1 for windows that resist splitting).
type Accuracy struct {
	stripes []accStripe
	total   atomic.Uint64 // lifetime observations; also the round-robin cursor
	driftQ  atomic.Uint64 // math.Float64bits of the drift threshold
}

// NewAccuracy builds a window holding the last n samples (n <= 0 selects
// DefaultAccuracyWindow) with the default drift threshold.
func NewAccuracy(n int) *Accuracy {
	if n <= 0 {
		n = DefaultAccuracyWindow
	}
	s := accMaxStripes
	for n%s != 0 {
		s /= 2
	}
	a := &Accuracy{stripes: make([]accStripe, s)}
	per := n / s
	for i := range a.stripes {
		a.stripes[i].pred = make([]float64, per)
		a.stripes[i].act = make([]float64, per)
	}
	a.driftQ.Store(math.Float64bits(DefaultDriftQError))
	return a
}

// SetDriftThreshold overrides the mean q-error above which Snapshot reports
// Drifting (q <= 0 restores the default).
func (a *Accuracy) SetDriftThreshold(q float64) {
	if q <= 0 {
		q = DefaultDriftQError
	}
	a.driftQ.Store(math.Float64bits(q))
}

// Observe records one executed operator: its predicted cost and the elapsed
// time actually observed.
func (a *Accuracy) Observe(predictedSec, actualSec float64) {
	k := a.total.Add(1) - 1
	st := &a.stripes[k%uint64(len(a.stripes))]
	st.mu.Lock()
	st.pred[st.next] = predictedSec
	st.act[st.next] = actualSec
	st.next = (st.next + 1) % len(st.pred)
	if st.filled < len(st.pred) {
		st.filled++
	}
	st.mu.Unlock()
}

// Reset empties the rolling window without discarding the lifetime
// observation count. The engine resets a (system, operator) window whenever
// the model behind it changes — promotion, rollback, or an in-place tuning
// pass — because the retained samples scored the *old* model: leaving them
// in place would keep the Drifting flag latched (and re-fire the tuner)
// long after the new model fixed the calibration.
func (a *Accuracy) Reset() {
	for i := range a.stripes {
		st := &a.stripes[i]
		st.mu.Lock()
		st.next = 0
		st.filled = 0
		st.mu.Unlock()
	}
}

// qError is the symmetric relative error max(p/a, a/p) — the standard
// cardinality/cost-estimation accuracy measure ("How Good Are Query
// Optimizers, Really?"). Non-positive inputs clamp to a tiny epsilon so the
// ratio stays finite.
func qError(p, a float64) float64 {
	const eps = 1e-9
	if p < eps {
		p = eps
	}
	if a < eps {
		a = eps
	}
	if p > a {
		return p / a
	}
	return a / p
}

// AccuracySnapshot summarizes one estimator's rolling accuracy window.
type AccuracySnapshot struct {
	// Count is the lifetime number of observations; Window is how many of
	// them the rolling statistics below cover.
	Count  uint64 `json:"count"`
	Window int    `json:"window"`
	// Q-error statistics over the window: 1 is perfect, 2 means estimates
	// are within 2x of reality.
	MeanQError   float64 `json:"mean_q_error"`
	MedianQError float64 `json:"median_q_error"`
	P95QError    float64 `json:"p95_q_error"`
	MaxQError    float64 `json:"max_q_error"`
	// MAPEPercent is the mean absolute percentage error of predictions
	// against observed times, over the window.
	MAPEPercent float64 `json:"mape_percent"`
	// Drifting reports the window's mean q-error exceeds the drift
	// threshold — the signal an offline retune should pick this model up.
	Drifting bool `json:"drifting"`
}

// Snapshot computes the window's accuracy statistics. Stripes are drained
// one at a time under their own mutexes, so a snapshot pauses at most 1/S of
// concurrent recording; the q-error and MAPE statistics are order-free, so
// the merge is exact for any quiesced window and a bounded-skew approximation
// while observations are in flight (same as any counter scrape).
func (a *Accuracy) Snapshot() AccuracySnapshot {
	var qs []float64
	var mape float64
	for i := range a.stripes {
		st := &a.stripes[i]
		st.mu.Lock()
		for j := 0; j < st.filled; j++ {
			p, ac := st.pred[j], st.act[j]
			qs = append(qs, qError(p, ac))
			den := math.Abs(ac)
			if den < 1e-9 {
				den = 1e-9
			}
			mape += math.Abs(p-ac) / den
		}
		st.mu.Unlock()
	}
	s := AccuracySnapshot{Count: a.total.Load(), Window: len(qs)}
	n := len(qs)
	if n == 0 {
		return s
	}
	sort.Float64s(qs)
	var sum float64
	for _, q := range qs {
		sum += q
	}
	s.MeanQError = sum / float64(n)
	s.MedianQError = qs[(n-1)/2]
	s.P95QError = qs[int(math.Ceil(0.95*float64(n)))-1]
	s.MaxQError = qs[n-1]
	s.MAPEPercent = 100 * mape / float64(n)
	s.Drifting = s.MeanQError > math.Float64frombits(a.driftQ.Load())
	return s
}
