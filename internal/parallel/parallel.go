// Package parallel provides the repo-wide bounded worker pool used by the
// training, experiment, and optimizer hot paths. Its primitives are designed
// around one invariant: results must be bit-identical no matter how many
// workers run. Map and ForEach get that for free (each index owns its output
// slot); MapReduce gets it by sharding work into fixed-size chunks and
// reducing the chunk results in ascending chunk order, so floating-point
// accumulation order never depends on scheduling or on the pool size.
package parallel

import (
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
)

// EnvWorkers is the environment variable overriding the pool size. Values
// ≤ 0 or non-numeric are ignored and the pool falls back to GOMAXPROCS.
const EnvWorkers = "INTELLISPHERE_WORKERS"

var override atomic.Int64

func init() {
	if v, err := strconv.Atoi(os.Getenv(EnvWorkers)); err == nil {
		SetWorkers(v)
	}
}

// SetWorkers overrides the default pool size. n ≤ 0 restores the automatic
// GOMAXPROCS-based sizing. Engine configuration and tests use it; individual
// call sites can also pass an explicit worker count where supported.
func SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	override.Store(int64(n))
}

// Workers returns the pool size: the SetWorkers / INTELLISPHERE_WORKERS
// override when present, otherwise GOMAXPROCS.
func Workers() int {
	if n := override.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// clampWorkers resolves a caller-supplied worker count (0 = default) against
// the number of available tasks.
func clampWorkers(workers, tasks int) int {
	if workers <= 0 {
		workers = Workers()
	}
	if workers > tasks {
		workers = tasks
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// ForEach runs fn(i) for every i in [0, n) across the pool and blocks until
// all calls return. Iterations must be independent; each writing only its own
// output keeps results deterministic.
func ForEach(n int, fn func(i int)) {
	ForEachN(0, n, fn)
}

// ForEachN is ForEach with an explicit worker count (0 = pool default).
func ForEachN(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	w := clampWorkers(workers, n)
	if w == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// Map applies fn to every index in [0, n) across the pool and returns the
// results in index order. When calls fail, the error of the lowest failing
// index is returned (matching what a serial loop would have reported first).
func Map[T any](n int, fn func(i int) (T, error)) ([]T, error) {
	return MapN(0, n, fn)
}

// MapN is Map with an explicit worker count (0 = pool default).
func MapN[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	out := make([]T, n)
	errs := make([]error, n)
	ForEachN(workers, n, func(i int) {
		out[i], errs[i] = fn(i)
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// MapReduce shards [0, n) into contiguous chunks of at most chunk indexes,
// processes the chunks concurrently — each on a pooled state S — and calls
// reduce exactly once per chunk in ascending chunk order. Because the chunk
// boundaries depend only on n and chunk, and the reduction order is fixed,
// the result is bit-identical for every worker count (including 1).
//
// newState allocates a fresh state, reset clears a recycled one before its
// next chunk, process folds indexes [start, end) into the state, and reduce
// folds one finished chunk state into the caller's accumulator. reduce runs
// on the calling goroutine; process calls run concurrently with it but never
// on the same state.
func MapReduce[S any](n, chunk, workers int, newState func() S, reset func(S), process func(s S, start, end int), reduce func(s S)) {
	if n <= 0 {
		return
	}
	if chunk <= 0 || chunk > n {
		chunk = n
	}
	numChunks := (n + chunk - 1) / chunk
	w := clampWorkers(workers, numChunks)
	if w == 1 {
		s := newState()
		for c := 0; c < numChunks; c++ {
			reset(s)
			start := c * chunk
			end := start + chunk
			if end > n {
				end = n
			}
			process(s, start, end)
			reduce(s)
		}
		return
	}

	// w+1 pooled states bound the in-flight chunks; workers claim chunk
	// indexes in ascending order, so the lowest unreduced chunk is always
	// among the in-flight ones and the ordered reducer below cannot starve.
	free := make(chan S, w+1)
	for i := 0; i < w+1; i++ {
		free <- newState()
	}
	type doneChunk struct {
		c int
		s S
	}
	ready := make(chan doneChunk, w+1)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				c := int(next.Add(1)) - 1
				if c >= numChunks {
					return
				}
				s := <-free
				reset(s)
				start := c * chunk
				end := start + chunk
				if end > n {
					end = n
				}
				process(s, start, end)
				ready <- doneChunk{c: c, s: s}
			}
		}()
	}
	pending := make(map[int]S, w)
	for reduced := 0; reduced < numChunks; {
		if s, ok := pending[reduced]; ok {
			reduce(s)
			delete(pending, reduced)
			free <- s
			reduced++
			continue
		}
		d := <-ready
		pending[d.c] = d.s
	}
	wg.Wait()
}
