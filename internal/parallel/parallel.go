// Package parallel provides the repo-wide bounded worker pool used by the
// training, experiment, and optimizer hot paths. Its primitives are designed
// around one invariant: results must be bit-identical no matter how many
// workers run. Map and ForEach get that for free (each index owns its output
// slot); MapReduce gets it by sharding work into fixed-size chunks and
// reducing the chunk results in ascending chunk order, so floating-point
// accumulation order never depends on scheduling or on the pool size.
package parallel

import (
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
)

// EnvWorkers is the environment variable overriding the pool size. Values
// ≤ 0 or non-numeric are ignored and the pool falls back to GOMAXPROCS.
const EnvWorkers = "INTELLISPHERE_WORKERS"

var override atomic.Int64

func init() {
	if v, err := strconv.Atoi(os.Getenv(EnvWorkers)); err == nil {
		SetWorkers(v)
	}
}

// SetWorkers overrides the default pool size. n ≤ 0 restores the automatic
// GOMAXPROCS-based sizing. Engine configuration and tests use it; individual
// call sites can also pass an explicit worker count where supported.
func SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	override.Store(int64(n))
}

// Workers returns the pool size: the SetWorkers / INTELLISPHERE_WORKERS
// override when present, otherwise GOMAXPROCS.
func Workers() int {
	if n := override.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// clampWorkers resolves a caller-supplied worker count (0 = default) against
// the number of available tasks.
func clampWorkers(workers, tasks int) int {
	if workers <= 0 {
		workers = Workers()
	}
	if workers > tasks {
		workers = tasks
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// ForEach runs fn(i) for every i in [0, n) across the pool and blocks until
// all calls return. Iterations must be independent; each writing only its own
// output keeps results deterministic.
func ForEach(n int, fn func(i int)) {
	ForEachN(0, n, fn)
}

// ForEachN is ForEach with an explicit worker count (0 = pool default).
func ForEachN(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	w := clampWorkers(workers, n)
	if w == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// Map applies fn to every index in [0, n) across the pool and returns the
// results in index order. When calls fail, the error of the lowest failing
// index is returned (matching what a serial loop would have reported first).
func Map[T any](n int, fn func(i int) (T, error)) ([]T, error) {
	return MapN(0, n, fn)
}

// MapN is Map with an explicit worker count (0 = pool default).
func MapN[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	out := make([]T, n)
	errs := make([]error, n)
	ForEachN(workers, n, func(i int) {
		out[i], errs[i] = fn(i)
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// MapReduce shards [0, n) into contiguous chunks of at most chunk indexes,
// processes the chunks concurrently — each on a pooled state S — and calls
// reduce exactly once per chunk in ascending chunk order. Because the chunk
// boundaries depend only on n and chunk, and the reduction order is fixed,
// the result is bit-identical for every worker count (including 1).
//
// newState allocates a fresh state, reset clears a recycled one before its
// next chunk, process folds indexes [start, end) into the state, and reduce
// folds one finished chunk state into the caller's accumulator. reduce runs
// on the calling goroutine; process calls run concurrently with it but never
// on the same state.
//
// MapReduce builds (and tears down) a Reducer per call; hot loops that run
// many reductions back to back should hold a Reducer instead.
func MapReduce[S any](n, chunk, workers int, newState func() S, reset func(S), process func(s S, start, end int), reduce func(s S)) {
	if n <= 0 {
		return
	}
	r := NewReducer(n, chunk, workers, newState)
	defer r.Close()
	r.Run(n, reset, process, reduce)
}

// Reducer is a reusable chunk-ordered reduction pipeline: per-slot states
// and worker goroutines are allocated once at construction and reused by
// every Run, so a hot loop (e.g. one reduction per training mini-batch)
// performs zero steady-state heap allocations and spawns no goroutines per
// run. The determinism contract matches MapReduce exactly: chunks reduce in
// ascending order, so results are bit-identical at any worker count.
//
// A Reducer is for a single caller: Run must not be invoked concurrently.
// Close releases the worker goroutines; the zero-worker (serial) form has
// none and Close is then a no-op.
type Reducer[S any] struct {
	chunk  int
	w      int
	states []S
	work   chan span // buffered for the worst-case chunk count of maxN
	free   chan S
	ready  chan doneChunk[S]
	wg     sync.WaitGroup

	// reset/process for the current Run; workers observe the updated values
	// through the happens-before edge of the work-channel send.
	reset   func(S)
	process func(S, int, int)

	// parked holds out-of-order chunk completions between reduces. It drains
	// to empty by the end of every Run, so reusing it keeps Run allocation-free.
	parked map[int]S
}

type span struct{ start, end int }

type doneChunk[S any] struct {
	c int
	s S
}

// NewReducer builds a pipeline for reductions over at most maxN indexes in
// chunks of the given size (chunk ≤ 0 selects maxN). workers bounds the
// concurrency (0 = pool default, 1 = serial with no goroutines).
func NewReducer[S any](maxN, chunk, workers int, newState func() S) *Reducer[S] {
	if maxN < 1 {
		maxN = 1
	}
	if chunk <= 0 || chunk > maxN {
		chunk = maxN
	}
	maxChunks := (maxN + chunk - 1) / chunk
	w := clampWorkers(workers, maxChunks)
	r := &Reducer[S]{chunk: chunk, w: w}
	if w == 1 {
		r.states = []S{newState()}
		return r
	}
	// w+1 pooled states bound the in-flight chunks; the work queue is FIFO
	// and spans are enqueued in ascending order, so the lowest unreduced
	// chunk is always among the in-flight ones and the ordered reducer in
	// Run cannot starve.
	r.free = make(chan S, w+1)
	for i := 0; i < w+1; i++ {
		r.free <- newState()
	}
	r.work = make(chan span, maxChunks)
	r.ready = make(chan doneChunk[S], w+1)
	r.parked = make(map[int]S, w)
	r.wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer r.wg.Done()
			for {
				// Acquire a state BEFORE claiming a span. Claiming first
				// would deadlock: a worker stalled waiting for a state holds
				// the lowest unreduced chunk hostage while the other workers
				// complete every later chunk, the reducer parks all w+1
				// states waiting for that chunk, and free never refills.
				// With the state in hand, every claimed span runs to
				// completion, so the lowest unreduced chunk always reaches
				// the ready channel and the ordered reducer makes progress.
				s := <-r.free
				sp, ok := <-r.work
				if !ok {
					return
				}
				r.reset(s)
				r.process(s, sp.start, sp.end)
				r.ready <- doneChunk[S]{c: sp.start / r.chunk, s: s}
			}
		}()
	}
	return r
}

// Run performs one chunk-ordered reduction over [0, n). n must not exceed
// the maxN the Reducer was built for. reduce runs on the calling goroutine.
func (r *Reducer[S]) Run(n int, reset func(S), process func(s S, start, end int), reduce func(s S)) {
	if n <= 0 {
		return
	}
	numChunks := (n + r.chunk - 1) / r.chunk
	if r.w == 1 {
		s := r.states[0]
		for c := 0; c < numChunks; c++ {
			reset(s)
			start := c * r.chunk
			end := start + r.chunk
			if end > n {
				end = n
			}
			process(s, start, end)
			reduce(s)
		}
		return
	}
	if numChunks > cap(r.work) {
		panic("parallel: Reducer.Run over more indexes than the Reducer was built for")
	}
	r.reset, r.process = reset, process
	for c := 0; c < numChunks; c++ {
		start := c * r.chunk
		end := start + r.chunk
		if end > n {
			end = n
		}
		r.work <- span{start: start, end: end}
	}
	// Reduce in ascending chunk order, parking out-of-order completions
	// (at most w+1 chunks are ever in flight).
	for reduced := 0; reduced < numChunks; {
		if s, ok := r.parked[reduced]; ok {
			reduce(s)
			delete(r.parked, reduced)
			r.free <- s
			reduced++
			continue
		}
		d := <-r.ready
		r.parked[d.c] = d.s
	}
}

// Close stops the worker goroutines. The Reducer must not be used after.
func (r *Reducer[S]) Close() {
	if r.work != nil {
		close(r.work)
		r.wg.Wait()
	}
}
