package parallel

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
)

func TestWorkersOverride(t *testing.T) {
	defer SetWorkers(0)
	SetWorkers(3)
	if got := Workers(); got != 3 {
		t.Errorf("Workers() = %d after SetWorkers(3)", got)
	}
	SetWorkers(0)
	if got := Workers(); got < 1 {
		t.Errorf("Workers() = %d with auto sizing, want >= 1", got)
	}
}

func TestForEachCoversEveryIndex(t *testing.T) {
	for _, w := range []int{1, 2, 7} {
		n := 153
		hits := make([]int, n)
		ForEachN(w, n, func(i int) { hits[i]++ })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", w, i, h)
			}
		}
	}
	ForEach(0, func(int) { t.Error("ForEach(0) must not call fn") })
}

func TestMapOrdersResults(t *testing.T) {
	out, err := MapN(4, 100, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestMapReturnsLowestIndexError(t *testing.T) {
	_, err := MapN(4, 50, func(i int) (int, error) {
		if i == 17 || i == 31 {
			return 0, fmt.Errorf("boom %d", i)
		}
		return i, nil
	})
	if err == nil || err.Error() != "boom 17" {
		t.Fatalf("err = %v, want boom 17", err)
	}
	if _, err := Map(0, func(int) (int, error) { return 0, errors.New("x") }); err != nil {
		t.Errorf("Map(0) err = %v", err)
	}
}

// mapReduceSum folds noisy floats chunk by chunk; the sum must be
// bit-identical across worker counts because reduction is chunk-ordered.
func mapReduceSum(vals []float64, chunk, workers int) float64 {
	total := 0.0
	MapReduce(len(vals), chunk, workers,
		func() *float64 { return new(float64) },
		func(s *float64) { *s = 0 },
		func(s *float64, start, end int) {
			for i := start; i < end; i++ {
				*s += vals[i]
			}
		},
		func(s *float64) { total += *s },
	)
	return total
}

func TestMapReduceDeterministicAcrossWorkerCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	vals := make([]float64, 1009) // prime length: exercises a ragged tail chunk
	for i := range vals {
		vals[i] = (rng.Float64() - 0.5) * 1e6
	}
	want := mapReduceSum(vals, 16, 1)
	for _, w := range []int{2, 3, 8} {
		for trial := 0; trial < 5; trial++ {
			if got := mapReduceSum(vals, 16, w); got != want {
				t.Fatalf("workers=%d trial %d: sum %v != serial %v", w, trial, got, want)
			}
		}
	}
}

func TestMapReduceVisitsEveryIndexOnce(t *testing.T) {
	n := 517
	hits := make([]int, n)
	chunks := 0
	MapReduce(n, 32, 4,
		func() []int { return nil },
		func([]int) {},
		func(s []int, start, end int) {
			for i := start; i < end; i++ {
				hits[i]++
			}
		},
		func([]int) { chunks++ },
	)
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d visited %d times", i, h)
		}
	}
	if want := (n + 31) / 32; chunks != want {
		t.Errorf("reduce called %d times, want %d", chunks, want)
	}
}

// Reducer reuse: many Runs on one pipeline must stay deterministic and
// ordered. This is also the regression test for a starvation deadlock where
// a worker claimed the lowest unreduced chunk and then stalled waiting for a
// pooled state while the other workers drained every remaining chunk —
// hundreds of small Runs back to back reproduce that interleaving reliably.
func TestReducerReuseManyRuns(t *testing.T) {
	vals := make([]float64, 300)
	for i := range vals {
		vals[i] = float64(i%17) - 8
	}
	red := NewReducer(len(vals), 64, 4, func() *float64 { return new(float64) })
	defer red.Close()

	sumOnce := func(n int) float64 {
		total := 0.0
		red.Run(n,
			func(s *float64) { *s = 0 },
			func(s *float64, start, end int) {
				for i := start; i < end; i++ {
					*s += vals[i]
				}
			},
			func(s *float64) { total += *s },
		)
		return total
	}
	want := sumOnce(len(vals))
	wantPartial := sumOnce(100) // n below capacity must work too
	for run := 0; run < 500; run++ {
		if got := sumOnce(len(vals)); got != want {
			t.Fatalf("run %d: sum %v != first run %v", run, got, want)
		}
		if got := sumOnce(100); got != wantPartial {
			t.Fatalf("run %d: partial sum %v != first run %v", run, got, wantPartial)
		}
	}
}

// A Reducer built for maxN must refuse larger Runs instead of silently
// corrupting the span queue.
func TestReducerRunBeyondCapacityPanics(t *testing.T) {
	red := NewReducer(100, 10, 4, func() *int { return new(int) })
	defer red.Close()
	defer func() {
		if recover() == nil {
			t.Error("expected panic for Run beyond Reducer capacity")
		}
	}()
	red.Run(101, func(*int) {}, func(*int, int, int) {}, func(*int) {})
}
