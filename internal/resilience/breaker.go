package resilience

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// State is a circuit breaker's position.
type State int

// Breaker states: Closed passes calls through, Open rejects them, HalfOpen
// admits a bounded number of probes to test recovery.
const (
	Closed State = iota
	Open
	HalfOpen
)

// String returns the conventional lowercase state name.
func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// MarshalJSON renders the state as its name.
func (s State) MarshalJSON() ([]byte, error) {
	return []byte(`"` + s.String() + `"`), nil
}

// UnmarshalJSON parses a state name produced by MarshalJSON.
func (s *State) UnmarshalJSON(data []byte) error {
	switch string(data) {
	case `"closed"`:
		*s = Closed
	case `"open"`:
		*s = Open
	case `"half-open"`:
		*s = HalfOpen
	default:
		return fmt.Errorf("resilience: unknown breaker state %s", data)
	}
	return nil
}

// BreakerConfig tunes a circuit breaker. The zero value selects the
// defaults noted per field.
type BreakerConfig struct {
	// FailureThreshold is the number of consecutive infrastructural
	// failures that opens the breaker (default 5).
	FailureThreshold int
	// OpenTimeout is how long an open breaker rejects calls before
	// admitting half-open probes (default 10s).
	OpenTimeout time.Duration
	// HalfOpenProbes bounds concurrent probe calls while half-open
	// (default 1).
	HalfOpenProbes int
	// SuccessThreshold is the number of consecutive half-open successes
	// that closes the breaker (default 2).
	SuccessThreshold int
	// Clock is the time source; nil selects time.Now. Tests inject fakes.
	Clock func() time.Time
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 5
	}
	if c.OpenTimeout <= 0 {
		c.OpenTimeout = 10 * time.Second
	}
	if c.HalfOpenProbes <= 0 {
		c.HalfOpenProbes = 1
	}
	if c.SuccessThreshold <= 0 {
		c.SuccessThreshold = 2
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	return c
}

// Breaker is one per-remote circuit breaker: closed → open after
// FailureThreshold consecutive infrastructural failures, open → half-open
// after OpenTimeout, half-open → closed after SuccessThreshold probe
// successes (or back to open on any probe failure). Every transition bumps
// a generation counter, the same staleness signal internal/registry uses,
// so consumers can cheaply detect "something changed since I looked".
type Breaker struct {
	// calm is 1 while the breaker is Closed with zero consecutive
	// failures — the steady state on a healthy system. Allow and
	// Record(success) short-circuit on it without taking mu, so the hot
	// serving path pays two atomic loads instead of two mutex round trips
	// per step. Every mutation of state or failures happens under mu and
	// re-derives calm before releasing it.
	calm     atomic.Int32
	mu       sync.Mutex
	cfg      BreakerConfig
	state    State
	failures int // consecutive infrastructural failures (closed)
	suc      int // consecutive successes (half-open)
	probes   int // in-flight half-open probes
	openedAt time.Time
	gen      uint64

	opens, rejected uint64
}

// NewBreaker builds a closed breaker.
func NewBreaker(cfg BreakerConfig) *Breaker {
	b := &Breaker{cfg: cfg.withDefaults()}
	b.calm.Store(1)
	return b
}

// syncCalm re-derives the lock-free steady-state flag. Caller holds mu.
func (b *Breaker) syncCalm() {
	if b.state == Closed && b.failures == 0 {
		b.calm.Store(1)
	} else {
		b.calm.Store(0)
	}
}

// Allow reports whether a call may proceed. Open breakers reject with
// ErrOpen until OpenTimeout has elapsed, then transition to half-open and
// admit up to HalfOpenProbes concurrent probes. Callers that got nil MUST
// report the call's outcome via Record.
func (b *Breaker) Allow() error {
	// Steady state: closed with no recent failures — admit without the
	// lock. A racing trip elsewhere is equivalent to this call having been
	// admitted just before the breaker opened, which Record tolerates.
	if b.calm.Load() == 1 {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	defer b.syncCalm()
	switch b.state {
	case Closed:
		return nil
	case Open:
		if b.cfg.Clock().Sub(b.openedAt) < b.cfg.OpenTimeout {
			b.rejected++
			return ErrOpen
		}
		b.transition(HalfOpen)
		b.suc, b.probes = 0, 0
		fallthrough
	default: // HalfOpen
		if b.probes >= b.cfg.HalfOpenProbes {
			b.rejected++
			return ErrOpen
		}
		b.probes++
		return nil
	}
}

// Record reports the outcome of an allowed call. Only infrastructural
// errors (transient faults, outages) count as failures — semantic errors
// say nothing about the system's health.
func (b *Breaker) Record(err error) {
	failed := err != nil && Infrastructural(err)
	// Steady state: a success on a calm closed breaker changes nothing.
	if !failed && b.calm.Load() == 1 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	defer b.syncCalm()
	switch b.state {
	case Closed:
		if !failed {
			b.failures = 0
			return
		}
		b.failures++
		if b.failures >= b.cfg.FailureThreshold {
			b.open()
		}
	case HalfOpen:
		if b.probes > 0 {
			b.probes--
		}
		if failed {
			b.open()
			return
		}
		b.suc++
		if b.suc >= b.cfg.SuccessThreshold {
			b.transition(Closed)
			b.failures = 0
		}
	case Open:
		// A call admitted before the trip finished later; nothing to do.
	}
}

// open moves to Open and stamps the rejection window. Caller holds mu.
func (b *Breaker) open() {
	b.transition(Open)
	b.openedAt = b.cfg.Clock()
	b.failures, b.suc, b.probes = 0, 0, 0
	b.opens++
}

// transition switches state and bumps the generation. Caller holds mu.
func (b *Breaker) transition(s State) {
	if b.state != s {
		b.state = s
		b.gen++
	}
}

// State returns the current position without side effects.
func (b *Breaker) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Generation returns the transition counter; it only ever increases.
func (b *Breaker) Generation() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.gen
}

// BreakerSnapshot is a point-in-time view of one breaker for health
// surfaces.
type BreakerSnapshot struct {
	State      State  `json:"state"`
	Generation uint64 `json:"generation"`
	Failures   int    `json:"consecutive_failures"`
	Opens      uint64 `json:"opens"`
	Rejected   uint64 `json:"rejected"`
}

// Snapshot captures the breaker's state and counters.
func (b *Breaker) Snapshot() BreakerSnapshot {
	b.mu.Lock()
	defer b.mu.Unlock()
	return BreakerSnapshot{
		State: b.state, Generation: b.gen,
		Failures: b.failures, Opens: b.opens, Rejected: b.rejected,
	}
}

// Group lazily manages one breaker per name (per remote system) under a
// shared configuration.
type Group struct {
	mu  sync.Mutex
	cfg BreakerConfig
	m   map[string]*Breaker
}

// NewGroup builds an empty breaker group.
func NewGroup(cfg BreakerConfig) *Group {
	return &Group{cfg: cfg, m: make(map[string]*Breaker)}
}

// For returns the breaker for name, creating it closed on first use.
func (g *Group) For(name string) *Breaker {
	g.mu.Lock()
	defer g.mu.Unlock()
	b, ok := g.m[name]
	if !ok {
		b = NewBreaker(g.cfg)
		g.m[name] = b
	}
	return b
}

// Snapshot captures every breaker keyed by name.
func (g *Group) Snapshot() map[string]BreakerSnapshot {
	g.mu.Lock()
	names := make([]string, 0, len(g.m))
	for n := range g.m {
		names = append(names, n)
	}
	breakers := make([]*Breaker, 0, len(names))
	sort.Strings(names)
	for _, n := range names {
		breakers = append(breakers, g.m[n])
	}
	g.mu.Unlock()
	out := make(map[string]BreakerSnapshot, len(names))
	for i, n := range names {
		out[n] = breakers[i].Snapshot()
	}
	return out
}

// OpenCount reports how many breakers are not closed — the "is the
// federation degraded" health signal.
func (g *Group) OpenCount() int {
	g.mu.Lock()
	breakers := make([]*Breaker, 0, len(g.m))
	for _, b := range g.m {
		breakers = append(breakers, b)
	}
	g.mu.Unlock()
	n := 0
	for _, b := range breakers {
		if b.State() != Closed {
			n++
		}
	}
	return n
}
