// Package resilience provides the fault-tolerance primitives the federated
// engine threads around every remote-system call: transient/unavailable
// error classification, retry with capped exponential backoff and
// deterministic jitter, and per-remote circuit breakers with
// generation-counted state transitions (the same invalidation idiom as
// internal/registry). Everything is deterministic given its seed and clock,
// so chaos tests are as reproducible as the rest of the simulator.
package resilience

import (
	"errors"
)

// ErrOpen is returned by Breaker.Allow while the breaker rejects calls. It
// classifies as unavailable (not transient): retrying immediately cannot
// help, but re-planning around the system can.
var ErrOpen = errors.New("resilience: circuit breaker open")

// temporary is implemented by errors describing a one-off failure that a
// retry may outlive (network blips, injected transient faults).
type temporary interface{ Temporary() bool }

// unavailable is implemented by errors describing a system that is down and
// will stay down for a while (outages, open breakers): retrying is futile,
// fallback planning is the remedy.
type unavailable interface{ Unavailable() bool }

// IsTransient reports whether err (or anything it wraps) marks itself as a
// temporary failure worth retrying.
func IsTransient(err error) bool {
	for err != nil {
		if t, ok := err.(temporary); ok {
			return t.Temporary()
		}
		err = errors.Unwrap(err)
	}
	return false
}

// IsUnavailable reports whether err (or anything it wraps) marks the target
// system as down — including an open circuit breaker.
func IsUnavailable(err error) bool {
	if errors.Is(err, ErrOpen) {
		return true
	}
	for err != nil {
		if u, ok := err.(unavailable); ok {
			return u.Unavailable()
		}
		err = errors.Unwrap(err)
	}
	return false
}

// Infrastructural reports whether err describes the health of the system it
// came from (transient fault, outage, open breaker) rather than a semantic
// problem with the request itself. Only infrastructural errors trip circuit
// breakers and trigger degraded re-planning; a malformed spec would fail on
// every replica alike.
func Infrastructural(err error) bool {
	return IsTransient(err) || IsUnavailable(err)
}
