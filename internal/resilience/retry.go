package resilience

import (
	"context"
	"hash/fnv"
	"time"
)

// RetryPolicy tunes the retry loop around one remote call. The zero value
// selects the defaults noted per field.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries including the first
	// (default 3). 1 disables retries.
	MaxAttempts int
	// BaseDelay is the wait before the first retry (default 25ms).
	BaseDelay time.Duration
	// MaxDelay caps the exponential growth (default 1s).
	MaxDelay time.Duration
	// Multiplier grows the delay per retry (default 2).
	Multiplier float64
	// Jitter is the ± fraction applied to each delay (default 0.2). The
	// jitter is deterministic: it derives from Seed, the call's salt, and
	// the attempt number, so the same schedule replays on the same inputs
	// while distinct callers de-synchronize.
	Jitter float64
	// Seed drives the deterministic jitter.
	Seed int64
	// Sleep waits between attempts; nil selects a context-aware
	// time.Sleep. Tests inject instant clocks here.
	Sleep func(ctx context.Context, d time.Duration) error
}

// withDefaults fills zero fields.
func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 3
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 25 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = time.Second
	}
	if p.Multiplier < 1 {
		p.Multiplier = 2
	}
	if p.Jitter < 0 || p.Jitter >= 1 {
		p.Jitter = 0.2
	}
	if p.Sleep == nil {
		p.Sleep = sleepCtx
	}
	return p
}

// sleepCtx sleeps for d unless the context ends first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Delay returns the backoff before retry number retry (1-based) for the
// given salt: capped exponential growth with deterministic jitter.
func (p RetryPolicy) Delay(salt string, retry int) time.Duration {
	p = p.withDefaults()
	d := float64(p.BaseDelay)
	for i := 1; i < retry; i++ {
		d *= p.Multiplier
		if d >= float64(p.MaxDelay) {
			break
		}
	}
	if d > float64(p.MaxDelay) {
		d = float64(p.MaxDelay)
	}
	if p.Jitter > 0 {
		d *= 1 + p.Jitter*(2*uniform(p.Seed, salt, retry)-1)
	}
	return time.Duration(d)
}

// uniform hashes (seed, salt, n) to [0,1) with a splitmix64 finalizer —
// the same reproducible-noise construction the remote simulators use.
func uniform(seed int64, salt string, n int) float64 {
	h := fnv.New64a()
	var buf [16]byte
	v := uint64(seed)
	for i := 0; i < 8; i++ {
		buf[i] = byte(v >> (8 * i))
		buf[8+i] = byte(uint64(n) >> (8 * i))
	}
	h.Write(buf[:])
	h.Write([]byte(salt))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / float64(1<<53)
}

// Retry runs attempt until it succeeds, returns a non-transient error, the
// attempt budget is exhausted, or the context ends. Only errors classified
// transient (IsTransient) are retried — unavailable errors (outages, open
// breakers) and semantic errors return immediately, leaving the fallback
// decision to the caller. It returns the number of attempts made alongside
// the final error.
func Retry(ctx context.Context, p RetryPolicy, salt string, attempt func(context.Context) error) (int, error) {
	// First attempt inline: the overwhelmingly common success case pays no
	// policy-default fill (a struct copy) and no retry-loop bookkeeping.
	if cerr := ctx.Err(); cerr != nil {
		return 0, cerr
	}
	err := attempt(ctx)
	if err == nil || !IsTransient(err) {
		return 1, err
	}
	p = p.withDefaults()
	if 1 >= p.MaxAttempts {
		return 1, err
	}
	if serr := p.Sleep(ctx, p.Delay(salt, 1)); serr != nil {
		return 1, serr
	}
	for n := 2; ; n++ {
		if cerr := ctx.Err(); cerr != nil {
			return n - 1, cerr
		}
		err = attempt(ctx)
		if err == nil || !IsTransient(err) || n >= p.MaxAttempts {
			return n, err
		}
		if serr := p.Sleep(ctx, p.Delay(salt, n)); serr != nil {
			return n, serr
		}
	}
}
