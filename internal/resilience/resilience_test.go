package resilience

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

// transientErr marks itself temporary.
type transientErr struct{ msg string }

func (e *transientErr) Error() string   { return e.msg }
func (e *transientErr) Temporary() bool { return true }

// outageErr marks itself unavailable.
type outageErr struct{ msg string }

func (e *outageErr) Error() string     { return e.msg }
func (e *outageErr) Unavailable() bool { return true }

func TestClassification(t *testing.T) {
	tr := &transientErr{"blip"}
	out := &outageErr{"down"}
	plain := errors.New("bad spec")
	if !IsTransient(tr) || IsTransient(out) || IsTransient(plain) {
		t.Error("IsTransient misclassifies")
	}
	if !IsUnavailable(out) || IsUnavailable(tr) || IsUnavailable(plain) {
		t.Error("IsUnavailable misclassifies")
	}
	if !IsUnavailable(ErrOpen) {
		t.Error("ErrOpen should be unavailable")
	}
	// Classification survives wrapping.
	wrapped := fmt.Errorf("execute join on %q: %w", "hive", tr)
	if !IsTransient(wrapped) {
		t.Error("wrapped transient not recognized")
	}
	if !Infrastructural(wrapped) || !Infrastructural(out) || Infrastructural(plain) {
		t.Error("Infrastructural misclassifies")
	}
}

// instant is a sleep hook that records requested delays without waiting.
func instant(delays *[]time.Duration) func(context.Context, time.Duration) error {
	return func(_ context.Context, d time.Duration) error {
		*delays = append(*delays, d)
		return nil
	}
}

func TestRetryTransientThenSuccess(t *testing.T) {
	var delays []time.Duration
	p := RetryPolicy{MaxAttempts: 5, Sleep: instant(&delays)}
	calls := 0
	n, err := Retry(context.Background(), p, "hive/join", func(context.Context) error {
		calls++
		if calls < 3 {
			return &transientErr{"blip"}
		}
		return nil
	})
	if err != nil || n != 3 || calls != 3 {
		t.Fatalf("attempts=%d calls=%d err=%v", n, calls, err)
	}
	if len(delays) != 2 {
		t.Fatalf("slept %d times, want 2", len(delays))
	}
}

func TestRetryExhaustsAndStopsOnPermanent(t *testing.T) {
	var delays []time.Duration
	p := RetryPolicy{MaxAttempts: 3, Sleep: instant(&delays)}
	n, err := Retry(context.Background(), p, "s", func(context.Context) error {
		return &transientErr{"always"}
	})
	if n != 3 || !IsTransient(err) {
		t.Errorf("exhaustion: attempts=%d err=%v", n, err)
	}
	// Unavailable errors fail fast — no retries, no sleeps.
	delays = nil
	n, err = Retry(context.Background(), p, "s", func(context.Context) error {
		return &outageErr{"down"}
	})
	if n != 1 || !IsUnavailable(err) || len(delays) != 0 {
		t.Errorf("outage: attempts=%d sleeps=%d err=%v", n, len(delays), err)
	}
	// Plain semantic errors too.
	n, err = Retry(context.Background(), p, "s", func(context.Context) error {
		return errors.New("bad spec")
	})
	if n != 1 || err == nil {
		t.Errorf("semantic: attempts=%d err=%v", n, err)
	}
}

func TestRetryHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	n, err := Retry(ctx, RetryPolicy{}, "s", func(context.Context) error { return nil })
	if n != 0 || !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled ctx: attempts=%d err=%v", n, err)
	}
}

func TestDelayDeterministicCappedJittered(t *testing.T) {
	p := RetryPolicy{BaseDelay: 100 * time.Millisecond, MaxDelay: time.Second, Multiplier: 2, Jitter: 0.2, Seed: 7}
	for retry := 1; retry <= 8; retry++ {
		d1 := p.Delay("hive/join", retry)
		d2 := p.Delay("hive/join", retry)
		if d1 != d2 {
			t.Fatalf("retry %d: non-deterministic delay %v vs %v", retry, d1, d2)
		}
		if d1 > time.Duration(1.2*float64(time.Second)) {
			t.Fatalf("retry %d: delay %v exceeds jittered cap", retry, d1)
		}
		if d1 <= 0 {
			t.Fatalf("retry %d: non-positive delay %v", retry, d1)
		}
	}
	// Distinct salts de-synchronize.
	if p.Delay("hive/join", 1) == p.Delay("spark/agg", 1) {
		t.Error("salts produced identical jitter")
	}
	// Exponential growth before the cap.
	if !(p.Delay("x", 2) > p.Delay("x", 1)/2) {
		t.Error("no growth between retries")
	}
}

// fakeClock is a manually advanced time source.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func TestBreakerStateMachine(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b := NewBreaker(BreakerConfig{FailureThreshold: 3, OpenTimeout: 5 * time.Second, SuccessThreshold: 2, Clock: clk.now})
	if b.State() != Closed {
		t.Fatal("new breaker not closed")
	}
	gen0 := b.Generation()

	// Semantic errors never trip it.
	for i := 0; i < 10; i++ {
		b.Record(errors.New("bad spec"))
	}
	if b.State() != Closed {
		t.Fatal("semantic errors tripped breaker")
	}

	// Three consecutive infrastructural failures open it.
	for i := 0; i < 3; i++ {
		if err := b.Allow(); err != nil {
			t.Fatalf("closed breaker rejected call %d", i)
		}
		b.Record(&outageErr{"down"})
	}
	if b.State() != Open || b.Generation() == gen0 {
		t.Fatalf("state=%v after threshold failures", b.State())
	}
	if err := b.Allow(); !errors.Is(err, ErrOpen) {
		t.Fatalf("open breaker allowed a call: %v", err)
	}

	// After the timeout it half-opens and admits one probe.
	clk.advance(6 * time.Second)
	if err := b.Allow(); err != nil {
		t.Fatalf("half-open probe rejected: %v", err)
	}
	if b.State() != HalfOpen {
		t.Fatalf("state=%v, want half-open", b.State())
	}
	// Second concurrent probe is rejected (HalfOpenProbes defaults to 1).
	if err := b.Allow(); !errors.Is(err, ErrOpen) {
		t.Fatal("half-open admitted a second concurrent probe")
	}
	// Probe failure re-opens.
	b.Record(&transientErr{"blip"})
	if b.State() != Open {
		t.Fatalf("state=%v after probe failure, want open", b.State())
	}

	// Recover: two probe successes close it.
	clk.advance(6 * time.Second)
	for i := 0; i < 2; i++ {
		if err := b.Allow(); err != nil {
			t.Fatalf("probe %d rejected: %v", i, err)
		}
		b.Record(nil)
	}
	if b.State() != Closed {
		t.Fatalf("state=%v after probe successes, want closed", b.State())
	}
	snap := b.Snapshot()
	if snap.Opens != 2 || snap.Rejected == 0 {
		t.Errorf("snapshot = %+v", snap)
	}
}

func TestGroup(t *testing.T) {
	g := NewGroup(BreakerConfig{FailureThreshold: 1})
	if g.For("hive") != g.For("hive") {
		t.Error("group returned distinct breakers for one name")
	}
	g.For("hive").Record(&outageErr{"down"})
	g.For("spark").Record(nil)
	snap := g.Snapshot()
	if snap["hive"].State != Open || snap["spark"].State != Closed {
		t.Errorf("snapshot = %+v", snap)
	}
	if g.OpenCount() != 1 {
		t.Errorf("OpenCount = %d", g.OpenCount())
	}
}
