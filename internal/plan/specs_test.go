package plan

import (
	"testing"
	"testing/quick"
)

func validJoin() JoinSpec {
	return JoinSpec{
		Left:       TableSide{Rows: 1e6, RowSize: 100, ProjectedSize: 40, KeyNDV: 1e6},
		Right:      TableSide{Rows: 1e5, RowSize: 300, ProjectedSize: 50, KeyNDV: 1e5},
		OutputRows: 1e5,
	}
}

func TestJoinSpecDimsOrder(t *testing.T) {
	j := validJoin()
	d := j.Dims()
	want := []float64{100, 1e6, 300, 1e5, 40, 50, 1e5}
	if len(d) != 7 {
		t.Fatalf("join has %d dims, want 7", len(d))
	}
	for i := range want {
		if d[i] != want[i] {
			t.Errorf("Dims[%d] = %v, want %v (%s)", i, d[i], want[i], JoinDimNames()[i])
		}
	}
	if len(JoinDimNames()) != 7 {
		t.Error("JoinDimNames must align with Dims")
	}
}

func TestJoinSpecValidate(t *testing.T) {
	j := validJoin()
	if err := j.Validate(); err != nil {
		t.Fatalf("valid join rejected: %v", err)
	}
	bad := j
	bad.Left.Rows = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero left rows accepted")
	}
	bad = j
	bad.Right.ProjectedSize = 1000 // exceeds row size
	if err := bad.Validate(); err == nil {
		t.Error("projected size > row size accepted")
	}
	bad = j
	bad.OutputRows = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative output accepted")
	}
}

func TestJoinSides(t *testing.T) {
	j := validJoin() // left = 1e8 bytes, right = 3e7 bytes
	small, isLeft := j.SmallSide()
	if isLeft {
		t.Error("right side should be smaller")
	}
	if small.Rows != 1e5 {
		t.Errorf("small side rows = %v, want 1e5", small.Rows)
	}
	if big := j.BigSide(); big.Rows != 1e6 {
		t.Errorf("big side rows = %v, want 1e6", big.Rows)
	}
}

func TestJoinOutputRowSize(t *testing.T) {
	j := validJoin()
	if got := j.OutputRowSize(); got != 90 {
		t.Errorf("OutputRowSize = %v, want 90", got)
	}
	j.Left.ProjectedSize = 0
	j.Right.ProjectedSize = 0
	if got := j.OutputRowSize(); got != 1 {
		t.Errorf("zero projection OutputRowSize = %v, want 1 floor", got)
	}
}

func TestAggSpec(t *testing.T) {
	a := AggSpec{InputRows: 1e6, InputRowSize: 100, OutputRows: 1e4, OutputRowSize: 24, NumAggregates: 3}
	if err := a.Validate(); err != nil {
		t.Fatalf("valid agg rejected: %v", err)
	}
	d := a.Dims()
	want := []float64{1e6, 100, 1e4, 24}
	for i := range want {
		if d[i] != want[i] {
			t.Errorf("Dims[%d] = %v, want %v (%s)", i, d[i], want[i], AggDimNames()[i])
		}
	}
	bad := a
	bad.OutputRows = 2e6
	if err := bad.Validate(); err == nil {
		t.Error("output > input accepted")
	}
	bad = a
	bad.NumAggregates = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative aggregate count accepted")
	}
	bad = a
	bad.InputRowSize = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero input row size accepted")
	}
}

func TestScanSpec(t *testing.T) {
	s := ScanSpec{InputRows: 1000, InputRowSize: 100, Selectivity: 0.25, OutputRowSize: 40}
	if err := s.Validate(); err != nil {
		t.Fatalf("valid scan rejected: %v", err)
	}
	if got := s.OutputRows(); got != 250 {
		t.Errorf("OutputRows = %v, want 250", got)
	}
	bad := s
	bad.Selectivity = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero selectivity accepted")
	}
	bad = s
	bad.Selectivity = 1.5
	if err := bad.Validate(); err == nil {
		t.Error("selectivity > 1 accepted")
	}
	bad = s
	bad.OutputRowSize = 200
	if err := bad.Validate(); err == nil {
		t.Error("output wider than input accepted")
	}
}

func TestOperatorKinds(t *testing.T) {
	var ops = []Operator{validJoin(), AggSpec{}, ScanSpec{}}
	want := []string{"join", "aggregation", "scan"}
	for i, op := range ops {
		if op.Kind() != want[i] {
			t.Errorf("Kind = %q, want %q", op.Kind(), want[i])
		}
	}
}

// Property: the small side never has more bytes than the big side.
func TestSmallSideProperty(t *testing.T) {
	f := func(lr, ls, rr, rs uint16) bool {
		j := JoinSpec{
			Left:  TableSide{Rows: float64(lr) + 1, RowSize: float64(ls) + 1},
			Right: TableSide{Rows: float64(rr) + 1, RowSize: float64(rs) + 1},
		}
		small, _ := j.SmallSide()
		return small.Bytes() <= j.BigSide().Bytes()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
