// Package plan defines the operator descriptions that flow between the
// master engine, the optimizer, the remote-system simulators, and the cost
// estimation module. An operator "spec" carries exactly the quantities the
// paper's models consume: the seven join dimensions of Figure 2, the four
// aggregation dimensions of Section 3, plus the physical hints (partitioning,
// sortedness, key statistics) the sub-operator approach's applicability rules
// inspect (Section 4).
package plan

import (
	"errors"
	"fmt"
)

// TableSide describes one input relation of an operator as the estimators
// and simulators see it.
type TableSide struct {
	Rows          float64 // cardinality
	RowSize       float64 // bytes per record
	ProjectedSize float64 // bytes of projected attributes surviving the operator
	KeyNDV        float64 // number of distinct values in the join/group key
	PartitionedOn bool    // physically partitioned (bucketed) on the key
	SortedOn      bool    // physically sorted on the key within partitions
}

// Bytes returns the total size of the side in bytes.
func (s TableSide) Bytes() float64 { return s.Rows * s.RowSize }

// Validate reports structural problems with the side.
func (s TableSide) Validate() error {
	if s.Rows <= 0 {
		return fmt.Errorf("plan: rows %v must be positive", s.Rows)
	}
	if s.RowSize <= 0 {
		return fmt.Errorf("plan: row size %v must be positive", s.RowSize)
	}
	if s.ProjectedSize < 0 || s.ProjectedSize > s.RowSize {
		return fmt.Errorf("plan: projected size %v must be in [0, row size %v]", s.ProjectedSize, s.RowSize)
	}
	return nil
}

// JoinSpec describes a two-table join operator. Its seven training
// dimensions (Figure 2) are: row size and cardinality of each side, the
// projected attribute sizes from each side, and the output cardinality.
type JoinSpec struct {
	Left, Right TableSide
	OutputRows  float64
	Cartesian   bool // true when there is no equi-join condition
}

// Validate reports structural problems with the spec.
func (j JoinSpec) Validate() error {
	if err := j.Left.Validate(); err != nil {
		return fmt.Errorf("left side: %w", err)
	}
	if err := j.Right.Validate(); err != nil {
		return fmt.Errorf("right side: %w", err)
	}
	if j.OutputRows < 0 {
		return errors.New("plan: negative join output cardinality")
	}
	return nil
}

// Dims returns the seven-dimension training vector of Figure 2, in the
// paper's order: row size R, num rows R, row size S, num rows S, projected
// size R, projected size S, num output rows.
func (j JoinSpec) Dims() []float64 {
	return []float64{
		j.Left.RowSize, j.Left.Rows,
		j.Right.RowSize, j.Right.Rows,
		j.Left.ProjectedSize, j.Right.ProjectedSize,
		j.OutputRows,
	}
}

// JoinDimNames names the seven dimensions, aligned with Dims().
func JoinDimNames() []string {
	return []string{
		"row_size_r", "num_rows_r",
		"row_size_s", "num_rows_s",
		"proj_size_r", "proj_size_s",
		"num_output",
	}
}

// OutputRowSize returns the width of a join result record: the surviving
// projected attributes of both sides.
func (j JoinSpec) OutputRowSize() float64 {
	w := j.Left.ProjectedSize + j.Right.ProjectedSize
	if w <= 0 {
		w = 1
	}
	return w
}

// SmallSide returns the smaller input by total bytes and whether it is the
// left one. Broadcast-style algorithms ship this side.
func (j JoinSpec) SmallSide() (TableSide, bool) {
	if j.Left.Bytes() <= j.Right.Bytes() {
		return j.Left, true
	}
	return j.Right, false
}

// BigSide returns the larger input by total bytes.
func (j JoinSpec) BigSide() TableSide {
	if j.Left.Bytes() <= j.Right.Bytes() {
		return j.Right
	}
	return j.Left
}

// AggSpec describes a grouping/aggregation operator. Its four training
// dimensions (Section 3) are input rows, input row size, output rows, and
// output row size.
type AggSpec struct {
	InputRows     float64
	InputRowSize  float64
	OutputRows    float64
	OutputRowSize float64
	NumAggregates int // number of aggregate functions computed (1..)
}

// Validate reports structural problems with the spec.
func (a AggSpec) Validate() error {
	if a.InputRows <= 0 || a.InputRowSize <= 0 {
		return fmt.Errorf("plan: aggregation input (%v rows × %v B) must be positive", a.InputRows, a.InputRowSize)
	}
	if a.OutputRows <= 0 || a.OutputRowSize <= 0 {
		return fmt.Errorf("plan: aggregation output (%v rows × %v B) must be positive", a.OutputRows, a.OutputRowSize)
	}
	if a.OutputRows > a.InputRows {
		return fmt.Errorf("plan: aggregation output rows %v exceed input rows %v", a.OutputRows, a.InputRows)
	}
	if a.NumAggregates < 0 {
		return errors.New("plan: negative aggregate count")
	}
	return nil
}

// Dims returns the four-dimension training vector in the paper's order:
// number of input rows, input row size, number of output rows, output row
// size.
func (a AggSpec) Dims() []float64 {
	return []float64{a.InputRows, a.InputRowSize, a.OutputRows, a.OutputRowSize}
}

// AggDimNames names the four dimensions, aligned with Dims().
func AggDimNames() []string {
	return []string{"num_input_rows", "input_row_size", "num_output_rows", "output_row_size"}
}

// ScanSpec describes a filtering/projecting table scan.
type ScanSpec struct {
	InputRows     float64
	InputRowSize  float64
	Selectivity   float64 // fraction of rows surviving the predicate, in (0,1]
	OutputRowSize float64 // projected width
}

// Validate reports structural problems with the spec.
func (s ScanSpec) Validate() error {
	if s.InputRows <= 0 || s.InputRowSize <= 0 {
		return fmt.Errorf("plan: scan input (%v rows × %v B) must be positive", s.InputRows, s.InputRowSize)
	}
	if s.Selectivity <= 0 || s.Selectivity > 1 {
		return fmt.Errorf("plan: scan selectivity %v must be in (0,1]", s.Selectivity)
	}
	if s.OutputRowSize <= 0 || s.OutputRowSize > s.InputRowSize {
		return fmt.Errorf("plan: scan output row size %v must be in (0, input row size %v]", s.OutputRowSize, s.InputRowSize)
	}
	return nil
}

// OutputRows returns the scan's estimated output cardinality.
func (s ScanSpec) OutputRows() float64 { return s.InputRows * s.Selectivity }

// Operator is the common interface of the operator specs.
type Operator interface {
	// Kind returns the operator's logical kind name ("join", "aggregation",
	// "scan").
	Kind() string
	// Validate reports structural problems.
	Validate() error
}

// Kind implements Operator.
func (j JoinSpec) Kind() string { return "join" }

// Kind implements Operator.
func (a AggSpec) Kind() string { return "aggregation" }

// Kind implements Operator.
func (s ScanSpec) Kind() string { return "scan" }
