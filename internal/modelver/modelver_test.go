package modelver

import (
	"bytes"
	"fmt"
	"sort"
	"testing"
)

func TestRecordAndLive(t *testing.T) {
	s := NewStore(0)
	v1 := s.Record("hive", "initial", []byte(`{"v":1}`), nil, true)
	if v1.ID != 1 || !v1.Live || v1.Origin != "initial" || v1.Size != 7 {
		t.Fatalf("v1 = %+v", v1)
	}
	got, ok := s.Live("hive")
	if !ok || got.ID != 1 {
		t.Fatalf("Live = %+v, %v", got, ok)
	}
	if !bytes.Equal(got.Profile, []byte(`{"v":1}`)) {
		t.Fatalf("profile bytes = %q", got.Profile)
	}

	hs := &HoldoutScore{Samples: 4, LiveQ: 9.5, CandidateQ: 1.2}
	v2 := s.Record("hive", "tuned", []byte(`{"v":2}`), hs, true)
	if v2.ID != 2 || !v2.Live || !v2.Holdout.Improved() {
		t.Fatalf("v2 = %+v", v2)
	}
	// v1 is no longer live but still retained as the rollback target.
	prev, ok := s.Prev("hive")
	if !ok || prev.ID != 1 || prev.Live {
		t.Fatalf("Prev = %+v, %v", prev, ok)
	}
}

func TestRecordCopiesBytes(t *testing.T) {
	s := NewStore(0)
	buf := []byte(`{"v":1}`)
	s.Record("hive", "initial", buf, nil, true)
	buf[2] = 'X'
	got, _ := s.Live("hive")
	if !bytes.Equal(got.Profile, []byte(`{"v":1}`)) {
		t.Fatalf("stored bytes aliased the caller's slice: %q", got.Profile)
	}
}

func TestSetLiveRollback(t *testing.T) {
	s := NewStore(0)
	s.Record("hive", "initial", []byte(`1`), nil, true)
	s.Record("hive", "tuned", []byte(`2`), nil, true)
	if err := s.SetLive("hive", 1); err != nil {
		t.Fatalf("SetLive: %v", err)
	}
	live, _ := s.Live("hive")
	if live.ID != 1 {
		t.Fatalf("live after rollback = %d", live.ID)
	}
	// No version older than 1 remains.
	if _, ok := s.Prev("hive"); ok {
		t.Fatal("Prev found a version older than v1")
	}
	if err := s.SetLive("hive", 99); err == nil {
		t.Fatal("SetLive accepted an unknown version")
	}
}

func TestBoundedHistoryKeepsLive(t *testing.T) {
	s := NewStore(3)
	s.Record("hive", "initial", []byte(`1`), nil, true)
	for i := 2; i <= 6; i++ {
		s.Record("hive", "tuned", []byte(fmt.Sprintf("%d", i)), nil, false)
	}
	if n := s.Count("hive"); n != 3 {
		t.Fatalf("retained = %d, want 3", n)
	}
	// The live version (v1, the oldest) must survive eviction.
	live, ok := s.Live("hive")
	if !ok || live.ID != 1 {
		t.Fatalf("live evicted: %+v, %v", live, ok)
	}
	ids := []int{}
	for _, v := range s.List("hive") {
		ids = append(ids, v.ID)
	}
	sort.Ints(ids)
	if fmt.Sprint(ids) != "[1 5 6]" {
		t.Fatalf("retained ids = %v, want [1 5 6]", ids)
	}
}

func TestUnknownSystem(t *testing.T) {
	s := NewStore(0)
	if _, ok := s.Live("ghost"); ok {
		t.Fatal("Live on unknown system")
	}
	if _, ok := s.Get("ghost", 1); ok {
		t.Fatal("Get on unknown system")
	}
	if got := s.List("ghost"); len(got) != 0 {
		t.Fatalf("List on unknown system = %v", got)
	}
}
