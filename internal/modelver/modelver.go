// Package modelver keeps a bounded, per-system history of serialized cost
// model snapshots — the model lifecycle behind drift-triggered retraining.
// Every promotion archives the profile bytes it replaced, so an operator
// (or the tuner itself) can roll a system back to any retained version and
// get the prior model byte-identically. The store is deliberately ignorant
// of what the bytes mean: it stores opaque profile JSON, which keeps it
// free of model-package dependencies and makes byte-identical restore
// trivially checkable.
package modelver

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"
)

// DefaultHistory is the number of versions retained per system when no
// limit is configured.
const DefaultHistory = 8

// Origin values recorded on versions.
const (
	// OriginInitial marks the first archive of a freshly registered model.
	OriginInitial = "initial"
	// OriginSnapshot marks a live model re-archived because it had mutated
	// in place since its last version.
	OriginSnapshot = "snapshot"
	// OriginTuned marks a promoted tuning candidate.
	OriginTuned = "tuned"
	// OriginTuneSystem marks an in-place TuneSystem pass.
	OriginTuneSystem = "tune-system"
)

// HoldoutScore records how a candidate scored against the live model on
// the shadow-scoring holdout when the version was produced by a tune pass.
type HoldoutScore struct {
	// Samples is the number of holdout (input, actual) pairs scored.
	Samples int `json:"samples"`
	// LiveQ and CandidateQ are the mean q-errors of the then-live model and
	// the candidate over the holdout (1 is perfect).
	LiveQ      float64 `json:"live_q"`
	CandidateQ float64 `json:"candidate_q"`
}

// Improved reports whether the candidate beat the live model.
func (h HoldoutScore) Improved() bool { return h.CandidateQ < h.LiveQ }

// Version is one archived model snapshot for a system. Profile holds the
// serialized costing-profile JSON exactly as captured; restoring it yields
// the prior model byte for byte.
type Version struct {
	// ID is monotonically increasing per system, starting at 1.
	ID     int    `json:"id"`
	System string `json:"system"`
	// Origin records how the version came to be: "initial" (first archive of
	// a registered model), "snapshot" (live model re-archived because it had
	// mutated in place since its last version), "tuned" (a promoted
	// candidate), or "tune-system" (an in-place TuneSystem pass).
	Origin  string    `json:"origin"`
	SavedAt time.Time `json:"saved_at"`
	// Holdout carries the shadow-scoring result for "tuned" versions.
	Holdout *HoldoutScore `json:"holdout,omitempty"`
	// Live marks the version currently installed in the estimator registry.
	Live bool `json:"live"`
	// Profile is the serialized profile (omitted from JSON listings — it can
	// run to megabytes of training data; Size reports its length).
	Profile []byte `json:"-"`
	// Size is len(Profile).
	Size int `json:"size"`
}

// Store keeps a bounded version history per system. Safe for concurrent
// use.
type Store struct {
	mu    sync.Mutex
	limit int
	// versions is ordered oldest → newest per system.
	versions map[string][]*Version
	nextID   map[string]int
	live     map[string]int // live version ID per system (0 = none)
}

// NewStore builds a store retaining up to limit versions per system
// (limit <= 0 selects DefaultHistory). The live version is never evicted,
// even when it is the oldest retained.
func NewStore(limit int) *Store {
	if limit <= 0 {
		limit = DefaultHistory
	}
	return &Store{
		limit:    limit,
		versions: map[string][]*Version{},
		nextID:   map[string]int{},
		live:     map[string]int{},
	}
}

// Record archives a profile snapshot for a system and returns its version.
// When markLive is set the new version becomes the system's live version.
// The profile bytes are copied; callers may reuse the slice.
func (s *Store) Record(system, origin string, profile []byte, holdout *HoldoutScore, markLive bool) Version {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID[system]++
	v := &Version{
		ID:      s.nextID[system],
		System:  system,
		Origin:  origin,
		SavedAt: time.Now(),
		Holdout: holdout,
		Profile: append([]byte(nil), profile...),
		Size:    len(profile),
	}
	s.versions[system] = append(s.versions[system], v)
	if markLive {
		s.live[system] = v.ID
	}
	s.evictLocked(system)
	return s.export(*v)
}

// evictLocked drops the oldest non-live versions beyond the limit.
func (s *Store) evictLocked(system string) {
	vs := s.versions[system]
	live := s.live[system]
	for len(vs) > s.limit {
		evicted := false
		for i, v := range vs {
			if v.ID == live {
				continue // never evict the live version
			}
			vs = append(vs[:i], vs[i+1:]...)
			evicted = true
			break
		}
		if !evicted {
			break
		}
	}
	s.versions[system] = vs
}

// export stamps the live flag onto a copied version for return to callers.
func (s *Store) export(v Version) Version {
	v.Live = v.ID == s.live[v.System]
	return v
}

// SetLive marks an existing version as the system's live version (a
// rollback restored it). It fails if the version is not retained.
func (s *Store) SetLive(system string, id int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, v := range s.versions[system] {
		if v.ID == id {
			s.live[system] = id
			return nil
		}
	}
	return fmt.Errorf("modelver: system %q has no version %d", system, id)
}

// Get returns one retained version (profile bytes included).
func (s *Store) Get(system string, id int) (Version, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, v := range s.versions[system] {
		if v.ID == id {
			return s.export(*v), true
		}
	}
	return Version{}, false
}

// Live returns the system's live version, if any.
func (s *Store) Live(system string) (Version, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	id := s.live[system]
	if id == 0 {
		return Version{}, false
	}
	for _, v := range s.versions[system] {
		if v.ID == id {
			return s.export(*v), true
		}
	}
	return Version{}, false
}

// Prev returns the newest retained version older than the live one — the
// rollback target.
func (s *Store) Prev(system string) (Version, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	live := s.live[system]
	if live == 0 {
		return Version{}, false
	}
	var best *Version
	for _, v := range s.versions[system] {
		if v.ID < live && (best == nil || v.ID > best.ID) {
			best = v
		}
	}
	if best == nil {
		return Version{}, false
	}
	return s.export(*best), true
}

// List returns a system's retained versions, oldest first (profile bytes
// included on the copies).
func (s *Store) List(system string) []Version {
	s.mu.Lock()
	defer s.mu.Unlock()
	vs := s.versions[system]
	out := make([]Version, 0, len(vs))
	for _, v := range vs {
		out = append(out, s.export(*v))
	}
	return out
}

// Systems returns the system names with at least one retained version.
func (s *Store) Systems() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.versions))
	for name := range s.versions {
		out = append(out, name)
	}
	return out
}

// Count returns how many versions a system retains.
func (s *Store) Count(system string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.versions[system])
}

// State is the store's serializable form for engine-wide snapshots. Version
// listings strip profile bytes (Version.Profile is json:"-"), so snapshots
// use this parallel wire type that carries them: restoring a State
// reproduces the store — IDs, live markers, and rollback targets —
// byte-identically.
type State struct {
	Systems map[string]SystemState `json:"systems,omitempty"`
}

// SystemState is one system's archived history.
type SystemState struct {
	// NextID is the ID counter, preserved so versions recorded after a
	// restore continue the original numbering.
	NextID int `json:"next_id"`
	// Live is the live version's ID (0 = none).
	Live int `json:"live,omitempty"`
	// Versions is the retained history, oldest first.
	Versions []VersionState `json:"versions"`
}

// VersionState is one archived version with its profile bytes inline.
type VersionState struct {
	ID      int             `json:"id"`
	Origin  string          `json:"origin"`
	SavedAt time.Time       `json:"saved_at"`
	Holdout *HoldoutScore   `json:"holdout,omitempty"`
	Profile json.RawMessage `json:"profile"`
}

// Export captures the whole store as a State.
func (s *Store) Export() State {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.versions) == 0 {
		return State{}
	}
	st := State{Systems: make(map[string]SystemState, len(s.versions))}
	for system, vs := range s.versions {
		ss := SystemState{
			NextID:   s.nextID[system],
			Live:     s.live[system],
			Versions: make([]VersionState, 0, len(vs)),
		}
		for _, v := range vs {
			ss.Versions = append(ss.Versions, VersionState{
				ID:      v.ID,
				Origin:  v.Origin,
				SavedAt: v.SavedAt,
				Holdout: v.Holdout,
				Profile: append(json.RawMessage(nil), v.Profile...),
			})
		}
		st.Systems[system] = ss
	}
	return st
}

// Restore replaces the store's entire contents with a previously exported
// State. The retention limit is the receiver's, so a restore into a store
// with a smaller limit evicts oldest-first as usual on the next Record.
func (s *Store) Restore(st State) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.versions = make(map[string][]*Version, len(st.Systems))
	s.nextID = make(map[string]int, len(st.Systems))
	s.live = make(map[string]int, len(st.Systems))
	for system, ss := range st.Systems {
		vs := make([]*Version, 0, len(ss.Versions))
		for _, v := range ss.Versions {
			vs = append(vs, &Version{
				ID:      v.ID,
				System:  system,
				Origin:  v.Origin,
				SavedAt: v.SavedAt,
				Holdout: v.Holdout,
				Profile: append([]byte(nil), v.Profile...),
				Size:    len(v.Profile),
			})
		}
		s.versions[system] = vs
		s.nextID[system] = ss.NextID
		s.live[system] = ss.Live
	}
}
