// Package admission guards a serving hot path with explicit, observable
// back-pressure instead of unbounded goroutine pile-up:
//
//   - a hard concurrency cap — at most MaxInFlight requests execute at once;
//   - a bounded FIFO admission queue for overflow, so short bursts absorb
//     into waiting rather than failure;
//   - deadline-aware load shedding — a queued request whose estimated wait
//     already exceeds its remaining deadline is refused immediately (the
//     client gets a 503 with Retry-After long before its timeout fires),
//     and a full queue refuses new arrivals outright;
//   - per-client token-bucket rate limits keyed by an opaque client ID.
//
// Every decision is counted, and the counters reconcile: offered ==
// admitted + rate-limited + shed (queue-full, deadline) + canceled. The
// controller replaces http.TimeoutHandler on the hot endpoints — deadlines
// travel in the request context, so a slow query is canceled inside the
// engine instead of abandoned on a watchdog goroutine.
package admission

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Config tunes a Controller. Zero values select the noted defaults.
type Config struct {
	// MaxInFlight caps concurrently executing requests (default 64).
	MaxInFlight int
	// QueueDepth bounds requests waiting for a slot beyond MaxInFlight
	// (default 2 × MaxInFlight).
	QueueDepth int
	// RateLimit is the per-client sustained request rate in requests per
	// second; 0 disables rate limiting.
	RateLimit float64
	// Burst is the token-bucket capacity (default max(1, RateLimit)).
	Burst float64
	// Clock is the time source; nil selects time.Now. Tests inject fakes.
	Clock func() time.Time
}

func (c Config) withDefaults() Config {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 64
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 2 * c.MaxInFlight
	}
	if c.Burst <= 0 {
		c.Burst = c.RateLimit
		if c.Burst < 1 {
			c.Burst = 1
		}
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	return c
}

// Shed reasons, carried by *ShedError.
var (
	// ErrQueueFull reports the admission queue was at capacity.
	ErrQueueFull = errors.New("admission queue full")
	// ErrDeadline reports the estimated queue wait exceeded the request's
	// remaining deadline.
	ErrDeadline = errors.New("estimated queue wait exceeds deadline")
	// ErrRateLimited reports the client's token bucket was empty.
	ErrRateLimited = errors.New("client rate limit exceeded")
)

// ShedError is the refusal verdict: why, and how long the client should
// back off before retrying.
type ShedError struct {
	Reason     error
	RetryAfter time.Duration
}

func (e *ShedError) Error() string {
	return fmt.Sprintf("%v (retry after %v)", e.Reason, e.RetryAfter)
}

func (e *ShedError) Unwrap() error { return e.Reason }

// Stats is a point-in-time view of the controller's counters. The totals
// reconcile: Offered == Admitted + RateLimited + ShedQueueFull +
// ShedDeadline + Canceled.
type Stats struct {
	Offered       uint64 `json:"offered"`
	Admitted      uint64 `json:"admitted"`
	ShedQueueFull uint64 `json:"shed_queue_full"`
	ShedDeadline  uint64 `json:"shed_deadline"`
	RateLimited   uint64 `json:"rate_limited"`
	Canceled      uint64 `json:"canceled"`
	InFlight      int    `json:"in_flight"`
	Queued        int    `json:"queued"`
	// AvgServiceSec is the EWMA of observed service times feeding the
	// queue-wait estimate.
	AvgServiceSec float64 `json:"avg_service_sec"`
}

// Controller is one admission gate. The zero value is not usable; call
// NewController.
type Controller struct {
	cfg Config
	sem chan struct{}

	queued atomic.Int64
	// ewmaNs is the exponentially weighted average service time in
	// nanoseconds. Plain store/load races only blur the estimate.
	ewmaNs atomic.Int64

	offered, admitted           atomic.Uint64
	shedQueueFull, shedDeadline atomic.Uint64
	rateLimited, canceled       atomic.Uint64

	mu      sync.Mutex
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

// NewController builds an admission gate.
func NewController(cfg Config) *Controller {
	cfg = cfg.withDefaults()
	return &Controller{
		cfg:     cfg,
		sem:     make(chan struct{}, cfg.MaxInFlight),
		buckets: make(map[string]*bucket),
	}
}

// ctxlike is the subset of context.Context Acquire needs; taking the
// interface keeps the package free of ad-hoc context plumbing in tests.
type ctxlike interface {
	Deadline() (time.Time, bool)
	Done() <-chan struct{}
	Err() error
}

// Acquire asks for an execution slot for one request. On success it returns
// a release function the caller MUST invoke exactly once when the request
// finishes. On refusal it returns a *ShedError (rate limit, full queue, or
// hopeless deadline) or the context's error if the caller gave up while
// queued.
func (c *Controller) Acquire(ctx ctxlike, client string) (release func(), err error) {
	c.offered.Add(1)
	if !c.allowClient(client) {
		c.rateLimited.Add(1)
		return nil, &ShedError{Reason: ErrRateLimited, RetryAfter: c.rateRetry()}
	}
	// Fast path: a free slot admits without queue accounting.
	select {
	case c.sem <- struct{}{}:
		c.admitted.Add(1)
		return c.releaser(), nil
	default:
	}
	if q := c.queued.Add(1); q > int64(c.cfg.QueueDepth) {
		c.queued.Add(-1)
		c.shedQueueFull.Add(1)
		return nil, &ShedError{Reason: ErrQueueFull, RetryAfter: c.estimateWait()}
	}
	defer c.queued.Add(-1)
	if dl, ok := ctx.Deadline(); ok {
		if wait := c.estimateWait(); wait > dl.Sub(c.cfg.Clock()) {
			c.shedDeadline.Add(1)
			return nil, &ShedError{Reason: ErrDeadline, RetryAfter: wait}
		}
	}
	select {
	case c.sem <- struct{}{}:
		c.admitted.Add(1)
		return c.releaser(), nil
	case <-ctx.Done():
		c.canceled.Add(1)
		return nil, ctx.Err()
	}
}

// releaser hands back the slot and feeds the service-time EWMA.
func (c *Controller) releaser() func() {
	start := c.cfg.Clock()
	return func() {
		<-c.sem
		obs := c.cfg.Clock().Sub(start).Nanoseconds()
		old := c.ewmaNs.Load()
		if old == 0 {
			c.ewmaNs.Store(obs)
			return
		}
		c.ewmaNs.Store(old - old/8 + obs/8)
	}
}

// estimateWait predicts how long a newly queued request would wait for a
// slot: everyone ahead of it, served MaxInFlight at a time, at the average
// observed service time. With no observations yet it assumes nothing about
// service time and returns a floor of one millisecond per queued request —
// pessimism here would shed traffic a fresh server could absorb.
func (c *Controller) estimateWait() time.Duration {
	ahead := c.queued.Load()
	if ahead < 1 {
		ahead = 1
	}
	per := time.Duration(c.ewmaNs.Load())
	if per <= 0 {
		per = time.Millisecond
	}
	return time.Duration(ahead) * per / time.Duration(c.cfg.MaxInFlight)
}

// rateRetry is the back-off hint for a rate-limited client: one token's
// worth of time.
func (c *Controller) rateRetry() time.Duration {
	if c.cfg.RateLimit <= 0 {
		return time.Second
	}
	return time.Duration(float64(time.Second) / c.cfg.RateLimit)
}

// maxBuckets bounds the per-client bucket map; beyond it, stale buckets
// (full and idle) are pruned on insert so an ID-churning client cannot grow
// memory without bound.
const maxBuckets = 4096

// allowClient spends one token from the client's bucket. An empty client ID
// shares the anonymous bucket. No rate limit configured admits everyone.
func (c *Controller) allowClient(client string) bool {
	if c.cfg.RateLimit <= 0 {
		return true
	}
	now := c.cfg.Clock()
	c.mu.Lock()
	defer c.mu.Unlock()
	b, ok := c.buckets[client]
	if !ok {
		if len(c.buckets) >= maxBuckets {
			c.pruneLocked(now)
		}
		b = &bucket{tokens: c.cfg.Burst, last: now}
		c.buckets[client] = b
	}
	b.tokens += now.Sub(b.last).Seconds() * c.cfg.RateLimit
	if b.tokens > c.cfg.Burst {
		b.tokens = c.cfg.Burst
	}
	b.last = now
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// pruneLocked drops buckets that have refilled to capacity — their clients
// are idle and lose nothing by starting fresh. Caller holds mu.
func (c *Controller) pruneLocked(now time.Time) {
	for id, b := range c.buckets {
		if b.tokens+now.Sub(b.last).Seconds()*c.cfg.RateLimit >= c.cfg.Burst {
			delete(c.buckets, id)
		}
	}
}

// Stats snapshots every counter.
func (c *Controller) Stats() Stats {
	return Stats{
		Offered:       c.offered.Load(),
		Admitted:      c.admitted.Load(),
		ShedQueueFull: c.shedQueueFull.Load(),
		ShedDeadline:  c.shedDeadline.Load(),
		RateLimited:   c.rateLimited.Load(),
		Canceled:      c.canceled.Load(),
		InFlight:      len(c.sem),
		Queued:        int(c.queued.Load()),
		AvgServiceSec: time.Duration(c.ewmaNs.Load()).Seconds(),
	}
}
