package admission

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestAcquireReleaseBasic(t *testing.T) {
	c := NewController(Config{MaxInFlight: 2})
	r1, err := c.Acquire(context.Background(), "")
	if err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	r2, err := c.Acquire(context.Background(), "")
	if err != nil {
		t.Fatalf("second acquire: %v", err)
	}
	st := c.Stats()
	if st.InFlight != 2 || st.Admitted != 2 {
		t.Fatalf("stats after two acquires: %+v", st)
	}
	r1()
	r2()
	if st := c.Stats(); st.InFlight != 0 {
		t.Fatalf("in-flight after release: %+v", st)
	}
}

func TestQueueFullSheds(t *testing.T) {
	c := NewController(Config{MaxInFlight: 1, QueueDepth: 1})
	release, err := c.Acquire(context.Background(), "")
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	defer release()
	// Occupy the single queue slot with a waiter.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	waiting := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		close(waiting)
		rel, err := c.Acquire(ctx, "")
		if rel != nil {
			rel()
		}
		done <- err
	}()
	<-waiting
	for c.Stats().Queued == 0 {
		time.Sleep(time.Millisecond)
	}
	// The queue is now full: the next arrival must shed immediately.
	_, err = c.Acquire(context.Background(), "")
	var shed *ShedError
	if !errors.As(err, &shed) || !errors.Is(err, ErrQueueFull) {
		t.Fatalf("want queue-full ShedError, got %v", err)
	}
	if shed.RetryAfter <= 0 {
		t.Fatalf("want positive RetryAfter, got %v", shed.RetryAfter)
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("queued waiter: want context.Canceled, got %v", err)
	}
	if st := c.Stats(); st.ShedQueueFull != 1 || st.Canceled != 1 {
		t.Fatalf("counters: %+v", st)
	}
}

func TestDeadlineShed(t *testing.T) {
	now := time.Unix(1000, 0)
	c := NewController(Config{MaxInFlight: 1, QueueDepth: 8, Clock: func() time.Time { return now }})
	// Seed the service-time estimate: 100ms per request.
	c.ewmaNs.Store(int64(100 * time.Millisecond))
	release, err := c.Acquire(context.Background(), "")
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	// A request with only 1ms of deadline budget cannot possibly wait out
	// the ~100ms estimated queue time: it must shed without blocking.
	ctx, cancel := context.WithDeadline(context.Background(), now.Add(time.Millisecond))
	defer cancel()
	_, err = c.Acquire(ctx, "")
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("want ErrDeadline, got %v", err)
	}
	var shed *ShedError
	if !errors.As(err, &shed) || shed.RetryAfter <= 0 {
		t.Fatalf("want ShedError with RetryAfter, got %v", err)
	}
	release()
}

// TestGenerousDeadlineQueues is the flip side of TestDeadlineShed: a waiter
// whose deadline comfortably exceeds the estimated queue time waits its
// turn and completes. Real clock — context deadlines fire on real time.
func TestGenerousDeadlineQueues(t *testing.T) {
	c := NewController(Config{MaxInFlight: 1, QueueDepth: 8})
	release, err := c.Acquire(context.Background(), "")
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	got := make(chan error, 1)
	go func() {
		rel, err := c.Acquire(ctx, "")
		if rel != nil {
			rel()
		}
		got <- err
	}()
	for c.Stats().Queued == 0 {
		time.Sleep(time.Millisecond)
	}
	release()
	if err := <-got; err != nil {
		t.Fatalf("queued acquire with generous deadline: %v", err)
	}
	if st := c.Stats(); st.Admitted != 2 || st.ShedDeadline != 0 {
		t.Fatalf("counters: %+v", st)
	}
}

func TestRateLimitPerClient(t *testing.T) {
	now := time.Unix(1000, 0)
	c := NewController(Config{MaxInFlight: 8, RateLimit: 1, Burst: 2, Clock: func() time.Time { return now }})
	spend := func(client string) error {
		rel, err := c.Acquire(context.Background(), client)
		if rel != nil {
			rel()
		}
		return err
	}
	if err := spend("a"); err != nil {
		t.Fatalf("a #1: %v", err)
	}
	if err := spend("a"); err != nil {
		t.Fatalf("a #2: %v", err)
	}
	if err := spend("a"); !errors.Is(err, ErrRateLimited) {
		t.Fatalf("a #3: want ErrRateLimited, got %v", err)
	}
	// Another client has its own bucket.
	if err := spend("b"); err != nil {
		t.Fatalf("b #1: %v", err)
	}
	// Tokens refill with time.
	now = now.Add(1500 * time.Millisecond)
	if err := spend("a"); err != nil {
		t.Fatalf("a after refill: %v", err)
	}
	if st := c.Stats(); st.RateLimited != 1 {
		t.Fatalf("rate-limited count: %+v", st)
	}
}

// TestCountersReconcileUnderSaturation hammers a tiny controller from many
// goroutines (run under -race by make ci) and checks the admission ledger
// balances: every offered request is accounted for exactly once, every
// admitted request completed, and nothing is left in flight or queued.
func TestCountersReconcileUnderSaturation(t *testing.T) {
	c := NewController(Config{MaxInFlight: 2, QueueDepth: 4})
	const workers = 32
	const perWorker = 50
	var wg sync.WaitGroup
	var completed, shed atomic.Uint64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
				release, err := c.Acquire(ctx, "")
				if err != nil {
					var se *ShedError
					if !errors.As(err, &se) && !errors.Is(err, context.DeadlineExceeded) {
						t.Errorf("unexpected acquire error: %v", err)
					}
					shed.Add(1)
					cancel()
					continue
				}
				completed.Add(1)
				release()
				cancel()
			}
		}()
	}
	wg.Wait()
	st := c.Stats()
	if st.Offered != workers*perWorker {
		t.Fatalf("offered %d, want %d", st.Offered, workers*perWorker)
	}
	if got := st.Admitted + st.RateLimited + st.ShedQueueFull + st.ShedDeadline + st.Canceled; got != st.Offered {
		t.Fatalf("ledger does not reconcile: %+v (sum %d)", st, got)
	}
	if st.Admitted != completed.Load() {
		t.Fatalf("admitted %d != completed %d", st.Admitted, completed.Load())
	}
	if st.InFlight != 0 || st.Queued != 0 {
		t.Fatalf("leftover work: %+v", st)
	}
	if shed.Load() != st.Offered-st.Admitted {
		t.Fatalf("shed observed %d, ledger %d", shed.Load(), st.Offered-st.Admitted)
	}
}
