package subop

import (
	"fmt"

	"intellisphere/internal/core"
	"intellisphere/internal/plan"
	"intellisphere/internal/remote"
)

// ChoicePolicy resolves the cost when the applicability rules leave several
// candidate physical algorithms (Section 4's "Usage"): assume the worst
// case, average the candidates, or assume the remote picks what an in-house
// cost-based optimizer would (the cheapest).
type ChoicePolicy int

// The three policies of Section 4.
const (
	WorstCase ChoicePolicy = iota
	AverageCase
	InHouseComparable
)

// String names the policy.
func (p ChoicePolicy) String() string {
	switch p {
	case WorstCase:
		return "worst-case"
	case AverageCase:
		return "average"
	case InHouseComparable:
		return "in-house-comparable"
	default:
		return fmt.Sprintf("ChoicePolicy(%d)", int(p))
	}
}

// skewThreshold is the duplicates-per-key ratio beyond which the skew join
// becomes applicable (matches the expert knowledge injected into the rules).
const skewThreshold = 50000

// ApplicableJoins applies the paper's applicability rules: starting from
// the engine's full algorithm list, eliminate choices the remote cannot
// pick given the cardinalities and physical-layout statistics at hand.
// The result is never empty.
func ApplicableJoins(kind remote.EngineKind, spec plan.JoinSpec, ms *ModelSet) []remote.JoinAlgorithm {
	small, _ := spec.SmallSide()
	fits := ms.Cluster.BroadcastFits(small.Bytes())
	bothPartitioned := spec.Left.PartitionedOn && spec.Right.PartitionedOn
	bothSorted := spec.Left.SortedOn && spec.Right.SortedOn
	dup := func(s plan.TableSide) float64 {
		if s.KeyNDV <= 0 {
			return 1
		}
		return s.Rows / s.KeyNDV
	}
	skewed := dup(spec.Left) > skewThreshold || dup(spec.Right) > skewThreshold

	var out []remote.JoinAlgorithm
	if kind == remote.EnginePresto {
		if spec.Cartesian {
			return []remote.JoinAlgorithm{remote.PrestoCrossJoin}
		}
		if fits {
			out = append(out, remote.PrestoReplicatedJoin)
		}
		out = append(out, remote.PrestoPartitionedJoin)
		return out
	}
	if kind == remote.EngineSpark {
		if spec.Cartesian {
			// Equi-join algorithms are eliminated for cartesian products.
			if fits {
				out = append(out, remote.SparkBroadcastNLJoin)
			}
			out = append(out, remote.SparkCartesianJoin)
			return out
		}
		if fits {
			out = append(out, remote.SparkBroadcastHashJoin)
		}
		if fits || ms.FitsInMemory(small.Bytes()/float64(ms.Cluster.Slots())) {
			out = append(out, remote.SparkShuffleHashJoin)
		}
		out = append(out, remote.SparkSortMergeJoin)
		return out
	}
	// Hive: cartesian products fall through to the shuffle join.
	if !spec.Cartesian {
		if fits {
			out = append(out, remote.HiveBroadcastJoin)
		}
		if bothPartitioned {
			if bothSorted {
				out = append(out, remote.HiveSortMergeBucketJoin)
			}
			out = append(out, remote.HiveBucketMapJoin)
		}
		if skewed {
			out = append(out, remote.HiveSkewJoin)
		}
	}
	out = append(out, remote.HiveShuffleJoin)
	return out
}

// Estimator implements core.Estimator with the sub-operator approach: it
// predicts the physical algorithms the remote may pick, evaluates each
// candidate's analytic formula, and resolves ambiguity with the configured
// policy.
type Estimator struct {
	Models *ModelSet
	Engine remote.EngineKind
	Policy ChoicePolicy
}

var _ core.Estimator = (*Estimator)(nil)

// NewEstimator validates the model set and builds the estimator.
func NewEstimator(ms *ModelSet, kind remote.EngineKind, policy ChoicePolicy) (*Estimator, error) {
	if err := ms.Validate(); err != nil {
		return nil, err
	}
	return &Estimator{Models: ms, Engine: kind, Policy: policy}, nil
}

// Approach implements core.Estimator.
func (e *Estimator) Approach() core.Approach { return core.SubOp }

// EstimateJoin implements core.Estimator.
func (e *Estimator) EstimateJoin(spec plan.JoinSpec) (core.Estimate, error) {
	if e.Models == nil {
		return core.Estimate{}, core.ErrUntrained
	}
	algs := ApplicableJoins(e.Engine, spec, e.Models)
	type scored struct {
		alg remote.JoinAlgorithm
		sec float64
	}
	costs := make([]scored, 0, len(algs))
	for _, a := range algs {
		sec, err := e.Models.JoinCost(spec, a)
		if err != nil {
			return core.Estimate{}, err
		}
		costs = append(costs, scored{alg: a, sec: sec})
	}
	pick := costs[0]
	switch e.Policy {
	case WorstCase:
		for _, c := range costs[1:] {
			if c.sec > pick.sec {
				pick = c
			}
		}
	case InHouseComparable:
		for _, c := range costs[1:] {
			if c.sec < pick.sec {
				pick = c
			}
		}
	case AverageCase:
		sum := 0.0
		for _, c := range costs {
			sum += c.sec
		}
		pick.sec = sum / float64(len(costs))
		pick.alg = "average:" + pick.alg
	}
	return core.Estimate{Seconds: pick.sec, Approach: core.SubOp, Algorithm: string(pick.alg)}, nil
}

// EstimateAgg implements core.Estimator.
func (e *Estimator) EstimateAgg(spec plan.AggSpec) (core.Estimate, error) {
	if e.Models == nil {
		return core.Estimate{}, core.ErrUntrained
	}
	sec, err := e.Models.AggCost(spec)
	if err != nil {
		return core.Estimate{}, err
	}
	return core.Estimate{Seconds: sec, Approach: core.SubOp, Algorithm: "hash_aggregation"}, nil
}

// EstimateScan implements core.Estimator.
func (e *Estimator) EstimateScan(spec plan.ScanSpec) (core.Estimate, error) {
	if e.Models == nil {
		return core.Estimate{}, core.ErrUntrained
	}
	sec, err := e.Models.ScanCost(spec)
	if err != nil {
		return core.Estimate{}, err
	}
	return core.Estimate{Seconds: sec, Approach: core.SubOp, Algorithm: "scan"}, nil
}
