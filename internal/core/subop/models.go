// Package subop implements the paper's sub-operator costing (Section 4) for
// openbox remote systems: per-record linear models for each primitive
// sub-operation of Figure 5, learned from a handful of probe queries;
// analytic cost formulas composing them into physical-algorithm costs
// (Figure 6); applicability rules that eliminate physical algorithms the
// remote cannot pick; and the worst / average / in-house-comparable choice
// policies for whatever ambiguity remains.
package subop

import (
	"fmt"

	"intellisphere/internal/cluster"
	"intellisphere/internal/remote"
	"intellisphere/internal/stats"
)

// ModelSet holds the learned per-record cost models of one remote system.
// Each line maps record size (bytes) to per-record cost (µs on one
// execution stream). HashBuild carries the second, spill-regime line of
// Figure 13(f). BaselineSec is the learned fixed per-query latency (job
// startup and friends) recovered from the probe fits' intercepts.
type ModelSet struct {
	Lines       map[remote.SubOp]stats.Line `json:"lines"`
	HashSpill   stats.Line                  `json:"hash_spill"`
	BaselineSec float64                     `json:"baseline_sec"`
	Cluster     cluster.Config              `json:"cluster"`
}

// Validate reports whether the mandatory (Basic) sub-operators are modeled.
// Per Figure 5, missing Basic sub-ops disqualify the approach; missing
// Specific ones merely degrade it.
func (ms *ModelSet) Validate() error {
	if ms == nil || len(ms.Lines) == 0 {
		return fmt.Errorf("subop: empty model set")
	}
	for _, op := range remote.BasicSubOps() {
		if _, ok := ms.Lines[op]; !ok {
			return fmt.Errorf("subop: mandatory sub-operator %v is not modeled", op)
		}
	}
	if err := ms.Cluster.Validate(); err != nil {
		return fmt.Errorf("subop: %w", err)
	}
	return nil
}

// defaultSpecific supplies the paper's "rough default values" for Specific
// sub-operators that were not probed (Figure 5 says missing them is not a
// hindrance).
var defaultSpecific = map[remote.SubOp]stats.Line{
	remote.HashBuild: {Slope: 0.02, Intercept: 15},
	remote.HashProbe: {Slope: 0.008, Intercept: 1},
	remote.RecMerge:  {Slope: 0.03, Intercept: 30},
}

// PerRecord returns the modeled per-record µs cost of op at the given
// record size. For HashBuild, inMemory selects the regime (the spill line
// is floored at the in-memory one, mirroring the physical reality that
// spilling can't be cheaper). Costs are floored at zero.
func (ms *ModelSet) PerRecord(op remote.SubOp, size float64, inMemory bool) float64 {
	line, ok := ms.Lines[op]
	if !ok {
		line, ok = defaultSpecific[op]
		if !ok {
			return 0
		}
	}
	v := line.Eval(size)
	if op == remote.HashBuild && !inMemory {
		if spill := ms.HashSpill.Eval(size); spill > v {
			v = spill
		}
	}
	if v < 0 {
		return 0
	}
	return v
}

// FitsInMemory reports whether a hash build of the given size stays within
// one task's memory budget on the modeled cluster — the openbox knowledge
// that selects the HashBuild regime and feeds the broadcast applicability
// rule.
func (ms *ModelSet) FitsInMemory(bytes float64) bool {
	return ms.Cluster.FitsInMemory(bytes)
}
