package subop

import (
	"fmt"

	"intellisphere/internal/remote"
	"intellisphere/internal/stats"
)

// TrainConfig controls the probe-based learning phase.
type TrainConfig struct {
	// RecordSizes are the record sizes (bytes) probed per sub-operator.
	// Default: the Figure 10 sizes {40, 70, 100, 250, 500, 1000}.
	RecordSizes []float64
	// RecordCounts are the cardinalities probed per record size (the paper
	// uses 1, 2, 4, 8 million and averages across them).
	RecordCounts []float64
	// Targets are the sub-operators to learn. Default: all of Figure 5.
	Targets []remote.SubOp
}

func (c *TrainConfig) normalize() {
	if len(c.RecordSizes) == 0 {
		c.RecordSizes = []float64{40, 70, 100, 250, 500, 1000}
	}
	if len(c.RecordCounts) == 0 {
		c.RecordCounts = []float64{1e6, 2e6, 4e6, 8e6}
	}
	if len(c.Targets) == 0 {
		c.Targets = remote.AllSubOps()
	}
}

// SizePoint is one fitted per-record cost at a record size (the x axis of
// Figures 7(b) and 13(c)–(f)).
type SizePoint struct {
	Size        float64
	PerRecordUS float64
}

// CountPoint is one per-record cost at a record count for a fixed size (the
// flatness plots of Figures 7(a) and 13(b)).
type CountPoint struct {
	Records     float64
	PerRecordUS float64
}

// SubOpReport captures everything learned about one sub-operator.
type SubOpReport struct {
	Target    remote.SubOp
	Line      stats.Line  // per-record µs vs record size
	SpillLine *stats.Line // HashBuild only: the spill-regime model
	PerSize   []SizePoint
	// PerCount shows the per-record cost across record counts at the
	// largest probed record size, demonstrating the paper's observation
	// that the value is stable across dataset sizes.
	PerCount []CountPoint
	Queries  int
	TrainSec float64 // simulated remote time spent on this sub-op's probes
}

// Report summarizes a training run (feeds Figure 13(a)).
type Report struct {
	SubOps      []SubOpReport
	TotalSec    float64
	TotalCount  int
	BaselineSec float64
}

// Train learns a ModelSet from probe queries against the remote system,
// following the Figure 5 recipes: every probe reads from the DFS plus at
// most one extra sub-operation; the ReadDFS cost is learned first and
// differenced out of the composites. Per record size, the per-record cost
// is extracted as the slope of elapsed time against effective sequential
// records (task waves × records per task — openbox cluster knowledge),
// which cancels the fixed job overheads the same way the paper's averaging
// across record counts does.
func Train(sys remote.System, cfg TrainConfig) (*ModelSet, *Report, error) {
	cfg.normalize()
	cc := sys.Cluster()
	if err := cc.Validate(); err != nil {
		return nil, nil, fmt.Errorf("subop: remote %q cluster: %w", sys.Name(), err)
	}
	if len(cfg.RecordCounts) < 2 {
		return nil, nil, fmt.Errorf("subop: need at least 2 record counts to difference out overheads")
	}

	ms := &ModelSet{Lines: make(map[remote.SubOp]stats.Line), Cluster: cc}
	rep := &Report{}

	// seqRecords converts a probe's record count into effective sequential
	// records: waves × records-per-task.
	seqRecords := func(records, size float64) float64 {
		tasks := cc.NumTasks(records * size)
		waves := cc.TaskWaves(tasks)
		return float64(waves) * records / float64(tasks)
	}

	// measure runs the count sweep for one (target, size, buildBytes) and
	// returns the per-record µs slope, the fit intercept (fixed latency),
	// the per-count flatness points, and the time spent.
	measure := func(target remote.SubOp, size, buildBytes float64) (perUS, baseSec float64, counts []CountPoint, spent float64, err error) {
		xs := make([]float64, 0, len(cfg.RecordCounts))
		ys := make([]float64, 0, len(cfg.RecordCounts))
		for _, n := range cfg.RecordCounts {
			ex, perr := sys.ExecuteProbe(remote.Probe{Target: target, Records: n, RecordSize: size, BuildBytes: buildBytes})
			if perr != nil {
				return 0, 0, nil, spent, fmt.Errorf("subop: probe %v n=%v s=%v: %w", target, n, size, perr)
			}
			spent += ex.ElapsedSec
			xs = append(xs, seqRecords(n, size))
			ys = append(ys, ex.ElapsedSec)
		}
		line, ferr := stats.FitLine(xs, ys)
		if ferr != nil {
			return 0, 0, nil, spent, fmt.Errorf("subop: fit %v at size %v: %w", target, size, ferr)
		}
		for i, n := range cfg.RecordCounts {
			per := 0.0
			if xs[i] > 0 {
				per = (ys[i] - line.Intercept) / xs[i] * 1e6
			}
			counts = append(counts, CountPoint{Records: n, PerRecordUS: per})
		}
		return line.Slope * 1e6, line.Intercept, counts, spent, nil
	}

	// fitSizeLine regresses per-record cost against record size.
	fitSizeLine := func(points []SizePoint) (stats.Line, error) {
		xs := make([]float64, len(points))
		ys := make([]float64, len(points))
		for i, p := range points {
			xs[i] = p.Size
			ys[i] = p.PerRecordUS
		}
		return stats.FitLine(xs, ys)
	}

	// Pass 1: ReadDFS — needed to difference every other probe.
	readReport := SubOpReport{Target: remote.ReadDFS}
	var baselineSum float64
	var baselineN int
	refSize := cfg.RecordSizes[len(cfg.RecordSizes)-1]
	for _, size := range cfg.RecordSizes {
		per, base, counts, spent, err := measure(remote.ReadDFS, size, 0)
		if err != nil {
			return nil, nil, err
		}
		readReport.PerSize = append(readReport.PerSize, SizePoint{Size: size, PerRecordUS: per})
		readReport.Queries += len(cfg.RecordCounts)
		readReport.TrainSec += spent
		baselineSum += base
		baselineN++
		if size == refSize {
			readReport.PerCount = counts
		}
	}
	readLine, err := fitSizeLine(readReport.PerSize)
	if err != nil {
		return nil, nil, fmt.Errorf("subop: ReadDFS model: %w", err)
	}
	readReport.Line = readLine
	ms.Lines[remote.ReadDFS] = readLine
	ms.BaselineSec = baselineSum / float64(baselineN)
	if ms.BaselineSec < 0 {
		// Wave discretization can tilt the fit intercept slightly negative
		// on fast systems; a negative fixed latency is meaningless.
		ms.BaselineSec = 0
	}
	rep.SubOps = append(rep.SubOps, readReport)
	rep.TotalSec += readReport.TrainSec
	rep.TotalCount += readReport.Queries

	// Pass 2: every other requested target.
	for _, target := range cfg.Targets {
		if target == remote.ReadDFS {
			continue
		}
		r := SubOpReport{Target: target}
		spillPoints := make([]SizePoint, 0)
		for _, size := range cfg.RecordSizes {
			per, _, counts, spent, err := measure(target, size, 0)
			if err != nil {
				return nil, nil, err
			}
			net := per - readLine.Eval(size)
			if net < 0 {
				net = 0
			}
			r.PerSize = append(r.PerSize, SizePoint{Size: size, PerRecordUS: net})
			r.Queries += len(cfg.RecordCounts)
			r.TrainSec += spent
			if size == refSize {
				// Report the composite-minus-read flatness values.
				for i := range counts {
					counts[i].PerRecordUS -= readLine.Eval(size)
				}
				r.PerCount = counts
			}
			if target == remote.HashBuild {
				// Second sweep in the spill regime: an oversized build.
				perSpill, _, _, spentSpill, err := measure(target, size, 1<<42)
				if err != nil {
					return nil, nil, err
				}
				netSpill := perSpill - readLine.Eval(size)
				if netSpill < 0 {
					netSpill = 0
				}
				spillPoints = append(spillPoints, SizePoint{Size: size, PerRecordUS: netSpill})
				r.Queries += len(cfg.RecordCounts)
				r.TrainSec += spentSpill
			}
		}
		line, err := fitSizeLine(r.PerSize)
		if err != nil {
			return nil, nil, fmt.Errorf("subop: %v model: %w", target, err)
		}
		r.Line = line
		ms.Lines[target] = line
		if target == remote.HashBuild {
			// At small record sizes the spill regime costs no more than the
			// in-memory one (the engine floors it), so those points lie on
			// the in-memory line and would flatten the spill fit. Fit the
			// spill model only where spilling measurably dominates — the
			// right-hand regime of Figure 13(f).
			dominant := make([]SizePoint, 0, len(spillPoints))
			for i, p := range spillPoints {
				if p.PerRecordUS > 1.15*r.PerSize[i].PerRecordUS {
					dominant = append(dominant, p)
				}
			}
			if len(dominant) < 2 {
				dominant = spillPoints
			}
			spill, err := fitSizeLine(dominant)
			if err != nil {
				return nil, nil, fmt.Errorf("subop: HashBuild spill model: %w", err)
			}
			r.SpillLine = &spill
			ms.HashSpill = spill
		}
		rep.SubOps = append(rep.SubOps, r)
		rep.TotalSec += r.TrainSec
		rep.TotalCount += r.Queries
	}
	rep.BaselineSec = ms.BaselineSec
	if err := ms.Validate(); err != nil {
		// Only fails when the caller restricted Targets below the Basic set.
		return ms, rep, err
	}
	return ms, rep, nil
}
