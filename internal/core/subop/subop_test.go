package subop

import (
	"math"
	"testing"

	"intellisphere/internal/cluster"
	"intellisphere/internal/plan"
	"intellisphere/internal/remote"
	"intellisphere/internal/stats"
)

func trainHive(t *testing.T) (*remote.Distributed, *ModelSet, *Report) {
	t.Helper()
	h, err := remote.NewHive("hive", cluster.DefaultHive(), Options())
	if err != nil {
		t.Fatalf("NewHive: %v", err)
	}
	ms, rep, err := Train(h, TrainConfig{})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	return h, ms, rep
}

// Options returns low-noise simulator options so fitted models are tight.
func Options() remote.Options {
	return remote.Options{NoiseAmp: 0.01, Seed: 3}
}

func TestTrainRecoversGroundTruth(t *testing.T) {
	_, ms, rep := trainHive(t)
	truth := remote.DefaultHiveCosts()

	within := func(got, want, tol float64) bool {
		return math.Abs(got-want) <= tol*math.Abs(want)
	}
	cases := []struct {
		op    remote.SubOp
		slope float64
	}{
		{remote.ReadDFS, truth.Costs[remote.ReadDFS].Slope},
		{remote.WriteDFS, truth.Costs[remote.WriteDFS].Slope},
		{remote.Shuffle, truth.Costs[remote.Shuffle].Slope},
		{remote.RecMerge, truth.Costs[remote.RecMerge].Slope},
		{remote.HashBuild, truth.Costs[remote.HashBuild].Slope},
	}
	for _, c := range cases {
		line, ok := ms.Lines[c.op]
		if !ok {
			t.Fatalf("%v not learned", c.op)
		}
		if !within(line.Slope, c.slope, 0.25) {
			t.Errorf("%v learned slope %v, truth %v", c.op, line.Slope, c.slope)
		}
		if line.R2 < 0.9 {
			t.Errorf("%v fit R² = %v, want > 0.9", c.op, line.R2)
		}
	}
	// The spill regime must be recovered distinctly and steeper.
	if ms.HashSpill.Slope <= ms.Lines[remote.HashBuild].Slope {
		t.Errorf("spill slope %v not steeper than in-memory %v", ms.HashSpill.Slope, ms.Lines[remote.HashBuild].Slope)
	}
	if !within(ms.HashSpill.Slope, truth.HashSpill.Slope, 0.3) {
		t.Errorf("spill slope %v, truth %v", ms.HashSpill.Slope, truth.HashSpill.Slope)
	}
	// Baseline should sit near the job startup latency.
	if rep.BaselineSec <= 0 || rep.BaselineSec > 10 {
		t.Errorf("baseline = %v s, expected a small positive latency", rep.BaselineSec)
	}
}

func TestTrainReportShape(t *testing.T) {
	_, _, rep := trainHive(t)
	if len(rep.SubOps) != len(remote.AllSubOps()) {
		t.Fatalf("report covers %d sub-ops, want %d", len(rep.SubOps), len(remote.AllSubOps()))
	}
	if rep.SubOps[0].Target != remote.ReadDFS {
		t.Error("ReadDFS must be learned first")
	}
	total := 0
	for _, r := range rep.SubOps {
		if r.Queries <= 0 || r.TrainSec <= 0 {
			t.Errorf("%v: queries=%d trainSec=%v", r.Target, r.Queries, r.TrainSec)
		}
		if len(r.PerSize) != 6 {
			t.Errorf("%v: %d size points, want 6", r.Target, len(r.PerSize))
		}
		if len(r.PerCount) == 0 {
			t.Errorf("%v: no flatness points", r.Target)
		}
		total += r.Queries
	}
	if total != rep.TotalCount {
		t.Errorf("TotalCount %d != sum %d", rep.TotalCount, total)
	}
	// The paper's headline: sub-op training needs only tens of queries per
	// sub-op — 1-2 orders of magnitude below logical-op training.
	if rep.TotalCount > 400 {
		t.Errorf("sub-op training used %d queries; should be tiny", rep.TotalCount)
	}
	// Flatness: per-record cost varies little across record counts.
	for _, r := range rep.SubOps {
		if r.Target != remote.ReadDFS {
			continue
		}
		var vals []float64
		for _, p := range r.PerCount {
			vals = append(vals, p.PerRecordUS)
		}
		min, max, err := stats.MinMax(vals)
		if err != nil {
			t.Fatal(err)
		}
		if min <= 0 || (max-min)/min > 0.5 {
			t.Errorf("ReadDFS per-record cost not flat across counts: [%v, %v]", min, max)
		}
	}
}

func TestTrainErrors(t *testing.T) {
	h, err := remote.NewHive("hive", cluster.DefaultHive(), Options())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Train(h, TrainConfig{RecordCounts: []float64{1e6}}); err == nil {
		t.Error("single record count accepted")
	}
	// Restricting targets below the Basic set must be flagged.
	if _, _, err := Train(h, TrainConfig{Targets: []remote.SubOp{remote.ReadDFS, remote.WriteDFS}}); err == nil {
		t.Error("missing mandatory sub-ops accepted")
	}
}

func TestModelSetValidate(t *testing.T) {
	var ms *ModelSet
	if err := ms.Validate(); err == nil {
		t.Error("nil model set accepted")
	}
	ms = &ModelSet{Lines: map[remote.SubOp]stats.Line{remote.ReadDFS: {}}}
	if err := ms.Validate(); err == nil {
		t.Error("incomplete model set accepted")
	}
}

func TestPerRecordDefaults(t *testing.T) {
	ms := &ModelSet{Lines: map[remote.SubOp]stats.Line{}, Cluster: cluster.DefaultHive()}
	// Specific sub-ops fall back to rough defaults.
	if got := ms.PerRecord(remote.RecMerge, 100, true); got <= 0 {
		t.Errorf("default RecMerge = %v", got)
	}
	// Unknown basic sub-op with no model: zero.
	if got := ms.PerRecord(remote.Shuffle, 100, true); got != 0 {
		t.Errorf("unmodeled Shuffle = %v, want 0", got)
	}
	// Negative evaluations floor at zero.
	ms.Lines[remote.Scan] = stats.Line{Slope: -1, Intercept: 0}
	if got := ms.PerRecord(remote.Scan, 100, true); got != 0 {
		t.Errorf("negative cost not floored: %v", got)
	}
}

func TestJoinCostAccuracyBroadcast(t *testing.T) {
	h, ms, _ := trainHive(t)
	spec := plan.JoinSpec{
		Left:       plan.TableSide{Rows: 4e6, RowSize: 250, ProjectedSize: 100, KeyNDV: 4e6},
		Right:      plan.TableSide{Rows: 1e5, RowSize: 100, ProjectedSize: 50, KeyNDV: 1e5},
		OutputRows: 1e5,
	}
	actual, err := h.ExecuteJoinWith(spec, remote.HiveBroadcastJoin)
	if err != nil {
		t.Fatal(err)
	}
	est, err := ms.JoinCost(spec, remote.HiveBroadcastJoin)
	if err != nil {
		t.Fatal(err)
	}
	ratio := est / actual.ElapsedSec
	if ratio < 0.8 || ratio > 2.2 {
		t.Errorf("broadcast estimate %v vs actual %v (ratio %.2f) out of band", est, actual.ElapsedSec, ratio)
	}
}

func TestJoinCostAccuracyShuffleOverestimates(t *testing.T) {
	// The paper's Figure 13(g): the composed formula slightly overestimates
	// (it cannot know about intra-task pipelining). Check the trend over a
	// sweep.
	h, ms, _ := trainHive(t)
	var est, actual []float64
	for _, rows := range []float64{2e6, 4e6, 8e6, 16e6} {
		for _, size := range []float64{100, 250, 500} {
			spec := plan.JoinSpec{
				Left:       plan.TableSide{Rows: rows, RowSize: size, ProjectedSize: 50, KeyNDV: rows},
				Right:      plan.TableSide{Rows: rows / 2, RowSize: size, ProjectedSize: 50, KeyNDV: rows / 2},
				OutputRows: rows / 2,
			}
			ex, err := h.ExecuteJoinWith(spec, remote.HiveShuffleJoin)
			if err != nil {
				t.Fatal(err)
			}
			c, err := ms.JoinCost(spec, remote.HiveShuffleJoin)
			if err != nil {
				t.Fatal(err)
			}
			actual = append(actual, ex.ElapsedSec)
			est = append(est, c)
		}
	}
	line, err := stats.FitLine(actual, est)
	if err != nil {
		t.Fatal(err)
	}
	if line.Slope < 1.0 || line.Slope > 2.0 {
		t.Errorf("estimate-vs-actual slope = %v, want in [1.0, 2.0] (slight overestimation)", line.Slope)
	}
	if line.R2 < 0.85 {
		t.Errorf("estimate-vs-actual R² = %v, want > 0.85", line.R2)
	}
}

func TestJoinCostUnknownAlgorithm(t *testing.T) {
	_, ms, _ := trainHive(t)
	spec := plan.JoinSpec{
		Left:       plan.TableSide{Rows: 1e5, RowSize: 100, ProjectedSize: 10},
		Right:      plan.TableSide{Rows: 1e4, RowSize: 100, ProjectedSize: 10},
		OutputRows: 1e4,
	}
	if _, err := ms.JoinCost(spec, remote.JoinAlgorithm("bogus")); err == nil {
		t.Error("bogus algorithm accepted")
	}
	if _, err := ms.JoinCost(plan.JoinSpec{}, remote.HiveShuffleJoin); err == nil {
		t.Error("invalid spec accepted")
	}
}

func TestAggAndScanCost(t *testing.T) {
	h, ms, _ := trainHive(t)
	agg := plan.AggSpec{InputRows: 2e6, InputRowSize: 250, OutputRows: 2e4, OutputRowSize: 28, NumAggregates: 3}
	actual, err := h.ExecuteAgg(agg)
	if err != nil {
		t.Fatal(err)
	}
	est, err := ms.AggCost(agg)
	if err != nil {
		t.Fatal(err)
	}
	ratio := est / actual.ElapsedSec
	if ratio < 0.5 || ratio > 3 {
		t.Errorf("agg estimate %v vs actual %v out of band", est, actual.ElapsedSec)
	}
	if _, err := ms.AggCost(plan.AggSpec{}); err == nil {
		t.Error("invalid agg accepted")
	}

	scan := plan.ScanSpec{InputRows: 2e6, InputRowSize: 250, Selectivity: 0.25, OutputRowSize: 100}
	sActual, err := h.ExecuteScan(scan)
	if err != nil {
		t.Fatal(err)
	}
	sEst, err := ms.ScanCost(scan)
	if err != nil {
		t.Fatal(err)
	}
	ratio = sEst / sActual.ElapsedSec
	if ratio < 0.5 || ratio > 3 {
		t.Errorf("scan estimate %v vs actual %v out of band", sEst, sActual.ElapsedSec)
	}
	if _, err := ms.ScanCost(plan.ScanSpec{}); err == nil {
		t.Error("invalid scan accepted")
	}
}

func TestApplicableJoinsHive(t *testing.T) {
	_, ms, _ := trainHive(t)
	small := plan.JoinSpec{
		Left:       plan.TableSide{Rows: 4e6, RowSize: 250, ProjectedSize: 100, KeyNDV: 4e6},
		Right:      plan.TableSide{Rows: 1e4, RowSize: 100, ProjectedSize: 50, KeyNDV: 1e4},
		OutputRows: 1e4,
	}
	algs := ApplicableJoins(remote.EngineHive, small, ms)
	if !contains(algs, remote.HiveBroadcastJoin) || !contains(algs, remote.HiveShuffleJoin) {
		t.Errorf("small-side applicable = %v", algs)
	}
	if contains(algs, remote.HiveBucketMapJoin) || contains(algs, remote.HiveSortMergeBucketJoin) {
		t.Errorf("unpartitioned inputs must eliminate bucketed joins: %v", algs)
	}

	big := plan.JoinSpec{
		Left:       plan.TableSide{Rows: 4e7, RowSize: 500, ProjectedSize: 100, KeyNDV: 4e7},
		Right:      plan.TableSide{Rows: 2e7, RowSize: 500, ProjectedSize: 100, KeyNDV: 2e7},
		OutputRows: 2e7,
	}
	algs = ApplicableJoins(remote.EngineHive, big, ms)
	if len(algs) != 1 || algs[0] != remote.HiveShuffleJoin {
		t.Errorf("big unpartitioned join applicable = %v, want only shuffle", algs)
	}

	big.Left.KeyNDV = 10 // extreme skew
	algs = ApplicableJoins(remote.EngineHive, big, ms)
	if !contains(algs, remote.HiveSkewJoin) {
		t.Errorf("skewed join should include skew join: %v", algs)
	}

	sorted := big
	sorted.Left.KeyNDV = 4e7
	sorted.Left.PartitionedOn, sorted.Left.SortedOn = true, true
	sorted.Right.PartitionedOn, sorted.Right.SortedOn = true, true
	algs = ApplicableJoins(remote.EngineHive, sorted, ms)
	if !contains(algs, remote.HiveSortMergeBucketJoin) || !contains(algs, remote.HiveBucketMapJoin) {
		t.Errorf("bucketed+sorted applicable = %v", algs)
	}
}

func TestApplicableJoinsSpark(t *testing.T) {
	_, ms, _ := trainHive(t)
	small := plan.JoinSpec{
		Left:       plan.TableSide{Rows: 4e6, RowSize: 250, ProjectedSize: 100, KeyNDV: 4e6},
		Right:      plan.TableSide{Rows: 1e4, RowSize: 100, ProjectedSize: 50, KeyNDV: 1e4},
		OutputRows: 1e4,
	}
	algs := ApplicableJoins(remote.EngineSpark, small, ms)
	if !contains(algs, remote.SparkBroadcastHashJoin) || !contains(algs, remote.SparkSortMergeJoin) {
		t.Errorf("spark small applicable = %v", algs)
	}
	cart := small
	cart.Cartesian = true
	algs = ApplicableJoins(remote.EngineSpark, cart, ms)
	for _, a := range algs {
		if a != remote.SparkBroadcastNLJoin && a != remote.SparkCartesianJoin {
			t.Errorf("cartesian applicable includes equi-join %v", a)
		}
	}
}

func contains(algs []remote.JoinAlgorithm, a remote.JoinAlgorithm) bool {
	for _, x := range algs {
		if x == a {
			return true
		}
	}
	return false
}

func TestEstimatorPolicies(t *testing.T) {
	_, ms, _ := trainHive(t)
	spec := plan.JoinSpec{ // broadcast + shuffle both applicable
		Left:       plan.TableSide{Rows: 4e6, RowSize: 250, ProjectedSize: 100, KeyNDV: 4e6},
		Right:      plan.TableSide{Rows: 1e4, RowSize: 100, ProjectedSize: 50, KeyNDV: 1e4},
		OutputRows: 1e4,
	}
	est := func(p ChoicePolicy) core0 {
		e, err := NewEstimator(ms, remote.EngineHive, p)
		if err != nil {
			t.Fatal(err)
		}
		ce, err := e.EstimateJoin(spec)
		if err != nil {
			t.Fatal(err)
		}
		return core0{ce.Seconds, ce.Algorithm}
	}
	worst := est(WorstCase)
	best := est(InHouseComparable)
	avg := est(AverageCase)
	if worst.sec < best.sec {
		t.Errorf("worst (%v) < best (%v)", worst.sec, best.sec)
	}
	if avg.sec < best.sec || avg.sec > worst.sec {
		t.Errorf("average %v outside [best %v, worst %v]", avg.sec, best.sec, worst.sec)
	}
	if WorstCase.String() != "worst-case" || AverageCase.String() != "average" ||
		InHouseComparable.String() != "in-house-comparable" {
		t.Error("policy names wrong")
	}
	if ChoicePolicy(9).String() == "" {
		t.Error("fallback policy name empty")
	}
}

type core0 struct {
	sec float64
	alg string
}

func TestEstimatorInterface(t *testing.T) {
	_, ms, _ := trainHive(t)
	e, err := NewEstimator(ms, remote.EngineHive, InHouseComparable)
	if err != nil {
		t.Fatal(err)
	}
	if e.Approach() != "sub-op" {
		t.Errorf("Approach = %q", e.Approach())
	}
	if _, err := e.EstimateAgg(plan.AggSpec{InputRows: 1e5, InputRowSize: 100, OutputRows: 100, OutputRowSize: 12}); err != nil {
		t.Errorf("EstimateAgg: %v", err)
	}
	if _, err := e.EstimateScan(plan.ScanSpec{InputRows: 1e5, InputRowSize: 100, Selectivity: 0.5, OutputRowSize: 40}); err != nil {
		t.Errorf("EstimateScan: %v", err)
	}
	bad := &Estimator{}
	if _, err := bad.EstimateJoin(plan.JoinSpec{}); err == nil {
		t.Error("untrained estimator accepted")
	}
	if _, err := bad.EstimateAgg(plan.AggSpec{}); err == nil {
		t.Error("untrained estimator accepted")
	}
	if _, err := bad.EstimateScan(plan.ScanSpec{}); err == nil {
		t.Error("untrained estimator accepted")
	}
	if _, err := NewEstimator(&ModelSet{}, remote.EngineHive, WorstCase); err == nil {
		t.Error("invalid model set accepted")
	}
}

// The out-of-range headline: sub-op models extrapolate cleanly to 20M-row
// joins after training probes capped at 8M records (Figure 14's sub-op
// series staying in the optimal zone).
func TestSubOpExtrapolatesOutOfRange(t *testing.T) {
	h, ms, _ := trainHive(t)
	var est, actual []float64
	for _, size := range []float64{100, 250, 500, 1000} {
		spec := plan.JoinSpec{
			Left:       plan.TableSide{Rows: 20e6, RowSize: size, ProjectedSize: 50, KeyNDV: 20e6},
			Right:      plan.TableSide{Rows: 20e6, RowSize: size, ProjectedSize: 50, KeyNDV: 20e6},
			OutputRows: 20e6 * 0.25,
		}
		ex, err := h.ExecuteJoinWith(spec, remote.HiveShuffleJoin)
		if err != nil {
			t.Fatal(err)
		}
		c, err := ms.JoinCost(spec, remote.HiveShuffleJoin)
		if err != nil {
			t.Fatal(err)
		}
		actual = append(actual, ex.ElapsedSec)
		est = append(est, c)
	}
	pct, err := stats.RMSEPercent(est, actual)
	if err != nil {
		t.Fatal(err)
	}
	if pct > 60 {
		t.Errorf("out-of-range sub-op RMSE%% = %v, want moderate", pct)
	}
	// And correlation must stay high.
	line, err := stats.FitLine(actual, est)
	if err != nil {
		t.Fatal(err)
	}
	if line.R2 < 0.9 {
		t.Errorf("out-of-range R² = %v", line.R2)
	}
}

func TestPrestoSubOpTrainingAndEstimation(t *testing.T) {
	p, err := remote.NewPresto("presto", cluster.DefaultHive(), remote.Options{NoiseAmp: 0.01, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	ms, _, err := Train(p, TrainConfig{})
	if err != nil {
		t.Fatalf("Train(presto): %v", err)
	}
	truth := remote.DefaultPrestoCosts()
	line := ms.Lines[remote.Shuffle]
	if math.Abs(line.Slope-truth.Costs[remote.Shuffle].Slope) > 0.3*truth.Costs[remote.Shuffle].Slope {
		t.Errorf("presto shuffle slope %v, truth %v", line.Slope, truth.Costs[remote.Shuffle].Slope)
	}
	est, err := NewEstimator(ms, remote.EnginePresto, InHouseComparable)
	if err != nil {
		t.Fatal(err)
	}
	spec := plan.JoinSpec{
		Left:       plan.TableSide{Rows: 8e6, RowSize: 250, ProjectedSize: 28, KeyNDV: 8e6},
		Right:      plan.TableSide{Rows: 4e6, RowSize: 250, ProjectedSize: 28, KeyNDV: 4e6},
		OutputRows: 2e6,
	}
	ce, err := est.EstimateJoin(spec)
	if err != nil {
		t.Fatalf("EstimateJoin: %v", err)
	}
	actual, err := p.ExecuteJoin(spec)
	if err != nil {
		t.Fatal(err)
	}
	ratio := ce.Seconds / actual.ElapsedSec
	if ratio < 0.6 || ratio > 2.5 {
		t.Errorf("presto estimate %v vs actual %v (ratio %.2f)", ce.Seconds, actual.ElapsedSec, ratio)
	}
	// Applicability: cartesian only yields the cross join.
	cart := spec
	cart.Cartesian = true
	algs := ApplicableJoins(remote.EnginePresto, cart, ms)
	if len(algs) != 1 || algs[0] != remote.PrestoCrossJoin {
		t.Errorf("cartesian applicable = %v", algs)
	}
	small := spec
	small.Right = plan.TableSide{Rows: 1e4, RowSize: 100, ProjectedSize: 28, KeyNDV: 1e4}
	algs = ApplicableJoins(remote.EnginePresto, small, ms)
	if len(algs) != 2 {
		t.Errorf("small-side applicable = %v, want replicated+partitioned", algs)
	}
}

func TestSortOnlyCost(t *testing.T) {
	_, ms, _ := trainHive(t)
	small := ms.SortOnlyCost(1e4, 100)
	big := ms.SortOnlyCost(1e7, 100)
	if small <= 0 || big <= small {
		t.Errorf("sort costs: small %v, big %v", small, big)
	}
	// Degenerate inputs floor at the clamp.
	if got := ms.SortOnlyCost(0, 0); got <= 0 {
		t.Errorf("degenerate sort cost = %v", got)
	}
}

func TestSparkFormulaVariants(t *testing.T) {
	// Every Spark algorithm has a formula that evaluates positively and the
	// spark-specific ones differ from one another on an asymmetric join.
	_, ms, _ := trainHive(t)
	spec := plan.JoinSpec{
		Left:       plan.TableSide{Rows: 8e6, RowSize: 250, ProjectedSize: 28, KeyNDV: 8e6},
		Right:      plan.TableSide{Rows: 1e6, RowSize: 100, ProjectedSize: 28, KeyNDV: 1e6},
		OutputRows: 1e6,
	}
	costs := map[remote.JoinAlgorithm]float64{}
	for _, alg := range remote.SparkJoinAlgorithms() {
		c, err := ms.JoinCost(spec, alg)
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if c <= 0 {
			t.Errorf("%v cost = %v", alg, c)
		}
		costs[alg] = c
	}
	if costs[remote.SparkBroadcastNLJoin] <= costs[remote.SparkBroadcastHashJoin] {
		t.Error("nested-loop scan of the build side should dwarf the hash probe")
	}
	// Presto formulas evaluate too.
	for _, alg := range remote.PrestoJoinAlgorithms() {
		c, err := ms.JoinCost(spec, alg)
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if c <= 0 {
			t.Errorf("%v cost = %v", alg, c)
		}
	}
	// Hive bucketed variants as well.
	bucketed := spec
	bucketed.Left.PartitionedOn, bucketed.Left.SortedOn = true, true
	bucketed.Right.PartitionedOn, bucketed.Right.SortedOn = true, true
	for _, alg := range []remote.JoinAlgorithm{remote.HiveBucketMapJoin, remote.HiveSortMergeBucketJoin, remote.HiveSkewJoin} {
		c, err := ms.JoinCost(bucketed, alg)
		if err != nil || c <= 0 {
			t.Errorf("%v: cost %v err %v", alg, c, err)
		}
	}
}

func TestClampFloorsEstimates(t *testing.T) {
	_, ms, _ := trainHive(t)
	floor := ms.BaselineSec
	if floor <= 0 {
		t.Fatalf("baseline = %v", floor)
	}
	// A microscopic join cannot cost less than the learned fixed latency.
	spec := plan.JoinSpec{
		Left:       plan.TableSide{Rows: 2, RowSize: 40, ProjectedSize: 4, KeyNDV: 2},
		Right:      plan.TableSide{Rows: 1, RowSize: 40, ProjectedSize: 4, KeyNDV: 1},
		OutputRows: 1,
	}
	c, err := ms.JoinCost(spec, remote.HiveShuffleJoin)
	if err != nil {
		t.Fatal(err)
	}
	if c < floor {
		t.Errorf("clamped cost %v below baseline %v", c, floor)
	}
}
