package subop

import (
	"fmt"

	"intellisphere/internal/plan"
	"intellisphere/internal/remote"
)

// JoinCost evaluates the analytic cost formula of a physical join algorithm
// in terms of the learned sub-operator models — the Figure 6 construction.
// The formulas mirror the algorithms' workflows (driver work, task waves,
// per-task sub-op sequences) but, unlike the real engine, cannot know about
// intra-task pipelining; the paper observes exactly this slight systematic
// overestimation (Figure 13(g)).
func (ms *ModelSet) JoinCost(spec plan.JoinSpec, alg remote.JoinAlgorithm) (float64, error) {
	if err := spec.Validate(); err != nil {
		return 0, fmt.Errorf("subop: %w", err)
	}
	var sec float64
	switch alg {
	case remote.HiveBroadcastJoin, remote.SparkBroadcastHashJoin:
		sec = ms.broadcastJoinCost(spec)
	case remote.HiveBucketMapJoin:
		sec = ms.bucketMapJoinCost(spec)
	case remote.HiveSortMergeBucketJoin:
		sec = ms.sortMergeBucketJoinCost(spec)
	case remote.HiveSkewJoin:
		sec = ms.shuffleJoinCost(spec) * 1.15
	case remote.HiveShuffleJoin, remote.SparkSortMergeJoin:
		sec = ms.shuffleJoinCost(spec)
	case remote.SparkShuffleHashJoin:
		sec = ms.shuffleHashJoinCost(spec)
	case remote.SparkBroadcastNLJoin:
		sec = ms.broadcastNLJoinCost(spec)
	case remote.SparkCartesianJoin, remote.PrestoCrossJoin:
		sec = ms.cartesianJoinCost(spec)
	case remote.PrestoReplicatedJoin:
		sec = ms.replicatedJoinCost(spec)
	case remote.PrestoPartitionedJoin:
		sec = ms.shuffleHashJoinCost(spec)
	default:
		return 0, fmt.Errorf("subop: no cost formula for algorithm %q", alg)
	}
	return ms.clamp(sec), nil
}

// clamp floors an estimate at a small positive latency: composed formulas
// over noisy learned models can dip below zero on tiny inputs, and the
// optimizer needs sane positive costs.
func (ms *ModelSet) clamp(sec float64) float64 {
	floor := ms.BaselineSec
	if floor < 0.001 {
		floor = 0.001
	}
	if sec < floor {
		return floor
	}
	return sec
}

// broadcastJoinCost is the Figure 6 formula:
//
//	rD·|S| + b·|S| + NumTaskWaves·(rL·|S| + hI·|S| + rL·|Block(R)| +
//	                               hP·|Block(R)| + wD·|TaskOutput|)
func (ms *ModelSet) broadcastJoinCost(spec plan.JoinSpec) float64 {
	s, _ := spec.SmallSide()
	r := spec.BigSide()
	outSize := spec.OutputRowSize()
	inMem := ms.FitsInMemory(s.Bytes())

	driverUS := s.Rows * (ms.PerRecord(remote.ReadDFS, s.RowSize, true) + ms.PerRecord(remote.Broadcast, s.RowSize, true))

	tasks := ms.Cluster.NumTasks(r.Bytes())
	waves := ms.Cluster.TaskWaves(tasks)
	blockR := r.Rows / float64(tasks)
	taskOut := spec.OutputRows / float64(tasks)
	perTaskUS := s.Rows*(ms.PerRecord(remote.ReadLocal, s.RowSize, true)+ms.PerRecord(remote.HashBuild, s.RowSize, inMem)) +
		blockR*(ms.PerRecord(remote.ReadLocal, r.RowSize, true)+ms.PerRecord(remote.HashProbe, r.RowSize, true)) +
		taskOut*ms.PerRecord(remote.WriteDFS, outSize, true)

	return ms.BaselineSec + driverUS/1e6 + float64(waves)*perTaskUS/1e6
}

// shuffleJoinCost models the redistribution (sort-merge) join: read and
// shuffle both inputs, sort partitions, merge, write.
func (ms *ModelSet) shuffleJoinCost(spec plan.JoinSpec) float64 {
	outSize := spec.OutputRowSize()
	mapBytes := spec.Left.Bytes() + spec.Right.Bytes()
	mapTasks := ms.Cluster.NumTasks(mapBytes)
	mapWaves := ms.Cluster.TaskWaves(mapTasks)
	mapUS := spec.Left.Rows*(ms.PerRecord(remote.ReadDFS, spec.Left.RowSize, true)+ms.PerRecord(remote.Shuffle, spec.Left.RowSize, true)) +
		spec.Right.Rows*(ms.PerRecord(remote.ReadDFS, spec.Right.RowSize, true)+ms.PerRecord(remote.Shuffle, spec.Right.RowSize, true))

	redTasks := float64(ms.Cluster.Slots())
	inRecs := spec.Left.Rows + spec.Right.Rows
	redUS := spec.Left.Rows*ms.PerRecord(remote.Sort, spec.Left.RowSize, true) +
		spec.Right.Rows*ms.PerRecord(remote.Sort, spec.Right.RowSize, true) +
		inRecs*ms.PerRecord(remote.Scan, (spec.Left.RowSize+spec.Right.RowSize)/2, true) +
		spec.OutputRows*(ms.PerRecord(remote.RecMerge, outSize, true)+ms.PerRecord(remote.WriteDFS, outSize, true))

	return ms.BaselineSec + float64(mapWaves)*mapUS/float64(mapTasks)/1e6 + redUS/redTasks/1e6
}

// shuffleHashJoinCost replaces the reduce-side sort with hash build/probe.
func (ms *ModelSet) shuffleHashJoinCost(spec plan.JoinSpec) float64 {
	outSize := spec.OutputRowSize()
	s, _ := spec.SmallSide()
	r := spec.BigSide()
	mapBytes := spec.Left.Bytes() + spec.Right.Bytes()
	mapTasks := ms.Cluster.NumTasks(mapBytes)
	mapWaves := ms.Cluster.TaskWaves(mapTasks)
	mapUS := spec.Left.Rows*(ms.PerRecord(remote.ReadDFS, spec.Left.RowSize, true)+ms.PerRecord(remote.Shuffle, spec.Left.RowSize, true)) +
		spec.Right.Rows*(ms.PerRecord(remote.ReadDFS, spec.Right.RowSize, true)+ms.PerRecord(remote.Shuffle, spec.Right.RowSize, true))

	redTasks := float64(ms.Cluster.Slots())
	inMem := ms.FitsInMemory(s.Bytes() / redTasks)
	redUS := s.Rows*ms.PerRecord(remote.HashBuild, s.RowSize, inMem) +
		r.Rows*ms.PerRecord(remote.HashProbe, r.RowSize, true) +
		spec.OutputRows*(ms.PerRecord(remote.RecMerge, outSize, true)+ms.PerRecord(remote.WriteDFS, outSize, true))
	return ms.BaselineSec + float64(mapWaves)*mapUS/float64(mapTasks)/1e6 + redUS/redTasks/1e6
}

// replicatedJoinCost mirrors Presto's replicated join: stream and
// replicate the build side, hash-build per worker, pipeline the probe side.
func (ms *ModelSet) replicatedJoinCost(spec plan.JoinSpec) float64 {
	s, _ := spec.SmallSide()
	r := spec.BigSide()
	inMem := ms.FitsInMemory(s.Bytes())
	outSize := spec.OutputRowSize()
	tasks := ms.Cluster.NumTasks(r.Bytes())
	waves := ms.Cluster.TaskWaves(tasks)
	replicateUS := s.Rows * (ms.PerRecord(remote.ReadDFS, s.RowSize, true) + ms.PerRecord(remote.Broadcast, s.RowSize, true))
	perTaskUS := s.Rows*ms.PerRecord(remote.HashBuild, s.RowSize, inMem) +
		r.Rows/float64(tasks)*(ms.PerRecord(remote.ReadDFS, r.RowSize, true)+ms.PerRecord(remote.HashProbe, r.RowSize, true)) +
		spec.OutputRows/float64(tasks)*ms.PerRecord(remote.WriteDFS, outSize, true)
	return ms.BaselineSec + replicateUS/1e6 + float64(waves)*perTaskUS/1e6
}

// bucketMapJoinCost: each task reads only the matching bucket of S.
func (ms *ModelSet) bucketMapJoinCost(spec plan.JoinSpec) float64 {
	s, _ := spec.SmallSide()
	r := spec.BigSide()
	outSize := spec.OutputRowSize()
	tasks := ms.Cluster.NumTasks(r.Bytes())
	waves := ms.Cluster.TaskWaves(tasks)
	buckets := float64(ms.Cluster.Slots())
	bucketRecs := s.Rows / buckets
	inMem := ms.FitsInMemory(s.Bytes() / buckets)
	perTaskUS := bucketRecs*(ms.PerRecord(remote.ReadDFS, s.RowSize, true)+ms.PerRecord(remote.HashBuild, s.RowSize, inMem)) +
		r.Rows/float64(tasks)*(ms.PerRecord(remote.ReadLocal, r.RowSize, true)+ms.PerRecord(remote.HashProbe, r.RowSize, true)) +
		spec.OutputRows/float64(tasks)*ms.PerRecord(remote.WriteDFS, outSize, true)
	return ms.BaselineSec + float64(waves)*perTaskUS/1e6
}

// sortMergeBucketJoinCost: map-only merge of co-located sorted buckets.
func (ms *ModelSet) sortMergeBucketJoinCost(spec plan.JoinSpec) float64 {
	outSize := spec.OutputRowSize()
	totalBytes := spec.Left.Bytes() + spec.Right.Bytes()
	tasks := ms.Cluster.NumTasks(totalBytes)
	waves := ms.Cluster.TaskWaves(tasks)
	totalUS := spec.Left.Rows*ms.PerRecord(remote.ReadDFS, spec.Left.RowSize, true) +
		spec.Right.Rows*ms.PerRecord(remote.ReadDFS, spec.Right.RowSize, true) +
		spec.OutputRows*(ms.PerRecord(remote.RecMerge, outSize, true)+ms.PerRecord(remote.WriteDFS, outSize, true))
	return ms.BaselineSec + float64(waves)*totalUS/float64(tasks)/1e6
}

// broadcastNLJoinCost: broadcast the small side, scan it per probe record.
func (ms *ModelSet) broadcastNLJoinCost(spec plan.JoinSpec) float64 {
	s, _ := spec.SmallSide()
	r := spec.BigSide()
	outSize := spec.OutputRowSize()
	driverUS := s.Rows * (ms.PerRecord(remote.ReadDFS, s.RowSize, true) + ms.PerRecord(remote.Broadcast, s.RowSize, true))
	tasks := ms.Cluster.NumTasks(r.Bytes())
	waves := ms.Cluster.TaskWaves(tasks)
	blockR := r.Rows / float64(tasks)
	perTaskUS := blockR*ms.PerRecord(remote.ReadLocal, r.RowSize, true) +
		blockR*s.Rows*ms.PerRecord(remote.Scan, s.RowSize, true) +
		spec.OutputRows/float64(tasks)*ms.PerRecord(remote.WriteDFS, outSize, true)
	return ms.BaselineSec + driverUS/1e6 + float64(waves)*perTaskUS/1e6
}

// cartesianJoinCost: shuffle both sides, scan every pair.
func (ms *ModelSet) cartesianJoinCost(spec plan.JoinSpec) float64 {
	outSize := spec.OutputRowSize()
	mapBytes := spec.Left.Bytes() + spec.Right.Bytes()
	mapTasks := ms.Cluster.NumTasks(mapBytes)
	mapWaves := ms.Cluster.TaskWaves(mapTasks)
	mapUS := spec.Left.Rows*(ms.PerRecord(remote.ReadDFS, spec.Left.RowSize, true)+ms.PerRecord(remote.Shuffle, spec.Left.RowSize, true)) +
		spec.Right.Rows*(ms.PerRecord(remote.ReadDFS, spec.Right.RowSize, true)+ms.PerRecord(remote.Shuffle, spec.Right.RowSize, true))
	redTasks := float64(ms.Cluster.Slots())
	redUS := spec.Left.Rows*spec.Right.Rows*ms.PerRecord(remote.Scan, (spec.Left.RowSize+spec.Right.RowSize)/2, true) +
		spec.OutputRows*(ms.PerRecord(remote.RecMerge, outSize, true)+ms.PerRecord(remote.WriteDFS, outSize, true))
	return ms.BaselineSec + float64(mapWaves)*mapUS/float64(mapTasks)/1e6 + redUS/redTasks/1e6
}

// SortOnlyCost prices sorting an already-materialized result of the given
// shape (used by the optimizer for final ORDER BY steps): read the rows and
// sort them across the cluster's streams.
func (ms *ModelSet) SortOnlyCost(rows, rowSize float64) float64 {
	if rows <= 0 || rowSize <= 0 {
		return ms.clamp(0)
	}
	tasks := ms.Cluster.NumTasks(rows * rowSize)
	waves := ms.Cluster.TaskWaves(tasks)
	us := rows * (ms.PerRecord(remote.ReadDFS, rowSize, true) + ms.PerRecord(remote.Sort, rowSize, true))
	return ms.clamp(ms.BaselineSec + float64(waves)*us/float64(tasks)/1e6)
}

// AggCost composes the aggregation formula: map-side read + scan + partial
// hash aggregation, shuffle of the partials, reduce-side merge, write.
func (ms *ModelSet) AggCost(spec plan.AggSpec) (float64, error) {
	if err := spec.Validate(); err != nil {
		return 0, fmt.Errorf("subop: %w", err)
	}
	mapTasks := ms.Cluster.NumTasks(spec.InputRows * spec.InputRowSize)
	mapWaves := ms.Cluster.TaskWaves(mapTasks)
	aggFactor := 1 + 0.15*float64(spec.NumAggregates)
	inMem := ms.FitsInMemory(spec.OutputRows * spec.OutputRowSize)
	mapUS := spec.InputRows * (ms.PerRecord(remote.ReadDFS, spec.InputRowSize, true) +
		ms.PerRecord(remote.Scan, spec.InputRowSize, true)*aggFactor +
		ms.PerRecord(remote.HashBuild, spec.InputRowSize, inMem)*0.35)

	partials := spec.OutputRows * float64(mapTasks)
	if partials > spec.InputRows {
		partials = spec.InputRows
	}
	redTasks := float64(ms.Cluster.Slots())
	redUS := partials*ms.PerRecord(remote.Shuffle, spec.OutputRowSize, true) +
		partials*ms.PerRecord(remote.HashProbe, spec.OutputRowSize, true)*aggFactor +
		spec.OutputRows*(ms.PerRecord(remote.RecMerge, spec.OutputRowSize, true)+ms.PerRecord(remote.WriteDFS, spec.OutputRowSize, true))

	return ms.clamp(ms.BaselineSec + float64(mapWaves)*mapUS/float64(mapTasks)/1e6 + redUS/redTasks/1e6), nil
}

// ScanCost composes the filter/project scan formula.
func (ms *ModelSet) ScanCost(spec plan.ScanSpec) (float64, error) {
	if err := spec.Validate(); err != nil {
		return 0, fmt.Errorf("subop: %w", err)
	}
	tasks := ms.Cluster.NumTasks(spec.InputRows * spec.InputRowSize)
	waves := ms.Cluster.TaskWaves(tasks)
	us := spec.InputRows*(ms.PerRecord(remote.ReadDFS, spec.InputRowSize, true)+ms.PerRecord(remote.Scan, spec.InputRowSize, true)) +
		spec.OutputRows()*ms.PerRecord(remote.WriteDFS, spec.OutputRowSize, true)
	return ms.clamp(ms.BaselineSec + float64(waves)*us/float64(tasks)/1e6), nil
}
