package hybrid

import (
	"testing"

	"intellisphere/internal/core"
	"intellisphere/internal/core/subop"
	"intellisphere/internal/plan"
	"intellisphere/internal/remote"
)

func batchJoinSpecs() []plan.JoinSpec {
	specs := make([]plan.JoinSpec, 0, 5)
	for _, rows := range []float64{4e6, 1e6, 4e6, 8e6} { // includes a duplicate
		specs = append(specs, plan.JoinSpec{
			Left:       plan.TableSide{Rows: rows, RowSize: 250, ProjectedSize: 20, KeyNDV: rows},
			Right:      plan.TableSide{Rows: rows / 10, RowSize: 250, ProjectedSize: 20, KeyNDV: rows / 10},
			OutputRows: rows / 10,
		})
	}
	return append(specs, specs[0])
}

// A batch through the hybrid router must be element-wise identical to
// sequential scalar estimates and count every spec against the profile.
func TestEstimatorBatchMatchesSequential(t *testing.T) {
	ms := trainSubOp(t)
	jm := trainLogicalJoin(t)
	specs := batchJoinSpecs()
	for _, active := range []core.Approach{core.SubOp, core.LogicalOp} {
		// Two estimators over the same models: one serves the batch, the
		// other the sequential reference (profiles are mutated by routing, so
		// each needs its own).
		mk := func() *Estimator {
			e, err := NewEstimator(&Profile{
				SystemName: "c", Engine: remote.EngineHive, Active: active,
				Policy: subop.InHouseComparable, SubOpModels: ms, LogicalJoin: jm,
			})
			if err != nil {
				t.Fatal(err)
			}
			return e
		}
		batcher, seq := mk(), mk()
		got, err := batcher.EstimateJoinBatch(specs)
		if err != nil {
			t.Fatalf("active=%v: EstimateJoinBatch: %v", active, err)
		}
		for i, spec := range specs {
			want, err := seq.EstimateJoin(spec)
			if err != nil {
				t.Fatalf("active=%v: EstimateJoin[%d]: %v", active, i, err)
			}
			if got[i] != want {
				t.Errorf("active=%v: batch[%d] = %+v, scalar = %+v", active, i, got[i], want)
			}
		}
		if batcher.Queries() != seq.Queries() {
			t.Errorf("active=%v: batch counted %d queries, sequential %d", active, batcher.Queries(), seq.Queries())
		}
	}
}

// With a pending query-count switchover, the batch path must fall back to
// per-spec routing so the switch lands at exactly the same estimate index as
// sequential scalar calls.
func TestEstimatorBatchSwitchAfter(t *testing.T) {
	ms := trainSubOp(t)
	jm := trainLogicalJoin(t)
	e, err := NewEstimator(&Profile{
		SystemName: "c", Engine: remote.EngineHive, Active: core.SubOp,
		SwitchAfter: 3, Policy: subop.InHouseComparable,
		SubOpModels: ms, LogicalJoin: jm,
	})
	if err != nil {
		t.Fatal(err)
	}
	specs := batchJoinSpecs()
	got, err := e.EstimateJoinBatch(specs)
	if err != nil {
		t.Fatalf("EstimateJoinBatch: %v", err)
	}
	for i, est := range got {
		want := core.SubOp
		if i >= 3 {
			want = core.LogicalOp
		}
		if est.Approach != want {
			t.Errorf("estimate %d used %v, want %v", i, est.Approach, want)
		}
	}
	if e.Active() != core.LogicalOp {
		t.Error("profile did not switch during the batch")
	}
	if e.Queries() != len(specs) {
		t.Errorf("queries = %d, want %d", e.Queries(), len(specs))
	}
}
