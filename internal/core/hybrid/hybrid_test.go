package hybrid

import (
	"encoding/json"
	"testing"

	"intellisphere/internal/cluster"
	"intellisphere/internal/core"
	"intellisphere/internal/core/logicalop"
	"intellisphere/internal/core/subop"
	"intellisphere/internal/plan"
	"intellisphere/internal/remote"
)

func trainSubOp(t *testing.T) *subop.ModelSet {
	t.Helper()
	h, err := remote.NewHive("hive", cluster.DefaultHive(), remote.Options{NoiseAmp: 0.01, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	ms, _, err := subop.Train(h, subop.TrainConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return ms
}

func trainLogicalJoin(t *testing.T) *logicalop.Model {
	t.Helper()
	var x [][]float64
	var y []float64
	for rows := 1.0; rows <= 8; rows++ {
		for _, size := range []float64{40, 250, 1000} {
			spec := plan.JoinSpec{
				Left:       plan.TableSide{Rows: rows * 1e6, RowSize: size, ProjectedSize: 20},
				Right:      plan.TableSide{Rows: rows * 1e5, RowSize: size, ProjectedSize: 20},
				OutputRows: rows * 1e5,
			}
			x = append(x, spec.Dims())
			y = append(y, 3+rows*(0.002*size+1))
		}
	}
	cfg := logicalop.DefaultConfig(7, 4)
	cfg.NN.Train.Iterations = 300
	m, _, err := logicalop.Train("join", plan.JoinDimNames(), x, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func joinSpec() plan.JoinSpec {
	return plan.JoinSpec{
		Left:       plan.TableSide{Rows: 4e6, RowSize: 250, ProjectedSize: 20, KeyNDV: 4e6},
		Right:      plan.TableSide{Rows: 4e5, RowSize: 250, ProjectedSize: 20, KeyNDV: 4e5},
		OutputRows: 4e5,
	}
}

func TestProfileValidate(t *testing.T) {
	ms := trainSubOp(t)
	good := &Profile{SystemName: "hive", Active: core.SubOp, SubOpModels: ms}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid profile rejected: %v", err)
	}
	cases := []*Profile{
		{Active: core.SubOp, SubOpModels: ms},                                 // no name
		{SystemName: "x", Active: core.SubOp},                                 // no models
		{SystemName: "x", Active: core.LogicalOp},                             // no models
		{SystemName: "x", Active: core.Approach("?")},                         // bad approach
		{SystemName: "x", Active: core.SubOp, SubOpModels: &subop.ModelSet{}}, // invalid models
	}
	for i, p := range cases {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid profile accepted", i)
		}
	}
}

func TestEstimatorRoutesSubOp(t *testing.T) {
	ms := trainSubOp(t)
	p := &Profile{SystemName: "hive", Engine: remote.EngineHive, Active: core.SubOp,
		Policy: subop.InHouseComparable, SubOpModels: ms}
	e, err := NewEstimator(p)
	if err != nil {
		t.Fatalf("NewEstimator: %v", err)
	}
	if e.Approach() != core.Hybrid || e.Active() != core.SubOp {
		t.Errorf("approach=%v active=%v", e.Approach(), e.Active())
	}
	est, err := e.EstimateJoin(joinSpec())
	if err != nil {
		t.Fatalf("EstimateJoin: %v", err)
	}
	if est.Approach != core.SubOp || est.Seconds <= 0 {
		t.Errorf("estimate = %+v", est)
	}
	if e.Queries() != 1 {
		t.Errorf("queries = %d", e.Queries())
	}
}

func TestEstimatorSwitchAfter(t *testing.T) {
	ms := trainSubOp(t)
	jm := trainLogicalJoin(t)
	p := &Profile{
		SystemName: "c", Engine: remote.EngineHive, Active: core.SubOp,
		SwitchAfter: 3, Policy: subop.InHouseComparable,
		SubOpModels: ms, LogicalJoin: jm,
	}
	e, err := NewEstimator(p)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		est, err := e.EstimateJoin(joinSpec())
		if err != nil {
			t.Fatal(err)
		}
		if est.Approach != core.SubOp {
			t.Fatalf("query %d used %v before switchover", i, est.Approach)
		}
	}
	est, err := e.EstimateJoin(joinSpec())
	if err != nil {
		t.Fatal(err)
	}
	if est.Approach != core.LogicalOp {
		t.Errorf("post-switch approach = %v, want logical-op", est.Approach)
	}
	if e.Active() != core.LogicalOp {
		t.Error("profile not updated after switchover")
	}
}

func TestEstimatorInstallLogicalModels(t *testing.T) {
	ms := trainSubOp(t)
	p := &Profile{SystemName: "c", Engine: remote.EngineHive, Active: core.SubOp,
		SwitchAfter: 1, SubOpModels: ms}
	e, err := NewEstimator(p)
	if err != nil {
		t.Fatal(err)
	}
	// Before logical models exist, the switchover cannot happen.
	for i := 0; i < 3; i++ {
		est, err := e.EstimateJoin(joinSpec())
		if err != nil {
			t.Fatal(err)
		}
		if est.Approach != core.SubOp {
			t.Fatal("switched to nonexistent logical models")
		}
	}
	e.InstallLogicalModels(trainLogicalJoin(t), nil, nil)
	est, err := e.EstimateJoin(joinSpec())
	if err != nil {
		t.Fatal(err)
	}
	if est.Approach != core.LogicalOp {
		t.Errorf("approach after install = %v", est.Approach)
	}
}

func TestEstimatorPerOperatorOverride(t *testing.T) {
	ms := trainSubOp(t)
	jm := trainLogicalJoin(t)
	p := &Profile{
		SystemName: "c", Engine: remote.EngineHive, Active: core.SubOp,
		PerOperator: map[string]core.Approach{"join": core.LogicalOp},
		SubOpModels: ms, LogicalJoin: jm,
	}
	e, err := NewEstimator(p)
	if err != nil {
		t.Fatal(err)
	}
	est, err := e.EstimateJoin(joinSpec())
	if err != nil {
		t.Fatal(err)
	}
	if est.Approach != core.LogicalOp {
		t.Errorf("join approach = %v, want per-operator logical-op", est.Approach)
	}
	// Aggregations still go to the active sub-op approach.
	agg, err := e.EstimateAgg(plan.AggSpec{InputRows: 1e6, InputRowSize: 100, OutputRows: 1e4, OutputRowSize: 12})
	if err != nil {
		t.Fatal(err)
	}
	if agg.Approach != core.SubOp {
		t.Errorf("agg approach = %v, want sub-op", agg.Approach)
	}
	scan, err := e.EstimateScan(plan.ScanSpec{InputRows: 1e6, InputRowSize: 100, Selectivity: 0.5, OutputRowSize: 40})
	if err != nil {
		t.Fatal(err)
	}
	if scan.Approach != core.SubOp {
		t.Errorf("scan approach = %v", scan.Approach)
	}
}

func TestEstimatorSwitchErrors(t *testing.T) {
	ms := trainSubOp(t)
	p := &Profile{SystemName: "c", Engine: remote.EngineHive, Active: core.SubOp, SubOpModels: ms}
	e, err := NewEstimator(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Switch(core.LogicalOp); err == nil {
		t.Error("switch to missing logical models accepted")
	}
	if err := e.Switch(core.Approach("?")); err == nil {
		t.Error("switch to bogus approach accepted")
	}
	if err := e.Switch(core.SubOp); err != nil {
		t.Errorf("switch to present sub-op failed: %v", err)
	}
}

func TestEstimatorFeedbackRouting(t *testing.T) {
	ms := trainSubOp(t)
	jm := trainLogicalJoin(t)
	p := &Profile{SystemName: "c", Engine: remote.EngineHive, Active: core.LogicalOp,
		SubOpModels: ms, LogicalJoin: jm}
	e, err := NewEstimator(p)
	if err != nil {
		t.Fatal(err)
	}
	e.ObserveJoin(joinSpec(), 12)
	if jm.PendingLog() != 1 {
		t.Errorf("pending log = %d after ObserveJoin", jm.PendingLog())
	}
	// No logical models for agg/scan: must not panic.
	e.ObserveAgg(plan.AggSpec{InputRows: 1, InputRowSize: 1, OutputRows: 1, OutputRowSize: 1}, 1)
	e.ObserveScan(plan.ScanSpec{InputRows: 1, InputRowSize: 1, Selectivity: 1, OutputRowSize: 1}, 1)
}

func TestProfileJSONRoundTrip(t *testing.T) {
	ms := trainSubOp(t)
	jm := trainLogicalJoin(t)
	p := &Profile{
		SystemName: "hive-prod", Engine: remote.EngineHive, Active: core.SubOp,
		SwitchAfter: 100, Policy: subop.WorstCase,
		PerOperator: map[string]core.Approach{"scan": core.SubOp},
		SubOpModels: ms, LogicalJoin: jm,
	}
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	var back Profile
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if back.SystemName != "hive-prod" || back.SwitchAfter != 100 || back.Policy != subop.WorstCase {
		t.Errorf("restored profile = %+v", back)
	}
	// Restored profile must produce identical estimates.
	e1, err := NewEstimator(p)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := NewEstimator(&back)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := e1.EstimateJoin(joinSpec())
	b, err := e2.EstimateJoin(joinSpec())
	if err != nil {
		t.Fatal(err)
	}
	if a.Seconds != b.Seconds {
		t.Errorf("restored profile predicts %v, original %v", b.Seconds, a.Seconds)
	}
}

func TestProfileUnmarshalInvalid(t *testing.T) {
	var p Profile
	if err := json.Unmarshal([]byte(`{"system_name":"x","active":"sub-op"}`), &p); err == nil {
		t.Error("invalid profile deserialized without error")
	}
	if err := json.Unmarshal([]byte(`{`), &p); err == nil {
		t.Error("bad JSON accepted")
	}
}

func TestRouteErrorsWithoutModels(t *testing.T) {
	ms := trainSubOp(t)
	p := &Profile{SystemName: "c", Engine: remote.EngineHive, Active: core.SubOp,
		PerOperator: map[string]core.Approach{"join": core.LogicalOp},
		SubOpModels: ms}
	e, err := NewEstimator(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.EstimateJoin(joinSpec()); err == nil {
		t.Error("route to missing logical models accepted")
	}
}
