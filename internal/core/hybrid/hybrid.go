// Package hybrid implements the paper's hybrid costing (Section 5): every
// remote system registers a costing profile (CP) that stores whichever
// models exist for it — a sub-operator model set, logical-operator neural
// models, or both — and declares which approach is active, including the
// staged configuration of Figure 9 where a system is costed with an
// approximate sub-op model until its prolonged logical-op training
// completes ("sub-op costing [0…t1], logical-op costing [t1…]").
//
// As the paper's planned extension, a profile may also pin approaches per
// operator kind (e.g. aggregations via logical-op, joins via sub-op).
package hybrid

import (
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"

	"intellisphere/internal/core"
	"intellisphere/internal/core/logicalop"
	"intellisphere/internal/core/subop"
	"intellisphere/internal/plan"
	"intellisphere/internal/remote"
)

// Profile is a remote system's costing profile. It is the unit of
// persistence: serializing it captures everything needed to cost operators
// on that system (Figure 9's "CP").
type Profile struct {
	SystemName string            `json:"system_name"`
	Engine     remote.EngineKind `json:"engine"`
	// Active selects the approach used now (core.SubOp or core.LogicalOp).
	Active core.Approach `json:"active"`
	// SwitchAfter, when > 0, switches a sub-op-active profile to logical-op
	// after that many estimates — provided the logical models exist by then.
	SwitchAfter int `json:"switch_after,omitempty"`
	// PerOperator overrides the active approach for specific operator kinds
	// ("join", "aggregation", "scan").
	PerOperator map[string]core.Approach `json:"per_operator,omitempty"`
	// Policy resolves physical-algorithm ambiguity in the sub-op approach.
	Policy subop.ChoicePolicy `json:"policy"`

	SubOpModels *subop.ModelSet  `json:"subop_models,omitempty"`
	LogicalJoin *logicalop.Model `json:"logical_join,omitempty"`
	LogicalAgg  *logicalop.Model `json:"logical_agg,omitempty"`
	LogicalScan *logicalop.Model `json:"logical_scan,omitempty"`
}

// Validate checks the profile names a system and that the active approach
// is backed by at least one model.
func (p *Profile) Validate() error {
	if p.SystemName == "" {
		return fmt.Errorf("hybrid: profile needs a system name")
	}
	switch p.Active {
	case core.SubOp:
		if p.SubOpModels == nil {
			return fmt.Errorf("hybrid: profile %q activates sub-op costing without sub-op models", p.SystemName)
		}
		return p.SubOpModels.Validate()
	case core.LogicalOp:
		if p.LogicalJoin == nil && p.LogicalAgg == nil && p.LogicalScan == nil {
			return fmt.Errorf("hybrid: profile %q activates logical-op costing without any logical model", p.SystemName)
		}
		return nil
	default:
		return fmt.Errorf("hybrid: profile %q has unknown active approach %q", p.SystemName, p.Active)
	}
}

// MarshalJSON serializes the profile.
func (p *Profile) MarshalJSON() ([]byte, error) {
	type alias Profile // avoid recursion
	return json.Marshal((*alias)(p))
}

// UnmarshalJSON restores a profile and validates it.
func (p *Profile) UnmarshalJSON(data []byte) error {
	type alias Profile
	if err := json.Unmarshal(data, (*alias)(p)); err != nil {
		return fmt.Errorf("hybrid: decode profile: %w", err)
	}
	return p.Validate()
}

// Estimator routes operator costing through a profile, switching approaches
// per the profile's staging rules. It implements core.Estimator and
// core.Feedback.
type Estimator struct {
	mu      sync.Mutex
	profile *Profile
	sub     *subop.Estimator
	logical *logicalop.Estimator
	queries int
	gen     atomic.Uint64
}

var (
	_ core.Estimator      = (*Estimator)(nil)
	_ core.BatchEstimator = (*Estimator)(nil)
	_ core.Feedback       = (*Estimator)(nil)
	_ core.Versioned      = (*Estimator)(nil)
)

// NewEstimator validates the profile and builds the routing estimator.
func NewEstimator(p *Profile) (*Estimator, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	e := &Estimator{profile: p}
	if p.SubOpModels != nil {
		sub, err := subop.NewEstimator(p.SubOpModels, p.Engine, p.Policy)
		if err != nil {
			return nil, err
		}
		e.sub = sub
	}
	if p.LogicalJoin != nil || p.LogicalAgg != nil || p.LogicalScan != nil {
		e.logical = &logicalop.Estimator{Join: p.LogicalJoin, Agg: p.LogicalAgg, Scan: p.LogicalScan}
	}
	return e, nil
}

// Approach implements core.Estimator.
func (e *Estimator) Approach() core.Approach { return core.Hybrid }

// Active returns the approach currently answering estimates.
func (e *Estimator) Active() core.Approach {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.profile.Active
}

// Queries returns how many estimates the profile has served.
func (e *Estimator) Queries() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.queries
}

// InstallLogicalModels hot-swaps freshly trained logical-op models into the
// profile (Figure 9's t1 moment: the prolonged logical-op training for a
// blackbox system finished while the approximate sub-op models served
// queries). Passing a nil model leaves the existing one in place.
func (e *Estimator) InstallLogicalModels(join, agg, scan *logicalop.Model) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if join != nil {
		e.profile.LogicalJoin = join
	}
	if agg != nil {
		e.profile.LogicalAgg = agg
	}
	if scan != nil {
		e.profile.LogicalScan = scan
	}
	e.logical = &logicalop.Estimator{
		Join: e.profile.LogicalJoin,
		Agg:  e.profile.LogicalAgg,
		Scan: e.profile.LogicalScan,
	}
	e.gen.Add(1)
}

// Generation implements core.Versioned: it advances whenever the estimator's
// predictions may have changed (model installs, approach switches, offline
// tuning signalled through BumpGeneration).
func (e *Estimator) Generation() uint64 { return e.gen.Load() }

// BumpGeneration advances the generation counter. The engine calls it after
// mutating the profile's models in place (offline tuning), which the
// estimator cannot observe itself.
func (e *Estimator) BumpGeneration() { e.gen.Add(1) }

// Switch forces the active approach (updating the profile so the change
// persists with it).
func (e *Estimator) Switch(a core.Approach) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	switch a {
	case core.SubOp:
		if e.sub == nil {
			return fmt.Errorf("hybrid: %q has no sub-op models to switch to", e.profile.SystemName)
		}
	case core.LogicalOp:
		if e.logical == nil {
			return fmt.Errorf("hybrid: %q has no logical-op models to switch to", e.profile.SystemName)
		}
	default:
		return fmt.Errorf("hybrid: cannot switch to approach %q", a)
	}
	e.profile.Active = a
	e.gen.Add(1)
	return nil
}

// route picks the estimator for one operator kind, applying the per-operator
// overrides and the query-count switchover. Caller must NOT hold e.mu.
func (e *Estimator) route(kind string) (core.Estimator, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.queries++
	if e.profile.SwitchAfter > 0 && e.profile.Active == core.SubOp &&
		e.queries > e.profile.SwitchAfter && e.logical != nil {
		e.profile.Active = core.LogicalOp
		e.gen.Add(1)
	}
	want := e.profile.Active
	if over, ok := e.profile.PerOperator[kind]; ok {
		want = over
	}
	switch want {
	case core.SubOp:
		if e.sub == nil {
			return nil, fmt.Errorf("hybrid: %q routes %s to sub-op but has no models", e.profile.SystemName, kind)
		}
		return e.sub, nil
	case core.LogicalOp:
		if e.logical == nil {
			return nil, fmt.Errorf("hybrid: %q routes %s to logical-op but has no models", e.profile.SystemName, kind)
		}
		return e.logical, nil
	default:
		return nil, fmt.Errorf("hybrid: %q has unknown approach %q for %s", e.profile.SystemName, want, kind)
	}
}

// routeMany routes a batch of k same-kind operators through one approach,
// counting all k estimates at once. When the profile has a pending
// query-count switchover (SwitchAfter > 0) the switch could land in the
// middle of the batch, so routing declines (ok=false) and the caller falls
// back to per-spec scalar estimation — keeping the switchover timing
// identical to k sequential route calls. Caller must NOT hold e.mu.
func (e *Estimator) routeMany(kind string, k int) (est core.Estimator, ok bool, err error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.profile.SwitchAfter > 0 {
		return nil, false, nil
	}
	e.queries += k
	want := e.profile.Active
	if over, o := e.profile.PerOperator[kind]; o {
		want = over
	}
	switch want {
	case core.SubOp:
		if e.sub == nil {
			return nil, false, fmt.Errorf("hybrid: %q routes %s to sub-op but has no models", e.profile.SystemName, kind)
		}
		return e.sub, true, nil
	case core.LogicalOp:
		if e.logical == nil {
			return nil, false, fmt.Errorf("hybrid: %q routes %s to logical-op but has no models", e.profile.SystemName, kind)
		}
		return e.logical, true, nil
	default:
		return nil, false, fmt.Errorf("hybrid: %q has unknown approach %q for %s", e.profile.SystemName, want, kind)
	}
}

// EstimateJoinBatch implements core.BatchEstimator: the whole group routes to
// one approach and is predicted in a single batched call when possible,
// element-wise identical to per-spec EstimateJoin.
func (e *Estimator) EstimateJoinBatch(specs []plan.JoinSpec) ([]core.Estimate, error) {
	est, ok, err := e.routeMany("join", len(specs))
	if err != nil {
		return nil, err
	}
	if !ok {
		out := make([]core.Estimate, len(specs))
		for i, spec := range specs {
			if out[i], err = e.EstimateJoin(spec); err != nil {
				return nil, err
			}
		}
		return out, nil
	}
	return core.EstimateJoins(est, specs)
}

// EstimateAggBatch implements core.BatchEstimator.
func (e *Estimator) EstimateAggBatch(specs []plan.AggSpec) ([]core.Estimate, error) {
	est, ok, err := e.routeMany("aggregation", len(specs))
	if err != nil {
		return nil, err
	}
	if !ok {
		out := make([]core.Estimate, len(specs))
		for i, spec := range specs {
			if out[i], err = e.EstimateAgg(spec); err != nil {
				return nil, err
			}
		}
		return out, nil
	}
	return core.EstimateAggs(est, specs)
}

// EstimateScanBatch implements core.BatchEstimator.
func (e *Estimator) EstimateScanBatch(specs []plan.ScanSpec) ([]core.Estimate, error) {
	est, ok, err := e.routeMany("scan", len(specs))
	if err != nil {
		return nil, err
	}
	if !ok {
		out := make([]core.Estimate, len(specs))
		for i, spec := range specs {
			if out[i], err = e.EstimateScan(spec); err != nil {
				return nil, err
			}
		}
		return out, nil
	}
	return core.EstimateScans(est, specs)
}

// EstimateJoin implements core.Estimator.
func (e *Estimator) EstimateJoin(spec plan.JoinSpec) (core.Estimate, error) {
	est, err := e.route("join")
	if err != nil {
		return core.Estimate{}, err
	}
	return est.EstimateJoin(spec)
}

// EstimateAgg implements core.Estimator.
func (e *Estimator) EstimateAgg(spec plan.AggSpec) (core.Estimate, error) {
	est, err := e.route("aggregation")
	if err != nil {
		return core.Estimate{}, err
	}
	return est.EstimateAgg(spec)
}

// EstimateScan implements core.Estimator.
func (e *Estimator) EstimateScan(spec plan.ScanSpec) (core.Estimate, error) {
	est, err := e.route("scan")
	if err != nil {
		return core.Estimate{}, err
	}
	return est.EstimateScan(spec)
}

// ObserveJoin implements core.Feedback (logical models learn online; sub-op
// models do not need it — "model continuous tuning is less critical",
// Figure 8).
func (e *Estimator) ObserveJoin(spec plan.JoinSpec, actualSec float64) {
	if e.logical != nil {
		e.logical.ObserveJoin(spec, actualSec)
	}
}

// ObserveAgg implements core.Feedback.
func (e *Estimator) ObserveAgg(spec plan.AggSpec, actualSec float64) {
	if e.logical != nil {
		e.logical.ObserveAgg(spec, actualSec)
	}
}

// ObserveScan implements core.Feedback.
func (e *Estimator) ObserveScan(spec plan.ScanSpec, actualSec float64) {
	if e.logical != nil {
		e.logical.ObserveScan(spec, actualSec)
	}
}

// Profile returns the live profile (callers must treat it as owned by the
// estimator while the estimator is in use).
func (e *Estimator) Profile() *Profile {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.profile
}
