package logicalop

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"

	"intellisphere/internal/nn"
	"intellisphere/internal/plan"
	"intellisphere/internal/stats"
)

// synth2D builds a smooth 2-dimensional synthetic cost surface on
// x0 ∈ [1,8] (millions of rows) × x1 ∈ [40,1000] (record size):
// cost = 2 + 0.9·x0·(0.004·x1 + 0.6), which is linear in each dimension but
// has an interaction term only the NN captures exactly.
func synthCost(rows, size float64) float64 {
	return 2 + 0.9*rows*(0.004*size+0.6)
}

func synthTraining() (x [][]float64, y []float64) {
	for rows := 1.0; rows <= 8; rows++ {
		for _, size := range []float64{40, 100, 250, 500, 750, 1000} {
			x = append(x, []float64{rows, size})
			y = append(y, synthCost(rows, size))
		}
	}
	return x, y
}

func fastCfg(seed int64) Config {
	cfg := DefaultConfig(2, seed)
	cfg.NN.Train.Iterations = 800
	cfg.NN.Train.BatchSize = 16
	return cfg
}

func trainSynth(t *testing.T) *Model {
	t.Helper()
	x, y := synthTraining()
	m, _, err := Train("join", []string{"rows", "size"}, x, y, fastCfg(5))
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	return m
}

func TestTrainValidation(t *testing.T) {
	if _, _, err := Train("j", []string{"a"}, nil, nil, Config{}); err == nil {
		t.Error("empty training set accepted")
	}
	if _, _, err := Train("j", nil, [][]float64{{1}}, []float64{1}, Config{}); err == nil {
		t.Error("missing dim names accepted")
	}
	if _, _, err := Train("j", []string{"a", "b"}, [][]float64{{1}}, []float64{1}, Config{}); err == nil {
		t.Error("row width mismatch accepted")
	}
	cfg := Config{NN: nn.RegressorConfig{Network: nn.Config{InputDim: 3}}}
	if _, _, err := Train("j", []string{"a"}, [][]float64{{1}}, []float64{1}, cfg); err == nil {
		t.Error("config dim mismatch accepted")
	}
}

func TestTrainAndEstimateInRange(t *testing.T) {
	m := trainSynth(t)
	if m.Kind() != "join" {
		t.Errorf("Kind = %q", m.Kind())
	}
	if m.TrainingSize() != 48 {
		t.Errorf("TrainingSize = %d, want 48", m.TrainingSize())
	}
	// In-range estimate: no remedy, decent accuracy.
	est, err := m.Estimate([]float64{4, 250})
	if err != nil {
		t.Fatalf("Estimate: %v", err)
	}
	if est.OutOfRange {
		t.Error("in-range input flagged out of range")
	}
	want := synthCost(4, 250)
	if math.Abs(est.Seconds-want) > 0.25*want {
		t.Errorf("estimate = %v, want ≈%v", est.Seconds, want)
	}
	if est.Seconds != est.NNSeconds || est.RegSeconds != 0 {
		t.Error("in-range estimate must be pure NN")
	}
}

func TestEstimateDimMismatch(t *testing.T) {
	m := trainSynth(t)
	if _, err := m.Estimate([]float64{1}); err == nil {
		t.Error("wrong arity accepted")
	}
}

func TestEstimateOutOfRangeTriggersRemedy(t *testing.T) {
	m := trainSynth(t)
	// rows = 20 is way beyond the trained [1,8] (step 1, β = 2 → limit 10).
	est, err := m.Estimate([]float64{20, 250})
	if err != nil {
		t.Fatalf("Estimate: %v", err)
	}
	if !est.OutOfRange {
		t.Fatal("out-of-range input not detected")
	}
	if len(est.PivotDims) != 1 || est.PivotDims[0] != 0 {
		t.Errorf("pivot dims = %v, want [0]", est.PivotDims)
	}
	if est.RegSeconds <= 0 {
		t.Error("remedy regression produced no estimate")
	}
	// The combination must sit between (or at) the two components.
	lo := math.Min(est.NNSeconds, est.RegSeconds)
	hi := math.Max(est.NNSeconds, est.RegSeconds)
	if est.Seconds < lo-1e-9 || est.Seconds > hi+1e-9 {
		t.Errorf("combined %v outside [%v, %v]", est.Seconds, lo, hi)
	}
	// The remedy must beat the raw NN for far extrapolation on this linear
	// surface: regression component should be closer to the truth.
	truth := synthCost(20, 250)
	if math.Abs(est.RegSeconds-truth) > math.Abs(est.NNSeconds-truth) {
		t.Logf("note: NN (%v) beat regression (%v) vs truth %v", est.NNSeconds, est.RegSeconds, truth)
	}
	if math.Abs(est.RegSeconds-truth) > 0.35*truth {
		t.Errorf("remedy regression %v too far from truth %v", est.RegSeconds, truth)
	}
}

func TestEstimateTwoPivots(t *testing.T) {
	m := trainSynth(t)
	est, err := m.Estimate([]float64{20, 5000})
	if err != nil {
		t.Fatalf("Estimate: %v", err)
	}
	if !est.OutOfRange || len(est.PivotDims) != 2 {
		t.Errorf("two-pivot detection failed: %+v", est)
	}
}

func TestAlphaLifecycle(t *testing.T) {
	m := trainSynth(t)
	if m.Alpha() != 0.5 {
		t.Errorf("initial α = %v, want 0.5", m.Alpha())
	}
	m.SetAlpha(0.7)
	if m.Alpha() != 0.7 {
		t.Errorf("α = %v after SetAlpha(0.7)", m.Alpha())
	}
	m.SetAlpha(2)
	if m.Alpha() != 0.95 {
		t.Errorf("α = %v, want clamp at 0.95", m.Alpha())
	}
	m.SetAlpha(-1)
	if m.Alpha() != 0.05 {
		t.Errorf("α = %v, want clamp at 0.05", m.Alpha())
	}
}

func TestRefitAlphaClosedForm(t *testing.T) {
	m := trainSynth(t)
	// Construct remedy records where the regression component is exactly
	// right and the NN is 2× off: the fit drives α toward 0 (clamped to
	// 0.05), and with heavy evidence the damped update lands close to it.
	for i := 0; i < 64; i++ {
		actual := 10.0 + float64(i)
		m.Observe([]float64{20, 250}, actual, 2*actual, actual)
	}
	a, n := m.RefitAlpha()
	if n != 64 {
		t.Fatalf("used %d records, want 64", n)
	}
	// confidence = 64/80 = 0.8 → α = 0.5 + (0.05-0.5)·0.8 = 0.14.
	if a >= 0.2 || a <= 0.05 {
		t.Errorf("α = %v, want damped move toward 0.05", a)
	}
	// Repeated refits converge onto the clamp.
	for i := 0; i < 20; i++ {
		a, _ = m.RefitAlpha()
	}
	if a > 0.05+1e-9 {
		t.Errorf("α = %v after repeated refits, want convergence to the 0.05 clamp", a)
	}
	// Now the reverse: NN perfect → α rises.
	m2 := trainSynth(t)
	for i := 0; i < 64; i++ {
		actual := 10.0 + float64(i)
		m2.Observe([]float64{20, 250}, actual, actual, actual/2)
	}
	a2, _ := m2.RefitAlpha()
	if a2 <= 0.8 {
		t.Errorf("α = %v, want damped move toward 0.95", a2)
	}
	// Damping: a small batch moves α only part of the way.
	m3 := trainSynth(t)
	for i := 0; i < 4; i++ {
		actual := 10.0 + float64(i)
		m3.Observe([]float64{20, 250}, actual, 2*actual, actual)
	}
	a3, _ := m3.RefitAlpha()
	if a3 < 0.3 || a3 >= 0.5 {
		t.Errorf("α = %v after 4 records, want a damped step below 0.5", a3)
	}
}

func TestRefitAlphaNoRemedyRecords(t *testing.T) {
	m := trainSynth(t)
	m.Observe([]float64{4, 250}, 5, 0, 0) // in-range record
	a, n := m.RefitAlpha()
	if n != 0 || a != 0.5 {
		t.Errorf("α = %v with %d records, want unchanged 0.5 with 0", a, n)
	}
}

func TestOfflineTuneExpandsAndImproves(t *testing.T) {
	m := trainSynth(t)
	if _, err := m.OfflineTune(nn.TrainConfig{}); err == nil {
		t.Error("tune with empty log accepted")
	}
	// Log continuous out-of-range executions at rows = 9..12.
	for rows := 9.0; rows <= 12; rows++ {
		for _, size := range []float64{100, 500, 1000} {
			m.Observe([]float64{rows, size}, synthCost(rows, size), 1, 1)
		}
	}
	if m.PendingLog() != 12 {
		t.Fatalf("pending log = %d", m.PendingLog())
	}
	res, err := m.OfflineTune(nn.TrainConfig{Iterations: 600, LearningRate: 0.01, BatchSize: 16, Optimizer: nn.Adam, Seed: 5})
	if err != nil {
		t.Fatalf("OfflineTune: %v", err)
	}
	if res.FinalRMSE <= 0 {
		t.Errorf("FinalRMSE = %v", res.FinalRMSE)
	}
	if m.PendingLog() != 0 {
		t.Error("log not cleared after tuning")
	}
	dims := m.Dimensions()
	if dims[0].Max != 12 {
		t.Errorf("rows range not expanded: %+v", dims[0])
	}
	// Previously out-of-range input is now in range and accurate.
	est, err := m.Estimate([]float64{11, 500})
	if err != nil {
		t.Fatalf("Estimate: %v", err)
	}
	if est.OutOfRange {
		t.Error("tuned range still flags 11 as out of range")
	}
	truth := synthCost(11, 500)
	if math.Abs(est.Seconds-truth) > 0.3*truth {
		t.Errorf("post-tune estimate %v vs truth %v", est.Seconds, truth)
	}
}

func TestOfflineTuneDiscontinuousCreatesIsland(t *testing.T) {
	m := trainSynth(t)
	for _, size := range []float64{100, 500, 1000} {
		m.Observe([]float64{80, size}, synthCost(80, size), 1, 1)
	}
	if _, err := m.OfflineTune(nn.TrainConfig{Iterations: 200, Optimizer: nn.Adam, BatchSize: 16, Seed: 1}); err != nil {
		t.Fatalf("OfflineTune: %v", err)
	}
	dims := m.Dimensions()
	if dims[0].Max != 8 {
		t.Errorf("main range expanded across a gap: %+v", dims[0])
	}
	if len(dims[0].Islands) != 1 {
		t.Fatalf("islands = %v, want one at 80", dims[0].Islands)
	}
	// The paper's point: a query between the range and the island (say 40)
	// still triggers the remedy, but one inside the island does not.
	est, _ := m.Estimate([]float64{40, 500})
	if !est.OutOfRange {
		t.Error("gap value should stay out of range")
	}
	est, _ = m.Estimate([]float64{80, 500})
	if est.OutOfRange {
		t.Error("island value should be in range")
	}
}

func TestRemedyImprovesOutOfRangeRMSE(t *testing.T) {
	// The headline Figure 14 behaviour in miniature: for far out-of-range
	// queries the α-combined estimate must beat the raw NN on RMSE%.
	m := trainSynth(t)
	var actual, nnOnly, combined []float64
	for _, rows := range []float64{16, 20, 24} {
		for _, size := range []float64{100, 250, 500, 1000} {
			est, err := m.Estimate([]float64{rows, size})
			if err != nil {
				t.Fatal(err)
			}
			if !est.OutOfRange {
				t.Fatalf("rows=%v should be out of range", rows)
			}
			actual = append(actual, synthCost(rows, size))
			nnOnly = append(nnOnly, est.NNSeconds)
			combined = append(combined, est.Seconds)
		}
	}
	nnErr, err := stats.RMSEPercent(nnOnly, actual)
	if err != nil {
		t.Fatal(err)
	}
	combErr, err := stats.RMSEPercent(combined, actual)
	if err != nil {
		t.Fatal(err)
	}
	if combErr >= nnErr {
		t.Errorf("remedy RMSE%% %.2f did not improve on raw NN %.2f", combErr, nnErr)
	}
}

func TestModelJSONRoundTrip(t *testing.T) {
	m := trainSynth(t)
	m.SetAlpha(0.62)
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	var back Model
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if back.Kind() != "join" || back.Alpha() != 0.62 {
		t.Errorf("restored kind=%q α=%v", back.Kind(), back.Alpha())
	}
	in := []float64{4, 250}
	a, _ := m.Estimate(in)
	b, err := back.Estimate(in)
	if err != nil {
		t.Fatalf("restored Estimate: %v", err)
	}
	if a.Seconds != b.Seconds {
		t.Errorf("restored model predicts %v, original %v", b.Seconds, a.Seconds)
	}
	// Remedy still works after restore (training set serialized too).
	oor, err := back.Estimate([]float64{20, 250})
	if err != nil || !oor.OutOfRange || oor.RegSeconds <= 0 {
		t.Errorf("restored remedy broken: %+v err=%v", oor, err)
	}
}

func TestModelUnmarshalErrors(t *testing.T) {
	var m Model
	if err := json.Unmarshal([]byte(`{`), &m); err == nil {
		t.Error("bad JSON accepted")
	}
	if err := json.Unmarshal([]byte(`{"kind":"j"}`), &m); err == nil {
		t.Error("missing regressor accepted")
	}
}

func TestEstimatorInterface(t *testing.T) {
	// Train tiny models on join-shaped and agg-shaped data.
	rng := rand.New(rand.NewSource(3))
	var jx [][]float64
	var jy []float64
	for i := 0; i < 120; i++ {
		spec := plan.JoinSpec{
			Left:       plan.TableSide{Rows: rng.Float64()*1e6 + 1e4, RowSize: 100 + rng.Float64()*900, ProjectedSize: 20},
			Right:      plan.TableSide{Rows: rng.Float64()*1e5 + 1e3, RowSize: 100 + rng.Float64()*900, ProjectedSize: 20},
			OutputRows: 1000,
		}
		jx = append(jx, spec.Dims())
		jy = append(jy, spec.Left.Rows*1e-5+spec.Right.Rows*1e-5+3)
	}
	cfg := DefaultConfig(7, 2)
	cfg.NN.Train.Iterations = 200
	jm, _, err := Train("join", plan.JoinDimNames(), jx, jy, cfg)
	if err != nil {
		t.Fatalf("join Train: %v", err)
	}
	est := &Estimator{Join: jm}
	if est.Approach() != "logical-op" {
		t.Errorf("Approach = %q", est.Approach())
	}
	spec := plan.JoinSpec{
		Left:       plan.TableSide{Rows: 5e5, RowSize: 500, ProjectedSize: 20},
		Right:      plan.TableSide{Rows: 5e4, RowSize: 500, ProjectedSize: 20},
		OutputRows: 1000,
	}
	ce, err := est.EstimateJoin(spec)
	if err != nil {
		t.Fatalf("EstimateJoin: %v", err)
	}
	if ce.Seconds <= 0 || ce.Approach != "logical-op" {
		t.Errorf("estimate = %+v", ce)
	}
	if _, err := est.EstimateAgg(plan.AggSpec{InputRows: 1, InputRowSize: 1, OutputRows: 1, OutputRowSize: 1}); err == nil {
		t.Error("agg without model accepted")
	}
	if _, err := est.EstimateScan(plan.ScanSpec{InputRows: 1, InputRowSize: 1, Selectivity: 1, OutputRowSize: 1}); err == nil {
		t.Error("scan without model accepted")
	}
	if _, err := est.EstimateJoin(plan.JoinSpec{}); err == nil {
		t.Error("invalid spec accepted")
	}
	// Feedback wiring: observing adds to the log.
	est.ObserveJoin(spec, 12.5)
	if jm.PendingLog() != 1 {
		t.Errorf("pending log = %d after ObserveJoin", jm.PendingLog())
	}
	// Observing on nil models must not panic.
	est.ObserveAgg(plan.AggSpec{InputRows: 1, InputRowSize: 1, OutputRows: 1, OutputRowSize: 1}, 1)
	est.ObserveScan(plan.ScanSpec{InputRows: 1, InputRowSize: 1, Selectivity: 1, OutputRowSize: 1}, 1)
}

func TestScanDims(t *testing.T) {
	s := plan.ScanSpec{InputRows: 100, InputRowSize: 50, Selectivity: 0.5, OutputRowSize: 10}
	d := scanDims(s)
	want := []float64{100, 50, 50, 10}
	for i := range want {
		if d[i] != want[i] {
			t.Errorf("scanDims[%d] = %v, want %v", i, d[i], want[i])
		}
	}
	if len(ScanDimNames()) != len(d) {
		t.Error("ScanDimNames misaligned")
	}
}

func TestRemedyFallbackVolumeScaling(t *testing.T) {
	// Exercise remedyFallback directly: degenerate neighborhoods fail, and
	// valid ones scale the mean cost by pivot volume with clamps.
	if _, err := remedyFallback(nil, nil, nil); err == nil {
		t.Error("empty neighborhood accepted")
	}
	px := [][]float64{{1e6}, {2e6}, {3e6}}
	py := []float64{10, 20, 30}
	got, err := remedyFallback(px, py, []float64{4e6})
	if err != nil {
		t.Fatalf("remedyFallback: %v", err)
	}
	// mean y = 20, mean volume = 2e6, query volume 4e6 → scale 2 → 40.
	if math.Abs(got-40) > 1e-9 {
		t.Errorf("fallback = %v, want 40", got)
	}
	// Upward clamp at 50×.
	got, err = remedyFallback(px, py, []float64{1e12})
	if err != nil {
		t.Fatal(err)
	}
	if got != 20*50 {
		t.Errorf("clamped fallback = %v, want %v", got, 20*50.0)
	}
	// Downward clamp at 0.1×.
	got, err = remedyFallback(px, py, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	if got != 20*0.1 {
		t.Errorf("clamped fallback = %v, want %v", got, 2.0)
	}
	// Degenerate: zero costs.
	if _, err := remedyFallback(px, []float64{0, 0, 0}, []float64{1}); err == nil {
		t.Error("zero-cost neighborhood accepted")
	}
}

func TestSetNeighborKGuards(t *testing.T) {
	m := trainSynth(t)
	m.SetNeighborK(1) // ignored
	m.SetNeighborK(24)
	// Remedy still works with the larger neighborhood.
	est, err := m.Estimate([]float64{20, 250})
	if err != nil || !est.OutOfRange {
		t.Fatalf("est = %+v err = %v", est, err)
	}
}
