package logicalop

import (
	"testing"
	"testing/quick"
)

func TestNewDimensionMeta(t *testing.T) {
	m, err := NewDimensionMeta("row_size", []float64{100, 300, 200, 500, 400, 100})
	if err != nil {
		t.Fatalf("NewDimensionMeta: %v", err)
	}
	if m.Min != 100 || m.Max != 500 {
		t.Errorf("range = [%v, %v], want [100, 500]", m.Min, m.Max)
	}
	if m.StepSize != 100 {
		t.Errorf("step = %v, want 100 (median gap)", m.StepSize)
	}
}

func TestNewDimensionMetaSingleValue(t *testing.T) {
	m, err := NewDimensionMeta("d", []float64{7})
	if err != nil {
		t.Fatalf("NewDimensionMeta: %v", err)
	}
	if m.Min != 7 || m.Max != 7 || m.StepSize != 7 {
		t.Errorf("meta = %+v", m)
	}
	m, _ = NewDimensionMeta("d", []float64{0})
	if m.StepSize != 1 {
		t.Errorf("zero-value step = %v, want 1 fallback", m.StepSize)
	}
}

func TestNewDimensionMetaEmpty(t *testing.T) {
	if _, err := NewDimensionMeta("d", nil); err == nil {
		t.Error("empty values accepted")
	}
}

func TestInRange(t *testing.T) {
	// Figure 2's example: range [100, 1000], step 100, β = 2.
	m := DimensionMeta{Name: "row_size", Min: 100, Max: 1000, StepSize: 100}
	cases := []struct {
		v    float64
		want bool
	}{
		{500, true},
		{100, true},
		{1000, true},
		{1150, true},   // within β·step slack
		{1200, true},   // exactly at the slack edge
		{1201, false},  // beyond it
		{10000, false}, // Figure 2's "way off" example
		{-150, false},
	}
	for _, c := range cases {
		if got := m.InRange(c.v, 2); got != c.want {
			t.Errorf("InRange(%v) = %v, want %v", c.v, got, c.want)
		}
	}
}

func TestInRangeIslands(t *testing.T) {
	m := DimensionMeta{
		Name: "row_size", Min: 100, Max: 1000, StepSize: 100,
		Islands: []Interval{{Min: 8000, Max: 10000}},
	}
	if !m.InRange(9000, 2) {
		t.Error("island interior should be in range")
	}
	if !m.InRange(8100, 2) && !m.InRange(10100, 2) {
		t.Error("island edges with slack should be in range")
	}
	if m.InRange(5000, 2) {
		t.Error("gap between main range and island must stay out of range")
	}
}

func TestAbsorbContinuousExpansion(t *testing.T) {
	m := DimensionMeta{Name: "d", Min: 100, Max: 1000, StepSize: 100}
	// 1100 and 1200 maintain continuity (each within β·step of the edge).
	m.Absorb([]float64{1100, 1200}, 2)
	if m.Max != 1200 {
		t.Errorf("Max = %v, want 1200", m.Max)
	}
	if len(m.Islands) != 0 {
		t.Errorf("unexpected islands %v", m.Islands)
	}
}

func TestAbsorbBreaksContinuity(t *testing.T) {
	// The paper's example: log entries at 8 000 and 10 000 bytes with range
	// [100, 1000] leave the main range intact and record an island instead.
	m := DimensionMeta{Name: "row_size", Min: 100, Max: 1000, StepSize: 100}
	m.Absorb([]float64{8000, 10000}, 2)
	if m.Min != 100 || m.Max != 1000 {
		t.Errorf("main range changed to [%v, %v]", m.Min, m.Max)
	}
	if len(m.Islands) == 0 {
		t.Fatal("expected islands for discontinuous values")
	}
	// 8000 and 10000 are themselves >β·step apart, so two islands.
	if len(m.Islands) != 2 {
		t.Errorf("got %d islands %v, want 2", len(m.Islands), m.Islands)
	}
	// A 6 000-byte query is still out of range → remedy triggers (paper's
	// follow-up example).
	if m.InRange(6000, 2) {
		t.Error("6000 should remain out of range")
	}
}

func TestAbsorbBridgesIsland(t *testing.T) {
	m := DimensionMeta{Name: "d", Min: 100, Max: 1000, StepSize: 100}
	m.Absorb([]float64{1500}, 2) // island at 1500 (gap 500 > 200)
	if len(m.Islands) != 1 {
		t.Fatalf("islands = %v", m.Islands)
	}
	// Filling the gap merges everything into the main range.
	m.Absorb([]float64{1150, 1350}, 2)
	if m.Max != 1500 || len(m.Islands) != 0 {
		t.Errorf("after bridge: max = %v islands = %v", m.Max, m.Islands)
	}
}

func TestAbsorbEmpty(t *testing.T) {
	m := DimensionMeta{Name: "d", Min: 1, Max: 2, StepSize: 1}
	m.Absorb(nil, 2)
	if m.Min != 1 || m.Max != 2 {
		t.Error("Absorb(nil) must be a no-op")
	}
}

// Property: after Absorb, every absorbed value is InRange, and the main
// range never shrinks.
func TestAbsorbCoversProperty(t *testing.T) {
	f := func(raw []float64) bool {
		m := DimensionMeta{Name: "d", Min: 100, Max: 1000, StepSize: 100}
		vals := make([]float64, 0, len(raw))
		for _, v := range raw {
			if v != v || v > 1e9 || v < -1e9 { // NaN / extreme guard
				continue
			}
			vals = append(vals, v)
		}
		m.Absorb(vals, 2)
		if m.Min > 100 || m.Max < 1000 {
			return false
		}
		for _, v := range vals {
			if !m.InRange(v, 2) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: islands never overlap the main range or each other after
// absorption.
func TestIslandsDisjointProperty(t *testing.T) {
	f := func(raw []float64) bool {
		m := DimensionMeta{Name: "d", Min: 0, Max: 10, StepSize: 1}
		vals := make([]float64, 0, len(raw))
		for _, v := range raw {
			if v != v || v > 1e6 || v < -1e6 {
				continue
			}
			vals = append(vals, v)
		}
		m.Absorb(vals, 2)
		ivs := append([]Interval{{Min: m.Min, Max: m.Max}}, m.Islands...)
		for i := range ivs {
			for j := i + 1; j < len(ivs); j++ {
				a, b := ivs[i], ivs[j]
				if a.Min <= b.Max && b.Min <= a.Max {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
