// Package logicalop implements the paper's logical-operator costing
// (Section 3): per-operator neural network models trained on thousands of
// remote queries, per-dimension training metadata ([min,max] plus stepSize,
// plus disjoint "island" segments recorded when continuity breaks), the
// online remedy phase (pivot detection, on-the-fly regression over the
// nearest training points, α-weighted combination with the network), the α
// auto-adjustment, and the offline tuning phase that folds the execution
// log back into the network.
package logicalop

import (
	"fmt"
	"math"
	"sort"
)

// Interval is a closed trained segment on one dimension.
type Interval struct {
	Min float64 `json:"min"`
	Max float64 `json:"max"`
}

// contains reports whether v lies inside the interval widened by slack.
func (iv Interval) contains(v, slack float64) bool {
	return v >= iv.Min-slack && v <= iv.Max+slack
}

// DimensionMeta is the per-dimension training metadata of Section 3: the
// covered [Min, Max] range, the characteristic StepSize between training
// points, and any disjoint Islands of out-of-range values learned later
// whose gap from the main range broke continuity.
type DimensionMeta struct {
	Name     string     `json:"name"`
	Min      float64    `json:"min"`
	Max      float64    `json:"max"`
	StepSize float64    `json:"step_size"`
	Islands  []Interval `json:"islands,omitempty"`
}

// NewDimensionMeta derives metadata from the training values of one
// dimension. StepSize is the largest gap between consecutive distinct
// values — the coarsest granularity at which the dimension was sampled.
// (Cardinality-like dimensions are sampled on near-exponential grids, so
// the gap near the upper edge is what decides whether a new value
// "maintains continuity"; the median gap would flag values barely past the
// trained maximum as way off.)
func NewDimensionMeta(name string, values []float64) (DimensionMeta, error) {
	if len(values) == 0 {
		return DimensionMeta{}, fmt.Errorf("logicalop: dimension %q has no training values", name)
	}
	uniq := append([]float64(nil), values...)
	sort.Float64s(uniq)
	j := 0
	for i := 1; i < len(uniq); i++ {
		if uniq[i] != uniq[j] {
			j++
			uniq[j] = uniq[i]
		}
	}
	uniq = uniq[:j+1]
	m := DimensionMeta{Name: name, Min: uniq[0], Max: uniq[len(uniq)-1]}
	if len(uniq) == 1 {
		m.StepSize = math.Abs(uniq[0])
		if m.StepSize == 0 {
			m.StepSize = 1
		}
		return m, nil
	}
	for i := 1; i < len(uniq); i++ {
		if gap := uniq[i] - uniq[i-1]; gap > m.StepSize {
			m.StepSize = gap
		}
	}
	if m.StepSize <= 0 {
		m.StepSize = 1
	}
	return m, nil
}

// InRange reports whether v is within the trained coverage: inside
// [Min-β·step, Max+β·step] or inside any island widened the same way.
// β > 1 is the paper's out-of-range threshold multiplier.
func (m DimensionMeta) InRange(v, beta float64) bool {
	slack := beta * m.StepSize
	if (Interval{Min: m.Min, Max: m.Max}).contains(v, slack) {
		return true
	}
	for _, iv := range m.Islands {
		if iv.contains(v, slack) {
			return true
		}
	}
	return false
}

// Absorb updates the metadata with newly observed trained values following
// the paper's continuity rule: the main [Min, Max] range only expands when
// the new values connect to it without leaving a gap wider than β·step;
// otherwise the values are recorded as a disjoint island. Islands that a
// later observation bridges are merged back into the main range.
func (m *DimensionMeta) Absorb(values []float64, beta float64) {
	if len(values) == 0 {
		return
	}
	slack := beta * m.StepSize
	vs := append([]float64(nil), values...)
	sort.Float64s(vs)

	intervals := append([]Interval{{Min: m.Min, Max: m.Max}}, m.Islands...)
	for _, v := range vs {
		merged := false
		for i := range intervals {
			if intervals[i].contains(v, slack) {
				if v < intervals[i].Min {
					intervals[i].Min = v
				}
				if v > intervals[i].Max {
					intervals[i].Max = v
				}
				merged = true
				break
			}
		}
		if !merged {
			intervals = append(intervals, Interval{Min: v, Max: v})
		}
	}

	// Coalesce intervals that now touch (within slack).
	sort.Slice(intervals, func(i, j int) bool { return intervals[i].Min < intervals[j].Min })
	out := intervals[:1]
	for _, iv := range intervals[1:] {
		last := &out[len(out)-1]
		if iv.Min <= last.Max+slack {
			if iv.Max > last.Max {
				last.Max = iv.Max
			}
		} else {
			out = append(out, iv)
		}
	}

	// The interval containing the original main range stays the main range;
	// everything else becomes islands.
	mainIdx := 0
	for i, iv := range out {
		if iv.Min <= m.Min && iv.Max >= m.Max {
			mainIdx = i
			break
		}
	}
	m.Min, m.Max = out[mainIdx].Min, out[mainIdx].Max
	m.Islands = nil
	for i, iv := range out {
		if i != mainIdx {
			m.Islands = append(m.Islands, iv)
		}
	}
}

// Span returns the width of the main trained range.
func (m DimensionMeta) Span() float64 { return m.Max - m.Min }
