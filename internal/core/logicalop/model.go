package logicalop

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"intellisphere/internal/nn"
	"intellisphere/internal/regress"
	"intellisphere/internal/stats"
)

// Config tunes one logical-operator model.
type Config struct {
	// Beta is the out-of-range threshold multiplier (Section 3): a value is
	// "way off" when it leaves the trained range by more than Beta·stepSize.
	// Must be > 1; defaults to 2.
	Beta float64
	// NeighborK is the remedy's base neighborhood size: the regression uses
	// NeighborK closest training records per pivot dimension. Defaults to
	// 12.
	NeighborK int
	// InitialAlpha is the starting NN weight in the remedy combination
	// (paper: 0.5).
	InitialAlpha float64
	// NN configures the network and its training run.
	NN nn.RegressorConfig
	// TopologySearch enables the paper's cross-validation topology search
	// before training. When off, NN.Network.Hidden is used as given.
	TopologySearch bool
}

// DefaultConfig returns the paper's settings for an operator with d input
// dimensions: two hidden layers sized (2d, d) unless topology search is
// enabled, tanh activations, Adam, log-space targets.
func DefaultConfig(inputDim int, seed int64) Config {
	return Config{
		Beta:         2,
		NeighborK:    12,
		InitialAlpha: 0.5,
		NN: nn.RegressorConfig{
			Network: nn.Config{
				InputDim:   inputDim,
				Hidden:     []int{2 * inputDim, inputDim},
				Activation: nn.Tanh,
				Seed:       seed,
			},
			Train: nn.TrainConfig{
				Iterations:   1500,
				LearningRate: 0.01,
				BatchSize:    64,
				Optimizer:    nn.Adam,
				Seed:         seed,
				CheckEvery:   100,
			},
			LogOutput: true,
		},
	}
}

func (c *Config) normalize(inputDim int) error {
	if c.Beta <= 1 {
		c.Beta = 2
	}
	if c.NeighborK <= 1 {
		c.NeighborK = 12
	}
	if c.InitialAlpha <= 0 || c.InitialAlpha >= 1 {
		c.InitialAlpha = 0.5
	}
	if c.NN.Network.InputDim == 0 {
		c.NN.Network.InputDim = inputDim
	}
	if c.NN.Network.InputDim != inputDim {
		return fmt.Errorf("logicalop: config input dim %d != operator dim %d", c.NN.Network.InputDim, inputDim)
	}
	if len(c.NN.Network.Hidden) == 0 {
		c.NN.Network.Hidden = []int{2 * inputDim, inputDim}
	}
	if c.NN.Train.Iterations == 0 {
		c.NN.Train.Iterations = 1500
	}
	return nil
}

// Record is one logged execution: the operator's input dimensions, the
// actual elapsed seconds, and — when the online remedy produced the estimate
// — the two component predictions, kept for the α re-fit.
type Record struct {
	X      []float64 `json:"x"`
	Actual float64   `json:"actual"`
	// NNSec/RegSec are the remedy components at estimation time; both zero
	// when the estimate was fully in-range.
	NNSec  float64 `json:"nn_sec,omitempty"`
	RegSec float64 `json:"reg_sec,omitempty"`
}

// Estimate is a logical-op prediction with its remedy provenance.
type Estimate struct {
	Seconds    float64
	OutOfRange bool
	PivotDims  []int   // indexes of dimensions that were way off range
	NNSeconds  float64 // network component (= Seconds when in range)
	RegSeconds float64 // remedy regression component (0 when in range)
}

// Model is one trained logical-operator costing model (one per operator
// kind, e.g. the seven-dimension join model of Figure 2).
type Model struct {
	// mu is reader/writer: the serving path (Estimate, EstimateBatch,
	// PredictBatch and the accessors) shares the read lock — safe because
	// nn.Regressor prediction is concurrency-safe and everything else those
	// paths touch is only written under the exclusive lock, which the
	// mutators (Observe, SeedLog, RefitAlpha, OfflineTune, SetAlpha,
	// SetNeighborK) take. Concurrent estimates on different cores no longer
	// serialize on each other.
	mu       sync.RWMutex
	kind     string
	dimNames []string
	dims     []DimensionMeta
	reg      *nn.Regressor
	alpha    float64
	cfg      Config

	trainX [][]float64
	trainY []float64
	logRec []Record
}

// Train executes the logical-op model-building phase over an already
// collected training dataset (inputs are the operator dimension vectors,
// targets the observed elapsed seconds on the remote system). It derives
// the per-dimension metadata, optionally runs the topology search, and fits
// the network. The convergence history is returned for the Figure 11(b)/
// 12(b) plots.
func Train(kind string, dimNames []string, x [][]float64, y []float64, cfg Config) (*Model, *nn.TrainResult, error) {
	if len(x) == 0 || len(x) != len(y) {
		return nil, nil, fmt.Errorf("logicalop: need a non-empty aligned training set (%d inputs, %d targets)", len(x), len(y))
	}
	d := len(dimNames)
	if d == 0 {
		return nil, nil, errors.New("logicalop: dimension names are required")
	}
	for i, row := range x {
		if len(row) != d {
			return nil, nil, fmt.Errorf("logicalop: training row %d has %d dims, want %d", i, len(row), d)
		}
	}
	if err := cfg.normalize(d); err != nil {
		return nil, nil, err
	}

	dims := make([]DimensionMeta, d)
	col := make([]float64, len(x))
	for j := 0; j < d; j++ {
		for i := range x {
			col[i] = x[i][j]
		}
		m, err := NewDimensionMeta(dimNames[j], col)
		if err != nil {
			return nil, nil, err
		}
		dims[j] = m
	}

	if cfg.TopologySearch {
		best, _, err := nn.SearchTopology(x, y, cfg.NN)
		if err != nil {
			return nil, nil, fmt.Errorf("logicalop: topology search: %w", err)
		}
		cfg.NN.Network = best
	}
	reg, res, err := nn.TrainRegressor(x, y, cfg.NN)
	if err != nil {
		return nil, nil, fmt.Errorf("logicalop: train %s model: %w", kind, err)
	}

	m := &Model{
		kind:     kind,
		dimNames: dimNames,
		dims:     dims,
		reg:      reg,
		alpha:    cfg.InitialAlpha,
		cfg:      cfg,
		trainX:   cloneMatrix(x),
		trainY:   append([]float64(nil), y...),
	}
	return m, res, nil
}

func cloneMatrix(x [][]float64) [][]float64 {
	out := make([][]float64, len(x))
	for i := range x {
		out[i] = append([]float64(nil), x[i]...)
	}
	return out
}

// Kind returns the operator kind the model costs.
func (m *Model) Kind() string { return m.kind }

// Alpha returns the current remedy combination weight.
func (m *Model) Alpha() float64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.alpha
}

// SetAlpha overrides the combination weight (the experiments use it to
// reproduce the fixed-α variant of Figure 14). Values outside (0,1) are
// clamped.
func (m *Model) SetAlpha(a float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.alpha = clampAlpha(a)
}

// SetNeighborK overrides the remedy's base neighborhood size (ablations).
// Values below 2 are ignored.
func (m *Model) SetNeighborK(k int) {
	if k < 2 {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.cfg.NeighborK = k
}

func clampAlpha(a float64) float64 {
	if a < 0.05 {
		return 0.05
	}
	if a > 0.95 {
		return 0.95
	}
	return a
}

// Dimensions returns a copy of the per-dimension metadata.
func (m *Model) Dimensions() []DimensionMeta {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return append([]DimensionMeta(nil), m.dims...)
}

// TrainingSize returns the number of records currently backing the model.
func (m *Model) TrainingSize() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.trainX)
}

// PendingLog returns the number of logged executions awaiting offline
// tuning.
func (m *Model) PendingLog() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.logRec)
}

// Estimate predicts the cost of an operator instance following the Figure 3
// flowchart: if every input dimension is within (or near) the trained
// range, the network answers alone; otherwise the QueryTime-Remedy procedure
// combines the network with an on-the-fly pivot regression.
func (m *Model) Estimate(x []float64) (Estimate, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if len(x) != len(m.dims) {
		return Estimate{}, fmt.Errorf("logicalop: %s estimate with %d dims, want %d", m.kind, len(x), len(m.dims))
	}
	pivots := m.pivotDims(x)
	nnSec := m.reg.Predict(x)
	if nnSec < 0 {
		nnSec = 0
	}
	if len(pivots) == 0 {
		return Estimate{Seconds: nnSec, NNSeconds: nnSec}, nil
	}
	regSec, err := m.remedyRegression(x, pivots)
	if err != nil {
		// Remedy could not build a regression (degenerate neighborhood);
		// fall back to the network alone rather than failing the query.
		return Estimate{Seconds: nnSec, OutOfRange: true, PivotDims: pivots, NNSeconds: nnSec}, nil
	}
	if regSec < 0 {
		regSec = 0
	}
	sec := m.alpha*nnSec + (1-m.alpha)*regSec
	return Estimate{
		Seconds:    sec,
		OutOfRange: true,
		PivotDims:  pivots,
		NNSeconds:  nnSec,
		RegSeconds: regSec,
	}, nil
}

// EstimateBatch predicts a group of operator instances under one lock
// acquisition. The result is element-wise identical to calling Estimate per
// input: the network components run through the batch-major kernel (which is
// bit-identical to the scalar forward pass), and the Figure 3 flowchart is
// applied per input exactly as in Estimate. Repeated identical input vectors
// within the batch — plan candidates for the same statement often present the
// exact same dimension vector — are computed once and memoized.
func (m *Model) EstimateBatch(xs [][]float64) ([]Estimate, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	for _, x := range xs {
		if len(x) != len(m.dims) {
			return nil, fmt.Errorf("logicalop: %s estimate with %d dims, want %d", m.kind, len(x), len(m.dims))
		}
	}
	// Memo: map each input to the first occurrence of its exact bit pattern,
	// so duplicates share one prediction (and one remedy regression).
	uniq := make([][]float64, 0, len(xs))
	slot := make([]int, len(xs))
	seen := make(map[string]int, len(xs))
	var keyBuf []byte
	for i, x := range xs {
		keyBuf = vecKey(keyBuf[:0], x)
		if u, ok := seen[string(keyBuf)]; ok {
			slot[i] = u
			continue
		}
		seen[string(keyBuf)] = len(uniq)
		slot[i] = len(uniq)
		uniq = append(uniq, x)
	}
	nnSecs := m.reg.PredictAll(uniq)
	ests := make([]Estimate, len(uniq))
	for u, x := range uniq {
		nnSec := nnSecs[u]
		if nnSec < 0 {
			nnSec = 0
		}
		pivots := m.pivotDims(x)
		if len(pivots) == 0 {
			ests[u] = Estimate{Seconds: nnSec, NNSeconds: nnSec}
			continue
		}
		regSec, err := m.remedyRegression(x, pivots)
		if err != nil {
			ests[u] = Estimate{Seconds: nnSec, OutOfRange: true, PivotDims: pivots, NNSeconds: nnSec}
			continue
		}
		if regSec < 0 {
			regSec = 0
		}
		ests[u] = Estimate{
			Seconds:    m.alpha*nnSec + (1-m.alpha)*regSec,
			OutOfRange: true,
			PivotDims:  pivots,
			NNSeconds:  nnSec,
			RegSeconds: regSec,
		}
	}
	out := make([]Estimate, len(xs))
	for i, u := range slot {
		out[i] = ests[u]
	}
	return out, nil
}

// vecKey appends the exact bit pattern of x to dst, forming a memo key that
// equates vectors iff every element is bit-identical (NaNs and signed zeros
// never appear in operator dimensions, so bit equality is value equality
// here).
func vecKey(dst []byte, x []float64) []byte {
	for _, v := range x {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
	}
	return dst
}

// pivotDims returns the dimensions whose value is way off the trained range
// (beyond β·stepSize outside [min,max] and every island). Caller holds m.mu.
func (m *Model) pivotDims(x []float64) []int {
	var out []int
	for j, v := range x {
		if !m.dims[j].InRange(v, m.cfg.Beta) {
			out = append(out, j)
		}
	}
	return out
}

// remedyRegression implements QueryTime-Remedy(): select the k training
// records closest to the query on the in-range dimensions whose pivot
// values are the nearest predecessors/successors of the query's, then fit
// a linear regression over the pivot dimensions and extrapolate.
// Caller holds m.mu.
func (m *Model) remedyRegression(x []float64, pivots []int) (float64, error) {
	isPivot := make([]bool, len(x))
	for _, p := range pivots {
		isPivot[p] = true
	}

	type cand struct {
		idx       int
		inDist    float64 // normalized distance on in-range dims
		pivotDist float64 // distance on pivot dims (prefers closest edge)
	}
	cands := make([]cand, 0, len(m.trainX))
	for i, row := range m.trainX {
		var din, dpv float64
		for j := range row {
			span := m.dims[j].Span()
			if span <= 0 {
				span = 1
			}
			d := (row[j] - x[j]) / span
			if isPivot[j] {
				dpv += d * d
			} else {
				din += d * d
			}
		}
		cands = append(cands, cand{idx: i, inDist: din, pivotDist: dpv})
	}
	// Rank by in-range closeness first (match the query's context), then by
	// pivot closeness (immediate predecessors/successors).
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].inDist != cands[b].inDist {
			return cands[a].inDist < cands[b].inDist
		}
		if cands[a].pivotDist != cands[b].pivotDist {
			return cands[a].pivotDist < cands[b].pivotDist
		}
		return cands[a].idx < cands[b].idx
	})
	// The regression needs spread along every pivot dimension to produce a
	// stable slope, so the neighborhood scales with the pivot count.
	k := m.cfg.NeighborK * len(pivots)
	if k > len(cands) {
		k = len(cands)
	}
	if k < len(pivots)+2 {
		return 0, errors.New("logicalop: not enough training points for remedy regression")
	}
	sel := cands[:k]

	px := make([][]float64, 0, len(sel))
	py := make([]float64, 0, len(sel))
	weights := make([]float64, 0, len(sel))
	maxY := 0.0
	// Bandwidth for the context weighting: the neighborhood's median
	// in-range distance.
	h := sel[len(sel)/2].inDist
	if h <= 0 {
		h = 1e-6
	}
	for _, c := range sel {
		vec := make([]float64, len(pivots))
		for pi, p := range pivots {
			vec[pi] = m.trainX[c.idx][p]
		}
		px = append(px, vec)
		py = append(py, m.trainY[c.idx])
		weights = append(weights, 1/(1+c.inDist/h))
		if m.trainY[c.idx] > maxY {
			maxY = m.trainY[c.idx]
		}
	}
	q := make([]float64, len(pivots))
	for pi, p := range pivots {
		q[pi] = x[p]
	}
	mod, err := regress.FitWeighted(px, py, weights)
	if err == nil {
		pred := mod.Predict(q)
		// Sanity band: an extrapolation below the neighborhood's scale or
		// implausibly far above it means the local plane was noise-fitted.
		if pred > 0.1*maxY && pred < 100*maxY {
			return pred, nil
		}
	}
	return remedyFallback(px, py, q)
}

// remedyFallback extrapolates when the local regression is degenerate or
// produces an implausible value: the neighborhood's mean cost is scaled
// linearly with the total pivot volume (pivot dimensions are cardinalities,
// and operator cost is near-linear in them).
func remedyFallback(px [][]float64, py []float64, q []float64) (float64, error) {
	if len(px) == 0 {
		return 0, errors.New("logicalop: empty remedy neighborhood")
	}
	meanY := 0.0
	meanVol := 0.0
	for i, row := range px {
		meanY += py[i]
		for _, v := range row {
			meanVol += v
		}
	}
	meanY /= float64(len(px))
	meanVol /= float64(len(px))
	if meanVol <= 0 || meanY <= 0 {
		return 0, errors.New("logicalop: degenerate remedy neighborhood")
	}
	qVol := 0.0
	for _, v := range q {
		qVol += v
	}
	scale := qVol / meanVol
	if scale < 0.1 {
		scale = 0.1
	}
	if scale > 50 {
		scale = 50
	}
	return meanY * scale, nil
}

// Observe logs an executed operator (Figure 3's logging phase). When the
// estimate came from the remedy, pass its components so the α re-fit can
// use them; otherwise pass zeros.
func (m *Model) Observe(x []float64, actualSec, nnSec, regSec float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.logRec = append(m.logRec, Record{
		X:      append([]float64(nil), x...),
		Actual: actualSec,
		NNSec:  nnSec,
		RegSec: regSec,
	})
}

// LogRecords returns a deep copy of the pending execution log. The tuner
// uses it to carry the live model's log into a candidate clone (the model
// JSON wire format deliberately excludes the log, so a serialized clone
// starts empty) and to hold out the most recent records for shadow scoring.
func (m *Model) LogRecords() []Record {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]Record, len(m.logRec))
	for i, r := range m.logRec {
		out[i] = r
		out[i].X = append([]float64(nil), r.X...)
	}
	return out
}

// SeedLog appends records to the pending execution log (deep-copied), so a
// candidate clone can be tuned from another model's logged executions.
func (m *Model) SeedLog(recs []Record) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, r := range recs {
		r.X = append([]float64(nil), r.X...)
		m.logRec = append(m.logRec, r)
	}
}

// RefitAlpha recomputes α from the remedy-produced log records, minimizing
// the squared error of α·c1 + (1-α)·c2 against the observed costs (the
// closed-form least-squares solution, clamped to (0,1)). Returns the new α
// and the number of records used.
func (m *Model) RefitAlpha() (float64, int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var num, den float64
	n := 0
	for _, r := range m.logRec {
		if r.NNSec == 0 && r.RegSec == 0 {
			continue // in-range execution: no remedy components
		}
		d := r.NNSec - r.RegSec
		num += (r.Actual - r.RegSec) * d
		den += d * d
		n++
	}
	if n == 0 || den == 0 {
		return m.alpha, 0
	}
	// Damp the update by the evidence size so one noisy batch cannot
	// whipsaw the combination weight.
	fit := clampAlpha(num / den)
	confidence := float64(n) / float64(n+16)
	m.alpha = clampAlpha(m.alpha + (fit-m.alpha)*confidence)
	return m.alpha, n
}

// OfflineTune folds the execution log into the model (Section 3's offline
// batch tuning): the logged records join the training set, the network
// retrains on everything, and each dimension's metadata absorbs the new
// values under the continuity rule. The log is cleared on success.
func (m *Model) OfflineTune(tc nn.TrainConfig) (*nn.TrainResult, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.logRec) == 0 {
		return nil, errors.New("logicalop: no logged executions to tune on")
	}
	if tc.Iterations <= 0 {
		tc = m.cfg.NN.Train
	}
	newX := make([][]float64, 0, len(m.logRec))
	newY := make([]float64, 0, len(m.logRec))
	for _, r := range m.logRec {
		newX = append(newX, r.X)
		newY = append(newY, r.Actual)
	}
	m.trainX = append(m.trainX, cloneMatrix(newX)...)
	m.trainY = append(m.trainY, newY...)

	if _, err := m.reg.Retrain(m.trainX, m.trainY, tc); err != nil {
		return nil, fmt.Errorf("logicalop: offline tune: %w", err)
	}
	col := make([]float64, len(newX))
	for j := range m.dims {
		for i := range newX {
			col[i] = newX[i][j]
		}
		m.dims[j].Absorb(col, m.cfg.Beta)
	}
	m.logRec = nil
	// Retrain on the combined set; report final RMSE on it.
	pred := m.reg.PredictAll(m.trainX)
	rm, err := stats.RMSE(pred, m.trainY)
	if err != nil {
		rm = math.NaN()
	}
	return &nn.TrainResult{FinalRMSE: rm}, nil
}

// PredictBatch evaluates the plain network over a set of inputs (no remedy);
// the experiment harness uses it for the accuracy scatter plots.
func (m *Model) PredictBatch(x [][]float64) []float64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.reg.PredictAll(x)
}
