package logicalop

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"intellisphere/internal/core"
	"intellisphere/internal/plan"
)

// EstimateBatch must be element-wise identical to per-input Estimate —
// including out-of-range inputs that route through the remedy and exact
// duplicates served from the batch memo.
func TestEstimateBatchMatchesEstimate(t *testing.T) {
	m := trainSynth(t)
	xs := [][]float64{
		{4, 250},   // in range
		{20, 250},  // rows pivot → remedy
		{4, 250},   // duplicate of 0 (memo)
		{20, 5000}, // two pivots
		{2, 100},   // in range
		{20, 250},  // duplicate of 1 (memoized remedy)
		{7.5, 960}, // in range, off-grid
	}
	got, err := m.EstimateBatch(xs)
	if err != nil {
		t.Fatalf("EstimateBatch: %v", err)
	}
	if len(got) != len(xs) {
		t.Fatalf("len = %d, want %d", len(got), len(xs))
	}
	for i, x := range xs {
		want, err := m.Estimate(x)
		if err != nil {
			t.Fatalf("Estimate(%v): %v", x, err)
		}
		if !reflect.DeepEqual(got[i], want) {
			t.Errorf("batch[%d] = %+v, scalar = %+v", i, got[i], want)
		}
	}
	// The memo must share one computation: duplicates are exactly equal.
	if !reflect.DeepEqual(got[0], got[2]) || !reflect.DeepEqual(got[1], got[5]) {
		t.Error("duplicate inputs produced different estimates")
	}
}

func TestEstimateBatchDimMismatch(t *testing.T) {
	m := trainSynth(t)
	if _, err := m.EstimateBatch([][]float64{{4, 250}, {1}}); err == nil {
		t.Error("wrong arity accepted")
	}
}

func TestEstimateBatchEmpty(t *testing.T) {
	m := trainSynth(t)
	out, err := m.EstimateBatch(nil)
	if err != nil || len(out) != 0 {
		t.Errorf("empty batch: out=%v err=%v", out, err)
	}
}

// The Estimator's batch methods must be element-wise identical to the scalar
// methods and share their error behavior.
func TestEstimatorBatchMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var jx [][]float64
	var jy []float64
	for i := 0; i < 120; i++ {
		spec := plan.JoinSpec{
			Left:       plan.TableSide{Rows: rng.Float64()*1e6 + 1e4, RowSize: 100 + rng.Float64()*900, ProjectedSize: 20},
			Right:      plan.TableSide{Rows: rng.Float64()*1e5 + 1e3, RowSize: 100 + rng.Float64()*900, ProjectedSize: 20},
			OutputRows: 1000,
		}
		jx = append(jx, spec.Dims())
		jy = append(jy, spec.Left.Rows*1e-5+spec.Right.Rows*1e-5+3)
	}
	cfg := DefaultConfig(7, 2)
	cfg.NN.Train.Iterations = 200
	jm, _, err := Train("join", plan.JoinDimNames(), jx, jy, cfg)
	if err != nil {
		t.Fatalf("join Train: %v", err)
	}
	est := &Estimator{Join: jm}

	specs := make([]plan.JoinSpec, 0, 6)
	for _, rows := range []float64{5e5, 2e5, 5e5, 9e5} { // includes a duplicate
		specs = append(specs, plan.JoinSpec{
			Left:       plan.TableSide{Rows: rows, RowSize: 500, ProjectedSize: 20},
			Right:      plan.TableSide{Rows: rows / 10, RowSize: 500, ProjectedSize: 20},
			OutputRows: 1000,
		})
	}
	specs = append(specs, specs[0]) // exact duplicate spec

	batch, err := est.EstimateJoinBatch(specs)
	if err != nil {
		t.Fatalf("EstimateJoinBatch: %v", err)
	}
	for i, spec := range specs {
		want, err := est.EstimateJoin(spec)
		if err != nil {
			t.Fatalf("EstimateJoin[%d]: %v", i, err)
		}
		if batch[i] != want {
			t.Errorf("batch[%d] = %+v, scalar = %+v", i, batch[i], want)
		}
	}

	// Error behavior matches the scalar methods.
	if _, err := est.EstimateJoinBatch([]plan.JoinSpec{{}}); err == nil {
		t.Error("invalid spec accepted")
	}
	if _, err := est.EstimateAggBatch([]plan.AggSpec{{InputRows: 1, InputRowSize: 1, OutputRows: 1, OutputRowSize: 1}}); !errors.Is(err, core.ErrUnsupported) {
		t.Errorf("agg without model: err = %v, want ErrUnsupported", err)
	}
	if _, err := est.EstimateScanBatch([]plan.ScanSpec{{InputRows: 1, InputRowSize: 1, Selectivity: 1, OutputRowSize: 1}}); !errors.Is(err, core.ErrUnsupported) {
		t.Errorf("scan without model: err = %v, want ErrUnsupported", err)
	}
	// Empty groups succeed even without models (nothing to estimate), exactly
	// like a zero-iteration scalar loop.
	if out, err := est.EstimateAggBatch(nil); err != nil || len(out) != 0 {
		t.Errorf("empty agg batch: out=%v err=%v", out, err)
	}

	// The core helper routes through the batch path and must agree too.
	viaHelper, err := core.EstimateJoins(est, specs)
	if err != nil {
		t.Fatalf("core.EstimateJoins: %v", err)
	}
	if !reflect.DeepEqual(viaHelper, batch) {
		t.Error("core.EstimateJoins disagrees with EstimateJoinBatch")
	}
}
