package logicalop

import (
	"encoding/json"
	"fmt"

	"intellisphere/internal/core"
	"intellisphere/internal/nn"
	"intellisphere/internal/plan"
)

// Estimator bundles the per-operator logical-op models into the module's
// Estimator interface. Any subset of models may be present; estimating an
// operator without a model returns core.ErrUnsupported.
type Estimator struct {
	Join *Model
	Agg  *Model
	Scan *Model
}

var (
	_ core.Estimator      = (*Estimator)(nil)
	_ core.BatchEstimator = (*Estimator)(nil)
	_ core.Feedback       = (*Estimator)(nil)
)

// Approach implements core.Estimator.
func (e *Estimator) Approach() core.Approach { return core.LogicalOp }

func toCoreEstimate(est Estimate) core.Estimate {
	return core.Estimate{
		Seconds:           est.Seconds,
		Approach:          core.LogicalOp,
		OutOfRange:        est.OutOfRange,
		NNSeconds:         est.NNSeconds,
		RegressionSeconds: est.RegSeconds,
	}
}

// EstimateJoin implements core.Estimator over the seven join dimensions.
func (e *Estimator) EstimateJoin(spec plan.JoinSpec) (core.Estimate, error) {
	if e.Join == nil {
		return core.Estimate{}, core.ErrUnsupported
	}
	if err := spec.Validate(); err != nil {
		return core.Estimate{}, fmt.Errorf("logicalop: %w", err)
	}
	est, err := e.Join.Estimate(spec.Dims())
	if err != nil {
		return core.Estimate{}, err
	}
	return toCoreEstimate(est), nil
}

// EstimateAgg implements core.Estimator over the four aggregation
// dimensions.
func (e *Estimator) EstimateAgg(spec plan.AggSpec) (core.Estimate, error) {
	if e.Agg == nil {
		return core.Estimate{}, core.ErrUnsupported
	}
	if err := spec.Validate(); err != nil {
		return core.Estimate{}, fmt.Errorf("logicalop: %w", err)
	}
	est, err := e.Agg.Estimate(spec.Dims())
	if err != nil {
		return core.Estimate{}, err
	}
	return toCoreEstimate(est), nil
}

// EstimateScan implements core.Estimator.
func (e *Estimator) EstimateScan(spec plan.ScanSpec) (core.Estimate, error) {
	if e.Scan == nil {
		return core.Estimate{}, core.ErrUnsupported
	}
	if err := spec.Validate(); err != nil {
		return core.Estimate{}, fmt.Errorf("logicalop: %w", err)
	}
	est, err := e.Scan.Estimate(scanDims(spec))
	if err != nil {
		return core.Estimate{}, err
	}
	return toCoreEstimate(est), nil
}

// batchToCore maps a model batch result into core estimates.
func batchToCore(ests []Estimate, err error) ([]core.Estimate, error) {
	if err != nil {
		return nil, err
	}
	out := make([]core.Estimate, len(ests))
	for i, est := range ests {
		out[i] = toCoreEstimate(est)
	}
	return out, nil
}

// EstimateJoinBatch implements core.BatchEstimator: one model call predicts
// the whole group, element-wise identical to per-spec EstimateJoin.
func (e *Estimator) EstimateJoinBatch(specs []plan.JoinSpec) ([]core.Estimate, error) {
	if len(specs) == 0 {
		return []core.Estimate{}, nil
	}
	if e.Join == nil {
		return nil, core.ErrUnsupported
	}
	xs := make([][]float64, len(specs))
	for i, spec := range specs {
		if err := spec.Validate(); err != nil {
			return nil, fmt.Errorf("logicalop: %w", err)
		}
		xs[i] = spec.Dims()
	}
	return batchToCore(e.Join.EstimateBatch(xs))
}

// EstimateAggBatch implements core.BatchEstimator.
func (e *Estimator) EstimateAggBatch(specs []plan.AggSpec) ([]core.Estimate, error) {
	if len(specs) == 0 {
		return []core.Estimate{}, nil
	}
	if e.Agg == nil {
		return nil, core.ErrUnsupported
	}
	xs := make([][]float64, len(specs))
	for i, spec := range specs {
		if err := spec.Validate(); err != nil {
			return nil, fmt.Errorf("logicalop: %w", err)
		}
		xs[i] = spec.Dims()
	}
	return batchToCore(e.Agg.EstimateBatch(xs))
}

// EstimateScanBatch implements core.BatchEstimator.
func (e *Estimator) EstimateScanBatch(specs []plan.ScanSpec) ([]core.Estimate, error) {
	if len(specs) == 0 {
		return []core.Estimate{}, nil
	}
	if e.Scan == nil {
		return nil, core.ErrUnsupported
	}
	xs := make([][]float64, len(specs))
	for i, spec := range specs {
		if err := spec.Validate(); err != nil {
			return nil, fmt.Errorf("logicalop: %w", err)
		}
		xs[i] = scanDims(spec)
	}
	return batchToCore(e.Scan.EstimateBatch(xs))
}

// ScanDimNames names the scan model's training dimensions.
func ScanDimNames() []string {
	return []string{"num_input_rows", "input_row_size", "num_output_rows", "output_row_size"}
}

func scanDims(spec plan.ScanSpec) []float64 {
	return []float64{spec.InputRows, spec.InputRowSize, spec.OutputRows(), spec.OutputRowSize}
}

// observe logs an execution against a model, re-estimating to recover the
// remedy components when the input was out of range.
func observe(m *Model, x []float64, actualSec float64) {
	if m == nil {
		return
	}
	est, err := m.Estimate(x)
	if err != nil {
		return
	}
	if est.OutOfRange {
		m.Observe(x, actualSec, est.NNSeconds, est.RegSeconds)
	} else {
		m.Observe(x, actualSec, 0, 0)
	}
}

// ObserveJoin implements core.Feedback.
func (e *Estimator) ObserveJoin(spec plan.JoinSpec, actualSec float64) {
	observe(e.Join, spec.Dims(), actualSec)
}

// ObserveAgg implements core.Feedback.
func (e *Estimator) ObserveAgg(spec plan.AggSpec, actualSec float64) {
	observe(e.Agg, spec.Dims(), actualSec)
}

// ObserveScan implements core.Feedback.
func (e *Estimator) ObserveScan(spec plan.ScanSpec, actualSec float64) {
	observe(e.Scan, scanDims(spec), actualSec)
}

// snapshot is the serializable form of one model.
type snapshot struct {
	Kind     string          `json:"kind"`
	DimNames []string        `json:"dim_names"`
	Dims     []DimensionMeta `json:"dims"`
	Alpha    float64         `json:"alpha"`
	Beta     float64         `json:"beta"`
	Neighbor int             `json:"neighbor_k"`
	Reg      *nn.Regressor   `json:"regressor"`
	TrainX   [][]float64     `json:"train_x"`
	TrainY   []float64       `json:"train_y"`
}

// MarshalJSON serializes the model (network, metadata, α, and the training
// set the remedy needs) for storage inside a costing profile.
func (m *Model) MarshalJSON() ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return json.Marshal(snapshot{
		Kind:     m.kind,
		DimNames: m.dimNames,
		Dims:     m.dims,
		Alpha:    m.alpha,
		Beta:     m.cfg.Beta,
		Neighbor: m.cfg.NeighborK,
		Reg:      m.reg,
		TrainX:   m.trainX,
		TrainY:   m.trainY,
	})
}

// UnmarshalJSON restores a model serialized by MarshalJSON.
func (m *Model) UnmarshalJSON(data []byte) error {
	var s snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return fmt.Errorf("logicalop: decode model: %w", err)
	}
	if s.Reg == nil || s.Reg.Net == nil || s.Reg.Norm == nil {
		return fmt.Errorf("logicalop: snapshot for %q is missing its regressor", s.Kind)
	}
	if len(s.DimNames) != len(s.Dims) {
		return fmt.Errorf("logicalop: snapshot dim mismatch (%d names, %d metas)", len(s.DimNames), len(s.Dims))
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.kind = s.Kind
	m.dimNames = s.DimNames
	m.dims = s.Dims
	m.alpha = clampAlpha(s.Alpha)
	m.reg = s.Reg
	m.trainX = s.TrainX
	m.trainY = s.TrainY
	m.cfg = Config{Beta: s.Beta, NeighborK: s.Neighbor, InitialAlpha: s.Alpha}
	if err := m.cfg.normalize(len(s.DimNames)); err != nil {
		return err
	}
	return nil
}
