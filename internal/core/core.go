// Package core defines the remote-system cost estimation module's shared
// contract — the paper's central abstraction. An Estimator predicts the
// elapsed execution time (seconds) of one SQL operator on one remote system.
// Three implementations exist, one per costing approach:
//
//   - logicalop: blackbox remotes, per-operator neural networks (Section 3)
//   - subop: openbox remotes, composed per-sub-operator linear models
//     (Section 4)
//   - hybrid: per-remote costing profiles that select and switch between
//     the two (Section 5)
package core

import (
	"errors"

	"intellisphere/internal/plan"
)

// Approach names one of the paper's costing approaches.
type Approach string

// The three costing approaches.
const (
	LogicalOp Approach = "logical-op"
	SubOp     Approach = "sub-op"
	Hybrid    Approach = "hybrid"
)

// ErrUntrained is returned when an estimator is asked for a prediction
// before its models exist.
var ErrUntrained = errors.New("core: estimator has not been trained")

// ErrUnsupported is returned when an estimator has no model for the
// requested operator kind.
var ErrUnsupported = errors.New("core: operator kind not supported by this estimator")

// Estimate is one cost prediction with its provenance, so the optimizer and
// the experiment harness can inspect how a number was produced.
type Estimate struct {
	// Seconds is the predicted elapsed execution time on the remote system.
	Seconds float64
	// Approach records which costing approach produced the estimate.
	Approach Approach
	// Algorithm is the physical algorithm assumed (sub-op approach only).
	Algorithm string
	// OutOfRange reports that at least one input dimension fell outside the
	// trained range and the online remedy contributed (logical-op only).
	OutOfRange bool
	// NNSeconds / RegressionSeconds expose the two components the online
	// remedy combined (meaningful only when OutOfRange is true).
	NNSeconds         float64
	RegressionSeconds float64
}

// Estimator predicts remote operator costs. Implementations must be safe
// for concurrent use by the optimizer.
type Estimator interface {
	// Approach identifies the costing approach.
	Approach() Approach
	// EstimateJoin predicts the elapsed time of a join operator.
	EstimateJoin(spec plan.JoinSpec) (Estimate, error)
	// EstimateAgg predicts the elapsed time of an aggregation operator.
	EstimateAgg(spec plan.AggSpec) (Estimate, error)
	// EstimateScan predicts the elapsed time of a filter/project scan.
	EstimateScan(spec plan.ScanSpec) (Estimate, error)
}

// BatchEstimator is the optional batched companion to Estimator: one call
// predicts a whole group of same-kind operators, letting implementations
// amortize locking and run the underlying models through their batch-major
// kernels. Each batch method must return one estimate per spec, element-wise
// identical to calling the scalar method per spec (the batched serving path
// relies on that equivalence). Use the EstimateJoins/EstimateAggs/
// EstimateScans helpers to call it with a scalar fallback.
type BatchEstimator interface {
	// EstimateJoinBatch predicts the elapsed times of a group of joins.
	EstimateJoinBatch(specs []plan.JoinSpec) ([]Estimate, error)
	// EstimateAggBatch predicts the elapsed times of a group of aggregations.
	EstimateAggBatch(specs []plan.AggSpec) ([]Estimate, error)
	// EstimateScanBatch predicts the elapsed times of a group of scans.
	EstimateScanBatch(specs []plan.ScanSpec) ([]Estimate, error)
}

// EstimateJoins predicts a group of joins through e, using the batched path
// when e implements BatchEstimator and a scalar loop otherwise. On error the
// whole group fails with the error of the lowest failing spec (matching what
// the serial loop would have reported first).
func EstimateJoins(e Estimator, specs []plan.JoinSpec) ([]Estimate, error) {
	if be, ok := e.(BatchEstimator); ok {
		return be.EstimateJoinBatch(specs)
	}
	out := make([]Estimate, len(specs))
	for i, spec := range specs {
		est, err := e.EstimateJoin(spec)
		if err != nil {
			return nil, err
		}
		out[i] = est
	}
	return out, nil
}

// EstimateAggs is EstimateJoins for aggregations.
func EstimateAggs(e Estimator, specs []plan.AggSpec) ([]Estimate, error) {
	if be, ok := e.(BatchEstimator); ok {
		return be.EstimateAggBatch(specs)
	}
	out := make([]Estimate, len(specs))
	for i, spec := range specs {
		est, err := e.EstimateAgg(spec)
		if err != nil {
			return nil, err
		}
		out[i] = est
	}
	return out, nil
}

// EstimateScans is EstimateJoins for scans.
func EstimateScans(e Estimator, specs []plan.ScanSpec) ([]Estimate, error) {
	if be, ok := e.(BatchEstimator); ok {
		return be.EstimateScanBatch(specs)
	}
	out := make([]Estimate, len(specs))
	for i, spec := range specs {
		est, err := e.EstimateScan(spec)
		if err != nil {
			return nil, err
		}
		out[i] = est
	}
	return out, nil
}

// Versioned is implemented by estimators whose predictions can change after
// construction (hot-swapped models, approach switches, offline tuning). The
// generation counter only ever increases; any change means previously
// derived state (cached plans) may be stale. Estimators that never change
// simply don't implement it.
type Versioned interface {
	// Generation returns the estimator's mutation counter.
	Generation() uint64
}

// Feedback receives actual execution outcomes. Estimators that learn online
// (logical-op, hybrid) implement it; the engine feeds every remote execution
// back through it (the "Logging Phase" of Figure 3).
type Feedback interface {
	// ObserveJoin logs an executed join and its actual elapsed seconds.
	ObserveJoin(spec plan.JoinSpec, actualSec float64)
	// ObserveAgg logs an executed aggregation.
	ObserveAgg(spec plan.AggSpec, actualSec float64)
	// ObserveScan logs an executed scan.
	ObserveScan(spec plan.ScanSpec, actualSec float64)
}
