// Package core defines the remote-system cost estimation module's shared
// contract — the paper's central abstraction. An Estimator predicts the
// elapsed execution time (seconds) of one SQL operator on one remote system.
// Three implementations exist, one per costing approach:
//
//   - logicalop: blackbox remotes, per-operator neural networks (Section 3)
//   - subop: openbox remotes, composed per-sub-operator linear models
//     (Section 4)
//   - hybrid: per-remote costing profiles that select and switch between
//     the two (Section 5)
package core

import (
	"errors"

	"intellisphere/internal/plan"
)

// Approach names one of the paper's costing approaches.
type Approach string

// The three costing approaches.
const (
	LogicalOp Approach = "logical-op"
	SubOp     Approach = "sub-op"
	Hybrid    Approach = "hybrid"
)

// ErrUntrained is returned when an estimator is asked for a prediction
// before its models exist.
var ErrUntrained = errors.New("core: estimator has not been trained")

// ErrUnsupported is returned when an estimator has no model for the
// requested operator kind.
var ErrUnsupported = errors.New("core: operator kind not supported by this estimator")

// Estimate is one cost prediction with its provenance, so the optimizer and
// the experiment harness can inspect how a number was produced.
type Estimate struct {
	// Seconds is the predicted elapsed execution time on the remote system.
	Seconds float64
	// Approach records which costing approach produced the estimate.
	Approach Approach
	// Algorithm is the physical algorithm assumed (sub-op approach only).
	Algorithm string
	// OutOfRange reports that at least one input dimension fell outside the
	// trained range and the online remedy contributed (logical-op only).
	OutOfRange bool
	// NNSeconds / RegressionSeconds expose the two components the online
	// remedy combined (meaningful only when OutOfRange is true).
	NNSeconds         float64
	RegressionSeconds float64
}

// Estimator predicts remote operator costs. Implementations must be safe
// for concurrent use by the optimizer.
type Estimator interface {
	// Approach identifies the costing approach.
	Approach() Approach
	// EstimateJoin predicts the elapsed time of a join operator.
	EstimateJoin(spec plan.JoinSpec) (Estimate, error)
	// EstimateAgg predicts the elapsed time of an aggregation operator.
	EstimateAgg(spec plan.AggSpec) (Estimate, error)
	// EstimateScan predicts the elapsed time of a filter/project scan.
	EstimateScan(spec plan.ScanSpec) (Estimate, error)
}

// Versioned is implemented by estimators whose predictions can change after
// construction (hot-swapped models, approach switches, offline tuning). The
// generation counter only ever increases; any change means previously
// derived state (cached plans) may be stale. Estimators that never change
// simply don't implement it.
type Versioned interface {
	// Generation returns the estimator's mutation counter.
	Generation() uint64
}

// Feedback receives actual execution outcomes. Estimators that learn online
// (logical-op, hybrid) implement it; the engine feeds every remote execution
// back through it (the "Logging Phase" of Figure 3).
type Feedback interface {
	// ObserveJoin logs an executed join and its actual elapsed seconds.
	ObserveJoin(spec plan.JoinSpec, actualSec float64)
	// ObserveAgg logs an executed aggregation.
	ObserveAgg(spec plan.AggSpec, actualSec float64)
	// ObserveScan logs an executed scan.
	ObserveScan(spec plan.ScanSpec, actualSec float64)
}
