// Package registry provides a read-mostly, copy-on-write map keyed by
// string. The serving hot path (planning and executing queries) reads the
// remote-system and estimator registries on every statement, while writes
// (registering a remote, a table, a materialization) are rare; a
// copy-on-write snapshot behind an atomic pointer makes every read lock-free
// and wait-free while writers serialize on a mutex.
//
// Each mutation bumps a generation counter. Consumers that cache derived
// state (the optimizer's plan cache) record the generation they observed and
// treat any change as an invalidation signal. Bump allows callers to signal
// an in-place mutation of a stored value (e.g. offline tuning of a model the
// registry points to) without replacing the entry.
package registry

import (
	"sort"
	"sync"
	"sync/atomic"
)

// state is one immutable snapshot of the map.
type state[V any] struct {
	m   map[string]V
	gen uint64
}

// Map is a thread-safe, read-mostly string-keyed map. The zero value is not
// usable; call New.
type Map[V any] struct {
	mu   sync.Mutex // serializes writers
	snap atomic.Pointer[state[V]]
}

// New returns an empty registry at generation 0.
func New[V any]() *Map[V] {
	r := &Map[V]{}
	r.snap.Store(&state[V]{m: map[string]V{}})
	return r
}

// Get returns the value for name. The read is lock-free.
func (r *Map[V]) Get(name string) (V, bool) {
	s := r.snap.Load()
	v, ok := s.m[name]
	return v, ok
}

// Set installs a value, replacing any existing entry, and bumps the
// generation.
func (r *Map[V]) Set(name string, v V) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.replace(func(m map[string]V) { m[name] = v })
}

// SetIfAbsent installs a value only when the name is free, reporting whether
// it did. The generation advances only on success.
func (r *Map[V]) SetIfAbsent(name string, v V) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.snap.Load().m[name]; ok {
		return false
	}
	r.replace(func(m map[string]V) { m[name] = v })
	return true
}

// Delete removes an entry, reporting whether it existed.
func (r *Map[V]) Delete(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.snap.Load().m[name]; !ok {
		return false
	}
	r.replace(func(m map[string]V) { delete(m, name) })
	return true
}

// replace installs a mutated copy of the current snapshot. Caller holds mu.
func (r *Map[V]) replace(mutate func(map[string]V)) {
	old := r.snap.Load()
	m := make(map[string]V, len(old.m)+1)
	for k, v := range old.m {
		m[k] = v
	}
	mutate(m)
	r.snap.Store(&state[V]{m: m, gen: old.gen + 1})
}

// Bump advances the generation without changing contents — the invalidation
// signal for in-place mutations of stored values.
func (r *Map[V]) Bump() {
	r.mu.Lock()
	defer r.mu.Unlock()
	old := r.snap.Load()
	r.snap.Store(&state[V]{m: old.m, gen: old.gen + 1})
}

// Generation returns the mutation counter. It only ever increases.
func (r *Map[V]) Generation() uint64 {
	return r.snap.Load().gen
}

// Len returns the number of entries.
func (r *Map[V]) Len() int {
	return len(r.snap.Load().m)
}

// Names returns the keys, sorted.
func (r *Map[V]) Names() []string {
	s := r.snap.Load()
	out := make([]string, 0, len(s.m))
	for k := range s.m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Snapshot returns the current immutable map. Callers must not mutate it.
func (r *Map[V]) Snapshot() map[string]V {
	return r.snap.Load().m
}
