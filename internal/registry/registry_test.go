package registry

import (
	"fmt"
	"sync"
	"testing"
)

func TestBasicOperations(t *testing.T) {
	r := New[int]()
	if r.Generation() != 0 || r.Len() != 0 {
		t.Fatalf("fresh registry: gen=%d len=%d", r.Generation(), r.Len())
	}
	if _, ok := r.Get("a"); ok {
		t.Error("Get on empty registry succeeded")
	}
	r.Set("a", 1)
	if v, ok := r.Get("a"); !ok || v != 1 {
		t.Errorf("Get(a) = %v, %v", v, ok)
	}
	if r.Generation() != 1 {
		t.Errorf("gen after Set = %d", r.Generation())
	}
	if r.SetIfAbsent("a", 2) {
		t.Error("SetIfAbsent replaced an existing entry")
	}
	if v, _ := r.Get("a"); v != 1 {
		t.Error("SetIfAbsent mutated existing value")
	}
	if !r.SetIfAbsent("b", 2) {
		t.Error("SetIfAbsent on a free name failed")
	}
	if got := r.Names(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("Names = %v", got)
	}
	gen := r.Generation()
	r.Bump()
	if r.Generation() != gen+1 {
		t.Error("Bump did not advance the generation")
	}
	if !r.Delete("a") || r.Delete("a") {
		t.Error("Delete semantics wrong")
	}
	if r.Len() != 1 {
		t.Errorf("Len after delete = %d", r.Len())
	}
}

func TestSnapshotIsStable(t *testing.T) {
	r := New[string]()
	r.Set("x", "1")
	snap := r.Snapshot()
	r.Set("y", "2")
	if len(snap) != 1 {
		t.Errorf("old snapshot changed after write: %v", snap)
	}
	if len(r.Snapshot()) != 2 {
		t.Error("new snapshot missing write")
	}
}

func TestConcurrentReadersAndWriters(t *testing.T) {
	r := New[int]()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Set(fmt.Sprintf("k%d-%d", w, i), i)
			}
		}(w)
	}
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Get("k0-50")
				r.Len()
				r.Generation()
				_ = r.Snapshot()
			}
		}()
	}
	wg.Wait()
	if r.Len() != 400 {
		t.Errorf("Len = %d, want 400", r.Len())
	}
	if r.Generation() != 400 {
		t.Errorf("Generation = %d, want 400", r.Generation())
	}
}
