// Package datagen builds the synthetic evaluation dataset of Figure 10:
// 120 tables T_x_y crossing 20 cardinality configurations
// (x = k·10^p for k ∈ {1,2,4,6,8}, p ∈ {4..7}) with 6 record sizes
// (y ∈ {40, 70, 100, 250, 500, 1000} bytes). Every table shares the schema
// (a1, a2, a5, a10, a20, a50, a100, z, dummy) where column a_i has
// duplication factor i (each value appears i times), z is all zeros, and
// dummy is a character column padding the record to the target size.
//
// Tables are registered as statistics only — the remote-system simulators
// execute over statistics — but small tables can also be materialized into
// actual rows for the row-level execution engine used by the examples.
package datagen

import (
	"fmt"

	"intellisphere/internal/catalog"
)

// DupFactors lists the duplication factors of the a_i columns.
func DupFactors() []int { return []int{1, 2, 5, 10, 20, 50, 100} }

// Cardinalities returns the 20 row-count configurations of Figure 10.
func Cardinalities() []int64 {
	ks := []int64{1, 2, 4, 6, 8}
	var out []int64
	for _, p := range []int64{10000, 100000, 1000000, 10000000} {
		for _, k := range ks {
			out = append(out, k*p)
		}
	}
	return out
}

// RecordSizes returns the 6 record-size configurations of Figure 10.
func RecordSizes() []int { return []int{40, 70, 100, 250, 500, 1000} }

// fixedWidth is the width of the eight integer columns (a1..a100, z).
const fixedWidth = 8 * 4

// Schema returns the Figure 10 schema padded to the given record size.
func Schema(recordSize int) (catalog.Schema, error) {
	if recordSize <= fixedWidth {
		return catalog.Schema{}, fmt.Errorf("datagen: record size %d must exceed the %d-byte fixed columns", recordSize, fixedWidth)
	}
	cols := make([]catalog.Column, 0, 9)
	for _, d := range DupFactors() {
		cols = append(cols, catalog.Column{
			Name:        fmt.Sprintf("a%d", d),
			Type:        catalog.Int,
			Width:       4,
			Duplication: float64(d),
		})
	}
	cols = append(cols,
		catalog.Column{Name: "z", Type: catalog.Int, Width: 4, Duplication: 0},
		catalog.Column{Name: "dummy", Type: catalog.Char, Width: recordSize - fixedWidth},
	)
	return catalog.Schema{Columns: cols}, nil
}

// TableName returns the Figure 10 naming convention T<x>_<y>.
func TableName(rows int64, recordSize int) string {
	return fmt.Sprintf("t%d_%d", rows, recordSize)
}

// Table builds a single synthetic table owned by the named system.
func Table(rows int64, recordSize int, system string) (*catalog.Table, error) {
	s, err := Schema(recordSize)
	if err != nil {
		return nil, err
	}
	t := &catalog.Table{
		Name:   TableName(rows, recordSize),
		Schema: s,
		Rows:   rows,
		System: system,
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// Tables builds all 120 tables of Figure 10 owned by the named system.
func Tables(system string) ([]*catalog.Table, error) {
	var out []*catalog.Table
	for _, rows := range Cardinalities() {
		for _, size := range RecordSizes() {
			t, err := Table(rows, size, system)
			if err != nil {
				return nil, err
			}
			out = append(out, t)
		}
	}
	return out, nil
}

// Register builds all 120 tables and registers them in the catalog.
func Register(c *catalog.Catalog, system string) error {
	tables, err := Tables(system)
	if err != nil {
		return err
	}
	for _, t := range tables {
		if err := c.Register(t); err != nil {
			return err
		}
	}
	return nil
}

// Row is one materialized record: the eight integer columns in schema order
// (a1, a2, a5, a10, a20, a50, a100, z). The dummy padding is not
// materialized.
type Row [8]int32

// Materialize generates actual rows honoring the schema's semantics:
// column a_i holds rowIndex/i so each value appears exactly i times, values
// of a smaller table are a subset of any larger table's values (which is
// what lets Figure 10's join workload control output cardinalities), and z
// is always zero. Intended for the small tables the row engine executes;
// callers should keep rows under a few million.
func Materialize(rows int64) ([]Row, error) {
	const materializeLimit = 4_000_000
	if rows <= 0 {
		return nil, fmt.Errorf("datagen: cannot materialize %d rows", rows)
	}
	if rows > materializeLimit {
		return nil, fmt.Errorf("datagen: refusing to materialize %d rows (limit %d); use statistics-only execution", rows, materializeLimit)
	}
	dups := DupFactors()
	out := make([]Row, rows)
	for i := int64(0); i < rows; i++ {
		var r Row
		for c, d := range dups {
			r[c] = int32(i / int64(d))
		}
		r[7] = 0 // z
		out[i] = r
	}
	return out, nil
}

// ColumnIndex maps a Figure 10 column name to its Row index.
func ColumnIndex(name string) (int, error) {
	for i, d := range DupFactors() {
		if name == fmt.Sprintf("a%d", d) {
			return i, nil
		}
	}
	if name == "z" {
		return 7, nil
	}
	return 0, fmt.Errorf("datagen: column %q is not materialized", name)
}
