package datagen

import (
	"testing"
	"testing/quick"

	"intellisphere/internal/catalog"
)

func TestCardinalities(t *testing.T) {
	cs := Cardinalities()
	if len(cs) != 20 {
		t.Fatalf("got %d cardinalities, want 20", len(cs))
	}
	if cs[0] != 10000 {
		t.Errorf("first = %d, want 10000", cs[0])
	}
	if cs[19] != 80000000 {
		t.Errorf("last = %d, want 8e7", cs[19])
	}
	seen := map[int64]bool{}
	for _, c := range cs {
		if seen[c] {
			t.Errorf("duplicate cardinality %d", c)
		}
		seen[c] = true
	}
}

func TestRecordSizes(t *testing.T) {
	want := []int{40, 70, 100, 250, 500, 1000}
	got := RecordSizes()
	if len(got) != len(want) {
		t.Fatalf("got %d sizes", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("size[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestSchemaWidths(t *testing.T) {
	for _, size := range RecordSizes() {
		s, err := Schema(size)
		if err != nil {
			t.Fatalf("Schema(%d): %v", size, err)
		}
		if got := s.RowSize(); got != size {
			t.Errorf("Schema(%d).RowSize = %d", size, got)
		}
		if err := s.Validate(); err != nil {
			t.Errorf("Schema(%d) invalid: %v", size, err)
		}
		for _, d := range DupFactors() {
			c, ok := s.Column(columnName(d))
			if !ok {
				t.Fatalf("Schema(%d) missing a%d", size, d)
			}
			if c.Duplication != float64(d) {
				t.Errorf("a%d duplication = %v", d, c.Duplication)
			}
		}
	}
	if _, err := Schema(32); err == nil {
		t.Error("record size 32 (== fixed width) accepted")
	}
}

func columnName(d int) string {
	switch d {
	case 1:
		return "a1"
	case 2:
		return "a2"
	case 5:
		return "a5"
	case 10:
		return "a10"
	case 20:
		return "a20"
	case 50:
		return "a50"
	case 100:
		return "a100"
	}
	return ""
}

func TestTables120(t *testing.T) {
	tables, err := Tables("hive")
	if err != nil {
		t.Fatalf("Tables: %v", err)
	}
	if len(tables) != 120 {
		t.Fatalf("got %d tables, want 120", len(tables))
	}
	names := map[string]bool{}
	for _, tb := range tables {
		if names[tb.Name] {
			t.Errorf("duplicate table name %s", tb.Name)
		}
		names[tb.Name] = true
		if tb.System != "hive" {
			t.Errorf("table %s system = %q", tb.Name, tb.System)
		}
	}
	if !names["t10000_40"] || !names["t80000000_1000"] {
		t.Error("expected corner tables missing")
	}
}

func TestRegister(t *testing.T) {
	c := catalog.New()
	if err := Register(c, "hive"); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if c.Len() != 120 {
		t.Errorf("catalog has %d tables, want 120", c.Len())
	}
	tb, err := c.Lookup("t1000000_250")
	if err != nil {
		t.Fatalf("Lookup: %v", err)
	}
	ndv, err := tb.NDV("a10")
	if err != nil {
		t.Fatalf("NDV: %v", err)
	}
	if ndv != 100000 {
		t.Errorf("NDV(a10) on 1e6 rows = %v, want 1e5", ndv)
	}
	// Register twice must fail cleanly.
	if err := Register(c, "hive"); err == nil {
		t.Error("double registration accepted")
	}
}

func TestMaterializeSemantics(t *testing.T) {
	rows, err := Materialize(1000)
	if err != nil {
		t.Fatalf("Materialize: %v", err)
	}
	if len(rows) != 1000 {
		t.Fatalf("got %d rows", len(rows))
	}
	// a1 unique, a5 repeats 5 times, z all zero.
	counts := map[int32]int{}
	for _, r := range rows {
		counts[r[2]]++ // a5 is index 2
		if r[7] != 0 {
			t.Fatal("z must be zero")
		}
	}
	for v, n := range counts {
		if n != 5 {
			t.Errorf("a5 value %d appears %d times, want 5", v, n)
		}
	}
	// Subset property: first 100 a1 values of a bigger table cover a smaller.
	small, _ := Materialize(100)
	for i, r := range small {
		if r[0] != rows[i][0] {
			t.Error("smaller table a1 values must be a prefix subset of larger")
			break
		}
	}
}

func TestMaterializeLimits(t *testing.T) {
	if _, err := Materialize(0); err == nil {
		t.Error("zero rows accepted")
	}
	if _, err := Materialize(100_000_000); err == nil {
		t.Error("huge materialization accepted")
	}
}

func TestColumnIndex(t *testing.T) {
	idx, err := ColumnIndex("a20")
	if err != nil || idx != 4 {
		t.Errorf("ColumnIndex(a20) = %d, %v", idx, err)
	}
	idx, err = ColumnIndex("z")
	if err != nil || idx != 7 {
		t.Errorf("ColumnIndex(z) = %d, %v", idx, err)
	}
	if _, err := ColumnIndex("dummy"); err == nil {
		t.Error("dummy should not be materialized")
	}
}

// Property: for every duplication factor d, each value of a_d appears at
// most d times, and NDV(a_d) ≈ rows/d.
func TestMaterializeDuplicationProperty(t *testing.T) {
	f := func(n uint16, dSel uint8) bool {
		rows := int64(n%2000) + 100
		dups := DupFactors()
		d := dups[int(dSel)%len(dups)]
		idx, err := ColumnIndex(columnName(d))
		if err != nil {
			return false
		}
		data, err := Materialize(rows)
		if err != nil {
			return false
		}
		counts := map[int32]int{}
		for _, r := range data {
			counts[r[idx]]++
		}
		for _, c := range counts {
			if c > d {
				return false
			}
		}
		wantNDV := (rows + int64(d) - 1) / int64(d)
		return int64(len(counts)) == wantNDV
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
