package trace

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestSpanTreeAndContext(t *testing.T) {
	tr := New("SELECT 1")
	ctx := ContextWithSpan(context.Background(), tr.Root)

	ctx2, parse := Start(ctx, "parse")
	if parse == nil {
		t.Fatal("Start on traced context returned nil span")
	}
	parse.End()
	if SpanFromContext(ctx2) != parse {
		t.Error("child context does not carry the child span")
	}

	ctx3, plan := Start(ctx, "plan")
	plan.SetAttr("cache", "miss")
	_, cost := Start(ctx3, "cost")
	cost.SetSystem("hive")
	cost.SetInt("join", 1)
	cost.SetFloat("estimated_sec", 1.5)
	cost.End()
	plan.End()
	tr.Finish(nil)

	root := tr.Root
	if len(root.Children) != 2 {
		t.Fatalf("root children = %d, want 2", len(root.Children))
	}
	if got := plan.Attr("cache"); got != "miss" {
		t.Errorf("plan cache attr = %q", got)
	}
	if got := cost.Attr("estimated_sec"); got != "1.5" {
		t.Errorf("cost estimated_sec attr = %q", got)
	}
	if cost.System != "hive" {
		t.Errorf("cost system = %q", cost.System)
	}
	if tr.DurationNanos <= 0 || root.DurationNanos != tr.DurationNanos {
		t.Errorf("trace duration %d, root %d", tr.DurationNanos, root.DurationNanos)
	}
	// Children fit inside their parent: start offset and duration both
	// bounded by the root's window.
	for _, c := range root.Children {
		if c.StartNanos < 0 || c.StartNanos > root.DurationNanos {
			t.Errorf("child %q start %d outside root window %d", c.Name, c.StartNanos, root.DurationNanos)
		}
		if c.DurationNanos < 0 || c.StartNanos+c.DurationNanos > root.DurationNanos {
			t.Errorf("child %q ends after root: %d+%d > %d", c.Name, c.StartNanos, c.DurationNanos, root.DurationNanos)
		}
	}
}

func TestStartUntracedIsNoop(t *testing.T) {
	ctx := context.Background()
	ctx2, sp := Start(ctx, "anything")
	if sp != nil {
		t.Fatal("untraced Start returned a span")
	}
	if ctx2 != ctx {
		t.Error("untraced Start changed the context")
	}
	// Every method tolerates the nil receiver.
	sp.End()
	sp.EndErr(errors.New("x"))
	sp.SetSystem("hive")
	sp.SetAttr("k", "v")
	sp.SetInt("n", 3)
	sp.SetFloat("f", 1.5)
	if sp.Attr("k") != "" {
		t.Error("nil span returned an attr")
	}
}

// TestUntracedZeroAlloc pins the disabled-path cost: instrumentation on an
// untraced context must not allocate (the serving hot path relies on it).
func TestUntracedZeroAlloc(t *testing.T) {
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		ctx2, sp := Start(ctx, "step")
		sp.SetSystem("hive")
		sp.SetAttr("operator", "scan")
		sp.SetInt("retries", 2)
		sp.EndErr(nil)
		_ = ctx2
	})
	if allocs != 0 {
		t.Errorf("untraced instrumentation allocates %.1f per op, want 0", allocs)
	}
}

func TestConcurrentChildren(t *testing.T) {
	tr := New("q")
	ctx := ContextWithSpan(context.Background(), tr.Root)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, sp := Start(ctx, "cost")
			sp.SetInt("worker", i)
			sp.End()
		}(i)
	}
	wg.Wait()
	tr.Finish(nil)
	if len(tr.Root.Children) != 16 {
		t.Errorf("children = %d, want 16", len(tr.Root.Children))
	}
}

func TestRing(t *testing.T) {
	r := NewRing(4)
	if got := r.Recent(10); len(got) != 0 {
		t.Errorf("empty ring Recent = %d traces", len(got))
	}
	for i := 0; i < 6; i++ {
		tr := New(fmt.Sprintf("q%d", i))
		tr.Finish(nil)
		r.Record(tr)
	}
	if r.Count() != 6 {
		t.Errorf("Count = %d", r.Count())
	}
	recent := r.Recent(0)
	if len(recent) != 4 {
		t.Fatalf("Recent = %d traces, want 4 (capacity)", len(recent))
	}
	if recent[0].SQL != "q5" || recent[0].ID != 6 {
		t.Errorf("newest = %q id %d", recent[0].SQL, recent[0].ID)
	}
	if recent[3].SQL != "q2" {
		t.Errorf("oldest kept = %q, want q2", recent[3].SQL)
	}
	if got := r.Recent(2); len(got) != 2 || got[1].SQL != "q4" {
		t.Errorf("Recent(2) = %v", got)
	}
	// nil ring is inert (tracing disabled).
	var nilRing *Ring
	nilRing.Record(New("x"))
	if nilRing.Count() != 0 || nilRing.Recent(1) != nil {
		t.Error("nil ring not inert")
	}
}

func TestRenderAndJSON(t *testing.T) {
	tr := New("SELECT a1 FROM t")
	ctx := ContextWithSpan(context.Background(), tr.Root)
	_, parse := Start(ctx, "parse")
	parse.End()
	ctx2, exec := Start(ctx, "execute")
	_, step := Start(ctx2, "scan")
	step.SetSystem("hive")
	step.EndErr(errors.New("boom"))
	exec.End()
	tr.Finish(errors.New("boom"))
	NewRing(1).Record(tr)

	out := tr.Render()
	for _, want := range []string{"trace #1", "SELECT a1 FROM t", "parse", "execute", "scan on hive", "ERROR: boom"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q:\n%s", want, out)
		}
	}

	data, err := json.Marshal(tr)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Trace
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back.SQL != tr.SQL || back.Error != "boom" || len(back.Root.Children) != 2 {
		t.Errorf("round-trip mismatch: %+v", back)
	}
	if back.Root.Children[1].Children[0].System != "hive" {
		t.Error("round-trip lost nested span system")
	}
}
