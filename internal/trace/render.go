package trace

import (
	"fmt"
	"strings"
)

// Render formats the trace as an EXPLAIN ANALYZE-style tree: one line per
// span, indented by depth, with the span's system, annotations, duration,
// and error (when any).
func (t *Trace) Render() string {
	if t == nil {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "trace #%d (%.3fms): %s\n", t.ID, float64(t.DurationNanos)/1e6, t.SQL)
	if t.Error != "" {
		fmt.Fprintf(&b, "error: %s\n", t.Error)
	}
	renderSpan(&b, t.Root, 1)
	return b.String()
}

// renderSpan writes one span line and recurses into its children.
func renderSpan(b *strings.Builder, s *Span, depth int) {
	if s == nil {
		return
	}
	b.WriteString(strings.Repeat("  ", depth))
	b.WriteString(s.Name)
	if s.System != "" {
		fmt.Fprintf(b, " on %s", s.System)
	}
	for _, a := range s.Attrs {
		fmt.Fprintf(b, " %s=%s", a.Key, a.Value)
	}
	fmt.Fprintf(b, "  %.3fms", float64(s.DurationNanos)/1e6)
	if s.Error != "" {
		fmt.Fprintf(b, "  ERROR: %s", s.Error)
	}
	b.WriteByte('\n')
	for _, c := range s.Children {
		renderSpan(b, c, depth+1)
	}
}
