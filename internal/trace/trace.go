// Package trace provides lightweight per-query span trees — the
// EXPLAIN ANALYZE counterpart of the serving stack. A Trace is one query's
// tree of timed spans (parse → plan with per-candidate costing spans →
// execute with per-step and per-attempt spans), propagated through
// context.Context so every layer that already takes a context can attach
// spans without new plumbing.
//
// Tracing is strictly opt-in per query and free when off: Start consults the
// context, and when no span is active it returns the context unchanged and a
// nil *Span. Every Span method is a no-op on a nil receiver, so the
// instrumented hot paths cost one context value lookup and zero allocations
// for untraced queries (pinned by an AllocsPerRun test).
package trace

import (
	"context"
	"strconv"
	"sync"
	"time"
)

// Attr is one key/value annotation on a span (operator kind, cache verdict,
// retry count, estimator approach, ...).
type Attr struct {
	Key   string `json:"k"`
	Value string `json:"v"`
}

// Span is one timed region of a trace. Spans form a tree; children may be
// added concurrently (the optimizer costs candidate placements in parallel).
// All exported fields are for rendering/serialization; mutate only through
// the methods.
type Span struct {
	Name string `json:"name"`
	// System names the remote system the span touched, when any.
	System string `json:"system,omitempty"`
	Attrs  []Attr `json:"attrs,omitempty"`
	// StartNanos is the span's start offset from the trace start.
	StartNanos int64 `json:"start_ns"`
	// DurationNanos is the span's elapsed wall time (0 until ended).
	DurationNanos int64   `json:"duration_ns"`
	Error         string  `json:"error,omitempty"`
	Children      []*Span `json:"children,omitempty"`

	mu    sync.Mutex
	base  time.Time // trace start, for child offsets
	begin time.Time
	done  bool
	tid   uint64 // owning trace's ID (0 when the trace was never ring-assigned)
}

// child starts a sub-span. Safe for concurrent use on one parent.
func (s *Span) child(name string) *Span {
	now := time.Now()
	c := &Span{Name: name, base: s.base, begin: now, StartNanos: now.Sub(s.base).Nanoseconds(), tid: s.tid}
	s.mu.Lock()
	s.Children = append(s.Children, c)
	s.mu.Unlock()
	return c
}

// TraceID returns the ID of the trace this span belongs to, or 0 when the
// span is nil or its trace was never assigned an ID (untraced queries,
// rings of size zero). The ID is fixed at span creation, so exemplar and
// event emitters can read it without taking the span lock.
func (s *Span) TraceID() uint64 {
	if s == nil {
		return 0
	}
	return s.tid
}

// End closes the span, fixing its duration. Subsequent Ends are no-ops.
func (s *Span) End() { s.EndErr(nil) }

// EndErr closes the span and records err (when non-nil) as its outcome.
func (s *Span) EndErr(err error) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.done {
		s.done = true
		s.DurationNanos = time.Since(s.begin).Nanoseconds()
		if err != nil {
			s.Error = err.Error()
		}
	}
	s.mu.Unlock()
}

// SetSystem records the remote system the span touched.
func (s *Span) SetSystem(system string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.System = system
	s.mu.Unlock()
}

// SetAttr annotates the span. Later values for the same key append; render
// order is insertion order.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.Attrs = append(s.Attrs, Attr{Key: key, Value: value})
	s.mu.Unlock()
}

// SetInt annotates the span with an integer. The formatting happens only
// when the span is live, keeping the disabled path allocation-free.
func (s *Span) SetInt(key string, v int) {
	if s == nil {
		return
	}
	s.SetAttr(key, strconv.Itoa(v))
}

// SetFloat annotates the span with a float (shortest round-trip form).
func (s *Span) SetFloat(key string, v float64) {
	if s == nil {
		return
	}
	s.SetAttr(key, strconv.FormatFloat(v, 'g', -1, 64))
}

// Attr returns the first value recorded for key ("" when absent).
func (s *Span) Attr(key string) string {
	if s == nil {
		return ""
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, a := range s.Attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

// Trace is one query's completed (or in-flight) span tree.
type Trace struct {
	// ID is assigned by the Ring when the trace is recorded (0 before).
	ID  uint64 `json:"id"`
	SQL string `json:"sql"`
	// StartedAt is the wall-clock trace start.
	StartedAt time.Time `json:"started_at"`
	// DurationNanos is the whole query's elapsed wall time.
	DurationNanos int64  `json:"duration_ns"`
	Error         string `json:"error,omitempty"`
	Root          *Span  `json:"root"`
}

// New begins a trace for one statement, rooting its span tree at a "query"
// span.
func New(sql string) *Trace {
	now := time.Now()
	return &Trace{
		SQL:       sql,
		StartedAt: now,
		Root:      &Span{Name: "query", base: now, begin: now},
	}
}

// NewOp begins a trace for a background operation (the model tuner's
// retrain passes record into the same ring the query traces land in). The
// root span takes the operation name; label fills the SQL field so trace
// listings show what the operation touched.
func NewOp(name, label string) *Trace {
	now := time.Now()
	return &Trace{
		SQL:       label,
		StartedAt: now,
		Root:      &Span{Name: name, base: now, begin: now},
	}
}

// HasSystem reports whether any span in the trace touched the named remote
// system. Used by the /trace endpoint's ?system= filter.
func (t *Trace) HasSystem(name string) bool {
	if t == nil {
		return false
	}
	return t.Root.hasSystem(name)
}

// hasSystem walks the span subtree under the span lock (children may still
// be appended by a concurrent writer when a trace is inspected in flight).
func (s *Span) hasSystem(name string) bool {
	if s == nil {
		return false
	}
	s.mu.Lock()
	match := s.System == name
	kids := s.Children
	s.mu.Unlock()
	if match {
		return true
	}
	for _, c := range kids {
		if c.hasSystem(name) {
			return true
		}
	}
	return false
}

// Finish closes the root span and stamps the trace's total duration and
// outcome.
func (t *Trace) Finish(err error) {
	if t == nil {
		return
	}
	t.Root.EndErr(err)
	t.DurationNanos = t.Root.DurationNanos
	if err != nil {
		t.Error = err.Error()
	}
}

// spanKey carries the active *Span through a context.
type spanKey struct{}

// ContextWithSpan returns a context carrying s as the active span.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	return context.WithValue(ctx, spanKey{}, s)
}

// SpanFromContext returns the active span, or nil when the context is
// untraced. The lookup never allocates.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// Start opens a child span under the context's active span. When the context
// is untraced it returns the context unchanged and a nil span — the whole
// call is allocation-free, so instrumented hot paths cost nothing for
// untraced queries.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	parent := SpanFromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	c := parent.child(name)
	return ContextWithSpan(ctx, c), c
}
