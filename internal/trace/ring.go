package trace

import "sync/atomic"

// Ring is a fixed-size lock-free buffer of the most recent traces. Writers
// claim a slot with one atomic increment and publish the trace with one
// atomic store; readers snapshot slots without blocking writers. Old traces
// are overwritten, never freed in place, so a reader holding a *Trace keeps
// a consistent (finished) tree.
type Ring struct {
	slots []atomic.Pointer[Trace]
	next  atomic.Uint64
}

// DefaultRingSize is the trace buffer capacity when none is configured.
const DefaultRingSize = 64

// NewRing builds a ring holding the last n traces (n <= 0 selects
// DefaultRingSize).
func NewRing(n int) *Ring {
	if n <= 0 {
		n = DefaultRingSize
	}
	return &Ring{slots: make([]atomic.Pointer[Trace], n)}
}

// NewTrace begins a trace whose ID is assigned eagerly — before the query
// runs — so histogram exemplars and wide events emitted mid-query can carry
// the ID the trace will be retrievable under once published. On a nil ring
// the trace is still usable but keeps ID 0 (untraced for correlation
// purposes). The trace occupies no ring slot until Record publishes it.
func (r *Ring) NewTrace(sql string) *Trace {
	t := New(sql)
	if r != nil {
		t.ID = r.next.Add(1)
		t.Root.tid = t.ID
	}
	return t
}

// Record publishes a finished trace. Traces without an ID (built by New or
// NewOp rather than NewTrace) are assigned the next trace ID here; IDs start
// at 1 and never repeat.
func (r *Ring) Record(t *Trace) {
	if r == nil || t == nil {
		return
	}
	id := t.ID
	if id == 0 {
		id = r.next.Add(1)
		t.ID = id
		t.Root.tid = id
	}
	r.slots[int((id-1)%uint64(len(r.slots)))].Store(t)
}

// Count reports how many traces were ever recorded.
func (r *Ring) Count() uint64 {
	if r == nil {
		return 0
	}
	return r.next.Load()
}

// Recent returns up to n of the most recent traces, newest first (n <= 0
// selects the whole buffer). Concurrent writers may overwrite the oldest
// slots mid-snapshot; the returned traces are individually consistent.
func (r *Ring) Recent(n int) []*Trace {
	if r == nil {
		return nil
	}
	if n <= 0 || n > len(r.slots) {
		n = len(r.slots)
	}
	newest := r.next.Load()
	out := make([]*Trace, 0, n)
	for i := 0; i < n; i++ {
		id := newest - uint64(i)
		if id == 0 {
			break
		}
		t := r.slots[int((id-1)%uint64(len(r.slots)))].Load()
		// A slot may briefly hold an older (already overwritten) or newer
		// trace than the one addressed; keep whatever is published — the
		// endpoint serves "recent traces", not an exact log.
		if t != nil {
			out = append(out, t)
		}
	}
	return out
}
