// Package demo stands up the demo federation shared by the interactive
// shell (cmd/intellisphere) and the HTTP server (cmd/serve): a master engine
// with three simulated remote systems (Hive-like, Spark-like, and
// Presto-like clusters), the Figure 10 synthetic tables spread across them,
// sub-op-trained cost models, and two small materialized tables so queries
// over them return real rows.
package demo

import (
	"intellisphere/internal/cluster"
	"intellisphere/internal/core/logicalop"
	"intellisphere/internal/core/subop"
	"intellisphere/internal/datagen"
	"intellisphere/internal/engine"
	"intellisphere/internal/faults"
	"intellisphere/internal/remote"
	"intellisphere/internal/resilience"
)

// Config tunes the demo federation.
type Config struct {
	// Seed drives every simulator's noise (remotes derive their own seeds
	// from it deterministically). Zero selects 1.
	Seed int64
	// Workers and PlanCacheSize pass through to the engine configuration.
	Workers       int
	PlanCacheSize int
	// Faults configures fault injection on every remote (the master is
	// never injected). The zero value disables injection entirely, and a
	// disabled injector is a pure passthrough, so every output stays
	// byte-identical to an injection-free build. Each remote derives its
	// own draw seed from Faults.Seed so faults de-correlate across systems.
	Faults faults.Config
	// Breaker and Retry pass through to the engine's resilience layer;
	// zero values select the resilience defaults.
	Breaker resilience.BreakerConfig
	Retry   resilience.RetryPolicy
	// TraceBuffer passes through to the engine's trace ring (0 = default
	// size, negative disables).
	TraceBuffer int
	// LogicalRemote additionally stands up a fourth, blackbox remote
	// ("flink") whose cost models are logical-op neural networks trained by
	// executing the Figure 10 workloads — the only model family the
	// feedback/tuning loop can retrain, which is what the drift-tuner smoke
	// needs. Off by default: training executes real workload queries at
	// build time, and the default federation's outputs must stay
	// byte-identical with the option off.
	LogicalRemote bool
}

// Federation is the built demo plus the chaos controls over it: every
// remote sits behind a fault injector keyed by system name.
type Federation struct {
	Engine    *engine.Engine
	Injectors map[string]*faults.Injector
}

// Statements returns a representative statement mix over the demo tables —
// scans, an aggregation, and joins spanning systems. cmd/serve pre-plans it
// with -warm so the plan cache is hot before the first client arrives, and
// it doubles as a ready-made POST /query/batch payload.
func Statements() []string {
	return []string{
		"SELECT a1 FROM t10000_100 WHERE a1 < 100",
		"SELECT a1 FROM t80000000_1000 WHERE a1 < 60000000",
		"SELECT a2, COUNT(*) FROM t1000000_100 GROUP BY a2",
		"SELECT t1000000_100.a1 FROM t1000000_100 JOIN t100000_100 ON t1000000_100.a1 = t100000_100.a1",
		"SELECT users.a1 FROM users JOIN events ON users.a1 = events.a1",
		"SELECT warehouse.a1 FROM warehouse JOIN t10000000_250 ON warehouse.a1 = t10000000_250.a1",
		"SELECT a1 FROM dim_local",
	}
}

// Build constructs the demo federation, discarding the injector handles.
func Build(cfg Config) (*engine.Engine, error) {
	fed, err := BuildFederation(cfg)
	if err != nil {
		return nil, err
	}
	return fed.Engine, nil
}

// BuildFederation constructs the demo federation: hive owns the bulk of the
// Figure 10 tables, spark owns a handful, presto one warehouse, the master
// one local dimension table, and two small hive tables are materialized.
// The hive and spark tables are cross-replicated (and the warehouse
// replicated onto hive), so degraded re-planning has somewhere to go when a
// remote fails. Every remote is registered behind a fault injector; the
// injector stays fault-free during sub-op training (trained models match an
// injection-free build) and takes cfg.Faults only after the build finishes.
func BuildFederation(cfg Config) (*Federation, error) {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	eng, err := engine.New(engine.Config{
		Seed: cfg.Seed, Workers: cfg.Workers, PlanCacheSize: cfg.PlanCacheSize,
		Breaker: cfg.Breaker, Retry: cfg.Retry, TraceBuffer: cfg.TraceBuffer,
	})
	if err != nil {
		return nil, err
	}
	injectors := map[string]*faults.Injector{}
	hive, err := remote.NewHive("hive", cluster.DefaultHive(), remote.Options{Seed: cfg.Seed + 1})
	if err != nil {
		return nil, err
	}
	injectors["hive"] = faults.Wrap(hive, faults.Config{})
	if _, _, err := eng.RegisterRemoteSubOp(injectors["hive"], remote.EngineHive, subop.InHouseComparable); err != nil {
		return nil, err
	}
	sparkCluster := cluster.DefaultHive()
	sparkCluster.Name = "spark-vm"
	spark, err := remote.NewSpark("spark", sparkCluster, remote.Options{Seed: cfg.Seed + 2})
	if err != nil {
		return nil, err
	}
	injectors["spark"] = faults.Wrap(spark, faults.Config{})
	if _, _, err := eng.RegisterRemoteSubOp(injectors["spark"], remote.EngineSpark, subop.InHouseComparable); err != nil {
		return nil, err
	}
	prestoCluster := cluster.DefaultHive()
	prestoCluster.Name = "presto-vm"
	presto, err := remote.NewPresto("presto", prestoCluster, remote.Options{Seed: cfg.Seed + 3})
	if err != nil {
		return nil, err
	}
	injectors["presto"] = faults.Wrap(presto, faults.Config{})
	if _, _, err := eng.RegisterRemoteSubOp(injectors["presto"], remote.EnginePresto, subop.InHouseComparable); err != nil {
		return nil, err
	}

	// Replicas change nothing while the owner is healthy (the optimizer
	// always prefers the primary), but give degraded re-planning a place
	// to go when a remote fails or open-circuits.
	for _, rows := range []int64{10000, 100000, 1000000, 10000000, 80000000} {
		for _, size := range []int{100, 250, 1000} {
			tb, err := datagen.Table(rows, size, "hive")
			if err != nil {
				return nil, err
			}
			tb.Replicas = []string{"spark"}
			if err := eng.RegisterTable(tb); err != nil {
				return nil, err
			}
		}
	}
	for _, spec := range []struct {
		rows int64
		size int
		name string
	}{
		{2000000, 100, "events"},
		{200000, 100, "users"},
	} {
		tb, err := datagen.Table(spec.rows, spec.size, "spark")
		if err != nil {
			return nil, err
		}
		tb.Name = spec.name
		tb.Replicas = []string{"hive"}
		if err := eng.RegisterTable(tb); err != nil {
			return nil, err
		}
	}
	warehouse, err := datagen.Table(5000000, 250, "presto")
	if err != nil {
		return nil, err
	}
	warehouse.Name = "warehouse"
	warehouse.Replicas = []string{"hive"}
	if err := eng.RegisterTable(warehouse); err != nil {
		return nil, err
	}
	local, err := datagen.Table(50000, 100, "")
	if err != nil {
		return nil, err
	}
	local.Name = "dim_local"
	if err := eng.RegisterTable(local); err != nil {
		return nil, err
	}
	for _, name := range []string{"t10000_100", "t100000_100"} {
		if err := eng.Materialize(name); err != nil {
			return nil, err
		}
	}
	armed := []string{"hive", "spark", "presto"}
	if cfg.LogicalRemote {
		if err := addLogicalRemote(eng, injectors, cfg.Seed); err != nil {
			return nil, err
		}
		armed = append(armed, "flink")
	}
	// Arm the injectors only now, after training, with a per-remote draw
	// seed so the systems' fault sequences de-correlate.
	for i, name := range armed {
		c := cfg.Faults
		c.Seed = cfg.Faults.Seed + int64(i)
		injectors[name].Configure(c)
	}
	return &Federation{Engine: eng, Injectors: injectors}, nil
}

// addLogicalRemote stands up the blackbox "flink" remote: two tables of its
// own and logical-op models trained by executing the join/aggregation/scan
// workloads against it (trimmed sizes — the point is a tunable model, not
// the paper's full training budget). Its tables register straight into the
// catalog before the system exists, the same bootstrap the training tests
// use, because logical-op training discovers its workload from the catalog.
func addLogicalRemote(eng *engine.Engine, injectors map[string]*faults.Injector, seed int64) error {
	flinkCluster := cluster.DefaultHive()
	flinkCluster.Name = "flink-vm"
	flink, err := remote.NewSpark("flink", flinkCluster, remote.Options{Seed: seed + 4})
	if err != nil {
		return err
	}
	inj := faults.Wrap(flink, faults.Config{})
	injectors["flink"] = inj
	// The big table matters: at 40 GB, shipping it over QueryGrid dwarfs any
	// local operator, so the optimizer keeps flink's aggregations on flink —
	// which is what feeds the logical models' execution logs.
	for _, spec := range []struct {
		rows int64
		size int
	}{
		{80000000, 500},
		{500000, 250},
	} {
		tb, err := datagen.Table(spec.rows, spec.size, "flink")
		if err != nil {
			return err
		}
		if err := eng.Catalog().Register(tb); err != nil {
			return err
		}
	}
	lcfg := func(dim int, s int64) logicalop.Config {
		c := logicalop.DefaultConfig(dim, s)
		c.NN.Train.Iterations = 200
		c.NN.Train.BatchSize = 32
		return c
	}
	_, _, err = eng.RegisterRemoteLogicalOp(inj, remote.EngineSpark, engine.LogicalTrainOptions{
		JoinPairs: 24,
		TrainScan: true,
		Join:      lcfg(7, seed+42),
		Agg:       lcfg(4, seed+43),
		Scan:      lcfg(4, seed+44),
		Seed:      seed + 4,
	})
	return err
}
