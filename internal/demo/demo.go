// Package demo stands up the demo federation shared by the interactive
// shell (cmd/intellisphere) and the HTTP server (cmd/serve): a master engine
// with three simulated remote systems (Hive-like, Spark-like, and
// Presto-like clusters), the Figure 10 synthetic tables spread across them,
// sub-op-trained cost models, and two small materialized tables so queries
// over them return real rows.
package demo

import (
	"intellisphere/internal/cluster"
	"intellisphere/internal/core/subop"
	"intellisphere/internal/datagen"
	"intellisphere/internal/engine"
	"intellisphere/internal/remote"
)

// Config tunes the demo federation.
type Config struct {
	// Seed drives every simulator's noise (remotes derive their own seeds
	// from it deterministically). Zero selects 1.
	Seed int64
	// Workers and PlanCacheSize pass through to the engine configuration.
	Workers       int
	PlanCacheSize int
}

// Build constructs the demo federation: hive owns the bulk of the Figure 10
// tables, spark owns a handful, presto one warehouse, the master one local
// dimension table, and two small hive tables are materialized.
func Build(cfg Config) (*engine.Engine, error) {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	eng, err := engine.New(engine.Config{
		Seed: cfg.Seed, Workers: cfg.Workers, PlanCacheSize: cfg.PlanCacheSize,
	})
	if err != nil {
		return nil, err
	}
	hive, err := remote.NewHive("hive", cluster.DefaultHive(), remote.Options{Seed: cfg.Seed + 1})
	if err != nil {
		return nil, err
	}
	if _, _, err := eng.RegisterRemoteSubOp(hive, remote.EngineHive, subop.InHouseComparable); err != nil {
		return nil, err
	}
	sparkCluster := cluster.DefaultHive()
	sparkCluster.Name = "spark-vm"
	spark, err := remote.NewSpark("spark", sparkCluster, remote.Options{Seed: cfg.Seed + 2})
	if err != nil {
		return nil, err
	}
	if _, _, err := eng.RegisterRemoteSubOp(spark, remote.EngineSpark, subop.InHouseComparable); err != nil {
		return nil, err
	}
	prestoCluster := cluster.DefaultHive()
	prestoCluster.Name = "presto-vm"
	presto, err := remote.NewPresto("presto", prestoCluster, remote.Options{Seed: cfg.Seed + 3})
	if err != nil {
		return nil, err
	}
	if _, _, err := eng.RegisterRemoteSubOp(presto, remote.EnginePresto, subop.InHouseComparable); err != nil {
		return nil, err
	}

	for _, rows := range []int64{10000, 100000, 1000000, 10000000, 80000000} {
		for _, size := range []int{100, 250, 1000} {
			tb, err := datagen.Table(rows, size, "hive")
			if err != nil {
				return nil, err
			}
			if err := eng.RegisterTable(tb); err != nil {
				return nil, err
			}
		}
	}
	for _, spec := range []struct {
		rows int64
		size int
		name string
	}{
		{2000000, 100, "events"},
		{200000, 100, "users"},
	} {
		tb, err := datagen.Table(spec.rows, spec.size, "spark")
		if err != nil {
			return nil, err
		}
		tb.Name = spec.name
		if err := eng.RegisterTable(tb); err != nil {
			return nil, err
		}
	}
	warehouse, err := datagen.Table(5000000, 250, "presto")
	if err != nil {
		return nil, err
	}
	warehouse.Name = "warehouse"
	if err := eng.RegisterTable(warehouse); err != nil {
		return nil, err
	}
	local, err := datagen.Table(50000, 100, "")
	if err != nil {
		return nil, err
	}
	local.Name = "dim_local"
	if err := eng.RegisterTable(local); err != nil {
		return nil, err
	}
	for _, name := range []string{"t10000_100", "t100000_100"} {
		if err := eng.Materialize(name); err != nil {
			return nil, err
		}
	}
	return eng, nil
}
