package experiments

import (
	"fmt"
	"strings"

	"intellisphere/internal/nn"
	"intellisphere/internal/plan"
	"intellisphere/internal/regress"
	"intellisphere/internal/stats"
	"intellisphere/internal/workload"
)

// LogicalOpResult reproduces one operator's logical-op evaluation —
// Figure 11 for aggregation, Figure 12 for join. Panels:
//
//	(a) cumulative remote training time over the query sweep
//	(b) NN convergence (RMSE% vs training iterations)
//	(c) NN predicted-vs-actual fit on the held-out 30%
//	(d) linear-regression predicted-vs-actual fit on the same split
type LogicalOpResult struct {
	Operator   string
	NumQueries int
	// TrainingCurve samples the cumulative simulated training time.
	TrainingCurve []TrainPoint
	TotalTrainSec float64
	Convergence   []ConvPoint
	NNLine        stats.Line
	NNRMSEPct     float64
	LinRegLine    stats.Line
	LinRegRMSEPct float64
}

// TrainPoint is one sample of panel (a).
type TrainPoint struct {
	Queries       int
	CumulativeSec float64
}

// String prints the figure's rows.
func (r *LogicalOpResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s logical-op evaluation\n", r.Operator)
	fmt.Fprintf(&b, "(a) training cost: %d queries, %.2f simulated hours\n", r.NumQueries, r.TotalTrainSec/3600)
	for _, p := range r.TrainingCurve {
		fmt.Fprintf(&b, "      %6d queries  %10.1f s\n", p.Queries, p.CumulativeSec)
	}
	b.WriteString("(b) NN convergence:\n")
	for _, p := range r.Convergence {
		fmt.Fprintf(&b, "      iter %6d  RMSE%% %6.2f\n", p.Iterations, p.RMSEPct)
	}
	fmt.Fprintf(&b, "(c) NN accuracy:     %s  (RMSE%% %.2f)\n", r.NNLine, r.NNRMSEPct)
	fmt.Fprintf(&b, "(d) linreg accuracy: %s  (RMSE%% %.2f)\n", r.LinRegLine, r.LinRegRMSEPct)
	return b.String()
}

// sampleCurve thins a cumulative series to ~12 points.
func sampleCurve(cum []float64) []TrainPoint {
	if len(cum) == 0 {
		return nil
	}
	step := len(cum) / 12
	if step < 1 {
		step = 1
	}
	var out []TrainPoint
	for i := step - 1; i < len(cum); i += step {
		out = append(out, TrainPoint{Queries: i + 1, CumulativeSec: cum[i]})
	}
	if out[len(out)-1].Queries != len(cum) {
		out = append(out, TrainPoint{Queries: len(cum), CumulativeSec: cum[len(cum)-1]})
	}
	return out
}

// runLogicalOp is shared by Figures 11 and 12.
func runLogicalOp(env *Env, operator string, run *workload.RunResult, inputDim int) (*LogicalOpResult, error) {
	cfg := env.Cfg
	res := &LogicalOpResult{
		Operator:      operator,
		NumQueries:    len(run.Y),
		TrainingCurve: sampleCurve(run.Cumulative),
		TotalTrainSec: run.TotalSec,
	}

	trainX, trainY, testX, testY, err := nn.Split(run.X, run.Y, 0.7, cfg.Seed)
	if err != nil {
		return nil, err
	}

	netCfg := nn.Config{
		InputDim:   inputDim,
		Hidden:     []int{2 * inputDim, inputDim},
		Activation: nn.Tanh,
		Seed:       cfg.Seed,
	}
	trainCfg := nn.TrainConfig{
		LearningRate: 0.01,
		BatchSize:    64,
		Optimizer:    nn.Adam,
		Seed:         cfg.Seed,
	}
	reg, curve, err := trainWithConvergence(trainX, trainY, netCfg, trainCfg, cfg.NNIterations, cfg.ConvergenceSamples)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s NN: %w", operator, err)
	}
	res.Convergence = curve

	res.NNLine, res.NNRMSEPct, err = accuracyLine(reg.PredictAll(testX), testY)
	if err != nil {
		return nil, err
	}

	// Panel (d): plain multivariate linear regression on the same split.
	lin, err := regress.Fit(trainX, trainY)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s linear model: %w", operator, err)
	}
	linPred := make([]float64, len(testX))
	for i, row := range testX {
		p := lin.Predict(row)
		if p < 0 {
			p = 0
		}
		linPred[i] = p
	}
	res.LinRegLine, res.LinRegRMSEPct, err = accuracyLine(linPred, testY)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// RunFig11 reproduces Figure 11: the aggregation logical operator.
func RunFig11(env *Env) (*LogicalOpResult, error) {
	qs, err := workload.AggTrainingSet(env.Tables)
	if err != nil {
		return nil, err
	}
	run, err := workload.RunAggSet(env.Hive, qs)
	if err != nil {
		return nil, err
	}
	return runLogicalOp(env, "aggregation", run, len(plan.AggDimNames()))
}

// RunFig12 reproduces Figure 12: the join logical operator.
func RunFig12(env *Env) (*LogicalOpResult, error) {
	qs, err := workload.JoinTrainingSet(env.Tables, env.Cfg.JoinPairs, env.Cfg.Seed)
	if err != nil {
		return nil, err
	}
	run, err := workload.RunJoinSet(env.Hive, qs)
	if err != nil {
		return nil, err
	}
	return runLogicalOp(env, "join", run, len(plan.JoinDimNames()))
}
