package experiments

import (
	"fmt"
	"strings"

	"intellisphere/internal/core/subop"
	"intellisphere/internal/nn"
	"intellisphere/internal/parallel"
	"intellisphere/internal/plan"
	"intellisphere/internal/remote"
	"intellisphere/internal/stats"
	"intellisphere/internal/workload"
)

// Ablations quantify the design choices DESIGN.md calls out. They are not
// paper figures; they justify defaults.

// LogOutputAblationResult compares training the join network on raw seconds
// versus log-space targets. RMSE% is dominated by the largest joins; the
// median relative error shows what log-space targets buy on the bulk of
// the workload, whose costs span orders of magnitude.
type LogOutputAblationResult struct {
	RawRMSEPct   float64
	LogRMSEPct   float64
	RawR2        float64
	LogR2        float64
	RawMedRelErr float64
	LogMedRelErr float64
}

// String prints the comparison.
func (r *LogOutputAblationResult) String() string {
	return fmt.Sprintf("log-output ablation (join NN): raw targets RMSE%% %.2f (R² %.3f, med rel err %.3f) vs log targets RMSE%% %.2f (R² %.3f, med rel err %.3f)",
		r.RawRMSEPct, r.RawR2, r.RawMedRelErr, r.LogRMSEPct, r.LogR2, r.LogMedRelErr)
}

// medianRelErr computes the median of |pred-actual|/actual.
func medianRelErr(pred, actual []float64) (float64, error) {
	rel := make([]float64, len(pred))
	for i := range pred {
		rel[i] = abs(pred[i]-actual[i]) / actual[i]
	}
	return stats.Percentile(rel, 50)
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// RunLogOutputAblation trains the join model both ways on the same split.
func RunLogOutputAblation(env *Env) (*LogOutputAblationResult, error) {
	cfg := env.Cfg
	qs, err := workload.JoinTrainingSet(env.Tables, cfg.JoinPairs, cfg.Seed)
	if err != nil {
		return nil, err
	}
	run, err := workload.RunJoinSet(env.Hive, qs)
	if err != nil {
		return nil, err
	}
	trainX, trainY, testX, testY, err := nn.Split(run.X, run.Y, 0.7, cfg.Seed)
	if err != nil {
		return nil, err
	}
	d := len(plan.JoinDimNames())
	res := &LogOutputAblationResult{}
	// The two target encodings train independently; run both variants
	// concurrently (each training run is worker-count invariant).
	type variant struct{ pct, r2, med float64 }
	variants, err := parallel.Map(2, func(i int) (variant, error) {
		logOut := i == 1
		reg, _, err := nn.TrainRegressor(trainX, trainY, nn.RegressorConfig{
			Network: nn.Config{InputDim: d, Hidden: []int{2 * d, d}, Activation: nn.Tanh, Seed: cfg.Seed},
			Train: nn.TrainConfig{Iterations: cfg.NNIterations, LearningRate: 0.01,
				BatchSize: 64, Optimizer: nn.Adam, Seed: cfg.Seed},
			LogOutput: logOut,
		})
		if err != nil {
			return variant{}, err
		}
		pred := reg.PredictAll(testX)
		line, pct, err := accuracyLine(pred, testY)
		if err != nil {
			return variant{}, err
		}
		med, err := medianRelErr(pred, testY)
		if err != nil {
			return variant{}, err
		}
		return variant{pct: pct, r2: line.R2, med: med}, nil
	})
	if err != nil {
		return nil, err
	}
	res.RawRMSEPct, res.RawR2, res.RawMedRelErr = variants[0].pct, variants[0].r2, variants[0].med
	res.LogRMSEPct, res.LogR2, res.LogMedRelErr = variants[1].pct, variants[1].r2, variants[1].med
	return res, nil
}

// AlphaAblationResult compares a fixed α = 0.5 against the closed-form
// batch re-fit over the Figure 14 suite.
type AlphaAblationResult struct {
	FixedRMSEPct    float64
	AdaptiveRMSEPct float64
	FinalAlpha      float64
}

// String prints the comparison.
func (r *AlphaAblationResult) String() string {
	return fmt.Sprintf("α ablation: fixed 0.5 RMSE%% %.2f vs adaptive RMSE%% %.2f (final α %.2f)",
		r.FixedRMSEPct, r.AdaptiveRMSEPct, r.FinalAlpha)
}

// RunAlphaAblation evaluates both α strategies batch by batch.
func RunAlphaAblation(env *Env) (*AlphaAblationResult, error) {
	s, err := newOORSetup(env)
	if err != nil {
		return nil, err
	}
	fixed, err := cloneModel(s.join)
	if err != nil {
		return nil, err
	}
	fixed.SetAlpha(0.5)
	adaptive, err := cloneModel(s.join)
	if err != nil {
		return nil, err
	}
	adaptive.SetAlpha(0.5)

	const batch = 9
	var fixedPred, adaptPred []float64
	for i, spec := range s.specs {
		fe, err := fixed.Estimate(spec.Dims())
		if err != nil {
			return nil, err
		}
		fixedPred = append(fixedPred, fe.Seconds)
		ae, err := adaptive.Estimate(spec.Dims())
		if err != nil {
			return nil, err
		}
		adaptPred = append(adaptPred, ae.Seconds)
		adaptive.Observe(spec.Dims(), s.actuals[i], ae.NNSeconds, ae.RegSeconds)
		if (i+1)%batch == 0 {
			adaptive.RefitAlpha()
		}
	}
	res := &AlphaAblationResult{FinalAlpha: adaptive.Alpha()}
	if res.FixedRMSEPct, err = stats.RMSEPercent(fixedPred, s.actuals); err != nil {
		return nil, err
	}
	if res.AdaptiveRMSEPct, err = stats.RMSEPercent(adaptPred, s.actuals); err != nil {
		return nil, err
	}
	return res, nil
}

// PolicyAblationResult compares the three choice policies on joins whose
// applicability rules leave several candidate algorithms.
type PolicyAblationResult struct {
	N          int
	WorstPct   float64
	AvgPct     float64
	InHousePct float64
}

// String prints the comparison.
func (r *PolicyAblationResult) String() string {
	return fmt.Sprintf("choice-policy ablation over %d ambiguous joins: worst RMSE%% %.2f, average RMSE%% %.2f, in-house RMSE%% %.2f",
		r.N, r.WorstPct, r.AvgPct, r.InHousePct)
}

// RunPolicyAblation builds joins with small sides straddling the broadcast
// threshold on bucketed tables (so several algorithms stay applicable) and
// scores each policy against the remote's actual choice.
func RunPolicyAblation(env *Env) (*PolicyAblationResult, error) {
	models, _, err := subop.Train(env.Hive, subop.TrainConfig{})
	if err != nil {
		return nil, err
	}
	var specs []plan.JoinSpec
	limit := env.Hive.Cluster().BroadcastLimit()
	for _, frac := range []float64{0.2, 0.5, 0.9} {
		for _, size := range []float64{100, 250, 500} {
			rows := limit * frac / size
			specs = append(specs, plan.JoinSpec{
				Left: plan.TableSide{Rows: 8e6, RowSize: size, ProjectedSize: 28, KeyNDV: 8e6,
					PartitionedOn: true, SortedOn: true},
				Right: plan.TableSide{Rows: rows, RowSize: size, ProjectedSize: 28, KeyNDV: rows,
					PartitionedOn: true, SortedOn: true},
				OutputRows: rows,
			})
		}
	}
	// Ground-truth executions are independent simulated queries; fan them out.
	actual, err := parallel.Map(len(specs), func(i int) (float64, error) {
		ex, err := env.Hive.ExecuteJoin(specs[i])
		if err != nil {
			return 0, err
		}
		return ex.ElapsedSec, nil
	})
	if err != nil {
		return nil, err
	}
	res := &PolicyAblationResult{N: len(specs)}
	score := func(p subop.ChoicePolicy) (float64, error) {
		est, err := subop.NewEstimator(models, remote.EngineHive, p)
		if err != nil {
			return 0, err
		}
		pred, err := parallel.Map(len(specs), func(i int) (float64, error) {
			ce, err := est.EstimateJoin(specs[i])
			if err != nil {
				return 0, err
			}
			return ce.Seconds, nil
		})
		if err != nil {
			return 0, err
		}
		return stats.RMSEPercent(pred, actual)
	}
	// The three policies share read-only models, so they score concurrently.
	policies := []subop.ChoicePolicy{subop.WorstCase, subop.AverageCase, subop.InHouseComparable}
	pcts, err := parallel.Map(len(policies), func(i int) (float64, error) {
		return score(policies[i])
	})
	if err != nil {
		return nil, err
	}
	res.WorstPct, res.AvgPct, res.InHousePct = pcts[0], pcts[1], pcts[2]
	return res, nil
}

// NeighborKResult is one remedy neighborhood-size setting.
type NeighborKResult struct {
	K       int
	RMSEPct float64
}

// NeighborKAblationResult sweeps the remedy's NeighborK.
type NeighborKAblationResult struct {
	Rows []NeighborKResult
}

// String prints the sweep.
func (r *NeighborKAblationResult) String() string {
	var b strings.Builder
	b.WriteString("remedy neighborhood ablation (online remedy, α=0.5):")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  k=%d → RMSE%% %.2f;", row.K, row.RMSEPct)
	}
	return b.String()
}

// RunNeighborKAblation retrains the join model once and evaluates the
// remedy under different neighborhood sizes.
func RunNeighborKAblation(env *Env, ks []int) (*NeighborKAblationResult, error) {
	if len(ks) == 0 {
		ks = []int{4, 8, 16, 32}
	}
	s, err := newOORSetup(env)
	if err != nil {
		return nil, err
	}
	res := &NeighborKAblationResult{}
	// Each k setting works on its own model clone, so the sweep fans out.
	rows, err := parallel.Map(len(ks), func(i int) (NeighborKResult, error) {
		k := ks[i]
		// Re-train cheaply by cloning and adjusting the config through the
		// snapshot (NeighborK is part of the serialized config).
		m, err := cloneModel(s.join)
		if err != nil {
			return NeighborKResult{}, err
		}
		m.SetAlpha(0.5)
		m.SetNeighborK(k)
		var pred []float64
		for _, spec := range s.specs {
			est, err := m.Estimate(spec.Dims())
			if err != nil {
				return NeighborKResult{}, err
			}
			pred = append(pred, est.Seconds)
		}
		pct, err := stats.RMSEPercent(pred, s.actuals)
		if err != nil {
			return NeighborKResult{}, err
		}
		return NeighborKResult{K: k, RMSEPct: pct}, nil
	})
	if err != nil {
		return nil, err
	}
	res.Rows = rows
	return res, nil
}

// TopologyAblationResult compares the paper's cross-validation topology
// search (Section 3: layer1 ∈ [d, 2d], layer2 ∈ [3, layer1/2]) against the
// fixed (2d, d) default, on the aggregation model.
type TopologyAblationResult struct {
	FixedHidden     []int
	FixedRMSEPct    float64
	BestHidden      []int
	BestRMSEPct     float64
	TopologiesTried int
}

// String prints the comparison.
func (r *TopologyAblationResult) String() string {
	return fmt.Sprintf("topology ablation (agg NN): fixed %v RMSE%% %.2f vs cross-validated %v RMSE%% %.2f (%d topologies tried)",
		r.FixedHidden, r.FixedRMSEPct, r.BestHidden, r.BestRMSEPct, r.TopologiesTried)
}

// RunTopologyAblation trains the aggregation model under both topology
// policies and scores each on the same held-out split.
func RunTopologyAblation(env *Env) (*TopologyAblationResult, error) {
	cfg := env.Cfg
	qs, err := workload.AggTrainingSet(env.Tables)
	if err != nil {
		return nil, err
	}
	run, err := workload.RunAggSet(env.Hive, qs)
	if err != nil {
		return nil, err
	}
	trainX, trainY, testX, testY, err := nn.Split(run.X, run.Y, 0.7, cfg.Seed)
	if err != nil {
		return nil, err
	}
	d := len(plan.AggDimNames())
	iters := cfg.NNIterations / 2
	if iters < 100 {
		iters = 100
	}
	base := nn.RegressorConfig{
		Network: nn.Config{InputDim: d, Activation: nn.Tanh, Seed: cfg.Seed},
		Train: nn.TrainConfig{Iterations: iters, LearningRate: 0.01,
			BatchSize: 64, Optimizer: nn.Adam, Seed: cfg.Seed},
		LogOutput: true,
	}

	res := &TopologyAblationResult{FixedHidden: []int{2 * d, d}}
	fixedCfg := base
	fixedCfg.Network.Hidden = res.FixedHidden
	fixed, _, err := nn.TrainRegressor(trainX, trainY, fixedCfg)
	if err != nil {
		return nil, err
	}
	if res.FixedRMSEPct, err = stats.RMSEPercent(fixed.PredictAll(testX), testY); err != nil {
		return nil, err
	}

	best, tried, err := nn.SearchTopology(trainX, trainY, base)
	if err != nil {
		return nil, err
	}
	res.TopologiesTried = len(tried)
	res.BestHidden = best.Hidden
	bestCfg := base
	bestCfg.Network = best
	reg, _, err := nn.TrainRegressor(trainX, trainY, bestCfg)
	if err != nil {
		return nil, err
	}
	if res.BestRMSEPct, err = stats.RMSEPercent(reg.PredictAll(testX), testY); err != nil {
		return nil, err
	}
	return res, nil
}
