package experiments

import (
	"strings"
	"testing"
)

func TestLogOutputAblation(t *testing.T) {
	env := quickEnv(t)
	res, err := RunLogOutputAblation(env)
	if err != nil {
		t.Fatalf("RunLogOutputAblation: %v", err)
	}
	// Costs span orders of magnitude; log-space targets should win on the
	// relative error of the bulk of the workload (this is why they are the
	// default), while staying competitive on the big-join-dominated RMSE%.
	if res.LogMedRelErr >= res.RawMedRelErr {
		t.Errorf("log targets median rel err (%.3f) did not beat raw (%.3f)", res.LogMedRelErr, res.RawMedRelErr)
	}
	if res.LogRMSEPct > res.RawRMSEPct*1.5 {
		t.Errorf("log targets RMSE%% (%.2f) collapsed vs raw (%.2f)", res.LogRMSEPct, res.RawRMSEPct)
	}
	if !strings.Contains(res.String(), "log-output ablation") {
		t.Error("String() incomplete")
	}
}

func TestAlphaAblation(t *testing.T) {
	env := quickEnv(t)
	res, err := RunAlphaAblation(env)
	if err != nil {
		t.Fatalf("RunAlphaAblation: %v", err)
	}
	if res.FinalAlpha <= 0 || res.FinalAlpha >= 1 {
		t.Errorf("final α = %v", res.FinalAlpha)
	}
	// Adaptive should be at least competitive with the fixed setting
	// (Table 1 shows it winning; allow a small tolerance for the quick
	// configuration).
	if res.AdaptiveRMSEPct > res.FixedRMSEPct*1.15 {
		t.Errorf("adaptive α RMSE%% (%.2f) much worse than fixed (%.2f)", res.AdaptiveRMSEPct, res.FixedRMSEPct)
	}
}

func TestPolicyAblation(t *testing.T) {
	env := quickEnv(t)
	res, err := RunPolicyAblation(env)
	if err != nil {
		t.Fatalf("RunPolicyAblation: %v", err)
	}
	if res.N == 0 {
		t.Fatal("no ambiguous joins generated")
	}
	// The in-house-comparable policy mirrors the engine's own cost-based
	// selection, so it must not lose to worst-case.
	if res.InHousePct > res.WorstPct {
		t.Errorf("in-house RMSE%% (%.2f) worse than worst-case (%.2f)", res.InHousePct, res.WorstPct)
	}
}

func TestNeighborKAblation(t *testing.T) {
	env := quickEnv(t)
	res, err := RunNeighborKAblation(env, []int{4, 8, 16})
	if err != nil {
		t.Fatalf("RunNeighborKAblation: %v", err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.RMSEPct <= 0 {
			t.Errorf("k=%d RMSE%% = %v", row.K, row.RMSEPct)
		}
	}
	if !strings.Contains(res.String(), "k=8") {
		t.Error("String() incomplete")
	}
}

func TestTopologyAblation(t *testing.T) {
	cfg := Quick()
	cfg.NNIterations = 200 // the search trains ~a dozen candidates
	env, err := NewEnv(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunTopologyAblation(env)
	if err != nil {
		t.Fatalf("RunTopologyAblation: %v", err)
	}
	if res.TopologiesTried == 0 {
		t.Fatal("no topologies tried")
	}
	// The paper's constraints on the searched space.
	if res.BestHidden[0] < 4 || res.BestHidden[0] > 8 {
		t.Errorf("best layer1 = %d out of [d, 2d]", res.BestHidden[0])
	}
	// The cross-validated choice must be competitive with the fixed default
	// (it optimizes held-out error on its own split, so small regressions on
	// this split are possible — allow 40% slack).
	if res.BestRMSEPct > res.FixedRMSEPct*1.4 {
		t.Errorf("cross-validated topology RMSE%% (%.2f) much worse than fixed (%.2f)",
			res.BestRMSEPct, res.FixedRMSEPct)
	}
	if !strings.Contains(res.String(), "topology ablation") {
		t.Error("String() incomplete")
	}
}

func TestTrainingSizeCurve(t *testing.T) {
	env := quickEnv(t)
	res, err := RunTrainingSizeCurve(env, []float64{0.1, 0.5, 1.0})
	if err != nil {
		t.Fatalf("RunTrainingSizeCurve: %v", err)
	}
	if len(res.Points) != 3 {
		t.Fatalf("points = %d", len(res.Points))
	}
	// Spend grows with the prefix; quality improves from the smallest to
	// the full training set (the economic tension behind the hybrid CP).
	first, last := res.Points[0], res.Points[len(res.Points)-1]
	if first.Queries >= last.Queries || first.TrainSec >= last.TrainSec {
		t.Errorf("spend not growing: %+v", res.Points)
	}
	if last.RMSEPct >= first.RMSEPct {
		t.Errorf("full training (%.2f%%) did not beat the 10%% prefix (%.2f%%)", last.RMSEPct, first.RMSEPct)
	}
	if !strings.Contains(res.String(), "training spend") {
		t.Error("String() incomplete")
	}
}
