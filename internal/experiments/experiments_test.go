package experiments

import (
	"strings"
	"testing"

	"intellisphere/internal/remote"
)

// The experiment tests run the Quick configuration and assert the paper's
// qualitative shapes (Section 7), not absolute numbers.

func quickEnv(t *testing.T) *Env {
	t.Helper()
	env, err := NewEnv(Quick())
	if err != nil {
		t.Fatalf("NewEnv: %v", err)
	}
	return env
}

func TestNewEnvValidation(t *testing.T) {
	cfg := Quick()
	cfg.MaxTableRows = 1 // leaves no tables
	if _, err := NewEnv(cfg); err == nil {
		t.Error("empty table cap accepted")
	}
	full, err := NewEnv(Full())
	if err != nil {
		t.Fatalf("Full env: %v", err)
	}
	if len(full.Tables) != 120 {
		t.Errorf("full env has %d tables, want 120", len(full.Tables))
	}
}

func TestFig11AggregationShapes(t *testing.T) {
	env := quickEnv(t)
	res, err := RunFig11(env)
	if err != nil {
		t.Fatalf("RunFig11: %v", err)
	}
	// 90 capped tables × 6 shrink columns × 5 aggregate counts.
	if res.NumQueries != 2700 {
		t.Errorf("agg queries = %d, want 2700", res.NumQueries)
	}
	if res.TotalTrainSec <= 0 || len(res.TrainingCurve) == 0 {
		t.Error("missing training-cost curve")
	}
	// Training curve is cumulative (nondecreasing, ends at the total).
	last := 0.0
	for _, p := range res.TrainingCurve {
		if p.CumulativeSec < last {
			t.Fatal("training curve not cumulative")
		}
		last = p.CumulativeSec
	}
	if last != res.TotalTrainSec {
		t.Errorf("curve ends at %v, total %v", last, res.TotalTrainSec)
	}
	// Convergence decreases substantially from start to finish.
	conv := res.Convergence
	if len(conv) < 3 {
		t.Fatalf("convergence has %d points", len(conv))
	}
	if conv[len(conv)-1].RMSEPct >= conv[0].RMSEPct {
		t.Errorf("convergence did not improve: first %.2f last %.2f", conv[0].RMSEPct, conv[len(conv)-1].RMSEPct)
	}
	// Figure 11(c)/(d): NN highly linear; linreg decent but worse.
	if res.NNLine.R2 < 0.9 {
		t.Errorf("agg NN R² = %v, want > 0.9 (paper: 0.986)", res.NNLine.R2)
	}
	if res.NNLine.Slope < 0.7 || res.NNLine.Slope > 1.3 {
		t.Errorf("agg NN slope = %v, want near 1", res.NNLine.Slope)
	}
	if res.LinRegLine.R2 > res.NNLine.R2 {
		t.Errorf("linreg R² (%v) beat the NN (%v) on aggregation", res.LinRegLine.R2, res.NNLine.R2)
	}
	if !strings.Contains(res.String(), "NN accuracy") {
		t.Error("String() missing panels")
	}
}

func TestFig12JoinShapes(t *testing.T) {
	env := quickEnv(t)
	res, err := RunFig12(env)
	if err != nil {
		t.Fatalf("RunFig12: %v", err)
	}
	if res.NumQueries != env.Cfg.JoinPairs*4 {
		t.Errorf("join queries = %d, want %d", res.NumQueries, env.Cfg.JoinPairs*4)
	}
	// The headline of Figure 12: the NN fits the join well, linear
	// regression does not (paper: R² 0.887 vs 0.468).
	if res.NNLine.R2 < 0.8 {
		t.Errorf("join NN R² = %v, want > 0.8", res.NNLine.R2)
	}
	if res.LinRegLine.R2 > res.NNLine.R2-0.05 {
		t.Errorf("join linreg R² (%v) too close to NN (%v); the gap is the paper's point", res.LinRegLine.R2, res.NNLine.R2)
	}
	if res.NNRMSEPct > res.LinRegRMSEPct {
		t.Errorf("join NN RMSE%% (%v) worse than linreg (%v)", res.NNRMSEPct, res.LinRegRMSEPct)
	}
}

func TestJoinTrainingCostsMoreThanAgg(t *testing.T) {
	// Figures 11(a) vs 12(a): join training takes several times longer
	// than aggregation training (paper: 25.9h vs 4.3h).
	env := quickEnv(t)
	agg, err := RunFig11(env)
	if err != nil {
		t.Fatal(err)
	}
	join, err := RunFig12(env)
	if err != nil {
		t.Fatal(err)
	}
	perAgg := agg.TotalTrainSec / float64(agg.NumQueries)
	perJoin := join.TotalTrainSec / float64(join.NumQueries)
	if perJoin <= perAgg {
		t.Errorf("per-query join training (%v s) should exceed aggregation (%v s)", perJoin, perAgg)
	}
}

func TestFig13SubOpShapes(t *testing.T) {
	env := quickEnv(t)
	res, err := RunFig13(env)
	if err != nil {
		t.Fatalf("RunFig13: %v", err)
	}
	// Figure 13(a): tens-to-hundreds of probe queries, minutes of training.
	if res.Report.TotalCount > 400 {
		t.Errorf("sub-op training used %d queries", res.Report.TotalCount)
	}
	if len(res.TrainingCurve) != len(res.Report.SubOps) {
		t.Errorf("training curve has %d points, want %d", len(res.TrainingCurve), len(res.Report.SubOps))
	}
	// Panels (c)-(e): tight linear models.
	for _, sr := range res.Report.SubOps {
		switch sr.Target {
		case remote.WriteDFS, remote.Shuffle, remote.RecMerge, remote.ReadDFS:
			if sr.Line.R2 < 0.9 {
				t.Errorf("%v model R² = %v, want > 0.9", sr.Target, sr.Line.R2)
			}
		case remote.HashBuild:
			if sr.SpillLine == nil {
				t.Fatal("HashBuild missing its spill model")
			}
			if sr.SpillLine.Slope <= sr.Line.Slope {
				t.Errorf("spill slope %v not steeper than in-memory %v", sr.SpillLine.Slope, sr.Line.Slope)
			}
		}
	}
	// Panel (g): good correlation with slight overestimation (paper slope
	// 1.578, R² 0.929).
	if res.MergeJoinLine.R2 < 0.85 {
		t.Errorf("merge-join R² = %v, want > 0.85", res.MergeJoinLine.R2)
	}
	if res.MergeJoinLine.Slope < 1.0 || res.MergeJoinLine.Slope > 2.0 {
		t.Errorf("merge-join slope = %v, want overestimation in [1, 2]", res.MergeJoinLine.Slope)
	}
	if !strings.Contains(res.String(), "merge-join formula") {
		t.Error("String() incomplete")
	}
}

func TestSubOpTrainingVastlyCheaperThanLogicalOp(t *testing.T) {
	// The approach-comparison headline (Figure 8 / Section 4): the sub-op
	// training set is one to two orders of magnitude smaller than the
	// logical-op one, and the training time is a fraction of it.
	env := quickEnv(t)
	sub, err := RunFig13(env)
	if err != nil {
		t.Fatal(err)
	}
	agg, err := RunFig11(env)
	if err != nil {
		t.Fatal(err)
	}
	if sub.Report.TotalCount*9 > agg.NumQueries {
		t.Errorf("sub-op needed %d queries vs logical-op %d; want ≥9× fewer",
			sub.Report.TotalCount, agg.NumQueries)
	}
	if sub.Report.TotalSec*3 > agg.TotalTrainSec {
		t.Errorf("sub-op training (%v s) not ≥3× cheaper than logical-op (%v s)",
			sub.Report.TotalSec, agg.TotalTrainSec)
	}
}

func TestFig7ReadDFS(t *testing.T) {
	env := quickEnv(t)
	res, err := RunFig7(env)
	if err != nil {
		t.Fatalf("RunFig7: %v", err)
	}
	// The learned slope should approximate the paper's ground truth
	// y = 0.0041x + 0.6323 (which seeds the simulator).
	if res.Model.Slope < 0.0030 || res.Model.Slope > 0.0055 {
		t.Errorf("ReadDFS slope = %v, want ≈0.0041", res.Model.Slope)
	}
	if len(res.Flatness) == 0 {
		t.Fatal("missing flatness points")
	}
	if !strings.Contains(res.String(), "Figure 7") {
		t.Error("String() incomplete")
	}
}

func TestFig14OutOfRangeOrdering(t *testing.T) {
	env := quickEnv(t)
	res, err := RunFig14(env)
	if err != nil {
		t.Fatalf("RunFig14: %v", err)
	}
	if res.N != 45 {
		t.Errorf("suite size = %d, want 45", res.N)
	}
	// The figure's ordering: raw NN is the worst; the online remedy
	// recovers much of the gap; offline tuning and sub-op sit near the
	// optimal zone.
	if res.RemedyPct >= res.NNPct {
		t.Errorf("online remedy RMSE%% (%.2f) did not improve on raw NN (%.2f)", res.RemedyPct, res.NNPct)
	}
	if res.TunedPct >= res.NNPct {
		t.Errorf("offline tuning RMSE%% (%.2f) did not improve on raw NN (%.2f)", res.TunedPct, res.NNPct)
	}
	if res.SubOpPct >= res.NNPct {
		t.Errorf("sub-op RMSE%% (%.2f) should beat the raw NN (%.2f) out of range", res.SubOpPct, res.NNPct)
	}
	// Sub-op stays consistent (high correlation) out of range.
	if res.SubOpLine.R2 < 0.85 {
		t.Errorf("sub-op out-of-range R² = %v", res.SubOpLine.R2)
	}
	out := res.String()
	for _, want := range []string{"sub-op", "online remedy", "offline tuning"} {
		if !strings.Contains(out, want) {
			t.Errorf("String() missing %q", want)
		}
	}
}

func TestTable1AlphaAdaptation(t *testing.T) {
	env := quickEnv(t)
	res, err := RunTable1(env)
	if err != nil {
		t.Fatalf("RunTable1: %v", err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("got %d batches, want 5", len(res.Rows))
	}
	if res.Rows[0].Alpha != 0.5 {
		t.Errorf("initial α = %v, want 0.5", res.Rows[0].Alpha)
	}
	// α must actually adapt after the first batch.
	changed := false
	for _, r := range res.Rows[1:] {
		if r.Alpha != 0.5 {
			changed = true
		}
		if r.Alpha <= 0 || r.Alpha >= 1 {
			t.Errorf("α = %v out of (0,1)", r.Alpha)
		}
	}
	if !changed {
		t.Error("α never adapted")
	}
	// The paper's trend: the last batch beats the first.
	if res.Rows[len(res.Rows)-1].RMSEPct >= res.Rows[0].RMSEPct {
		t.Errorf("RMSE%% did not improve: first %.2f last %.2f",
			res.Rows[0].RMSEPct, res.Rows[len(res.Rows)-1].RMSEPct)
	}
	if !strings.Contains(res.String(), "Table 1") {
		t.Error("String() incomplete")
	}
}
