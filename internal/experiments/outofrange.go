package experiments

import (
	"encoding/json"
	"fmt"
	"strings"

	"intellisphere/internal/catalog"
	"intellisphere/internal/core/logicalop"
	"intellisphere/internal/core/subop"
	"intellisphere/internal/nn"
	"intellisphere/internal/plan"
	"intellisphere/internal/remote"
	"intellisphere/internal/stats"
	"intellisphere/internal/workload"
)

// oorSetup is the shared Figure 14 / Table 1 environment: models trained on
// datasets of up to 8×10^6 records, and the 45-query evaluation suite at
// 20×10^6 records.
type oorSetup struct {
	env     *Env
	join    *logicalop.Model
	subOp   *subop.ModelSet
	specs   []plan.JoinSpec
	actuals []float64
}

func newOORSetup(env *Env) (*oorSetup, error) {
	cfg := env.Cfg
	// Training tables capped at 8M records, as in the paper.
	var tables []*catalog.Table
	for _, t := range env.Tables {
		if t.Rows <= 8_000_000 {
			tables = append(tables, t)
		}
	}
	qs, err := workload.JoinTrainingSet(tables, cfg.JoinPairs, cfg.Seed)
	if err != nil {
		return nil, err
	}
	run, err := workload.RunJoinSet(env.Hive, qs)
	if err != nil {
		return nil, err
	}
	lcfg := logicalop.DefaultConfig(len(plan.JoinDimNames()), cfg.Seed)
	lcfg.NN.Train.Iterations = cfg.NNIterations
	join, _, err := logicalop.Train("join", plan.JoinDimNames(), run.X, run.Y, lcfg)
	if err != nil {
		return nil, err
	}

	models, _, err := subop.Train(env.Hive, subop.TrainConfig{})
	if err != nil {
		return nil, err
	}

	oorCfg := workload.DefaultOutOfRange()
	oorCfg.Count = cfg.OutOfRangeCount
	oorCfg.Seed = cfg.Seed + 11
	specs, err := workload.OutOfRangeJoins(oorCfg)
	if err != nil {
		return nil, err
	}
	actuals, err := workload.RunJoinSpecs(env.Hive, specs)
	if err != nil {
		return nil, err
	}
	return &oorSetup{env: env, join: join, subOp: models, specs: specs, actuals: actuals}, nil
}

// cloneModel deep-copies a logical model through its JSON snapshot so
// different arms of the experiment cannot contaminate each other.
func cloneModel(m *logicalop.Model) (*logicalop.Model, error) {
	data, err := json.Marshal(m)
	if err != nil {
		return nil, err
	}
	var out logicalop.Model
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Fig14Result compares the four out-of-range prediction strategies of
// Figure 14: the sub-op formula, the raw NN, the NN with the online remedy
// (fixed α = 0.5), and the NN after offline tuning on 70% of the new range.
type Fig14Result struct {
	N          int
	SubOpLine  stats.Line
	SubOpPct   float64
	NNLine     stats.Line
	NNPct      float64
	RemedyLine stats.Line
	RemedyPct  float64
	TunedLine  stats.Line
	TunedPct   float64
	TunedN     int
}

// String prints the figure rows.
func (r *Fig14Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "out-of-range prediction, %d merge-join queries at 20M records (trained ≤ 8M)\n", r.N)
	fmt.Fprintf(&b, "  sub-op            %s  RMSE%% %6.2f\n", r.SubOpLine, r.SubOpPct)
	fmt.Fprintf(&b, "  NN                %s  RMSE%% %6.2f\n", r.NNLine, r.NNPct)
	fmt.Fprintf(&b, "  NN+online remedy  %s  RMSE%% %6.2f   (α=0.5)\n", r.RemedyLine, r.RemedyPct)
	fmt.Fprintf(&b, "  NN+offline tuning %s  RMSE%% %6.2f   (on held-out %d)\n", r.TunedLine, r.TunedPct, r.TunedN)
	return b.String()
}

// RunFig14 reproduces Figure 14.
func RunFig14(env *Env) (*Fig14Result, error) {
	s, err := newOORSetup(env)
	if err != nil {
		return nil, err
	}
	res := &Fig14Result{N: len(s.specs)}

	// Sub-op arm: predict the algorithm with the applicability rules and
	// evaluate the composed formula.
	subEst, err := subop.NewEstimator(s.subOp, remote.EngineHive, subop.InHouseComparable)
	if err != nil {
		return nil, err
	}
	var subPred []float64
	for _, spec := range s.specs {
		ce, err := subEst.EstimateJoin(spec)
		if err != nil {
			return nil, err
		}
		subPred = append(subPred, ce.Seconds)
	}
	if res.SubOpLine, res.SubOpPct, err = accuracyLine(subPred, s.actuals); err != nil {
		return nil, err
	}

	// Raw NN and the α=0.5 online remedy.
	remedyModel, err := cloneModel(s.join)
	if err != nil {
		return nil, err
	}
	remedyModel.SetAlpha(0.5)
	var nnPred, remedyPred []float64
	for _, spec := range s.specs {
		est, err := remedyModel.Estimate(spec.Dims())
		if err != nil {
			return nil, err
		}
		if !est.OutOfRange {
			return nil, fmt.Errorf("experiments: spec unexpectedly in range: %+v", spec.Dims())
		}
		nnPred = append(nnPred, est.NNSeconds)
		remedyPred = append(remedyPred, est.Seconds)
	}
	if res.NNLine, res.NNPct, err = accuracyLine(nnPred, s.actuals); err != nil {
		return nil, err
	}
	if res.RemedyLine, res.RemedyPct, err = accuracyLine(remedyPred, s.actuals); err != nil {
		return nil, err
	}

	// Offline tuning: feed ~70% of the executions into the log, retrain,
	// evaluate on the remaining 30%.
	tunedModel, err := cloneModel(s.join)
	if err != nil {
		return nil, err
	}
	cut := len(s.specs) * 7 / 10
	for i := 0; i < cut; i++ {
		tunedModel.Observe(s.specs[i].Dims(), s.actuals[i], 1, 1)
	}
	tc := nn.TrainConfig{
		Iterations: env.Cfg.NNIterations, LearningRate: 0.01, BatchSize: 64,
		Optimizer: nn.Adam, Seed: env.Cfg.Seed + 3,
	}
	if _, err := tunedModel.OfflineTune(tc); err != nil {
		return nil, err
	}
	var tunedPred, tunedActual []float64
	for i := cut; i < len(s.specs); i++ {
		est, err := tunedModel.Estimate(s.specs[i].Dims())
		if err != nil {
			return nil, err
		}
		tunedPred = append(tunedPred, est.Seconds)
		tunedActual = append(tunedActual, s.actuals[i])
	}
	res.TunedN = len(tunedPred)
	if res.TunedLine, res.TunedPct, err = accuracyLine(tunedPred, tunedActual); err != nil {
		return nil, err
	}
	return res, nil
}

// Table1Row is one batch of the α auto-adjustment experiment.
type Table1Row struct {
	Batch   int
	Alpha   float64 // α used while estimating this batch
	RMSEPct float64
}

// Table1Result reproduces Table 1: the 45 out-of-range queries split into
// five batches of nine; after each batch the system re-fits α to minimize
// the RMSE of the executed batches.
type Table1Result struct {
	Rows []Table1Row
}

// String prints the table.
func (r *Table1Result) String() string {
	var b strings.Builder
	b.WriteString("α auto-adjustment (Table 1)\n  batch   α      RMSE%\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %5d  %5.2f  %6.2f\n", row.Batch, row.Alpha, row.RMSEPct)
	}
	return b.String()
}

// RunTable1 reproduces Table 1.
func RunTable1(env *Env) (*Table1Result, error) {
	s, err := newOORSetup(env)
	if err != nil {
		return nil, err
	}
	model, err := cloneModel(s.join)
	if err != nil {
		return nil, err
	}
	model.SetAlpha(0.5)

	const batches = 5
	n := len(s.specs) / batches
	res := &Table1Result{}
	for b := 0; b < batches; b++ {
		lo, hi := b*n, (b+1)*n
		if b == batches-1 {
			hi = len(s.specs)
		}
		alphaUsed := model.Alpha()
		var pred, actual []float64
		for i := lo; i < hi; i++ {
			est, err := model.Estimate(s.specs[i].Dims())
			if err != nil {
				return nil, err
			}
			pred = append(pred, est.Seconds)
			actual = append(actual, s.actuals[i])
			model.Observe(s.specs[i].Dims(), s.actuals[i], est.NNSeconds, est.RegSeconds)
		}
		pct, err := stats.RMSEPercent(pred, actual)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, Table1Row{Batch: b + 1, Alpha: alphaUsed, RMSEPct: pct})
		model.RefitAlpha()
	}
	return res, nil
}
