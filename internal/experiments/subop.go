package experiments

import (
	"fmt"
	"strings"

	"intellisphere/internal/core/subop"
	"intellisphere/internal/plan"
	"intellisphere/internal/remote"
	"intellisphere/internal/stats"
)

// SubOpResult reproduces Figures 7 and 13: the sub-operator training cost
// (13a), the per-record flatness across record counts (7a, 13b), the fitted
// per-record linear models (7b, 13c–e), the HashBuild two-regime model
// (13f), and the composed merge-join formula accuracy (13g).
type SubOpResult struct {
	Report *subop.Report
	Models *subop.ModelSet
	// TrainingCurve is Figure 13(a): cumulative probe-training minutes as
	// sub-operators are learned.
	TrainingCurve []TrainPoint
	// MergeJoinLine/RMSEPct is Figure 13(g): composed-formula estimates
	// against actual shuffle (merge) join executions.
	MergeJoinLine    stats.Line
	MergeJoinRMSEPct float64
	MergeJoinPoints  int
}

// String prints the figure rows.
func (r *SubOpResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sub-operator evaluation (%d probe queries, %.1f simulated minutes, baseline %.2fs)\n",
		r.Report.TotalCount, r.Report.TotalSec/60, r.Report.BaselineSec)
	b.WriteString("(a) training cost:\n")
	for _, p := range r.TrainingCurve {
		fmt.Fprintf(&b, "      %4d queries  %8.2f min\n", p.Queries, p.CumulativeSec/60)
	}
	b.WriteString("(b-f) learned per-record models (µs vs record size):\n")
	for _, sr := range r.Report.SubOps {
		fmt.Fprintf(&b, "      %-10s %s\n", sr.Target, sr.Line)
		if sr.SpillLine != nil {
			fmt.Fprintf(&b, "      %-10s %s  (spill regime)\n", "", *sr.SpillLine)
		}
	}
	b.WriteString("    per-record flatness across record counts (ReadDFS @ largest size):\n")
	for _, sr := range r.Report.SubOps {
		if sr.Target != remote.ReadDFS {
			continue
		}
		for _, p := range sr.PerCount {
			fmt.Fprintf(&b, "      %10.0f records  %6.3f µs/record\n", p.Records, p.PerRecordUS)
		}
	}
	fmt.Fprintf(&b, "(g) merge-join formula accuracy over %d joins: %s  (RMSE%% %.2f)\n",
		r.MergeJoinPoints, r.MergeJoinLine, r.MergeJoinRMSEPct)
	return b.String()
}

// RunFig13 reproduces the full sub-op evaluation (Figure 13; Figure 7 is
// the ReadDFS slice of the same run).
func RunFig13(env *Env) (*SubOpResult, error) {
	models, report, err := subop.Train(env.Hive, subop.TrainConfig{})
	if err != nil {
		return nil, err
	}
	res := &SubOpResult{Report: report, Models: models}
	cum := 0.0
	queries := 0
	for _, sr := range report.SubOps {
		queries += sr.Queries
		cum += sr.TrainSec
		res.TrainingCurve = append(res.TrainingCurve, TrainPoint{Queries: queries, CumulativeSec: cum})
	}

	// Figure 13(g): sweep both-large joins (the remote picks its
	// shuffle/merge join), compare the composed formula against actuals.
	var est, actual []float64
	for _, rows := range []float64{2e6, 4e6, 6e6, 8e6, 12e6, 16e6} {
		for _, size := range []float64{70, 100, 250, 500} {
			spec := plan.JoinSpec{
				Left:       plan.TableSide{Rows: rows, RowSize: size, ProjectedSize: 28, KeyNDV: rows},
				Right:      plan.TableSide{Rows: rows / 2, RowSize: size, ProjectedSize: 28, KeyNDV: rows / 2},
				OutputRows: rows / 4,
			}
			ex, err := env.Hive.ExecuteJoinWith(spec, remote.HiveShuffleJoin)
			if err != nil {
				return nil, err
			}
			c, err := models.JoinCost(spec, remote.HiveShuffleJoin)
			if err != nil {
				return nil, err
			}
			actual = append(actual, ex.ElapsedSec)
			est = append(est, c)
		}
	}
	res.MergeJoinPoints = len(est)
	res.MergeJoinLine, res.MergeJoinRMSEPct, err = accuracyLine(est, actual)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Fig7Result is the ReadDFS slice of the sub-op run (Figure 7).
type Fig7Result struct {
	// Flatness is panel (a): per-record time across record counts at
	// 1000-byte records.
	Flatness []subop.CountPoint
	// Model is panel (b): the fitted per-record line (the paper reports
	// y = 0.0041x + 0.6323).
	Model stats.Line
}

// String prints the figure rows.
func (r *Fig7Result) String() string {
	var b strings.Builder
	b.WriteString("ReadDFS sub-op model (Figure 7)\n(a) per-record time across record counts (1000-B records):\n")
	for _, p := range r.Flatness {
		fmt.Fprintf(&b, "      %10.0f records  %6.3f µs/record\n", p.Records, p.PerRecordUS)
	}
	fmt.Fprintf(&b, "(b) model: %s\n", r.Model)
	return b.String()
}

// RunFig7 reproduces Figure 7 from a sub-op training run.
func RunFig7(env *Env) (*Fig7Result, error) {
	_, report, err := subop.Train(env.Hive, subop.TrainConfig{})
	if err != nil {
		return nil, err
	}
	for _, sr := range report.SubOps {
		if sr.Target == remote.ReadDFS {
			return &Fig7Result{Flatness: sr.PerCount, Model: sr.Line}, nil
		}
	}
	return nil, fmt.Errorf("experiments: ReadDFS missing from sub-op report")
}
