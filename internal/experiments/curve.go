package experiments

import (
	"fmt"
	"strings"

	"intellisphere/internal/nn"
	"intellisphere/internal/parallel"
	"intellisphere/internal/plan"
	"intellisphere/internal/workload"
)

// TrainingSizePoint is one point of the training-cost-vs-quality curve.
type TrainingSizePoint struct {
	Queries    int
	TrainSec   float64 // cumulative simulated remote time for this many queries
	RMSEPct    float64 // held-out accuracy of a model trained on this prefix
	AccuracyR2 float64
}

// TrainingSizeCurveResult quantifies the paper's central economic tension:
// logical-op quality grows with remote training spend, which is exactly why
// the hybrid approach serves approximate sub-op estimates while the
// prolonged training runs (Figure 9). Not a paper figure; a supplementary
// experiment.
type TrainingSizeCurveResult struct {
	Points []TrainingSizePoint
}

// String prints the curve.
func (r *TrainingSizeCurveResult) String() string {
	var b strings.Builder
	b.WriteString("join logical-op quality vs training spend:\n")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "  %5d queries  %8.1f simulated s  RMSE%% %6.2f  R² %.3f\n",
			p.Queries, p.TrainSec, p.RMSEPct, p.AccuracyR2)
	}
	return b.String()
}

// RunTrainingSizeCurve trains the join model on growing prefixes of the
// training workload and scores each on a common held-out set.
func RunTrainingSizeCurve(env *Env, fractions []float64) (*TrainingSizeCurveResult, error) {
	if len(fractions) == 0 {
		fractions = []float64{0.05, 0.1, 0.25, 0.5, 1.0}
	}
	cfg := env.Cfg
	qs, err := workload.JoinTrainingSet(env.Tables, cfg.JoinPairs, cfg.Seed)
	if err != nil {
		return nil, err
	}
	run, err := workload.RunJoinSet(env.Hive, qs)
	if err != nil {
		return nil, err
	}
	trainX, trainY, testX, testY, err := nn.Split(run.X, run.Y, 0.7, cfg.Seed)
	if err != nil {
		return nil, err
	}
	// Approximate per-query training spend from the full run's average.
	perQuery := run.TotalSec / float64(len(run.Y))

	d := len(plan.JoinDimNames())
	res := &TrainingSizeCurveResult{}
	// Each prefix trains an independent model; the curve points fan out
	// across the pool. Inner training runs stay serial to keep the pool
	// bounded (their results are worker-count invariant regardless).
	points, err := parallel.Map(len(fractions), func(i int) (TrainingSizePoint, error) {
		n := int(fractions[i] * float64(len(trainX)))
		if n < d+2 {
			n = d + 2
		}
		if n > len(trainX) {
			n = len(trainX)
		}
		reg, _, err := nn.TrainRegressor(trainX[:n], trainY[:n], nn.RegressorConfig{
			Network: nn.Config{InputDim: d, Hidden: []int{2 * d, d}, Activation: nn.Tanh, Seed: cfg.Seed},
			Train: nn.TrainConfig{Iterations: cfg.NNIterations, LearningRate: 0.01,
				BatchSize: 64, Optimizer: nn.Adam, Seed: cfg.Seed, Workers: 1},
			LogOutput: true,
		})
		if err != nil {
			return TrainingSizePoint{}, err
		}
		line, pct, err := accuracyLine(reg.PredictAll(testX), testY)
		if err != nil {
			return TrainingSizePoint{}, err
		}
		return TrainingSizePoint{
			Queries:    n,
			TrainSec:   perQuery * float64(n),
			RMSEPct:    pct,
			AccuracyR2: line.R2,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	res.Points = points
	return res, nil
}
