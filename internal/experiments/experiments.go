// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 7) against the simulated Hive remote system: the
// logical-operator training cost, convergence, and accuracy plots
// (Figures 11 and 12), the sub-operator training and model plots
// (Figures 7 and 13), the out-of-range prediction comparison (Figure 14),
// and the α auto-adjustment table (Table 1). Each experiment returns a
// typed result whose String method prints the same rows/series the paper
// reports; cmd/experiments drives them and bench_test.go wraps each in a
// benchmark.
package experiments

import (
	"fmt"

	"intellisphere/internal/catalog"
	"intellisphere/internal/cluster"
	"intellisphere/internal/datagen"
	"intellisphere/internal/nn"
	"intellisphere/internal/remote"
	"intellisphere/internal/stats"
)

// Config scales an experiment run. Full() reproduces the paper's workload
// sizes; Quick() shrinks them for tests and benchmarks while preserving
// every qualitative shape.
type Config struct {
	// Seed drives workload sampling, noise, and network initialization.
	Seed int64
	// NoiseAmp is the remote simulator's multiplicative noise amplitude.
	NoiseAmp float64
	// JoinPairs is the number of join training pairs (paper: 1000 → 4000
	// queries with the four selectivities).
	JoinPairs int
	// MaxTableRows caps which Figure 10 tables participate (0 = all 120).
	MaxTableRows int64
	// NNIterations is the total training epochs per neural model.
	NNIterations int
	// ConvergenceSamples is how many RMSE% checkpoints the convergence
	// curves record.
	ConvergenceSamples int
	// OutOfRangeCount is the Figure 14 suite size (paper: 45).
	OutOfRangeCount int
}

// Full reproduces the paper's scale.
func Full() Config {
	return Config{
		Seed:               7,
		NoiseAmp:           0.03,
		JoinPairs:          1000,
		NNIterations:       2000,
		ConvergenceSamples: 20,
		OutOfRangeCount:    45,
	}
}

// Quick shrinks the workloads for fast regression runs.
func Quick() Config {
	return Config{
		Seed:               7,
		NoiseAmp:           0.02,
		JoinPairs:          120,
		MaxTableRows:       8_000_000,
		NNIterations:       400,
		ConvergenceSamples: 8,
		OutOfRangeCount:    45,
	}
}

func (c *Config) normalize() {
	if c.JoinPairs <= 0 {
		c.JoinPairs = 1000
	}
	if c.NNIterations <= 0 {
		c.NNIterations = 2000
	}
	if c.ConvergenceSamples <= 0 {
		c.ConvergenceSamples = 10
	}
	if c.OutOfRangeCount <= 0 {
		c.OutOfRangeCount = 45
	}
	if c.NoiseAmp == 0 {
		c.NoiseAmp = 0.03
	}
}

// Env is the shared experimental setup: the simulated Hive cluster of the
// paper's evaluation plus the Figure 10 tables.
type Env struct {
	Cfg    Config
	Hive   *remote.Distributed
	Tables []*catalog.Table
}

// NewEnv builds the evaluation environment.
func NewEnv(cfg Config) (*Env, error) {
	cfg.normalize()
	hive, err := remote.NewHive("hive", cluster.DefaultHive(), remote.Options{
		NoiseAmp: cfg.NoiseAmp, Seed: cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	all, err := datagen.Tables("hive")
	if err != nil {
		return nil, err
	}
	tables := all
	if cfg.MaxTableRows > 0 {
		tables = nil
		for _, t := range all {
			if t.Rows <= cfg.MaxTableRows {
				tables = append(tables, t)
			}
		}
	}
	if len(tables) < 2 {
		return nil, fmt.Errorf("experiments: table cap %d leaves %d tables", cfg.MaxTableRows, len(tables))
	}
	return &Env{Cfg: cfg, Hive: hive, Tables: tables}, nil
}

// ConvPoint is one convergence checkpoint (Figures 11(b)/12(b)).
type ConvPoint struct {
	Iterations int
	RMSEPct    float64
}

// trainWithConvergence trains a fresh regressor in chunks, recording the
// paper's RMSE% metric (on the training set, in raw seconds) after each
// chunk — the convergence curves of Figures 11(b) and 12(b).
func trainWithConvergence(x [][]float64, y []float64, netCfg nn.Config, train nn.TrainConfig, totalIters, samples int) (*nn.Regressor, []ConvPoint, error) {
	chunk := totalIters / samples
	if chunk < 1 {
		chunk = 1
	}
	first := train
	first.Iterations = chunk
	reg, _, err := nn.TrainRegressor(x, y, nn.RegressorConfig{Network: netCfg, Train: first, LogOutput: true})
	if err != nil {
		return nil, nil, err
	}
	var curve []ConvPoint
	record := func(iters int) error {
		pct, err := stats.RMSEPercent(reg.PredictAll(x), y)
		if err != nil {
			return err
		}
		curve = append(curve, ConvPoint{Iterations: iters, RMSEPct: pct})
		return nil
	}
	if err := record(chunk); err != nil {
		return nil, nil, err
	}
	done := chunk
	for done < totalIters {
		step := chunk
		if done+step > totalIters {
			step = totalIters - done
		}
		tc := train
		tc.Iterations = step
		tc.Seed = train.Seed + int64(done)
		if _, err := reg.Retrain(x, y, tc); err != nil {
			return nil, nil, err
		}
		done += step
		if err := record(done); err != nil {
			return nil, nil, err
		}
	}
	return reg, curve, nil
}

// accuracyLine fits predicted = slope·actual + intercept, the annotation the
// paper places on its scatter plots.
func accuracyLine(predicted, actual []float64) (stats.Line, float64, error) {
	line, err := stats.FitLine(actual, predicted)
	if err != nil {
		return stats.Line{}, 0, err
	}
	pct, err := stats.RMSEPercent(predicted, actual)
	if err != nil {
		return stats.Line{}, 0, err
	}
	return line, pct, nil
}
