package regress

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFitSimpleExact(t *testing.T) {
	x := []float64{40, 70, 100, 250, 500, 1000}
	y := make([]float64, len(x))
	for i, v := range x {
		y[i] = 0.0314*v + 0.7403 // the paper's WriteDFS model
	}
	m, err := FitSimple(x, y)
	if err != nil {
		t.Fatalf("FitSimple: %v", err)
	}
	if math.Abs(m.Coef[0]-0.0314) > 1e-9 || math.Abs(m.Intercept-0.7403) > 1e-9 {
		t.Errorf("fit = %+v, want slope 0.0314 intercept 0.7403", m)
	}
	if m.R2 < 1-1e-9 {
		t.Errorf("R² = %v, want 1", m.R2)
	}
}

func TestFitMultivariateExact(t *testing.T) {
	// y = 3 + 2*x0 - 5*x1 + 0.5*x2
	rng := rand.New(rand.NewSource(7))
	x := make([][]float64, 50)
	y := make([]float64, 50)
	for i := range x {
		x[i] = []float64{rng.Float64() * 10, rng.Float64() * 10, rng.Float64() * 10}
		y[i] = 3 + 2*x[i][0] - 5*x[i][1] + 0.5*x[i][2]
	}
	m, err := Fit(x, y)
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	want := []float64{2, -5, 0.5}
	for i, c := range m.Coef {
		if math.Abs(c-want[i]) > 1e-8 {
			t.Errorf("Coef[%d] = %v, want %v", i, c, want[i])
		}
	}
	if math.Abs(m.Intercept-3) > 1e-8 {
		t.Errorf("Intercept = %v, want 3", m.Intercept)
	}
}

func TestFitUnderdetermined(t *testing.T) {
	x := [][]float64{{1, 2, 3}}
	y := []float64{1}
	if _, err := Fit(x, y); err != ErrUnderdetermined {
		t.Errorf("err = %v, want ErrUnderdetermined", err)
	}
}

func TestFitSingular(t *testing.T) {
	// Second column is 2× the first: collinear.
	x := [][]float64{{1, 2}, {2, 4}, {3, 6}, {4, 8}}
	y := []float64{1, 2, 3, 4}
	if _, err := Fit(x, y); err != ErrSingular {
		t.Errorf("err = %v, want ErrSingular", err)
	}
}

func TestFitRowDimMismatch(t *testing.T) {
	x := [][]float64{{1, 2}, {3}}
	y := []float64{1, 2}
	if _, err := Fit(x, y); err == nil {
		t.Error("expected error for inconsistent row widths")
	}
}

func TestFitLengthMismatch(t *testing.T) {
	if _, err := Fit([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Error("expected error for x/y length mismatch")
	}
}

func TestPredictPanicsOnWrongDims(t *testing.T) {
	m := &Model{Coef: []float64{1, 2}}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for wrong input width")
		}
	}()
	m.Predict([]float64{1})
}

func TestFitNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	x := make([][]float64, 200)
	y := make([]float64, 200)
	for i := range x {
		x[i] = []float64{rng.Float64() * 100}
		y[i] = 4*x[i][0] + 10 + rng.NormFloat64()
	}
	m, err := Fit(x, y)
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if math.Abs(m.Coef[0]-4) > 0.05 {
		t.Errorf("slope = %v, want ≈4", m.Coef[0])
	}
	if m.R2 < 0.99 {
		t.Errorf("R² = %v, want > 0.99", m.R2)
	}
}

func TestTwoSegmentRecoversRegimes(t *testing.T) {
	// Mimic Figure 13(f): in-memory y=0.0248x+18.241, spill y=0.1821x-51.614,
	// crossover in the 400–500 byte region.
	var x, y []float64
	for _, v := range []float64{40, 70, 100, 250, 400} {
		x = append(x, v)
		y = append(y, 0.0248*v+18.241)
	}
	for _, v := range []float64{500, 700, 900, 1000, 1100} {
		x = append(x, v)
		y = append(y, 0.1821*v-51.614)
	}
	ts, err := FitTwoSegment(x, y)
	if err != nil {
		t.Fatalf("FitTwoSegment: %v", err)
	}
	if math.Abs(ts.Left.Slope-0.0248) > 1e-6 {
		t.Errorf("left slope = %v, want 0.0248", ts.Left.Slope)
	}
	if math.Abs(ts.Right.Slope-0.1821) > 1e-6 {
		t.Errorf("right slope = %v, want 0.1821", ts.Right.Slope)
	}
	if ts.Breakpoint < 400 || ts.Breakpoint > 500 {
		t.Errorf("breakpoint = %v, want in [400,500]", ts.Breakpoint)
	}
	if got := ts.Predict(100); math.Abs(got-(0.0248*100+18.241)) > 1e-6 {
		t.Errorf("Predict(100) = %v", got)
	}
	if got := ts.Predict(1000); math.Abs(got-(0.1821*1000-51.614)) > 1e-6 {
		t.Errorf("Predict(1000) = %v", got)
	}
}

func TestTwoSegmentErrors(t *testing.T) {
	if _, err := FitTwoSegment([]float64{1, 2, 3}, []float64{1, 2, 3}); err == nil {
		t.Error("expected error for too few points")
	}
	if _, err := FitTwoSegment([]float64{3, 2, 1, 0}, []float64{1, 2, 3, 4}); err == nil {
		t.Error("expected error for unsorted x")
	}
	if _, err := FitTwoSegment([]float64{1, 2, 3}, []float64{1, 2}); err == nil {
		t.Error("expected error for length mismatch")
	}
}

// Property: Fit recovers arbitrary 2-dim linear relationships with negligible
// residual when inputs are well-conditioned.
func TestFitRecoversLinearProperty(t *testing.T) {
	f := func(a, b, c float64, seed int64) bool {
		clamp := func(v float64) float64 {
			if v > 100 {
				return 100
			}
			if v < -100 {
				return -100
			}
			if math.IsNaN(v) {
				return 1
			}
			return v
		}
		a, b, c = clamp(a), clamp(b), clamp(c)
		rng := rand.New(rand.NewSource(seed))
		x := make([][]float64, 40)
		y := make([]float64, 40)
		for i := range x {
			x[i] = []float64{rng.Float64()*50 + 1, rng.Float64()*50 + 1}
			y[i] = a + b*x[i][0] + c*x[i][1]
		}
		m, err := Fit(x, y)
		if err != nil {
			return false
		}
		for i := range x {
			if math.Abs(m.Predict(x[i])-y[i]) > 1e-5*(1+math.Abs(y[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: the two-segment fit never has larger SSE than the best of its
// candidate splits evaluated directly, and its prediction is continuous in
// the sense that each side uses its own line.
func TestTwoSegmentSSEProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(10)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = float64(i*10) + rng.Float64()
			if i < n/2 {
				y[i] = 2*x[i] + rng.NormFloat64()
			} else {
				y[i] = 10*x[i] - 300 + rng.NormFloat64()
			}
		}
		ts, err := FitTwoSegment(x, y)
		if err != nil {
			return false
		}
		// The recovered breakpoint must sit inside the x range.
		return ts.Breakpoint > x[0] && ts.Breakpoint < x[n-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
