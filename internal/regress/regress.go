// Package regress implements the regression models used throughout the cost
// estimation module: ordinary least squares (simple and multivariate, solved
// via normal equations), and the two-segment regression used for regime-
// switching sub-operators such as HashBuild (Figure 13(f) of the paper),
// whose cost follows one linear model while the hash table fits in memory
// and a different one once it spills.
package regress

import (
	"errors"
	"fmt"
	"math"

	"intellisphere/internal/stats"
)

// ErrUnderdetermined is returned when there are fewer observations than
// coefficients to fit.
var ErrUnderdetermined = errors.New("regress: underdetermined system (too few observations)")

// ErrSingular is returned when the normal-equation matrix is singular, which
// happens when input dimensions are linearly dependent or constant.
var ErrSingular = errors.New("regress: singular system (collinear or constant inputs)")

// Model is a fitted multivariate linear model y = Intercept + Σ Coef[i]*x[i].
type Model struct {
	Coef      []float64 // one coefficient per input dimension
	Intercept float64
	R2        float64 // coefficient of determination on the training data
}

// Predict evaluates the model at x. It panics if len(x) != len(m.Coef); the
// caller owns dimensional consistency.
func (m *Model) Predict(x []float64) float64 {
	if len(x) != len(m.Coef) {
		panic(fmt.Sprintf("regress: Predict with %d inputs on a %d-dim model", len(x), len(m.Coef)))
	}
	y := m.Intercept
	for i, c := range m.Coef {
		y += c * x[i]
	}
	return y
}

// Fit computes the ordinary least-squares fit of y against the rows of x.
// Every row of x must have the same length d; the returned model has d
// coefficients plus an intercept.
func Fit(x [][]float64, y []float64) (*Model, error) {
	return FitWeighted(x, y, nil)
}

// FitWeighted computes a weighted least-squares fit: observation i
// contributes with weight w[i] (> 0). A nil w degenerates to OLS. The
// online remedy uses it to favour training points whose in-range context
// matches the query while still spanning the pivot dimensions.
func FitWeighted(x [][]float64, y []float64, w []float64) (*Model, error) {
	if len(x) != len(y) {
		return nil, stats.ErrLengthMismatch
	}
	if len(x) == 0 {
		return nil, stats.ErrEmpty
	}
	if w != nil && len(w) != len(x) {
		return nil, stats.ErrLengthMismatch
	}
	d := len(x[0])
	for i, row := range x {
		if len(row) != d {
			return nil, fmt.Errorf("regress: row %d has %d dims, want %d", i, len(row), d)
		}
	}
	p := d + 1 // coefficients + intercept
	if len(x) < p {
		return nil, ErrUnderdetermined
	}

	// Build the (weighted) normal equations A·c = b where A = XᵀWX and
	// b = XᵀWy with an implicit leading 1-column for the intercept.
	a := make([][]float64, p)
	for i := range a {
		a[i] = make([]float64, p)
	}
	b := make([]float64, p)
	aug := func(row []float64, j int) float64 {
		if j == 0 {
			return 1
		}
		return row[j-1]
	}
	for r := range x {
		wr := 1.0
		if w != nil {
			wr = w[r]
			if wr <= 0 {
				return nil, fmt.Errorf("regress: non-positive weight %v at row %d", wr, r)
			}
		}
		for i := 0; i < p; i++ {
			xi := aug(x[r], i)
			b[i] += wr * xi * y[r]
			for j := i; j < p; j++ {
				a[i][j] += wr * xi * aug(x[r], j)
			}
		}
	}
	for i := 0; i < p; i++ { // mirror the symmetric half
		for j := 0; j < i; j++ {
			a[i][j] = a[j][i]
		}
	}

	coef, err := solve(a, b)
	if err != nil {
		return nil, err
	}
	m := &Model{Intercept: coef[0], Coef: coef[1:]}
	pred := make([]float64, len(x))
	for i, row := range x {
		pred[i] = m.Predict(row)
	}
	r2, err := stats.RSquared(pred, y)
	if err != nil {
		// Zero variance in y: a constant fit is still valid; report R² = 1
		// when residuals vanish, else 0.
		r2 = 0
		if rm, e2 := stats.RMSE(pred, y); e2 == nil && rm < 1e-12 {
			r2 = 1
		}
	}
	m.R2 = r2
	return m, nil
}

// FitSimple fits y = slope*x + intercept and is a convenience wrapper used
// for the one-dimensional sub-operator models.
func FitSimple(x, y []float64) (*Model, error) {
	rows := make([][]float64, len(x))
	for i, v := range x {
		rows[i] = []float64{v}
	}
	return Fit(rows, y)
}

// solve performs Gaussian elimination with partial pivoting on a·w = b.
// a and b are modified in place.
func solve(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	for col := 0; col < n; col++ {
		// Partial pivot: largest magnitude entry in this column.
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(a[pivot][col]) < 1e-12 {
			return nil, ErrSingular
		}
		a[col], a[pivot] = a[pivot], a[col]
		b[col], b[pivot] = b[pivot], b[col]
		inv := 1 / a[col][col]
		for r := col + 1; r < n; r++ {
			f := a[r][col] * inv
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	w := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		s := b[r]
		for c := r + 1; c < n; c++ {
			s -= a[r][c] * w[c]
		}
		w[r] = s / a[r][r]
	}
	return w, nil
}

// TwoSegment is a regime-switching pair of simple linear models split at
// Breakpoint on the x axis: Left applies for x <= Breakpoint, Right beyond.
// It models sub-operators whose behaviour changes qualitatively at a
// threshold, like HashBuild switching from in-memory to spilling.
type TwoSegment struct {
	Breakpoint float64
	Left       stats.Line
	Right      stats.Line
}

// Predict evaluates the appropriate segment at x.
func (t *TwoSegment) Predict(x float64) float64 {
	if x <= t.Breakpoint {
		return t.Left.Eval(x)
	}
	return t.Right.Eval(x)
}

// FitTwoSegment searches candidate breakpoints between x values (which must
// be sorted ascending along with their y pairs) and returns the split that
// minimizes the total sum of squared residuals, fitting an independent OLS
// line on each side. Each side must keep at least two points.
func FitTwoSegment(x, y []float64) (*TwoSegment, error) {
	if len(x) != len(y) {
		return nil, stats.ErrLengthMismatch
	}
	if len(x) < 4 {
		return nil, errors.New("regress: two-segment fit needs at least 4 points")
	}
	for i := 1; i < len(x); i++ {
		if x[i] < x[i-1] {
			return nil, errors.New("regress: two-segment fit requires x sorted ascending")
		}
	}
	best := math.Inf(1)
	var out *TwoSegment
	for split := 2; split <= len(x)-2; split++ {
		left, errL := stats.FitLine(x[:split], y[:split])
		right, errR := stats.FitLine(x[split:], y[split:])
		if errL != nil || errR != nil {
			continue
		}
		sse := 0.0
		for i := 0; i < split; i++ {
			d := left.Eval(x[i]) - y[i]
			sse += d * d
		}
		for i := split; i < len(x); i++ {
			d := right.Eval(x[i]) - y[i]
			sse += d * d
		}
		if sse < best {
			best = sse
			out = &TwoSegment{
				Breakpoint: (x[split-1] + x[split]) / 2,
				Left:       left,
				Right:      right,
			}
		}
	}
	if out == nil {
		return nil, ErrSingular
	}
	return out, nil
}
