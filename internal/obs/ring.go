package obs

import "sync/atomic"

// Ring is a fixed-size lock-free buffer of the most recent events, the same
// shape as trace.Ring: writers claim an ID with one atomic increment and
// publish with one atomic store; readers snapshot without blocking writers.
// Events are immutable once published.
type Ring struct {
	slots []atomic.Pointer[Event]
	next  atomic.Uint64
}

// DefaultRingSize is the event buffer capacity when none is configured.
const DefaultRingSize = 1024

// NewRing builds a ring holding the last n events (n <= 0 selects
// DefaultRingSize).
func NewRing(n int) *Ring {
	if n <= 0 {
		n = DefaultRingSize
	}
	return &Ring{slots: make([]atomic.Pointer[Event], n)}
}

// Record publishes an event, assigning it the next sequence ID (1-based,
// never repeating).
func (r *Ring) Record(ev *Event) {
	if r == nil || ev == nil {
		return
	}
	id := r.next.Add(1)
	ev.ID = id
	r.slots[int((id-1)%uint64(len(r.slots)))].Store(ev)
}

// Count reports how many events were ever recorded.
func (r *Ring) Count() uint64 {
	if r == nil {
		return 0
	}
	return r.next.Load()
}

// Recent returns up to n of the most recent events, newest first (n <= 0
// selects the whole buffer).
func (r *Ring) Recent(n int) []*Event {
	if r == nil {
		return nil
	}
	if n <= 0 || n > len(r.slots) {
		n = len(r.slots)
	}
	newest := r.next.Load()
	out := make([]*Event, 0, n)
	for i := 0; i < n; i++ {
		id := newest - uint64(i)
		if id == 0 {
			break
		}
		ev := r.slots[int((id-1)%uint64(len(r.slots)))].Load()
		// A slot may hold an older or newer event than the one addressed
		// when writers lap the reader; keep only the addressed event so
		// Recent never returns duplicates or out-of-order IDs.
		if ev != nil && ev.ID == id {
			out = append(out, ev)
		}
	}
	return out
}

// Since returns events with ID > after in ascending ID order, at most max
// of them (max <= 0 selects the whole buffer), together with the cursor to
// pass as after on the next call and the number of events in the range that
// were already overwritten before they could be read. The file-sink drainer
// calls this in a loop, so events are lost only when writers lap a whole
// ring between drains — never silently skipped by the max cap.
func (r *Ring) Since(after uint64, max int) (evs []*Event, next uint64, lost uint64) {
	if r == nil {
		return nil, after, 0
	}
	newest := r.next.Load()
	if newest <= after {
		return nil, after, 0
	}
	lo := after + 1
	if span := newest - after; span > uint64(len(r.slots)) {
		lost = span - uint64(len(r.slots))
		lo = newest - uint64(len(r.slots)) + 1
	}
	hi := newest
	if max > 0 && hi-lo+1 > uint64(max) {
		hi = lo + uint64(max) - 1
	}
	evs = make([]*Event, 0, hi-lo+1)
	for id := lo; id <= hi; id++ {
		ev := r.slots[int((id-1)%uint64(len(r.slots)))].Load()
		if ev == nil || ev.ID != id {
			lost++ // overwritten (or not yet published) under the reader
			continue
		}
		evs = append(evs, ev)
	}
	return evs, hi, lost
}
