package obs

import "time"

// Config assembles the whole pipeline.
type Config struct {
	// Events tunes the recorder; a zero SampleRate with no SlowThreshold
	// still captures errors.
	Events RecorderConfig
	// EventLogPath enables the NDJSON file sink when non-empty.
	EventLogPath string
	// EventLogMaxBytes rotates the file sink (<= 0 selects
	// DefaultSinkMaxBytes).
	EventLogMaxBytes int64
	// HistorySize and Step size the time-series ring (<= 0 select
	// DefaultHistorySize / 5 s).
	HistorySize int
	Step        time.Duration
	// Objectives declares the SLOs; empty disables the SLO engine.
	Objectives []Objective
	// Clock is injectable for tests (nil selects the wall clock).
	Clock func() time.Time
}

// Observer bundles the three observability pieces behind one lifecycle.
// Construction wires rings and the recorder; Start (given the cumulative
// source, which needs the fully built serving stack) launches the collector
// and file-sink goroutines; Stop tears both down, flushing the sink.
type Observer struct {
	Rec  *Recorder
	Hist *History
	SLO  *SLO
	Sink *FileSink

	cfg     Config
	col     *Collector
	started bool
}

// New builds an observer. The file sink (when configured) is opened here so
// startup fails fast on an unwritable path, but no goroutines run until
// Start.
func New(cfg Config) (*Observer, error) {
	o := &Observer{
		Rec:  NewRecorder(cfg.Events),
		Hist: NewHistory(cfg.HistorySize, cfg.Step),
		cfg:  cfg,
	}
	if len(cfg.Objectives) > 0 {
		o.SLO = NewSLO(o.Hist, cfg.Objectives)
	}
	if cfg.EventLogPath != "" {
		sink, err := NewFileSink(o.Rec.Ring(), cfg.EventLogPath, cfg.EventLogMaxBytes, 0)
		if err != nil {
			return nil, err
		}
		o.Sink = sink
	}
	return o, nil
}

// Start launches the collector (sampling src) and the file sink.
func (o *Observer) Start(src func() Cumulative) {
	if o == nil || o.started {
		return
	}
	o.started = true
	o.col = NewCollector(src, o.Hist, o.SLO, o.cfg.Step, o.cfg.Clock)
	o.col.Start()
	if o.Sink != nil {
		o.Sink.Start()
	}
}

// Stop halts the collector and flushes/closes the sink. Safe to call when
// Start never ran (the sink goroutine only exists after Start).
func (o *Observer) Stop() {
	if o == nil || !o.started {
		return
	}
	o.started = false
	if o.col != nil {
		o.col.Stop()
		o.col = nil
	}
	if o.Sink != nil {
		o.Sink.Stop()
	}
}

// DefaultObjectives builds the stock objective set from the serve flags:
// availability (target good fraction), p99 latency (threshold seconds; 0
// disables), and estimator q-error (threshold; 0 disables).
func DefaultObjectives(availability float64, latencyP99 time.Duration, qerror float64, fast, slow time.Duration, burnFactor float64) []Objective {
	var out []Objective
	if availability > 0 && availability < 1 {
		out = append(out, Objective{
			Name: "availability", Kind: KindAvailability, Target: availability,
			FastWindow: fast, SlowWindow: slow, BurnFactor: burnFactor,
		})
	}
	if latencyP99 > 0 {
		out = append(out, Objective{
			Name: "latency-p99", Kind: KindLatency, Target: 0.99,
			Threshold:  latencyP99.Seconds(),
			FastWindow: fast, SlowWindow: slow, BurnFactor: burnFactor,
		})
	}
	if qerror > 0 {
		out = append(out, Objective{
			Name: "estimator-qerror", Kind: KindQError, Target: 0.95,
			Threshold:  qerror,
			FastWindow: fast, SlowWindow: slow, BurnFactor: burnFactor,
		})
	}
	return out
}
