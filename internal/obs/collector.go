package obs

import (
	"math"
	"time"

	"intellisphere/internal/metrics"
)

// Cumulative is the monotonic-counter snapshot the collector differentiates
// into per-step rates. The serving layer supplies a source closure building
// one of these from engine/admission stats; the collector owns nothing but
// the differencing.
type Cumulative struct {
	Queries     uint64
	Errors      uint64
	Shed        uint64
	RateLimited uint64
	Retries     uint64
	CacheHits   uint64
	CacheMisses uint64
	// Latency is the end-to-end query latency histogram snapshot; bucket
	// deltas between ticks yield windowed p50/p99.
	Latency metrics.HistogramSnapshot
	// QError is the current mean q-error per "system/operator" key (a
	// gauge, copied into the sample as-is).
	QError map[string]float64
}

// Collector periodically turns Cumulative snapshots into history Samples
// and drives the SLO engine. One background goroutine; Tick is exported so
// tests can step a collector deterministically without the goroutine.
type Collector struct {
	src      func() Cumulative
	hist     *History
	slo      *SLO
	interval time.Duration
	now      func() time.Time

	prev    Cumulative
	prevAt  time.Time
	started bool

	stop chan struct{}
	done chan struct{}
}

// NewCollector builds a collector sampling src every interval into hist and
// evaluating slo (which may be nil) after each sample. A nil clock selects
// the wall clock.
func NewCollector(src func() Cumulative, hist *History, slo *SLO, interval time.Duration, clock func() time.Time) *Collector {
	if clock == nil {
		clock = time.Now
	}
	if interval <= 0 {
		interval = hist.Step()
	}
	return &Collector{
		src:      src,
		hist:     hist,
		slo:      slo,
		interval: interval,
		now:      clock,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// Tick takes one sample at now. The first tick only primes the baseline
// (rates need two points); callers running the background loop never see
// this, tests stepping manually should tick once before asserting.
func (c *Collector) Tick(now time.Time) {
	cur := c.src()
	if !c.started {
		c.started = true
		c.prev, c.prevAt = cur, now
		return
	}
	dt := now.Sub(c.prevAt).Seconds()
	if dt <= 0 {
		dt = c.interval.Seconds()
	}
	s := &Sample{
		Unix:      now.Unix(),
		QPS:       rate(cur.Queries, c.prev.Queries, dt),
		ErrorRate: rate(cur.Errors, c.prev.Errors, dt),
		ShedRate:  rate(cur.Shed+cur.RateLimited, c.prev.Shed+c.prev.RateLimited, dt),
		RetryRate: rate(cur.Retries, c.prev.Retries, dt),
		QError:    cur.QError,
	}
	hits := delta(cur.CacheHits, c.prev.CacheHits)
	lookups := hits + delta(cur.CacheMisses, c.prev.CacheMisses)
	if lookups > 0 {
		s.CacheHitRatio = float64(hits) / float64(lookups)
	}
	s.P50Sec = deltaQuantile(c.prev.Latency, cur.Latency, 0.50)
	s.P99Sec = deltaQuantile(c.prev.Latency, cur.Latency, 0.99)
	c.prev, c.prevAt = cur, now
	c.hist.Append(s)
	if c.slo != nil {
		c.slo.Evaluate(now)
	}
}

// Start launches the background sampling loop.
func (c *Collector) Start() {
	go func() {
		defer close(c.done)
		t := time.NewTicker(c.interval)
		defer t.Stop()
		c.Tick(c.now()) // prime the baseline immediately
		for {
			select {
			case <-c.stop:
				return
			case <-t.C:
				c.Tick(c.now())
			}
		}
	}()
}

// Stop halts the loop and waits for it to exit.
func (c *Collector) Stop() {
	close(c.stop)
	<-c.done
}

// rate is the per-second delta of a monotonic counter (0 on regression,
// which only happens if the source restarts underneath us).
func rate(cur, prev uint64, dt float64) float64 {
	return float64(delta(cur, prev)) / dt
}

func delta(cur, prev uint64) uint64 {
	if cur < prev {
		return 0
	}
	return cur - prev
}

// deltaQuantile estimates a quantile of the observations that landed
// between two cumulative histogram snapshots — the windowed p50/p99 the
// history stores. Buckets are matched by upper bound (the layouts are
// identical for snapshots of one histogram); an empty window yields 0.
func deltaQuantile(prev, cur metrics.HistogramSnapshot, q float64) float64 {
	if len(cur.Buckets) == 0 {
		return 0
	}
	counts := make([]uint64, len(cur.Buckets))
	var total uint64
	for i := range cur.Buckets {
		var p uint64
		if i < len(prev.Buckets) && prev.Buckets[i].UpperBoundSec == cur.Buckets[i].UpperBoundSec {
			p = prev.Buckets[i].Count
		}
		counts[i] = delta(cur.Buckets[i].Count, p)
		total += counts[i]
	}
	overflow := delta(cur.Overflow, prev.Overflow)
	total += overflow
	if total == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(total)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, c := range counts {
		cum += c
		if cum >= target {
			return cur.Buckets[i].UpperBoundSec
		}
	}
	return cur.Buckets[len(cur.Buckets)-1].UpperBoundSec
}
