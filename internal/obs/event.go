// Package obs is the continuous-observability layer of the serving stack:
// a wide-event query log (one structured record per query, head-sampled with
// always-capture for errors and slow queries), an embedded metrics history
// ring (time-series snapshots of the key serving series, queryable without
// an external Prometheus), and an SLO engine evaluating burn-rate alerts
// over that history. Everything is in-process, lock-free on the hot paths,
// and zero-cost when not wired up: the engine holds an atomic pointer to a
// Recorder and emits nothing while it is nil.
package obs

import (
	"fmt"
	"hash/fnv"
)

// Event is one wide query event — the per-query record rich enough to audit
// the cost estimator after the fact (estimated vs actual cost, chosen
// systems, cache verdict) and to debug the serving path (admission outcome,
// retries, degradation, latency, trace correlation). Encoded as one NDJSON
// line by the file sink and served as JSON from /events.
type Event struct {
	// ID is the event's ring sequence number (1-based, monotonic).
	ID uint64 `json:"id"`
	// UnixNano is the event completion time.
	UnixNano int64 `json:"ts_ns"`
	// Kind is the request shape: "query", "batch", or "admission" (a
	// request rejected before reaching the engine).
	Kind string `json:"kind"`
	// Capture says why the event was kept: "head" (head sampling), "error"
	// or "slow" (always-capture rules).
	Capture string `json:"capture"`
	SQL     string `json:"sql,omitempty"`
	// StmtHash is the FNV-1a hash of the statement text, the stable join
	// key for grouping events of one statement shape across log rotations.
	StmtHash string `json:"stmt_hash,omitempty"`
	// Outcome is "ok", "error", "shed", or "rate_limited".
	Outcome string `json:"outcome"`
	Error   string `json:"error,omitempty"`
	// CacheHit records whether the plan came from the plan cache.
	CacheHit bool `json:"cache_hit,omitempty"`
	// Systems lists the distinct remote systems the chosen plan placed
	// steps on.
	Systems []string `json:"systems,omitempty"`
	// EstimatedSec and ActualSec are the optimizer's cost estimate and the
	// measured execution time for the chosen plan.
	EstimatedSec float64 `json:"estimated_sec,omitempty"`
	ActualSec    float64 `json:"actual_sec,omitempty"`
	// LatencySec is end-to-end wall time as the caller saw it.
	LatencySec float64 `json:"latency_sec"`
	// Retries counts step re-attempts beyond the first try.
	Retries int `json:"retries,omitempty"`
	// Degraded marks results produced by a fallback replan that excluded
	// an unavailable system.
	Degraded bool `json:"degraded,omitempty"`
	// TraceID correlates the event to /trace?n=... when the query was
	// traced (0 otherwise).
	TraceID uint64 `json:"trace_id,omitempty"`
}

// StatementHash returns the canonical statement hash used in events:
// FNV-1a 64 of the raw statement text, in fixed-width hex.
func StatementHash(sql string) string {
	h := fnv.New64a()
	h.Write([]byte(sql))
	return fmt.Sprintf("%016x", h.Sum64())
}
