package obs

import (
	"sync"
	"time"
)

// ObjectiveKind selects what an Objective measures.
type ObjectiveKind string

const (
	// KindAvailability burns on the fraction of offered requests that
	// failed or were shed.
	KindAvailability ObjectiveKind = "availability"
	// KindLatency burns on steps whose windowed p99 exceeded Threshold
	// seconds.
	KindLatency ObjectiveKind = "latency"
	// KindQError burns on steps whose worst per-(system,operator) mean
	// q-error exceeded Threshold — the estimator-accuracy SLO.
	KindQError ObjectiveKind = "qerror"
)

// Objective is one declarative SLO evaluated over the history ring with
// multi-window burn-rate alerting (the Google SRE workbook shape): the
// alert fires only when both a fast and a slow window burn error budget
// faster than BurnFactor, so a brief blip (fast window only) stays pending
// and a long slow bleed (slow window only) does not page.
type Objective struct {
	Name string        `json:"name"`
	Kind ObjectiveKind `json:"kind"`
	// Target is the good fraction objective (e.g. 0.999 availability). The
	// error budget is 1-Target; burn rate is bad-fraction / budget.
	Target float64 `json:"target"`
	// Threshold parameterizes latency (seconds of p99) and qerror (mean
	// q-error bound) objectives; unused for availability.
	Threshold float64 `json:"threshold,omitempty"`
	// FastWindow and SlowWindow are the two burn evaluation windows.
	FastWindow time.Duration `json:"-"`
	SlowWindow time.Duration `json:"-"`
	// BurnFactor is the burn-rate multiple that fires the alert (14.4
	// burns a 30-day budget in ~2 days).
	BurnFactor float64 `json:"burn_factor"`
	// ClearAfter is the hysteresis hold: a firing alert resolves only
	// after both windows stay below BurnFactor/2 for this long.
	ClearAfter time.Duration `json:"-"`
}

// Alert states, in escalation order.
const (
	StateInactive = "inactive"
	StatePending  = "pending" // fast window burning, slow window not yet
	StateFiring   = "firing"
	StateResolved = "resolved" // recently cleared after firing
)

// Alert is the externally visible evaluation of one objective — the /slo
// response element and the source of the Prometheus SLO gauges.
type Alert struct {
	Name      string  `json:"name"`
	Kind      string  `json:"kind"`
	Target    float64 `json:"target"`
	Threshold float64 `json:"threshold,omitempty"`
	State     string  `json:"state"`
	// FastBurn and SlowBurn are the current burn-rate multiples over the
	// two windows.
	FastBurn float64 `json:"fast_burn"`
	SlowBurn float64 `json:"slow_burn"`
	// SinceUnix is when the alert entered its current state.
	SinceUnix int64 `json:"since,omitempty"`
	// FiredTotal and ResolvedTotal count lifetime transitions.
	FiredTotal    uint64 `json:"fired_total"`
	ResolvedTotal uint64 `json:"resolved_total"`
	// FastWindowSec/SlowWindowSec/BurnFactor echo the objective's tuning.
	FastWindowSec float64 `json:"fast_window_sec"`
	SlowWindowSec float64 `json:"slow_window_sec"`
	BurnFactor    float64 `json:"burn_factor"`
}

// sloState is one objective's mutable evaluation state.
type sloState struct {
	obj        Objective
	state      string
	since      time.Time
	clearSince time.Time // start of the current below-threshold stretch
	fastBurn   float64
	slowBurn   float64
	fired      uint64
	resolved   uint64
}

// SLO evaluates a set of objectives against the history ring. Evaluate is
// called by the collector after each sample; Snapshot serves /slo. A single
// mutex guards the (tiny) state transitions — evaluation runs once per
// collector step, never on the query path.
type SLO struct {
	hist *History

	mu     sync.Mutex
	states []*sloState
}

// NewSLO builds an evaluator over hist for the given objectives. Objectives
// with a non-positive Target or BurnFactor are dropped.
func NewSLO(hist *History, objectives []Objective) *SLO {
	s := &SLO{hist: hist}
	for _, o := range objectives {
		if o.Target <= 0 || o.Target >= 1 || o.BurnFactor <= 0 {
			continue
		}
		if o.FastWindow <= 0 {
			o.FastWindow = time.Minute
		}
		if o.SlowWindow < o.FastWindow {
			o.SlowWindow = 5 * o.FastWindow
		}
		if o.ClearAfter <= 0 {
			o.ClearAfter = o.FastWindow
		}
		s.states = append(s.states, &sloState{obj: o, state: StateInactive})
	}
	return s
}

// badFraction scores one sample against an objective: the fraction of the
// step's traffic that violated it, in [0, 1]. Idle samples score 0 — no
// traffic burns no budget.
func badFraction(o *Objective, s *Sample) float64 {
	switch o.Kind {
	case KindAvailability:
		offered := s.QPS + s.ShedRate
		if offered <= 0 {
			return 0
		}
		bad := (s.ErrorRate + s.ShedRate) / offered
		if bad > 1 {
			bad = 1
		}
		return bad
	case KindLatency:
		if s.QPS > 0 && s.P99Sec > o.Threshold {
			return 1
		}
	case KindQError:
		if s.MaxQError() > o.Threshold {
			return 1
		}
	}
	return 0
}

// burn averages badFraction over the samples inside window (ending at now)
// and divides by the error budget, yielding the burn-rate multiple: 1 means
// exactly on budget, BurnFactor means burning that many times too fast.
// When the history is younger than the window, the missing span counts as
// good — a freshly started process must accumulate a slow window's worth of
// evidence before a slow-window alert can fire.
func (s *SLO) burn(o *Objective, samples []*Sample, now time.Time, window time.Duration) float64 {
	cutoff := now.Add(-window).Unix()
	var sum float64
	var n int
	for _, sm := range samples {
		if sm.Unix < cutoff {
			break // samples are newest-first
		}
		sum += badFraction(o, sm)
		n++
	}
	if expected := int(window / s.hist.Step()); n < expected {
		n = expected
	}
	if n == 0 {
		return 0
	}
	return (sum / float64(n)) / (1 - o.Target)
}

// Evaluate advances every objective's state machine against the current
// history. Called once per collector tick.
func (s *SLO) Evaluate(now time.Time) {
	if s == nil {
		return
	}
	// One read of the ring covers all objectives: size to the largest
	// slow window.
	var maxWin time.Duration
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, st := range s.states {
		if st.obj.SlowWindow > maxWin {
			maxWin = st.obj.SlowWindow
		}
	}
	if maxWin == 0 {
		return
	}
	samples := s.hist.Recent(int(maxWin/s.hist.Step()) + 1)
	for _, st := range s.states {
		o := &st.obj
		st.fastBurn = s.burn(o, samples, now, o.FastWindow)
		st.slowBurn = s.burn(o, samples, now, o.SlowWindow)
		hot := st.fastBurn >= o.BurnFactor
		firing := hot && st.slowBurn >= o.BurnFactor
		clear := st.fastBurn < o.BurnFactor/2 && st.slowBurn < o.BurnFactor/2
		switch st.state {
		case StateInactive, StateResolved:
			if firing {
				st.state, st.since = StateFiring, now
				st.fired++
			} else if hot {
				st.state, st.since = StatePending, now
			}
		case StatePending:
			if firing {
				st.state, st.since = StateFiring, now
				st.fired++
			} else if !hot {
				st.state, st.since = StateInactive, now
			}
		case StateFiring:
			if clear {
				if st.clearSince.IsZero() {
					st.clearSince = now
				}
				if now.Sub(st.clearSince) >= o.ClearAfter {
					st.state, st.since = StateResolved, now
					st.resolved++
					st.clearSince = time.Time{}
				}
			} else {
				st.clearSince = time.Time{}
			}
		}
	}
}

// Snapshot reports every objective's current alert view.
func (s *SLO) Snapshot() []Alert {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Alert, 0, len(s.states))
	for _, st := range s.states {
		a := Alert{
			Name:          st.obj.Name,
			Kind:          string(st.obj.Kind),
			Target:        st.obj.Target,
			Threshold:     st.obj.Threshold,
			State:         st.state,
			FastBurn:      st.fastBurn,
			SlowBurn:      st.slowBurn,
			FiredTotal:    st.fired,
			ResolvedTotal: st.resolved,
			FastWindowSec: st.obj.FastWindow.Seconds(),
			SlowWindowSec: st.obj.SlowWindow.Seconds(),
			BurnFactor:    st.obj.BurnFactor,
		}
		if !st.since.IsZero() {
			a.SinceUnix = st.since.Unix()
		}
		out = append(out, a)
	}
	return out
}

// Firing counts objectives currently in the firing state — the /health
// summary figure.
func (s *SLO) Firing() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var n int
	for _, st := range s.states {
		if st.state == StateFiring {
			n++
		}
	}
	return n
}
