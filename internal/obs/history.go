package obs

import (
	"sync/atomic"
	"time"
)

// Sample is one time-series point: the key serving series snapshotted every
// collector step. Rates are per-second over the step; quantiles are
// windowed (computed from histogram bucket deltas within the step), so a
// latency spike shows up immediately instead of being averaged into the
// process lifetime.
type Sample struct {
	Unix int64 `json:"ts"`
	// QPS counts queries the engine accepted (including ones that then
	// failed); ShedRate counts requests rejected at admission, which never
	// reach the engine.
	QPS       float64 `json:"qps"`
	ErrorRate float64 `json:"error_rate"`
	ShedRate  float64 `json:"shed_rate"`
	RetryRate float64 `json:"retry_rate"`
	P50Sec    float64 `json:"p50_sec"`
	P99Sec    float64 `json:"p99_sec"`
	// CacheHitRatio is the plan-cache hit fraction within the step (NaN-free:
	// 0 when the step had no lookups).
	CacheHitRatio float64 `json:"cache_hit_ratio"`
	// QError carries the current mean q-error per "system/operator" key —
	// a gauge passed through from the accuracy trackers, not a delta.
	QError map[string]float64 `json:"q_error,omitempty"`
}

// MaxQError returns the worst per-(system,operator) mean q-error in the
// sample (0 when no accuracy observations exist).
func (s *Sample) MaxQError() float64 {
	var max float64
	for _, v := range s.QError {
		if v > max {
			max = v
		}
	}
	return max
}

// History is a fixed-size lock-free time-series ring of Samples, the
// embedded store behind /history and the SLO engine. Same publication
// discipline as the event ring: one atomic increment claims a slot, one
// atomic store publishes, readers never block the writer.
type History struct {
	step  time.Duration
	slots []atomic.Pointer[Sample]
	next  atomic.Uint64
}

// DefaultHistorySize is the sample capacity when none is configured — at
// the default 5 s step this holds 90 minutes of history.
const DefaultHistorySize = 1080

// NewHistory builds a ring holding n samples taken every step (n <= 0
// selects DefaultHistorySize).
func NewHistory(n int, step time.Duration) *History {
	if n <= 0 {
		n = DefaultHistorySize
	}
	if step <= 0 {
		step = 5 * time.Second
	}
	return &History{step: step, slots: make([]atomic.Pointer[Sample], n)}
}

// Step reports the collector interval samples are taken at.
func (h *History) Step() time.Duration {
	if h == nil {
		return 0
	}
	return h.step
}

// Append publishes one sample.
func (h *History) Append(s *Sample) {
	if h == nil || s == nil {
		return
	}
	id := h.next.Add(1)
	h.slots[int((id-1)%uint64(len(h.slots)))].Store(s)
}

// Count reports how many samples were ever appended.
func (h *History) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.next.Load()
}

// Recent returns up to n of the most recent samples, newest first (n <= 0
// selects the whole buffer).
func (h *History) Recent(n int) []*Sample {
	if h == nil {
		return nil
	}
	if n <= 0 || n > len(h.slots) {
		n = len(h.slots)
	}
	newest := h.next.Load()
	out := make([]*Sample, 0, n)
	for i := 0; i < n; i++ {
		id := newest - uint64(i)
		if id == 0 {
			break
		}
		s := h.slots[int((id-1)%uint64(len(h.slots)))].Load()
		if s != nil {
			out = append(out, s)
		}
	}
	return out
}

// Window returns the samples covering the trailing window ending at now,
// oldest first, downsampled so consecutive points are at least step apart
// (step <= the base step returns every sample). This is the /history
// response body.
func (h *History) Window(now time.Time, window, step time.Duration) []*Sample {
	if h == nil || window <= 0 {
		return nil
	}
	n := int(window/h.step) + 1
	recent := h.Recent(n)
	cutoff := now.Add(-window).Unix()
	// recent is newest-first; reverse into oldest-first while filtering.
	asc := make([]*Sample, 0, len(recent))
	for i := len(recent) - 1; i >= 0; i-- {
		if recent[i].Unix >= cutoff {
			asc = append(asc, recent[i])
		}
	}
	if step <= h.step {
		return asc
	}
	gap := int64(step / time.Second)
	out := asc[:0]
	var last int64
	for i, s := range asc {
		if i == 0 || s.Unix-last >= gap {
			out = append(out, s)
			last = s.Unix
		}
	}
	return out
}
