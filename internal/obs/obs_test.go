package obs

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"intellisphere/internal/metrics"
)

func TestRingRecordRecent(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 6; i++ {
		r.Record(&Event{Kind: "query"})
	}
	if got := r.Count(); got != 6 {
		t.Fatalf("Count = %d, want 6", got)
	}
	recent := r.Recent(0)
	if len(recent) != 4 {
		t.Fatalf("Recent returned %d events, want 4", len(recent))
	}
	for i, ev := range recent {
		if want := uint64(6 - i); ev.ID != want {
			t.Fatalf("recent[%d].ID = %d, want %d", i, ev.ID, want)
		}
	}
}

func TestRingSinceCursor(t *testing.T) {
	r := NewRing(8)
	for i := 0; i < 5; i++ {
		r.Record(&Event{})
	}
	evs, next, lost := r.Since(0, 3)
	if len(evs) != 3 || next != 3 || lost != 0 {
		t.Fatalf("Since(0,3) = %d evs, next %d, lost %d; want 3, 3, 0", len(evs), next, lost)
	}
	evs, next, lost = r.Since(next, 0)
	if len(evs) != 2 || next != 5 || lost != 0 {
		t.Fatalf("Since(3,0) = %d evs, next %d, lost %d; want 2, 5, 0", len(evs), next, lost)
	}
	// Lap the ring: 10 more events into 8 slots starting from cursor 5
	// loses the two oldest.
	for i := 0; i < 10; i++ {
		r.Record(&Event{})
	}
	evs, next, lost = r.Since(next, 0)
	if len(evs) != 8 || next != 15 || lost != 2 {
		t.Fatalf("lapped Since = %d evs, next %d, lost %d; want 8, 15, 2", len(evs), next, lost)
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].ID != evs[i-1].ID+1 {
			t.Fatalf("Since IDs not ascending: %d then %d", evs[i-1].ID, evs[i].ID)
		}
	}
}

// TestRingConcurrent exercises the event ring under -race: writers lapping
// the buffer while readers snapshot and a drainer follows the cursor.
func TestRingConcurrent(t *testing.T) {
	r := NewRing(64)
	const writers = 4
	const perWriter = 2000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				r.Record(&Event{Kind: "query", LatencySec: float64(i)})
			}
		}()
	}
	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(2)
	go func() { // snapshot reader
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			recent := r.Recent(0)
			for i := 1; i < len(recent); i++ {
				if recent[i].ID >= recent[i-1].ID {
					t.Errorf("Recent not strictly descending: %d then %d", recent[i-1].ID, recent[i].ID)
					return
				}
			}
		}
	}()
	go func() { // cursor drainer
		defer readers.Done()
		var cursor uint64
		for {
			select {
			case <-stop:
				return
			default:
			}
			evs, next, _ := r.Since(cursor, 128)
			for i := 1; i < len(evs); i++ {
				if evs[i].ID <= evs[i-1].ID {
					t.Errorf("Since not ascending: %d then %d", evs[i-1].ID, evs[i].ID)
					return
				}
			}
			cursor = next
		}
	}()
	wg.Wait()
	close(stop)
	readers.Wait()
	if got := r.Count(); got != writers*perWriter {
		t.Fatalf("Count = %d, want %d", got, writers*perWriter)
	}
}

// TestHistoryConcurrent exercises the history ring under -race: one
// appender (the collector is single-goroutine by design) against snapshot
// and window readers.
func TestHistoryConcurrent(t *testing.T) {
	h := NewHistory(32, time.Second)
	base := time.Unix(1_700_000_000, 0)
	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(2)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			h.Recent(0)
		}
	}()
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			h.Window(base.Add(time.Hour), time.Hour, 2*time.Second)
		}
	}()
	for i := 0; i < 5000; i++ {
		h.Append(&Sample{Unix: base.Add(time.Duration(i) * time.Second).Unix(), QPS: float64(i)})
	}
	close(stop)
	readers.Wait()
	if got := h.Count(); got != 5000 {
		t.Fatalf("Count = %d, want 5000", got)
	}
}

func TestHistoryWindow(t *testing.T) {
	h := NewHistory(100, time.Second)
	base := time.Unix(1_700_000_000, 0)
	for i := 0; i < 60; i++ {
		h.Append(&Sample{Unix: base.Add(time.Duration(i) * time.Second).Unix()})
	}
	now := base.Add(59 * time.Second)
	full := h.Window(now, 30*time.Second, 0)
	if len(full) == 0 || len(full) > 31 {
		t.Fatalf("window returned %d samples, want ~30", len(full))
	}
	for i := 1; i < len(full); i++ {
		if full[i].Unix <= full[i-1].Unix {
			t.Fatalf("window not ascending at %d", i)
		}
	}
	coarse := h.Window(now, 30*time.Second, 10*time.Second)
	if len(coarse) < 3 || len(coarse) > 4 {
		t.Fatalf("10s-step window returned %d samples, want 3-4", len(coarse))
	}
}

func TestRecorderSampling(t *testing.T) {
	r := NewRecorder(RecorderConfig{SampleRate: 0.25, SlowThreshold: 100 * time.Millisecond, RingSize: 16})
	if capture, ok := r.Sample(true, time.Millisecond); !ok || capture != "error" {
		t.Fatalf("error query: capture %q ok %v, want error/true", capture, ok)
	}
	if capture, ok := r.Sample(false, 200*time.Millisecond); !ok || capture != "slow" {
		t.Fatalf("slow query: capture %q ok %v, want slow/true", capture, ok)
	}
	var head int
	for i := 0; i < 400; i++ {
		if _, ok := r.Sample(false, time.Millisecond); ok {
			head++
		}
	}
	if head != 100 {
		t.Fatalf("head-sampled %d of 400 at rate 0.25, want exactly 100", head)
	}
	// Nil recorder: every call is a no-op miss.
	var nilRec *Recorder
	if _, ok := nilRec.Sample(true, time.Hour); ok {
		t.Fatal("nil recorder sampled")
	}
	nilRec.Observe(time.Second, 1)
	nilRec.Record(&Event{})
}

func TestRecorderZeroRateStillCapturesErrors(t *testing.T) {
	r := NewRecorder(RecorderConfig{SampleRate: 0})
	if _, ok := r.Sample(false, time.Millisecond); ok {
		t.Fatal("rate 0 captured an ordinary query")
	}
	if capture, ok := r.Sample(true, time.Millisecond); !ok || capture != "error" {
		t.Fatal("rate 0 dropped an error query")
	}
}

// collectorSource fabricates a cumulative series: qps queries/step with
// errs failures/step and a latency histogram fed lat per query.
type collectorSource struct {
	mu      sync.Mutex
	c       Cumulative
	latHist *metrics.Histogram
}

func newCollectorSource() *collectorSource {
	return &collectorSource{latHist: metrics.NewLatencyHistogram()}
}

func (cs *collectorSource) step(queries, errors uint64, lat time.Duration) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	cs.c.Queries += queries
	cs.c.Errors += errors
	for i := uint64(0); i < queries; i++ {
		cs.latHist.Observe(lat)
	}
}

func (cs *collectorSource) snapshot() Cumulative {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	c := cs.c
	c.Latency = cs.latHist.Snapshot()
	return c
}

func TestCollectorRatesAndQuantiles(t *testing.T) {
	src := newCollectorSource()
	h := NewHistory(64, time.Second)
	col := NewCollector(src.snapshot, h, nil, time.Second, nil)
	now := time.Unix(1_700_000_000, 0)
	col.Tick(now) // prime
	src.step(100, 10, 2*time.Millisecond)
	now = now.Add(time.Second)
	col.Tick(now)
	recent := h.Recent(1)
	if len(recent) != 1 {
		t.Fatalf("history has %d samples, want 1", len(recent))
	}
	s := recent[0]
	if s.QPS != 100 || s.ErrorRate != 10 {
		t.Fatalf("QPS %v ErrorRate %v, want 100/10", s.QPS, s.ErrorRate)
	}
	if s.P99Sec < 2e-3 || s.P99Sec > 8e-3 {
		t.Fatalf("P99Sec = %v, want a small bucket bound covering 2ms", s.P99Sec)
	}
	// Next window is slow: the windowed p99 must jump even though the
	// lifetime histogram is dominated by fast observations.
	src.step(50, 0, 400*time.Millisecond)
	now = now.Add(time.Second)
	col.Tick(now)
	s = h.Recent(1)[0]
	if s.P99Sec < 0.4 {
		t.Fatalf("windowed P99Sec = %v after slow step, want >= 0.4", s.P99Sec)
	}
}

func TestSLOFiringAndResolution(t *testing.T) {
	h := NewHistory(256, time.Second)
	slo := NewSLO(h, []Objective{{
		Name: "availability", Kind: KindAvailability, Target: 0.9,
		FastWindow: 5 * time.Second, SlowWindow: 15 * time.Second,
		BurnFactor: 2, ClearAfter: 3 * time.Second,
	}})
	now := time.Unix(1_700_000_000, 0)
	tick := func(errRate float64) {
		now = now.Add(time.Second)
		h.Append(&Sample{Unix: now.Unix(), QPS: 100, ErrorRate: errRate})
		slo.Evaluate(now)
	}
	state := func() string { return slo.Snapshot()[0].State }

	for i := 0; i < 5; i++ {
		tick(0)
	}
	if got := state(); got != StateInactive {
		t.Fatalf("healthy traffic: state %q, want inactive", got)
	}
	// 100% errors: bad fraction 1, budget 0.1, burn 10 >= factor 2. The
	// fast window saturates first (pending), then the slow window follows.
	sawPending := false
	for i := 0; i < 20 && state() != StateFiring; i++ {
		tick(100)
		if state() == StatePending {
			sawPending = true
		}
	}
	if got := state(); got != StateFiring {
		t.Fatalf("sustained errors: state %q, want firing", got)
	}
	if !sawPending {
		t.Fatal("alert skipped the pending state")
	}
	if slo.Firing() != 1 {
		t.Fatalf("Firing() = %d, want 1", slo.Firing())
	}
	// Recovery: burn decays below factor/2 in both windows, then the
	// hysteresis hold must elapse before the alert resolves.
	for i := 0; i < 40 && state() != StateResolved; i++ {
		tick(0)
	}
	if got := state(); got != StateResolved {
		t.Fatalf("after recovery: state %q, want resolved", got)
	}
	snap := slo.Snapshot()[0]
	if snap.FiredTotal != 1 || snap.ResolvedTotal != 1 {
		t.Fatalf("fired %d resolved %d, want 1/1", snap.FiredTotal, snap.ResolvedTotal)
	}
}

func TestSLOIdleDoesNotBurn(t *testing.T) {
	h := NewHistory(64, time.Second)
	slo := NewSLO(h, []Objective{{
		Name: "availability", Kind: KindAvailability, Target: 0.99,
		FastWindow: 3 * time.Second, SlowWindow: 9 * time.Second, BurnFactor: 2,
	}})
	now := time.Unix(1_700_000_000, 0)
	for i := 0; i < 20; i++ {
		now = now.Add(time.Second)
		h.Append(&Sample{Unix: now.Unix()}) // zero traffic
		slo.Evaluate(now)
	}
	if got := slo.Snapshot()[0].State; got != StateInactive {
		t.Fatalf("idle process: state %q, want inactive", got)
	}
}

func TestFileSinkDrainAndRotate(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "events.ndjson")
	ring := NewRing(256)
	sink, err := NewFileSink(ring, path, 2048, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	sink.Start()
	for i := 0; i < 100; i++ {
		ring.Record(&Event{Kind: "query", SQL: "SELECT a1 FROM t WHERE a1 < 100", LatencySec: 0.001})
	}
	deadline := time.Now().Add(2 * time.Second)
	for sink.Stats().Written < 100 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	sink.Stop()
	st := sink.Stats()
	if st.Written != 100 {
		t.Fatalf("written %d, want 100", st.Written)
	}
	if st.Rotations == 0 {
		t.Fatal("expected at least one rotation at 2 KiB max size")
	}
	// Both the live file and the rotation must be whole NDJSON lines.
	var lines int
	for _, p := range []string{path, path + ".1"} {
		f, err := os.Open(p)
		if err != nil {
			t.Fatalf("open %s: %v", p, err)
		}
		sc := bufio.NewScanner(f)
		for sc.Scan() {
			var ev Event
			if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
				t.Fatalf("%s: bad line %q: %v", p, sc.Text(), err)
			}
			lines++
		}
		f.Close()
	}
	if lines == 0 {
		t.Fatal("no event lines on disk")
	}
}

func TestStatementHashStable(t *testing.T) {
	a := StatementHash("SELECT 1")
	if a != StatementHash("SELECT 1") {
		t.Fatal("hash not deterministic")
	}
	if len(a) != 16 {
		t.Fatalf("hash %q not 16 hex chars", a)
	}
	if a == StatementHash("SELECT 2") {
		t.Fatal("distinct statements collided (astronomically unlikely)")
	}
}
