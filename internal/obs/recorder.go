package obs

import (
	"math"
	"sync/atomic"
	"time"

	"intellisphere/internal/metrics"
)

// RecorderConfig sizes and tunes a Recorder.
type RecorderConfig struct {
	// SampleRate is the head-sampling rate in [0, 1]: the fraction of
	// ordinary (successful, fast) queries captured as events. Errors and
	// slow queries are always captured regardless. 1 captures everything;
	// 0 captures only errors and slow queries.
	SampleRate float64
	// SlowThreshold marks a query slow (always captured) when its latency
	// reaches it; <= 0 disables the slow rule.
	SlowThreshold time.Duration
	// RingSize is the in-memory event buffer capacity (<= 0 selects
	// DefaultRingSize).
	RingSize int
}

// Recorder is the engine-facing half of the event pipeline: it decides
// which queries become events (Sample), stamps them into the ring (Record),
// and owns the end-to-end query latency histogram every query observes into
// (Observe) — the series the history collector and the /metrics/prom
// exemplars are built from.
//
// All methods are nil-receiver no-ops, so call sites can hold a possibly-nil
// *Recorder without branching.
type Recorder struct {
	ring *Ring
	// Latency is the end-to-end query latency histogram (all queries, not
	// just sampled ones), with exemplars for traced queries.
	Latency *metrics.Histogram

	every     uint64 // capture 1 in every N ordinary queries; 0 = never
	slowNanos int64

	seq      atomic.Uint64 // head-sampling counter
	captured metrics.Counter
	errors   metrics.Counter
	slow     metrics.Counter
	skipped  metrics.Counter
}

// NewRecorder builds a recorder. SampleRate is clamped to [0, 1] and
// converted to a 1-in-N counter gate (rate 0.001 → every 1000th query), so
// the skip path costs one atomic increment and no floating point.
func NewRecorder(cfg RecorderConfig) *Recorder {
	r := &Recorder{
		ring:    NewRing(cfg.RingSize),
		Latency: metrics.NewLatencyHistogram(),
	}
	rate := cfg.SampleRate
	switch {
	case rate >= 1:
		r.every = 1
	case rate > 0:
		r.every = uint64(math.Round(1 / rate))
	}
	if cfg.SlowThreshold > 0 {
		r.slowNanos = cfg.SlowThreshold.Nanoseconds()
	}
	return r
}

// Sample decides whether a finished query should become an event, returning
// the capture reason ("error", "slow", or "head") and whether to capture.
// Callers check ok before building the Event, so skipped queries allocate
// nothing.
func (r *Recorder) Sample(failed bool, latency time.Duration) (capture string, ok bool) {
	if r == nil {
		return "", false
	}
	if failed {
		r.errors.Inc()
		return "error", true
	}
	if r.slowNanos > 0 && latency.Nanoseconds() >= r.slowNanos {
		r.slow.Inc()
		return "slow", true
	}
	if r.every > 0 && r.seq.Add(1)%r.every == 0 {
		return "head", true
	}
	r.skipped.Inc()
	return "", false
}

// Observe feeds the end-to-end latency histogram, pinning an exemplar when
// the query was traced.
func (r *Recorder) Observe(latency time.Duration, traceID uint64) {
	if r == nil {
		return
	}
	r.Latency.ObserveExemplar(latency, traceID)
}

// Record publishes an event to the ring (assigning its ID) and counts it.
func (r *Recorder) Record(ev *Event) {
	if r == nil || ev == nil {
		return
	}
	r.captured.Inc()
	r.ring.Record(ev)
}

// Ring exposes the event buffer for the /events endpoint and the file sink.
func (r *Recorder) Ring() *Ring {
	if r == nil {
		return nil
	}
	return r.ring
}

// LatencySnapshot captures the query latency histogram (nil-safe; a zero
// snapshot when no recorder is attached).
func (r *Recorder) LatencySnapshot() metrics.HistogramSnapshot {
	if r == nil {
		return metrics.HistogramSnapshot{}
	}
	return r.Latency.Snapshot()
}

// RecorderStats is the recorder's own health counters, exported on
// /metrics and /metrics/prom.
type RecorderStats struct {
	Captured uint64 `json:"captured"`
	Errors   uint64 `json:"errors"`
	Slow     uint64 `json:"slow"`
	Skipped  uint64 `json:"skipped"`
	// BufferSeq is the newest ring sequence number.
	BufferSeq uint64 `json:"buffer_seq"`
}

// Stats reports capture counters.
func (r *Recorder) Stats() RecorderStats {
	if r == nil {
		return RecorderStats{}
	}
	return RecorderStats{
		Captured:  r.captured.Value(),
		Errors:    r.errors.Value(),
		Slow:      r.slow.Value(),
		Skipped:   r.skipped.Value(),
		BufferSeq: r.ring.Count(),
	}
}
