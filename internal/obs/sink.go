package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"intellisphere/internal/metrics"
)

// FileSink drains the event ring to a size-rotated NDJSON file. The hot
// path only stores into the ring; a single background goroutine follows the
// ring's sequence numbers and appends whole lines, so a crash can tear at
// most the final line (the e2e recovery check tolerates exactly that).
// Events overwritten before the drainer reaches them are counted, never
// blocked on.
type FileSink struct {
	path     string
	maxBytes int64
	interval time.Duration
	ring     *Ring

	f      *os.File
	size   int64
	cursor uint64

	written   metrics.Counter
	lost      metrics.Counter
	writeErrs metrics.Counter
	rotations metrics.Counter

	stop chan struct{}
	done chan struct{}
}

// sinkDrainBatch bounds one drain pass so a burst cannot pin the drainer
// in a single write loop past its interval.
const sinkDrainBatch = 4096

// DefaultSinkMaxBytes rotates the log at 8 MiB — roughly 20k events.
const DefaultSinkMaxBytes = 8 << 20

// NewFileSink opens (appending) the log at path and returns a sink draining
// ring every interval (<= 0 selects 250 ms). maxBytes <= 0 selects
// DefaultSinkMaxBytes.
func NewFileSink(ring *Ring, path string, maxBytes int64, interval time.Duration) (*FileSink, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("obs: open event log: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("obs: stat event log: %w", err)
	}
	if maxBytes <= 0 {
		maxBytes = DefaultSinkMaxBytes
	}
	if interval <= 0 {
		interval = 250 * time.Millisecond
	}
	return &FileSink{
		path:     path,
		maxBytes: maxBytes,
		interval: interval,
		ring:     ring,
		f:        f,
		size:     st.Size(),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}, nil
}

// Path reports where the sink writes.
func (s *FileSink) Path() string { return s.path }

// Start launches the drain loop.
func (s *FileSink) Start() {
	go func() {
		defer close(s.done)
		t := time.NewTicker(s.interval)
		defer t.Stop()
		for {
			select {
			case <-s.stop:
				s.drain() // final drain so a clean shutdown loses nothing
				s.f.Close()
				return
			case <-t.C:
				s.drain()
			}
		}
	}()
}

// Stop drains once more, closes the file, and waits for the loop to exit.
func (s *FileSink) Stop() {
	close(s.stop)
	<-s.done
}

// drain appends every ring event past the cursor as one JSON line each,
// rotating when the file exceeds maxBytes.
func (s *FileSink) drain() {
	for {
		evs, next, lost := s.ring.Since(s.cursor, sinkDrainBatch)
		s.cursor = next
		if lost > 0 {
			s.lost.Add(lost)
		}
		if len(evs) == 0 {
			return
		}
		for _, ev := range evs {
			if s.size >= s.maxBytes {
				s.rotate()
			}
			line, err := json.Marshal(ev)
			if err != nil {
				s.writeErrs.Inc()
				continue
			}
			line = append(line, '\n')
			n, err := s.f.Write(line)
			s.size += int64(n)
			if err != nil {
				s.writeErrs.Inc()
			} else {
				s.written.Inc()
			}
		}
		if len(evs) < sinkDrainBatch {
			return
		}
	}
}

// rotate moves the live file to path+".1" (replacing any previous rotation)
// and reopens a fresh log. On rename failure the file is truncated in place
// instead, so the sink never grows without bound.
func (s *FileSink) rotate() {
	s.f.Close()
	if err := os.Rename(s.path, s.path+".1"); err != nil {
		os.Truncate(s.path, 0)
	}
	f, err := os.OpenFile(s.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		// Reopen failed (disk gone?): keep a sink writing to /dev/null
		// semantics by reopening the old descriptor path next drain.
		f, _ = os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	}
	s.f = f
	s.size = 0
	s.rotations.Inc()
}

// SinkStats is the sink's health counters.
type SinkStats struct {
	Written   uint64 `json:"written"`
	Lost      uint64 `json:"lost"`
	WriteErrs uint64 `json:"write_errs"`
	Rotations uint64 `json:"rotations"`
}

// Stats reports drain counters.
func (s *FileSink) Stats() SinkStats {
	if s == nil {
		return SinkStats{}
	}
	return SinkStats{
		Written:   s.written.Value(),
		Lost:      s.lost.Value(),
		WriteErrs: s.writeErrs.Value(),
		Rotations: s.rotations.Value(),
	}
}
