package sqlparse

import (
	"strings"
	"testing"
	"testing/quick"
)

func mustParse(t *testing.T, sql string) *SelectStmt {
	t.Helper()
	stmt, err := Parse(sql)
	if err != nil {
		t.Fatalf("Parse(%q): %v", sql, err)
	}
	return stmt
}

func TestParseSimpleSelect(t *testing.T) {
	stmt := mustParse(t, "SELECT a1, a5 FROM t1")
	if len(stmt.Items) != 2 || stmt.Items[0].Col.Column != "a1" {
		t.Errorf("items = %+v", stmt.Items)
	}
	if stmt.From.Name != "t1" || stmt.Join() != nil || stmt.Where != nil || stmt.GroupBy != nil {
		t.Errorf("stmt = %+v", stmt)
	}
}

func TestParseStar(t *testing.T) {
	stmt := mustParse(t, "select * from t1")
	if len(stmt.Items) != 1 || !stmt.Items[0].Star {
		t.Errorf("items = %+v", stmt.Items)
	}
}

func TestParseCaseInsensitiveKeywords(t *testing.T) {
	stmt := mustParse(t, "select a1 from t1 where a1 < 10 group by a1")
	if len(stmt.Where) != 1 || len(stmt.GroupBy) != 1 {
		t.Errorf("stmt = %+v", stmt)
	}
}

func TestParseJoinFig10(t *testing.T) {
	// The exact workload query shape of Figure 10.
	sql := "SELECT r.a1, s.a1 FROM t80000000_1000 r JOIN t1000000_100 s ON r.a1 = s.a1 WHERE r.a1 + s.z < 500000"
	stmt := mustParse(t, sql)
	if stmt.From.Binding() != "r" || stmt.Join() == nil {
		t.Fatalf("stmt = %+v", stmt)
	}
	j := stmt.Join()
	if j.Table.Name != "t1000000_100" || j.Table.Binding() != "s" {
		t.Errorf("join table = %+v", j.Table)
	}
	if j.Left.String() != "r.a1" || j.Right.String() != "s.a1" {
		t.Errorf("join condition = %s = %s", j.Left, j.Right)
	}
	if len(stmt.Where) != 1 {
		t.Fatalf("where = %+v", stmt.Where)
	}
	p := stmt.Where[0]
	if p.Op != "<" || p.Value != 500000 {
		t.Errorf("predicate = %+v", p)
	}
	cols := p.Left.Columns()
	if len(cols) != 2 || cols[0].String() != "r.a1" || cols[1].String() != "s.z" {
		t.Errorf("predicate columns = %v", cols)
	}
}

func TestParseAggregation(t *testing.T) {
	stmt := mustParse(t, "SELECT a5, SUM(a1), COUNT(*), AVG(a1 + 2) FROM t GROUP BY a5")
	if !stmt.HasAggregates() {
		t.Fatal("aggregates not detected")
	}
	if stmt.Items[1].Agg != AggSum || stmt.Items[2].Agg != AggCount || stmt.Items[3].Agg != AggAvg {
		t.Errorf("items = %+v", stmt.Items)
	}
	if len(stmt.GroupBy) != 1 || stmt.GroupBy[0].Column != "a5" {
		t.Errorf("group by = %+v", stmt.GroupBy)
	}
}

func TestParseMinMax(t *testing.T) {
	stmt := mustParse(t, "SELECT MIN(a1), MAX(a1) FROM t")
	if stmt.Items[0].Agg != AggMin || stmt.Items[1].Agg != AggMax {
		t.Errorf("items = %+v", stmt.Items)
	}
}

func TestParseAliases(t *testing.T) {
	stmt := mustParse(t, "SELECT a1 AS x, SUM(a2) total FROM t1 AS big")
	if stmt.Items[0].Alias != "x" || stmt.Items[1].Alias != "total" {
		t.Errorf("aliases = %+v", stmt.Items)
	}
	if stmt.From.Binding() != "big" {
		t.Errorf("from binding = %q", stmt.From.Binding())
	}
}

func TestParseCrossJoin(t *testing.T) {
	stmt := mustParse(t, "SELECT * FROM a CROSS JOIN b")
	if stmt.Join() == nil || !stmt.Join().Cross {
		t.Fatalf("join = %+v", stmt.Join())
	}
}

func TestParseInnerJoin(t *testing.T) {
	stmt := mustParse(t, "SELECT * FROM a INNER JOIN b ON a.k = b.k")
	if stmt.Join() == nil || stmt.Join().Cross {
		t.Fatalf("join = %+v", stmt.Join())
	}
}

func TestParseMultiplePredicates(t *testing.T) {
	stmt := mustParse(t, "SELECT a1 FROM t WHERE a1 >= 10 AND a2 <> 5 AND a1 - 3 <= 100")
	if len(stmt.Where) != 3 {
		t.Fatalf("where = %+v", stmt.Where)
	}
	if stmt.Where[0].Op != ">=" || stmt.Where[1].Op != "<>" || stmt.Where[2].Op != "<=" {
		t.Errorf("ops = %v %v %v", stmt.Where[0].Op, stmt.Where[1].Op, stmt.Where[2].Op)
	}
	if !stmt.Where[2].Left.Terms[1].Negated {
		t.Error("subtraction not parsed")
	}
}

func TestParseBangEquals(t *testing.T) {
	stmt := mustParse(t, "SELECT a1 FROM t WHERE a1 != 5")
	if stmt.Where[0].Op != "<>" {
		t.Errorf("op = %q, want <>", stmt.Where[0].Op)
	}
}

func TestParseScientificNumbers(t *testing.T) {
	stmt := mustParse(t, "SELECT a1 FROM t WHERE a1 < 1e6 AND a2 > 2.5E-1")
	if stmt.Where[0].Value != 1e6 || stmt.Where[1].Value != 0.25 {
		t.Errorf("values = %v, %v", stmt.Where[0].Value, stmt.Where[1].Value)
	}
}

func TestParseSemicolonTerminator(t *testing.T) {
	mustParse(t, "SELECT a1 FROM t;")
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"UPDATE t SET a = 1",
		"SELECT FROM t",
		"SELECT a1 t",                     // missing FROM
		"SELECT a1 FROM",                  // missing table
		"SELECT a1 FROM t JOIN",           // missing join table
		"SELECT a1 FROM t JOIN u",         // missing ON
		"SELECT a1 FROM t JOIN u ON a",    // missing =
		"SELECT a1 FROM t JOIN u ON a = ", // missing rhs
		"SELECT a1 FROM t WHERE",
		"SELECT a1 FROM t WHERE a1",        // missing operator
		"SELECT a1 FROM t WHERE a1 < ",     // missing literal
		"SELECT a1 FROM t WHERE a1 < a2",   // literal required
		"SELECT a1 FROM t GROUP",           // missing BY
		"SELECT SUM FROM t",                // missing parens
		"SELECT SUM(a1 FROM t",             // missing close paren
		"SELECT a1 FROM t WHERE a1 @ 3",    // bad rune
		"SELECT a1, FROM t",                // dangling comma
		"SELECT a1 FROM t extra junk here", // trailing input
		"SELECT t. FROM t",                 // dangling qualifier
		"SELECT a1 FROM t WHERE a1 ! 3",    // lone bang
	}
	for _, sql := range cases {
		if _, err := Parse(sql); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", sql)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	cases := []string{
		"SELECT a1 FROM t1",
		"SELECT * FROM t1",
		"SELECT r.a1, s.a1 FROM big r JOIN small s ON r.a1 = s.a1 WHERE r.a1 + s.z < 500000",
		"SELECT a5, SUM(a1) AS total FROM t GROUP BY a5",
		"SELECT * FROM a CROSS JOIN b",
		"SELECT a5, a10, COUNT(1) FROM t WHERE a1 >= 7 GROUP BY a5, a10",
	}
	for _, sql := range cases {
		stmt := mustParse(t, sql)
		rendered := stmt.String()
		stmt2, err := Parse(rendered)
		if err != nil {
			t.Fatalf("re-parse of %q (from %q): %v", rendered, sql, err)
		}
		if stmt2.String() != rendered {
			t.Errorf("unstable round trip: %q -> %q", rendered, stmt2.String())
		}
	}
}

func TestExprString(t *testing.T) {
	stmt := mustParse(t, "SELECT a1 FROM t WHERE a1 - 3 + a2 < 10")
	got := stmt.Where[0].Left.String()
	if got != "a1 - 3 + a2" {
		t.Errorf("expr = %q", got)
	}
	// Leading negation.
	stmt = mustParse(t, "SELECT SUM(-a1) FROM t")
	if s := stmt.Items[0].Arg.String(); !strings.HasPrefix(s, "-") {
		t.Errorf("negated expr = %q", s)
	}
}

// Property: rendering any successfully parsed statement re-parses to the
// same rendering (idempotent pretty-printing) for a generated family of
// queries.
func TestRenderReparseProperty(t *testing.T) {
	cols := []string{"a1", "a2", "a5", "z"}
	f := func(c1, c2, selIdx uint8, threshold uint16, group bool) bool {
		col1 := cols[int(c1)%len(cols)]
		col2 := cols[int(c2)%len(cols)]
		sql := "SELECT " + col1
		if group {
			sql += ", SUM(" + col2 + ")"
		}
		sql += " FROM t WHERE " + col1 + " < " + itoa(int(threshold))
		if group {
			sql += " GROUP BY " + col1
		}
		_ = selIdx
		stmt, err := Parse(sql)
		if err != nil {
			return false
		}
		rendered := stmt.String()
		stmt2, err := Parse(rendered)
		if err != nil {
			return false
		}
		return stmt2.String() == rendered
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var digits []byte
	for v > 0 {
		digits = append([]byte{byte('0' + v%10)}, digits...)
		v /= 10
	}
	return string(digits)
}

func TestParseOrderByLimit(t *testing.T) {
	stmt := mustParse(t, "SELECT a1, a5 FROM t WHERE a1 < 100 ORDER BY a5 DESC, a1 ASC LIMIT 10")
	if len(stmt.OrderBy) != 2 {
		t.Fatalf("order by = %+v", stmt.OrderBy)
	}
	if !stmt.OrderBy[0].Desc || stmt.OrderBy[0].Col.Column != "a5" {
		t.Errorf("first key = %+v", stmt.OrderBy[0])
	}
	if stmt.OrderBy[1].Desc || stmt.OrderBy[1].Col.Column != "a1" {
		t.Errorf("second key = %+v", stmt.OrderBy[1])
	}
	if stmt.Limit != 10 {
		t.Errorf("limit = %d", stmt.Limit)
	}
	// Round-trip through String().
	rendered := stmt.String()
	stmt2 := mustParse(t, rendered)
	if stmt2.String() != rendered {
		t.Errorf("unstable round trip: %q vs %q", rendered, stmt2.String())
	}
}

func TestParseOrderByAfterGroupBy(t *testing.T) {
	stmt := mustParse(t, "SELECT a10, SUM(a1) AS total FROM t GROUP BY a10 ORDER BY total DESC LIMIT 5")
	if len(stmt.GroupBy) != 1 || len(stmt.OrderBy) != 1 || stmt.Limit != 5 {
		t.Fatalf("stmt = %+v", stmt)
	}
	if stmt.OrderBy[0].Col.Column != "total" {
		t.Errorf("order key = %+v", stmt.OrderBy[0])
	}
}

func TestParseOrderByLimitErrors(t *testing.T) {
	cases := []string{
		"SELECT a1 FROM t ORDER a1",      // missing BY
		"SELECT a1 FROM t ORDER BY",      // missing column
		"SELECT a1 FROM t LIMIT",         // missing count
		"SELECT a1 FROM t LIMIT x",       // non-numeric
		"SELECT a1 FROM t LIMIT 0",       // non-positive
		"SELECT a1 FROM t LIMIT 2.5",     // non-integer
		"SELECT a1 FROM t ORDER BY a1 5", // trailing junk
	}
	for _, sql := range cases {
		if _, err := Parse(sql); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", sql)
		}
	}
}

// Property: Parse never panics — arbitrary input yields a statement or an
// error, and any statement it does accept re-renders and re-parses.
func TestParseNeverPanicsProperty(t *testing.T) {
	f := func(input string) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Logf("panic on input %q: %v", input, r)
				ok = false
			}
		}()
		stmt, err := Parse(input)
		if err != nil {
			return true
		}
		rendered := stmt.String()
		if _, err := Parse(rendered); err != nil {
			t.Logf("accepted %q but rejected its rendering %q: %v", input, rendered, err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
	// A few adversarial shapes quick.Check is unlikely to generate.
	for _, sql := range []string{
		"SELECT", "SELECT SELECT FROM FROM", "SELECT a1 FROM t WHERE WHERE",
		"SELECT ((((", "SELECT a1 FROM t GROUP BY GROUP", ";;;;",
		"select a1 from t order order", "SELECT a1 FROM t LIMIT LIMIT",
		"SELECT SUM(SUM(a1)) FROM t", "SELECT a1 FROM t WHERE a1 < 1e999",
	} {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("panic on %q: %v", sql, r)
				}
			}()
			_, _ = Parse(sql)
		}()
	}
}

func TestParseMultiJoin(t *testing.T) {
	sql := "SELECT a.a1 FROM ta a JOIN tb b ON a.a1 = b.a1 JOIN tc c ON b.a1 = c.a1 CROSS JOIN td"
	stmt := mustParse(t, sql)
	if len(stmt.Joins) != 3 {
		t.Fatalf("joins = %d, want 3", len(stmt.Joins))
	}
	if stmt.Joins[0].Table.Name != "tb" || stmt.Joins[1].Table.Name != "tc" || !stmt.Joins[2].Cross {
		t.Errorf("joins = %+v", stmt.Joins)
	}
	if stmt.Joins[1].Left.String() != "b.a1" || stmt.Joins[1].Right.String() != "c.a1" {
		t.Errorf("second condition = %s = %s", stmt.Joins[1].Left, stmt.Joins[1].Right)
	}
	// Stable rendering round trip.
	rendered := stmt.String()
	stmt2 := mustParse(t, rendered)
	if stmt2.String() != rendered {
		t.Errorf("round trip: %q vs %q", rendered, stmt2.String())
	}
}
