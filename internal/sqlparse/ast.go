package sqlparse

import (
	"fmt"
	"strings"
)

// ColRef names a column, optionally qualified by a table name or alias.
type ColRef struct {
	Qualifier string // "" when unqualified
	Column    string
}

// String renders the reference in SQL form.
func (c ColRef) String() string {
	if c.Qualifier == "" {
		return c.Column
	}
	return c.Qualifier + "." + c.Column
}

// Term is one additive component of an expression: either a column
// reference or a numeric constant.
type Term struct {
	Col      *ColRef
	Constant float64 // used when Col is nil
	Negated  bool    // subtracted rather than added
}

// Expr is a sum of terms (the grammar the Figure 10 predicates need:
// "r.a1 + s.z").
type Expr struct {
	Terms []Term
}

// String renders the expression in SQL form.
func (e Expr) String() string {
	var b strings.Builder
	for i, t := range e.Terms {
		if i > 0 {
			if t.Negated {
				b.WriteString(" - ")
			} else {
				b.WriteString(" + ")
			}
		} else if t.Negated {
			b.WriteString("-")
		}
		if t.Col != nil {
			b.WriteString(t.Col.String())
		} else {
			fmt.Fprintf(&b, "%g", t.Constant)
		}
	}
	return b.String()
}

// Columns returns every column referenced by the expression.
func (e Expr) Columns() []ColRef {
	var out []ColRef
	for _, t := range e.Terms {
		if t.Col != nil {
			out = append(out, *t.Col)
		}
	}
	return out
}

// Predicate is one conjunct of the WHERE clause: expr OP literal.
type Predicate struct {
	Left  Expr
	Op    string // =, <, <=, >, >=, <>
	Value float64
}

// String renders the predicate in SQL form.
func (p Predicate) String() string {
	return fmt.Sprintf("%s %s %g", p.Left.String(), p.Op, p.Value)
}

// AggFunc enumerates the supported aggregate functions.
type AggFunc string

// Supported aggregates.
const (
	AggNone  AggFunc = ""
	AggSum   AggFunc = "SUM"
	AggCount AggFunc = "COUNT"
	AggAvg   AggFunc = "AVG"
	AggMin   AggFunc = "MIN"
	AggMax   AggFunc = "MAX"
)

// SelectItem is one output column: `*`, a plain column, or an aggregate
// over an additive expression.
type SelectItem struct {
	Star  bool
	Col   ColRef  // plain column when Agg == AggNone and !Star
	Agg   AggFunc // aggregate function, AggNone for plain columns
	Arg   Expr    // aggregate argument
	Alias string
}

// String renders the item in SQL form.
func (s SelectItem) String() string {
	var body string
	switch {
	case s.Star:
		body = "*"
	case s.Agg != AggNone:
		body = fmt.Sprintf("%s(%s)", s.Agg, s.Arg.String())
	default:
		body = s.Col.String()
	}
	if s.Alias != "" {
		body += " AS " + s.Alias
	}
	return body
}

// TableRef names a table with an optional alias.
type TableRef struct {
	Name  string
	Alias string
}

// Binding returns the name the rest of the query uses for this table.
func (t TableRef) Binding() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Name
}

// JoinClause is the optional two-table equi-join (or CROSS JOIN).
type JoinClause struct {
	Table TableRef
	// Left/Right are the equi-join columns; empty for CROSS JOIN.
	Left, Right ColRef
	Cross       bool
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Col  ColRef
	Desc bool
}

// String renders the key.
func (o OrderItem) String() string {
	if o.Desc {
		return o.Col.String() + " DESC"
	}
	return o.Col.String()
}

// SelectStmt is the parsed statement. Limit is 0 when no LIMIT clause was
// given. Joins holds the JOIN clauses in source order (a left-deep chain).
type SelectStmt struct {
	Items   []SelectItem
	From    TableRef
	Joins   []JoinClause
	Where   []Predicate
	GroupBy []ColRef
	OrderBy []OrderItem
	Limit   int64

	// canon is the memoized String rendering. Parse fills it before the
	// statement is published, so the serving path (which keys plan-cache
	// lookups on the canonical text, potentially on every request) reads a
	// field instead of re-rendering the tree. Hand-built statements leave it
	// empty and pay the rendering on each String call.
	canon string
}

// Join returns the first join clause, or nil — a convenience for the common
// two-table case.
func (s *SelectStmt) Join() *JoinClause {
	if len(s.Joins) == 0 {
		return nil
	}
	return &s.Joins[0]
}

// HasAggregates reports whether any select item aggregates.
func (s *SelectStmt) HasAggregates() bool {
	for _, it := range s.Items {
		if it.Agg != AggNone {
			return true
		}
	}
	return false
}

// String renders the statement back to SQL. Statements built by Parse carry
// a memoized rendering (the optimizer keys its plan cache on this text, so
// the hot serving path must not re-render per lookup); hand-built statements
// render on every call.
func (s *SelectStmt) String() string {
	if s.canon != "" {
		return s.canon
	}
	return s.render()
}

// render builds the SQL text from the tree.
func (s *SelectStmt) render() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	for i, it := range s.Items {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(it.String())
	}
	b.WriteString(" FROM " + s.From.Name)
	if s.From.Alias != "" {
		b.WriteString(" " + s.From.Alias)
	}
	for i := range s.Joins {
		j := &s.Joins[i]
		if j.Cross {
			b.WriteString(" CROSS JOIN " + j.Table.Name)
		} else {
			b.WriteString(" JOIN " + j.Table.Name)
		}
		if j.Table.Alias != "" {
			b.WriteString(" " + j.Table.Alias)
		}
		if !j.Cross {
			fmt.Fprintf(&b, " ON %s = %s", j.Left.String(), j.Right.String())
		}
	}
	if len(s.Where) > 0 {
		b.WriteString(" WHERE ")
		for i, p := range s.Where {
			if i > 0 {
				b.WriteString(" AND ")
			}
			b.WriteString(p.String())
		}
	}
	if len(s.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		for i, c := range s.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(c.String())
		}
	}
	if len(s.OrderBy) > 0 {
		b.WriteString(" ORDER BY ")
		for i, o := range s.OrderBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(o.String())
		}
	}
	if s.Limit > 0 {
		fmt.Fprintf(&b, " LIMIT %d", s.Limit)
	}
	return b.String()
}
