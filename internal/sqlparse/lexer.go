// Package sqlparse implements the SQL subset IntelliSphere accepts from
// end-users: single-block SELECT statements with an optional two-table
// equi-join, conjunctive WHERE predicates over additive expressions (the
// Figure 10 workload's "R.a1 + S.z < threshold" trick parses here), GROUP BY,
// and the SUM/COUNT/AVG/MIN/MAX aggregates. The master engine plans these
// across the federation.
package sqlparse

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer output.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokSymbol  // punctuation and operators
	tokKeyword // recognized SQL keywords (normalized upper-case)
)

// token is one lexeme with its source position (1-based column).
type token struct {
	kind tokenKind
	text string
	pos  int
}

// keywords recognized by the parser. Identifiers matching these
// (case-insensitively) are tagged tokKeyword with upper-cased text.
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "JOIN": true, "INNER": true, "ON": true,
	"WHERE": true, "GROUP": true, "BY": true, "AND": true, "AS": true,
	"SUM": true, "COUNT": true, "AVG": true, "MIN": true, "MAX": true,
	"CROSS": true, "ORDER": true, "LIMIT": true, "ASC": true, "DESC": true,
}

// lex tokenizes the input. It returns a descriptive error for any character
// it cannot form into a token.
func lex(input string) ([]token, error) {
	var toks []token
	runes := []rune(input)
	i := 0
	for i < len(runes) {
		r := runes[i]
		switch {
		case unicode.IsSpace(r):
			i++
		case unicode.IsLetter(r) || r == '_':
			start := i
			for i < len(runes) && (unicode.IsLetter(runes[i]) || unicode.IsDigit(runes[i]) || runes[i] == '_') {
				i++
			}
			word := string(runes[start:i])
			upper := strings.ToUpper(word)
			if keywords[upper] {
				toks = append(toks, token{kind: tokKeyword, text: upper, pos: start + 1})
			} else {
				toks = append(toks, token{kind: tokIdent, text: word, pos: start + 1})
			}
		case unicode.IsDigit(r):
			start := i
			seenDot := false
			for i < len(runes) && (unicode.IsDigit(runes[i]) || (runes[i] == '.' && !seenDot)) {
				if runes[i] == '.' {
					seenDot = true
				}
				i++
			}
			// Scientific notation: 1e6, 2.5E-3.
			if i < len(runes) && (runes[i] == 'e' || runes[i] == 'E') {
				j := i + 1
				if j < len(runes) && (runes[j] == '+' || runes[j] == '-') {
					j++
				}
				if j < len(runes) && unicode.IsDigit(runes[j]) {
					i = j
					for i < len(runes) && unicode.IsDigit(runes[i]) {
						i++
					}
				}
			}
			toks = append(toks, token{kind: tokNumber, text: string(runes[start:i]), pos: start + 1})
		case r == '<':
			if i+1 < len(runes) && (runes[i+1] == '=' || runes[i+1] == '>') {
				toks = append(toks, token{kind: tokSymbol, text: string(runes[i : i+2]), pos: i + 1})
				i += 2
			} else {
				toks = append(toks, token{kind: tokSymbol, text: "<", pos: i + 1})
				i++
			}
		case r == '>':
			if i+1 < len(runes) && runes[i+1] == '=' {
				toks = append(toks, token{kind: tokSymbol, text: ">=", pos: i + 1})
				i += 2
			} else {
				toks = append(toks, token{kind: tokSymbol, text: ">", pos: i + 1})
				i++
			}
		case r == '!':
			if i+1 < len(runes) && runes[i+1] == '=' {
				toks = append(toks, token{kind: tokSymbol, text: "<>", pos: i + 1})
				i += 2
			} else {
				return nil, &ParseError{Column: i + 1, msg: fmt.Sprintf("sqlparse: unexpected %q at column %d", r, i+1)}
			}
		case strings.ContainsRune("=+-*,.()", r):
			toks = append(toks, token{kind: tokSymbol, text: string(r), pos: i + 1})
			i++
		case r == ';':
			// Statement terminator: stop lexing.
			i = len(runes)
		default:
			return nil, &ParseError{Column: i + 1, msg: fmt.Sprintf("sqlparse: unexpected %q at column %d", r, i+1)}
		}
	}
	toks = append(toks, token{kind: tokEOF, pos: len(runes) + 1})
	return toks, nil
}
