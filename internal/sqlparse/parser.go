package sqlparse

import (
	"fmt"
	"strconv"
)

// Parse parses one SELECT statement of the supported subset.
func Parse(sql string) (*SelectStmt, error) {
	toks, err := lex(sql)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmt, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	if !p.at(tokEOF, "") {
		return nil, p.errorf("trailing input starting with %q", p.cur().text)
	}
	// Memoize the canonical rendering before the statement escapes: parsed
	// statements are immutable downstream and shared across goroutines (the
	// engine's statement LRU), so the one writer is here, pre-publication.
	stmt.canon = stmt.render()
	return stmt, nil
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) cur() token { return p.toks[p.i] }
func (p *parser) advance()   { p.i++ }
func (p *parser) at(kind tokenKind, text string) bool {
	t := p.cur()
	return t.kind == kind && (text == "" || t.text == text)
}

// ParseError is the typed form of every statement parse and lex failure,
// so callers (the serving layer's error-code classifier above all) can
// recognize bad SQL with errors.As instead of string matching. Error()
// keeps the exact historical message format.
type ParseError struct {
	// Column is the 1-based input column the failure was detected at.
	Column int
	msg    string
}

func (e *ParseError) Error() string { return e.msg }

func (p *parser) errorf(format string, args ...any) error {
	return &ParseError{
		Column: p.cur().pos,
		msg:    fmt.Sprintf("sqlparse: column %d: %s", p.cur().pos, fmt.Sprintf(format, args...)),
	}
}

func (p *parser) expectKeyword(kw string) error {
	if !p.at(tokKeyword, kw) {
		return p.errorf("expected %s, found %q", kw, p.cur().text)
	}
	p.advance()
	return nil
}

func (p *parser) expectSymbol(sym string) error {
	if !p.at(tokSymbol, sym) {
		return p.errorf("expected %q, found %q", sym, p.cur().text)
	}
	p.advance()
	return nil
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	stmt := &SelectStmt{}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		stmt.Items = append(stmt.Items, item)
		if !p.at(tokSymbol, ",") {
			break
		}
		p.advance()
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	from, err := p.parseTableRef()
	if err != nil {
		return nil, err
	}
	stmt.From = from

	for {
		if p.at(tokKeyword, "CROSS") {
			p.advance()
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
			tr, err := p.parseTableRef()
			if err != nil {
				return nil, err
			}
			stmt.Joins = append(stmt.Joins, JoinClause{Table: tr, Cross: true})
			continue
		}
		if p.at(tokKeyword, "INNER") || p.at(tokKeyword, "JOIN") {
			if p.at(tokKeyword, "INNER") {
				p.advance()
			}
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
			tr, err := p.parseTableRef()
			if err != nil {
				return nil, err
			}
			if err := p.expectKeyword("ON"); err != nil {
				return nil, err
			}
			left, err := p.parseColRef()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol("="); err != nil {
				return nil, err
			}
			right, err := p.parseColRef()
			if err != nil {
				return nil, err
			}
			stmt.Joins = append(stmt.Joins, JoinClause{Table: tr, Left: left, Right: right})
			continue
		}
		break
	}

	if p.at(tokKeyword, "WHERE") {
		p.advance()
		for {
			pred, err := p.parsePredicate()
			if err != nil {
				return nil, err
			}
			stmt.Where = append(stmt.Where, pred)
			if !p.at(tokKeyword, "AND") {
				break
			}
			p.advance()
		}
	}

	if p.at(tokKeyword, "GROUP") {
		p.advance()
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			c, err := p.parseColRef()
			if err != nil {
				return nil, err
			}
			stmt.GroupBy = append(stmt.GroupBy, c)
			if !p.at(tokSymbol, ",") {
				break
			}
			p.advance()
		}
	}

	if p.at(tokKeyword, "ORDER") {
		p.advance()
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			c, err := p.parseColRef()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Col: c}
			if p.at(tokKeyword, "DESC") {
				item.Desc = true
				p.advance()
			} else if p.at(tokKeyword, "ASC") {
				p.advance()
			}
			stmt.OrderBy = append(stmt.OrderBy, item)
			if !p.at(tokSymbol, ",") {
				break
			}
			p.advance()
		}
	}

	if p.at(tokKeyword, "LIMIT") {
		p.advance()
		if !p.at(tokNumber, "") {
			return nil, p.errorf("expected row count after LIMIT, found %q", p.cur().text)
		}
		n, err := strconv.ParseInt(p.cur().text, 10, 64)
		if err != nil || n <= 0 {
			return nil, p.errorf("bad LIMIT %q (want a positive integer)", p.cur().text)
		}
		stmt.Limit = n
		p.advance()
	}
	return stmt, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	if p.at(tokSymbol, "*") {
		p.advance()
		return SelectItem{Star: true}, nil
	}
	var item SelectItem
	if t := p.cur(); t.kind == tokKeyword {
		switch AggFunc(t.text) {
		case AggSum, AggCount, AggAvg, AggMin, AggMax:
			item.Agg = AggFunc(t.text)
			p.advance()
			if err := p.expectSymbol("("); err != nil {
				return item, err
			}
			if item.Agg == AggCount && p.at(tokSymbol, "*") {
				p.advance()
				item.Arg = Expr{Terms: []Term{{Constant: 1}}}
			} else {
				expr, err := p.parseExpr()
				if err != nil {
					return item, err
				}
				item.Arg = expr
			}
			if err := p.expectSymbol(")"); err != nil {
				return item, err
			}
		default:
			return item, p.errorf("unexpected keyword %q in select list", t.text)
		}
	} else {
		col, err := p.parseColRef()
		if err != nil {
			return item, err
		}
		item.Col = col
	}
	if p.at(tokKeyword, "AS") {
		p.advance()
		if !p.at(tokIdent, "") {
			return item, p.errorf("expected alias after AS, found %q", p.cur().text)
		}
		item.Alias = p.cur().text
		p.advance()
	} else if p.at(tokIdent, "") {
		item.Alias = p.cur().text
		p.advance()
	}
	return item, nil
}

func (p *parser) parseTableRef() (TableRef, error) {
	if !p.at(tokIdent, "") {
		return TableRef{}, p.errorf("expected table name, found %q", p.cur().text)
	}
	tr := TableRef{Name: p.cur().text}
	p.advance()
	if p.at(tokKeyword, "AS") {
		p.advance()
	}
	if p.at(tokIdent, "") {
		tr.Alias = p.cur().text
		p.advance()
	}
	return tr, nil
}

func (p *parser) parseColRef() (ColRef, error) {
	if !p.at(tokIdent, "") {
		return ColRef{}, p.errorf("expected column reference, found %q", p.cur().text)
	}
	first := p.cur().text
	p.advance()
	if p.at(tokSymbol, ".") {
		p.advance()
		if !p.at(tokIdent, "") {
			return ColRef{}, p.errorf("expected column after %q., found %q", first, p.cur().text)
		}
		col := ColRef{Qualifier: first, Column: p.cur().text}
		p.advance()
		return col, nil
	}
	return ColRef{Column: first}, nil
}

// parseExpr parses a sum of column references and numeric constants.
func (p *parser) parseExpr() (Expr, error) {
	var e Expr
	negate := false
	if p.at(tokSymbol, "-") {
		negate = true
		p.advance()
	}
	for {
		term, err := p.parseTerm()
		if err != nil {
			return e, err
		}
		term.Negated = negate
		e.Terms = append(e.Terms, term)
		switch {
		case p.at(tokSymbol, "+"):
			negate = false
			p.advance()
		case p.at(tokSymbol, "-"):
			negate = true
			p.advance()
		default:
			return e, nil
		}
	}
}

func (p *parser) parseTerm() (Term, error) {
	if p.at(tokNumber, "") {
		v, err := strconv.ParseFloat(p.cur().text, 64)
		if err != nil {
			return Term{}, p.errorf("bad number %q: %v", p.cur().text, err)
		}
		p.advance()
		return Term{Constant: v}, nil
	}
	col, err := p.parseColRef()
	if err != nil {
		return Term{}, err
	}
	return Term{Col: &col}, nil
}

func (p *parser) parsePredicate() (Predicate, error) {
	left, err := p.parseExpr()
	if err != nil {
		return Predicate{}, err
	}
	t := p.cur()
	switch {
	case t.kind == tokSymbol && (t.text == "=" || t.text == "<" || t.text == "<=" ||
		t.text == ">" || t.text == ">=" || t.text == "<>"):
		p.advance()
	default:
		return Predicate{}, p.errorf("expected comparison operator, found %q", t.text)
	}
	op := t.text
	if !p.at(tokNumber, "") {
		return Predicate{}, p.errorf("expected numeric literal after %q, found %q", op, p.cur().text)
	}
	v, err := strconv.ParseFloat(p.cur().text, 64)
	if err != nil {
		return Predicate{}, p.errorf("bad number %q: %v", p.cur().text, err)
	}
	p.advance()
	return Predicate{Left: left, Op: op, Value: v}, nil
}
