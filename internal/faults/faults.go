// Package faults is a deterministic, seedable fault injector for remote
// systems. An Injector wraps a remote.System and perturbs its behaviour —
// transient errors, latency spikes, full outages — at configurable per-op
// rates, drawing from a counter-based seeded PRNG so the same seed yields
// the same fault sequence: chaos tests replay exactly, like every other
// part of the simulator. With zero rates and no outage the injector is a
// transparent passthrough.
package faults

import (
	"fmt"
	"sync"
	"sync/atomic"

	"intellisphere/internal/cluster"
	"intellisphere/internal/metrics"
	"intellisphere/internal/plan"
	"intellisphere/internal/remote"
)

// Kind classifies an injected fault.
type Kind int

// Fault kinds: Transient failures may succeed on retry; Outage failures
// persist until the injector recovers.
const (
	Transient Kind = iota
	Outage
)

// String names the kind.
func (k Kind) String() string {
	if k == Outage {
		return "outage"
	}
	return "transient"
}

// Error is one injected fault. It implements the Temporary/Unavailable
// classification interfaces internal/resilience dispatches on.
type Error struct {
	System string
	Op     string
	Kind   Kind
}

// Error renders the fault.
func (e *Error) Error() string {
	return fmt.Sprintf("faults: injected %s failure on %s/%s", e.Kind, e.System, e.Op)
}

// Temporary reports whether a retry may outlive the fault.
func (e *Error) Temporary() bool { return e.Kind == Transient }

// Unavailable reports whether the system is down for the duration.
func (e *Error) Unavailable() bool { return e.Kind == Outage }

// Rates are per-call fault probabilities.
type Rates struct {
	// Transient is the probability a call fails with a retryable error.
	Transient float64 `json:"transient"`
	// Latency is the probability a successful call's elapsed time is
	// multiplied by LatencyFactor.
	Latency float64 `json:"latency"`
	// LatencyFactor scales spiked calls (default 10).
	LatencyFactor float64 `json:"latency_factor"`
}

// Config tunes one injector.
type Config struct {
	// Seed drives the deterministic fault sequence.
	Seed int64 `json:"seed"`
	// Rates apply to every operation unless overridden per op.
	Rates
	// Ops overrides the rates for specific operations ("join",
	// "aggregation", "scan", "probe").
	Ops map[string]Rates `json:"ops,omitempty"`
}

// Stats counts what the injector has done.
type Stats struct {
	Calls         uint64 `json:"calls"`
	Transients    uint64 `json:"transients"`
	LatencySpikes uint64 `json:"latency_spikes"`
	OutageRejects uint64 `json:"outage_rejects"`
	Down          bool   `json:"down"`
}

// Injector wraps a remote.System with fault injection. It is safe for
// concurrent use; under concurrency the draw sequence is still consumed
// deterministically, though which call receives which draw follows
// scheduling order.
type Injector struct {
	sys  remote.System
	mu   sync.Mutex // guards cfg
	cfg  Config
	seq  atomic.Uint64
	down atomic.Bool

	calls, transients, spikes, rejects metrics.Counter
}

// Injector implements remote.System.
var _ remote.System = (*Injector)(nil)

// Wrap builds an injector around sys.
func Wrap(sys remote.System, cfg Config) *Injector {
	return &Injector{sys: sys, cfg: cfg}
}

// Configure swaps the fault configuration and rewinds the draw sequence, so
// arming an injector after a fault-free phase (e.g. training) replays the
// same sequence as one armed from the start.
func (i *Injector) Configure(cfg Config) {
	i.mu.Lock()
	i.cfg = cfg
	i.mu.Unlock()
	i.seq.Store(0)
}

// SetRates swaps the injector's base rates in place, keeping the seed and
// any per-op overrides, and rewinds the draw sequence like Configure. The
// chaos endpoint uses it to dial faults (e.g. a latency-spike regime that
// drifts a cost model) on a live server.
func (i *Injector) SetRates(r Rates) {
	i.mu.Lock()
	i.cfg.Rates = r
	i.mu.Unlock()
	i.seq.Store(0)
}

// SetOutage forces (or lifts) a full outage: while down, every call fails
// with an unavailable error.
func (i *Injector) SetOutage(down bool) { i.down.Store(down) }

// Down reports whether the injector is simulating an outage.
func (i *Injector) Down() bool { return i.down.Load() }

// Stats snapshots the injector's counters.
func (i *Injector) Stats() Stats {
	return Stats{
		Calls:         i.calls.Value(),
		Transients:    i.transients.Value(),
		LatencySpikes: i.spikes.Value(),
		OutageRejects: i.rejects.Value(),
		Down:          i.down.Load(),
	}
}

// Unwrap returns the wrapped system.
func (i *Injector) Unwrap() remote.System { return i.sys }

// Name delegates to the wrapped system.
func (i *Injector) Name() string { return i.sys.Name() }

// Capabilities delegates to the wrapped system.
func (i *Injector) Capabilities() remote.Capabilities { return i.sys.Capabilities() }

// Cluster delegates to the wrapped system.
func (i *Injector) Cluster() cluster.Config { return i.sys.Cluster() }

// ExecuteJoin runs a join through the fault layer.
func (i *Injector) ExecuteJoin(spec plan.JoinSpec) (remote.Execution, error) {
	return i.call("join", func() (remote.Execution, error) { return i.sys.ExecuteJoin(spec) })
}

// ExecuteAgg runs an aggregation through the fault layer.
func (i *Injector) ExecuteAgg(spec plan.AggSpec) (remote.Execution, error) {
	return i.call("aggregation", func() (remote.Execution, error) { return i.sys.ExecuteAgg(spec) })
}

// ExecuteScan runs a scan through the fault layer.
func (i *Injector) ExecuteScan(spec plan.ScanSpec) (remote.Execution, error) {
	return i.call("scan", func() (remote.Execution, error) { return i.sys.ExecuteScan(spec) })
}

// ExecuteProbe runs a calibration probe through the fault layer.
func (i *Injector) ExecuteProbe(p remote.Probe) (remote.Execution, error) {
	return i.call("probe", func() (remote.Execution, error) { return i.sys.ExecuteProbe(p) })
}

// rates resolves the effective rates for one op.
func (i *Injector) rates(op string) (Rates, int64) {
	i.mu.Lock()
	defer i.mu.Unlock()
	r := i.cfg.Rates
	if o, ok := i.cfg.Ops[op]; ok {
		r = o
	}
	if r.LatencyFactor <= 0 {
		r.LatencyFactor = 10
	}
	return r, i.cfg.Seed
}

// Available reports a full outage as an unavailable error, counting the
// rejection. The engine consults it before using this system as a transfer
// endpoint — a QueryGrid transfer cannot read from or write to a downed
// system even though no operator executes there.
func (i *Injector) Available(op string) error {
	if i.down.Load() {
		i.rejects.Inc()
		return &Error{System: i.sys.Name(), Op: op, Kind: Outage}
	}
	return nil
}

// call applies the fault model around one delegated execution.
func (i *Injector) call(op string, fn func() (remote.Execution, error)) (remote.Execution, error) {
	i.calls.Inc()
	if err := i.Available(op); err != nil {
		return remote.Execution{}, err
	}
	r, seed := i.rates(op)
	if r.Transient > 0 && i.draw(seed) < r.Transient {
		i.transients.Inc()
		return remote.Execution{}, &Error{System: i.sys.Name(), Op: op, Kind: Transient}
	}
	ex, err := fn()
	if err != nil {
		return ex, err
	}
	if r.Latency > 0 && i.draw(seed) < r.Latency {
		i.spikes.Inc()
		ex.ElapsedSec *= r.LatencyFactor
	}
	return ex, nil
}

// draw returns the next uniform [0,1) value in the seeded sequence — a
// splitmix64 finalizer over the atomic draw counter.
func (i *Injector) draw(seed int64) float64 {
	n := i.seq.Add(1)
	v := uint64(seed) + n*0x9e3779b97f4a7c15
	v ^= v >> 30
	v *= 0xbf58476d1ce4e5b9
	v ^= v >> 27
	v *= 0x94d049bb133111eb
	v ^= v >> 31
	return float64(v>>11) / float64(1<<53)
}
