package faults

import (
	"errors"
	"testing"

	"intellisphere/internal/cluster"
	"intellisphere/internal/plan"
	"intellisphere/internal/remote"
	"intellisphere/internal/resilience"
)

func newHive(t *testing.T) remote.System {
	t.Helper()
	h, err := remote.NewHive("hive", cluster.DefaultHive(), remote.Options{Seed: 3, NoiseAmp: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func scanSpec() plan.ScanSpec {
	return plan.ScanSpec{InputRows: 1e6, InputRowSize: 100, Selectivity: 0.5, OutputRowSize: 50}
}

func TestPassthroughWhenQuiet(t *testing.T) {
	h := newHive(t)
	inj := Wrap(h, Config{Seed: 1})
	want, err := h.ExecuteScan(scanSpec())
	if err != nil {
		t.Fatal(err)
	}
	got, err := inj.ExecuteScan(scanSpec())
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("quiet injector perturbed execution: %+v vs %+v", got, want)
	}
	if inj.Name() != "hive" || inj.Capabilities() != h.Capabilities() || inj.Unwrap() != h {
		t.Error("delegation broken")
	}
}

func TestOutage(t *testing.T) {
	inj := Wrap(newHive(t), Config{Seed: 1})
	inj.SetOutage(true)
	_, err := inj.ExecuteJoin(plan.JoinSpec{})
	var fe *Error
	if !errors.As(err, &fe) || fe.Kind != Outage {
		t.Fatalf("outage err = %v", err)
	}
	if !resilience.IsUnavailable(err) || resilience.IsTransient(err) {
		t.Error("outage misclassified")
	}
	if s := inj.Stats(); s.OutageRejects != 1 || !s.Down {
		t.Errorf("stats = %+v", s)
	}
	inj.SetOutage(false)
	if _, err := inj.ExecuteScan(scanSpec()); err != nil {
		t.Errorf("post-recovery call failed: %v", err)
	}
}

func TestTransientRateAndDeterminism(t *testing.T) {
	run := func() (fails int, seq []bool) {
		inj := Wrap(newHive(t), Config{Seed: 42, Rates: Rates{Transient: 0.3}})
		for n := 0; n < 200; n++ {
			_, err := inj.ExecuteScan(scanSpec())
			seq = append(seq, err != nil)
			if err != nil {
				if !resilience.IsTransient(err) {
					t.Fatalf("injected error not transient: %v", err)
				}
				fails++
			}
		}
		return fails, seq
	}
	fails1, seq1 := run()
	fails2, seq2 := run()
	if fails1 != fails2 {
		t.Fatalf("same seed, different fault counts: %d vs %d", fails1, fails2)
	}
	for i := range seq1 {
		if seq1[i] != seq2[i] {
			t.Fatalf("fault sequences diverge at call %d", i)
		}
	}
	// ~30% of 200 calls, generously bounded.
	if fails1 < 30 || fails1 > 90 {
		t.Errorf("transient rate 0.3 produced %d/200 failures", fails1)
	}
	// A different seed produces a different sequence.
	inj := Wrap(newHive(t), Config{Seed: 43, Rates: Rates{Transient: 0.3}})
	diverged := false
	for n := 0; n < 200; n++ {
		_, err := inj.ExecuteScan(scanSpec())
		if (err != nil) != seq1[n] {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Error("different seeds produced identical fault sequences")
	}
}

func TestLatencySpikes(t *testing.T) {
	h := newHive(t)
	base, err := h.ExecuteScan(scanSpec())
	if err != nil {
		t.Fatal(err)
	}
	inj := Wrap(h, Config{Seed: 7, Rates: Rates{Latency: 1, LatencyFactor: 5}})
	got, err := inj.ExecuteScan(scanSpec())
	if err != nil {
		t.Fatal(err)
	}
	if got.ElapsedSec <= base.ElapsedSec*4.9 {
		t.Errorf("spiked elapsed %v not ~5x base %v", got.ElapsedSec, base.ElapsedSec)
	}
	if s := inj.Stats(); s.LatencySpikes != 1 || s.Calls != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestPerOpOverrides(t *testing.T) {
	inj := Wrap(newHive(t), Config{
		Seed:  5,
		Rates: Rates{Transient: 0},
		Ops:   map[string]Rates{"scan": {Transient: 1}},
	})
	if _, err := inj.ExecuteScan(scanSpec()); err == nil {
		t.Error("scan override rate 1 did not fail")
	}
	if _, err := inj.ExecuteProbe(remote.Probe{Target: remote.Sort, Records: 100, RecordSize: 10}); err != nil {
		t.Errorf("probe at base rate 0 failed: %v", err)
	}
}

func TestConfigureRewindsSequence(t *testing.T) {
	cfg := Config{Seed: 11, Rates: Rates{Transient: 0.5}}
	armed := Wrap(newHive(t), cfg)
	var want []bool
	for n := 0; n < 50; n++ {
		_, err := armed.ExecuteScan(scanSpec())
		want = append(want, err != nil)
	}
	// A quiet injector that consumed calls first, then got configured,
	// replays the same sequence.
	late := Wrap(newHive(t), Config{Seed: 11})
	for n := 0; n < 500; n++ {
		late.ExecuteScan(scanSpec())
	}
	late.Configure(cfg)
	for n := 0; n < 50; n++ {
		_, err := late.ExecuteScan(scanSpec())
		if (err != nil) != want[n] {
			t.Fatalf("post-Configure sequence diverges at call %d", n)
		}
	}
}
