package remote

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"intellisphere/internal/plan"
)

// TestNoiseKeyMatchesSprintf pins the append-based key builder and inline
// hash against the original fmt.Sprintf construction, byte for byte and bit
// for bit. The simulators' outputs are deterministic functions of these
// keys, so any drift here silently changes every simulated timing.
func TestNoiseKeyMatchesSprintf(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	rf := func() float64 {
		switch rng.Intn(4) {
		case 0:
			return float64(rng.Int63n(1_000_000_000)) // integral, the common case
		case 1:
			return rng.Float64() // (0,1) selectivities
		case 2:
			return rng.Float64() * 1e12 // large fractional
		default:
			return rng.Float64() * 1e-8 // tiny — exercises e-notation
		}
	}
	for i := 0; i < 2000; i++ {
		join := plan.JoinSpec{
			Left:       plan.TableSide{Rows: rf(), RowSize: rf(), ProjectedSize: rf()},
			Right:      plan.TableSide{Rows: rf(), RowSize: rf(), ProjectedSize: rf()},
			OutputRows: rf(),
		}
		agg := plan.AggSpec{InputRows: rf(), InputRowSize: rf(), OutputRows: rf(), OutputRowSize: rf()}
		scan := plan.ScanSpec{InputRows: rf(), InputRowSize: rf(), Selectivity: rng.Float64(), OutputRowSize: rf()}
		probe := Probe{Target: AllSubOps()[rng.Intn(len(AllSubOps()))], Records: rf(), RecordSize: rf(), BuildBytes: rf()}
		alg := JoinAlgorithm(fmt.Sprintf("sys.alg_%d", rng.Intn(8)))

		// Each case gets a fresh buffer: noiseKey aliases its backing array,
		// so sharing one across cases would overwrite earlier keys.
		kb := func() []byte { return make([]byte, 256) }
		cases := []struct {
			name string
			want string
			got  noiseKey
		}{
			{"rdbms-join", fmt.Sprintf("rdbms-join|%s|%v", alg, join.Dims()),
				newNoiseKey(kb(), "rdbms-join|").str(string(alg)).sep().joinDims(join)},
			{"rdbms-agg", fmt.Sprintf("rdbms-agg|%v", agg.Dims()),
				newNoiseKey(kb(), "rdbms-agg|").aggDims(agg)},
			{"rdbms-scan", fmt.Sprintf("rdbms-scan|%v|%v|%v", scan.InputRows, scan.InputRowSize, scan.Selectivity),
				newNoiseKey(kb(), "rdbms-scan|").float(scan.InputRows).sep().float(scan.InputRowSize).sep().float(scan.Selectivity)},
			{"rdbms-probe", fmt.Sprintf("rdbms-probe|%v|%v|%v", probe.Target, probe.Records, probe.RecordSize),
				newNoiseKey(kb(), "rdbms-probe|").str(probe.Target.String()).sep().float(probe.Records).sep().float(probe.RecordSize)},
			{"join", fmt.Sprintf("join|%s|%v", alg, join.Dims()),
				newNoiseKey(kb(), "join|").str(string(alg)).sep().joinDims(join)},
			{"agg", fmt.Sprintf("agg|%v", agg.Dims()),
				newNoiseKey(kb(), "agg|").aggDims(agg)},
			{"scan", fmt.Sprintf("scan|%v|%v|%v|%v", scan.InputRows, scan.InputRowSize, scan.Selectivity, scan.OutputRowSize),
				newNoiseKey(kb(), "scan|").float(scan.InputRows).sep().float(scan.InputRowSize).sep().float(scan.Selectivity).sep().float(scan.OutputRowSize)},
			{"probe", fmt.Sprintf("probe|%v|%v|%v|%v", probe.Target, probe.Records, probe.RecordSize, probe.BuildBytes),
				newNoiseKey(kb(), "probe|").str(probe.Target.String()).sep().float(probe.Records).sep().float(probe.RecordSize).sep().float(probe.BuildBytes)},
		}
		for _, c := range cases {
			if string(c.got) != c.want {
				t.Fatalf("%s key drift:\n got %q\nwant %q", c.name, c.got, c.want)
			}
			seed := rng.Int63() - rng.Int63() // exercise negative seeds too
			amp := 0.03
			nb := noiseBytes(c.got, seed, amp)
			ns := noise(c.want, seed, amp)
			if nb != ns {
				t.Fatalf("%s noise drift: bytes=%v string=%v (seed %d)", c.name, nb, ns, seed)
			}
			if math.Abs(nb-1) > amp {
				t.Fatalf("%s noise %v outside 1±%v", c.name, nb, amp)
			}
		}
	}
	// Amplitude 0 must short-circuit to exactly 1 on both paths.
	if noiseBytes([]byte("x"), 1, 0) != 1 || noise("x", 1, 0) != 1 {
		t.Fatal("zero amplitude must yield factor 1")
	}
}

// TestNoiseKeyZeroAlloc pins the steady-state allocation count of the hot
// simulator entry points: key construction plus hashing must not allocate.
func TestNoiseKeyZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	spec := plan.ScanSpec{InputRows: 1e6, InputRowSize: 100, Selectivity: 0.25, OutputRowSize: 40}
	allocs := testing.AllocsPerRun(100, func() {
		var kb [160]byte
		key := newNoiseKey(kb[:], "scan|").
			float(spec.InputRows).sep().float(spec.InputRowSize).sep().
			float(spec.Selectivity).sep().float(spec.OutputRowSize)
		if noiseBytes(key, 7, 0.03) == 0 {
			t.Fatal("impossible")
		}
	})
	if allocs != 0 {
		t.Fatalf("noise key path allocates %v/op, want 0", allocs)
	}
}
