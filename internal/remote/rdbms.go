package remote

import (
	"fmt"

	"intellisphere/internal/cluster"
	"intellisphere/internal/plan"
)

// RDBMS simulates a single-node relational database remote system. The
// paper's "in-house comparable" choice policy assumes such systems pick the
// same physical algorithm Teradata would; this simulator's planner is a
// classic System-R style chooser among hash, merge, and nested-loop joins.
type RDBMS struct {
	name  string
	cfg   cluster.Config
	costs *SubOpCosts
	over  Overheads
	noise float64
	seed  int64
	memo  execMemos
}

var _ System = (*RDBMS)(nil)

// NewRDBMS builds an RDBMS-like system. The cluster config should describe
// a single data node; its core count models intra-query parallelism.
func NewRDBMS(name string, cfg cluster.Config, opts Options) (*RDBMS, error) {
	if name == "" {
		return nil, fmt.Errorf("remote: system name is required")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	r := &RDBMS{name: name, cfg: cfg, seed: opts.Seed}
	r.costs = opts.Costs
	if r.costs == nil {
		r.costs = DefaultRDBMSCosts()
	}
	if opts.Overheads != nil {
		r.over = *opts.Overheads
	} else {
		r.over = DefaultRDBMSOverheads()
	}
	switch {
	case opts.NoiseAmp < 0:
		r.noise = 0
	case opts.NoiseAmp == 0:
		r.noise = 0.03
	default:
		r.noise = opts.NoiseAmp
	}
	return r, nil
}

// Name implements System.
func (r *RDBMS) Name() string { return r.name }

// Capabilities implements System.
func (r *RDBMS) Capabilities() Capabilities {
	return Capabilities{Join: true, Aggregation: true, Scan: true}
}

// Cluster implements System.
func (r *RDBMS) Cluster() cluster.Config { return r.cfg }

// streams returns the degree of intra-query parallelism.
func (r *RDBMS) streams() float64 {
	s := float64(r.cfg.Slots())
	if s < 1 {
		return 1
	}
	return s
}

// SelectJoinAlgorithm mimics a cost-based single-node planner: hash join by
// default, merge join when both inputs arrive sorted, nested loop for
// cartesian products or tiny inners.
func (r *RDBMS) SelectJoinAlgorithm(spec plan.JoinSpec) JoinAlgorithm {
	if spec.Cartesian {
		return RDBMSNestedLoopJoin
	}
	if spec.Left.SortedOn && spec.Right.SortedOn {
		return RDBMSMergeJoin
	}
	return RDBMSHashJoin
}

// ExecuteJoin implements System.
func (r *RDBMS) ExecuteJoin(spec plan.JoinSpec) (Execution, error) {
	if err := spec.Validate(); err != nil {
		return Execution{}, fmt.Errorf("remote %q: %w", r.name, err)
	}
	jk := joinMemoKey{spec: spec}
	jh := hashJoinKey(jk)
	if ex, ok := r.memo.join.get(jh, jk); ok {
		return ex, nil
	}
	alg := r.SelectJoinAlgorithm(spec)
	outSize := spec.OutputRowSize()
	s, _ := spec.SmallSide()
	big := spec.BigSide()
	var workUS float64
	switch alg {
	case RDBMSHashJoin:
		inMem := r.cfg.FitsInMemory(s.Bytes())
		workUS = s.Rows*(r.costs.At(ReadDFS, s.RowSize, true)+r.costs.At(HashBuild, s.RowSize, inMem)) +
			big.Rows*(r.costs.At(ReadDFS, big.RowSize, true)+r.costs.At(HashProbe, big.RowSize, true)) +
			spec.OutputRows*(r.costs.At(RecMerge, outSize, true)+r.costs.At(WriteDFS, outSize, true))
	case RDBMSMergeJoin:
		workUS = s.Rows*r.costs.At(ReadDFS, s.RowSize, true) +
			big.Rows*r.costs.At(ReadDFS, big.RowSize, true) +
			spec.OutputRows*(r.costs.At(RecMerge, outSize, true)+r.costs.At(WriteDFS, outSize, true))
	default: // nested loop
		workUS = big.Rows*r.costs.At(ReadDFS, big.RowSize, true) +
			big.Rows*s.Rows*r.costs.At(Scan, s.RowSize, true) +
			spec.OutputRows*(r.costs.At(RecMerge, outSize, true)+r.costs.At(WriteDFS, outSize, true))
	}
	workUS *= r.over.PipelineFactor
	sec := r.over.JobStartupSec + workUS/r.streams()/1e6
	var kb [256]byte
	key := newNoiseKey(kb[:], "rdbms-join|").str(string(alg)).sep().joinDims(spec)
	sec *= noiseBytes(key, r.seed, r.noise)
	ex := Execution{ElapsedSec: sec, Algorithm: string(alg)}
	r.memo.join.put(jh, jk, ex)
	return ex, nil
}

// ExecuteAgg implements System with a single-stage hash aggregation.
func (r *RDBMS) ExecuteAgg(spec plan.AggSpec) (Execution, error) {
	if err := spec.Validate(); err != nil {
		return Execution{}, fmt.Errorf("remote %q: %w", r.name, err)
	}
	ah := hashAggSpec(spec)
	if ex, ok := r.memo.agg.get(ah, spec); ok {
		return ex, nil
	}
	aggFactor := 1 + 0.15*float64(spec.NumAggregates)
	inMem := r.cfg.FitsInMemory(spec.OutputRows * spec.OutputRowSize)
	workUS := spec.InputRows*(r.costs.At(ReadDFS, spec.InputRowSize, true)+
		r.costs.At(Scan, spec.InputRowSize, true)*aggFactor+
		r.costs.At(HashBuild, spec.InputRowSize, inMem)*0.35) +
		spec.OutputRows*r.costs.At(WriteDFS, spec.OutputRowSize, true)
	workUS *= r.over.PipelineFactor
	sec := r.over.JobStartupSec + workUS/r.streams()/1e6
	var kb [160]byte
	key := newNoiseKey(kb[:], "rdbms-agg|").aggDims(spec)
	sec *= noiseBytes(key, r.seed, r.noise)
	ex := Execution{ElapsedSec: sec, Algorithm: "hash_aggregation"}
	r.memo.agg.put(ah, spec, ex)
	return ex, nil
}

// ExecuteScan implements System.
func (r *RDBMS) ExecuteScan(spec plan.ScanSpec) (Execution, error) {
	if err := spec.Validate(); err != nil {
		return Execution{}, fmt.Errorf("remote %q: %w", r.name, err)
	}
	sh := hashScanSpec(spec)
	if ex, ok := r.memo.scan.get(sh, spec); ok {
		return ex, nil
	}
	workUS := spec.InputRows*(r.costs.At(ReadDFS, spec.InputRowSize, true)+r.costs.At(Scan, spec.InputRowSize, true)) +
		spec.OutputRows()*r.costs.At(WriteDFS, spec.OutputRowSize, true)
	workUS *= r.over.PipelineFactor
	sec := r.over.JobStartupSec + workUS/r.streams()/1e6
	var kb [128]byte
	key := newNoiseKey(kb[:], "rdbms-scan|").
		float(spec.InputRows).sep().float(spec.InputRowSize).sep().float(spec.Selectivity)
	sec *= noiseBytes(key, r.seed, r.noise)
	ex := Execution{ElapsedSec: sec, Algorithm: "scan"}
	r.memo.scan.put(sh, spec, ex)
	return ex, nil
}

// ExecuteProbe implements System; single-node probes have no task waves.
func (r *RDBMS) ExecuteProbe(p Probe) (Execution, error) {
	if err := p.Validate(); err != nil {
		return Execution{}, fmt.Errorf("remote %q: %w", r.name, err)
	}
	ph := hashProbe(p)
	if ex, ok := r.memo.probe.get(ph, p); ok {
		return ex, nil
	}
	read := r.costs.At(ReadDFS, p.RecordSize, true)
	var extra float64
	switch p.Target {
	case ReadDFS:
	case WriteDFS:
		extra = r.costs.At(WriteDFS, p.RecordSize, true)
	case ReadLocal:
		extra = r.costs.At(ReadLocal, p.RecordSize, true)
	case WriteLocal:
		extra = r.costs.At(WriteLocal, p.RecordSize, true)
	case Shuffle, Broadcast:
		// Single node: redistribution is free but still a valid probe.
	case Sort:
		extra = sortUnit(r.costs, p.RecordSize, p.Records/r.streams())
	case Scan:
		extra = r.costs.At(Scan, p.RecordSize, true)
	case HashBuild:
		build := p.BuildBytes
		if build == 0 {
			build = p.Records * p.RecordSize
		}
		extra = r.costs.At(HashBuild, p.RecordSize, r.cfg.FitsInMemory(build))
	case HashProbe:
		extra = r.costs.At(HashProbe, p.RecordSize, true)
	case RecMerge:
		extra = r.costs.At(RecMerge, p.RecordSize, true)
	default:
		return Execution{}, fmt.Errorf("remote %q: unknown probe target %v", r.name, p.Target)
	}
	// Parallelism follows the cluster abstraction (tasks per block, waves
	// per slot) so openbox calibration reads the same geometry it assumes.
	tasks := r.cfg.NumTasks(p.Records * p.RecordSize)
	waves := r.cfg.TaskWaves(tasks)
	perTaskUS := p.Records / float64(tasks) * (read + extra)
	sec := r.over.JobStartupSec + float64(waves)*perTaskUS/1e6
	var kb [128]byte
	key := newNoiseKey(kb[:], "rdbms-probe|").
		str(p.Target.String()).sep().float(p.Records).sep().float(p.RecordSize)
	sec *= noiseBytes(key, r.seed, r.noise)
	ex := Execution{ElapsedSec: sec, Algorithm: "probe:" + p.Target.String()}
	r.memo.probe.put(ph, p, ex)
	return ex, nil
}
