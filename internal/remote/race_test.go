//go:build race

package remote

// raceEnabled gates allocation-pinning tests: race instrumentation adds
// allocations that are not present in production builds.
const raceEnabled = true
