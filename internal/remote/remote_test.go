package remote

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"intellisphere/internal/cluster"
	"intellisphere/internal/plan"
)

func newHiveT(t *testing.T) *Distributed {
	t.Helper()
	h, err := NewHive("hive", cluster.DefaultHive(), Options{Seed: 1})
	if err != nil {
		t.Fatalf("NewHive: %v", err)
	}
	return h
}

func newSparkT(t *testing.T) *Distributed {
	t.Helper()
	s, err := NewSpark("spark", cluster.DefaultHive(), Options{Seed: 2})
	if err != nil {
		t.Fatalf("NewSpark: %v", err)
	}
	return s
}

func smallJoin() plan.JoinSpec {
	return plan.JoinSpec{
		Left:       plan.TableSide{Rows: 4e6, RowSize: 250, ProjectedSize: 100, KeyNDV: 4e6},
		Right:      plan.TableSide{Rows: 1e5, RowSize: 100, ProjectedSize: 50, KeyNDV: 1e5},
		OutputRows: 1e5,
	}
}

func bigJoin() plan.JoinSpec {
	return plan.JoinSpec{
		Left:       plan.TableSide{Rows: 4e7, RowSize: 500, ProjectedSize: 200, KeyNDV: 4e7},
		Right:      plan.TableSide{Rows: 2e7, RowSize: 500, ProjectedSize: 200, KeyNDV: 2e7},
		OutputRows: 2e7,
	}
}

func TestSubOpNames(t *testing.T) {
	if len(AllSubOps()) != 11 {
		t.Fatalf("expected 11 sub-ops, got %d", len(AllSubOps()))
	}
	if len(BasicSubOps()) != 8 || len(SpecificSubOps()) != 3 {
		t.Error("basic/specific partition sizes wrong")
	}
	wantSym := map[SubOp]string{ReadDFS: "rD", WriteDFS: "wD", Shuffle: "f", Broadcast: "b",
		Sort: "o", Scan: "c", HashBuild: "hI", HashProbe: "hP", RecMerge: "m",
		ReadLocal: "rL", WriteLocal: "wL"}
	for op, sym := range wantSym {
		if op.Symbol() != sym {
			t.Errorf("%v symbol = %q, want %q", op, op.Symbol(), sym)
		}
		if op.String() == "" || strings.HasPrefix(op.String(), "SubOp(") {
			t.Errorf("%v missing name", op)
		}
	}
	if SubOp(99).String() != "SubOp(99)" || SubOp(99).Symbol() != "?" {
		t.Error("fallback names wrong")
	}
}

func TestDefaultHiveCostsMatchPaper(t *testing.T) {
	c := DefaultHiveCosts()
	if c.Costs[ReadDFS].Slope != 0.0041 || c.Costs[ReadDFS].Intercept != 0.6323 {
		t.Error("ReadDFS ground truth should match Figure 7(b)")
	}
	if c.Costs[WriteDFS].Slope != 0.0314 {
		t.Error("WriteDFS ground truth should match Figure 13(c)")
	}
	if c.Costs[Shuffle].Intercept != 5.2551 {
		t.Error("Shuffle ground truth should match Figure 13(d)")
	}
	if c.HashSpill.Slope != 0.1821 {
		t.Error("HashBuild spill truth should match Figure 13(f)")
	}
}

func TestSubOpCostsHashRegimes(t *testing.T) {
	c := DefaultHiveCosts()
	inMem := c.At(HashBuild, 1000, true)
	spill := c.At(HashBuild, 1000, false)
	if spill <= inMem {
		t.Errorf("spill cost %v should exceed in-memory %v at 1000 B", spill, inMem)
	}
	// At small record sizes the raw spill line is negative; the floor must hold.
	if got := c.At(HashBuild, 40, false); got < c.At(HashBuild, 40, true) {
		t.Errorf("spill floor violated: %v", got)
	}
}

func TestNoiseDeterministicAndBounded(t *testing.T) {
	a := noise("k1", 7, 0.03)
	b := noise("k1", 7, 0.03)
	if a != b {
		t.Error("noise not deterministic")
	}
	if noise("k1", 8, 0.03) == a {
		t.Error("seed change should alter noise")
	}
	if noise("k2", 7, 0.03) == a {
		t.Error("key change should alter noise")
	}
	if noise("k", 7, 0) != 1 {
		t.Error("zero amplitude should disable noise")
	}
	for _, key := range []string{"a", "b", "c", "d", "e"} {
		v := noise(key, 3, 0.05)
		if v < 0.95 || v > 1.05 {
			t.Errorf("noise %v out of ±5%%", v)
		}
	}
}

func TestNewSystemValidation(t *testing.T) {
	if _, err := NewHive("", cluster.DefaultHive(), Options{}); err == nil {
		t.Error("empty name accepted")
	}
	bad := cluster.DefaultHive()
	bad.DataNodes = 0
	if _, err := NewHive("h", bad, Options{}); err == nil {
		t.Error("invalid cluster accepted")
	}
	if _, err := NewRDBMS("", cluster.DefaultHive(), Options{}); err == nil {
		t.Error("empty RDBMS name accepted")
	}
}

func TestHiveSelectBroadcastJoin(t *testing.T) {
	h := newHiveT(t)
	if alg := h.SelectJoinAlgorithm(smallJoin()); alg != HiveBroadcastJoin {
		t.Errorf("small-side join picked %v, want broadcast", alg)
	}
}

func TestHiveSelectShuffleJoin(t *testing.T) {
	h := newHiveT(t)
	if alg := h.SelectJoinAlgorithm(bigJoin()); alg != HiveShuffleJoin {
		t.Errorf("big join picked %v, want shuffle", alg)
	}
}

func TestHiveSelectBucketedJoins(t *testing.T) {
	h := newHiveT(t)
	j := bigJoin()
	j.Left.PartitionedOn = true
	j.Right.PartitionedOn = true
	if alg := h.SelectJoinAlgorithm(j); alg != HiveBucketMapJoin {
		t.Errorf("bucketed join picked %v, want bucket map", alg)
	}
	j.Left.SortedOn = true
	j.Right.SortedOn = true
	if alg := h.SelectJoinAlgorithm(j); alg != HiveSortMergeBucketJoin {
		t.Errorf("bucketed+sorted join picked %v, want SMB", alg)
	}
}

func TestHiveSelectSkewJoin(t *testing.T) {
	h := newHiveT(t)
	j := bigJoin()
	j.Left.KeyNDV = 100 // 4e7 rows / 100 keys: extreme skew
	if alg := h.SelectJoinAlgorithm(j); alg != HiveSkewJoin {
		t.Errorf("skewed join picked %v, want skew join", alg)
	}
}

func TestSparkSelection(t *testing.T) {
	s := newSparkT(t)
	if alg := s.SelectJoinAlgorithm(smallJoin()); alg != SparkBroadcastHashJoin {
		t.Errorf("small join picked %v, want broadcast hash", alg)
	}
	if alg := s.SelectJoinAlgorithm(bigJoin()); alg != SparkSortMergeJoin {
		t.Errorf("big join picked %v, want sort-merge", alg)
	}
	cart := smallJoin()
	cart.Cartesian = true
	if alg := s.SelectJoinAlgorithm(cart); alg != SparkBroadcastNLJoin {
		t.Errorf("small cartesian picked %v, want broadcast NL", alg)
	}
	cart = bigJoin()
	cart.Cartesian = true
	if alg := s.SelectJoinAlgorithm(cart); alg != SparkCartesianJoin {
		t.Errorf("big cartesian picked %v, want cartesian product", alg)
	}
	// Skewed shuffle-hash case: one side much smaller but not broadcastable.
	j := bigJoin()
	j.Right.Rows = 4e6
	if alg := s.SelectJoinAlgorithm(j); alg != SparkShuffleHashJoin {
		t.Errorf("asymmetric join picked %v, want shuffle hash", alg)
	}
}

func TestExecuteJoinPositiveAndDeterministic(t *testing.T) {
	h := newHiveT(t)
	e1, err := h.ExecuteJoin(smallJoin())
	if err != nil {
		t.Fatalf("ExecuteJoin: %v", err)
	}
	if e1.ElapsedSec <= 0 {
		t.Errorf("elapsed = %v, want > 0", e1.ElapsedSec)
	}
	if e1.Algorithm != string(HiveBroadcastJoin) {
		t.Errorf("algorithm = %q", e1.Algorithm)
	}
	e2, _ := h.ExecuteJoin(smallJoin())
	if e1.ElapsedSec != e2.ElapsedSec {
		t.Error("simulator not deterministic for identical specs")
	}
}

func TestExecuteJoinInvalid(t *testing.T) {
	h := newHiveT(t)
	if _, err := h.ExecuteJoin(plan.JoinSpec{}); err == nil {
		t.Error("invalid spec accepted")
	}
	if _, err := h.ExecuteJoinWith(smallJoin(), JoinAlgorithm("nope")); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if _, err := h.ExecuteJoinWith(plan.JoinSpec{}, HiveShuffleJoin); err == nil {
		t.Error("invalid spec accepted by ExecuteJoinWith")
	}
}

func TestJoinCostGrowsWithInput(t *testing.T) {
	h := newHiveT(t)
	small, err := h.ExecuteJoinWith(smallJoin(), HiveShuffleJoin)
	if err != nil {
		t.Fatal(err)
	}
	big, err := h.ExecuteJoinWith(bigJoin(), HiveShuffleJoin)
	if err != nil {
		t.Fatal(err)
	}
	if big.ElapsedSec <= small.ElapsedSec {
		t.Errorf("bigger join (%v s) should cost more than smaller (%v s)", big.ElapsedSec, small.ElapsedSec)
	}
}

func TestBroadcastBeatsShuffleForSmallSide(t *testing.T) {
	h := newHiveT(t)
	j := smallJoin()
	bc, _ := h.ExecuteJoinWith(j, HiveBroadcastJoin)
	sh, _ := h.ExecuteJoinWith(j, HiveShuffleJoin)
	if bc.ElapsedSec >= sh.ElapsedSec {
		t.Errorf("broadcast (%v) should beat shuffle (%v) when S is tiny", bc.ElapsedSec, sh.ElapsedSec)
	}
}

func TestSMBCheapestWhenApplicable(t *testing.T) {
	h := newHiveT(t)
	j := bigJoin()
	j.Left.PartitionedOn, j.Left.SortedOn = true, true
	j.Right.PartitionedOn, j.Right.SortedOn = true, true
	smb, _ := h.ExecuteJoinWith(j, HiveSortMergeBucketJoin)
	sh, _ := h.ExecuteJoinWith(j, HiveShuffleJoin)
	if smb.ElapsedSec >= sh.ElapsedSec {
		t.Errorf("SMB (%v) should beat shuffle (%v): no shuffle, no sort", smb.ElapsedSec, sh.ElapsedSec)
	}
}

func TestExecuteAgg(t *testing.T) {
	h := newHiveT(t)
	spec := plan.AggSpec{InputRows: 1e6, InputRowSize: 250, OutputRows: 1e4, OutputRowSize: 24, NumAggregates: 2}
	e, err := h.ExecuteAgg(spec)
	if err != nil {
		t.Fatalf("ExecuteAgg: %v", err)
	}
	if e.ElapsedSec <= 0 {
		t.Error("agg elapsed must be positive")
	}
	// More aggregates cost more.
	spec5 := spec
	spec5.NumAggregates = 5
	e5, _ := h.ExecuteAgg(spec5)
	if e5.ElapsedSec <= e.ElapsedSec {
		t.Errorf("5 aggregates (%v) should cost more than 2 (%v)", e5.ElapsedSec, e.ElapsedSec)
	}
	if _, err := h.ExecuteAgg(plan.AggSpec{}); err == nil {
		t.Error("invalid agg accepted")
	}
}

func TestExecuteScan(t *testing.T) {
	h := newHiveT(t)
	spec := plan.ScanSpec{InputRows: 1e6, InputRowSize: 100, Selectivity: 0.5, OutputRowSize: 40}
	e, err := h.ExecuteScan(spec)
	if err != nil {
		t.Fatalf("ExecuteScan: %v", err)
	}
	if e.ElapsedSec <= 0 {
		t.Error("scan elapsed must be positive")
	}
	if _, err := h.ExecuteScan(plan.ScanSpec{}); err == nil {
		t.Error("invalid scan accepted")
	}
}

func TestExecuteProbeAllTargets(t *testing.T) {
	h := newHiveT(t)
	for _, op := range AllSubOps() {
		p := Probe{Target: op, Records: 1e6, RecordSize: 500}
		e, err := h.ExecuteProbe(p)
		if err != nil {
			t.Fatalf("probe %v: %v", op, err)
		}
		if e.ElapsedSec <= 0 {
			t.Errorf("probe %v elapsed = %v", op, e.ElapsedSec)
		}
		// Every non-ReadDFS probe must cost at least as much as reading alone
		// (same record count, extra work). Compare noise-free systems.
	}
	if _, err := h.ExecuteProbe(Probe{Target: SubOp(99), Records: 1, RecordSize: 1}); err == nil {
		t.Error("unknown probe target accepted")
	}
	if _, err := h.ExecuteProbe(Probe{Target: ReadDFS}); err == nil {
		t.Error("invalid probe accepted")
	}
}

func TestProbeCompositePrinciple(t *testing.T) {
	h, err := NewHive("h", cluster.DefaultHive(), Options{NoiseAmp: -1})
	if err != nil {
		t.Fatal(err)
	}
	read, _ := h.ExecuteProbe(Probe{Target: ReadDFS, Records: 4e6, RecordSize: 500})
	write, _ := h.ExecuteProbe(Probe{Target: WriteDFS, Records: 4e6, RecordSize: 500})
	if write.ElapsedSec <= read.ElapsedSec {
		t.Errorf("read+write probe (%v) must exceed read probe (%v)", write.ElapsedSec, read.ElapsedSec)
	}
}

func TestHashBuildProbeRegimes(t *testing.T) {
	h, err := NewHive("h", cluster.DefaultHive(), Options{NoiseAmp: -1})
	if err != nil {
		t.Fatal(err)
	}
	inMem, _ := h.ExecuteProbe(Probe{Target: HashBuild, Records: 1e6, RecordSize: 800, BuildBytes: 1 << 20})
	spill, _ := h.ExecuteProbe(Probe{Target: HashBuild, Records: 1e6, RecordSize: 800, BuildBytes: 1 << 40})
	if spill.ElapsedSec <= inMem.ElapsedSec {
		t.Errorf("spill probe (%v) must exceed in-memory probe (%v)", spill.ElapsedSec, inMem.ElapsedSec)
	}
}

func TestSparkFasterThanHive(t *testing.T) {
	h, _ := NewHive("h", cluster.DefaultHive(), Options{NoiseAmp: -1})
	s, _ := NewSpark("s", cluster.DefaultHive(), Options{NoiseAmp: -1})
	j := bigJoin()
	he, _ := h.ExecuteJoinWith(j, HiveShuffleJoin)
	se, _ := s.ExecuteJoinWith(j, SparkSortMergeJoin)
	if se.ElapsedSec >= he.ElapsedSec {
		t.Errorf("spark (%v) should beat hive (%v) on the same join", se.ElapsedSec, he.ElapsedSec)
	}
}

func TestRDBMSExecution(t *testing.T) {
	cfg := cluster.Config{Name: "pg", Nodes: 1, DataNodes: 1, CoresPerNode: 8,
		MemoryPerNode: 32 << 30, DFSBlockBytes: 8 << 20, Replication: 1, MemoryFraction: 0.5}
	r, err := NewRDBMS("pg", cfg, Options{NoiseAmp: -1})
	if err != nil {
		t.Fatalf("NewRDBMS: %v", err)
	}
	if r.Name() != "pg" || !r.Capabilities().Join {
		t.Error("identity/capabilities wrong")
	}
	j := smallJoin()
	e, err := r.ExecuteJoin(j)
	if err != nil {
		t.Fatalf("ExecuteJoin: %v", err)
	}
	if e.Algorithm != string(RDBMSHashJoin) || e.ElapsedSec <= 0 {
		t.Errorf("execution = %+v", e)
	}
	j.Left.SortedOn, j.Right.SortedOn = true, true
	e, _ = r.ExecuteJoin(j)
	if e.Algorithm != string(RDBMSMergeJoin) {
		t.Errorf("sorted join algorithm = %q, want merge", e.Algorithm)
	}
	j.Cartesian = true
	e, _ = r.ExecuteJoin(j)
	if e.Algorithm != string(RDBMSNestedLoopJoin) {
		t.Errorf("cartesian algorithm = %q, want NL", e.Algorithm)
	}
	if _, err := r.ExecuteJoin(plan.JoinSpec{}); err == nil {
		t.Error("invalid join accepted")
	}
	if _, err := r.ExecuteAgg(plan.AggSpec{InputRows: 1e5, InputRowSize: 100, OutputRows: 10, OutputRowSize: 16}); err != nil {
		t.Errorf("ExecuteAgg: %v", err)
	}
	if _, err := r.ExecuteScan(plan.ScanSpec{InputRows: 1e5, InputRowSize: 100, Selectivity: 1, OutputRowSize: 100}); err != nil {
		t.Errorf("ExecuteScan: %v", err)
	}
	for _, op := range AllSubOps() {
		if _, err := r.ExecuteProbe(Probe{Target: op, Records: 1e5, RecordSize: 100}); err != nil {
			t.Errorf("probe %v: %v", op, err)
		}
	}
	if _, err := r.ExecuteAgg(plan.AggSpec{}); err == nil {
		t.Error("invalid agg accepted")
	}
	if _, err := r.ExecuteScan(plan.ScanSpec{}); err == nil {
		t.Error("invalid scan accepted")
	}
	if _, err := r.ExecuteProbe(Probe{}); err == nil {
		t.Error("invalid probe accepted")
	}
}

func TestEngineKindString(t *testing.T) {
	if EngineHive.String() != "hive" || EngineSpark.String() != "spark" {
		t.Error("engine kind names wrong")
	}
}

// Property: elapsed time is always positive, finite, and at least the job
// startup latency. (Monotonicity in records does NOT hold in general: more
// records can split into more parallel tasks and finish sooner — the wave
// nonlinearity the logical-op NN has to learn — so we don't assert it.)
func TestBroadcastJoinBoundsProperty(t *testing.T) {
	h, err := NewHive("h", cluster.DefaultHive(), Options{NoiseAmp: -1})
	if err != nil {
		t.Fatal(err)
	}
	startup := DefaultHiveOverheads().JobStartupSec
	f := func(a uint32) bool {
		rows := float64(a%10000000) + 1000
		spec := plan.JoinSpec{
			Left:       plan.TableSide{Rows: rows, RowSize: 200, ProjectedSize: 100, KeyNDV: rows},
			Right:      plan.TableSide{Rows: 1000, RowSize: 100, ProjectedSize: 50, KeyNDV: 1000},
			OutputRows: 1000,
		}
		e, err := h.ExecuteJoinWith(spec, HiveBroadcastJoin)
		if err != nil {
			return false
		}
		return e.ElapsedSec >= startup && !math.IsNaN(e.ElapsedSec) && !math.IsInf(e.ElapsedSec, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: with noise disabled, probes at wave-aligned record counts (full
// multiples of the slot-saturated block payload) are monotone in records —
// the wave effect only perturbs counts between alignment points.
func TestProbeMonotoneAtWaveAlignmentProperty(t *testing.T) {
	h, err := NewHive("h", cluster.DefaultHive(), Options{NoiseAmp: -1})
	if err != nil {
		t.Fatal(err)
	}
	cfg := cluster.DefaultHive()
	f := func(n1, n2 uint8, sizeSel uint8) bool {
		sizes := []float64{40, 100, 500, 1000}
		size := sizes[int(sizeSel)%len(sizes)]
		perWave := cfg.RecordsPerBlock(size) * float64(cfg.Slots())
		w1 := float64(n1%20) + 1
		w2 := float64(n2%20) + 1
		if w1 > w2 {
			w1, w2 = w2, w1
		}
		e1, err1 := h.ExecuteProbe(Probe{Target: ReadDFS, Records: w1 * perWave, RecordSize: size})
		e2, err2 := h.ExecuteProbe(Probe{Target: ReadDFS, Records: w2 * perWave, RecordSize: size})
		if err1 != nil || err2 != nil {
			return false
		}
		return e1.ElapsedSec <= e2.ElapsedSec+1e-9 && !math.IsNaN(e1.ElapsedSec)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPrestoSelection(t *testing.T) {
	p, err := NewPresto("presto", cluster.DefaultHive(), Options{Seed: 5})
	if err != nil {
		t.Fatalf("NewPresto: %v", err)
	}
	if p.Kind() != EnginePresto || p.Kind().String() != "presto" {
		t.Errorf("kind = %v", p.Kind())
	}
	if alg := p.SelectJoinAlgorithm(smallJoin()); alg != PrestoReplicatedJoin {
		t.Errorf("small join picked %v, want replicated", alg)
	}
	if alg := p.SelectJoinAlgorithm(bigJoin()); alg != PrestoPartitionedJoin {
		t.Errorf("big join picked %v, want partitioned", alg)
	}
	cart := smallJoin()
	cart.Cartesian = true
	if alg := p.SelectJoinAlgorithm(cart); alg != PrestoCrossJoin {
		t.Errorf("cartesian picked %v, want cross", alg)
	}
	if len(PrestoJoinAlgorithms()) != 3 {
		t.Error("presto algorithm list wrong")
	}
}

func TestPrestoExecutionAndSpeed(t *testing.T) {
	p, _ := NewPresto("presto", cluster.DefaultHive(), Options{NoiseAmp: -1})
	h, _ := NewHive("hive", cluster.DefaultHive(), Options{NoiseAmp: -1})
	for _, spec := range []plan.JoinSpec{smallJoin(), bigJoin()} {
		pe, err := p.ExecuteJoin(spec)
		if err != nil {
			t.Fatalf("presto ExecuteJoin: %v", err)
		}
		he, err := h.ExecuteJoin(spec)
		if err != nil {
			t.Fatalf("hive ExecuteJoin: %v", err)
		}
		if pe.ElapsedSec <= 0 {
			t.Errorf("presto elapsed = %v", pe.ElapsedSec)
		}
		// The MPP engine should beat the batch engine on the same work.
		if pe.ElapsedSec >= he.ElapsedSec {
			t.Errorf("presto (%v) not faster than hive (%v)", pe.ElapsedSec, he.ElapsedSec)
		}
	}
	// All operator kinds and probes work.
	if _, err := p.ExecuteAgg(plan.AggSpec{InputRows: 1e6, InputRowSize: 100, OutputRows: 1e4, OutputRowSize: 12}); err != nil {
		t.Errorf("ExecuteAgg: %v", err)
	}
	if _, err := p.ExecuteScan(plan.ScanSpec{InputRows: 1e6, InputRowSize: 100, Selectivity: 0.5, OutputRowSize: 40}); err != nil {
		t.Errorf("ExecuteScan: %v", err)
	}
	for _, op := range AllSubOps() {
		if _, err := p.ExecuteProbe(Probe{Target: op, Records: 1e6, RecordSize: 250}); err != nil {
			t.Errorf("probe %v: %v", op, err)
		}
	}
}
