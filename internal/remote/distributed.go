package remote

import (
	"fmt"

	"intellisphere/internal/cluster"
	"intellisphere/internal/plan"
)

// EngineKind distinguishes the execution model of a distributed system.
type EngineKind int

// Supported distributed engine kinds.
const (
	EngineHive   EngineKind = iota // MapReduce-style staged execution
	EngineSpark                    // in-memory DAG execution
	EnginePresto                   // MPP, fully pipelined in-memory execution
)

// String returns the engine kind's name.
func (k EngineKind) String() string {
	switch k {
	case EngineSpark:
		return "spark"
	case EnginePresto:
		return "presto"
	default:
		return "hive"
	}
}

// Options tunes a simulated system. Zero values select sensible defaults
// for the chosen engine kind.
type Options struct {
	Costs     *SubOpCosts // ground-truth sub-op costs; nil picks the engine default
	Overheads *Overheads  // framework latencies; nil picks the engine default
	NoiseAmp  float64     // multiplicative noise amplitude; negative disables, 0 means default 3%
	Seed      int64       // noise seed
	// SkewThreshold is the average duplicates-per-key beyond which Hive
	// switches to its skew join. 0 means default (50 000).
	SkewThreshold float64
}

// Distributed simulates a shared-nothing distributed SQL engine (Hive-like
// or Spark-like) executing operators over table statistics.
type Distributed struct {
	name  string
	kind  EngineKind
	cfg   cluster.Config
	costs *SubOpCosts
	over  Overheads
	noise float64
	seed  int64
	skew  float64
	memo  execMemos
}

var _ System = (*Distributed)(nil)

// NewHive builds a Hive-like system on the given cluster.
func NewHive(name string, cfg cluster.Config, opts Options) (*Distributed, error) {
	return newDistributed(name, EngineHive, cfg, opts)
}

// NewSpark builds a Spark-like system on the given cluster.
func NewSpark(name string, cfg cluster.Config, opts Options) (*Distributed, error) {
	return newDistributed(name, EngineSpark, cfg, opts)
}

// NewPresto builds a Presto-like MPP system on the given cluster.
func NewPresto(name string, cfg cluster.Config, opts Options) (*Distributed, error) {
	return newDistributed(name, EnginePresto, cfg, opts)
}

func newDistributed(name string, kind EngineKind, cfg cluster.Config, opts Options) (*Distributed, error) {
	if name == "" {
		return nil, fmt.Errorf("remote: system name is required")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	d := &Distributed{name: name, kind: kind, cfg: cfg, seed: opts.Seed}
	switch {
	case opts.Costs != nil:
		d.costs = opts.Costs
	case kind == EngineSpark:
		d.costs = DefaultSparkCosts()
	case kind == EnginePresto:
		d.costs = DefaultPrestoCosts()
	default:
		d.costs = DefaultHiveCosts()
	}
	switch {
	case opts.Overheads != nil:
		d.over = *opts.Overheads
	case kind == EngineSpark:
		d.over = DefaultSparkOverheads()
	case kind == EnginePresto:
		d.over = DefaultPrestoOverheads()
	default:
		d.over = DefaultHiveOverheads()
	}
	switch {
	case opts.NoiseAmp < 0:
		d.noise = 0
	case opts.NoiseAmp == 0:
		d.noise = 0.03
	default:
		d.noise = opts.NoiseAmp
	}
	d.skew = opts.SkewThreshold
	if d.skew == 0 {
		d.skew = 50000
	}
	return d, nil
}

// Name implements System.
func (d *Distributed) Name() string { return d.name }

// Kind returns the engine kind.
func (d *Distributed) Kind() EngineKind { return d.kind }

// Capabilities implements System.
func (d *Distributed) Capabilities() Capabilities {
	return Capabilities{Join: true, Aggregation: true, Scan: true}
}

// Cluster implements System.
func (d *Distributed) Cluster() cluster.Config { return d.cfg }

// SelectJoinAlgorithm applies the engine's planning rules to pick the
// physical join for a spec — the hidden choice the paper's "applicability
// rules" try to predict from the outside.
func (d *Distributed) SelectJoinAlgorithm(spec plan.JoinSpec) JoinAlgorithm {
	small, _ := spec.SmallSide()
	fits := d.cfg.BroadcastFits(small.Bytes())
	if d.kind == EnginePresto {
		if spec.Cartesian {
			return PrestoCrossJoin
		}
		if fits {
			return PrestoReplicatedJoin
		}
		return PrestoPartitionedJoin
	}
	if d.kind == EngineSpark {
		if spec.Cartesian {
			if fits {
				return SparkBroadcastNLJoin
			}
			return SparkCartesianJoin
		}
		if fits {
			return SparkBroadcastHashJoin
		}
		if spec.Left.SortedOn && spec.Right.SortedOn {
			return SparkSortMergeJoin
		}
		// Spark prefers shuffle-hash when one side is much smaller per
		// partition, otherwise its default sort-merge join.
		if small.Bytes()*3 <= spec.BigSide().Bytes() &&
			d.cfg.FitsInMemory(small.Bytes()/float64(d.cfg.Slots())) {
			return SparkShuffleHashJoin
		}
		return SparkSortMergeJoin
	}
	// Hive.
	if !spec.Cartesian && fits {
		return HiveBroadcastJoin
	}
	if !spec.Cartesian && spec.Left.PartitionedOn && spec.Right.PartitionedOn {
		if spec.Left.SortedOn && spec.Right.SortedOn {
			return HiveSortMergeBucketJoin
		}
		return HiveBucketMapJoin
	}
	if !spec.Cartesian && d.skewed(spec) {
		return HiveSkewJoin
	}
	return HiveShuffleJoin
}

// skewed reports whether either side's average duplicates-per-key exceeds
// the skew threshold.
func (d *Distributed) skewed(spec plan.JoinSpec) bool {
	dup := func(s plan.TableSide) float64 {
		if s.KeyNDV <= 0 {
			return 1
		}
		return s.Rows / s.KeyNDV
	}
	return dup(spec.Left) > d.skew || dup(spec.Right) > d.skew
}

// ExecuteJoin implements System: plan the physical algorithm, then simulate.
func (d *Distributed) ExecuteJoin(spec plan.JoinSpec) (Execution, error) {
	if err := spec.Validate(); err != nil {
		return Execution{}, fmt.Errorf("remote %q: %w", d.name, err)
	}
	alg := d.SelectJoinAlgorithm(spec)
	return d.ExecuteJoinWith(spec, alg)
}

// ExecuteJoinWith simulates the join with an explicitly chosen algorithm.
// The experiment harness uses it to study single algorithms in isolation.
func (d *Distributed) ExecuteJoinWith(spec plan.JoinSpec, alg JoinAlgorithm) (Execution, error) {
	if err := spec.Validate(); err != nil {
		return Execution{}, fmt.Errorf("remote %q: %w", d.name, err)
	}
	jk := joinMemoKey{spec: spec, alg: alg}
	jh := hashJoinKey(jk)
	if ex, ok := d.memo.join.get(jh, jk); ok {
		return ex, nil
	}
	var sec float64
	switch alg {
	case HiveBroadcastJoin, SparkBroadcastHashJoin:
		sec = d.broadcastJoinTime(spec)
	case HiveBucketMapJoin:
		sec = d.bucketMapJoinTime(spec)
	case HiveSortMergeBucketJoin:
		sec = d.sortMergeBucketJoinTime(spec)
	case HiveSkewJoin:
		sec = d.shuffleJoinTime(spec)*1.15 + d.over.StageStartupSec
	case HiveShuffleJoin, SparkSortMergeJoin:
		sec = d.shuffleJoinTime(spec)
	case SparkShuffleHashJoin:
		sec = d.shuffleHashJoinTime(spec)
	case SparkBroadcastNLJoin:
		sec = d.broadcastNLJoinTime(spec)
	case SparkCartesianJoin, PrestoCrossJoin:
		sec = d.cartesianJoinTime(spec)
	case PrestoReplicatedJoin:
		sec = d.replicatedJoinTime(spec)
	case PrestoPartitionedJoin:
		sec = d.shuffleHashJoinTime(spec)
	default:
		return Execution{}, fmt.Errorf("remote %q: unsupported join algorithm %q", d.name, alg)
	}
	var kb [256]byte
	key := newNoiseKey(kb[:], "join|").str(string(alg)).sep().joinDims(spec)
	sec *= noiseBytes(key, d.seed, d.noise)
	ex := Execution{ElapsedSec: sec, Algorithm: string(alg)}
	d.memo.join.put(jh, jk, ex)
	return ex, nil
}

// broadcastJoinTime implements the Figure 6 workflow: the driver reads the
// small relation S from the DFS and broadcasts it; every task then reads S
// locally, builds a hash table, streams its local block of R probing the
// table, and writes its output share back to the DFS.
func (d *Distributed) broadcastJoinTime(spec plan.JoinSpec) float64 {
	s, _ := spec.SmallSide()
	r := spec.BigSide()
	inMem := d.cfg.FitsInMemory(s.Bytes())
	outSize := spec.OutputRowSize()

	driverUS := s.Rows * (d.costs.At(ReadDFS, s.RowSize, true) + d.costs.broadcastUnit(s.RowSize, d.cfg))

	tasks := d.cfg.NumTasks(r.Bytes())
	waves := d.cfg.TaskWaves(tasks)
	recsR := r.Rows / float64(tasks)
	outPerTask := spec.OutputRows / float64(tasks)
	perTaskUS := s.Rows*(d.costs.At(ReadLocal, s.RowSize, true)+d.costs.At(HashBuild, s.RowSize, inMem)) +
		recsR*(d.costs.At(ReadLocal, r.RowSize, true)+d.costs.At(HashProbe, r.RowSize, true)) +
		outPerTask*d.costs.At(WriteDFS, outSize, true)
	perTaskUS *= d.over.PipelineFactor // 5 distinct sub-ops: fully pipelined task

	return d.over.JobStartupSec + driverUS/1e6 +
		float64(waves)*(d.over.TaskOverheadSec+perTaskUS/1e6)
}

// shuffleJoinTime models the MR-style redistribution join: a map stage reads
// both relations and shuffles them by key, a reduce stage sorts its
// partitions, merges matching records, and writes the output.
func (d *Distributed) shuffleJoinTime(spec plan.JoinSpec) float64 {
	outSize := spec.OutputRowSize()
	mapBytes := spec.Left.Bytes() + spec.Right.Bytes()
	mapTasks := d.cfg.NumTasks(mapBytes)
	mapWaves := d.cfg.TaskWaves(mapTasks)
	mapUS := spec.Left.Rows*(d.costs.At(ReadDFS, spec.Left.RowSize, true)+d.costs.At(Shuffle, spec.Left.RowSize, true)) +
		spec.Right.Rows*(d.costs.At(ReadDFS, spec.Right.RowSize, true)+d.costs.At(Shuffle, spec.Right.RowSize, true))
	mapSec := float64(mapWaves) * (d.over.TaskOverheadSec + mapUS/float64(mapTasks)/1e6)

	redTasks := d.cfg.Slots()
	inRecs := spec.Left.Rows + spec.Right.Rows
	sortUS := spec.Left.Rows*sortUnit(d.costs, spec.Left.RowSize, spec.Left.Rows/float64(redTasks)) +
		spec.Right.Rows*sortUnit(d.costs, spec.Right.RowSize, spec.Right.Rows/float64(redTasks))
	mergeUS := inRecs*d.costs.At(Scan, (spec.Left.RowSize+spec.Right.RowSize)/2, true) +
		spec.OutputRows*d.costs.At(RecMerge, outSize, true)
	writeUS := spec.OutputRows * d.costs.At(WriteDFS, outSize, true)
	redUS := (sortUS + mergeUS + writeUS) * d.over.PipelineFactor
	redSec := d.over.StageStartupSec + d.over.TaskOverheadSec + redUS/float64(redTasks)/1e6

	return d.over.JobStartupSec + mapSec + redSec
}

// shuffleHashJoinTime is Spark's shuffle-hash variant: shuffle both sides,
// then hash-build the smaller partition and probe with the larger instead
// of sorting.
func (d *Distributed) shuffleHashJoinTime(spec plan.JoinSpec) float64 {
	outSize := spec.OutputRowSize()
	s, _ := spec.SmallSide()
	r := spec.BigSide()
	mapBytes := spec.Left.Bytes() + spec.Right.Bytes()
	mapTasks := d.cfg.NumTasks(mapBytes)
	mapWaves := d.cfg.TaskWaves(mapTasks)
	mapUS := spec.Left.Rows*(d.costs.At(ReadDFS, spec.Left.RowSize, true)+d.costs.At(Shuffle, spec.Left.RowSize, true)) +
		spec.Right.Rows*(d.costs.At(ReadDFS, spec.Right.RowSize, true)+d.costs.At(Shuffle, spec.Right.RowSize, true))
	mapSec := float64(mapWaves) * (d.over.TaskOverheadSec + mapUS/float64(mapTasks)/1e6)

	redTasks := d.cfg.Slots()
	inMem := d.cfg.FitsInMemory(s.Bytes() / float64(redTasks))
	redUS := s.Rows*d.costs.At(HashBuild, s.RowSize, inMem) +
		r.Rows*d.costs.At(HashProbe, r.RowSize, true) +
		spec.OutputRows*(d.costs.At(RecMerge, outSize, true)+d.costs.At(WriteDFS, outSize, true))
	redUS *= d.over.PipelineFactor
	redSec := d.over.StageStartupSec + d.over.TaskOverheadSec + redUS/float64(redTasks)/1e6

	return d.over.JobStartupSec + mapSec + redSec
}

// replicatedJoinTime models Presto's replicated join: the build side is
// streamed to every worker (no driver round-trip and no local-disk staging
// — the MPP engine pipelines), each worker hash-builds it, and the probe
// side streams through.
func (d *Distributed) replicatedJoinTime(spec plan.JoinSpec) float64 {
	s, _ := spec.SmallSide()
	r := spec.BigSide()
	inMem := d.cfg.FitsInMemory(s.Bytes())
	outSize := spec.OutputRowSize()
	tasks := d.cfg.NumTasks(r.Bytes())
	waves := d.cfg.TaskWaves(tasks)
	replicateUS := s.Rows * (d.costs.At(ReadDFS, s.RowSize, true) + d.costs.broadcastUnit(s.RowSize, d.cfg))
	perTaskUS := s.Rows*d.costs.At(HashBuild, s.RowSize, inMem) +
		r.Rows/float64(tasks)*(d.costs.At(ReadDFS, r.RowSize, true)+d.costs.At(HashProbe, r.RowSize, true)) +
		spec.OutputRows/float64(tasks)*d.costs.At(WriteDFS, outSize, true)
	perTaskUS *= d.over.PipelineFactor
	return d.over.JobStartupSec + replicateUS/1e6 + float64(waves)*(d.over.TaskOverheadSec+perTaskUS/1e6)
}

// bucketMapJoinTime models Hive's bucket map join: both sides are bucketed
// on the key, so each task reads only the matching bucket of S, hash-builds
// it, and probes with its local R block.
func (d *Distributed) bucketMapJoinTime(spec plan.JoinSpec) float64 {
	s, _ := spec.SmallSide()
	r := spec.BigSide()
	outSize := spec.OutputRowSize()
	tasks := d.cfg.NumTasks(r.Bytes())
	waves := d.cfg.TaskWaves(tasks)
	buckets := float64(d.cfg.Slots())
	bucketRecs := s.Rows / buckets
	inMem := d.cfg.FitsInMemory(s.Bytes() / buckets)
	recsR := r.Rows / float64(tasks)
	outPerTask := spec.OutputRows / float64(tasks)
	perTaskUS := bucketRecs*(d.costs.At(ReadDFS, s.RowSize, true)+d.costs.At(HashBuild, s.RowSize, inMem)) +
		recsR*(d.costs.At(ReadLocal, r.RowSize, true)+d.costs.At(HashProbe, r.RowSize, true)) +
		outPerTask*d.costs.At(WriteDFS, outSize, true)
	perTaskUS *= d.over.PipelineFactor
	return d.over.JobStartupSec + float64(waves)*(d.over.TaskOverheadSec+perTaskUS/1e6)
}

// sortMergeBucketJoinTime models Hive's SMB join: both sides bucketed and
// sorted, so a map-only stage merges co-located buckets directly.
func (d *Distributed) sortMergeBucketJoinTime(spec plan.JoinSpec) float64 {
	outSize := spec.OutputRowSize()
	totalBytes := spec.Left.Bytes() + spec.Right.Bytes()
	tasks := d.cfg.NumTasks(totalBytes)
	waves := d.cfg.TaskWaves(tasks)
	totalUS := spec.Left.Rows*d.costs.At(ReadDFS, spec.Left.RowSize, true) +
		spec.Right.Rows*d.costs.At(ReadDFS, spec.Right.RowSize, true) +
		spec.OutputRows*(d.costs.At(RecMerge, outSize, true)+d.costs.At(WriteDFS, outSize, true))
	totalUS *= d.over.PipelineFactor
	return d.over.JobStartupSec + float64(waves)*(d.over.TaskOverheadSec+totalUS/float64(tasks)/1e6)
}

// broadcastNLJoinTime models Spark's broadcast nested-loop join for
// non-equi joins with a small side.
func (d *Distributed) broadcastNLJoinTime(spec plan.JoinSpec) float64 {
	s, _ := spec.SmallSide()
	r := spec.BigSide()
	outSize := spec.OutputRowSize()
	driverUS := s.Rows * (d.costs.At(ReadDFS, s.RowSize, true) + d.costs.broadcastUnit(s.RowSize, d.cfg))
	tasks := d.cfg.NumTasks(r.Bytes())
	waves := d.cfg.TaskWaves(tasks)
	recsR := r.Rows / float64(tasks)
	// Every probe record scans the entire broadcast side.
	perTaskUS := recsR*d.costs.At(ReadLocal, r.RowSize, true) +
		recsR*s.Rows*d.costs.At(Scan, s.RowSize, true) +
		spec.OutputRows/float64(tasks)*d.costs.At(WriteDFS, outSize, true)
	perTaskUS *= d.over.PipelineFactor
	return d.over.JobStartupSec + driverUS/1e6 + float64(waves)*(d.over.TaskOverheadSec+perTaskUS/1e6)
}

// cartesianJoinTime models Spark's cartesian product join: both sides are
// shuffled into grid cells and every pair of partitions is scanned.
func (d *Distributed) cartesianJoinTime(spec plan.JoinSpec) float64 {
	outSize := spec.OutputRowSize()
	mapBytes := spec.Left.Bytes() + spec.Right.Bytes()
	mapTasks := d.cfg.NumTasks(mapBytes)
	mapWaves := d.cfg.TaskWaves(mapTasks)
	mapUS := spec.Left.Rows*(d.costs.At(ReadDFS, spec.Left.RowSize, true)+d.costs.At(Shuffle, spec.Left.RowSize, true)) +
		spec.Right.Rows*(d.costs.At(ReadDFS, spec.Right.RowSize, true)+d.costs.At(Shuffle, spec.Right.RowSize, true))
	mapSec := float64(mapWaves) * (d.over.TaskOverheadSec + mapUS/float64(mapTasks)/1e6)

	redTasks := d.cfg.Slots()
	pairScans := spec.Left.Rows * spec.Right.Rows
	redUS := pairScans*d.costs.At(Scan, (spec.Left.RowSize+spec.Right.RowSize)/2, true) +
		spec.OutputRows*(d.costs.At(RecMerge, outSize, true)+d.costs.At(WriteDFS, outSize, true))
	redUS *= d.over.PipelineFactor
	redSec := d.over.StageStartupSec + d.over.TaskOverheadSec + redUS/float64(redTasks)/1e6
	return d.over.JobStartupSec + mapSec + redSec
}

// ExecuteAgg implements System: map-side partial aggregation, shuffle of the
// partials, reduce-side final merge, output write.
func (d *Distributed) ExecuteAgg(spec plan.AggSpec) (Execution, error) {
	if err := spec.Validate(); err != nil {
		return Execution{}, fmt.Errorf("remote %q: %w", d.name, err)
	}
	ah := hashAggSpec(spec)
	if ex, ok := d.memo.agg.get(ah, spec); ok {
		return ex, nil
	}
	mapTasks := d.cfg.NumTasks(spec.InputRows * spec.InputRowSize)
	mapWaves := d.cfg.TaskWaves(mapTasks)
	aggFactor := 1 + 0.15*float64(spec.NumAggregates)
	groupsInMem := d.cfg.FitsInMemory(spec.OutputRows * spec.OutputRowSize)
	mapUS := spec.InputRows * (d.costs.At(ReadDFS, spec.InputRowSize, true) +
		d.costs.At(Scan, spec.InputRowSize, true)*aggFactor +
		d.costs.At(HashBuild, spec.InputRowSize, groupsInMem)*0.35)
	mapUS *= d.over.PipelineFactor

	// Each map task emits at most one partial per group.
	partials := spec.OutputRows * float64(mapTasks)
	if partials > spec.InputRows {
		partials = spec.InputRows
	}
	// Reducers fold each partial into the group table (a probe + update per
	// partial) and merge/write one final record per group.
	shuffleUS := partials * d.costs.At(Shuffle, spec.OutputRowSize, true)
	redTasks := d.cfg.Slots()
	redUS := partials*d.costs.At(HashProbe, spec.OutputRowSize, true)*aggFactor +
		spec.OutputRows*(d.costs.At(RecMerge, spec.OutputRowSize, true)+d.costs.At(WriteDFS, spec.OutputRowSize, true))
	redUS = (shuffleUS + redUS) * d.over.PipelineFactor

	sec := d.over.JobStartupSec +
		float64(mapWaves)*(d.over.TaskOverheadSec+mapUS/float64(mapTasks)/1e6) +
		d.over.StageStartupSec + d.over.TaskOverheadSec + redUS/float64(redTasks)/1e6
	var kb [160]byte
	key := newNoiseKey(kb[:], "agg|").aggDims(spec)
	sec *= noiseBytes(key, d.seed, d.noise)
	ex := Execution{ElapsedSec: sec, Algorithm: "hash_aggregation"}
	d.memo.agg.put(ah, spec, ex)
	return ex, nil
}

// ExecuteScan implements System: a map-only filter/project stage.
func (d *Distributed) ExecuteScan(spec plan.ScanSpec) (Execution, error) {
	if err := spec.Validate(); err != nil {
		return Execution{}, fmt.Errorf("remote %q: %w", d.name, err)
	}
	sh := hashScanSpec(spec)
	if ex, ok := d.memo.scan.get(sh, spec); ok {
		return ex, nil
	}
	tasks := d.cfg.NumTasks(spec.InputRows * spec.InputRowSize)
	waves := d.cfg.TaskWaves(tasks)
	us := spec.InputRows*(d.costs.At(ReadDFS, spec.InputRowSize, true)+d.costs.At(Scan, spec.InputRowSize, true)) +
		spec.OutputRows()*d.costs.At(WriteDFS, spec.OutputRowSize, true)
	us *= d.over.PipelineFactor
	sec := d.over.JobStartupSec + float64(waves)*(d.over.TaskOverheadSec+us/float64(tasks)/1e6)
	var kb [160]byte
	key := newNoiseKey(kb[:], "scan|").
		float(spec.InputRows).sep().float(spec.InputRowSize).sep().
		float(spec.Selectivity).sep().float(spec.OutputRowSize)
	sec *= noiseBytes(key, d.seed, d.noise)
	ex := Execution{ElapsedSec: sec, Algorithm: "scan"}
	d.memo.scan.put(sh, spec, ex)
	return ex, nil
}

// ExecuteProbe implements System. Probes follow the Figure 5 footnote
// recipes: every probe reads its input from the DFS and exercises at most
// one additional sub-operation, so per-record costs can be differenced out.
func (d *Distributed) ExecuteProbe(p Probe) (Execution, error) {
	if err := p.Validate(); err != nil {
		return Execution{}, fmt.Errorf("remote %q: %w", d.name, err)
	}
	ph := hashProbe(p)
	if ex, ok := d.memo.probe.get(ph, p); ok {
		return ex, nil
	}
	read := d.costs.At(ReadDFS, p.RecordSize, true)
	var extra float64
	switch p.Target {
	case ReadDFS:
		extra = 0
	case WriteDFS:
		extra = d.costs.At(WriteDFS, p.RecordSize, true)
	case ReadLocal:
		extra = d.costs.At(ReadLocal, p.RecordSize, true)
	case WriteLocal:
		extra = d.costs.At(WriteLocal, p.RecordSize, true)
	case Shuffle:
		extra = d.costs.At(Shuffle, p.RecordSize, true)
	case Broadcast:
		extra = d.costs.broadcastUnit(p.RecordSize, d.cfg)
	case Sort:
		tasks := d.cfg.NumTasks(p.Records * p.RecordSize)
		extra = sortUnit(d.costs, p.RecordSize, p.Records/float64(tasks))
	case Scan:
		extra = d.costs.At(Scan, p.RecordSize, true)
	case HashBuild:
		build := p.BuildBytes
		if build == 0 {
			build = float64(d.cfg.DFSBlockBytes)
		}
		extra = d.costs.At(HashBuild, p.RecordSize, d.cfg.FitsInMemory(build))
	case HashProbe:
		extra = d.costs.At(HashProbe, p.RecordSize, true)
	case RecMerge:
		extra = d.costs.At(RecMerge, p.RecordSize, true)
	default:
		return Execution{}, fmt.Errorf("remote %q: unknown probe target %v", d.name, p.Target)
	}
	tasks := d.cfg.NumTasks(p.Records * p.RecordSize)
	waves := d.cfg.TaskWaves(tasks)
	perTaskUS := p.Records / float64(tasks) * (read + extra)
	sec := d.over.JobStartupSec + float64(waves)*(d.over.TaskOverheadSec+perTaskUS/1e6)
	var kb [160]byte
	key := newNoiseKey(kb[:], "probe|").
		str(p.Target.String()).sep().float(p.Records).sep().
		float(p.RecordSize).sep().float(p.BuildBytes)
	sec *= noiseBytes(key, d.seed, d.noise)
	ex := Execution{ElapsedSec: sec, Algorithm: "probe:" + p.Target.String()}
	d.memo.probe.put(ph, p, ex)
	return ex, nil
}
