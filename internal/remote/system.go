package remote

import (
	"fmt"
	"hash/fnv"
	"math"

	"intellisphere/internal/cluster"
	"intellisphere/internal/plan"
)

// Execution reports one simulated operator run on a remote system.
type Execution struct {
	ElapsedSec float64 // wall-clock time inside the remote system
	Algorithm  string  // physical algorithm the remote chose
}

// Capabilities declares which SQL operations a remote system supports. The
// paper notes a remote may lack operations entirely (e.g. no join support).
type Capabilities struct {
	Join        bool `json:"join"`
	Aggregation bool `json:"aggregation"`
	Scan        bool `json:"scan"`
}

// Probe is a primitive calibration query from Figure 5's footnotes: it
// exercises ReadDFS plus (for all but the ReadDFS probe itself) exactly one
// target sub-operation, so the caller can difference out the read cost.
type Probe struct {
	Target     SubOp
	Records    float64
	RecordSize float64
	// BuildBytes sizes the hash table for HashBuild probes so callers can
	// exercise both the in-memory and the spill regime. 0 means one DFS
	// block per task (always in memory on sane configurations).
	BuildBytes float64
}

// Validate reports structural problems with the probe.
func (p Probe) Validate() error {
	if p.Records <= 0 || p.RecordSize <= 0 {
		return fmt.Errorf("remote: probe needs positive records (%v) and record size (%v)", p.Records, p.RecordSize)
	}
	if p.BuildBytes < 0 {
		return fmt.Errorf("remote: negative probe build bytes %v", p.BuildBytes)
	}
	return nil
}

// System is a remote engine in the IntelliSphere ecosystem. Implementations
// simulate execution analytically over operator statistics; they never
// materialize rows.
type System interface {
	// Name returns the system's registered name.
	Name() string
	// Capabilities reports which operations the system supports.
	Capabilities() Capabilities
	// Cluster exposes the cluster shape. Openbox costing may read it;
	// blackbox costing must not.
	Cluster() cluster.Config
	// ExecuteJoin runs a join and returns its elapsed time.
	ExecuteJoin(spec plan.JoinSpec) (Execution, error)
	// ExecuteAgg runs a grouping/aggregation.
	ExecuteAgg(spec plan.AggSpec) (Execution, error)
	// ExecuteScan runs a filtering/projecting scan.
	ExecuteScan(spec plan.ScanSpec) (Execution, error)
	// ExecuteProbe runs a primitive calibration query (Figure 5).
	ExecuteProbe(p Probe) (Execution, error)
}

// noise produces a deterministic multiplicative factor 1±amplitude derived
// from the key string and seed, so repeated identical queries time
// identically (the simulator is reproducible) while distinct queries get
// independent perturbations.
// The hot paths render keys with the noiseKey builder and call noiseBytes
// directly; this string form remains for tests and cold callers.
func noise(key string, seed int64, amplitude float64) float64 {
	if amplitude == 0 {
		return 1
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s", seed, key)
	return noiseFinish(h.Sum64(), amplitude)
}

// sortUnit returns the per-record sort cost including the log-scaling term
// that makes large sorts super-linear (a nonlinearity the logical-op NN can
// capture but a plain linear model cannot).
func sortUnit(t *SubOpCosts, s, recordsPerTask float64) float64 {
	u := t.Costs[Sort].At(s)
	if t.SortLogFactor > 0 && recordsPerTask > 2 {
		u *= 1 + t.SortLogFactor*math.Log2(recordsPerTask)
	}
	return u
}
