//go:build !race

package remote

const raceEnabled = false
