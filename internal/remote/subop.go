// Package remote implements the simulated remote systems that stand in for
// the paper's Hive/Hadoop evaluation cluster (and the SparkSQL / RDBMS
// systems the paper names as future targets). A remote system receives a
// SQL operator description — join, aggregation, or scan — plans a physical
// algorithm for it exactly the way the real engine class would (Hive picks
// among Shuffle, Broadcast/Map, Bucket Map, Sort-Merge-Bucket, and Skew
// joins; Spark among Broadcast Hash, Shuffle Hash, Sort-Merge, Broadcast
// Nested-Loop, and Cartesian), and returns a simulated wall-clock elapsed
// time.
//
// Ground truth: each system owns a hidden table of per-record sub-operator
// costs (µs as a linear function of record size) seeded with the paper's own
// fitted measurements (Figures 7 and 13), plus MapReduce-style job startup,
// per-task-wave overheads, task-wave discretization, a memory-spill regime
// for hash builds, intra-task pipelining overlap, and small deterministic
// noise. The cost estimation module never reads this table — it only
// observes (query → elapsed seconds), exactly like the paper's module
// observing a live cluster.
package remote

import (
	"fmt"

	"intellisphere/internal/cluster"
)

// SubOp enumerates the primitive building-block operators of Figure 5.
type SubOp int

// The sub-operators of Figure 5. The first eight are the paper's "Basic"
// (mandatory) set; the last three are "Specific" (optional).
const (
	ReadDFS SubOp = iota
	WriteDFS
	ReadLocal
	WriteLocal
	Shuffle
	Broadcast
	Sort
	Scan
	HashBuild
	HashProbe
	RecMerge
	numSubOps
)

// AllSubOps lists every sub-operator in declaration order.
func AllSubOps() []SubOp {
	ops := make([]SubOp, numSubOps)
	for i := range ops {
		ops[i] = SubOp(i)
	}
	return ops
}

// BasicSubOps lists the mandatory sub-operators of Figure 5.
func BasicSubOps() []SubOp {
	return []SubOp{ReadDFS, WriteDFS, ReadLocal, WriteLocal, Shuffle, Broadcast, Sort, Scan}
}

// SpecificSubOps lists the optional sub-operators of Figure 5.
func SpecificSubOps() []SubOp {
	return []SubOp{HashBuild, HashProbe, RecMerge}
}

// String returns the sub-operator's name.
func (s SubOp) String() string {
	switch s {
	case ReadDFS:
		return "ReadDFS"
	case WriteDFS:
		return "WriteDFS"
	case ReadLocal:
		return "ReadLocal"
	case WriteLocal:
		return "WriteLocal"
	case Shuffle:
		return "Shuffle"
	case Broadcast:
		return "Broadcast"
	case Sort:
		return "Sort"
	case Scan:
		return "Scan"
	case HashBuild:
		return "HashBuild"
	case HashProbe:
		return "HashProbe"
	case RecMerge:
		return "RecMerge"
	default:
		return fmt.Sprintf("SubOp(%d)", int(s))
	}
}

// Symbol returns the paper's single-letter notation for the sub-operator
// (Figure 5): rD, wD, rL, wL, f, b, o, c, hI, hP, m.
func (s SubOp) Symbol() string {
	switch s {
	case ReadDFS:
		return "rD"
	case WriteDFS:
		return "wD"
	case ReadLocal:
		return "rL"
	case WriteLocal:
		return "wL"
	case Shuffle:
		return "f"
	case Broadcast:
		return "b"
	case Sort:
		return "o"
	case Scan:
		return "c"
	case HashBuild:
		return "hI"
	case HashProbe:
		return "hP"
	case RecMerge:
		return "m"
	default:
		return "?"
	}
}

// CostFn is a per-record cost in microseconds as a linear function of record
// size in bytes: µs(s) = Slope·s + Intercept.
type CostFn struct {
	Slope     float64 `json:"slope"`
	Intercept float64 `json:"intercept"`
}

// At evaluates the per-record cost at record size s bytes.
func (c CostFn) At(s float64) float64 { return c.Slope*s + c.Intercept }

// SubOpCosts is a remote system's hidden ground-truth per-record cost table.
// HashBuild carries two regimes: the in-memory model applies while the hash
// table fits in a task's memory budget, the spill model beyond it (the spill
// line can dip below the in-memory one at small record sizes, so evaluation
// takes the max of the two in the spill regime).
type SubOpCosts struct {
	Costs         [numSubOps]CostFn
	HashSpill     CostFn  // spill-regime HashBuild model
	BroadcastPer  bool    // if true, Broadcast cost multiplies by (dataNodes-1)
	SortLogFactor float64 // extra per-record factor ·log2(records per task); 0 disables
}

// At returns the per-record µs cost of op at record size s. For HashBuild
// pass inMemory to select the regime.
func (t *SubOpCosts) At(op SubOp, s float64, inMemory bool) float64 {
	if op == HashBuild && !inMemory {
		spill := t.HashSpill.At(s)
		base := t.Costs[HashBuild].At(s)
		if spill < base {
			return base
		}
		return spill
	}
	return t.Costs[op].At(s)
}

// DefaultHiveCosts returns the ground truth table for the Hive-like system.
// Where the paper publishes a fitted model we adopt it verbatim:
// ReadDFS from Figure 7(b), WriteDFS/Shuffle/RecMerge/HashBuild from
// Figures 13(c)–(f). The rest are chosen to sit in plausible relation to
// those (local I/O cheaper than DFS I/O, probe cheaper than build).
func DefaultHiveCosts() *SubOpCosts {
	t := &SubOpCosts{}
	t.Costs[ReadDFS] = CostFn{Slope: 0.0041, Intercept: 0.6323}
	t.Costs[WriteDFS] = CostFn{Slope: 0.0314, Intercept: 0.7403}
	t.Costs[ReadLocal] = CostFn{Slope: 0.0020, Intercept: 0.4000}
	t.Costs[WriteLocal] = CostFn{Slope: 0.0150, Intercept: 0.5500}
	t.Costs[Shuffle] = CostFn{Slope: 0.0126, Intercept: 5.2551}
	t.Costs[Broadcast] = CostFn{Slope: 0.0126, Intercept: 5.0000}
	t.Costs[Sort] = CostFn{Slope: 0.0040, Intercept: 2.0000}
	t.Costs[Scan] = CostFn{Slope: 0.0010, Intercept: 0.1000}
	t.Costs[HashBuild] = CostFn{Slope: 0.0248, Intercept: 18.2410}
	t.Costs[HashProbe] = CostFn{Slope: 0.0080, Intercept: 1.2000}
	t.Costs[RecMerge] = CostFn{Slope: 0.0344, Intercept: 36.7010}
	t.HashSpill = CostFn{Slope: 0.1821, Intercept: -51.6140}
	t.BroadcastPer = true
	t.SortLogFactor = 0.04
	return t
}

// DefaultSparkCosts returns the ground truth for the Spark-like system:
// the same shape as Hive but with cheaper shuffle and I/O (in-memory
// execution), reflecting the engine-class difference the paper stresses —
// models learned on one system do not transfer to another.
func DefaultSparkCosts() *SubOpCosts {
	t := &SubOpCosts{}
	t.Costs[ReadDFS] = CostFn{Slope: 0.0031, Intercept: 0.4500}
	t.Costs[WriteDFS] = CostFn{Slope: 0.0240, Intercept: 0.6000}
	t.Costs[ReadLocal] = CostFn{Slope: 0.0008, Intercept: 0.1500}
	t.Costs[WriteLocal] = CostFn{Slope: 0.0060, Intercept: 0.2500}
	t.Costs[Shuffle] = CostFn{Slope: 0.0072, Intercept: 2.1000}
	t.Costs[Broadcast] = CostFn{Slope: 0.0080, Intercept: 2.0000}
	t.Costs[Sort] = CostFn{Slope: 0.0030, Intercept: 1.2000}
	t.Costs[Scan] = CostFn{Slope: 0.0006, Intercept: 0.0500}
	t.Costs[HashBuild] = CostFn{Slope: 0.0160, Intercept: 9.0000}
	t.Costs[HashProbe] = CostFn{Slope: 0.0055, Intercept: 0.7000}
	t.Costs[RecMerge] = CostFn{Slope: 0.0210, Intercept: 17.0000}
	t.HashSpill = CostFn{Slope: 0.1100, Intercept: -20.0000}
	t.BroadcastPer = true
	t.SortLogFactor = 0.04
	return t
}

// DefaultPrestoCosts returns the ground truth for the Presto-like MPP
// system: fully pipelined in-memory execution with cheap exchanges and the
// lowest fixed latencies of the distributed engines.
func DefaultPrestoCosts() *SubOpCosts {
	t := &SubOpCosts{}
	t.Costs[ReadDFS] = CostFn{Slope: 0.0028, Intercept: 0.3800}
	t.Costs[WriteDFS] = CostFn{Slope: 0.0200, Intercept: 0.5000}
	t.Costs[ReadLocal] = CostFn{Slope: 0.0006, Intercept: 0.1200}
	t.Costs[WriteLocal] = CostFn{Slope: 0.0050, Intercept: 0.2000}
	t.Costs[Shuffle] = CostFn{Slope: 0.0058, Intercept: 1.6000}
	t.Costs[Broadcast] = CostFn{Slope: 0.0065, Intercept: 1.5000}
	t.Costs[Sort] = CostFn{Slope: 0.0026, Intercept: 1.0000}
	t.Costs[Scan] = CostFn{Slope: 0.0005, Intercept: 0.0400}
	t.Costs[HashBuild] = CostFn{Slope: 0.0140, Intercept: 7.5000}
	t.Costs[HashProbe] = CostFn{Slope: 0.0048, Intercept: 0.6000}
	t.Costs[RecMerge] = CostFn{Slope: 0.0180, Intercept: 14.0000}
	t.HashSpill = CostFn{Slope: 0.0950, Intercept: -16.0000}
	t.BroadcastPer = true
	t.SortLogFactor = 0.04
	return t
}

// DefaultPrestoOverheads mirrors an always-on MPP coordinator.
func DefaultPrestoOverheads() Overheads {
	return Overheads{JobStartupSec: 0.2, TaskOverheadSec: 0.02, StageStartupSec: 0.1, PipelineFactor: 0.72}
}

// DefaultRDBMSCosts returns the ground truth for the single-node RDBMS-like
// system: no DFS, no shuffle; fast local I/O and CPU primitives.
func DefaultRDBMSCosts() *SubOpCosts {
	t := &SubOpCosts{}
	t.Costs[ReadDFS] = CostFn{Slope: 0.0025, Intercept: 0.3000} // table scan from disk
	t.Costs[WriteDFS] = CostFn{Slope: 0.0180, Intercept: 0.5000}
	t.Costs[ReadLocal] = CostFn{Slope: 0.0010, Intercept: 0.2000}
	t.Costs[WriteLocal] = CostFn{Slope: 0.0080, Intercept: 0.3000}
	t.Costs[Shuffle] = CostFn{Slope: 0, Intercept: 0} // single node: nothing to shuffle
	t.Costs[Broadcast] = CostFn{Slope: 0, Intercept: 0}
	t.Costs[Sort] = CostFn{Slope: 0.0035, Intercept: 1.0000}
	t.Costs[Scan] = CostFn{Slope: 0.0008, Intercept: 0.0800}
	t.Costs[HashBuild] = CostFn{Slope: 0.0140, Intercept: 6.0000}
	t.Costs[HashProbe] = CostFn{Slope: 0.0050, Intercept: 0.6000}
	t.Costs[RecMerge] = CostFn{Slope: 0.0180, Intercept: 10.0000}
	t.HashSpill = CostFn{Slope: 0.0900, Intercept: -15.0000}
	t.SortLogFactor = 0.04
	return t
}

// Overheads captures the fixed latencies of a remote system's execution
// framework: submitting a job, launching one task wave, and starting a
// shuffle/reduce stage.
type Overheads struct {
	JobStartupSec   float64 `json:"job_startup_sec"`
	TaskOverheadSec float64 `json:"task_overhead_sec"`
	StageStartupSec float64 `json:"stage_startup_sec"`
	// PipelineFactor discounts the summed per-record work of a task that
	// interleaves three or more distinct sub-operations (real engines
	// overlap I/O with CPU within a task); 1.0 disables the discount.
	PipelineFactor float64 `json:"pipeline_factor"`
}

// DefaultHiveOverheads mirrors Hive-on-Tez-era latencies: a noticeable job
// submission delay, modest per-task-wave spin-up, and a shuffle-stage
// startup. (Classic MapReduce task overheads would be several seconds; the
// paper's measured per-record costs imply the lighter container-reuse
// regime, so that is what we model.)
func DefaultHiveOverheads() Overheads {
	return Overheads{JobStartupSec: 3, TaskOverheadSec: 0.1, StageStartupSec: 1, PipelineFactor: 0.72}
}

// DefaultSparkOverheads mirrors a warm long-running executor model.
func DefaultSparkOverheads() Overheads {
	return Overheads{JobStartupSec: 0.8, TaskOverheadSec: 0.05, StageStartupSec: 0.3, PipelineFactor: 0.72}
}

// DefaultRDBMSOverheads mirrors an interactive database.
func DefaultRDBMSOverheads() Overheads {
	return Overheads{JobStartupSec: 0.05, TaskOverheadSec: 0, StageStartupSec: 0, PipelineFactor: 0.80}
}

// broadcastUnit returns the per-record broadcast cost given the cluster
// shape (per receiving node when BroadcastPer is set).
func (t *SubOpCosts) broadcastUnit(s float64, c cluster.Config) float64 {
	u := t.Costs[Broadcast].At(s)
	if t.BroadcastPer {
		n := float64(c.DataNodes - 1)
		if n < 1 {
			n = 1
		}
		return u * n
	}
	return u
}
