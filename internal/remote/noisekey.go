package remote

import (
	"strconv"

	"intellisphere/internal/plan"
)

// The simulators key their deterministic noise on a textual rendering of the
// operator spec. The original construction went through fmt.Sprintf, which
// dominated the serving-path profile (reflection plus a string allocation per
// operator). The builder below produces the exact same byte sequence with
// append-only calls into a caller-provided stack buffer and feeds it to an
// inline FNV-1a stream, so the hot path allocates nothing. Byte-for-byte
// equality with the fmt rendering is pinned by noisekey_test.go — drifting
// would silently change every simulated timing in the repo.

// noiseKey is an append-only builder for noise-key bytes.
type noiseKey []byte

// newNoiseKey starts a key in buf with the given literal prefix.
func newNoiseKey(buf []byte, prefix string) noiseKey {
	return append(noiseKey(buf[:0]), prefix...)
}

func (k noiseKey) str(s string) noiseKey { return append(k, s...) }
func (k noiseKey) sep() noiseKey         { return append(k, '|') }

// float appends a float64 exactly as fmt's %v verb renders one: shortest
// 'g'-format via strconv.
func (k noiseKey) float(f float64) noiseKey {
	return strconv.AppendFloat(k, f, 'g', -1, 64)
}

// dims appends a float slice exactly as %v renders one: "[a b c]".
func (k noiseKey) dims(ds ...float64) noiseKey {
	k = append(k, '[')
	for i, d := range ds {
		if i > 0 {
			k = append(k, ' ')
		}
		k = k.float(d)
	}
	return append(k, ']')
}

// joinDims appends spec.Dims() for a join without materializing the slice.
func (k noiseKey) joinDims(j plan.JoinSpec) noiseKey {
	return k.dims(
		j.Left.RowSize, j.Left.Rows,
		j.Right.RowSize, j.Right.Rows,
		j.Left.ProjectedSize, j.Right.ProjectedSize,
		j.OutputRows,
	)
}

// aggDims appends spec.Dims() for an aggregation.
func (k noiseKey) aggDims(a plan.AggSpec) noiseKey {
	return k.dims(a.InputRows, a.InputRowSize, a.OutputRows, a.OutputRowSize)
}

// FNV-1a 64-bit parameters (hash/fnv, inlined to hash without a Writer).
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// noiseBytes is noise for an already-rendered key. It reproduces the exact
// hash stream of noise's fmt.Fprintf(h, "%d|%s", seed, key) without
// allocating: decimal seed bytes, a '|', then the key bytes, through FNV-1a.
func noiseBytes(key []byte, seed int64, amplitude float64) float64 {
	if amplitude == 0 {
		return 1
	}
	var sb [20]byte // fits any int64 in decimal
	h := uint64(fnvOffset64)
	for _, c := range strconv.AppendInt(sb[:0], seed, 10) {
		h = (h ^ uint64(c)) * fnvPrime64
	}
	h = (h ^ uint64('|')) * fnvPrime64
	for _, c := range key {
		h = (h ^ uint64(c)) * fnvPrime64
	}
	return noiseFinish(h, amplitude)
}

// noiseFinish maps the raw hash to the 1±amplitude factor (splitmix64
// finalizer for bit diffusion, then uniform [0,1)).
func noiseFinish(v uint64, amplitude float64) float64 {
	v ^= v >> 30
	v *= 0xbf58476d1ce4e5b9
	v ^= v >> 27
	v *= 0x94d049bb133111eb
	v ^= v >> 31
	u := float64(v>>11) / float64(1<<53)
	return 1 + amplitude*(2*u-1)
}
