package remote

// JoinAlgorithm names a physical join implementation. Hive and Spark each
// support five (Section 4); the single-node RDBMS simulator supports three.
type JoinAlgorithm string

// Hive join algorithms.
const (
	HiveShuffleJoin         JoinAlgorithm = "hive.shuffle_join"
	HiveBroadcastJoin       JoinAlgorithm = "hive.broadcast_join" // a.k.a. map join
	HiveBucketMapJoin       JoinAlgorithm = "hive.bucket_map_join"
	HiveSortMergeBucketJoin JoinAlgorithm = "hive.sort_merge_bucket_join"
	HiveSkewJoin            JoinAlgorithm = "hive.skew_join"
)

// Spark join algorithms.
const (
	SparkBroadcastHashJoin JoinAlgorithm = "spark.broadcast_hash_join"
	SparkShuffleHashJoin   JoinAlgorithm = "spark.shuffle_hash_join"
	SparkSortMergeJoin     JoinAlgorithm = "spark.sort_merge_join"
	SparkBroadcastNLJoin   JoinAlgorithm = "spark.broadcast_nested_loop_join"
	SparkCartesianJoin     JoinAlgorithm = "spark.cartesian_product_join"
)

// Presto join algorithms (the MPP engine distributes either by
// repartitioning both sides or by replicating the build side).
const (
	PrestoPartitionedJoin JoinAlgorithm = "presto.partitioned_join"
	PrestoReplicatedJoin  JoinAlgorithm = "presto.replicated_join"
	PrestoCrossJoin       JoinAlgorithm = "presto.cross_join"
)

// RDBMS join algorithms.
const (
	RDBMSHashJoin       JoinAlgorithm = "rdbms.hash_join"
	RDBMSMergeJoin      JoinAlgorithm = "rdbms.merge_join"
	RDBMSNestedLoopJoin JoinAlgorithm = "rdbms.nested_loop_join"
)

// PrestoJoinAlgorithms lists Presto's physical join implementations.
func PrestoJoinAlgorithms() []JoinAlgorithm {
	return []JoinAlgorithm{PrestoPartitionedJoin, PrestoReplicatedJoin, PrestoCrossJoin}
}

// HiveJoinAlgorithms lists Hive's five physical join implementations.
func HiveJoinAlgorithms() []JoinAlgorithm {
	return []JoinAlgorithm{
		HiveShuffleJoin, HiveBroadcastJoin, HiveBucketMapJoin,
		HiveSortMergeBucketJoin, HiveSkewJoin,
	}
}

// SparkJoinAlgorithms lists Spark's five physical join implementations.
func SparkJoinAlgorithms() []JoinAlgorithm {
	return []JoinAlgorithm{
		SparkBroadcastHashJoin, SparkShuffleHashJoin, SparkSortMergeJoin,
		SparkBroadcastNLJoin, SparkCartesianJoin,
	}
}

// RDBMSJoinAlgorithms lists the RDBMS simulator's join implementations.
func RDBMSJoinAlgorithms() []JoinAlgorithm {
	return []JoinAlgorithm{RDBMSHashJoin, RDBMSMergeJoin, RDBMSNestedLoopJoin}
}
