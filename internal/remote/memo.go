package remote

import (
	"math"
	"sync/atomic"

	"intellisphere/internal/plan"
)

// The simulators are pure: an Execution is a deterministic function of the
// operator spec and construction-time state (cluster shape, cost tables,
// noise seed). At serving QPS the same specs recur constantly — the plan
// cache replays identical steps for repeated statements — so each simulator
// memoizes its results and skips the cost arithmetic and noise-key rendering
// on repeats. Memoization sits below the fault injector, so injected
// failures and latency still apply to every call.
//
// The table is a direct-mapped, lock-free cache: one atomic pointer per
// slot, indexed by a cheap inline hash of the spec, with the full spec
// stored in the entry and compared on read (Go map hashing of large float
// structs showed up at ~25% of the serving profile; a slot load plus a
// struct compare does not). Collisions simply overwrite — recurring hot
// specs immediately repopulate their slot — and capacity is fixed, so an
// adversarial stream of distinct specs degrades to cache misses, never to
// unbounded memory.

const execMemoSlots = 1024 // power of two; ~64KiB of padded slots per table

// memoSlot pads each slot pointer to a full cache line. Under concurrent
// serving, distinct hot specs hash to arbitrary neighbouring slots; with 8
// pointers per 64B line, a store for one spec would invalidate the line
// caching seven unrelated hot reads on every other core (false sharing).
// 1024 padded slots cost 64KiB per table — four tables per simulator, a few
// simulators per engine — which is noise next to the contention it removes.
type memoSlot[K comparable] struct {
	p atomic.Pointer[memoEntry[K]]
	_ [56]byte
}

// execMemo is one direct-mapped memo table.
type execMemo[K comparable] struct {
	slots [execMemoSlots]memoSlot[K]
}

type memoEntry[K comparable] struct {
	key K
	ex  Execution
}

func (c *execMemo[K]) get(h uint64, k K) (Execution, bool) {
	if e := c.slots[h&(execMemoSlots-1)].p.Load(); e != nil && e.key == k {
		return e.ex, true
	}
	return Execution{}, false
}

func (c *execMemo[K]) put(h uint64, k K, ex Execution) {
	c.slots[h&(execMemoSlots-1)].p.Store(&memoEntry[K]{key: k, ex: ex})
}

// joinMemoKey includes the algorithm because Distributed.ExecuteJoinWith
// lets callers force one; the empty algorithm marks the system's own choice.
type joinMemoKey struct {
	spec plan.JoinSpec
	alg  JoinAlgorithm
}

// execMemos bundles the per-operator memo tables a simulator embeds.
type execMemos struct {
	join  execMemo[joinMemoKey]
	agg   execMemo[plan.AggSpec]
	scan  execMemo[plan.ScanSpec]
	probe execMemo[Probe]
}

// mix folds one value into a running hash (FNV-1a step over 64-bit words
// with the same prime the noise hash uses; collisions only cost a miss).
func mix(h, v uint64) uint64 { return (h ^ v) * fnvPrime64 }

func mixF(h uint64, f float64) uint64 { return mix(h, math.Float64bits(f)) }

func hashSide(h uint64, s plan.TableSide) uint64 {
	h = mixF(h, s.Rows)
	h = mixF(h, s.RowSize)
	h = mixF(h, s.ProjectedSize)
	h = mixF(h, s.KeyNDV)
	var flags uint64
	if s.PartitionedOn {
		flags |= 1
	}
	if s.SortedOn {
		flags |= 2
	}
	return mix(h, flags)
}

func hashJoinKey(k joinMemoKey) uint64 {
	h := uint64(fnvOffset64)
	h = hashSide(h, k.spec.Left)
	h = hashSide(h, k.spec.Right)
	h = mixF(h, k.spec.OutputRows)
	if k.spec.Cartesian {
		h = mix(h, 1)
	}
	for i := 0; i < len(k.alg); i++ {
		h = mix(h, uint64(k.alg[i]))
	}
	return h
}

func hashAggSpec(a plan.AggSpec) uint64 {
	h := uint64(fnvOffset64)
	h = mixF(h, a.InputRows)
	h = mixF(h, a.InputRowSize)
	h = mixF(h, a.OutputRows)
	h = mixF(h, a.OutputRowSize)
	return mix(h, uint64(a.NumAggregates))
}

func hashScanSpec(s plan.ScanSpec) uint64 {
	h := uint64(fnvOffset64)
	h = mixF(h, s.InputRows)
	h = mixF(h, s.InputRowSize)
	h = mixF(h, s.Selectivity)
	return mixF(h, s.OutputRowSize)
}

func hashProbe(p Probe) uint64 {
	h := mix(uint64(fnvOffset64), uint64(p.Target))
	h = mixF(h, p.Records)
	h = mixF(h, p.RecordSize)
	return mixF(h, p.BuildBytes)
}
