// Package server exposes a master engine over HTTP/JSON — the serving layer
// in front of the federated optimizer. Endpoints:
//
//	POST /query        {"sql": "..."}  plan + execute, returns plan and actuals
//	POST /query/batch  ["...", ...]    plan a group of statements together
//	                                   (amortizing parse, plan-cache, and
//	                                   estimator work), execute in order;
//	                                   returns one element per statement
//	POST /query/stream NDJSON lines    persistent high-QPS pipeline: one
//	                                   statement per line in, one
//	                                   length-prefixed JSON frame per
//	                                   statement out, in order, errors
//	                                   isolated per slot
//	POST /explain      {"sql": "..."}  plan only, returns the rendered plan
//	GET  /profiles                     registered systems and their estimators
//	GET  /metrics                      QPS, per-stage latency, cache hit rate,
//	                                   feedback backlog, estimator accuracy
//	GET  /metrics/prom                 the same counters in the Prometheus
//	                                   text exposition format (0.0.4)
//	GET  /trace                        recent traced queries as span trees
//	                                   (?n= bounds, ?format=text renders,
//	                                   ?errors=1 / ?system= / ?min_ms= filter)
//	GET  /events                       recent wide query events (?n= bounds;
//	                                   ?errors=1 / ?system= / ?min_ms= /
//	                                   ?since= filter)
//	GET  /history                      embedded metrics time series
//	                                   (?window=15m, ?step=10s)
//	GET  /slo                          declared objectives with burn rates
//	                                   and alert states
//	GET  /health                       federation availability: circuit-breaker
//	                                   states, retry/fallback counters; 503
//	                                   while any breaker is open; with a data
//	                                   directory, also the boot recovery
//	                                   summary and snapshot/WAL position
//	GET  /catalog                      registered tables with materialization
//	                                   flags; POST registers/materializes
//	GET  /links                        QueryGrid link configurations; POST
//	                                   installs a per-system override
//
// /query and /explain also accept GET with a ?q= parameter for curl
// convenience; /query?trace=1 additionally records and returns the query's
// span tree (the serving stack's EXPLAIN ANALYZE).
//
// The hot endpoints (/query, /query/batch, /query/stream) sit behind an
// admission controller (internal/admission) instead of http.TimeoutHandler:
// concurrency is capped, overflow queues up to a bound, hopeless requests
// shed early with 503 + Retry-After, per-client rate limits answer 429, and
// the request deadline travels the context into the engine so a timed-out
// query cancels its remaining plan steps. Their responses render through
// hand-rolled zero-allocation encoders over pooled buffers (encode.go),
// byte-identical to the encoding/json output they replaced. Cold endpoints
// keep http.TimeoutHandler. Request bodies are capped with
// http.MaxBytesReader (413 beyond 1 MiB). The engine underneath is safe for
// whatever concurrency net/http throws at it.
package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"sort"
	"strconv"
	"time"

	"intellisphere/internal/admission"
	"intellisphere/internal/core/hybrid"
	"intellisphere/internal/engine"
	"intellisphere/internal/faults"
	"intellisphere/internal/metrics"
	"intellisphere/internal/modelver"
	"intellisphere/internal/obs"
	"intellisphere/internal/sqlparse"
	"intellisphere/internal/trace"
)

// maxBodyBytes bounds every request body (http.MaxBytesReader): a
// misbehaving client gets 413, not an unbounded read into memory. 1 MiB
// comfortably fits the largest sane statement batch.
const maxBodyBytes = 1 << 20

// ClientIDHeader names the request header whose value keys per-client
// rate-limit buckets. Requests without it share the anonymous bucket.
const ClientIDHeader = "X-Client-ID"

// Server serves one engine.
type Server struct {
	eng     *engine.Engine
	qps     *metrics.RateMeter
	start   time.Time
	faults  map[string]*faults.Injector
	adm     *admission.Controller
	timeout time.Duration
	// encodeErrors counts response encode/write failures that writeJSON and
	// the fast-path writers would otherwise swallow (satellite of the
	// serving fast path: the error used to be silently discarded).
	encodeErrors metrics.Counter
	// streamStatements counts statements answered over /query/stream.
	streamStatements metrics.Counter
	// streamOversized counts stream lines rejected for exceeding the
	// per-line byte cap (each still answers a well-formed error frame).
	streamOversized metrics.Counter
	// dur, when set via WithDurability, exposes snapshot/WAL state on
	// /health and /metrics/prom.
	dur *engine.Durability
	// obs, when set via WithObservability, backs /events, /history, /slo,
	// the SLO block on /health, and the observability metrics on
	// /metrics/prom.
	obs *obs.Observer
}

// New wraps an engine for serving with default admission control on the hot
// endpoints (64 in-flight, 128 queued, no rate limit).
func New(eng *engine.Engine) *Server {
	return &Server{
		eng: eng, qps: metrics.NewRateMeter(), start: time.Now(),
		adm: admission.NewController(admission.Config{}),
	}
}

// WithAdmission replaces the default admission controller, tuning the
// concurrency cap, queue depth, and per-client rate limit of the hot
// endpoints.
func (s *Server) WithAdmission(cfg admission.Config) *Server {
	s.adm = admission.NewController(cfg)
	return s
}

// Admission exposes the controller's counters for observability surfaces.
func (s *Server) Admission() admission.Stats { return s.adm.Stats() }

// WithFaults enables the /faults chaos endpoint over the given per-system
// injectors (typically demo.Federation.Injectors). Without it, /faults
// reports that injection is not enabled.
func (s *Server) WithFaults(inj map[string]*faults.Injector) *Server {
	s.faults = inj
	return s
}

// Handler builds the route table. Each route is bounded by timeout (≤ 0
// selects 30 s).
func (s *Server) Handler(timeout time.Duration) http.Handler {
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	s.timeout = timeout
	mux := http.NewServeMux()
	bound := func(h http.HandlerFunc) http.Handler {
		return http.TimeoutHandler(h, timeout, `{"error":"request timed out"}`)
	}
	// The hot endpoints go through admission control instead of
	// http.TimeoutHandler: the deadline rides the request context (so a
	// timed-out query cancels inside the engine rather than being abandoned
	// on a watchdog goroutine), concurrency is capped by the controller's
	// semaphore, and overload answers 503/429 with Retry-After instead of
	// piling up goroutines.
	mux.Handle("/query", s.admit(s.handleQuery))
	mux.Handle("/query/batch", s.admit(s.handleQueryBatch))
	mux.Handle("/query/stream", s.admitStream(s.handleQueryStream))
	mux.Handle("/explain", bound(s.handleExplain))
	mux.Handle("/profiles", bound(s.handleProfiles))
	mux.Handle("/metrics", bound(s.handleMetrics))
	mux.Handle("/metrics/prom", bound(s.handlePromMetrics))
	mux.Handle("/trace", bound(s.handleTrace))
	mux.Handle("/events", bound(s.handleEvents))
	mux.Handle("/history", bound(s.handleHistory))
	mux.Handle("/slo", bound(s.handleSLO))
	mux.Handle("/health", bound(s.handleHealth))
	mux.Handle("/faults", bound(s.handleFaults))
	mux.Handle("/models", bound(s.handleModels))
	mux.Handle("/catalog", bound(s.handleCatalog))
	mux.Handle("/links", bound(s.handleLinks))
	return mux
}

// statementRequest is the body of /query and /explain.
type statementRequest struct {
	SQL string `json:"sql"`
}

// readSQL extracts the statement from a JSON body (POST) or the q parameter
// (GET). Bodies are capped at maxBodyBytes.
func readSQL(w http.ResponseWriter, r *http.Request) (string, error) {
	if q := r.URL.Query().Get("q"); q != "" {
		return q, nil
	}
	if r.Body == nil {
		return "", fmt.Errorf("missing statement: POST {\"sql\": ...} or GET ?q=...")
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	var req statementRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		return "", fmt.Errorf("decode request: %w", err)
	}
	if req.SQL == "" {
		return "", fmt.Errorf("empty sql field")
	}
	return req.SQL, nil
}

// requestStatus maps a request-reading error onto its HTTP status: an
// over-limit body (http.MaxBytesError from the capped reader) is 413,
// everything else is a plain bad request.
func requestStatus(err error) int {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(v); err != nil {
		// The status line is gone; all that is left is to make the failure
		// visible instead of dropping it on the floor.
		s.encodeErrors.Inc()
		log.Printf("server: encode response: %v", err)
	}
}

// writeError answers with the standard {"code": ..., "error": ...} frame
// through the pooled fast-path encoder (error frames are hot under load
// shedding), classifying the error into its machine-readable code.
func (s *Server) writeError(w http.ResponseWriter, status int, err error) {
	s.writeErrorCode(w, status, errorCode(err), err)
}

// writeErrorCode is writeError with an explicit code, for handlers whose
// errors carry a classification the type system cannot (e.g. "not_enabled").
func (s *Server) writeErrorCode(w http.ResponseWriter, status int, code string, err error) {
	buf := getBuf()
	enc := jw{b: buf}
	encodeErrorFrame(&enc, code, err.Error())
	buf.WriteByte('\n')
	s.writeBuf(w, status, buf)
	putBuf(buf)
}

// errorCode classifies an error into the machine-readable "code" field every
// top-level error frame carries, so clients and dashboards branch on a
// stable token instead of matching message text:
//
//	parse_error     the statement failed to lex or parse
//	shed            admission refused the request (queue full or hopeless
//	                deadline)
//	rate_limited    the client exceeded its admission rate limit
//	unknown_system  a plan step targets an unregistered remote
//	timeout         the request deadline expired mid-query
//	too_large       the request body exceeded the byte cap
//	bad_request     everything else
func errorCode(err error) string {
	var pe *sqlparse.ParseError
	var shed *admission.ShedError
	var mbe *http.MaxBytesError
	switch {
	case errors.As(err, &pe):
		return "parse_error"
	case errors.As(err, &shed):
		if errors.Is(err, admission.ErrRateLimited) {
			return "rate_limited"
		}
		return "shed"
	case errors.Is(err, engine.ErrUnknownSystem):
		return "unknown_system"
	case errors.Is(err, context.DeadlineExceeded):
		return "timeout"
	case errors.As(err, &mbe):
		return "too_large"
	default:
		return "bad_request"
	}
}

// writeBuf flushes a pre-encoded JSON body, counting write failures.
func (s *Server) writeBuf(w http.ResponseWriter, status int, buf *bytes.Buffer) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if _, err := w.Write(buf.Bytes()); err != nil {
		s.encodeErrors.Inc()
		log.Printf("server: write response: %v", err)
	}
}

// errStatus maps an engine error onto its HTTP status: a deadline that
// expired mid-query keeps the old http.TimeoutHandler's 503 semantics,
// everything else is the client's bad statement.
func errStatus(err error) int {
	if errors.Is(err, context.DeadlineExceeded) {
		return http.StatusServiceUnavailable
	}
	return http.StatusBadRequest
}

// admit wraps a hot handler with the admission gate: per-request deadline
// on the context, a concurrency slot held for the handler's duration, and
// shed/rate-limit verdicts turned into Retry-After responses.
func (s *Server) admit(h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), s.timeout)
		defer cancel()
		release, err := s.adm.Acquire(ctx, r.Header.Get(ClientIDHeader))
		if err != nil {
			s.writeShed(w, err)
			return
		}
		defer release()
		h(w, r.WithContext(ctx))
	})
}

// admitStream is admit for the streaming endpoint: the connection holds one
// admission slot for its whole lifetime (each statement inside gets its own
// deadline), so -max-inflight bounds streams and one-shot queries together.
func (s *Server) admitStream(h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		release, err := s.adm.Acquire(r.Context(), r.Header.Get(ClientIDHeader))
		if err != nil {
			s.writeShed(w, err)
			return
		}
		defer release()
		h(w, r)
	})
}

// writeShed answers an admission refusal: 429 for a rate-limited client,
// 503 for a shed (full queue or hopeless deadline), both with a
// Retry-After hint; a context error while queued reports the deadline.
func (s *Server) writeShed(w http.ResponseWriter, err error) {
	var shed *admission.ShedError
	if !errors.As(err, &shed) {
		s.writeError(w, errStatus(err), err)
		return
	}
	status := http.StatusServiceUnavailable
	outcome := "shed"
	if errors.Is(shed, admission.ErrRateLimited) {
		status = http.StatusTooManyRequests
		outcome = "rate_limited"
	}
	s.recordAdmissionEvent(outcome, err)
	retry := int(shed.RetryAfter / time.Second)
	if retry < 1 {
		retry = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(retry))
	s.writeError(w, status, err)
}

// queryResponse is the /query result.
type queryResponse struct {
	SQL          string      `json:"sql"`
	Explain      string      `json:"explain"`
	EstimatedSec float64     `json:"estimated_sec"`
	ActualSec    float64     `json:"actual_sec"`
	StepActuals  []float64   `json:"step_actuals"`
	Degraded     bool        `json:"degraded,omitempty"`
	Excluded     []string    `json:"excluded,omitempty"`
	Columns      []string    `json:"columns,omitempty"`
	Rows         [][]float64 `json:"rows,omitempty"`
	// Trace carries the query's span tree and its EXPLAIN ANALYZE-style
	// rendering when the request asked for ?trace=1.
	Trace     *trace.Trace `json:"trace,omitempty"`
	TraceText string       `json:"trace_text,omitempty"`
}

// toQueryResponse maps an engine result onto the wire shape shared by
// /query and /query/batch.
func toQueryResponse(sql string, res *engine.QueryResult) queryResponse {
	resp := queryResponse{
		SQL:          sql,
		Explain:      res.Plan.Explain(),
		EstimatedSec: res.Plan.EstimatedSec,
		ActualSec:    res.ActualSec,
		StepActuals:  res.StepActuals,
		Degraded:     res.Degraded,
		Excluded:     res.Excluded,
	}
	if res.Rows != nil {
		resp.Columns = res.Rows.Columns
		resp.Rows = res.Rows.Rows
	}
	return resp
}

// wantTrace reports whether the request opted into per-query tracing
// (?trace=1 or ?trace=true).
func wantTrace(r *http.Request) bool {
	v, _ := strconv.ParseBool(r.URL.Query().Get("trace"))
	return v
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	sql, err := readSQL(w, r)
	if err != nil {
		s.writeError(w, requestStatus(err), err)
		return
	}
	s.qps.Tick()
	if wantTrace(r) {
		res, tr, err := s.eng.QueryTraced(r.Context(), sql)
		if err != nil {
			// The trace survives the failure: slow failures are exactly
			// what the span tree is for.
			s.writeJSON(w, errStatus(err), map[string]string{
				"error": err.Error(), "trace_text": tr.Render(),
			})
			return
		}
		resp := toQueryResponse(sql, res)
		resp.Trace = tr
		resp.TraceText = tr.Render()
		// Traced responses carry the span tree; they take the reflective
		// encoder (tracing is opt-in diagnostics, not the hot path).
		s.writeJSON(w, http.StatusOK, resp)
		return
	}
	res, err := s.eng.QueryContext(r.Context(), sql)
	if err != nil {
		s.writeError(w, errStatus(err), err)
		return
	}
	resp := toQueryResponse(sql, res)
	buf := getBuf()
	enc := jw{b: buf}
	encodeQueryResponse(&enc, &resp)
	buf.WriteByte('\n')
	s.writeBuf(w, http.StatusOK, buf)
	putBuf(buf)
}

// readBatch decodes a /query/batch body: a JSON array whose elements are
// either {"sql": "..."} objects or bare statement strings (the two forms may
// mix).
func readBatch(w http.ResponseWriter, r *http.Request) ([]string, error) {
	if r.Body == nil {
		return nil, fmt.Errorf("missing batch: POST [{\"sql\": ...}, ...] or [\"...\", ...]")
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	var raw []json.RawMessage
	if err := json.NewDecoder(r.Body).Decode(&raw); err != nil {
		return nil, fmt.Errorf("decode request: %w", err)
	}
	if len(raw) == 0 {
		return nil, fmt.Errorf("empty batch")
	}
	out := make([]string, len(raw))
	for i, m := range raw {
		var sql string
		if err := json.Unmarshal(m, &sql); err != nil {
			var req statementRequest
			if err := json.Unmarshal(m, &req); err != nil {
				return nil, fmt.Errorf("statement %d: want {\"sql\": ...} or a string", i)
			}
			sql = req.SQL
		}
		if sql == "" {
			return nil, fmt.Errorf("statement %d: empty sql", i)
		}
		out[i] = sql
	}
	return out, nil
}

// handleQueryBatch serves POST /query/batch: the statements plan together
// (amortizing parsing, plan-cache lookups, and estimator calls) and execute
// in order. The response is an array aligned with the request; each element
// is either a /query result or {"sql": ..., "error": ...}, so one failed
// statement never fails its neighbors.
func (s *Server) handleQueryBatch(w http.ResponseWriter, r *http.Request) {
	sqls, err := readBatch(w, r)
	if err != nil {
		s.writeError(w, requestStatus(err), err)
		return
	}
	items := s.eng.QueryBatch(r.Context(), sqls)
	buf := getBuf()
	enc := jw{b: buf}
	buf.WriteByte('[')
	enc.depth++
	for i, it := range items {
		s.qps.Tick()
		if i > 0 {
			buf.WriteByte(',')
		}
		enc.newline()
		if it.Err != nil {
			encodeStatementError(&enc, sqls[i], it.Err.Error())
			continue
		}
		resp := toQueryResponse(sqls[i], it.Res)
		encodeQueryResponse(&enc, &resp)
	}
	enc.depth--
	enc.newline()
	buf.WriteString("]\n")
	s.writeBuf(w, http.StatusOK, buf)
	putBuf(buf)
}

// explainResponse is the /explain result.
type explainResponse struct {
	SQL     string `json:"sql"`
	Explain string `json:"explain"`
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	sql, err := readSQL(w, r)
	if err != nil {
		s.writeError(w, requestStatus(err), err)
		return
	}
	s.qps.Tick()
	out, err := s.eng.Explain(sql)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	s.writeJSON(w, http.StatusOK, explainResponse{SQL: sql, Explain: out})
}

// profileInfo describes one registered system on /profiles.
type profileInfo struct {
	System   string `json:"system"`
	Approach string `json:"approach"`
	Active   string `json:"active,omitempty"`
	Queries  int    `json:"queries,omitempty"`
	Engine   string `json:"engine,omitempty"`
}

func (s *Server) handleProfiles(w http.ResponseWriter, r *http.Request) {
	var out []profileInfo
	for _, name := range s.eng.Systems() {
		info := profileInfo{System: name}
		est, err := s.eng.Estimator(name)
		if err != nil {
			info.Approach = "none"
			out = append(out, info)
			continue
		}
		info.Approach = string(est.Approach())
		if h, ok := est.(*hybrid.Estimator); ok {
			info.Active = string(h.Active())
			info.Queries = h.Queries()
			info.Engine = h.Profile().Engine.String()
		}
		out = append(out, info)
	}
	s.writeJSON(w, http.StatusOK, out)
}

// metricsResponse is the /metrics payload.
type metricsResponse struct {
	UptimeSec float64      `json:"uptime_sec"`
	QPS       float64      `json:"qps"`
	Engine    engine.Stats `json:"engine"`
	// Events carries the wide-event sampler's counters when observability
	// is enabled; Sink additionally when the NDJSON file sink runs.
	Events *obs.RecorderStats `json:"events,omitempty"`
	Sink   *obs.SinkStats     `json:"event_log,omitempty"`
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	resp := metricsResponse{
		UptimeSec: time.Since(s.start).Seconds(),
		QPS:       s.qps.Rate(),
		Engine:    s.eng.Stats(),
	}
	if s.obs != nil {
		rs := s.obs.Rec.Stats()
		resp.Events = &rs
		if s.obs.Sink != nil {
			ss := s.obs.Sink.Stats()
			resp.Sink = &ss
		}
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// handleTrace serves the recent-traces ring: GET /trace returns the last
// traced queries as JSON span trees, newest first; ?n= bounds the count and
// ?format=text renders each trace as an EXPLAIN ANALYZE-style tree instead.
// ?errors=1 keeps only failed traces, ?system=hive keeps traces with a span
// on the system, ?min_ms=250 keeps slow ones; filters scan the whole ring
// and ?n= bounds the filtered output.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	n, _ := strconv.Atoi(q.Get("n"))
	onlyErrors, _ := strconv.ParseBool(q.Get("errors"))
	system := q.Get("system")
	minMS, _ := strconv.ParseFloat(q.Get("min_ms"), 64)
	filtered := onlyErrors || system != "" || minMS > 0
	fetch := n
	if filtered {
		fetch = 0
	}
	traces := s.eng.RecentTraces(fetch)
	if filtered {
		// RecentTraces returned a fresh slice, so filtering in place is safe.
		kept := traces[:0]
		for _, t := range traces {
			if onlyErrors && t.Error == "" {
				continue
			}
			if system != "" && !t.HasSystem(system) {
				continue
			}
			if minMS > 0 && float64(t.DurationNanos)/1e6 < minMS {
				continue
			}
			kept = append(kept, t)
			if n > 0 && len(kept) == n {
				break
			}
		}
		traces = kept
	}
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if len(traces) == 0 {
			io.WriteString(w, "no traces recorded; run a query with ?trace=1\n")
			return
		}
		for _, t := range traces {
			io.WriteString(w, t.Render())
		}
		return
	}
	if traces == nil {
		traces = []*trace.Trace{}
	}
	s.writeJSON(w, http.StatusOK, traces)
}

// faultStatus reports one injector on /faults.
type faultStatus struct {
	System string       `json:"system"`
	Down   bool         `json:"down"`
	Stats  faults.Stats `json:"stats"`
}

// faultRequest is the POST /faults body: flip one system's outage switch
// and/or dial its fault rates. Absent fields leave their setting untouched.
type faultRequest struct {
	System string        `json:"system"`
	Outage *bool         `json:"outage,omitempty"`
	Rates  *faults.Rates `json:"rates,omitempty"`
}

// handleFaults is the chaos control plane: GET lists every injector's
// outage switch and counters; POST {"system": "...", "outage": true}
// forces (or lifts) a full outage on one remote, and
// {"system": "...", "rates": {"latency": 1, "latency_factor": 20}} dials
// its fault rates (the drift-injection lever the tuner smoke test pulls).
func (s *Server) handleFaults(w http.ResponseWriter, r *http.Request) {
	if s.faults == nil {
		s.writeErrorCode(w, http.StatusNotFound, "not_enabled", fmt.Errorf("fault injection not enabled"))
		return
	}
	if r.Method == http.MethodPost {
		var req faultRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			s.writeError(w, http.StatusBadRequest, fmt.Errorf("decode request: %v", err))
			return
		}
		inj, ok := s.faults[req.System]
		if !ok {
			s.writeErrorCode(w, http.StatusBadRequest, "unknown_system", fmt.Errorf("unknown system %q", req.System))
			return
		}
		if req.Rates != nil {
			inj.SetRates(*req.Rates)
		}
		if req.Outage != nil {
			inj.SetOutage(*req.Outage)
		}
		s.writeJSON(w, http.StatusOK, faultStatus{System: req.System, Down: inj.Down(), Stats: inj.Stats()})
		return
	}
	out := make([]faultStatus, 0, len(s.faults))
	for name, inj := range s.faults {
		out = append(out, faultStatus{System: name, Down: inj.Down(), Stats: inj.Stats()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].System < out[j].System })
	s.writeJSON(w, http.StatusOK, out)
}

// modelInfo describes one tunable system on GET /models: its version
// lineage (oldest first, live flagged) and the lifecycle counters' view of
// the engine.
type modelInfo struct {
	System   string             `json:"system"`
	Versions []modelver.Version `json:"versions"`
}

// modelsResponse is the GET /models payload.
type modelsResponse struct {
	Systems []modelInfo        `json:"systems"`
	Tuning  engine.TuningStats `json:"tuning"`
}

// modelRequest is the POST /models body. Action is one of:
//
//	"tune"       run a candidate tune; promote only on holdout improvement
//	"force-tune" run a candidate tune and promote regardless of the verdict
//	"promote"    alias of "force-tune"
//	"rollback"   restore the previous model version byte-identically
//
// The optional knobs map onto engine.TuneOptions; TrainIterations bounds the
// candidate retraining pass (0 keeps each model's own config).
type modelRequest struct {
	Action          string  `json:"action"`
	System          string  `json:"system"`
	Holdout         int     `json:"holdout,omitempty"`
	MinLog          int     `json:"min_log,omitempty"`
	MinGain         float64 `json:"min_gain,omitempty"`
	TrainIterations int     `json:"train_iterations,omitempty"`
}

// handleModels is the model-lifecycle admin surface: GET lists every
// profile-backed system's retained model versions (with holdout scores and
// the live flag); POST triggers a candidate tune, a forced promotion, or a
// rollback on one system.
func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodPost {
		var req modelRequest
		if r.Body == nil {
			s.writeError(w, http.StatusBadRequest, fmt.Errorf(`missing request: POST {"action": ..., "system": ...}`))
			return
		}
		r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			s.writeError(w, requestStatus(err), fmt.Errorf("decode request: %v", err))
			return
		}
		if req.System == "" {
			s.writeError(w, http.StatusBadRequest, fmt.Errorf("system is required"))
			return
		}
		switch req.Action {
		case "tune", "force-tune", "promote":
			opts := engine.TuneOptions{
				Holdout: req.Holdout, MinLog: req.MinLog, MinGain: req.MinGain,
				Force: req.Action != "tune",
			}
			opts.Train.Iterations = req.TrainIterations
			out, err := s.eng.TuneCandidate(r.Context(), req.System, opts)
			if err != nil {
				s.writeError(w, http.StatusBadRequest, err)
				return
			}
			s.writeJSON(w, http.StatusOK, out)
		case "rollback":
			v, err := s.eng.RollbackModel(req.System)
			if err != nil {
				s.writeError(w, http.StatusBadRequest, err)
				return
			}
			s.writeJSON(w, http.StatusOK, v)
		default:
			s.writeError(w, http.StatusBadRequest, fmt.Errorf("unknown action %q (want tune, force-tune, promote, or rollback)", req.Action))
		}
		return
	}
	resp := modelsResponse{Systems: []modelInfo{}, Tuning: s.eng.TuningStats()}
	for _, name := range s.eng.Systems() {
		est, err := s.eng.Estimator(name)
		if err != nil {
			continue
		}
		if _, ok := est.(*hybrid.Estimator); !ok {
			continue
		}
		vs := s.eng.ModelVersions(name)
		if vs == nil {
			vs = []modelver.Version{}
		}
		resp.Systems = append(resp.Systems, modelInfo{System: name, Versions: vs})
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// handleHealth reports federation availability. Load balancers get the
// verdict from the status code alone: 200 while every breaker is closed,
// 503 once any remote is open-circuited (queries may still answer via
// degraded plans, but capacity is reduced). When the server runs with a
// data directory, the response additionally carries the boot recovery
// summary and the live snapshot/WAL position (durability degradation never
// flips the status code — availability is the breakers' verdict).
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	h := s.eng.Health()
	status := http.StatusOK
	if h.OpenCount > 0 {
		status = http.StatusServiceUnavailable
	}
	s.writeJSON(w, status, healthResponse{
		Health: h, Durability: s.durabilityStatus(), SLO: s.sloStatus(),
	})
}

// maxStreamLine bounds one statement line on /query/stream; the stream
// itself is unbounded — that is the point.
const maxStreamLine = maxBodyBytes

// handleQueryStream serves POST /query/stream: a persistent, pipelined
// high-QPS protocol over one HTTP request. The client sends statements as
// newline-delimited JSON — each line a bare JSON string, a {"sql": ...}
// object, or raw SQL text — and the server answers every statement in
// order with a length-prefixed JSON frame:
//
//	<decimal byte count>\n
//	<exactly that many bytes: a /query response or error frame>
//
// The length prefix lets clients split frames without parsing JSON; the
// frame bodies are byte-identical to /query responses (same encoder), so a
// streaming client and a one-shot client see the same shapes. Errors are
// isolated per slot exactly as in /query/batch: a statement that fails to
// parse, plan, or execute answers {"error": ..., "sql": ...} and the
// stream continues. Each statement runs under its own deadline; the
// connection as a whole holds one admission slot (see admitStream).
func (s *Server) handleQueryStream(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("POST statements as NDJSON"))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	// HTTP/1.x servers drain the unread request body before the first
	// response flush; a pipelined client that waits for frame N before
	// sending statement N+1 would deadlock against that drain. Full-duplex
	// mode disables it so requests and responses interleave freely.
	rc := http.NewResponseController(w)
	if err := rc.EnableFullDuplex(); err != nil && err != http.ErrNotSupported {
		s.writeError(w, http.StatusInternalServerError, fmt.Errorf("stream unsupported: %v", err))
		return
	}
	br := bufio.NewReaderSize(r.Body, 64*1024)
	buf := getBuf()
	defer putBuf(buf)
	var prefix [20]byte
	for {
		line, oversized, rerr := readStreamLine(br, maxStreamLine)
		if rerr != nil {
			if rerr != io.EOF {
				// Mid-stream read failure: frames already sent stand; nothing
				// more can be promised on a broken pipe, so just log the cause.
				s.encodeErrors.Inc()
				log.Printf("server: query stream read: %v", rerr)
			}
			return
		}
		if !oversized {
			line = bytes.TrimSpace(line)
			if len(line) == 0 {
				continue
			}
		}
		s.qps.Tick()
		s.streamStatements.Inc()
		buf.Reset()
		enc := jw{b: buf}
		if oversized {
			// The over-limit line was consumed to its newline, so the slot
			// answers a well-formed error frame and the stream stays aligned
			// for the next statement (a Scanner would have died silently on
			// ErrTooLong here, ending the stream mid-pipeline).
			s.streamOversized.Inc()
			encodeStatementError(&enc, "", fmt.Sprintf("statement line exceeds %d bytes", maxStreamLine))
		} else if sql, perr := streamStatement(line); perr != nil {
			encodeStatementError(&enc, string(line), perr.Error())
		} else {
			ctx, cancel := context.WithTimeout(r.Context(), s.timeout)
			res, err := s.eng.QueryContext(ctx, sql)
			cancel()
			if err != nil {
				encodeStatementError(&enc, sql, err.Error())
			} else {
				resp := toQueryResponse(sql, res)
				encodeQueryResponse(&enc, &resp)
			}
		}
		buf.WriteByte('\n')
		hdr := strconv.AppendInt(prefix[:0], int64(buf.Len()), 10)
		hdr = append(hdr, '\n')
		if _, err := w.Write(hdr); err != nil {
			s.encodeErrors.Inc()
			return
		}
		if _, err := w.Write(buf.Bytes()); err != nil {
			s.encodeErrors.Inc()
			return
		}
		if err := rc.Flush(); err != nil && err != http.ErrNotSupported {
			s.encodeErrors.Inc()
			return
		}
		if r.Context().Err() != nil {
			return
		}
	}
}

// readStreamLine returns the next newline-terminated statement line from br
// (newline included; an unterminated final line is returned at EOF). A line
// longer than max is consumed to its newline and reported oversized instead
// of returned, keeping the stream aligned on statement boundaries. The
// common case — the line fits the reader's buffer — returns the reader's
// internal slice without copying; callers must finish with it before the
// next read. err is io.EOF once the body is exhausted.
func readStreamLine(br *bufio.Reader, max int) (line []byte, oversized bool, err error) {
	var acc []byte
	first := true
	for {
		chunk, rerr := br.ReadSlice('\n')
		if first && rerr == nil && len(chunk) <= max {
			return chunk, false, nil
		}
		first = false
		acc = append(acc, chunk...)
		if rerr == bufio.ErrBufferFull {
			if len(acc) > max {
				if derr := discardLine(br); derr != nil && derr != io.EOF {
					return nil, true, derr
				}
				return nil, true, nil
			}
			continue
		}
		if rerr != nil && rerr != io.EOF {
			return nil, false, rerr
		}
		if len(acc) == 0 && rerr == io.EOF {
			return nil, false, io.EOF
		}
		if len(acc) > max {
			return nil, true, nil
		}
		return acc, false, nil
	}
}

// discardLine consumes the remainder of the current line. A nil return
// means the newline was found; io.EOF means the body ended first.
func discardLine(br *bufio.Reader) error {
	for {
		_, err := br.ReadSlice('\n')
		if err == bufio.ErrBufferFull {
			continue
		}
		return err
	}
}

// streamStatement extracts the SQL from one stream line: a JSON string, a
// {"sql": ...} object, or (anything else) raw SQL text.
func streamStatement(line []byte) (string, error) {
	switch line[0] {
	case '"':
		var sql string
		if err := json.Unmarshal(line, &sql); err != nil {
			return "", fmt.Errorf("bad statement line: %v", err)
		}
		if sql == "" {
			return "", fmt.Errorf("empty sql")
		}
		return sql, nil
	case '{':
		var req statementRequest
		if err := json.Unmarshal(line, &req); err != nil {
			return "", fmt.Errorf("bad statement line: %v", err)
		}
		if req.SQL == "" {
			return "", fmt.Errorf("empty sql field")
		}
		return req.SQL, nil
	default:
		return string(line), nil
	}
}
