// Package server exposes a master engine over HTTP/JSON — the serving layer
// in front of the federated optimizer. Endpoints:
//
//	POST /query        {"sql": "..."}  plan + execute, returns plan and actuals
//	POST /query/batch  ["...", ...]    plan a group of statements together
//	                                   (amortizing parse, plan-cache, and
//	                                   estimator work), execute in order;
//	                                   returns one element per statement
//	POST /explain      {"sql": "..."}  plan only, returns the rendered plan
//	GET  /profiles                     registered systems and their estimators
//	GET  /metrics                      QPS, per-stage latency, cache hit rate,
//	                                   feedback backlog, estimator accuracy
//	GET  /metrics/prom                 the same counters in the Prometheus
//	                                   text exposition format (0.0.4)
//	GET  /trace                        recent traced queries as span trees
//	                                   (?n= bounds, ?format=text renders)
//	GET  /health                       federation availability: circuit-breaker
//	                                   states, retry/fallback counters; 503
//	                                   while any breaker is open
//
// /query and /explain also accept GET with a ?q= parameter for curl
// convenience; /query?trace=1 additionally records and returns the query's
// span tree (the serving stack's EXPLAIN ANALYZE). Every handler is wrapped
// in http.TimeoutHandler so a slow request cannot hold a connection forever,
// request bodies are capped with http.MaxBytesReader (413 beyond 1 MiB), and
// /query threads the request context into the engine so a timed-out or
// abandoned request cancels its remaining plan steps. The engine underneath
// is safe for whatever concurrency net/http throws at it.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"time"

	"intellisphere/internal/core/hybrid"
	"intellisphere/internal/engine"
	"intellisphere/internal/faults"
	"intellisphere/internal/metrics"
	"intellisphere/internal/trace"
)

// maxBodyBytes bounds every request body (http.MaxBytesReader): a
// misbehaving client gets 413, not an unbounded read into memory. 1 MiB
// comfortably fits the largest sane statement batch.
const maxBodyBytes = 1 << 20

// Server serves one engine.
type Server struct {
	eng    *engine.Engine
	qps    *metrics.RateMeter
	start  time.Time
	faults map[string]*faults.Injector
}

// New wraps an engine for serving.
func New(eng *engine.Engine) *Server {
	return &Server{eng: eng, qps: metrics.NewRateMeter(), start: time.Now()}
}

// WithFaults enables the /faults chaos endpoint over the given per-system
// injectors (typically demo.Federation.Injectors). Without it, /faults
// reports that injection is not enabled.
func (s *Server) WithFaults(inj map[string]*faults.Injector) *Server {
	s.faults = inj
	return s
}

// Handler builds the route table. Each route is bounded by timeout (≤ 0
// selects 30 s).
func (s *Server) Handler(timeout time.Duration) http.Handler {
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	mux := http.NewServeMux()
	bound := func(h http.HandlerFunc) http.Handler {
		return http.TimeoutHandler(h, timeout, `{"error":"request timed out"}`)
	}
	mux.Handle("/query", bound(s.handleQuery))
	mux.Handle("/query/batch", bound(s.handleQueryBatch))
	mux.Handle("/explain", bound(s.handleExplain))
	mux.Handle("/profiles", bound(s.handleProfiles))
	mux.Handle("/metrics", bound(s.handleMetrics))
	mux.Handle("/metrics/prom", bound(s.handlePromMetrics))
	mux.Handle("/trace", bound(s.handleTrace))
	mux.Handle("/health", bound(s.handleHealth))
	mux.Handle("/faults", bound(s.handleFaults))
	return mux
}

// statementRequest is the body of /query and /explain.
type statementRequest struct {
	SQL string `json:"sql"`
}

// readSQL extracts the statement from a JSON body (POST) or the q parameter
// (GET). Bodies are capped at maxBodyBytes.
func readSQL(w http.ResponseWriter, r *http.Request) (string, error) {
	if q := r.URL.Query().Get("q"); q != "" {
		return q, nil
	}
	if r.Body == nil {
		return "", fmt.Errorf("missing statement: POST {\"sql\": ...} or GET ?q=...")
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	var req statementRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		return "", fmt.Errorf("decode request: %w", err)
	}
	if req.SQL == "" {
		return "", fmt.Errorf("empty sql field")
	}
	return req.SQL, nil
}

// requestStatus maps a request-reading error onto its HTTP status: an
// over-limit body (http.MaxBytesError from the capped reader) is 413,
// everything else is a plain bad request.
func requestStatus(err error) int {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// queryResponse is the /query result.
type queryResponse struct {
	SQL          string      `json:"sql"`
	Explain      string      `json:"explain"`
	EstimatedSec float64     `json:"estimated_sec"`
	ActualSec    float64     `json:"actual_sec"`
	StepActuals  []float64   `json:"step_actuals"`
	Degraded     bool        `json:"degraded,omitempty"`
	Excluded     []string    `json:"excluded,omitempty"`
	Columns      []string    `json:"columns,omitempty"`
	Rows         [][]float64 `json:"rows,omitempty"`
	// Trace carries the query's span tree and its EXPLAIN ANALYZE-style
	// rendering when the request asked for ?trace=1.
	Trace     *trace.Trace `json:"trace,omitempty"`
	TraceText string       `json:"trace_text,omitempty"`
}

// toQueryResponse maps an engine result onto the wire shape shared by
// /query and /query/batch.
func toQueryResponse(sql string, res *engine.QueryResult) queryResponse {
	resp := queryResponse{
		SQL:          sql,
		Explain:      res.Plan.Explain(),
		EstimatedSec: res.Plan.EstimatedSec,
		ActualSec:    res.ActualSec,
		StepActuals:  res.StepActuals,
		Degraded:     res.Degraded,
		Excluded:     res.Excluded,
	}
	if res.Rows != nil {
		resp.Columns = res.Rows.Columns
		resp.Rows = res.Rows.Rows
	}
	return resp
}

// wantTrace reports whether the request opted into per-query tracing
// (?trace=1 or ?trace=true).
func wantTrace(r *http.Request) bool {
	v, _ := strconv.ParseBool(r.URL.Query().Get("trace"))
	return v
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	sql, err := readSQL(w, r)
	if err != nil {
		writeError(w, requestStatus(err), err)
		return
	}
	s.qps.Tick()
	if wantTrace(r) {
		res, tr, err := s.eng.QueryTraced(r.Context(), sql)
		if err != nil {
			// The trace survives the failure: slow failures are exactly
			// what the span tree is for.
			writeJSON(w, http.StatusBadRequest, map[string]string{
				"error": err.Error(), "trace_text": tr.Render(),
			})
			return
		}
		resp := toQueryResponse(sql, res)
		resp.Trace = tr
		resp.TraceText = tr.Render()
		writeJSON(w, http.StatusOK, resp)
		return
	}
	res, err := s.eng.QueryContext(r.Context(), sql)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, toQueryResponse(sql, res))
}

// readBatch decodes a /query/batch body: a JSON array whose elements are
// either {"sql": "..."} objects or bare statement strings (the two forms may
// mix).
func readBatch(w http.ResponseWriter, r *http.Request) ([]string, error) {
	if r.Body == nil {
		return nil, fmt.Errorf("missing batch: POST [{\"sql\": ...}, ...] or [\"...\", ...]")
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	var raw []json.RawMessage
	if err := json.NewDecoder(r.Body).Decode(&raw); err != nil {
		return nil, fmt.Errorf("decode request: %w", err)
	}
	if len(raw) == 0 {
		return nil, fmt.Errorf("empty batch")
	}
	out := make([]string, len(raw))
	for i, m := range raw {
		var sql string
		if err := json.Unmarshal(m, &sql); err != nil {
			var req statementRequest
			if err := json.Unmarshal(m, &req); err != nil {
				return nil, fmt.Errorf("statement %d: want {\"sql\": ...} or a string", i)
			}
			sql = req.SQL
		}
		if sql == "" {
			return nil, fmt.Errorf("statement %d: empty sql", i)
		}
		out[i] = sql
	}
	return out, nil
}

// handleQueryBatch serves POST /query/batch: the statements plan together
// (amortizing parsing, plan-cache lookups, and estimator calls) and execute
// in order. The response is an array aligned with the request; each element
// is either a /query result or {"sql": ..., "error": ...}, so one failed
// statement never fails its neighbors.
func (s *Server) handleQueryBatch(w http.ResponseWriter, r *http.Request) {
	sqls, err := readBatch(w, r)
	if err != nil {
		writeError(w, requestStatus(err), err)
		return
	}
	items := s.eng.QueryBatch(r.Context(), sqls)
	resp := make([]any, len(items))
	for i, it := range items {
		s.qps.Tick()
		if it.Err != nil {
			resp[i] = map[string]string{"sql": sqls[i], "error": it.Err.Error()}
			continue
		}
		resp[i] = toQueryResponse(sqls[i], it.Res)
	}
	writeJSON(w, http.StatusOK, resp)
}

// explainResponse is the /explain result.
type explainResponse struct {
	SQL     string `json:"sql"`
	Explain string `json:"explain"`
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	sql, err := readSQL(w, r)
	if err != nil {
		writeError(w, requestStatus(err), err)
		return
	}
	s.qps.Tick()
	out, err := s.eng.Explain(sql)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, explainResponse{SQL: sql, Explain: out})
}

// profileInfo describes one registered system on /profiles.
type profileInfo struct {
	System   string `json:"system"`
	Approach string `json:"approach"`
	Active   string `json:"active,omitempty"`
	Queries  int    `json:"queries,omitempty"`
	Engine   string `json:"engine,omitempty"`
}

func (s *Server) handleProfiles(w http.ResponseWriter, r *http.Request) {
	var out []profileInfo
	for _, name := range s.eng.Systems() {
		info := profileInfo{System: name}
		est, err := s.eng.Estimator(name)
		if err != nil {
			info.Approach = "none"
			out = append(out, info)
			continue
		}
		info.Approach = string(est.Approach())
		if h, ok := est.(*hybrid.Estimator); ok {
			info.Active = string(h.Active())
			info.Queries = h.Queries()
			info.Engine = h.Profile().Engine.String()
		}
		out = append(out, info)
	}
	writeJSON(w, http.StatusOK, out)
}

// metricsResponse is the /metrics payload.
type metricsResponse struct {
	UptimeSec float64      `json:"uptime_sec"`
	QPS       float64      `json:"qps"`
	Engine    engine.Stats `json:"engine"`
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, metricsResponse{
		UptimeSec: time.Since(s.start).Seconds(),
		QPS:       s.qps.Rate(),
		Engine:    s.eng.Stats(),
	})
}

// handleTrace serves the recent-traces ring: GET /trace returns the last
// traced queries as JSON span trees, newest first; ?n= bounds the count and
// ?format=text renders each trace as an EXPLAIN ANALYZE-style tree instead.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	n, _ := strconv.Atoi(r.URL.Query().Get("n"))
	traces := s.eng.RecentTraces(n)
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if len(traces) == 0 {
			io.WriteString(w, "no traces recorded; run a query with ?trace=1\n")
			return
		}
		for _, t := range traces {
			io.WriteString(w, t.Render())
		}
		return
	}
	if traces == nil {
		traces = []*trace.Trace{}
	}
	writeJSON(w, http.StatusOK, traces)
}

// faultStatus reports one injector on /faults.
type faultStatus struct {
	System string       `json:"system"`
	Down   bool         `json:"down"`
	Stats  faults.Stats `json:"stats"`
}

// faultRequest is the POST /faults body: flip one system's outage switch.
type faultRequest struct {
	System string `json:"system"`
	Outage bool   `json:"outage"`
}

// handleFaults is the chaos control plane: GET lists every injector's
// outage switch and counters; POST {"system": "...", "outage": true}
// forces (or lifts) a full outage on one remote.
func (s *Server) handleFaults(w http.ResponseWriter, r *http.Request) {
	if s.faults == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("fault injection not enabled"))
		return
	}
	if r.Method == http.MethodPost {
		var req faultRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("decode request: %v", err))
			return
		}
		inj, ok := s.faults[req.System]
		if !ok {
			writeError(w, http.StatusBadRequest, fmt.Errorf("unknown system %q", req.System))
			return
		}
		inj.SetOutage(req.Outage)
		writeJSON(w, http.StatusOK, faultStatus{System: req.System, Down: inj.Down(), Stats: inj.Stats()})
		return
	}
	out := make([]faultStatus, 0, len(s.faults))
	for name, inj := range s.faults {
		out = append(out, faultStatus{System: name, Down: inj.Down(), Stats: inj.Stats()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].System < out[j].System })
	writeJSON(w, http.StatusOK, out)
}

// handleHealth reports federation availability. Load balancers get the
// verdict from the status code alone: 200 while every breaker is closed,
// 503 once any remote is open-circuited (queries may still answer via
// degraded plans, but capacity is reduced).
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	h := s.eng.Health()
	status := http.StatusOK
	if h.OpenCount > 0 {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, h)
}
