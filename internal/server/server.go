// Package server exposes a master engine over HTTP/JSON — the serving layer
// in front of the federated optimizer. Endpoints:
//
//	POST /query    {"sql": "..."}  plan + execute, returns plan and actuals
//	POST /explain  {"sql": "..."}  plan only, returns the rendered plan
//	GET  /profiles                 registered systems and their estimators
//	GET  /metrics                  QPS, per-stage latency, cache hit rate,
//	                               feedback backlog
//
// /query and /explain also accept GET with a ?q= parameter for curl
// convenience. Every handler is wrapped in http.TimeoutHandler so a slow
// request cannot hold a connection forever, and the engine underneath is
// safe for whatever concurrency net/http throws at it.
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"intellisphere/internal/core/hybrid"
	"intellisphere/internal/engine"
	"intellisphere/internal/metrics"
)

// Server serves one engine.
type Server struct {
	eng   *engine.Engine
	qps   *metrics.RateMeter
	start time.Time
}

// New wraps an engine for serving.
func New(eng *engine.Engine) *Server {
	return &Server{eng: eng, qps: metrics.NewRateMeter(), start: time.Now()}
}

// Handler builds the route table. Each route is bounded by timeout (≤ 0
// selects 30 s).
func (s *Server) Handler(timeout time.Duration) http.Handler {
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	mux := http.NewServeMux()
	bound := func(h http.HandlerFunc) http.Handler {
		return http.TimeoutHandler(h, timeout, `{"error":"request timed out"}`)
	}
	mux.Handle("/query", bound(s.handleQuery))
	mux.Handle("/explain", bound(s.handleExplain))
	mux.Handle("/profiles", bound(s.handleProfiles))
	mux.Handle("/metrics", bound(s.handleMetrics))
	return mux
}

// statementRequest is the body of /query and /explain.
type statementRequest struct {
	SQL string `json:"sql"`
}

// readSQL extracts the statement from a JSON body (POST) or the q parameter
// (GET).
func readSQL(r *http.Request) (string, error) {
	if q := r.URL.Query().Get("q"); q != "" {
		return q, nil
	}
	if r.Body == nil {
		return "", fmt.Errorf("missing statement: POST {\"sql\": ...} or GET ?q=...")
	}
	var req statementRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		return "", fmt.Errorf("decode request: %v", err)
	}
	if req.SQL == "" {
		return "", fmt.Errorf("empty sql field")
	}
	return req.SQL, nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// queryResponse is the /query result.
type queryResponse struct {
	SQL          string      `json:"sql"`
	Explain      string      `json:"explain"`
	EstimatedSec float64     `json:"estimated_sec"`
	ActualSec    float64     `json:"actual_sec"`
	StepActuals  []float64   `json:"step_actuals"`
	Columns      []string    `json:"columns,omitempty"`
	Rows         [][]float64 `json:"rows,omitempty"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	sql, err := readSQL(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	s.qps.Tick()
	res, err := s.eng.Query(sql)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	resp := queryResponse{
		SQL:          sql,
		Explain:      res.Plan.Explain(),
		EstimatedSec: res.Plan.EstimatedSec,
		ActualSec:    res.ActualSec,
		StepActuals:  res.StepActuals,
	}
	if res.Rows != nil {
		resp.Columns = res.Rows.Columns
		resp.Rows = res.Rows.Rows
	}
	writeJSON(w, http.StatusOK, resp)
}

// explainResponse is the /explain result.
type explainResponse struct {
	SQL     string `json:"sql"`
	Explain string `json:"explain"`
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	sql, err := readSQL(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	s.qps.Tick()
	out, err := s.eng.Explain(sql)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, explainResponse{SQL: sql, Explain: out})
}

// profileInfo describes one registered system on /profiles.
type profileInfo struct {
	System   string `json:"system"`
	Approach string `json:"approach"`
	Active   string `json:"active,omitempty"`
	Queries  int    `json:"queries,omitempty"`
	Engine   string `json:"engine,omitempty"`
}

func (s *Server) handleProfiles(w http.ResponseWriter, r *http.Request) {
	var out []profileInfo
	for _, name := range s.eng.Systems() {
		info := profileInfo{System: name}
		est, err := s.eng.Estimator(name)
		if err != nil {
			info.Approach = "none"
			out = append(out, info)
			continue
		}
		info.Approach = string(est.Approach())
		if h, ok := est.(*hybrid.Estimator); ok {
			info.Active = string(h.Active())
			info.Queries = h.Queries()
			info.Engine = h.Profile().Engine.String()
		}
		out = append(out, info)
	}
	writeJSON(w, http.StatusOK, out)
}

// metricsResponse is the /metrics payload.
type metricsResponse struct {
	UptimeSec float64      `json:"uptime_sec"`
	QPS       float64      `json:"qps"`
	Engine    engine.Stats `json:"engine"`
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, metricsResponse{
		UptimeSec: time.Since(s.start).Seconds(),
		QPS:       s.qps.Rate(),
		Engine:    s.eng.Stats(),
	})
}
