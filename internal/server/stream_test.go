package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"intellisphere/internal/admission"
)

// readFrame consumes one length-prefixed frame from a /query/stream
// response: a decimal byte-count line, then exactly that many bytes.
func readFrame(r *bufio.Reader) ([]byte, error) {
	line, err := r.ReadString('\n')
	if err != nil {
		return nil, err
	}
	n, err := strconv.Atoi(strings.TrimSpace(line))
	if err != nil {
		return nil, fmt.Errorf("bad frame length %q: %v", line, err)
	}
	frame := make([]byte, n)
	if _, err := io.ReadFull(r, frame); err != nil {
		return nil, err
	}
	return frame, nil
}

// TestQueryStreamProtocol drives the pipelined protocol end to end: many
// statements down one connection, in-order length-prefixed responses back,
// per-slot error isolation, and frame bodies identical to /query's shape.
func TestQueryStreamProtocol(t *testing.T) {
	srv, _ := newTestServer(t)
	good := "SELECT a1 FROM t100000_100 WHERE a1 < 100"

	pr, pw := io.Pipe()
	done := make(chan error, 1)
	go func() {
		defer pw.Close()
		// All three accepted line forms, plus a broken statement mid-stream.
		for i := 0; i < 20; i++ {
			var line string
			switch i % 3 {
			case 0:
				line = good // raw SQL text
			case 1:
				line = `{"sql": "` + good + `"}` // object form
			default:
				line = `"` + good + `"` // JSON string form
			}
			if i == 7 {
				line = "SELECT broken FROM"
			}
			if _, err := io.WriteString(pw, line+"\n"); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()

	resp, err := http.Post(srv.URL+"/query/stream", "application/x-ndjson", pr)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	br := bufio.NewReader(resp.Body)
	for i := 0; i < 20; i++ {
		frame, err := readFrame(br)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if i == 7 {
			var slot map[string]string
			if err := json.Unmarshal(frame, &slot); err != nil {
				t.Fatalf("frame %d does not decode: %v", i, err)
			}
			if slot["error"] == "" || slot["sql"] != "SELECT broken FROM" {
				t.Fatalf("frame %d: want isolated error slot, got %s", i, frame)
			}
			continue
		}
		var qr queryResponse
		if err := json.Unmarshal(frame, &qr); err != nil {
			t.Fatalf("frame %d does not decode: %v (%s)", i, err, frame)
		}
		if qr.SQL != good {
			t.Fatalf("frame %d out of order: sql %q", i, qr.SQL)
		}
		if qr.ActualSec <= 0 {
			t.Fatalf("frame %d: no actuals", i)
		}
	}
	if _, err := readFrame(br); err != io.EOF {
		t.Fatalf("want EOF after last frame, got %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("writer: %v", err)
	}
}

// TestSaturationShedsAndRecovers saturates a one-slot admission gate (a
// stream connection holds its slot for the connection's lifetime), checks a
// queued request completes, an over-queue request sheds promptly with 503 +
// Retry-After, and the admission ledger reconciles.
func TestSaturationShedsAndRecovers(t *testing.T) {
	_, eng := newTestServer(t)
	s := New(eng).WithAdmission(admission.Config{MaxInFlight: 1, QueueDepth: 1})
	srv := httptest.NewServer(s.Handler(30 * time.Second))
	defer srv.Close()
	good := "SELECT a1 FROM t100000_100 WHERE a1 < 100"

	// Hold the only slot with an open stream.
	pr, pw := io.Pipe()
	streamResp := make(chan *http.Response, 1)
	go func() {
		resp, err := http.Post(srv.URL+"/query/stream", "application/x-ndjson", pr)
		if err != nil {
			t.Error(err)
			streamResp <- nil
			return
		}
		streamResp <- resp
	}()
	io.WriteString(pw, good+"\n")
	resp := <-streamResp
	if resp == nil {
		t.FailNow()
	}
	defer resp.Body.Close()
	br := bufio.NewReader(resp.Body)
	if _, err := readFrame(br); err != nil {
		t.Fatalf("stream frame: %v", err)
	}

	// Fill the one queue slot with a second request.
	queued := make(chan *http.Response, 1)
	go func() {
		r, err := http.Get(srv.URL + "/query?q=" + strings.ReplaceAll(good, " ", "+"))
		if err != nil {
			t.Error(err)
			queued <- nil
			return
		}
		queued <- r
	}()
	deadline := time.Now().Add(5 * time.Second)
	for s.Admission().Queued == 0 {
		if time.Now().After(deadline) {
			t.Fatal("second request never queued")
		}
		time.Sleep(time.Millisecond)
	}

	// The next arrival finds the queue full: shed fast, 503, Retry-After.
	start := time.Now()
	shedResp, err := http.Get(srv.URL + "/query?q=" + strings.ReplaceAll(good, " ", "+"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, shedResp.Body)
	shedResp.Body.Close()
	if shedResp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("shed status %d, want 503", shedResp.StatusCode)
	}
	if ra, err := strconv.Atoi(shedResp.Header.Get("Retry-After")); err != nil || ra < 1 {
		t.Fatalf("Retry-After %q", shedResp.Header.Get("Retry-After"))
	}
	if waited := time.Since(start); waited > 5*time.Second {
		t.Fatalf("shed took %v; shedding must not wait out the deadline", waited)
	}

	// Release the stream's slot: the queued request must complete normally.
	pw.Close()
	io.Copy(io.Discard, resp.Body)
	qresp := <-queued
	if qresp == nil {
		t.FailNow()
	}
	io.Copy(io.Discard, qresp.Body)
	qresp.Body.Close()
	if qresp.StatusCode != http.StatusOK {
		t.Fatalf("queued request status %d, want 200", qresp.StatusCode)
	}

	st := s.Admission()
	if st.Offered != 3 || st.Admitted != 2 || st.ShedQueueFull != 1 {
		t.Fatalf("ledger: %+v", st)
	}
	if got := st.Admitted + st.RateLimited + st.ShedQueueFull + st.ShedDeadline + st.Canceled; got != st.Offered {
		t.Fatalf("ledger does not reconcile: %+v", st)
	}
}

// TestRateLimit429 exercises the per-client token bucket over HTTP: a
// client that exceeds its budget gets 429 + Retry-After; another client ID
// is unaffected.
func TestRateLimit429(t *testing.T) {
	_, eng := newTestServer(t)
	s := New(eng).WithAdmission(admission.Config{MaxInFlight: 8, RateLimit: 0.001, Burst: 2})
	srv := httptest.NewServer(s.Handler(10 * time.Second))
	defer srv.Close()
	good := srv.URL + "/query?q=" + strings.ReplaceAll("SELECT a1 FROM t100000_100", " ", "+")

	get := func(client string) int {
		req, _ := http.NewRequest(http.MethodGet, good, nil)
		req.Header.Set(ClientIDHeader, client)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusTooManyRequests {
			if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || ra < 1 {
				t.Fatalf("429 without Retry-After: %q", resp.Header.Get("Retry-After"))
			}
		}
		return resp.StatusCode
	}
	if got := get("alpha"); got != http.StatusOK {
		t.Fatalf("alpha #1: %d", got)
	}
	if got := get("alpha"); got != http.StatusOK {
		t.Fatalf("alpha #2: %d", got)
	}
	if got := get("alpha"); got != http.StatusTooManyRequests {
		t.Fatalf("alpha #3: %d, want 429", got)
	}
	if got := get("beta"); got != http.StatusOK {
		t.Fatalf("beta: %d", got)
	}
	if st := s.Admission(); st.RateLimited != 1 {
		t.Fatalf("rate-limited count: %+v", st)
	}
}

// BenchmarkStreamVsHTTP compares per-statement cost of N one-shot /query
// requests against the same statements pipelined down one /query/stream
// connection — the amortization the streaming protocol exists for.
func BenchmarkStreamVsHTTP(b *testing.B) {
	eng := newBenchEngine(b)
	s := New(eng)
	srv := httptest.NewServer(s.Handler(30 * time.Second))
	defer srv.Close()
	sql := "SELECT a1 FROM t100000_100 WHERE a1 < 100"

	b.Run("http", func(b *testing.B) {
		url := srv.URL + "/query?q=" + strings.ReplaceAll(sql, " ", "+")
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			resp, err := http.Get(url)
			if err != nil {
				b.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	})

	b.Run("stream", func(b *testing.B) {
		pr, pw := io.Pipe()
		respCh := make(chan *http.Response, 1)
		go func() {
			resp, err := http.Post(srv.URL+"/query/stream", "application/x-ndjson", pr)
			if err != nil {
				b.Error(err)
				respCh <- nil
				return
			}
			respCh <- resp
		}()
		line := []byte(sql + "\n")
		go func() {
			for i := 0; i < b.N; i++ {
				if _, err := pw.Write(line); err != nil {
					return
				}
			}
			pw.Close()
		}()
		b.ReportAllocs()
		resp := <-respCh
		if resp == nil {
			b.FailNow()
		}
		defer resp.Body.Close()
		br := bufio.NewReader(resp.Body)
		for i := 0; i < b.N; i++ {
			if _, err := readFrame(br); err != nil {
				b.Fatalf("frame %d: %v", i, err)
			}
		}
	})
}

// TestQueryStreamOversizedLine pins the per-line byte cap's failure mode: a
// statement line over maxStreamLine must answer a well-formed error frame in
// its slot — not kill the stream — and the statements on either side of it
// still execute. (The old bufio.Scanner path died silently on ErrTooLong,
// dropping every queued statement after the big line.)
func TestQueryStreamOversizedLine(t *testing.T) {
	srv, _ := newTestServer(t)
	good := "SELECT a1 FROM t100000_100 WHERE a1 < 100"
	big := strings.Repeat("x", maxStreamLine+16)
	body := good + "\n" + big + "\n" + good + "\n"

	resp, err := http.Post(srv.URL+"/query/stream", "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	br := bufio.NewReader(resp.Body)
	for i := 0; i < 3; i++ {
		frame, err := readFrame(br)
		if err != nil {
			t.Fatalf("frame %d: %v (stream died on the oversized line?)", i, err)
		}
		if i == 1 {
			var slot map[string]string
			if err := json.Unmarshal(frame, &slot); err != nil {
				t.Fatalf("oversized slot is not well-formed JSON: %v (%s)", err, frame)
			}
			if !strings.Contains(slot["error"], "exceeds") {
				t.Fatalf("oversized slot error = %q", slot["error"])
			}
			continue
		}
		var qr queryResponse
		if err := json.Unmarshal(frame, &qr); err != nil {
			t.Fatalf("frame %d does not decode: %v", i, err)
		}
		if qr.SQL != good || qr.ActualSec <= 0 {
			t.Fatalf("frame %d: statement after the oversized line not executed: %+v", i, qr)
		}
	}
	if _, err := readFrame(br); err != io.EOF {
		t.Fatalf("want EOF after last frame, got %v", err)
	}

	// The rejection is counted on the Prometheus surface.
	prom, err := http.Get(srv.URL + "/metrics/prom")
	if err != nil {
		t.Fatal(err)
	}
	defer prom.Body.Close()
	text, _ := io.ReadAll(prom.Body)
	if !strings.Contains(string(text), "intellisphere_stream_oversized_total 1") {
		t.Error("stream_oversized counter not exported")
	}
}
