package server

import (
	"fmt"
	"net/http"
	"strconv"
	"time"

	"intellisphere/internal/metrics"
	"intellisphere/internal/obs"
)

// This file is the serving surface of the continuous-observability pipeline
// (internal/obs): the wiring that attaches an Observer to the server and the
// three read endpoints over its state —
//
//	GET /events   recent wide query events from the in-memory ring
//	              (?n= bounds, ?errors=1 / ?system= / ?min_ms= / ?since=
//	              filter)
//	GET /history  the embedded metrics time series
//	              (?window=15m trailing span, ?step=10s downsampling)
//	GET /slo      every declared objective's burn rates and alert state
//
// All three answer 404 with code "not_enabled" when the server runs without
// an observer, so probes can distinguish "disabled" from "empty".

// WithObservability attaches the observability pipeline: the engine starts
// feeding the wide-event recorder, and /events, /history, /slo, /health and
// /metrics/prom pick up the observer's state. The caller still owns the
// observer's lifecycle (Start with ObsSource, Stop on shutdown).
func (s *Server) WithObservability(o *obs.Observer) *Server {
	s.obs = o
	if o != nil {
		s.eng.SetEventRecorder(o.Rec)
	}
	return s
}

// Observability returns the attached observer (nil when disabled).
func (s *Server) Observability() *obs.Observer { return s.obs }

// ObsSource builds the cumulative-counter closure the history collector
// differentiates into per-step rates: engine query/error/retry and
// plan-cache counters, admission shed/rate-limit counters, the end-to-end
// latency histogram, and the current per-(system, operator) mean q-error.
func (s *Server) ObsSource() func() obs.Cumulative {
	return func() obs.Cumulative {
		st := s.eng.Stats()
		adm := s.adm.Stats()
		var qerr map[string]float64
		if len(st.Accuracy) > 0 {
			qerr = make(map[string]float64, len(st.Accuracy))
			for k, a := range st.Accuracy {
				qerr[k] = a.MeanQError
			}
		}
		var lat metrics.HistogramSnapshot
		if s.obs != nil {
			lat = s.obs.Rec.LatencySnapshot()
		}
		return obs.Cumulative{
			Queries:     st.Queries,
			Errors:      st.QueryErrors,
			Shed:        adm.ShedQueueFull + adm.ShedDeadline,
			RateLimited: adm.RateLimited,
			Retries:     st.Resilience.Retries,
			CacheHits:   st.PlanCache.Hits,
			CacheMisses: st.PlanCache.Misses,
			Latency:     lat,
			QError:      qerr,
		}
	}
}

// recordAdmissionEvent captures a request the admission gate refused as a
// wide event. Shed requests never reach the engine, so the serving layer is
// the only place that can log them; outcome is "shed" or "rate_limited".
func (s *Server) recordAdmissionEvent(outcome string, err error) {
	if s.obs == nil {
		return
	}
	rec := s.obs.Rec
	capture, ok := rec.Sample(true, 0)
	if !ok {
		return
	}
	rec.Record(&obs.Event{
		UnixNano: time.Now().UnixNano(),
		Kind:     "admission",
		Capture:  capture,
		Outcome:  outcome,
		Error:    err.Error(),
	})
}

// writeObsDisabled is the shared 404 for the observability endpoints on a
// server running without an observer.
func (s *Server) writeObsDisabled(w http.ResponseWriter) {
	s.writeErrorCode(w, http.StatusNotFound, "not_enabled",
		fmt.Errorf("observability not enabled (start the server with event recording on)"))
}

// eventsResponse is the GET /events payload. Total counts every event ever
// captured (the ring holds only the newest), Stats reports the sampler's
// capture/skip counters, Events is newest-first.
type eventsResponse struct {
	Total  uint64            `json:"total"`
	Stats  obs.RecorderStats `json:"stats"`
	Events []*obs.Event      `json:"events"`
}

// handleEvents serves the wide-event ring. ?n= bounds the response (default
// 100); ?errors=1 keeps only non-ok outcomes, ?system=hive keeps events
// whose plan touched the system, ?min_ms=250 keeps slow events, ?since=ID
// keeps events newer than a previously seen ID (poll cursor). Filters scan
// the whole ring and n bounds the filtered output.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	if s.obs == nil {
		s.writeObsDisabled(w)
		return
	}
	q := r.URL.Query()
	n, _ := strconv.Atoi(q.Get("n"))
	if n <= 0 {
		n = 100
	}
	onlyErrors, _ := strconv.ParseBool(q.Get("errors"))
	system := q.Get("system")
	minMS, _ := strconv.ParseFloat(q.Get("min_ms"), 64)
	sinceID, _ := strconv.ParseUint(q.Get("since"), 10, 64)
	ring := s.obs.Rec.Ring()
	fetch := n
	if onlyErrors || system != "" || minMS > 0 || sinceID > 0 {
		fetch = 0
	}
	out := make([]*obs.Event, 0, n)
	for _, ev := range ring.Recent(fetch) {
		if len(out) == n {
			break
		}
		if eventMatches(ev, onlyErrors, system, minMS, sinceID) {
			out = append(out, ev)
		}
	}
	s.writeJSON(w, http.StatusOK, eventsResponse{
		Total:  ring.Count(),
		Stats:  s.obs.Rec.Stats(),
		Events: out,
	})
}

// eventMatches applies the /events query filters to one event.
func eventMatches(ev *obs.Event, onlyErrors bool, system string, minMS float64, since uint64) bool {
	if onlyErrors && ev.Outcome == "ok" {
		return false
	}
	if since > 0 && ev.ID <= since {
		return false
	}
	if minMS > 0 && ev.LatencySec*1000 < minMS {
		return false
	}
	if system != "" {
		for _, sys := range ev.Systems {
			if sys == system {
				return true
			}
		}
		return false
	}
	return true
}

// historyResponse is the GET /history payload: the trailing window of
// time-series samples, oldest first.
type historyResponse struct {
	StepSec   float64       `json:"step_sec"`
	WindowSec float64       `json:"window_sec"`
	Samples   []*obs.Sample `json:"samples"`
}

// handleHistory serves the embedded metrics history: ?window= selects the
// trailing span (default 15m, capped by the ring's capacity) and ?step=
// downsamples so consecutive points are at least that far apart.
func (s *Server) handleHistory(w http.ResponseWriter, r *http.Request) {
	if s.obs == nil {
		s.writeObsDisabled(w)
		return
	}
	window := 15 * time.Minute
	if v := r.URL.Query().Get("window"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d <= 0 {
			s.writeError(w, http.StatusBadRequest,
				fmt.Errorf("bad window %q: want a positive duration like 15m", v))
			return
		}
		window = d
	}
	var step time.Duration
	if v := r.URL.Query().Get("step"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d <= 0 {
			s.writeError(w, http.StatusBadRequest,
				fmt.Errorf("bad step %q: want a positive duration like 10s", v))
			return
		}
		step = d
	}
	samples := s.obs.Hist.Window(time.Now(), window, step)
	if samples == nil {
		samples = []*obs.Sample{}
	}
	s.writeJSON(w, http.StatusOK, historyResponse{
		StepSec:   s.obs.Hist.Step().Seconds(),
		WindowSec: window.Seconds(),
		Samples:   samples,
	})
}

// sloResponse is the GET /slo payload.
type sloResponse struct {
	Enabled    bool        `json:"enabled"`
	Firing     int         `json:"firing"`
	Objectives []obs.Alert `json:"objectives"`
}

// handleSLO serves every declared objective's evaluation: burn rates over
// both windows, alert state, and lifetime fired/resolved counts. Enabled is
// false when the observer runs without objectives.
func (s *Server) handleSLO(w http.ResponseWriter, r *http.Request) {
	if s.obs == nil {
		s.writeObsDisabled(w)
		return
	}
	resp := sloResponse{Objectives: []obs.Alert{}}
	if slo := s.obs.SLO; slo != nil {
		resp.Enabled = true
		resp.Firing = slo.Firing()
		if alerts := slo.Snapshot(); alerts != nil {
			resp.Objectives = alerts
		}
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// sloHealth is the SLO summary block on /health: the quick verdict probes
// read without parsing the full /slo listing.
type sloHealth struct {
	Objectives  int      `json:"objectives"`
	Firing      int      `json:"firing"`
	Pending     int      `json:"pending"`
	FiringNames []string `json:"firing_names,omitempty"`
}

// sloStatus builds the /health SLO block, nil when no objectives are
// declared.
func (s *Server) sloStatus() *sloHealth {
	if s.obs == nil || s.obs.SLO == nil {
		return nil
	}
	alerts := s.obs.SLO.Snapshot()
	out := &sloHealth{Objectives: len(alerts)}
	for _, a := range alerts {
		switch a.State {
		case obs.StateFiring:
			out.Firing++
			out.FiringNames = append(out.FiringNames, a.Name)
		case obs.StatePending:
			out.Pending++
		}
	}
	return out
}
