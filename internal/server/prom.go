package server

import (
	"fmt"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"intellisphere/internal/metrics"
	"intellisphere/internal/obs"
	"intellisphere/internal/resilience"
)

// handlePromMetrics serves every serving counter in the Prometheus text
// exposition format (version 0.0.4), hand-rendered — the format is a few
// lines of framing, not worth a client library: per-stage latency
// histograms with cumulative le buckets, plan-cache and resilience
// counters, per-breaker state gauges, and the per-(system, operator)
// estimator-accuracy windows as labeled gauges.
func (s *Server) handlePromMetrics(w http.ResponseWriter, r *http.Request) {
	st := s.eng.Stats()
	var b strings.Builder

	gauge(&b, "intellisphere_uptime_seconds", "Seconds since the server started.", time.Since(s.start).Seconds())
	writeRuntime(&b)
	gauge(&b, "intellisphere_qps", "Queries per second over a sliding 60s window.", s.qps.Rate())
	counter(&b, "intellisphere_queries_total", "Queries accepted (scalar and batch statements).", float64(st.Queries))
	counter(&b, "intellisphere_query_errors_total", "Queries that failed to parse, plan, or execute.", float64(st.QueryErrors))
	counter(&b, "intellisphere_traces_total", "Traced queries recorded into the trace ring.", float64(st.Traces))
	gauge(&b, "intellisphere_feedback_backlog", "Estimator feedback items queued but not yet applied.", float64(st.FeedbackBacklog))
	counter(&b, "intellisphere_feedback_dropped_total", "Estimator feedback observations dropped because the bounded queue was full.", float64(st.FeedbackDropped))

	counter(&b, "intellisphere_tune_attempts_total", "Candidate model tune passes started.", float64(st.Tuning.Attempts))
	counter(&b, "intellisphere_tune_promotions_total", "Tuned candidates promoted to serving.", float64(st.Tuning.Promotions))
	counter(&b, "intellisphere_tune_rejections_total", "Tuned candidates rejected after shadow scoring.", float64(st.Tuning.Rejections))
	counter(&b, "intellisphere_tune_rollbacks_total", "Model versions restored by rollback.", float64(st.Tuning.Rollbacks))

	counter(&b, "intellisphere_plan_cache_hits_total", "Plan-cache hits.", float64(st.PlanCache.Hits))
	counter(&b, "intellisphere_plan_cache_misses_total", "Plan-cache misses.", float64(st.PlanCache.Misses))
	counter(&b, "intellisphere_plan_cache_stale_total", "Plan-cache entries invalidated by a generation bump.", float64(st.PlanCache.Stale))
	counter(&b, "intellisphere_plan_cache_evicted_total", "Plan-cache LRU evictions.", float64(st.PlanCache.Evicted))
	gauge(&b, "intellisphere_plan_cache_size", "Plans currently cached.", float64(st.PlanCache.Size))

	adm := s.adm.Stats()
	counter(&b, "intellisphere_admission_offered_total", "Requests that reached the hot-endpoint admission gate.", float64(adm.Offered))
	counter(&b, "intellisphere_admission_admitted_total", "Requests granted an execution slot.", float64(adm.Admitted))
	counter(&b, "intellisphere_admission_shed_queue_full_total", "Requests refused because the admission queue was full.", float64(adm.ShedQueueFull))
	counter(&b, "intellisphere_admission_shed_deadline_total", "Requests shed because the estimated queue wait exceeded their deadline.", float64(adm.ShedDeadline))
	counter(&b, "intellisphere_admission_rate_limited_total", "Requests refused by a per-client rate limit.", float64(adm.RateLimited))
	counter(&b, "intellisphere_admission_canceled_total", "Requests whose client gave up while queued.", float64(adm.Canceled))
	gauge(&b, "intellisphere_admission_in_flight", "Requests currently holding an execution slot.", float64(adm.InFlight))
	gauge(&b, "intellisphere_admission_queued", "Requests currently waiting for a slot.", float64(adm.Queued))
	counter(&b, "intellisphere_response_encode_errors_total", "Response encode/write failures.", float64(s.encodeErrors.Value()))
	counter(&b, "intellisphere_stream_statements_total", "Statements answered over /query/stream.", float64(s.streamStatements.Value()))
	counter(&b, "intellisphere_stream_oversized_total", "Stream statement lines rejected for exceeding the per-line byte cap.", float64(s.streamOversized.Value()))

	if s.dur != nil {
		ds, snapErrs := s.dur.Stats()
		rec := s.dur.Recovery()
		gauge(&b, "intellisphere_wal_bytes", "Bytes in the current write-ahead log segment.", float64(ds.WALBytes))
		gauge(&b, "intellisphere_wal_records", "Records in the current write-ahead log segment.", float64(ds.WALRecords))
		gauge(&b, "intellisphere_durable_seq", "Last acknowledged mutation sequence number.", float64(ds.Seq))
		counter(&b, "intellisphere_wal_appends_total", "Mutation records appended to the write-ahead log since boot.", float64(ds.Appends))
		counter(&b, "intellisphere_snapshots_total", "Engine snapshots written since boot.", float64(ds.Snapshots))
		counter(&b, "intellisphere_snapshot_errors_total", "Background snapshot attempts that failed.", float64(snapErrs))
		if !ds.LastSnapshot.IsZero() {
			gauge(&b, "intellisphere_snapshot_age_seconds", "Seconds since the newest snapshot was written.", time.Since(ds.LastSnapshot).Seconds())
		}
		gauge(&b, "intellisphere_recovery_records_replayed", "WAL records replayed during boot recovery.", float64(rec.Replayed))
		gauge(&b, "intellisphere_recovery_duration_seconds", "Wall time boot recovery took.", rec.DurationSec)
	}

	counter(&b, "intellisphere_retries_total", "Remote plan-step calls repeated after a transient failure.", float64(st.Resilience.Retries))
	counter(&b, "intellisphere_fallbacks_total", "Degraded re-plans (one per excluded system).", float64(st.Resilience.Fallbacks))
	counter(&b, "intellisphere_degraded_queries_total", "Queries answered by a fallback plan.", float64(st.Resilience.DegradedQueries))

	histogram(&b, "intellisphere_parse_seconds", "Statement parse latency.", st.Parse)
	histogram(&b, "intellisphere_plan_seconds", "Plan construction latency (cache hits included).", st.Plan)
	histogram(&b, "intellisphere_execute_seconds", "Plan execution wall time.", st.Execute)

	if s.obs != nil {
		rs := s.obs.Rec.Stats()
		counter(&b, "intellisphere_events_captured_total", "Queries captured as wide events.", float64(rs.Captured))
		counter(&b, "intellisphere_events_errors_total", "Wide events captured by the always-on error rule.", float64(rs.Errors))
		counter(&b, "intellisphere_events_slow_total", "Wide events captured by the slow-query rule.", float64(rs.Slow))
		counter(&b, "intellisphere_events_skipped_total", "Queries the head sampler passed over.", float64(rs.Skipped))
		if s.obs.Sink != nil {
			ss := s.obs.Sink.Stats()
			counter(&b, "intellisphere_event_log_written_total", "Events appended to the NDJSON event log.", float64(ss.Written))
			counter(&b, "intellisphere_event_log_lost_total", "Events overwritten in the ring before the log drainer reached them.", float64(ss.Lost))
			counter(&b, "intellisphere_event_log_write_errors_total", "Event-log write failures.", float64(ss.WriteErrs))
			counter(&b, "intellisphere_event_log_rotations_total", "Event-log size rotations.", float64(ss.Rotations))
		}
		histogram(&b, "intellisphere_query_seconds", "End-to-end query latency as the caller saw it.", s.obs.Rec.LatencySnapshot())
		if s.obs.SLO != nil {
			writeSLO(&b, s.obs.SLO.Snapshot())
		}
	}

	writeBreakers(&b, st.Resilience.Breakers)
	writeAccuracy(&b, st.Accuracy)

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fmt.Fprint(w, b.String())
}

// writeRuntime renders process/runtime health: goroutine and heap pressure,
// cumulative GC pause time, scheduler width, and the build-info marker every
// fleet dashboard joins on.
func writeRuntime(b *strings.Builder) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	gauge(b, "intellisphere_goroutines", "Goroutines currently live.", float64(runtime.NumGoroutine()))
	gauge(b, "intellisphere_heap_inuse_bytes", "Bytes in in-use heap spans.", float64(ms.HeapInuse))
	gauge(b, "intellisphere_heap_objects", "Live heap objects.", float64(ms.HeapObjects))
	counter(b, "intellisphere_gc_pause_seconds_total", "Cumulative stop-the-world GC pause time.", float64(ms.PauseTotalNs)/1e9)
	counter(b, "intellisphere_gc_cycles_total", "Completed GC cycles.", float64(ms.NumGC))
	gauge(b, "intellisphere_gomaxprocs", "Scheduler width (GOMAXPROCS).", float64(runtime.GOMAXPROCS(0)))
	header(b, "intellisphere_build_info", "Build information; the value is always 1.", "gauge")
	fmt.Fprintf(b, "intellisphere_build_info{go_version=\"%s\"} 1\n", escapeLabel(runtime.Version()))
}

// writeSLO renders every objective's burn rates, alert state, and lifetime
// transition counters as labeled samples.
func writeSLO(b *strings.Builder, alerts []obs.Alert) {
	if len(alerts) == 0 {
		return
	}
	header(b, "intellisphere_slo_burn_rate", "Error-budget burn-rate multiple per objective and window.", "gauge")
	for _, a := range alerts {
		fmt.Fprintf(b, "intellisphere_slo_burn_rate{slo=\"%s\",window=\"fast\"} %s\n", escapeLabel(a.Name), promFloat(a.FastBurn))
		fmt.Fprintf(b, "intellisphere_slo_burn_rate{slo=\"%s\",window=\"slow\"} %s\n", escapeLabel(a.Name), promFloat(a.SlowBurn))
	}
	header(b, "intellisphere_slo_state", "Objective alert state (0=inactive, 1=pending, 2=firing, 3=resolved).", "gauge")
	for _, a := range alerts {
		fmt.Fprintf(b, "intellisphere_slo_state{slo=\"%s\"} %d\n", escapeLabel(a.Name), sloStateCode(a.State))
	}
	header(b, "intellisphere_slo_fired_total", "Lifetime transitions into the firing state.", "counter")
	for _, a := range alerts {
		fmt.Fprintf(b, "intellisphere_slo_fired_total{slo=\"%s\"} %d\n", escapeLabel(a.Name), a.FiredTotal)
	}
	header(b, "intellisphere_slo_resolved_total", "Lifetime firing-to-resolved transitions.", "counter")
	for _, a := range alerts {
		fmt.Fprintf(b, "intellisphere_slo_resolved_total{slo=\"%s\"} %d\n", escapeLabel(a.Name), a.ResolvedTotal)
	}
}

// sloStateCode maps an alert state onto its gauge encoding.
func sloStateCode(state string) int {
	switch state {
	case obs.StatePending:
		return 1
	case obs.StateFiring:
		return 2
	case obs.StateResolved:
		return 3
	}
	return 0
}

// writeBreakers renders per-remote circuit-breaker gauges, sorted by system
// for a stable exposition. State encodes 0=closed, 1=open, 2=half-open.
func writeBreakers(b *strings.Builder, brs map[string]resilience.BreakerSnapshot) {
	if len(brs) == 0 {
		return
	}
	keys := make([]string, 0, len(brs))
	for k := range brs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	header(b, "intellisphere_breaker_state", "Circuit-breaker state per remote (0=closed, 1=open, 2=half-open).", "gauge")
	for _, k := range keys {
		fmt.Fprintf(b, "intellisphere_breaker_state{system=\"%s\"} %d\n", escapeLabel(k), int(brs[k].State))
	}
	header(b, "intellisphere_breaker_opens_total", "Times each remote's breaker opened.", "counter")
	for _, k := range keys {
		fmt.Fprintf(b, "intellisphere_breaker_opens_total{system=\"%s\"} %d\n", escapeLabel(k), brs[k].Opens)
	}
	header(b, "intellisphere_breaker_rejected_total", "Calls rejected while each remote's breaker was open.", "counter")
	for _, k := range keys {
		fmt.Fprintf(b, "intellisphere_breaker_rejected_total{system=\"%s\"} %d\n", escapeLabel(k), brs[k].Rejected)
	}
}

func promFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

func header(b *strings.Builder, name, help, typ string) {
	fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

func counter(b *strings.Builder, name, help string, v float64) {
	header(b, name, help, "counter")
	fmt.Fprintf(b, "%s %s\n", name, promFloat(v))
}

func gauge(b *strings.Builder, name, help string, v float64) {
	header(b, name, help, "gauge")
	fmt.Fprintf(b, "%s %s\n", name, promFloat(v))
}

// histogram renders one latency histogram with cumulative le buckets, the
// +Inf bucket (overflow included), the _sum/_count pair, and — for buckets a
// traced query landed in — an exemplar suffix carrying the trace ID.
func histogram(b *strings.Builder, name, help string, s metrics.HistogramSnapshot) {
	header(b, name, help, "histogram")
	var cum uint64
	for _, bk := range s.Buckets {
		cum += bk.Count
		fmt.Fprintf(b, "%s_bucket{le=\"%s\"} %d", name, promFloat(bk.UpperBoundSec), cum)
		exemplar(b, bk.Exemplar)
		b.WriteByte('\n')
	}
	fmt.Fprintf(b, "%s_bucket{le=\"+Inf\"} %d", name, s.Count)
	exemplar(b, s.OverflowExemplar)
	b.WriteByte('\n')
	fmt.Fprintf(b, "%s_sum %s\n", name, promFloat(s.SumSeconds))
	fmt.Fprintf(b, "%s_count %d\n", name, s.Count)
}

// exemplar appends an OpenMetrics exemplar suffix to a bucket sample line:
// " # {trace_id=\"...\"} value timestamp". The trace ID joins the bucket to
// GET /trace; scrapers speaking only the 0.0.4 text format ignore text after
// " # " on a sample line.
func exemplar(b *strings.Builder, e *metrics.Exemplar) {
	if e == nil || e.TraceID == 0 {
		return
	}
	fmt.Fprintf(b, " # {trace_id=\"%d\"} %s %s",
		e.TraceID, promFloat(e.ValueSec), promFloat(float64(e.UnixNano)/1e9))
}

// writeAccuracy renders the estimator-accuracy windows as labeled gauges:
// one sample per (system, operator) pair and statistic.
func writeAccuracy(b *strings.Builder, acc map[string]metrics.AccuracySnapshot) {
	if len(acc) == 0 {
		return
	}
	keys := make([]string, 0, len(acc))
	for k := range acc {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	type stat struct {
		name, help string
		value      func(metrics.AccuracySnapshot) float64
	}
	stats := []stat{
		{"intellisphere_estimator_observations_total", "Lifetime (predicted, observed) pairs scored.",
			func(s metrics.AccuracySnapshot) float64 { return float64(s.Count) }},
		{"intellisphere_estimator_mean_q_error", "Mean q-error over the rolling window (1 is perfect).",
			func(s metrics.AccuracySnapshot) float64 { return s.MeanQError }},
		{"intellisphere_estimator_p95_q_error", "95th-percentile q-error over the rolling window.",
			func(s metrics.AccuracySnapshot) float64 { return s.P95QError }},
		{"intellisphere_estimator_max_q_error", "Maximum q-error over the rolling window.",
			func(s metrics.AccuracySnapshot) float64 { return s.MaxQError }},
		{"intellisphere_estimator_mape_percent", "Mean absolute percentage error over the rolling window.",
			func(s metrics.AccuracySnapshot) float64 { return s.MAPEPercent }},
		{"intellisphere_estimator_drifting", "1 when the window's mean q-error exceeds the drift threshold.",
			func(s metrics.AccuracySnapshot) float64 {
				if s.Drifting {
					return 1
				}
				return 0
			}},
	}
	for _, st := range stats {
		typ := "gauge"
		if strings.HasSuffix(st.name, "_total") {
			typ = "counter"
		}
		header(b, st.name, st.help, typ)
		for _, k := range keys {
			system, operator := splitAccuracyKey(k)
			fmt.Fprintf(b, "%s{system=\"%s\",operator=\"%s\"} %s\n",
				st.name, escapeLabel(system), escapeLabel(operator), promFloat(st.value(acc[k])))
		}
	}
}

// splitAccuracyKey splits the engine's "system/operator" accuracy key.
func splitAccuracyKey(k string) (system, operator string) {
	if i := strings.LastIndex(k, "/"); i >= 0 {
		return k[:i], k[i+1:]
	}
	return k, ""
}
