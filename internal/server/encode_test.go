package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// refEncode is the seed's writeJSON encoder: encoding/json with
// SetIndent("", " "). The fast-path encoders must reproduce it byte for
// byte.
func refEncode(t *testing.T, v any) string {
	t.Helper()
	var b bytes.Buffer
	enc := json.NewEncoder(&b)
	enc.SetIndent("", " ")
	if err := enc.Encode(v); err != nil {
		t.Fatalf("reference encode: %v", err)
	}
	return b.String()
}

func fastEncodeResponse(resp *queryResponse) string {
	var b bytes.Buffer
	enc := jw{b: &b}
	encodeQueryResponse(&enc, resp)
	b.WriteByte('\n')
	return b.String()
}

// goldenResponses covers every field combination the fast path can emit:
// omitempty permutations, nil-vs-empty slices, HTML-escaped and control
// characters, invalid UTF-8, U+2028/U+2029, and floats across the
// f/e-notation boundary cases encoding/json special-cases.
func goldenResponses() map[string]queryResponse {
	return map[string]queryResponse{
		"minimal": {
			SQL: "SELECT 1", Explain: "plan", EstimatedSec: 0, ActualSec: 0,
		},
		"typical": {
			SQL:          "SELECT a FROM t WHERE x > 3 AND y < 5",
			Explain:      "step 1: scan\n  cost: 0.5\nstep 2: join <hash> & merge",
			EstimatedSec: 1.2345678901234567,
			ActualSec:    0.000123,
			StepActuals:  []float64{0.1, 0.0000001, 123456789.25},
		},
		"empty-actuals": {
			SQL: "q", Explain: "e", StepActuals: []float64{},
		},
		"degraded": {
			SQL: "q", Explain: "e", StepActuals: []float64{1},
			Degraded: true, Excluded: []string{"hive", "spark"},
		},
		"rows": {
			SQL: "q", Explain: "e", StepActuals: []float64{0.5},
			Columns: []string{"a", "b\"quoted\"", "c&<d>"},
			Rows:    [][]float64{{1, 2.5}, {}, {-3e-9}},
		},
		"float-extremes": {
			SQL: "q", Explain: "e",
			EstimatedSec: 1e-7,
			ActualSec:    9.87e21,
			StepActuals:  []float64{1e21, 999999999999999999999, 1e-6, 9.999e-7, -1e-7, 0.25, -0},
		},
		"string-escapes": {
			SQL:     "tab\there\nnewline\rcr\x01ctl\\back\"quote",
			Explain: "unicode: héllo \u2028line\u2029sep \xffinvalid",
		},
	}
}

// TestEncodeGoldenEquivalence pins the fast-path encoder against
// encoding/json for every response shape, byte for byte.
func TestEncodeGoldenEquivalence(t *testing.T) {
	for name, resp := range goldenResponses() {
		resp := resp
		want := refEncode(t, resp)
		got := fastEncodeResponse(&resp)
		if got != want {
			t.Errorf("%s:\nfast: %q\nref:  %q", name, got, want)
		}
	}
}

// TestEncodeErrorFramesEquivalence pins the error-frame encoders against
// the seed's map[string]string shapes (encoding/json sorts map keys).
func TestEncodeErrorFramesEquivalence(t *testing.T) {
	msg := "plan failed: <nothing> to \"join\" & no luck\nline2"
	sql := "SELECT broken"

	var b bytes.Buffer
	enc := jw{b: &b}
	encodeStatementError(&enc, sql, msg)
	b.WriteByte('\n')
	if want := refEncode(t, map[string]string{"sql": sql, "error": msg}); b.String() != want {
		t.Errorf("statement error:\nfast: %q\nref:  %q", b.String(), want)
	}

	b.Reset()
	enc = jw{b: &b}
	encodeErrorFrame(&enc, "bad_request", msg)
	b.WriteByte('\n')
	// "code" sorts before "error", so the map reference pins the field order.
	if want := refEncode(t, map[string]string{"code": "bad_request", "error": msg}); b.String() != want {
		t.Errorf("error frame:\nfast: %q\nref:  %q", b.String(), want)
	}
}

// TestEncodeBatchEquivalence replays the /query/batch array framing (mixed
// success and error slots) against the seed's []any encoding.
func TestEncodeBatchEquivalence(t *testing.T) {
	rs := goldenResponses()
	ok1, ok2 := rs["typical"], rs["degraded"]
	seed := []any{
		ok1,
		map[string]string{"sql": "bad stmt", "error": "parse: <unexpected> & more"},
		ok2,
	}
	want := refEncode(t, seed)

	var b bytes.Buffer
	enc := jw{b: &b}
	b.WriteByte('[')
	enc.depth++
	for i, v := range seed {
		if i > 0 {
			b.WriteByte(',')
		}
		enc.newline()
		switch item := v.(type) {
		case queryResponse:
			encodeQueryResponse(&enc, &item)
		case map[string]string:
			encodeStatementError(&enc, item["sql"], item["error"])
		}
	}
	enc.depth--
	enc.newline()
	b.WriteString("]\n")
	if b.String() != want {
		t.Errorf("batch:\nfast: %q\nref:  %q", b.String(), want)
	}
}

// TestServedResponsesMatchReference goes end to end: the live /query and
// /query/batch handlers must produce exactly the bytes the seed's
// encoding/json path would.
func TestServedResponsesMatchReference(t *testing.T) {
	srv, _ := newTestServer(t)

	sql := "SELECT a1 FROM t10000_100 WHERE a1 < 100"
	resp, err := http.Get(srv.URL + "/query?q=" + strings.ReplaceAll(sql, " ", "+"))
	if err != nil {
		t.Fatal(err)
	}
	body := new(bytes.Buffer)
	if _, err := body.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body.String())
	}
	var decoded queryResponse
	if err := json.Unmarshal(body.Bytes(), &decoded); err != nil {
		t.Fatalf("response does not decode: %v", err)
	}
	if want := refEncode(t, decoded); body.String() != want {
		t.Errorf("/query bytes differ from reference:\ngot:  %q\nwant: %q", body.String(), want)
	}

	batch, err := http.Post(srv.URL+"/query/batch", "application/json",
		strings.NewReader(`["`+sql+`", "SELECT broken FROM", "`+sql+`"]`))
	if err != nil {
		t.Fatal(err)
	}
	body.Reset()
	if _, err := body.ReadFrom(batch.Body); err != nil {
		t.Fatal(err)
	}
	batch.Body.Close()
	var slots []json.RawMessage
	if err := json.Unmarshal(body.Bytes(), &slots); err != nil {
		t.Fatalf("batch response does not decode: %v", err)
	}
	if len(slots) != 3 {
		t.Fatalf("want 3 slots, got %d", len(slots))
	}
	// Round-trip each slot through the reference encoder and rebuild the
	// array framing: the served bytes must match exactly.
	ref := []any{}
	for i, raw := range slots {
		var errSlot map[string]string
		if json.Unmarshal(raw, &errSlot) == nil && errSlot["error"] != "" && len(errSlot) == 2 {
			ref = append(ref, errSlot)
			continue
		}
		var qr queryResponse
		if err := json.Unmarshal(raw, &qr); err != nil {
			t.Fatalf("slot %d: %v", i, err)
		}
		ref = append(ref, qr)
	}
	if want := refEncode(t, ref); body.String() != want {
		t.Errorf("/query/batch bytes differ from reference:\ngot:  %q\nwant: %q", body.String(), want)
	}
}

// nullRW is a ResponseWriter that discards everything — the alloc test
// measures the serving path, not the recorder.
type nullRW struct{ h http.Header }

func (n *nullRW) Header() http.Header         { return n.h }
func (n *nullRW) Write(b []byte) (int, error) { return len(b), nil }
func (n *nullRW) WriteHeader(int)             {}

// TestWarmQueryAllocs pins the steady-state allocation count of a warm
// /query request through admission, engine, and the pooled encoder. The
// budget is the issue's ceiling; the measured number should sit well under
// it.
func TestWarmQueryAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	_, eng := newTestServer(t)
	s := New(eng)
	h := s.Handler(10 * time.Second)
	// A statistics-only table: the request exercises parse, plan cache,
	// simulator, and encoder — not the materialized row engine.
	sql := "SELECT a1 FROM t100000_100 WHERE a1 < 100"
	req := httptest.NewRequest(http.MethodGet, "/query?q="+strings.ReplaceAll(sql, " ", "+"), nil)
	w := &nullRW{h: make(http.Header)}
	// Warm: statement LRU, plan cache, simulator memos, buffer pool.
	for i := 0; i < 3; i++ {
		h.ServeHTTP(w, req)
	}
	allocs := testing.AllocsPerRun(200, func() {
		h.ServeHTTP(w, req)
	})
	if allocs > 50 {
		t.Fatalf("warm /query allocates %.0f objects per request, budget 50", allocs)
	}
	t.Logf("warm /query: %.0f allocs/request", allocs)
}
