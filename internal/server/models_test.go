package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"

	"intellisphere/internal/engine"
)

// postModels sends one POST /models action and decodes the response into out
// (skipped when out is nil), returning the status code.
func postModels(t *testing.T, url string, req modelRequest, out any) int {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/models", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode /models response: %v", err)
		}
	}
	return resp.StatusCode
}

// TestModelsEndpoint pins the model-lifecycle admin surface over a sub-op
// federation: the listing names every profile-backed system, a tune with no
// retrainable log resolves as a no-op (not an error), and the failure modes
// answer 400 rather than mutating anything.
func TestModelsEndpoint(t *testing.T) {
	srv, _ := newTestServer(t)

	var mr modelsResponse
	if resp := getJSON(t, srv.URL+"/models", &mr); resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /models status = %d", resp.StatusCode)
	}
	if len(mr.Systems) != 1 || mr.Systems[0].System != "hive" {
		t.Fatalf("GET /models systems = %+v (master must be excluded)", mr.Systems)
	}
	if mr.Systems[0].Versions == nil || len(mr.Systems[0].Versions) != 0 {
		t.Fatalf("fresh system versions = %+v, want empty list", mr.Systems[0].Versions)
	}

	// hive's profile is sub-op only: a candidate tune finds no logical-op
	// models to retrain and reports that, without promoting or erroring.
	var out engine.TuneOutcome
	if code := postModels(t, srv.URL, modelRequest{Action: "tune", System: "hive"}, &out); code != http.StatusOK {
		t.Fatalf("POST tune status = %d", code)
	}
	if out.Promoted || out.Reason != "insufficient-log" {
		t.Fatalf("tune outcome = %+v", out)
	}
	if resp := getJSON(t, srv.URL+"/models", &mr); resp.StatusCode != http.StatusOK || mr.Tuning.Attempts != 1 {
		t.Fatalf("tuning counters after tune = %+v", mr.Tuning)
	}

	// Failure modes: no history to roll back, unknown action/system, and a
	// request without a system all answer 400.
	for _, req := range []modelRequest{
		{Action: "rollback", System: "hive"},
		{Action: "defragment", System: "hive"},
		{Action: "tune", System: "ghost"},
		{Action: "tune", System: "teradata"},
		{Action: "tune"},
	} {
		if code := postModels(t, srv.URL, req, nil); code != http.StatusBadRequest {
			t.Errorf("POST %+v status = %d, want 400", req, code)
		}
	}
}
