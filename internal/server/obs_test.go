package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"intellisphere/internal/obs"
)

// newObsServer is newTestServer with the observability pipeline attached:
// capture-everything sampling and a fast collector step so tests never wait
// on wall-clock windows.
func newObsServer(t *testing.T, cfg obs.Config) (*httptest.Server, *obs.Observer) {
	t.Helper()
	e := newBenchEngine(t)
	o, err := obs.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := New(e).WithObservability(o)
	srv := httptest.NewServer(s.Handler(10 * time.Second))
	o.Start(s.ObsSource())
	t.Cleanup(func() {
		srv.Close()
		o.Stop()
	})
	return srv, o
}

// get issues a GET and returns the status plus the decoded JSON object.
func getStatusJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("decode %s: %v", url, err)
	}
	return resp.StatusCode
}

func TestObsEndpointsDisabled(t *testing.T) {
	srv, _ := newTestServer(t)
	for _, path := range []string{"/events", "/history", "/slo"} {
		var out map[string]string
		if status := getStatusJSON(t, srv.URL+path, &out); status != http.StatusNotFound {
			t.Errorf("%s without observer: status = %d, want 404", path, status)
		}
		if out["code"] != "not_enabled" {
			t.Errorf("%s without observer: code = %q, want not_enabled", path, out["code"])
		}
	}
}

func TestEventsEndpoint(t *testing.T) {
	srv, _ := newObsServer(t, obs.Config{
		Events: obs.RecorderConfig{SampleRate: 1},
		Step:   20 * time.Millisecond,
	})
	for _, path := range []string{
		"/query?q=SELECT+a1+FROM+t10000_100",
		"/query?q=SELECT+nope",
		"/query?trace=1&q=SELECT+a5,+COUNT(a1)+FROM+t1000000_250+GROUP+BY+a5",
	} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	var all eventsResponse
	if status := getStatusJSON(t, srv.URL+"/events?n=50", &all); status != http.StatusOK {
		t.Fatalf("/events status = %d", status)
	}
	if all.Total != 3 || len(all.Events) != 3 {
		t.Fatalf("total = %d, events = %d, want 3 each", all.Total, len(all.Events))
	}
	var sawError, sawTraced, sawCapture bool
	for _, ev := range all.Events {
		if ev.Kind != "query" {
			t.Errorf("event kind = %q, want query", ev.Kind)
		}
		if len(ev.StmtHash) != 16 {
			t.Errorf("stmt_hash = %q, want 16 hex chars", ev.StmtHash)
		}
		if ev.Outcome == "error" {
			sawError = true
			if ev.Error == "" {
				t.Error("error event without message")
			}
		}
		if ev.TraceID != 0 {
			sawTraced = true
			// The exemplar's trace ID must resolve on /trace.
			var traces []struct {
				ID uint64 `json:"id"`
			}
			getJSON(t, srv.URL+"/trace", &traces)
			var found bool
			for _, tr := range traces {
				found = found || tr.ID == ev.TraceID
			}
			if !found {
				t.Errorf("event trace_id %d not in /trace", ev.TraceID)
			}
		}
		if ev.Capture != "" {
			sawCapture = true
		}
	}
	if !sawError || !sawTraced || !sawCapture {
		t.Errorf("sawError=%v sawTraced=%v sawCapture=%v, want all true", sawError, sawTraced, sawCapture)
	}

	// ?errors=1 keeps only the failed query.
	var errs eventsResponse
	getStatusJSON(t, srv.URL+"/events?errors=1", &errs)
	if len(errs.Events) != 1 || errs.Events[0].Outcome != "error" {
		t.Errorf("errors=1 events = %+v, want exactly the error event", errs.Events)
	}
	// ?system=hive keeps plans that touched the remote; the parse error has
	// no plan and drops out.
	var hive eventsResponse
	getStatusJSON(t, srv.URL+"/events?system=hive", &hive)
	if len(hive.Events) == 0 {
		t.Error("system=hive matched nothing")
	}
	for _, ev := range hive.Events {
		var ok bool
		for _, sys := range ev.Systems {
			ok = ok || sys == "hive"
		}
		if !ok {
			t.Errorf("system=hive returned event with systems %v", ev.Systems)
		}
	}
	// An impossible latency floor matches nothing.
	var slow eventsResponse
	getStatusJSON(t, srv.URL+"/events?min_ms=100000", &slow)
	if len(slow.Events) != 0 {
		t.Errorf("min_ms=100000 returned %d events", len(slow.Events))
	}
	// ?since= past the newest ID is an empty poll.
	var none eventsResponse
	getStatusJSON(t, srv.URL+"/events?since=3", &none)
	if len(none.Events) != 0 {
		t.Errorf("since=newest returned %d events", len(none.Events))
	}
}

func TestHistoryAndSLOEndpoints(t *testing.T) {
	srv, _ := newObsServer(t, obs.Config{
		Events:     obs.RecorderConfig{SampleRate: 1},
		Step:       20 * time.Millisecond,
		Objectives: obs.DefaultObjectives(0.999, 250*time.Millisecond, 2, time.Minute, 5*time.Minute, 14),
	})
	resp, err := http.Get(srv.URL + "/query?q=SELECT+a1+FROM+t10000_100")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	// The collector needs two ticks for the first sample; poll briefly.
	var hist historyResponse
	deadline := time.Now().Add(5 * time.Second)
	for {
		getStatusJSON(t, srv.URL+"/history?window=1m", &hist)
		if len(hist.Samples) > 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if len(hist.Samples) == 0 {
		t.Fatal("no history samples after 5s")
	}
	if hist.StepSec != 0.02 {
		t.Errorf("step_sec = %v, want 0.02", hist.StepSec)
	}
	// Downsampling returns at most one point per second of window.
	var coarse historyResponse
	getStatusJSON(t, srv.URL+"/history?window=1m&step=1s", &coarse)
	if len(coarse.Samples) > len(hist.Samples) {
		t.Errorf("downsampled %d > raw %d", len(coarse.Samples), len(hist.Samples))
	}
	var bad map[string]string
	if status := getStatusJSON(t, srv.URL+"/history?window=bogus", &bad); status != http.StatusBadRequest {
		t.Errorf("bad window status = %d", status)
	}

	var slo sloResponse
	if status := getStatusJSON(t, srv.URL+"/slo", &slo); status != http.StatusOK {
		t.Fatalf("/slo status = %d", status)
	}
	if !slo.Enabled || len(slo.Objectives) != 3 {
		t.Fatalf("slo = %+v, want 3 objectives enabled", slo)
	}
	names := map[string]bool{}
	for _, a := range slo.Objectives {
		names[a.Name] = true
		switch a.State {
		case obs.StateInactive, obs.StatePending, obs.StateFiring, obs.StateResolved:
		default:
			t.Errorf("objective %s in unknown state %q", a.Name, a.State)
		}
	}
	for _, want := range []string{"availability", "latency-p99", "estimator-qerror"} {
		if !names[want] {
			t.Errorf("objective %q missing from /slo", want)
		}
	}

	// /health carries the summary block.
	var health struct {
		SLO *sloHealth `json:"slo"`
	}
	getStatusJSON(t, srv.URL+"/health", &health)
	if health.SLO == nil || health.SLO.Objectives != 3 {
		t.Errorf("/health slo block = %+v", health.SLO)
	}
}

func TestErrorCodes(t *testing.T) {
	srv, _ := newTestServer(t)
	cases := []struct {
		path, code string
		status     int
	}{
		{"/query?q=SELECT", "parse_error", http.StatusBadRequest},
		{"/query?q=SELECT+%2B", "parse_error", http.StatusBadRequest}, // lexer error path
		{"/faults", "not_enabled", http.StatusNotFound},
		{"/explain?q=SELECT+a1+FROM+no_such_table", "bad_request", http.StatusBadRequest},
	}
	for _, tc := range cases {
		var out map[string]string
		if status := getStatusJSON(t, srv.URL+tc.path, &out); status != tc.status {
			t.Errorf("%s: status = %d, want %d", tc.path, status, tc.status)
		}
		if out["code"] != tc.code {
			t.Errorf("%s: code = %q, want %q (error %q)", tc.path, out["code"], tc.code, out["error"])
		}
		if out["error"] == "" {
			t.Errorf("%s: missing error message", tc.path)
		}
	}
}

func TestTraceFilters(t *testing.T) {
	srv, _ := newTestServer(t)
	for _, q := range []string{
		"SELECT+a1+FROM+t10000_100",
		"SELECT+a1+FROM+no_such_table",
	} {
		resp, err := http.Get(srv.URL + "/query?trace=1&q=" + q)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	var all []struct {
		ID    uint64 `json:"id"`
		Error string `json:"error"`
	}
	getJSON(t, srv.URL+"/trace", &all)
	if len(all) != 2 {
		t.Fatalf("recorded %d traces, want 2", len(all))
	}
	var failed []struct {
		ID    uint64 `json:"id"`
		Error string `json:"error"`
	}
	getJSON(t, srv.URL+"/trace?errors=1", &failed)
	if len(failed) != 1 || failed[0].Error == "" {
		t.Errorf("errors=1 traces = %+v, want the one failed trace", failed)
	}
	var onHive []json.RawMessage
	getJSON(t, srv.URL+"/trace?system=hive", &onHive)
	if len(onHive) != 1 {
		t.Errorf("system=hive matched %d traces, want 1 (the executed query)", len(onHive))
	}
	var slow []json.RawMessage
	getJSON(t, srv.URL+"/trace?min_ms=600000", &slow)
	if len(slow) != 0 {
		t.Errorf("min_ms=600000 matched %d traces", len(slow))
	}
	// Filters compose with ?n= and ?format=text.
	resp, err := http.Get(srv.URL + "/trace?errors=1&format=text")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "trace #") {
		t.Errorf("filtered text rendering:\n%s", body)
	}
}

func TestPromObservabilityMetrics(t *testing.T) {
	srv, _ := newObsServer(t, obs.Config{
		Events:     obs.RecorderConfig{SampleRate: 1},
		Step:       20 * time.Millisecond,
		Objectives: obs.DefaultObjectives(0.999, 250*time.Millisecond, 0, time.Minute, 5*time.Minute, 14),
	})
	// A traced query pins exemplars into the latency histograms.
	resp, err := http.Get(srv.URL + "/query?trace=1&q=SELECT+a1+FROM+t10000_100")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	resp, err = http.Get(srv.URL + "/metrics/prom")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	samples := checkPromFormat(t, string(raw))

	for _, name := range []string{
		"intellisphere_goroutines",
		"intellisphere_heap_inuse_bytes",
		"intellisphere_gc_pause_seconds_total",
		"intellisphere_gomaxprocs",
		"intellisphere_events_captured_total",
		"intellisphere_query_seconds_count",
	} {
		if _, ok := samples[name]; !ok {
			t.Errorf("exposition missing %s", name)
		}
	}
	if got := samples["intellisphere_query_seconds_count"]; got != 1 {
		t.Errorf("query_seconds_count = %v, want 1", got)
	}
	var sawBuild, sawSLO bool
	for k := range samples {
		sawBuild = sawBuild || strings.HasPrefix(k, "intellisphere_build_info{")
		sawSLO = sawSLO || strings.HasPrefix(k, "intellisphere_slo_state{")
	}
	if !sawBuild {
		t.Error("no build_info sample")
	}
	if !sawSLO {
		t.Error("no slo_state samples")
	}
	if !strings.Contains(string(raw), ` # {trace_id="`) {
		t.Error("no exemplar suffix in exposition")
	}
}
