package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"intellisphere/internal/cluster"
	"intellisphere/internal/core/subop"
	"intellisphere/internal/datagen"
	"intellisphere/internal/engine"
	"intellisphere/internal/remote"
)

// newBenchEngine builds the shared one-remote test federation; it serves
// both tests and benchmarks (testing.TB).
func newBenchEngine(t testing.TB) *engine.Engine {
	t.Helper()
	e, err := engine.New(engine.Config{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	h, err := remote.NewHive("hive", cluster.DefaultHive(), remote.Options{NoiseAmp: 0.01, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.RegisterRemoteSubOp(h, remote.EngineHive, subop.InHouseComparable); err != nil {
		t.Fatal(err)
	}
	for _, spec := range []struct {
		rows int64
		size int
	}{{10000, 100}, {100000, 100}, {1000000, 250}} {
		tb, err := datagen.Table(spec.rows, spec.size, "hive")
		if err != nil {
			t.Fatal(err)
		}
		if err := e.RegisterTable(tb); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Materialize("t10000_100"); err != nil {
		t.Fatal(err)
	}
	return e
}

// newTestServer builds a one-remote federation behind an httptest server.
func newTestServer(t *testing.T) (*httptest.Server, *engine.Engine) {
	t.Helper()
	e := newBenchEngine(t)
	srv := httptest.NewServer(New(e).Handler(10 * time.Second))
	t.Cleanup(srv.Close)
	return srv, e
}

func getJSON(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("decode %s: %v", url, err)
	}
	return resp
}

func TestQueryEndpoint(t *testing.T) {
	srv, _ := newTestServer(t)
	// POST JSON body.
	body := strings.NewReader(`{"sql": "SELECT a1 FROM t10000_100 WHERE a1 < 100"}`)
	resp, err := http.Post(srv.URL+"/query", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var qr queryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(qr.Explain, "plan (estimated") {
		t.Errorf("explain = %q", qr.Explain)
	}
	if qr.ActualSec <= 0 || len(qr.StepActuals) == 0 {
		t.Errorf("actuals = %v / %v", qr.ActualSec, qr.StepActuals)
	}
	// The table is materialized, so real rows come back.
	if len(qr.Columns) == 0 || len(qr.Rows) == 0 {
		t.Errorf("rows missing: cols=%v rows=%d", qr.Columns, len(qr.Rows))
	}
}

func TestQueryEndpointGETAndErrors(t *testing.T) {
	srv, _ := newTestServer(t)
	var qr queryResponse
	resp := getJSON(t, srv.URL+"/query?q="+strings.ReplaceAll("SELECT a1 FROM t100000_100", " ", "+"), &qr)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	// Bad SQL → 400 with a JSON error.
	var e map[string]string
	resp = getJSON(t, srv.URL+"/query?q=NOT+SQL", &e)
	if resp.StatusCode != http.StatusBadRequest || e["error"] == "" {
		t.Errorf("bad SQL: status %d, body %v", resp.StatusCode, e)
	}
	// Missing statement → 400.
	r2, err := http.Post(srv.URL+"/query", "application/json", strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusBadRequest {
		t.Errorf("empty body status = %d", r2.StatusCode)
	}
}

func TestExplainEndpoint(t *testing.T) {
	srv, _ := newTestServer(t)
	const sql = "SELECT r.a1 FROM t1000000_250 r JOIN t100000_100 s ON r.a1 = s.a1"
	var first, second explainResponse
	getJSON(t, srv.URL+"/explain?q="+strings.ReplaceAll(sql, " ", "+"), &first)
	getJSON(t, srv.URL+"/explain?q="+strings.ReplaceAll(sql, " ", "+"), &second)
	if first.Explain == "" || first.Explain != second.Explain {
		t.Errorf("cached explain differs:\n%q\n%q", first.Explain, second.Explain)
	}
}

func TestProfilesEndpoint(t *testing.T) {
	srv, _ := newTestServer(t)
	var infos []profileInfo
	getJSON(t, srv.URL+"/profiles", &infos)
	byName := map[string]profileInfo{}
	for _, p := range infos {
		byName[p.System] = p
	}
	if p, ok := byName["hive"]; !ok || p.Approach != "hybrid" || p.Active != "sub-op" {
		t.Errorf("hive profile = %+v", byName["hive"])
	}
	if p, ok := byName["teradata"]; !ok || p.Approach != "sub-op" {
		t.Errorf("master profile = %+v", byName["teradata"])
	}
}

func TestMetricsEndpoint(t *testing.T) {
	srv, e := newTestServer(t)
	const sql = "SELECT a1 FROM t100000_100"
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 3; j++ {
				var qr queryResponse
				getJSON(t, srv.URL+"/query?q="+strings.ReplaceAll(sql, " ", "+"), &qr)
			}
		}()
	}
	wg.Wait()
	e.FlushFeedback()
	var m metricsResponse
	getJSON(t, srv.URL+"/metrics", &m)
	if m.Engine.Queries != 12 {
		t.Errorf("queries = %d, want 12", m.Engine.Queries)
	}
	if m.QPS <= 0 {
		t.Errorf("qps = %v", m.QPS)
	}
	if m.Engine.PlanCache.Hits == 0 {
		t.Error("no plan-cache hits over repeated statements")
	}
	if m.Engine.Plan.Count == 0 || m.Engine.Execute.Count == 0 {
		t.Errorf("stage histograms empty: %+v", m.Engine)
	}
	if m.Engine.FeedbackBacklog != 0 {
		t.Errorf("backlog after flush = %d", m.Engine.FeedbackBacklog)
	}
	if m.UptimeSec <= 0 {
		t.Errorf("uptime = %v", m.UptimeSec)
	}
}
