package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"intellisphere/internal/cluster"
	"intellisphere/internal/core/subop"
	"intellisphere/internal/datagen"
	"intellisphere/internal/engine"
	"intellisphere/internal/faults"
	"intellisphere/internal/remote"
	"intellisphere/internal/resilience"
)

// newChaosServer builds a two-remote federation — hive behind a fault
// injector, its big table replicated onto spark — and serves it with the
// /faults control plane enabled. The breaker is tuned tight so a handful
// of requests drive the full closed → open → half-open → closed cycle.
func newChaosServer(t *testing.T) (*httptest.Server, *engine.Engine, *faults.Injector) {
	t.Helper()
	e, err := engine.New(engine.Config{
		Seed: 9,
		Retry: resilience.RetryPolicy{
			Seed:  9,
			Sleep: func(context.Context, time.Duration) error { return nil },
		},
		Breaker: resilience.BreakerConfig{
			FailureThreshold: 2,
			OpenTimeout:      50 * time.Millisecond,
			SuccessThreshold: 1,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	h, err := remote.NewHive("hive", cluster.DefaultHive(), remote.Options{NoiseAmp: 0.01, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	inj := faults.Wrap(h, faults.Config{Seed: 7})
	if _, _, err := e.RegisterRemoteSubOp(inj, remote.EngineHive, subop.InHouseComparable); err != nil {
		t.Fatal(err)
	}
	sc := cluster.DefaultHive()
	sc.Name = "spark-vm"
	s, err := remote.NewSpark("spark", sc, remote.Options{NoiseAmp: 0.01, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.RegisterRemoteSubOp(s, remote.EngineSpark, subop.InHouseComparable); err != nil {
		t.Fatal(err)
	}
	tb, err := datagen.Table(10000000, 1000, "hive")
	if err != nil {
		t.Fatal(err)
	}
	tb.Name = "rep_t"
	tb.Replicas = []string{"spark"}
	if err := e.RegisterTable(tb); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(New(e).WithFaults(map[string]*faults.Injector{"hive": inj}).Handler(10 * time.Second))
	t.Cleanup(srv.Close)
	return srv, e, inj
}

// postFault flips one system's outage switch through the control plane.
func postFault(t *testing.T, url, system string, outage bool) {
	t.Helper()
	body, _ := json.Marshal(faultRequest{System: system, Outage: &outage})
	resp, err := http.Post(url+"/faults", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /faults status = %d", resp.StatusCode)
	}
}

// TestChaosServeOutageAndRecovery drives the serving stack through a full
// outage cycle: degraded answers while hive is down, /health flipping to
// 503 once the breaker opens, and both recovering after the outage lifts.
func TestChaosServeOutageAndRecovery(t *testing.T) {
	srv, e, _ := newChaosServer(t)
	const q = "/query?q=SELECT+a5,+COUNT(a1)+FROM+rep_t+GROUP+BY+a5"

	var qr queryResponse
	if resp := getJSON(t, srv.URL+q, &qr); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy query status = %d", resp.StatusCode)
	}
	if qr.Degraded {
		t.Fatalf("healthy query degraded: %+v", qr.Excluded)
	}
	var h engine.Health
	if resp := getJSON(t, srv.URL+"/health", &h); resp.StatusCode != http.StatusOK || h.Status != "ok" {
		t.Fatalf("healthy /health = %d %+v", resp.StatusCode, h)
	}

	postFault(t, srv.URL, "hive", true)
	for i := 0; i < 3; i++ {
		qr = queryResponse{}
		if resp := getJSON(t, srv.URL+q, &qr); resp.StatusCode != http.StatusOK {
			t.Fatalf("query %d during outage status = %d", i, resp.StatusCode)
		}
		if !qr.Degraded || len(qr.Excluded) != 1 || qr.Excluded[0] != "hive" {
			t.Fatalf("query %d during outage: degraded=%v excluded=%v", i, qr.Degraded, qr.Excluded)
		}
	}
	if resp := getJSON(t, srv.URL+"/health", &h); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/health during outage = %d %+v", resp.StatusCode, h)
	}
	if h.Status != "degraded" || h.OpenCount != 1 {
		t.Fatalf("/health body during outage = %+v", h)
	}
	if snap := h.Resilience.Breakers["hive"]; snap.State != resilience.Open || snap.Opens < 1 {
		t.Fatalf("hive breaker over /health = %+v", snap)
	}
	if h.Resilience.Fallbacks < 3 || h.Resilience.DegradedQueries < 3 {
		t.Fatalf("fallback counters over /health = %+v", h.Resilience)
	}

	var fs []faultStatus
	getJSON(t, srv.URL+"/faults", &fs)
	if len(fs) != 1 || fs[0].System != "hive" || !fs[0].Down || fs[0].Stats.OutageRejects == 0 {
		t.Fatalf("/faults during outage = %+v", fs)
	}

	postFault(t, srv.URL, "hive", false)
	// Let the 50ms open window lapse so the next call half-opens the
	// breaker; its success closes it again.
	deadline := time.Now().Add(5 * time.Second)
	for {
		time.Sleep(60 * time.Millisecond)
		qr = queryResponse{}
		getJSON(t, srv.URL+q, &qr)
		if !qr.Degraded {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("queries still degraded after recovery")
		}
	}
	if st := e.Breaker("hive").State(); st != resilience.Closed {
		t.Fatalf("hive breaker after recovery = %v", st)
	}
	if resp := getJSON(t, srv.URL+"/health", &h); resp.StatusCode != http.StatusOK || h.Status != "ok" {
		t.Fatalf("/health after recovery = %d %+v", resp.StatusCode, h)
	}
}

// TestFaultsEndpointDisabled pins the 404 when no injectors are wired.
func TestFaultsEndpointDisabled(t *testing.T) {
	srv, _ := newTestServer(t)
	resp, err := http.Get(srv.URL + "/faults")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/faults without injectors = %d", resp.StatusCode)
	}
}

// TestHealthEndpointHealthy pins the healthy-path /health payload shape.
func TestHealthEndpointHealthy(t *testing.T) {
	srv, _ := newTestServer(t)
	var h engine.Health
	if resp := getJSON(t, srv.URL+"/health", &h); resp.StatusCode != http.StatusOK {
		t.Fatalf("/health status = %d", resp.StatusCode)
	}
	if h.Status != "ok" || h.OpenCount != 0 {
		t.Fatalf("/health = %+v", h)
	}
}
