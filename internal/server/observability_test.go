package server

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

func TestQueryTraceParam(t *testing.T) {
	srv, eng := newTestServer(t)
	resp, err := http.Post(srv.URL+"/query?trace=1", "application/json",
		strings.NewReader(`{"sql": "SELECT a5, COUNT(a1) FROM t1000000_250 GROUP BY a5"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var out struct {
		ActualSec float64 `json:"actual_sec"`
		Trace     *struct {
			ID   uint64 `json:"id"`
			Root struct {
				Name     string            `json:"name"`
				Children []json.RawMessage `json:"children"`
			} `json:"root"`
		} `json:"trace"`
		TraceText string `json:"trace_text"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Trace == nil || out.Trace.Root.Name != "query" || len(out.Trace.Root.Children) == 0 {
		t.Fatalf("trace payload = %+v", out.Trace)
	}
	for _, want := range []string{"trace #", "parse", "plan", "cost on ", "execute", "aggregation on "} {
		if !strings.Contains(out.TraceText, want) {
			t.Errorf("trace_text missing %q:\n%s", want, out.TraceText)
		}
	}
	if eng.Stats().Traces != 1 {
		t.Errorf("engine recorded %d traces", eng.Stats().Traces)
	}

	// An untraced query on the same server stays trace-free.
	var plain map[string]json.RawMessage
	getJSON(t, srv.URL+"/query?q=SELECT+a1+FROM+t10000_100", &plain)
	if _, ok := plain["trace"]; ok {
		t.Error("untraced response carries a trace")
	}
}

func TestTraceEndpoint(t *testing.T) {
	srv, _ := newTestServer(t)
	var empty []json.RawMessage
	getJSON(t, srv.URL+"/trace", &empty)
	if len(empty) != 0 {
		t.Fatalf("fresh server has %d traces", len(empty))
	}
	for i := 0; i < 3; i++ {
		resp, err := http.Get(srv.URL + "/query?trace=true&q=SELECT+a1+FROM+t10000_100")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	var traces []struct {
		ID  uint64 `json:"id"`
		SQL string `json:"sql"`
	}
	getJSON(t, srv.URL+"/trace?n=2", &traces)
	if len(traces) != 2 || traces[0].ID != 3 || traces[1].ID != 2 {
		t.Fatalf("traces = %+v, want IDs 3,2 newest-first", traces)
	}
	resp, err := http.Get(srv.URL + "/trace?format=text")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "trace #3") || !strings.Contains(string(body), "execute") {
		t.Errorf("text rendering:\n%s", body)
	}
}

// promSampleRe matches one exposition sample line: a metric name, optional
// labels, a float value, and an optional OpenMetrics exemplar suffix
// (" # {labels} value [timestamp]") on histogram bucket lines.
var promSampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^{}]*\})? (NaN|[-+]?Inf|[-+]?[0-9]*\.?[0-9]+([eE][-+]?[0-9]+)?)( # \{[^{}]*\} [-+]?[0-9]*\.?[0-9]+([eE][-+]?[0-9]+)?( [-+]?[0-9]*\.?[0-9]+([eE][-+]?[0-9]+)?)?)?$`)

// checkPromFormat is a strict text-exposition (0.0.4) parser: every line is
// a well-formed comment or sample, every sample's base name is declared by a
// preceding # TYPE, histogram buckets are cumulative with an +Inf bucket
// matching _count, and no value is NaN or infinite (everything here must
// also survive JSON).
func checkPromFormat(t *testing.T, body string) (samples map[string]float64) {
	t.Helper()
	samples = map[string]float64{}
	typed := map[string]string{}
	var lastBucket = map[string]float64{} // metric name -> last cumulative bucket count
	sc := bufio.NewScanner(strings.NewReader(body))
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			fields := strings.Fields(text)
			if len(fields) < 4 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				t.Errorf("line %d: malformed comment %q", line, text)
				continue
			}
			if fields[1] == "TYPE" {
				typed[fields[2]] = fields[3]
			}
			continue
		}
		m := promSampleRe.FindStringSubmatch(text)
		if m == nil {
			t.Errorf("line %d: malformed sample %q", line, text)
			continue
		}
		name, labels, valText := m[1], m[2], m[3]
		if m[5] != "" && !strings.HasSuffix(name, "_bucket") {
			t.Errorf("line %d: exemplar on non-bucket sample %q", line, name)
		}
		base := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if bn := strings.TrimSuffix(name, suffix); bn != name && typed[bn] == "histogram" {
				base = bn
			}
		}
		if _, ok := typed[base]; !ok {
			t.Errorf("line %d: sample %q has no preceding # TYPE", line, name)
		}
		v, err := strconv.ParseFloat(valText, 64)
		if err != nil || valText == "NaN" || strings.Contains(valText, "Inf") {
			t.Errorf("line %d: bad value %q", line, valText)
			continue
		}
		samples[name+labels] = v
		if strings.HasSuffix(name, "_bucket") {
			hist := strings.TrimSuffix(name, "_bucket")
			if v < lastBucket[hist] {
				t.Errorf("line %d: histogram %s buckets not cumulative (%v after %v)", line, hist, v, lastBucket[hist])
			}
			lastBucket[hist] = v
			if strings.Contains(labels, `le="+Inf"`) {
				if count, ok := samples[hist+"_count"]; ok && count != v {
					t.Errorf("%s: +Inf bucket %v != _count %v", hist, v, count)
				}
				delete(lastBucket, hist)
			}
		}
		if strings.HasSuffix(name, "_count") {
			hist := strings.TrimSuffix(name, "_count")
			if inf, ok := samples[hist+`_bucket{le="+Inf"}`]; ok && inf != v {
				t.Errorf("%s: _count %v != +Inf bucket %v", hist, v, inf)
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return samples
}

func TestPromMetricsEndpoint(t *testing.T) {
	srv, _ := newTestServer(t)
	// Work the counters: queries (one traced), a batch, an error.
	for _, path := range []string{
		"/query?q=SELECT+a1+FROM+t10000_100",
		"/query?trace=1&q=SELECT+a5,+COUNT(a1)+FROM+t1000000_250+GROUP+BY+a5",
		"/query?q=SELECT+nope+FROM+missing",
	} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	resp, err := http.Get(srv.URL + "/metrics/prom")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("content type = %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	samples := checkPromFormat(t, string(raw))

	if got := samples["intellisphere_queries_total"]; got != 3 {
		t.Errorf("queries_total = %v, want 3", got)
	}
	if got := samples["intellisphere_query_errors_total"]; got != 1 {
		t.Errorf("query_errors_total = %v, want 1", got)
	}
	if got := samples["intellisphere_traces_total"]; got != 1 {
		t.Errorf("traces_total = %v, want 1", got)
	}
	if got := samples["intellisphere_parse_seconds_count"]; got != 3 {
		t.Errorf("parse_seconds_count = %v, want 3", got)
	}
	// Per-estimator accuracy gauges carry (system, operator) labels.
	var sawAccuracy bool
	for k := range samples {
		if strings.HasPrefix(k, "intellisphere_estimator_mean_q_error{") &&
			strings.Contains(k, `system="`) && strings.Contains(k, `operator="`) {
			sawAccuracy = true
		}
	}
	if !sawAccuracy {
		t.Error("no labeled estimator accuracy samples in exposition")
	}
}

func TestRequestBodyLimit(t *testing.T) {
	srv, _ := newTestServer(t)
	big := `{"sql": "SELECT a1 FROM t10000_100 -- ` + strings.Repeat("x", maxBodyBytes) + `"}`
	for _, path := range []string{"/query", "/query/batch"} {
		body := big
		if path == "/query/batch" {
			body = "[" + big + "]"
		}
		resp, err := http.Post(srv.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var out map[string]string
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatalf("%s: 413 body is not JSON: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Errorf("%s oversized status = %d, want 413", path, resp.StatusCode)
		}
		if out["error"] == "" {
			t.Errorf("%s oversized response missing error field", path)
		}
	}
	// A normal-sized body still works after the cap.
	resp, err := http.Post(srv.URL+"/query", "application/json",
		strings.NewReader(`{"sql": "SELECT a1 FROM t10000_100"}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("normal body after cap = %d", resp.StatusCode)
	}
}
