package server

import (
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"testing"
)

// postBatch posts a raw /query/batch body and decodes the response into out.
func postBatch(t *testing.T, url, body string, out any) *http.Response {
	t.Helper()
	resp, err := http.Post(url+"/query/batch", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("decode /query/batch: %v", err)
	}
	return resp
}

// A /query/batch response must be element-wise identical to N sequential
// /query calls. Two fixtures built from identical seeds answer the two
// protocols, since each execution advances the simulator's noise stream.
func TestQueryBatchEndpointMatchesSequential(t *testing.T) {
	batchSrv, _ := newTestServer(t)
	seqSrv, _ := newTestServer(t)

	sqls := []string{
		"SELECT a1 FROM t10000_100 WHERE a1 < 100",
		"SELECT a2, COUNT(*) FROM t100000_100 GROUP BY a2",
		"SELECT r.a1 FROM t1000000_250 r JOIN t100000_100 s ON r.a1 = s.a1",
		"SELECT a1 FROM t10000_100 WHERE a1 < 100", // duplicate of 0
	}
	body, err := json.Marshal(sqls)
	if err != nil {
		t.Fatal(err)
	}
	var got []queryResponse
	resp := postBatch(t, batchSrv.URL, string(body), &got)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if len(got) != len(sqls) {
		t.Fatalf("got %d elements for %d statements", len(got), len(sqls))
	}
	for i, sql := range sqls {
		r, err := http.Post(seqSrv.URL+"/query", "application/json",
			strings.NewReader(`{"sql": `+string(mustJSON(t, sql))+`}`))
		if err != nil {
			t.Fatal(err)
		}
		var want queryResponse
		if err := json.NewDecoder(r.Body).Decode(&want); err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if wantJSON, gotJSON := string(mustJSON(t, want)), string(mustJSON(t, got[i])); gotJSON != wantJSON {
			t.Errorf("statement %d (%q):\nbatch:      %s\nsequential: %s", i, sql, gotJSON, wantJSON)
		}
	}
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// The two request forms may mix, and a failed statement yields an error
// element without failing its neighbors or the request.
func TestQueryBatchEndpointFormsAndErrors(t *testing.T) {
	srv, _ := newTestServer(t)
	var got []map[string]any
	resp := postBatch(t, srv.URL, `[
		"SELECT a1 FROM t10000_100 WHERE a1 < 100",
		{"sql": "SELECT a1 FROM t100000_100"},
		"SELECT a1 FROM no_such_table"
	]`, &got)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if len(got) != 3 {
		t.Fatalf("got %d elements", len(got))
	}
	for i := 0; i < 2; i++ {
		if got[i]["error"] != nil || got[i]["explain"] == "" {
			t.Errorf("element %d: %v", i, got[i])
		}
	}
	if got[2]["error"] == nil || got[2]["sql"] != "SELECT a1 FROM no_such_table" {
		t.Errorf("error element: %v", got[2])
	}

	// Malformed bodies → 400.
	for _, body := range []string{`[]`, `{"sql": "SELECT a1 FROM t10000_100"}`, `[42]`, `[""]`} {
		var e map[string]string
		if resp := postBatch(t, srv.URL, body, &e); resp.StatusCode != http.StatusBadRequest || e["error"] == "" {
			t.Errorf("body %s: status %d, error %q", body, resp.StatusCode, e["error"])
		}
	}
}

// Concurrent batch requests share the engine safely (run under -race).
func TestQueryBatchEndpointConcurrent(t *testing.T) {
	srv, e := newTestServer(t)
	body := `["SELECT a1 FROM t10000_100 WHERE a1 < 100", "SELECT a1 FROM t100000_100"]`
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				var got []queryResponse
				if resp := postBatch(t, srv.URL, body, &got); resp.StatusCode != http.StatusOK || len(got) != 2 {
					t.Errorf("status %d, %d elements", resp.StatusCode, len(got))
				}
			}
		}()
	}
	wg.Wait()
	if q := e.Stats().Queries; q != 24 {
		t.Errorf("queries = %d, want 24", q)
	}
}
