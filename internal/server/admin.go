package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"intellisphere/internal/catalog"
	"intellisphere/internal/engine"
	"intellisphere/internal/querygrid"
)

// This file is the durable-mutation admin surface: the endpoints that change
// engine state the write-ahead log must remember (catalog registrations,
// materializations, QueryGrid link overrides), plus the durability status
// that /health and /metrics/prom report. The crash-recovery smoke and soak
// drive the engine exclusively through these routes, so every mutation they
// accept acks only after the engine has WAL-logged it.

// WithDurability attaches the engine's durability handle, enabling the
// recovery block on /health and the durability gauges on /metrics/prom.
// Without it both surfaces simply omit durability (stateless serving).
func (s *Server) WithDurability(d *engine.Durability) *Server {
	s.dur = d
	return s
}

// catalogEntry describes one table on GET /catalog.
type catalogEntry struct {
	Table        *catalog.Table `json:"table"`
	Materialized bool           `json:"materialized"`
}

// catalogRequest is the POST /catalog body. Register a table, materialize
// one by name, or both in a single request (registration happens first, so
// a new table can be materialized in the same call).
type catalogRequest struct {
	Table       *catalog.Table `json:"table,omitempty"`
	Materialize string         `json:"materialize,omitempty"`
}

// handleCatalog serves the catalog admin surface: GET lists every
// registered table with its materialization flag; POST registers and/or
// materializes. A 200 means the mutation is durable (WAL-appended and
// fsynced) wherever a data directory is configured.
func (s *Server) handleCatalog(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodPost {
		var req catalogRequest
		if r.Body == nil {
			s.writeError(w, http.StatusBadRequest, fmt.Errorf(`missing request: POST {"table": {...}} or {"materialize": "name"}`))
			return
		}
		r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			s.writeError(w, requestStatus(err), fmt.Errorf("decode request: %v", err))
			return
		}
		if req.Table == nil && req.Materialize == "" {
			s.writeError(w, http.StatusBadRequest, fmt.Errorf(`want "table" and/or "materialize"`))
			return
		}
		if req.Table != nil {
			if err := s.eng.RegisterTable(req.Table); err != nil {
				s.writeError(w, http.StatusBadRequest, err)
				return
			}
		}
		if req.Materialize != "" {
			if err := s.eng.Materialize(req.Materialize); err != nil {
				s.writeError(w, http.StatusBadRequest, err)
				return
			}
		}
		name := req.Materialize
		if req.Table != nil {
			name = req.Table.Name
		}
		t, err := s.eng.Catalog().Lookup(name)
		if err != nil {
			s.writeError(w, http.StatusInternalServerError, err)
			return
		}
		s.writeJSON(w, http.StatusOK, catalogEntry{
			Table: t, Materialized: s.materialized()[name],
		})
		return
	}
	mat := s.materialized()
	tables := s.eng.Catalog().List()
	out := make([]catalogEntry, 0, len(tables))
	for _, t := range tables {
		out = append(out, catalogEntry{Table: t, Materialized: mat[t.Name]})
	}
	s.writeJSON(w, http.StatusOK, out)
}

// materialized returns the set of locally materialized tables.
func (s *Server) materialized() map[string]bool {
	names := s.eng.MaterializedNames()
	out := make(map[string]bool, len(names))
	for _, n := range names {
		out[n] = true
	}
	return out
}

// linksResponse is the GET /links payload: the default link plus every
// per-system override.
type linksResponse struct {
	Default querygrid.LinkConfig            `json:"default"`
	Links   map[string]querygrid.LinkConfig `json:"links"`
}

// linkRequest is the POST /links body: install (or replace) one system's
// QueryGrid link override.
type linkRequest struct {
	System string               `json:"system"`
	Link   querygrid.LinkConfig `json:"link"`
}

// handleLinks serves the QueryGrid link admin surface: GET reports the
// default and per-system link configurations; POST installs one override
// (validated, plan cache invalidated, WAL-logged).
func (s *Server) handleLinks(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodPost {
		var req linkRequest
		if r.Body == nil {
			s.writeError(w, http.StatusBadRequest, fmt.Errorf(`missing request: POST {"system": ..., "link": {...}}`))
			return
		}
		r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			s.writeError(w, requestStatus(err), fmt.Errorf("decode request: %v", err))
			return
		}
		if req.System == "" {
			s.writeError(w, http.StatusBadRequest, fmt.Errorf("system is required"))
			return
		}
		if err := s.eng.SetLink(req.System, req.Link); err != nil {
			s.writeError(w, http.StatusBadRequest, err)
			return
		}
		s.writeJSON(w, http.StatusOK, req)
		return
	}
	s.writeJSON(w, http.StatusOK, linksResponse{
		Default: s.eng.Grid().Default(),
		Links:   s.eng.Grid().Links(),
	})
}

// recoveryStatus is the wire shape of the boot recovery summary on /health.
type recoveryStatus struct {
	Restored           bool    `json:"restored"`
	SnapshotSeq        uint64  `json:"snapshot_seq,omitempty"`
	SnapshotsDiscarded int     `json:"snapshots_discarded,omitempty"`
	Replayed           int     `json:"replayed"`
	SkippedCovered     int     `json:"skipped_covered,omitempty"`
	TornTail           bool    `json:"torn_tail,omitempty"`
	TruncatedBytes     int64   `json:"truncated_bytes,omitempty"`
	DurationSec        float64 `json:"duration_sec"`
}

// durabilityStatus is the durability block on /health: what recovery did at
// boot plus the live snapshot/WAL position.
type durabilityStatus struct {
	Recovery       recoveryStatus `json:"recovery"`
	Seq            uint64         `json:"seq"`
	WALBytes       int64          `json:"wal_bytes"`
	SnapshotSeq    uint64         `json:"snapshot_seq"`
	SnapshotAgeSec float64        `json:"snapshot_age_sec,omitempty"`
	SnapshotErrors uint64         `json:"snapshot_errors,omitempty"`
}

// healthResponse extends the engine's availability verdict with the
// durability block when a data directory is configured and the SLO summary
// when objectives are declared.
type healthResponse struct {
	engine.Health
	Durability *durabilityStatus `json:"durability,omitempty"`
	SLO        *sloHealth        `json:"slo,omitempty"`
}

// durabilityStatus builds the /health durability block, nil when the server
// runs without a data directory.
func (s *Server) durabilityStatus() *durabilityStatus {
	if s.dur == nil {
		return nil
	}
	rec := s.dur.Recovery()
	st, snapErrs := s.dur.Stats()
	out := &durabilityStatus{
		Recovery: recoveryStatus{
			Restored:           rec.Restored,
			SnapshotSeq:        rec.SnapshotSeq,
			SnapshotsDiscarded: rec.SnapshotsDiscarded,
			Replayed:           rec.Replayed,
			SkippedCovered:     rec.SkippedCovered,
			TornTail:           rec.TornTail,
			TruncatedBytes:     rec.TruncatedBytes,
			DurationSec:        rec.DurationSec,
		},
		Seq:            st.Seq,
		WALBytes:       st.WALBytes,
		SnapshotSeq:    st.SnapshotSeq,
		SnapshotErrors: snapErrs,
	}
	if !st.LastSnapshot.IsZero() {
		out.SnapshotAgeSec = time.Since(st.LastSnapshot).Seconds()
	}
	return out
}
