package server

import (
	"bytes"
	"math"
	"strconv"
	"sync"
	"unicode/utf8"
)

// The hot serving endpoints (/query, /query/batch, /query/stream) answer
// with a small fixed family of response shapes. Encoding them through
// encoding/json costs reflection, interface boxing, and per-request encoder
// state; at serving QPS that dominated the handler profile. This file
// hand-rolls encoders for exactly those shapes — byte-identical to
// json.NewEncoder with SetIndent("", " ") (the seed's writeJSON), which the
// golden tests in encode_test.go pin — over pooled buffers, so a warm
// request allocates nothing for its response.
//
// Responses carrying a span tree (?trace=1) fall back to encoding/json:
// tracing is an opt-in diagnostic path, and trace.Trace is the one shape
// here with nested time.Time marshaling.

// bufPool recycles response buffers across requests. Buffers that grew
// beyond bufPoolMax are dropped rather than pooled, so one huge batch
// response does not pin its footprint forever.
const bufPoolMax = 1 << 20

var bufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

func getBuf() *bytes.Buffer {
	b := bufPool.Get().(*bytes.Buffer)
	b.Reset()
	return b
}

func putBuf(b *bytes.Buffer) {
	if b.Cap() <= bufPoolMax {
		bufPool.Put(b)
	}
}

// jw writes indented JSON into a buffer, mirroring json.Encoder with
// SetIndent("", " "): one-space indentation per nesting level, a space
// after each key's colon, HTML-escaped strings, and encoding/json's float
// rendering.
type jw struct {
	b       *bytes.Buffer
	depth   int
	scratch [40]byte
}

func (w *jw) newline() {
	w.b.WriteByte('\n')
	for i := 0; i < w.depth; i++ {
		w.b.WriteByte(' ')
	}
}

// key starts an object member: separating comma (unless first), newline at
// the current depth, quoted name, colon, space.
func (w *jw) key(name string, first bool) {
	if !first {
		w.b.WriteByte(',')
	}
	w.newline()
	w.str(name)
	w.b.WriteString(": ")
}

const hexDigits = "0123456789abcdef"

// str writes a quoted, escaped string exactly as encoding/json does with
// HTML escaping on: ", \, control characters, <, >, &, U+2028/U+2029, and
// invalid UTF-8 (replaced by �).
func (w *jw) str(s string) {
	b := w.b
	b.WriteByte('"')
	start := 0
	for i := 0; i < len(s); {
		c := s[i]
		if c < utf8.RuneSelf {
			if c >= 0x20 && c != '"' && c != '\\' && c != '<' && c != '>' && c != '&' {
				i++
				continue
			}
			b.WriteString(s[start:i])
			switch c {
			case '\\':
				b.WriteString(`\\`)
			case '"':
				b.WriteString(`\"`)
			case '\n':
				b.WriteString(`\n`)
			case '\r':
				b.WriteString(`\r`)
			case '\t':
				b.WriteString(`\t`)
			default: // other control chars and <, >, &
				b.WriteString(`\u00`)
				b.WriteByte(hexDigits[c>>4])
				b.WriteByte(hexDigits[c&0xF])
			}
			i++
			start = i
			continue
		}
		r, size := utf8.DecodeRuneInString(s[i:])
		if r == utf8.RuneError && size == 1 {
			b.WriteString(s[start:i])
			b.WriteString(`\ufffd`)
			i += size
			start = i
			continue
		}
		if r == '\u2028' || r == '\u2029' {
			b.WriteString(s[start:i])
			b.WriteString(`\u202`)
			b.WriteByte(hexDigits[r&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	b.WriteString(s[start:])
	b.WriteByte('"')
}

// float renders a float64 the way encoding/json does: shortest
// representation, 'f' form in the ±[1e-6, 1e21) magnitude range, 'e'
// otherwise with single-digit exponents unpadded. Engine outputs are finite
// by construction; this path never sees NaN or ±Inf.
func (w *jw) float(f float64) {
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	out := strconv.AppendFloat(w.scratch[:0], f, format, -1, 64)
	if format == 'e' {
		if n := len(out); n >= 4 && out[n-4] == 'e' && out[n-3] == '-' && out[n-2] == '0' {
			out[n-2] = out[n-1]
			out = out[:n-1]
		}
	}
	w.b.Write(out)
}

// floats writes a []float64 with non-omitempty semantics: nil is null, an
// empty slice is [], otherwise one element per line.
func (w *jw) floats(fs []float64) {
	if fs == nil {
		w.b.WriteString("null")
		return
	}
	if len(fs) == 0 {
		w.b.WriteString("[]")
		return
	}
	w.b.WriteByte('[')
	w.depth++
	for i, f := range fs {
		if i > 0 {
			w.b.WriteByte(',')
		}
		w.newline()
		w.float(f)
	}
	w.depth--
	w.newline()
	w.b.WriteByte(']')
}

// strs writes a non-empty []string, one element per line.
func (w *jw) strs(ss []string) {
	w.b.WriteByte('[')
	w.depth++
	for i, s := range ss {
		if i > 0 {
			w.b.WriteByte(',')
		}
		w.newline()
		w.str(s)
	}
	w.depth--
	w.newline()
	w.b.WriteByte(']')
}

// rows writes a non-empty [][]float64 (the /query result rows).
func (w *jw) rows(rs [][]float64) {
	w.b.WriteByte('[')
	w.depth++
	for i, r := range rs {
		if i > 0 {
			w.b.WriteByte(',')
		}
		w.newline()
		w.floats(r)
	}
	w.depth--
	w.newline()
	w.b.WriteByte(']')
}

// encodeQueryResponse writes one queryResponse object, mirroring its struct
// tags: step_actuals always present, degraded/excluded/columns/rows
// omitempty. The caller guarantees resp.Trace is nil (traced responses take
// the encoding/json fallback).
func encodeQueryResponse(w *jw, resp *queryResponse) {
	w.b.WriteByte('{')
	w.depth++
	w.key("sql", true)
	w.str(resp.SQL)
	w.key("explain", false)
	w.str(resp.Explain)
	w.key("estimated_sec", false)
	w.float(resp.EstimatedSec)
	w.key("actual_sec", false)
	w.float(resp.ActualSec)
	w.key("step_actuals", false)
	w.floats(resp.StepActuals)
	if resp.Degraded {
		w.key("degraded", false)
		w.b.WriteString("true")
	}
	if len(resp.Excluded) > 0 {
		w.key("excluded", false)
		w.strs(resp.Excluded)
	}
	if len(resp.Columns) > 0 {
		w.key("columns", false)
		w.strs(resp.Columns)
	}
	if len(resp.Rows) > 0 {
		w.key("rows", false)
		w.rows(resp.Rows)
	}
	w.depth--
	w.newline()
	w.b.WriteByte('}')
}

// encodeStatementError writes a per-statement error frame. The seed encoded
// these as map[string]string{"sql", "error"}, and encoding/json sorts map
// keys — so "error" precedes "sql".
func encodeStatementError(w *jw, sql, msg string) {
	w.b.WriteByte('{')
	w.depth++
	w.key("error", true)
	w.str(msg)
	w.key("sql", false)
	w.str(sql)
	w.depth--
	w.newline()
	w.b.WriteByte('}')
}

// encodeErrorFrame writes a top-level {"code": ..., "error": ...} frame (the
// writeError shape). The seed encoded these as sorted string maps; "code"
// sorts before "error", so the golden equivalence with encoding/json holds.
func encodeErrorFrame(w *jw, code, msg string) {
	w.b.WriteByte('{')
	w.depth++
	w.key("code", true)
	w.str(code)
	w.key("error", false)
	w.str(msg)
	w.depth--
	w.newline()
	w.b.WriteByte('}')
}
