package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"intellisphere/internal/engine"
)

// newDurableTestServer is newTestServer with a data directory attached, so
// the durability surfaces (/health block, prom gauges) light up.
func newDurableTestServer(t *testing.T) (*httptest.Server, *engine.Engine, *engine.Durability) {
	t.Helper()
	e := newBenchEngine(t)
	d, _, err := engine.OpenDurability(e, engine.DurabilityConfig{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	srv := httptest.NewServer(New(e).WithDurability(d).Handler(10 * time.Second))
	t.Cleanup(srv.Close)
	return srv, e, d
}

func postJSON(t *testing.T, url, body string, out any) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp
}

func TestCatalogEndpoint(t *testing.T) {
	srv, eng, _ := newDurableTestServer(t)

	var list []catalogEntry
	getJSON(t, srv.URL+"/catalog", &list)
	if len(list) != 3 {
		t.Fatalf("catalog lists %d tables, want 3", len(list))
	}
	byName := map[string]catalogEntry{}
	for _, e := range list {
		byName[e.Table.Name] = e
	}
	if !byName["t10000_100"].Materialized || byName["t100000_100"].Materialized {
		t.Errorf("materialization flags wrong: %+v", byName)
	}

	// Register a new table and materialize it in one request.
	req := `{"table": {"name": "admin_t1", "system": "hive", "rows": 5000,
		"schema": {"columns": [{"name": "a1", "type": 0, "width": 8, "duplication": 1}]}},
		"materialize": "admin_t1"}`
	var entry catalogEntry
	resp := postJSON(t, srv.URL+"/catalog", req, &entry)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if entry.Table.Name != "admin_t1" || !entry.Materialized {
		t.Fatalf("entry = %+v", entry)
	}
	if _, err := eng.Catalog().Lookup("admin_t1"); err != nil {
		t.Fatal(err)
	}

	// Duplicate registration and unknown-system tables are client errors.
	if resp := postJSON(t, srv.URL+"/catalog", req, nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("duplicate register status = %d", resp.StatusCode)
	}
	bad := `{"table": {"name": "ghost", "system": "nosuch", "rows": 10,
		"schema": {"columns": [{"name": "a1", "type": 0, "width": 8, "duplication": 1}]}}}`
	if resp := postJSON(t, srv.URL+"/catalog", bad, nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown-system register status = %d", resp.StatusCode)
	}
	if resp := postJSON(t, srv.URL+"/catalog", `{}`, nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty request status = %d", resp.StatusCode)
	}
}

func TestLinksEndpoint(t *testing.T) {
	srv, eng, _ := newDurableTestServer(t)

	var before linksResponse
	getJSON(t, srv.URL+"/links", &before)
	if before.Default.BandwidthBytesPerSec <= 0 {
		t.Fatalf("default link = %+v", before.Default)
	}
	if _, ok := before.Links["hive"]; ok {
		t.Fatalf("unexpected pre-existing override: %+v", before.Links)
	}

	resp := postJSON(t, srv.URL+"/links",
		`{"system": "hive", "link": {"bandwidth_bytes_per_sec": 5e7, "latency_sec": 0.1, "per_row_overhead_us": 1}}`, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var after linksResponse
	getJSON(t, srv.URL+"/links", &after)
	if l, ok := after.Links["hive"]; !ok || l.BandwidthBytesPerSec != 5e7 {
		t.Fatalf("override not installed: %+v", after.Links)
	}
	if eng.Grid().Links()["hive"].BandwidthBytesPerSec != 5e7 {
		t.Fatal("engine grid does not reflect the override")
	}

	// Invalid configs and missing system are client errors.
	if resp := postJSON(t, srv.URL+"/links",
		`{"system": "hive", "link": {"bandwidth_bytes_per_sec": -1}}`, nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid link status = %d", resp.StatusCode)
	}
	if resp := postJSON(t, srv.URL+"/links", `{"link": {}}`, nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing system status = %d", resp.StatusCode)
	}
}

func TestHealthDurabilityBlock(t *testing.T) {
	srv, _, d := newDurableTestServer(t)

	// Mutate once and snapshot so every durability field is exercised.
	postJSON(t, srv.URL+"/links",
		`{"system": "hive", "link": {"bandwidth_bytes_per_sec": 5e7, "latency_sec": 0.1, "per_row_overhead_us": 1}}`, nil)
	if err := d.Snapshot(); err != nil {
		t.Fatal(err)
	}

	var h struct {
		Status     string            `json:"status"`
		Durability *durabilityStatus `json:"durability"`
	}
	getJSON(t, srv.URL+"/health", &h)
	if h.Status != "ok" || h.Durability == nil {
		t.Fatalf("health = %+v", h)
	}
	if h.Durability.Seq != 1 || h.Durability.SnapshotSeq != 1 || h.Durability.WALBytes != 0 {
		t.Errorf("durability block = %+v", h.Durability)
	}

	// Without WithDurability the block is absent entirely.
	plain, _ := newTestServer(t)
	var raw map[string]json.RawMessage
	getJSON(t, plain.URL+"/health", &raw)
	if _, ok := raw["durability"]; ok {
		t.Error("stateless server reports a durability block")
	}
}

func TestPromDurabilityGauges(t *testing.T) {
	srv, _, d := newDurableTestServer(t)
	postJSON(t, srv.URL+"/links",
		`{"system": "hive", "link": {"bandwidth_bytes_per_sec": 5e7, "latency_sec": 0.1, "per_row_overhead_us": 1}}`, nil)
	if err := d.Snapshot(); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(srv.URL + "/metrics/prom")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{
		"intellisphere_wal_bytes 0",
		"intellisphere_durable_seq 1",
		"intellisphere_wal_appends_total 1",
		"intellisphere_snapshots_total 1",
		"intellisphere_snapshot_age_seconds",
		"intellisphere_recovery_records_replayed 0",
		"intellisphere_recovery_duration_seconds",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("prom output missing %q", want)
		}
	}

	// A stateless server exposes none of the durability series.
	plain, _ := newTestServer(t)
	resp2, err := http.Get(plain.URL + "/metrics/prom")
	if err != nil {
		t.Fatal(err)
	}
	raw2, err := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(raw2), "intellisphere_wal_bytes") {
		t.Error("stateless server exposes durability gauges")
	}
}
