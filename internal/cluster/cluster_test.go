package cluster

import (
	"testing"
	"testing/quick"
)

func TestDefaultHiveValid(t *testing.T) {
	c := DefaultHive()
	if err := c.Validate(); err != nil {
		t.Fatalf("DefaultHive invalid: %v", err)
	}
	if got := c.Slots(); got != 6 {
		t.Errorf("Slots = %d, want 6 (3 data nodes × 2 cores)", got)
	}
}

func TestValidateErrors(t *testing.T) {
	base := DefaultHive()
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"empty name", func(c *Config) { c.Name = "" }},
		{"zero data nodes", func(c *Config) { c.DataNodes = 0 }},
		{"more data nodes than nodes", func(c *Config) { c.DataNodes = c.Nodes + 1 }},
		{"zero cores", func(c *Config) { c.CoresPerNode = 0 }},
		{"zero memory", func(c *Config) { c.MemoryPerNode = 0 }},
		{"zero block", func(c *Config) { c.DFSBlockBytes = 0 }},
		{"bad memory fraction", func(c *Config) { c.MemoryFraction = 1.5 }},
	}
	for _, tc := range cases {
		c := base
		tc.mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: expected validation error", tc.name)
		}
	}
}

func TestNumTasks(t *testing.T) {
	c := DefaultHive()
	block := float64(c.DFSBlockBytes)
	cases := []struct {
		bytes float64
		want  int
	}{
		{0, 1},
		{-5, 1},
		{1, 1},
		{block, 1},
		{block + 1, 2},
		{10 * block, 10},
	}
	for _, tc := range cases {
		if got := c.NumTasks(tc.bytes); got != tc.want {
			t.Errorf("NumTasks(%v) = %d, want %d", tc.bytes, got, tc.want)
		}
	}
}

func TestTaskWaves(t *testing.T) {
	c := DefaultHive() // 6 slots
	cases := []struct{ tasks, want int }{
		{0, 1}, {1, 1}, {6, 1}, {7, 2}, {12, 2}, {13, 3},
	}
	for _, tc := range cases {
		if got := c.TaskWaves(tc.tasks); got != tc.want {
			t.Errorf("TaskWaves(%d) = %d, want %d", tc.tasks, got, tc.want)
		}
	}
}

func TestFitsInMemory(t *testing.T) {
	c := DefaultHive()
	budget := c.HashTableBudget()
	if budget <= 0 {
		t.Fatalf("budget = %v", budget)
	}
	if !c.FitsInMemory(budget) {
		t.Error("exact budget should fit")
	}
	if c.FitsInMemory(budget + 1) {
		t.Error("budget+1 should not fit")
	}
}

func TestRecordsPerBlock(t *testing.T) {
	c := DefaultHive()
	if got := c.RecordsPerBlock(0); got != 1 {
		t.Errorf("RecordsPerBlock(0) = %v, want 1", got)
	}
	if got := c.RecordsPerBlock(float64(c.DFSBlockBytes)); got != 1 {
		t.Errorf("RecordsPerBlock(block) = %v, want 1", got)
	}
	if got := c.RecordsPerBlock(float64(c.DFSBlockBytes) / 4); got != 4 {
		t.Errorf("RecordsPerBlock(block/4) = %v, want 4", got)
	}
}

// Property: waves never decrease when input bytes grow, and waves*slots
// always covers the task count.
func TestWavesMonotoneProperty(t *testing.T) {
	c := DefaultHive()
	f := func(a, b uint32) bool {
		x, y := float64(a), float64(b)
		if x > y {
			x, y = y, x
		}
		wx, wy := c.WavesForBytes(x*1e5), c.WavesForBytes(y*1e5)
		if wx > wy {
			return false
		}
		tasks := c.NumTasks(y * 1e5)
		return c.TaskWaves(tasks)*c.Slots() >= tasks
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestBroadcastLimit(t *testing.T) {
	c := DefaultHive()
	// Default: 64 MB capped by the hash budget.
	limit := c.BroadcastLimit()
	if limit != 64<<20 {
		t.Errorf("limit = %v, want 64 MB (budget %v is larger)", limit, c.HashTableBudget())
	}
	if !c.BroadcastFits(limit) || c.BroadcastFits(limit+1) {
		t.Error("BroadcastFits boundary wrong")
	}
	// Explicit threshold wins.
	c.BroadcastThreshold = 10 << 20
	if got := c.BroadcastLimit(); got != 10<<20 {
		t.Errorf("explicit limit = %v", got)
	}
	// A tiny memory budget caps the default.
	c = DefaultHive()
	c.MemoryPerNode = 64 << 20 // 64 MB node → budget 8 MB
	if got := c.BroadcastLimit(); got != c.HashTableBudget() {
		t.Errorf("budget-capped limit = %v, want %v", got, c.HashTableBudget())
	}
}

func TestWavesForBytes(t *testing.T) {
	c := DefaultHive()
	if got := c.WavesForBytes(0); got != 1 {
		t.Errorf("WavesForBytes(0) = %d", got)
	}
	// 13 blocks over 6 slots → 3 waves.
	if got := c.WavesForBytes(float64(c.DFSBlockBytes) * 12.5); got != 3 {
		t.Errorf("WavesForBytes(12.5 blocks) = %d, want 3", got)
	}
}
