// Package cluster models the physical shape of a remote system's cluster:
// nodes, cores, memory, and distributed-file-system block math. The paper's
// cost formulas (Section 4, Figure 6) are written in terms of quantities the
// cluster shape determines — the total parallelism ("slots"), the number of
// tasks a job splits into, and the number of cascaded task waves
// (NumTaskWaves = ceil(tasks / slots)) — so those computations live here and
// are shared by the remote-system simulators and the sub-operator costing
// formulas.
package cluster

import (
	"errors"
	"fmt"
)

// Config describes one cluster. The defaults produced by DefaultHive mirror
// the paper's evaluation cluster: four nodes (one master, three data nodes),
// 8 GB of memory and two cores per node, 128 MB DFS blocks.
type Config struct {
	Name           string  `json:"name"`
	Nodes          int     `json:"nodes"`           // total nodes, including the master
	DataNodes      int     `json:"data_nodes"`      // nodes that store data and run tasks
	CoresPerNode   int     `json:"cores_per_node"`  // task slots per data node
	MemoryPerNode  int64   `json:"memory_per_node"` // bytes
	DFSBlockBytes  int64   `json:"dfs_block_bytes"` // split size for task planning
	Replication    int     `json:"replication"`     // DFS replication factor
	MemoryFraction float64 `json:"memory_fraction"` // share of node memory usable by one hash table
	// BroadcastThreshold caps the bytes an engine will auto-convert into a
	// broadcast/map join (Hive's noconditionaltask.size, Spark's
	// autoBroadcastJoinThreshold). 0 selects the 64 MB default, capped by
	// the hash-table memory budget.
	BroadcastThreshold int64 `json:"broadcast_threshold,omitempty"`
}

// DefaultHive returns the paper's 4-node Hive VM cluster shape.
func DefaultHive() Config {
	return Config{
		Name:           "hive-vm",
		Nodes:          4,
		DataNodes:      3,
		CoresPerNode:   2,
		MemoryPerNode:  8 << 30, // 8 GB
		DFSBlockBytes:  128 << 20,
		Replication:    3,
		MemoryFraction: 0.25,
	}
}

// Validate reports configuration problems.
func (c Config) Validate() error {
	if c.Name == "" {
		return errors.New("cluster: name is required")
	}
	if c.DataNodes <= 0 || c.Nodes < c.DataNodes {
		return fmt.Errorf("cluster %q: need 0 < data nodes (%d) <= nodes (%d)", c.Name, c.DataNodes, c.Nodes)
	}
	if c.CoresPerNode <= 0 {
		return fmt.Errorf("cluster %q: cores per node must be positive", c.Name)
	}
	if c.MemoryPerNode <= 0 {
		return fmt.Errorf("cluster %q: memory per node must be positive", c.Name)
	}
	if c.DFSBlockBytes <= 0 {
		return fmt.Errorf("cluster %q: DFS block size must be positive", c.Name)
	}
	if c.MemoryFraction <= 0 || c.MemoryFraction > 1 {
		return fmt.Errorf("cluster %q: memory fraction %v must be in (0,1]", c.Name, c.MemoryFraction)
	}
	return nil
}

// Slots returns the total task parallelism of the cluster.
func (c Config) Slots() int { return c.DataNodes * c.CoresPerNode }

// NumTasks returns how many tasks a job over inputBytes splits into — one
// per DFS block, with a minimum of one task.
func (c Config) NumTasks(inputBytes float64) int {
	if inputBytes <= 0 {
		return 1
	}
	tasks := int((inputBytes + float64(c.DFSBlockBytes) - 1) / float64(c.DFSBlockBytes))
	if tasks < 1 {
		tasks = 1
	}
	return tasks
}

// TaskWaves returns the number of cascaded task waves for the given task
// count: ceil(tasks / slots). This is the NumTaskWaves term of Figure 6.
func (c Config) TaskWaves(tasks int) int {
	slots := c.Slots()
	if tasks < 1 {
		tasks = 1
	}
	return (tasks + slots - 1) / slots
}

// WavesForBytes is the common composition NumTaskWaves(NumTasks(bytes)).
func (c Config) WavesForBytes(inputBytes float64) int {
	return c.TaskWaves(c.NumTasks(inputBytes))
}

// HashTableBudget returns the bytes one task may devote to an in-memory
// hash table before spilling.
func (c Config) HashTableBudget() float64 {
	return float64(c.MemoryPerNode) * c.MemoryFraction / float64(c.CoresPerNode)
}

// FitsInMemory reports whether a hash-build of the given size stays within
// a single task's memory budget — the regime switch behind the HashBuild
// sub-operator's two models (Figure 13(f)).
func (c Config) FitsInMemory(bytes float64) bool {
	return bytes <= c.HashTableBudget()
}

// BroadcastLimit returns the auto-broadcast size threshold in bytes.
func (c Config) BroadcastLimit() float64 {
	limit := float64(c.BroadcastThreshold)
	if limit <= 0 {
		limit = 64 << 20
	}
	if budget := c.HashTableBudget(); budget < limit {
		limit = budget
	}
	return limit
}

// BroadcastFits reports whether an engine would auto-convert a join with a
// small side of the given size into a broadcast join.
func (c Config) BroadcastFits(bytes float64) bool {
	return bytes <= c.BroadcastLimit()
}

// RecordsPerBlock returns how many records of the given size fit in one DFS
// block (at least one).
func (c Config) RecordsPerBlock(recordSize float64) float64 {
	if recordSize <= 0 {
		return 1
	}
	n := float64(c.DFSBlockBytes) / recordSize
	if n < 1 {
		return 1
	}
	return n
}
