// Package catalog implements the master engine's metadata layer: table
// schemas, basic statistics (cardinality, row size, per-column distinct
// counts), and the foreign-table registry that records which remote system
// owns each table. The paper assumes Teradata "can collect basic statistics
// on remote tables, e.g., the number of rows, average row size, the number
// of distinct values in each column" (Section 2); this package is that store.
package catalog

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// ColType enumerates the column types the synthetic workloads use.
type ColType int

// Supported column types.
const (
	Int ColType = iota
	Char
)

// String returns the type name.
func (t ColType) String() string {
	switch t {
	case Int:
		return "INTEGER"
	case Char:
		return "CHAR"
	default:
		return fmt.Sprintf("ColType(%d)", int(t))
	}
}

// Column describes one attribute. Duplication is the average number of times
// each distinct value repeats (the synthetic schema of Figure 10 names its
// columns a1, a2, a5, ... after exactly this factor); 0 means unknown.
type Column struct {
	Name        string  `json:"name"`
	Type        ColType `json:"type"`
	Width       int     `json:"width"` // bytes
	Duplication float64 `json:"duplication"`
}

// Schema is an ordered list of columns.
type Schema struct {
	Columns []Column `json:"columns"`
}

// Validate reports structural problems.
func (s Schema) Validate() error {
	if len(s.Columns) == 0 {
		return errors.New("catalog: schema has no columns")
	}
	seen := map[string]bool{}
	for _, c := range s.Columns {
		if c.Name == "" {
			return errors.New("catalog: column with empty name")
		}
		if seen[c.Name] {
			return fmt.Errorf("catalog: duplicate column %q", c.Name)
		}
		seen[c.Name] = true
		if c.Width <= 0 {
			return fmt.Errorf("catalog: column %q has non-positive width %d", c.Name, c.Width)
		}
		if c.Duplication < 0 {
			return fmt.Errorf("catalog: column %q has negative duplication", c.Name)
		}
	}
	return nil
}

// RowSize returns the record width in bytes.
func (s Schema) RowSize() int {
	total := 0
	for _, c := range s.Columns {
		total += c.Width
	}
	return total
}

// Column finds a column by name.
func (s Schema) Column(name string) (Column, bool) {
	for _, c := range s.Columns {
		if c.Name == name {
			return c, true
		}
	}
	return Column{}, false
}

// ProjectedSize sums the widths of the named columns.
func (s Schema) ProjectedSize(names []string) (int, error) {
	total := 0
	for _, n := range names {
		c, ok := s.Column(n)
		if !ok {
			return 0, fmt.Errorf("catalog: unknown column %q", n)
		}
		total += c.Width
	}
	return total, nil
}

// Table couples a name, schema, statistics, and the owning system. An empty
// System means the table is local to the master engine.
type Table struct {
	Name   string `json:"name"`
	Schema Schema `json:"schema"`
	Rows   int64  `json:"rows"`
	System string `json:"system"`
	// Replicas lists additional systems the same table is linked on, in
	// fallback-preference order. The optimizer plans against the primary
	// System; replicas only come into play when degraded re-planning
	// excludes the primary (a failed or open-circuited remote).
	Replicas []string `json:"replicas,omitempty"`
	// PartitionedOn / SortedOn record physical layout properties on the
	// named column, which the sub-op applicability rules inspect.
	PartitionedOn string `json:"partitioned_on,omitempty"`
	SortedOn      string `json:"sorted_on,omitempty"`
}

// Validate reports structural problems.
func (t *Table) Validate() error {
	if t.Name == "" {
		return errors.New("catalog: table with empty name")
	}
	if err := t.Schema.Validate(); err != nil {
		return fmt.Errorf("table %q: %w", t.Name, err)
	}
	if t.Rows < 0 {
		return fmt.Errorf("catalog: table %q has negative row count", t.Name)
	}
	if t.PartitionedOn != "" {
		if _, ok := t.Schema.Column(t.PartitionedOn); !ok {
			return fmt.Errorf("catalog: table %q partitioned on unknown column %q", t.Name, t.PartitionedOn)
		}
	}
	if t.SortedOn != "" {
		if _, ok := t.Schema.Column(t.SortedOn); !ok {
			return fmt.Errorf("catalog: table %q sorted on unknown column %q", t.Name, t.SortedOn)
		}
	}
	seen := map[string]bool{t.System: true}
	for _, r := range t.Replicas {
		if r == "" {
			return fmt.Errorf("catalog: table %q has an empty replica system", t.Name)
		}
		if seen[r] {
			return fmt.Errorf("catalog: table %q lists system %q twice", t.Name, r)
		}
		seen[r] = true
	}
	return nil
}

// RowSize returns the record width in bytes.
func (t *Table) RowSize() int { return t.Schema.RowSize() }

// Bytes returns the total table size in bytes.
func (t *Table) Bytes() float64 { return float64(t.Rows) * float64(t.RowSize()) }

// NDV estimates the number of distinct values of a column from its
// duplication factor (rows / duplication, at least 1). Columns with unknown
// duplication report the row count (assume unique).
func (t *Table) NDV(column string) (float64, error) {
	c, ok := t.Schema.Column(column)
	if !ok {
		return 0, fmt.Errorf("catalog: table %q has no column %q", t.Name, column)
	}
	if t.Rows == 0 {
		return 0, nil
	}
	if c.Duplication <= 1 {
		return float64(t.Rows), nil
	}
	ndv := float64(t.Rows) / c.Duplication
	if ndv < 1 {
		ndv = 1
	}
	return ndv, nil
}

// Catalog is a thread-safe table registry. Every mutation bumps a
// generation counter so derived state (the optimizer's plan cache) can
// detect staleness cheaply.
type Catalog struct {
	mu     sync.RWMutex
	tables map[string]*Table
	gen    atomic.Uint64
}

// New returns an empty catalog.
func New() *Catalog {
	return &Catalog{tables: make(map[string]*Table)}
}

// Register validates and adds a table; re-registering an existing name fails.
func (c *Catalog) Register(t *Table) error {
	if err := t.Validate(); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.tables[t.Name]; ok {
		return fmt.Errorf("catalog: table %q already registered", t.Name)
	}
	c.tables[t.Name] = t
	c.gen.Add(1)
	return nil
}

// Generation returns the mutation counter: it advances on every Register
// and Drop, never decreases, and is safe to read concurrently.
func (c *Catalog) Generation() uint64 { return c.gen.Load() }

// Lookup finds a table by name.
func (c *Catalog) Lookup(name string) (*Table, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[name]
	if !ok {
		return nil, fmt.Errorf("catalog: unknown table %q", name)
	}
	return t, nil
}

// Drop removes a table.
func (c *Catalog) Drop(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.tables[name]; !ok {
		return fmt.Errorf("catalog: unknown table %q", name)
	}
	delete(c.tables, name)
	c.gen.Add(1)
	return nil
}

// List returns all tables sorted by name.
func (c *Catalog) List() []*Table {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*Table, 0, len(c.tables))
	for _, t := range c.tables {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// BySystem returns all tables owned by the named system, sorted by name.
func (c *Catalog) BySystem(system string) []*Table {
	var out []*Table
	for _, t := range c.List() {
		if t.System == system {
			out = append(out, t)
		}
	}
	return out
}

// Len returns the number of registered tables.
func (c *Catalog) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.tables)
}
