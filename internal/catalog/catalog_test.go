package catalog

import (
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
)

func sampleSchema() Schema {
	return Schema{Columns: []Column{
		{Name: "a1", Type: Int, Width: 4, Duplication: 1},
		{Name: "a5", Type: Int, Width: 4, Duplication: 5},
		{Name: "z", Type: Int, Width: 4, Duplication: 0},
		{Name: "dummy", Type: Char, Width: 88},
	}}
}

func sampleTable(name string) *Table {
	return &Table{Name: name, Schema: sampleSchema(), Rows: 1000, System: "hive"}
}

func TestSchemaRowSize(t *testing.T) {
	s := sampleSchema()
	if got := s.RowSize(); got != 100 {
		t.Errorf("RowSize = %d, want 100", got)
	}
}

func TestSchemaValidate(t *testing.T) {
	if err := sampleSchema().Validate(); err != nil {
		t.Fatalf("valid schema rejected: %v", err)
	}
	cases := []struct {
		name string
		s    Schema
	}{
		{"empty", Schema{}},
		{"unnamed column", Schema{Columns: []Column{{Width: 4}}}},
		{"duplicate", Schema{Columns: []Column{{Name: "a", Width: 4}, {Name: "a", Width: 4}}}},
		{"zero width", Schema{Columns: []Column{{Name: "a", Width: 0}}}},
		{"negative duplication", Schema{Columns: []Column{{Name: "a", Width: 4, Duplication: -1}}}},
	}
	for _, c := range cases {
		if err := c.s.Validate(); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestProjectedSize(t *testing.T) {
	s := sampleSchema()
	got, err := s.ProjectedSize([]string{"a1", "a5"})
	if err != nil {
		t.Fatalf("ProjectedSize: %v", err)
	}
	if got != 8 {
		t.Errorf("ProjectedSize = %d, want 8", got)
	}
	if _, err := s.ProjectedSize([]string{"nope"}); err == nil {
		t.Error("unknown column accepted")
	}
}

func TestColTypeString(t *testing.T) {
	if Int.String() != "INTEGER" || Char.String() != "CHAR" {
		t.Error("unexpected type names")
	}
	if ColType(9).String() != "ColType(9)" {
		t.Error("unexpected fallback")
	}
}

func TestTableNDV(t *testing.T) {
	tb := sampleTable("t")
	ndv, err := tb.NDV("a1")
	if err != nil {
		t.Fatalf("NDV: %v", err)
	}
	if ndv != 1000 {
		t.Errorf("NDV(a1) = %v, want 1000 (unique)", ndv)
	}
	ndv, _ = tb.NDV("a5")
	if ndv != 200 {
		t.Errorf("NDV(a5) = %v, want 200", ndv)
	}
	ndv, _ = tb.NDV("z") // unknown duplication: assume unique
	if ndv != 1000 {
		t.Errorf("NDV(z) = %v, want 1000", ndv)
	}
	if _, err := tb.NDV("missing"); err == nil {
		t.Error("NDV on missing column accepted")
	}
	empty := sampleTable("e")
	empty.Rows = 0
	if ndv, _ := empty.NDV("a1"); ndv != 0 {
		t.Errorf("NDV of empty table = %v, want 0", ndv)
	}
}

func TestTableBytes(t *testing.T) {
	tb := sampleTable("t")
	if got := tb.Bytes(); got != 100000 {
		t.Errorf("Bytes = %v, want 100000", got)
	}
}

func TestTableValidate(t *testing.T) {
	tb := sampleTable("t")
	if err := tb.Validate(); err != nil {
		t.Fatalf("valid table rejected: %v", err)
	}
	bad := sampleTable("")
	if err := bad.Validate(); err == nil {
		t.Error("empty name accepted")
	}
	bad = sampleTable("t")
	bad.Rows = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative rows accepted")
	}
	bad = sampleTable("t")
	bad.PartitionedOn = "missing"
	if err := bad.Validate(); err == nil {
		t.Error("bad partition column accepted")
	}
	bad = sampleTable("t")
	bad.SortedOn = "missing"
	if err := bad.Validate(); err == nil {
		t.Error("bad sort column accepted")
	}
}

func TestTableReplicaValidation(t *testing.T) {
	tb := sampleTable("t")
	tb.System = "hive"
	tb.Replicas = []string{"spark", "presto"}
	if err := tb.Validate(); err != nil {
		t.Fatalf("valid replicas rejected: %v", err)
	}
	tb.Replicas = []string{""}
	if err := tb.Validate(); err == nil {
		t.Error("empty replica name accepted")
	}
	tb.Replicas = []string{"spark", "spark"}
	if err := tb.Validate(); err == nil {
		t.Error("duplicate replica accepted")
	}
	tb.Replicas = []string{"hive"}
	if err := tb.Validate(); err == nil {
		t.Error("replica equal to the owner accepted")
	}
}

func TestCatalogCRUD(t *testing.T) {
	c := New()
	if err := c.Register(sampleTable("t1")); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if err := c.Register(sampleTable("t1")); err == nil {
		t.Error("duplicate registration accepted")
	}
	tb, err := c.Lookup("t1")
	if err != nil || tb.Name != "t1" {
		t.Fatalf("Lookup: %v %v", tb, err)
	}
	if _, err := c.Lookup("nope"); err == nil {
		t.Error("lookup of missing table succeeded")
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d, want 1", c.Len())
	}
	if err := c.Drop("t1"); err != nil {
		t.Fatalf("Drop: %v", err)
	}
	if err := c.Drop("t1"); err == nil {
		t.Error("double drop accepted")
	}
}

func TestCatalogListSortedAndBySystem(t *testing.T) {
	c := New()
	for _, name := range []string{"zeta", "alpha", "mid"} {
		tb := sampleTable(name)
		if name == "mid" {
			tb.System = "spark"
		}
		if err := c.Register(tb); err != nil {
			t.Fatalf("Register(%s): %v", name, err)
		}
	}
	list := c.List()
	if len(list) != 3 || list[0].Name != "alpha" || list[2].Name != "zeta" {
		t.Errorf("List not sorted: %v", list)
	}
	hive := c.BySystem("hive")
	if len(hive) != 2 {
		t.Errorf("BySystem(hive) = %d tables, want 2", len(hive))
	}
	if got := c.BySystem("none"); len(got) != 0 {
		t.Errorf("BySystem(none) = %d tables, want 0", len(got))
	}
}

func TestCatalogConcurrent(t *testing.T) {
	c := New()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := fmt.Sprintf("t%d", i)
			if err := c.Register(sampleTable(name)); err != nil {
				t.Errorf("Register(%s): %v", name, err)
			}
			if _, err := c.Lookup(name); err != nil {
				t.Errorf("Lookup(%s): %v", name, err)
			}
			c.List()
		}(i)
	}
	wg.Wait()
	if c.Len() != 16 {
		t.Errorf("Len = %d, want 16", c.Len())
	}
}

// Property: NDV is always in [1, rows] for non-empty tables with positive
// duplication, and rows/duplication when duplication > 1 divides evenly.
func TestNDVBoundsProperty(t *testing.T) {
	f := func(rows uint32, dup uint8) bool {
		r := int64(rows%1000000) + 1
		d := float64(dup%100) + 1
		tb := &Table{
			Name: "p",
			Schema: Schema{Columns: []Column{
				{Name: "c", Width: 4, Duplication: d},
			}},
			Rows: r,
		}
		ndv, err := tb.NDV("c")
		if err != nil {
			return false
		}
		return ndv >= 1 && ndv <= float64(r)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestTableJSONRoundTrip(t *testing.T) {
	tb := sampleTable("orders")
	tb.PartitionedOn = "a1"
	tb.SortedOn = "a1"
	data, err := json.Marshal(tb)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	var back Table
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if back.Name != tb.Name || back.Rows != tb.Rows || back.System != tb.System {
		t.Errorf("restored = %+v", back)
	}
	if back.RowSize() != tb.RowSize() {
		t.Errorf("schema lost: %d vs %d", back.RowSize(), tb.RowSize())
	}
	if back.PartitionedOn != "a1" || back.SortedOn != "a1" {
		t.Error("layout flags lost")
	}
	ndv1, _ := tb.NDV("a5")
	ndv2, err := back.NDV("a5")
	if err != nil || ndv1 != ndv2 {
		t.Errorf("NDV changed: %v vs %v (%v)", ndv1, ndv2, err)
	}
}
