// Package durable is the engine's durability substrate: crash-safe file
// primitives shared by every component that persists state. It provides
//
//   - WriteFileAtomic, the tmp+fsync+rename discipline (readers only ever
//     observe the old contents or the complete new contents),
//   - an append-only write-ahead log of length-prefixed, checksummed
//     records with fsync-on-commit and torn-tail truncation on replay, and
//   - Store, a data-directory manager that combines versioned snapshots
//     with the WAL: boot restores the newest valid snapshot, replays the
//     log past it, and serving appends mutations until a snapshot covers
//     them and rotates the log.
//
// The package is deliberately ignorant of what the bytes mean: snapshots
// are opaque blobs and WAL records carry an op name plus raw JSON. The
// engine layers its own state schema on top (internal/engine/persist.go),
// which keeps durable free of model/catalog dependencies and makes the
// corruption-handling paths testable in isolation.
package durable

import (
	"fmt"
	"os"
	"path/filepath"
)

// WriteFileAtomic writes data to path via a same-directory temp file,
// fsync, and rename, then fsyncs the directory so the rename itself
// survives a crash. Readers only ever observe the old contents or the
// complete new contents — never a partial write. The published file gets
// mode perm (CreateTemp's private 0600 would otherwise leak onto it).
func WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("durable: atomic write %s: %w", path, err)
	}
	tmp := f.Name()
	cleanup := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("durable: atomic write %s: %w", path, err)
	}
	if _, err := f.Write(data); err != nil {
		return cleanup(err)
	}
	if err := f.Sync(); err != nil {
		return cleanup(err)
	}
	if err := f.Chmod(perm); err != nil {
		return cleanup(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("durable: atomic write %s: %w", path, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("durable: atomic write %s: %w", path, err)
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a just-renamed entry is durable. Filesystems
// that refuse directory fsync (some network mounts) degrade gracefully.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	defer d.Close()
	d.Sync() // best-effort: EINVAL on exotic filesystems is not fatal
	return nil
}
