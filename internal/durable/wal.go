package durable

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
)

// Record is one logged mutation. Op names the mutation kind (the engine
// defines the vocabulary); Data is its JSON payload, opaque to this layer.
// Seq is the store-wide mutation sequence number: strictly increasing,
// assigned at append time, and used on recovery to skip records a snapshot
// already covers.
type Record struct {
	Seq  uint64          `json:"seq"`
	Op   string          `json:"op"`
	Data json.RawMessage `json:"data,omitempty"`
}

// Each WAL record is framed as
//
//	uint32 LE  payload length
//	uint32 LE  CRC-32C (Castagnoli) of the payload
//	payload    (JSON-encoded Record)
//
// The length prefix lets replay skip to the next frame without parsing
// JSON; the checksum catches torn writes that truncated or scribbled the
// payload. A frame that fails any check — short header, impossible length,
// checksum mismatch, undecodable or out-of-order payload — marks the torn
// tail: everything before it is the valid log, everything from it on is
// discarded by truncating the file.
const walHeaderLen = 8

// maxWALRecord bounds one record's payload (a profile snapshot in a WAL
// record can reach megabytes; 256 MiB is far beyond anything legitimate and
// keeps a corrupt length prefix from provoking a giant allocation).
const maxWALRecord = 256 << 20

var walCRC = crc32.MakeTable(crc32.Castagnoli)

// WAL is an append-only mutation log. Every Append is fsynced before it
// returns, so an acknowledged record survives SIGKILL. Safe for concurrent
// appends (callers serialize on the owning Store's mutex in practice).
type WAL struct {
	f     *os.File
	path  string
	size  int64
	nrecs int
}

// ReplayInfo reports what OpenWAL found on disk.
type ReplayInfo struct {
	// Records is how many valid records the log held.
	Records int
	// TornTail reports the file ended in a partial or corrupt record, which
	// was truncated away.
	TornTail bool
	// TruncatedBytes is how many trailing bytes the truncation removed.
	TruncatedBytes int64
}

// OpenWAL opens (creating if absent) the log at path, replays its valid
// prefix, truncates any torn tail, and returns the surviving records along
// with the open, append-ready log. Records are validated structurally
// (framing, checksum, JSON, strictly increasing Seq); applying them is the
// caller's business.
func OpenWAL(path string) (*WAL, []Record, ReplayInfo, error) {
	var info ReplayInfo
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, nil, info, fmt.Errorf("durable: read wal %s: %w", path, err)
	}
	recs, valid := scanWAL(data)
	info.Records = len(recs)
	if valid < int64(len(data)) {
		info.TornTail = true
		info.TruncatedBytes = int64(len(data)) - valid
		if err := os.Truncate(path, valid); err != nil {
			return nil, nil, info, fmt.Errorf("durable: truncate torn wal tail %s: %w", path, err)
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, info, fmt.Errorf("durable: open wal %s: %w", path, err)
	}
	if err := syncDir(dirOf(path)); err != nil {
		f.Close()
		return nil, nil, info, err
	}
	return &WAL{f: f, path: path, size: valid, nrecs: len(recs)}, recs, info, nil
}

// scanWAL walks the framed records in data, returning the decoded valid
// prefix and the byte offset where validity ends (the truncation point).
func scanWAL(data []byte) (recs []Record, valid int64) {
	off := int64(0)
	lastSeq := uint64(0)
	for {
		rest := data[off:]
		if len(rest) < walHeaderLen {
			return recs, off // short header (or clean EOF): torn tail starts here
		}
		n := binary.LittleEndian.Uint32(rest[0:4])
		sum := binary.LittleEndian.Uint32(rest[4:8])
		if n == 0 || n > maxWALRecord || int64(walHeaderLen)+int64(n) > int64(len(rest)) {
			return recs, off // impossible or truncated payload
		}
		payload := rest[walHeaderLen : walHeaderLen+int64(n)]
		if crc32.Checksum(payload, walCRC) != sum {
			return recs, off // scribbled payload
		}
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil {
			return recs, off // checksum collided with garbage; stop cleanly
		}
		if rec.Seq <= lastSeq {
			return recs, off // sequence went backwards: later writes are suspect
		}
		lastSeq = rec.Seq
		recs = append(recs, rec)
		off += walHeaderLen + int64(n)
	}
}

// Append frames, writes, and fsyncs one record. The record is only
// acknowledged (nil error) once it is on disk.
func (w *WAL) Append(rec Record) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("durable: encode wal record: %w", err)
	}
	frame := make([]byte, walHeaderLen+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(payload, walCRC))
	copy(frame[walHeaderLen:], payload)
	if _, err := w.f.Write(frame); err != nil {
		return fmt.Errorf("durable: append wal record: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("durable: sync wal: %w", err)
	}
	w.size += int64(len(frame))
	w.nrecs++
	return nil
}

// Size is the log's current byte length (the snapshot-rotation trigger).
func (w *WAL) Size() int64 { return w.size }

// Records is how many records the log currently holds (replayed + appended).
func (w *WAL) Records() int { return w.nrecs }

// Reset empties the log — called after a snapshot has captured everything
// the log recorded, so recovery never replays a covered mutation twice
// (records also carry Seq as a second, belt-and-braces guard).
func (w *WAL) Reset() error {
	if err := w.f.Truncate(0); err != nil {
		return fmt.Errorf("durable: rotate wal: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("durable: rotate wal: %w", err)
	}
	w.size = 0
	w.nrecs = 0
	return nil
}

// Close closes the underlying file. Append after Close fails.
func (w *WAL) Close() error { return w.f.Close() }

func dirOf(path string) string {
	if i := len(path) - 1; i >= 0 {
		for ; i >= 0; i-- {
			if path[i] == '/' {
				return path[:i+1]
			}
		}
	}
	return "."
}
