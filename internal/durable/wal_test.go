package durable

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

func writeRecords(t *testing.T, path string, n int) []Record {
	t.Helper()
	w, recs, _, err := OpenWAL(path)
	if err != nil {
		t.Fatalf("OpenWAL: %v", err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh WAL replayed %d records", len(recs))
	}
	var want []Record
	for i := 1; i <= n; i++ {
		rec := Record{
			Seq:  uint64(i),
			Op:   fmt.Sprintf("op-%d", i),
			Data: json.RawMessage(fmt.Sprintf(`{"i":%d}`, i)),
		}
		if err := w.Append(rec); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
		want = append(want, rec)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return want
}

func reopen(t *testing.T, path string) (*WAL, []Record, ReplayInfo) {
	t.Helper()
	w, recs, info, err := OpenWAL(path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	return w, recs, info
}

func checkRecords(t *testing.T, got, want []Record) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Seq != want[i].Seq || got[i].Op != want[i].Op || string(got[i].Data) != string(want[i].Data) {
			t.Fatalf("record %d: got %+v want %+v", i, got[i], want[i])
		}
	}
}

func TestWALRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	want := writeRecords(t, path, 5)
	w, got, info := reopen(t, path)
	defer w.Close()
	checkRecords(t, got, want)
	if info.TornTail {
		t.Fatal("clean log reported a torn tail")
	}
	if w.Records() != 5 {
		t.Fatalf("Records() = %d, want 5", w.Records())
	}
}

// TestWALTornWrites is the satellite-4 table: each case corrupts the log's
// tail a different way and asserts replay stops cleanly at the last valid
// record, truncates the damage, and leaves the log appendable.
func TestWALTornWrites(t *testing.T) {
	cases := []struct {
		name string
		// corrupt mutates the raw log bytes; survivors is how many of the 5
		// written records must survive replay.
		corrupt   func(data []byte) []byte
		survivors int
	}{
		{
			name: "truncate mid-header",
			corrupt: func(data []byte) []byte {
				return data[:lastFrameOffset(data)+3] // 3 of 8 header bytes
			},
			survivors: 4,
		},
		{
			name: "truncate mid-payload",
			corrupt: func(data []byte) []byte {
				off := lastFrameOffset(data)
				return data[:off+walHeaderLen+2] // header intact, payload cut short
			},
			survivors: 4,
		},
		{
			name: "flip one payload byte",
			corrupt: func(data []byte) []byte {
				off := lastFrameOffset(data)
				data[off+walHeaderLen+1] ^= 0xFF
				return data
			},
			survivors: 4,
		},
		{
			name: "flip one checksum byte",
			corrupt: func(data []byte) []byte {
				off := lastFrameOffset(data)
				data[off+5] ^= 0xFF
				return data
			},
			survivors: 4,
		},
		{
			name: "garbage appended after valid records",
			corrupt: func(data []byte) []byte {
				return append(data, []byte("\x00\x01\x02 not a frame")...)
			},
			survivors: 5,
		},
		{
			name: "zero length prefix in tail",
			corrupt: func(data []byte) []byte {
				return append(data, make([]byte, walHeaderLen)...)
			},
			survivors: 5,
		},
		{
			name: "absurd length prefix in tail",
			corrupt: func(data []byte) []byte {
				tail := make([]byte, walHeaderLen)
				binary.LittleEndian.PutUint32(tail[0:4], maxWALRecord+1)
				return append(data, tail...)
			},
			survivors: 5,
		},
		{
			name: "valid frame with regressing seq",
			corrupt: func(data []byte) []byte {
				payload, _ := json.Marshal(Record{Seq: 2, Op: "stale"})
				tail := make([]byte, walHeaderLen+len(payload))
				binary.LittleEndian.PutUint32(tail[0:4], uint32(len(payload)))
				binary.LittleEndian.PutUint32(tail[4:8], walChecksum(payload))
				copy(tail[walHeaderLen:], payload)
				return append(data, tail...)
			},
			survivors: 5,
		},
		{
			name: "whole file is garbage",
			corrupt: func(data []byte) []byte {
				return []byte("this was never a WAL")
			},
			survivors: 0,
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "wal.log")
			want := writeRecords(t, path, 5)
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("read log: %v", err)
			}
			if err := os.WriteFile(path, tc.corrupt(data), 0o644); err != nil {
				t.Fatalf("write corrupted log: %v", err)
			}

			w, got, info := reopen(t, path)
			checkRecords(t, got, want[:tc.survivors])
			if !info.TornTail {
				t.Fatal("corruption not reported as a torn tail")
			}
			if info.TruncatedBytes <= 0 {
				t.Fatalf("TruncatedBytes = %d, want > 0", info.TruncatedBytes)
			}

			// The damaged tail must be gone from disk...
			fi, err := os.Stat(path)
			if err != nil {
				t.Fatalf("stat truncated log: %v", err)
			}
			if fi.Size() != w.Size() {
				t.Fatalf("file size %d != WAL size %d after truncation", fi.Size(), w.Size())
			}

			// ...and the log must accept and persist appends again.
			next := uint64(tc.survivors) + 1
			rec := Record{Seq: next, Op: "after-repair"}
			if err := w.Append(rec); err != nil {
				t.Fatalf("append after repair: %v", err)
			}
			if err := w.Close(); err != nil {
				t.Fatalf("close: %v", err)
			}
			w2, got2, info2 := reopen(t, path)
			defer w2.Close()
			checkRecords(t, got2, append(append([]Record(nil), want[:tc.survivors]...), rec))
			if info2.TornTail {
				t.Fatal("repaired log still reports a torn tail")
			}
		})
	}
}

func TestWALReset(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	writeRecords(t, path, 3)
	w, _, _ := reopen(t, path)
	if err := w.Reset(); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	if w.Size() != 0 || w.Records() != 0 {
		t.Fatalf("after Reset size=%d records=%d, want 0/0", w.Size(), w.Records())
	}
	// Appends after rotation land at the start of the now-empty file.
	if err := w.Append(Record{Seq: 10, Op: "post-rotate"}); err != nil {
		t.Fatalf("append after Reset: %v", err)
	}
	w.Close()
	w2, got, info := reopen(t, path)
	defer w2.Close()
	if info.TornTail {
		t.Fatal("rotated log reports a torn tail")
	}
	checkRecords(t, got, []Record{{Seq: 10, Op: "post-rotate"}})
}

// lastFrameOffset returns the byte offset of the final frame in a valid log.
func lastFrameOffset(data []byte) int {
	off := 0
	for {
		n := int(binary.LittleEndian.Uint32(data[off : off+4]))
		next := off + walHeaderLen + n
		if next >= len(data) {
			return off
		}
		off = next
	}
}

func walChecksum(payload []byte) uint32 {
	return crc32.Checksum(payload, walCRC)
}
