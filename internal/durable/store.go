package durable

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Snapshot files are named snap-<seq>.json where <seq> is the highest
// mutation sequence number the snapshot covers (zero-padded so lexical and
// numeric order agree). Recovery tries them newest-first and falls back to
// the next-older file when one fails to restore, so a crash mid-snapshot
// (the atomic rename never happened) or a corrupted file costs at most the
// WAL replay back to the previous snapshot.
const snapPrefix = "snap-"
const snapSuffix = ".json"

// RecoverFuncs are the callbacks Open drives during recovery. Restore
// receives a snapshot's raw bytes (at most once, for the newest valid
// snapshot); Apply receives each WAL record past it, in order. Either may
// reject its input with an error: a Restore error discards that snapshot
// and falls back to an older one, an Apply error aborts Open (the log is
// structurally valid by then, so a semantic failure means the state schema
// and the log disagree — not something to paper over).
type RecoverFuncs struct {
	Restore func(seq uint64, data []byte) error
	Apply   func(rec Record) error
}

// Recovery reports what Open did, for logs, /health, and /metrics/prom.
type Recovery struct {
	// Restored reports a snapshot was successfully restored.
	Restored bool
	// SnapshotSeq is the restored snapshot's sequence number (0 if none).
	SnapshotSeq uint64
	// SnapshotsDiscarded counts snapshot files that failed to restore and
	// were skipped in favor of an older one.
	SnapshotsDiscarded int
	// Replayed is how many WAL records were applied past the snapshot.
	Replayed int
	// SkippedCovered is how many structurally valid WAL records were already
	// covered by the snapshot (crash between snapshot and log rotation).
	SkippedCovered int
	// TornTail and TruncatedBytes describe WAL tail truncation (see ReplayInfo).
	TornTail       bool
	TruncatedBytes int64
	// DurationSec is the wall time recovery took.
	DurationSec float64
}

// Stats is a point-in-time durability summary for the metrics surface.
type Stats struct {
	// WALBytes and WALRecords describe the current log segment.
	WALBytes   int64
	WALRecords int
	// Seq is the last assigned mutation sequence number.
	Seq uint64
	// SnapshotSeq is the seq the newest on-disk snapshot covers.
	SnapshotSeq uint64
	// LastSnapshot is when the newest snapshot was written (zero if never
	// in this process and none was restored).
	LastSnapshot time.Time
	// Appends and Snapshots count operations since this process opened the
	// store.
	Appends   uint64
	Snapshots uint64
}

// Store manages one data directory: a rotating set of snapshots plus the
// write-ahead log between them. All methods are safe for concurrent use;
// Append holds the store mutex across sequence assignment, write, and
// fsync, so WAL order is exactly acknowledgment order.
type Store struct {
	dir  string
	keep int

	mu        sync.Mutex
	wal       *WAL
	seq       uint64
	snapSeq   uint64
	snapTime  time.Time
	appends   uint64
	snapshots uint64
	closed    bool
}

// StoreConfig configures Open.
type StoreConfig struct {
	// Dir is the data directory; created (with parents) if absent.
	Dir string
	// Keep is how many snapshots to retain (default 2: the newest plus one
	// fallback for mid-write crashes).
	Keep int
}

// Open opens the data directory, restores the newest valid snapshot through
// fn.Restore, replays WAL records past it through fn.Apply, and returns the
// store ready for appends. A nil fn.Restore skips snapshots entirely; a nil
// fn.Apply skips replay (records still advance the sequence counter).
func Open(cfg StoreConfig, fn RecoverFuncs) (*Store, Recovery, error) {
	start := time.Now()
	var rec Recovery
	if cfg.Keep <= 0 {
		cfg.Keep = 2
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, rec, fmt.Errorf("durable: create data dir: %w", err)
	}
	s := &Store{dir: cfg.Dir, keep: cfg.Keep}

	snaps, err := s.listSnapshots()
	if err != nil {
		return nil, rec, err
	}
	if fn.Restore != nil {
		for i := len(snaps) - 1; i >= 0; i-- {
			seq := snaps[i]
			path := s.snapPath(seq)
			data, err := os.ReadFile(path)
			if err == nil {
				err = fn.Restore(seq, data)
			}
			if err != nil {
				rec.SnapshotsDiscarded++
				continue
			}
			rec.Restored = true
			rec.SnapshotSeq = seq
			s.snapSeq = seq
			s.seq = seq
			if fi, statErr := os.Stat(path); statErr == nil {
				s.snapTime = fi.ModTime()
			}
			break
		}
	}

	wal, recs, info, err := OpenWAL(filepath.Join(cfg.Dir, "wal.log"))
	if err != nil {
		return nil, rec, err
	}
	rec.TornTail = info.TornTail
	rec.TruncatedBytes = info.TruncatedBytes
	for _, r := range recs {
		if r.Seq <= s.seq {
			// A crash between snapshot write and log rotation leaves records
			// the snapshot already covers; the seq gate skips them.
			rec.SkippedCovered++
			continue
		}
		if fn.Apply != nil {
			if err := fn.Apply(r); err != nil {
				wal.Close()
				return nil, rec, fmt.Errorf("durable: replay wal record seq=%d op=%s: %w", r.Seq, r.Op, err)
			}
		}
		s.seq = r.Seq
		rec.Replayed++
	}
	s.wal = wal
	rec.DurationSec = time.Since(start).Seconds()
	return s, rec, nil
}

// Append assigns the next sequence number, writes the record, and fsyncs.
// It returns the assigned seq; on a nil error the mutation is durable.
func (s *Store) Append(op string, data json.RawMessage) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, fmt.Errorf("durable: append on closed store")
	}
	seq := s.seq + 1
	if err := s.wal.Append(Record{Seq: seq, Op: op, Data: data}); err != nil {
		return 0, err
	}
	s.seq = seq
	s.appends++
	return seq, nil
}

// WriteSnapshot persists data as the snapshot covering every mutation up to
// and including seq, prunes old snapshots beyond the retention count, and
// rotates (empties) the WAL when the snapshot covers its entire contents.
// The caller must guarantee data really reflects all mutations ≤ seq —
// in practice by capturing state and calling NextSeq under the same locks
// that serialize Append callers.
func (s *Store) WriteSnapshot(seq uint64, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("durable: snapshot on closed store")
	}
	if seq < s.snapSeq {
		return fmt.Errorf("durable: snapshot seq %d older than existing %d", seq, s.snapSeq)
	}
	if err := WriteFileAtomic(s.snapPath(seq), data, 0o644); err != nil {
		return err
	}
	s.snapSeq = seq
	s.snapTime = time.Now()
	s.snapshots++
	s.pruneLocked()
	if seq >= s.seq {
		// Every logged record is covered; empty the log so boot replays
		// nothing. If we crash before this truncate the seq gate in Open
		// skips the covered records anyway.
		if err := s.wal.Reset(); err != nil {
			return err
		}
	}
	return nil
}

// Seq returns the last assigned mutation sequence number.
func (s *Store) Seq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seq
}

// WALSize returns the current log segment's byte length.
func (s *Store) WALSize() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.wal.Size()
}

// Stats returns a point-in-time durability summary.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		WALBytes:     s.wal.Size(),
		WALRecords:   s.wal.Records(),
		Seq:          s.seq,
		SnapshotSeq:  s.snapSeq,
		LastSnapshot: s.snapTime,
		Appends:      s.appends,
		Snapshots:    s.snapshots,
	}
}

// Close closes the WAL. Further Append/WriteSnapshot calls fail.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	return s.wal.Close()
}

func (s *Store) snapPath(seq uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf("%s%020d%s", snapPrefix, seq, snapSuffix))
}

// listSnapshots returns on-disk snapshot seqs in ascending order.
func (s *Store) listSnapshots() ([]uint64, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("durable: list snapshots: %w", err)
	}
	var seqs []uint64
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, snapPrefix) || !strings.HasSuffix(name, snapSuffix) {
			continue
		}
		num := strings.TrimSuffix(strings.TrimPrefix(name, snapPrefix), snapSuffix)
		seq, err := strconv.ParseUint(num, 10, 64)
		if err != nil {
			continue // foreign file that happens to match the shape
		}
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// pruneLocked removes snapshots beyond the retention count, never touching
// the newest ones. Best-effort: a prune failure is not a durability failure.
func (s *Store) pruneLocked() {
	seqs, err := s.listSnapshots()
	if err != nil || len(seqs) <= s.keep {
		return
	}
	for _, seq := range seqs[:len(seqs)-s.keep] {
		os.Remove(s.snapPath(seq))
	}
}
