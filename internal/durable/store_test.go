package durable

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// replayState collects what the recovery callbacks were fed.
type replayState struct {
	restoredSeq  uint64
	restoredData string
	applied      []Record
	failRestore  map[uint64]bool
}

func (rs *replayState) funcs() RecoverFuncs {
	return RecoverFuncs{
		Restore: func(seq uint64, data []byte) error {
			if rs.failRestore[seq] {
				return fmt.Errorf("synthetic restore failure for seq %d", seq)
			}
			rs.restoredSeq = seq
			rs.restoredData = string(data)
			return nil
		},
		Apply: func(rec Record) error {
			rs.applied = append(rs.applied, rec)
			return nil
		},
	}
}

func mustOpen(t *testing.T, dir string, rs *replayState) (*Store, Recovery) {
	t.Helper()
	s, rec, err := Open(StoreConfig{Dir: dir}, rs.funcs())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s, rec
}

func TestStoreAppendReplay(t *testing.T) {
	dir := t.TempDir()
	s, rec := mustOpen(t, dir, &replayState{})
	if rec.Restored || rec.Replayed != 0 {
		t.Fatalf("fresh dir recovery = %+v", rec)
	}
	for i := 1; i <= 3; i++ {
		seq, err := s.Append("mutate", json.RawMessage(fmt.Sprintf(`{"n":%d}`, i)))
		if err != nil {
			t.Fatalf("Append: %v", err)
		}
		if seq != uint64(i) {
			t.Fatalf("seq = %d, want %d", seq, i)
		}
	}
	s.Close()

	rs := &replayState{}
	s2, rec2 := mustOpen(t, dir, rs)
	defer s2.Close()
	if rec2.Restored {
		t.Fatal("restored a snapshot that was never written")
	}
	if rec2.Replayed != 3 || len(rs.applied) != 3 {
		t.Fatalf("replayed %d records (callback saw %d), want 3", rec2.Replayed, len(rs.applied))
	}
	if s2.Seq() != 3 {
		t.Fatalf("Seq() = %d, want 3 (appends must continue past replayed records)", s2.Seq())
	}
}

func TestStoreSnapshotRotatesWAL(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, &replayState{})
	for i := 0; i < 4; i++ {
		if _, err := s.Append("m", nil); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := s.WriteSnapshot(s.Seq(), []byte(`{"state":"full"}`)); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	if got := s.Stats(); got.WALBytes != 0 || got.WALRecords != 0 {
		t.Fatalf("WAL not rotated after covering snapshot: %+v", got)
	}
	// One more mutation after the snapshot must land in the fresh log.
	if _, err := s.Append("post", nil); err != nil {
		t.Fatalf("Append after snapshot: %v", err)
	}
	s.Close()

	rs := &replayState{}
	_, rec := mustOpen(t, dir, rs)
	if !rec.Restored || rec.SnapshotSeq != 4 {
		t.Fatalf("recovery = %+v, want restore of snapshot seq 4", rec)
	}
	if rs.restoredData != `{"state":"full"}` {
		t.Fatalf("restored %q", rs.restoredData)
	}
	if rec.Replayed != 1 || len(rs.applied) != 1 || rs.applied[0].Seq != 5 {
		t.Fatalf("post-snapshot replay = %+v / %+v", rec, rs.applied)
	}
}

// TestStoreCrashBetweenSnapshotAndRotate simulates SIGKILL after the
// snapshot rename but before the WAL truncate: the log still holds records
// the snapshot covers, and the seq gate must skip them instead of
// double-applying.
func TestStoreCrashBetweenSnapshotAndRotate(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, &replayState{})
	for i := 0; i < 3; i++ {
		if _, err := s.Append("m", nil); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	s.Close()
	// Write the snapshot file by hand — same bytes WriteSnapshot would
	// publish — while leaving wal.log untouched, exactly the disk state a
	// crash between rename and truncate leaves behind.
	if err := WriteFileAtomic(filepath.Join(dir, fmt.Sprintf("%s%020d%s", snapPrefix, 3, snapSuffix)), []byte(`{}`), 0o644); err != nil {
		t.Fatalf("plant snapshot: %v", err)
	}

	rs := &replayState{}
	s2, rec := mustOpen(t, dir, rs)
	defer s2.Close()
	if !rec.Restored || rec.SnapshotSeq != 3 {
		t.Fatalf("recovery = %+v", rec)
	}
	if rec.Replayed != 0 || len(rs.applied) != 0 {
		t.Fatalf("covered records were replayed: %+v / %+v", rec, rs.applied)
	}
	if rec.SkippedCovered != 3 {
		t.Fatalf("SkippedCovered = %d, want 3", rec.SkippedCovered)
	}
	if s2.Seq() != 3 {
		t.Fatalf("Seq() = %d, want 3", s2.Seq())
	}
}

// TestStoreSnapshotFallback corrupts the newest snapshot and asserts
// recovery falls back to the older one, then replays the full WAL past it.
func TestStoreSnapshotFallback(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, &replayState{})
	if _, err := s.Append("a", nil); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteSnapshot(1, []byte(`{"gen":1}`)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append("b", nil); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteSnapshot(2, []byte(`{"gen":2}`)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append("c", nil); err != nil {
		t.Fatal(err)
	}
	s.Close()

	rs := &replayState{failRestore: map[uint64]bool{2: true}}
	s2, rec := mustOpen(t, dir, rs)
	defer s2.Close()
	if !rec.Restored || rec.SnapshotSeq != 1 || rec.SnapshotsDiscarded != 1 {
		t.Fatalf("recovery = %+v, want fallback to snapshot 1", rec)
	}
	if rs.restoredData != `{"gen":1}` {
		t.Fatalf("restored %q", rs.restoredData)
	}
	// Only record c (seq 3) is in the current log — records a and b were
	// rotated away by their covering snapshots, so falling back to snapshot 1
	// replays just what survived.
	if rec.Replayed != 1 || len(rs.applied) != 1 || rs.applied[0].Seq != 3 {
		t.Fatalf("replay after fallback = %+v / %+v", rec, rs.applied)
	}
}

func TestStorePrunesOldSnapshots(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, &replayState{})
	for i := 1; i <= 4; i++ {
		if _, err := s.Append("m", nil); err != nil {
			t.Fatal(err)
		}
		if err := s.WriteSnapshot(uint64(i), []byte(`{}`)); err != nil {
			t.Fatal(err)
		}
	}
	defer s.Close()
	seqs, err := s.listSnapshots()
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 2 || seqs[0] != 3 || seqs[1] != 4 {
		t.Fatalf("retained snapshots = %v, want [3 4]", seqs)
	}
}

func TestStoreRejectsRegressingSnapshot(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, &replayState{})
	defer s.Close()
	for i := 0; i < 2; i++ {
		if _, err := s.Append("m", nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.WriteSnapshot(2, []byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteSnapshot(1, []byte(`{}`)); err == nil {
		t.Fatal("regressing snapshot seq accepted")
	}
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.json")
	if err := WriteFileAtomic(path, []byte("v1"), 0o644); err != nil {
		t.Fatalf("WriteFileAtomic: %v", err)
	}
	if err := WriteFileAtomic(path, []byte("v2"), 0o600); err != nil {
		t.Fatalf("overwrite: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil || string(data) != "v2" {
		t.Fatalf("read back %q, %v", data, err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Mode().Perm() != 0o600 {
		t.Fatalf("mode = %v, want 0600", fi.Mode().Perm())
	}
	// No temp files may survive.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory has %d entries, want just the target", len(entries))
	}
}
