// Package stats provides the small statistical toolkit shared by the cost
// estimation module and the experiment harness: error metrics (RMSE, RMSE%,
// R²), descriptive statistics, and fitted-line summaries used to report the
// paper's predicted-vs-actual scatter plots as (slope, intercept, R²) rows.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrEmpty is returned when a metric is requested over no observations.
var ErrEmpty = errors.New("stats: empty input")

// ErrLengthMismatch is returned when paired slices differ in length.
var ErrLengthMismatch = errors.New("stats: length mismatch")

// Mean returns the arithmetic mean of xs.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs)), nil
}

// Variance returns the population variance of xs.
func Variance(xs []float64) (float64, error) {
	m, err := Mean(xs)
	if err != nil {
		return 0, err
	}
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs)), nil
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) (float64, error) {
	v, err := Variance(xs)
	if err != nil {
		return 0, err
	}
	return math.Sqrt(v), nil
}

// RMSE returns the root-mean-square error between predicted and actual.
func RMSE(predicted, actual []float64) (float64, error) {
	if len(predicted) != len(actual) {
		return 0, ErrLengthMismatch
	}
	if len(predicted) == 0 {
		return 0, ErrEmpty
	}
	ss := 0.0
	for i := range predicted {
		d := predicted[i] - actual[i]
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(predicted))), nil
}

// RMSEPercent returns the paper's error metric e*100/v, where e is the RMSE
// and v is the mean of the actual values (Section 7, Figures 11–12, Table 1).
func RMSEPercent(predicted, actual []float64) (float64, error) {
	e, err := RMSE(predicted, actual)
	if err != nil {
		return 0, err
	}
	v, err := Mean(actual)
	if err != nil {
		return 0, err
	}
	if v == 0 {
		return 0, errors.New("stats: zero mean actual value")
	}
	return e * 100 / v, nil
}

// MAE returns the mean absolute error between predicted and actual.
func MAE(predicted, actual []float64) (float64, error) {
	if len(predicted) != len(actual) {
		return 0, ErrLengthMismatch
	}
	if len(predicted) == 0 {
		return 0, ErrEmpty
	}
	s := 0.0
	for i := range predicted {
		s += math.Abs(predicted[i] - actual[i])
	}
	return s / float64(len(predicted)), nil
}

// RSquared returns the coefficient of determination of predictions against
// actual observations: 1 - SSres/SStot.
func RSquared(predicted, actual []float64) (float64, error) {
	if len(predicted) != len(actual) {
		return 0, ErrLengthMismatch
	}
	if len(predicted) == 0 {
		return 0, ErrEmpty
	}
	m, err := Mean(actual)
	if err != nil {
		return 0, err
	}
	ssRes, ssTot := 0.0, 0.0
	for i := range actual {
		r := actual[i] - predicted[i]
		t := actual[i] - m
		ssRes += r * r
		ssTot += t * t
	}
	if ssTot == 0 {
		if ssRes == 0 {
			return 1, nil
		}
		return 0, errors.New("stats: zero variance in actual values")
	}
	return 1 - ssRes/ssTot, nil
}

// Line is a fitted y = Slope*x + Intercept summary together with the R² of
// the fit. The experiment harness prints these exactly the way the paper
// annotates its scatter plots (e.g. "y=0.9587x+0.2445, R²=0.98573").
type Line struct {
	Slope     float64
	Intercept float64
	R2        float64
}

// String formats the line the way the paper's figures annotate fits.
func (l Line) String() string {
	sign := "+"
	b := l.Intercept
	if b < 0 {
		sign = "-"
		b = -b
	}
	return fmt.Sprintf("y=%.4fx%s%.4f R²=%.5f", l.Slope, sign, b, l.R2)
}

// FitLine computes the ordinary least-squares line through (x, y) pairs.
func FitLine(x, y []float64) (Line, error) {
	if len(x) != len(y) {
		return Line{}, ErrLengthMismatch
	}
	if len(x) < 2 {
		return Line{}, errors.New("stats: need at least two points to fit a line")
	}
	n := float64(len(x))
	var sx, sy, sxx, sxy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		sxy += x[i] * y[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return Line{}, errors.New("stats: degenerate x values (zero variance)")
	}
	slope := (n*sxy - sx*sy) / den
	intercept := (sy - slope*sx) / n
	pred := make([]float64, len(x))
	for i := range x {
		pred[i] = slope*x[i] + intercept
	}
	r2, err := RSquared(pred, y)
	if err != nil {
		return Line{}, err
	}
	return Line{Slope: slope, Intercept: intercept, R2: r2}, nil
}

// Eval returns the line's prediction at x.
func (l Line) Eval(x float64) float64 { return l.Slope*x + l.Intercept }

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between closest ranks. xs is not modified.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 || p > 100 {
		return 0, fmt.Errorf("stats: percentile %v out of range [0,100]", p)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// MinMax returns the minimum and maximum of xs.
func MinMax(xs []float64) (min, max float64, err error) {
	if len(xs) == 0 {
		return 0, 0, ErrEmpty
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max, nil
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}
