package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestMean(t *testing.T) {
	m, err := Mean([]float64{1, 2, 3, 4})
	if err != nil {
		t.Fatalf("Mean: %v", err)
	}
	if m != 2.5 {
		t.Errorf("Mean = %v, want 2.5", m)
	}
}

func TestMeanEmpty(t *testing.T) {
	if _, err := Mean(nil); err != ErrEmpty {
		t.Errorf("Mean(nil) err = %v, want ErrEmpty", err)
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	v, err := Variance(xs)
	if err != nil {
		t.Fatalf("Variance: %v", err)
	}
	if !almostEqual(v, 4, 1e-12) {
		t.Errorf("Variance = %v, want 4", v)
	}
	sd, err := StdDev(xs)
	if err != nil {
		t.Fatalf("StdDev: %v", err)
	}
	if !almostEqual(sd, 2, 1e-12) {
		t.Errorf("StdDev = %v, want 2", sd)
	}
}

func TestRMSEPerfect(t *testing.T) {
	a := []float64{1, 2, 3}
	e, err := RMSE(a, a)
	if err != nil {
		t.Fatalf("RMSE: %v", err)
	}
	if e != 0 {
		t.Errorf("RMSE of identical slices = %v, want 0", e)
	}
}

func TestRMSEKnown(t *testing.T) {
	p := []float64{1, 2}
	a := []float64{2, 4}
	e, err := RMSE(p, a)
	if err != nil {
		t.Fatalf("RMSE: %v", err)
	}
	want := math.Sqrt((1.0 + 4.0) / 2.0)
	if !almostEqual(e, want, 1e-12) {
		t.Errorf("RMSE = %v, want %v", e, want)
	}
}

func TestRMSEMismatch(t *testing.T) {
	if _, err := RMSE([]float64{1}, []float64{1, 2}); err != ErrLengthMismatch {
		t.Errorf("err = %v, want ErrLengthMismatch", err)
	}
}

func TestRMSEPercent(t *testing.T) {
	p := []float64{9, 11}
	a := []float64{10, 10}
	got, err := RMSEPercent(p, a)
	if err != nil {
		t.Fatalf("RMSEPercent: %v", err)
	}
	if !almostEqual(got, 10, 1e-12) {
		t.Errorf("RMSEPercent = %v, want 10", got)
	}
}

func TestRMSEPercentZeroMean(t *testing.T) {
	if _, err := RMSEPercent([]float64{1}, []float64{0}); err == nil {
		t.Error("expected error for zero-mean actual values")
	}
}

func TestMAE(t *testing.T) {
	got, err := MAE([]float64{1, 3}, []float64{2, 1})
	if err != nil {
		t.Fatalf("MAE: %v", err)
	}
	if !almostEqual(got, 1.5, 1e-12) {
		t.Errorf("MAE = %v, want 1.5", got)
	}
}

func TestRSquaredPerfect(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	r2, err := RSquared(a, a)
	if err != nil {
		t.Fatalf("RSquared: %v", err)
	}
	if r2 != 1 {
		t.Errorf("R² of perfect prediction = %v, want 1", r2)
	}
}

func TestRSquaredMeanPredictor(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	p := []float64{2.5, 2.5, 2.5, 2.5}
	r2, err := RSquared(p, a)
	if err != nil {
		t.Fatalf("RSquared: %v", err)
	}
	if !almostEqual(r2, 0, 1e-12) {
		t.Errorf("R² of mean predictor = %v, want 0", r2)
	}
}

func TestFitLineExact(t *testing.T) {
	x := []float64{0, 1, 2, 3}
	y := []float64{1, 3, 5, 7} // y = 2x + 1
	l, err := FitLine(x, y)
	if err != nil {
		t.Fatalf("FitLine: %v", err)
	}
	if !almostEqual(l.Slope, 2, 1e-12) || !almostEqual(l.Intercept, 1, 1e-12) {
		t.Errorf("FitLine = %+v, want slope 2 intercept 1", l)
	}
	if !almostEqual(l.R2, 1, 1e-12) {
		t.Errorf("R² = %v, want 1", l.R2)
	}
	if got := l.Eval(10); !almostEqual(got, 21, 1e-12) {
		t.Errorf("Eval(10) = %v, want 21", got)
	}
}

func TestFitLineDegenerate(t *testing.T) {
	if _, err := FitLine([]float64{1, 1, 1}, []float64{1, 2, 3}); err == nil {
		t.Error("expected error for zero-variance x")
	}
	if _, err := FitLine([]float64{1}, []float64{1}); err == nil {
		t.Error("expected error for single point")
	}
}

func TestLineString(t *testing.T) {
	l := Line{Slope: 0.9587, Intercept: 0.2445, R2: 0.98573}
	if got := l.String(); got != "y=0.9587x+0.2445 R²=0.98573" {
		t.Errorf("String() = %q", got)
	}
	l = Line{Slope: 0.1821, Intercept: -51.614, R2: 0.98464}
	if got := l.String(); got != "y=0.1821x-51.6140 R²=0.98464" {
		t.Errorf("String() = %q", got)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	p, err := Percentile(xs, 50)
	if err != nil {
		t.Fatalf("Percentile: %v", err)
	}
	if !almostEqual(p, 2.5, 1e-12) {
		t.Errorf("median = %v, want 2.5", p)
	}
	lo, _ := Percentile(xs, 0)
	hi, _ := Percentile(xs, 100)
	if lo != 1 || hi != 4 {
		t.Errorf("p0=%v p100=%v, want 1 and 4", lo, hi)
	}
	if _, err := Percentile(xs, 101); err == nil {
		t.Error("expected error for out-of-range percentile")
	}
	// Input must not be modified.
	if xs[0] != 4 {
		t.Error("Percentile modified its input")
	}
}

func TestMinMax(t *testing.T) {
	min, max, err := MinMax([]float64{3, -1, 7, 0})
	if err != nil {
		t.Fatalf("MinMax: %v", err)
	}
	if min != -1 || max != 7 {
		t.Errorf("MinMax = (%v, %v), want (-1, 7)", min, max)
	}
}

func TestSum(t *testing.T) {
	if got := Sum([]float64{1, 2, 3}); got != 6 {
		t.Errorf("Sum = %v, want 6", got)
	}
	if got := Sum(nil); got != 0 {
		t.Errorf("Sum(nil) = %v, want 0", got)
	}
}

// Property: FitLine recovers any non-degenerate linear relationship exactly.
func TestFitLineRecoversLinearProperty(t *testing.T) {
	f := func(slope, intercept float64, seed int64) bool {
		if math.Abs(slope) > 1e6 || math.Abs(intercept) > 1e6 {
			return true // keep numbers well conditioned
		}
		rng := rand.New(rand.NewSource(seed))
		x := make([]float64, 16)
		y := make([]float64, 16)
		for i := range x {
			x[i] = rng.Float64()*100 + float64(i) // strictly increasing: non-degenerate
			y[i] = slope*x[i] + intercept
		}
		l, err := FitLine(x, y)
		if err != nil {
			return false
		}
		return almostEqual(l.Slope, slope, 1e-6*(1+math.Abs(slope))) &&
			almostEqual(l.Intercept, intercept, 1e-4*(1+math.Abs(intercept)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: RMSE is non-negative and zero only for identical slices.
func TestRMSENonNegativeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(20) + 1
		p := make([]float64, n)
		a := make([]float64, n)
		for i := range p {
			p[i] = rng.NormFloat64() * 10
			a[i] = rng.NormFloat64() * 10
		}
		e, err := RMSE(p, a)
		if err != nil || e < 0 {
			return false
		}
		e2, err := RMSE(a, a)
		return err == nil && e2 == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: R² of the OLS fit is never negative (OLS cannot do worse than the
// mean predictor on its own training data) and never exceeds 1.
func TestFitLineR2BoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(30) + 3
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = float64(i) + rng.Float64()
			y[i] = rng.NormFloat64() * 5
		}
		l, err := FitLine(x, y)
		if err != nil {
			return false
		}
		return l.R2 >= -1e-9 && l.R2 <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMAEAndRSquaredErrors(t *testing.T) {
	if _, err := MAE(nil, nil); err != ErrEmpty {
		t.Errorf("MAE(nil) err = %v", err)
	}
	if _, err := MAE([]float64{1}, []float64{1, 2}); err != ErrLengthMismatch {
		t.Errorf("MAE mismatch err = %v", err)
	}
	if _, err := RSquared(nil, nil); err != ErrEmpty {
		t.Errorf("RSquared(nil) err = %v", err)
	}
	if _, err := RSquared([]float64{1}, []float64{1, 2}); err != ErrLengthMismatch {
		t.Errorf("RSquared mismatch err = %v", err)
	}
	// Zero variance in actual: perfect predictions are fine, others error.
	if r2, err := RSquared([]float64{2, 2}, []float64{2, 2}); err != nil || r2 != 1 {
		t.Errorf("constant perfect R² = %v, %v", r2, err)
	}
	if _, err := RSquared([]float64{1, 3}, []float64{2, 2}); err == nil {
		t.Error("zero-variance actual with residuals accepted")
	}
}

func TestVarianceEmpty(t *testing.T) {
	if _, err := Variance(nil); err != ErrEmpty {
		t.Errorf("Variance(nil) err = %v", err)
	}
	if _, err := StdDev(nil); err != ErrEmpty {
		t.Errorf("StdDev(nil) err = %v", err)
	}
}

func TestPercentileSingleAndEmpty(t *testing.T) {
	if _, err := Percentile(nil, 50); err != ErrEmpty {
		t.Errorf("Percentile(nil) err = %v", err)
	}
	p, err := Percentile([]float64{7}, 99)
	if err != nil || p != 7 {
		t.Errorf("single-element percentile = %v, %v", p, err)
	}
	if _, err := Percentile([]float64{1, 2}, -1); err == nil {
		t.Error("negative percentile accepted")
	}
}

func TestRMSEPercentPropagatesErrors(t *testing.T) {
	if _, err := RMSEPercent(nil, nil); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := RMSEPercent([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("mismatch accepted")
	}
}
