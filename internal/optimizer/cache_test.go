package optimizer

import (
	"testing"

	"intellisphere/internal/sqlparse"
)

func TestPlanCacheLRUEviction(t *testing.T) {
	c := NewPlanCache(2)
	pa, pb, pc := &Plan{}, &Plan{}, &Plan{}
	c.put("a", 1, pa)
	c.put("b", 1, pb)
	// Touch "a" so "b" becomes the LRU victim.
	if got, ok := c.get("a", 1); !ok || got != pa {
		t.Fatalf("get(a) = %v, %v", got, ok)
	}
	c.put("c", 1, pc)
	if _, ok := c.get("b", 1); ok {
		t.Error("LRU entry b survived eviction")
	}
	if got, ok := c.get("a", 1); !ok || got != pa {
		t.Errorf("get(a) after eviction = %v, %v", got, ok)
	}
	if got, ok := c.get("c", 1); !ok || got != pc {
		t.Errorf("get(c) = %v, %v", got, ok)
	}
	s := c.Stats()
	if s.Size != 2 || s.Capacity != 2 || s.Evicted != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestPlanCacheStaleGeneration(t *testing.T) {
	c := NewPlanCache(4)
	c.put("q", 7, &Plan{})
	if _, ok := c.get("q", 8); ok {
		t.Fatal("stale-generation entry served")
	}
	// The stale entry is evicted on sight, so even the old generation now
	// misses.
	if _, ok := c.get("q", 7); ok {
		t.Error("stale entry not evicted")
	}
	s := c.Stats()
	if s.Stale != 1 || s.Misses != 2 || s.Hits != 0 {
		t.Errorf("stats = %+v", s)
	}
}

func TestPlanCachePutReplacesAndPurge(t *testing.T) {
	c := NewPlanCache(4)
	p1, p2 := &Plan{}, &Plan{}
	c.put("q", 1, p1)
	c.put("q", 2, p2)
	if got, ok := c.get("q", 2); !ok || got != p2 {
		t.Errorf("replaced entry = %v, %v", got, ok)
	}
	if s := c.Stats(); s.Size != 1 {
		t.Errorf("size after replace = %d", s.Size)
	}
	c.Purge()
	if _, ok := c.get("q", 2); ok {
		t.Error("entry survived Purge")
	}
	if s := c.Stats(); s.Size != 0 || s.Hits != 1 {
		t.Errorf("stats after purge = %+v", s)
	}
}

func TestPlanCacheDefaultCapacity(t *testing.T) {
	if c := NewPlanCache(0); c.cap != 256 {
		t.Errorf("default capacity = %d", c.cap)
	}
	if c := NewPlanCache(-3); c.cap != 256 {
		t.Errorf("capacity(-3) = %d", c.cap)
	}
}

// TestOptimizerPlanCaching covers the cache end to end through Plan():
// identical statements share one *Plan, a catalog mutation invalidates, and a
// cache-disabled optimizer still plans.
func TestOptimizerPlanCaching(t *testing.T) {
	f := newFixture(t)
	f.opt.Cache = NewPlanCache(16)
	const sql = "SELECT r.a1 FROM t1000000_100 r JOIN s_items s ON r.a1 = s.a1"
	p1 := f.plan(t, sql)
	p2 := f.plan(t, sql)
	if p1 != p2 {
		t.Error("identical statement replanned instead of hitting the cache")
	}
	// The parser normalizes formatting, so a differently spelled but
	// equivalent statement hits too.
	p3 := f.plan(t, "SELECT  r.a1  FROM t1000000_100 r JOIN s_items s ON r.a1 = s.a1")
	if p3 != p1 {
		t.Error("normalized-equivalent statement missed the cache")
	}
	s := f.opt.Cache.Stats()
	if s.Hits != 2 || s.Misses != 1 {
		t.Errorf("stats = %+v", s)
	}

	// A catalog mutation bumps the generation: the next lookup is stale.
	tb, err := f.cat.Lookup("t10000_40")
	if err != nil {
		t.Fatal(err)
	}
	clone := *tb
	clone.Name = "t10000_40_copy"
	if err := f.cat.Register(&clone); err != nil {
		t.Fatal(err)
	}
	p4 := f.plan(t, sql)
	if p4 == p1 {
		t.Error("catalog mutation did not invalidate the cached plan")
	}
	if s := f.opt.Cache.Stats(); s.Stale != 1 {
		t.Errorf("stats after invalidation = %+v", s)
	}

	// Explain output of a cache hit is byte-identical (same plan object).
	p5 := f.plan(t, sql)
	if p5.Explain() != p4.Explain() {
		t.Error("cached Explain differs from cold Explain")
	}

	// Cache disabled: planning still works, every call is cold.
	f.opt.Cache = nil
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.opt.Plan(stmt); err != nil {
		t.Fatalf("Plan without cache: %v", err)
	}
}
