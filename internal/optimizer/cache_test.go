package optimizer

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"intellisphere/internal/sqlparse"
)

func TestPlanCacheLRUEviction(t *testing.T) {
	c := NewPlanCache(2)
	pa, pb, pc := &Plan{}, &Plan{}, &Plan{}
	c.put("a", 1, pa)
	c.put("b", 1, pb)
	// Touch "a" so "b" becomes the LRU victim.
	if got, ok := c.get("a", 1); !ok || got != pa {
		t.Fatalf("get(a) = %v, %v", got, ok)
	}
	c.put("c", 1, pc)
	if _, ok := c.get("b", 1); ok {
		t.Error("LRU entry b survived eviction")
	}
	if got, ok := c.get("a", 1); !ok || got != pa {
		t.Errorf("get(a) after eviction = %v, %v", got, ok)
	}
	if got, ok := c.get("c", 1); !ok || got != pc {
		t.Errorf("get(c) = %v, %v", got, ok)
	}
	s := c.Stats()
	if s.Size != 2 || s.Capacity != 2 || s.Evicted != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestPlanCacheStaleGeneration(t *testing.T) {
	c := NewPlanCache(4)
	c.put("q", 7, &Plan{})
	if _, ok := c.get("q", 8); ok {
		t.Fatal("stale-generation entry served")
	}
	// The stale entry is evicted on sight, so even the old generation now
	// misses.
	if _, ok := c.get("q", 7); ok {
		t.Error("stale entry not evicted")
	}
	s := c.Stats()
	if s.Stale != 1 || s.Misses != 2 || s.Hits != 0 {
		t.Errorf("stats = %+v", s)
	}
}

func TestPlanCachePutReplacesAndPurge(t *testing.T) {
	c := NewPlanCache(4)
	p1, p2 := &Plan{}, &Plan{}
	c.put("q", 1, p1)
	c.put("q", 2, p2)
	if got, ok := c.get("q", 2); !ok || got != p2 {
		t.Errorf("replaced entry = %v, %v", got, ok)
	}
	if s := c.Stats(); s.Size != 1 {
		t.Errorf("size after replace = %d", s.Size)
	}
	c.Purge()
	if _, ok := c.get("q", 2); ok {
		t.Error("entry survived Purge")
	}
	if s := c.Stats(); s.Size != 0 || s.Hits != 1 {
		t.Errorf("stats after purge = %+v", s)
	}
}

func TestPlanCacheDefaultCapacity(t *testing.T) {
	if c := NewPlanCache(0); c.cap != 256 {
		t.Errorf("default capacity = %d", c.cap)
	}
	if c := NewPlanCache(-3); c.cap != 256 {
		t.Errorf("capacity(-3) = %d", c.cap)
	}
}

// TestOptimizerPlanCaching covers the cache end to end through Plan():
// identical statements share one *Plan, a catalog mutation invalidates, and a
// cache-disabled optimizer still plans.
func TestOptimizerPlanCaching(t *testing.T) {
	f := newFixture(t)
	f.opt.Cache = NewPlanCache(16)
	const sql = "SELECT r.a1 FROM t1000000_100 r JOIN s_items s ON r.a1 = s.a1"
	p1 := f.plan(t, sql)
	p2 := f.plan(t, sql)
	if p1 != p2 {
		t.Error("identical statement replanned instead of hitting the cache")
	}
	// The parser normalizes formatting, so a differently spelled but
	// equivalent statement hits too.
	p3 := f.plan(t, "SELECT  r.a1  FROM t1000000_100 r JOIN s_items s ON r.a1 = s.a1")
	if p3 != p1 {
		t.Error("normalized-equivalent statement missed the cache")
	}
	s := f.opt.Cache.Stats()
	if s.Hits != 2 || s.Misses != 1 {
		t.Errorf("stats = %+v", s)
	}

	// A catalog mutation bumps the generation: the next lookup is stale.
	tb, err := f.cat.Lookup("t10000_40")
	if err != nil {
		t.Fatal(err)
	}
	clone := *tb
	clone.Name = "t10000_40_copy"
	if err := f.cat.Register(&clone); err != nil {
		t.Fatal(err)
	}
	p4 := f.plan(t, sql)
	if p4 == p1 {
		t.Error("catalog mutation did not invalidate the cached plan")
	}
	if s := f.opt.Cache.Stats(); s.Stale != 1 {
		t.Errorf("stats after invalidation = %+v", s)
	}

	// Explain output of a cache hit is byte-identical (same plan object).
	p5 := f.plan(t, sql)
	if p5.Explain() != p4.Explain() {
		t.Error("cached Explain differs from cold Explain")
	}

	// Cache disabled: planning still works, every call is cold.
	f.opt.Cache = nil
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.opt.Plan(stmt); err != nil {
		t.Fatalf("Plan without cache: %v", err)
	}
}

// TestPlanCacheShardSizing pins the shard-count policy: small caches stay
// single-sharded (preserving whole-cache eviction order), the default 256
// fans out to the maximum, and total capacity is preserved across shards.
func TestPlanCacheShardSizing(t *testing.T) {
	cases := []struct {
		capacity, shards int
	}{
		{2, 1}, {16, 1}, {31, 1}, {32, 2}, {64, 4}, {128, 8}, {256, 16}, {10000, 16},
	}
	for _, tc := range cases {
		c := NewPlanCache(tc.capacity)
		if len(c.shards) != tc.shards {
			t.Errorf("capacity %d: %d shards, want %d", tc.capacity, len(c.shards), tc.shards)
		}
		var total int
		for i := range c.shards {
			total += c.shards[i].cap
		}
		if total < tc.capacity {
			t.Errorf("capacity %d: shard caps sum to %d", tc.capacity, total)
		}
	}
}

// TestPlanCacheShardedCounters fills a multi-shard cache past capacity and
// checks the summed counters stay exact: every lookup lands in exactly one of
// hits/misses, size never exceeds capacity, and eviction happens per shard.
func TestPlanCacheShardedCounters(t *testing.T) {
	c := NewPlanCache(64) // 4 shards x 16
	keys := make([]string, 200)
	for i := range keys {
		keys[i] = fmt.Sprintf("stmt-%d", i)
		c.put(keys[i], 1, &Plan{})
	}
	var lookups uint64
	for _, k := range keys {
		c.get(k, 1)
		lookups++
	}
	s := c.Stats()
	if s.Hits+s.Misses != lookups {
		t.Errorf("hits %d + misses %d != lookups %d", s.Hits, s.Misses, lookups)
	}
	if s.Size > 64 {
		t.Errorf("size %d exceeds capacity", s.Size)
	}
	if s.Evicted == 0 {
		t.Error("no evictions after 200 inserts into 64 slots")
	}
	if s.Size+int(s.Evicted) != len(keys) {
		t.Errorf("size %d + evicted %d != %d inserts", s.Size, s.Evicted, len(keys))
	}
}

// TestPlanCacheConcurrent hammers one sharded cache from many goroutines
// mixing hits, misses, stale lookups, inserts, purges, and stat scrapes; the
// race detector checks the lock-free paths and the final counters must
// reconcile (hits+misses == lookups).
func TestPlanCacheConcurrent(t *testing.T) {
	c := NewPlanCache(128)
	plans := make([]*Plan, 32)
	for i := range plans {
		plans[i] = &Plan{}
		c.put(fmt.Sprintf("k%d", i), 1, plans[i])
	}
	var lookups atomic.Uint64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				k := fmt.Sprintf("k%d", (g*7+i)%48) // 32 present, 16 missing
				gen := uint64(1 + (i%2)*(g%2))      // mix of current and stale gens
				if p, ok := c.get(k, gen); ok && p == nil {
					t.Error("hit returned nil plan")
				}
				lookups.Add(1)
				if i%37 == 0 {
					c.put(k, 1, plans[i%len(plans)])
				}
				if i%501 == 0 {
					c.Stats()
				}
			}
		}(g)
	}
	wg.Wait()
	s := c.Stats()
	if s.Hits+s.Misses != lookups.Load() {
		t.Errorf("hits %d + misses %d != lookups %d", s.Hits, s.Misses, lookups.Load())
	}
}
