package optimizer

import (
	"sync"
	"testing"

	"intellisphere/internal/sqlparse"
)

// benchSQL exercises the widest planning surface: a three-way cross-system
// join whose every step costs several placement candidates.
const benchSQL = "SELECT r.a1 FROM t10000000_100 r JOIN t1000000_100 s ON r.a1 = s.a1 JOIN s_items u ON s.a1 = u.a1 WHERE r.a1 + u.z < 50000"

// BenchmarkOptimizerPlan measures end-to-end planning of a multi-join query.
// Candidate costing inside each plan fans out across the worker pool.
func BenchmarkOptimizerPlan(b *testing.B) {
	f := newFixture(b)
	stmt, err := sqlparse.Parse(benchSQL)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.opt.Plan(stmt); err != nil {
			b.Fatal(err)
		}
	}
}

// TestPlanConcurrent drives many simultaneous Plan calls through the shared
// optimizer and its estimators. Run under -race this verifies the whole
// costing path (estimators included) is safe for the parallel fan-out, and
// that concurrent planning stays deterministic.
func TestPlanConcurrent(t *testing.T) {
	f := newFixture(t)
	stmt, err := sqlparse.Parse(benchSQL)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := f.opt.Plan(stmt)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				p, err := f.opt.Plan(stmt)
				if err != nil {
					t.Errorf("concurrent Plan: %v", err)
					return
				}
				if p.EstimatedSec != ref.EstimatedSec || len(p.Steps) != len(ref.Steps) {
					t.Errorf("concurrent plan diverged: %v sec / %d steps, want %v / %d",
						p.EstimatedSec, len(p.Steps), ref.EstimatedSec, len(ref.Steps))
					return
				}
			}
		}()
	}
	wg.Wait()
}
