package optimizer

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"intellisphere/internal/catalog"
	"intellisphere/internal/core"
	"intellisphere/internal/core/subop"
	"intellisphere/internal/parallel"
	"intellisphere/internal/plan"
	"intellisphere/internal/querygrid"
	"intellisphere/internal/registry"
	"intellisphere/internal/sqlparse"
	"intellisphere/internal/trace"
)

// Optimizer is the master engine's federated planner. Estimators is a
// read-mostly registry (keyed by system name, incl. querygrid.Master) so
// concurrent planners never contend with registration; lookups are
// lock-free.
type Optimizer struct {
	Catalog    *catalog.Catalog
	Grid       *querygrid.Grid
	Estimators *registry.Map[core.Estimator]
	// Workers bounds this optimizer's candidate-costing fan-out. 0 uses the
	// process default (GOMAXPROCS or INTELLISPHERE_WORKERS); 1 forces serial
	// sweeps. Plans are identical at any setting.
	Workers int
	// Cache, when non-nil, memoizes finished plans keyed by normalized
	// statement shape and the current generation vector. Cached plans are
	// byte-identical to freshly built ones — the cache only skips the
	// candidate enumeration.
	Cache *PlanCache
}

// Step is one unit of a physical plan: either a data transfer or an
// operator execution on a system.
type Step struct {
	// Kind is "transfer", "scan", "join", or "aggregation".
	Kind string
	// System executes the step (for transfers, the destination).
	System string
	// From is the transfer source (transfers only).
	From string
	// Rows/RowSize describe the transferred volume (transfers only).
	Rows, RowSize float64
	// Join/Agg/Scan hold the operator spec for operator steps.
	Join *plan.JoinSpec
	Agg  *plan.AggSpec
	Scan *plan.ScanSpec
	// EstimatedSec is the step's predicted elapsed time.
	EstimatedSec float64
	// Estimate is the raw estimator output for operator steps.
	Estimate core.Estimate
}

// Describe renders the step for EXPLAIN output.
func (s Step) Describe() string {
	switch s.Kind {
	case "transfer":
		return fmt.Sprintf("transfer %.0f rows × %.0f B  %s → %s  (%.2fs)", s.Rows, s.RowSize, s.From, s.System, s.EstimatedSec)
	case "join":
		return fmt.Sprintf("join on %s via %s (%.2fs)", s.System, s.Estimate.Algorithm, s.EstimatedSec)
	case "aggregation":
		return fmt.Sprintf("aggregation on %s (%.2fs)", s.System, s.EstimatedSec)
	case "scan":
		return fmt.Sprintf("scan on %s (%.2fs)", s.System, s.EstimatedSec)
	case "sort":
		return fmt.Sprintf("sort %.0f rows on %s (%.2fs)", s.Rows, s.System, s.EstimatedSec)
	default:
		return s.Kind
	}
}

// Alternative summarizes one rejected placement for EXPLAIN output.
type Alternative struct {
	Description  string
	EstimatedSec float64
}

// Plan is a chosen physical plan with its costed alternatives. Plans are
// immutable once built (the plan cache shares one *Plan across callers), so
// the Explain rendering is memoized.
type Plan struct {
	Steps        []Step
	EstimatedSec float64
	Alternatives []Alternative
	// OutputRows/OutputRowSize describe the final result shipped to the
	// user through the master.
	OutputRows    float64
	OutputRowSize float64
	// Excluded lists the systems a degraded re-plan avoided, sorted; empty
	// for a normal plan.
	Excluded []string

	explainOnce sync.Once
	explained   string
}

// Explain renders the plan. The rendering is computed once per plan, so
// cache hits return byte-identical output without re-formatting.
func (p *Plan) Explain() string {
	p.explainOnce.Do(func() {
		var b strings.Builder
		if len(p.Excluded) > 0 {
			fmt.Fprintf(&b, "degraded plan (excluded: %s)\n", strings.Join(p.Excluded, ", "))
		}
		fmt.Fprintf(&b, "plan (estimated %.2fs):\n", p.EstimatedSec)
		for i, s := range p.Steps {
			fmt.Fprintf(&b, "  %d. %s\n", i+1, s.Describe())
		}
		if len(p.Alternatives) > 0 {
			b.WriteString("rejected alternatives:\n")
			for _, a := range p.Alternatives {
				fmt.Fprintf(&b, "  - %s (%.2fs)\n", a.Description, a.EstimatedSec)
			}
		}
		p.explained = b.String()
	})
	return p.explained
}

// candidate is one placement under construction.
type candidate struct {
	desc  string
	steps []Step
	total float64
}

func (c *candidate) add(s Step) {
	c.steps = append(c.steps, s)
	c.total += s.EstimatedSec
}

// Plan builds the cheapest federated plan for a parsed statement, consulting
// the plan cache first when one is configured. A cache hit returns the
// previously built plan (callers must treat plans as immutable); any change
// to the catalog, the grid links, or any estimator invalidates implicitly
// through the generation vector.
func (o *Optimizer) Plan(stmt *sqlparse.SelectStmt) (*Plan, error) {
	return o.PlanExcludingCtx(context.Background(), stmt, nil)
}

// PlanCtx is Plan with context plumbing: when the context carries an active
// trace span, candidate-costing work records per-(system, operator) spans
// under it.
func (o *Optimizer) PlanCtx(ctx context.Context, stmt *sqlparse.SelectStmt) (*Plan, error) {
	p, _, err := o.PlanCtxHit(ctx, stmt)
	return p, err
}

// PlanCtxHit is PlanCtx additionally reporting whether the plan was served
// from the plan cache — the per-query verdict the wide-event log records.
func (o *Optimizer) PlanCtxHit(ctx context.Context, stmt *sqlparse.SelectStmt) (*Plan, bool, error) {
	return o.planExcludingHit(ctx, stmt, nil)
}

// PlanExcluding is PlanExcludingCtx without tracing.
func (o *Optimizer) PlanExcluding(stmt *sqlparse.SelectStmt, exclude map[string]bool) (*Plan, error) {
	return o.PlanExcludingCtx(context.Background(), stmt, exclude)
}

// PlanExcludingCtx plans a statement avoiding the named systems entirely — no
// operator placement, no transfer endpoint, no table read touches them.
// Tables owned by an excluded system are read from a replica when one is
// linked. Degraded plans bypass the plan cache in both directions: they are
// neither served from it (cached plans assume the full federation) nor
// stored in it (the exclusion is transient — the failed remote is expected
// back). The master cannot be excluded; it anchors every plan.
func (o *Optimizer) PlanExcludingCtx(ctx context.Context, stmt *sqlparse.SelectStmt, exclude map[string]bool) (*Plan, error) {
	p, _, err := o.planExcludingHit(ctx, stmt, exclude)
	return p, err
}

// planExcludingHit is the planning entry point all public variants reduce
// to; the bool reports a plan-cache hit.
func (o *Optimizer) planExcludingHit(ctx context.Context, stmt *sqlparse.SelectStmt, exclude map[string]bool) (*Plan, bool, error) {
	if o.Catalog == nil || o.Grid == nil || o.Estimators == nil || o.Estimators.Len() == 0 {
		return nil, false, fmt.Errorf("optimizer: catalog, grid, and estimators are required")
	}
	if _, ok := o.Estimators.Get(querygrid.Master); !ok {
		return nil, false, fmt.Errorf("optimizer: no estimator registered for the master %q", querygrid.Master)
	}
	if exclude[querygrid.Master] {
		return nil, false, fmt.Errorf("optimizer: the master %q cannot be excluded", querygrid.Master)
	}
	sp := trace.SpanFromContext(ctx)
	if o.Cache == nil || len(exclude) > 0 {
		if sp != nil && len(exclude) > 0 {
			sp.SetAttr("cache", "bypass")
		}
		p, err := o.planUncached(ctx, stmt, exclude)
		return p, false, err
	}
	key := stmt.String()
	gen := o.generation()
	if p, ok := o.Cache.get(key, gen); ok {
		sp.SetAttr("cache", "hit")
		return p, true, nil
	}
	sp.SetAttr("cache", "miss")
	p, err := o.planUncached(ctx, stmt, nil)
	if err != nil {
		return nil, false, err
	}
	o.Cache.put(key, gen, p)
	return p, false, nil
}

// generation sums every input the planner's output depends on: catalog
// contents, grid link configs, the estimator registry, and each estimator's
// own mutation counter. Counters only increase, so any change to any
// component changes the sum.
func (o *Optimizer) generation() uint64 {
	gen := o.Catalog.Generation() + o.Grid.Generation() + o.Estimators.Generation()
	for _, est := range o.Estimators.Snapshot() {
		if v, ok := est.(core.Versioned); ok {
			gen += v.Generation()
		}
	}
	return gen
}

// planUncached runs the full candidate enumeration.
func (o *Optimizer) planUncached(ctx context.Context, stmt *sqlparse.SelectStmt, exclude map[string]bool) (*Plan, error) {
	a, err := analyze(stmt, o.Catalog)
	if err != nil {
		return nil, err
	}
	a.exclude = exclude
	var p *Plan
	switch {
	case len(stmt.Joins) > 0:
		p, err = o.planJoin(ctx, a)
	case stmt.HasAggregates() || len(stmt.GroupBy) > 0:
		p, err = o.planAgg(ctx, a)
	default:
		p, err = o.planScan(ctx, a)
	}
	if err != nil {
		return nil, err
	}
	if len(exclude) > 0 {
		p.Excluded = make([]string, 0, len(exclude))
		for s := range exclude {
			p.Excluded = append(p.Excluded, s)
		}
		sort.Strings(p.Excluded)
	}
	return o.finishPlan(stmt, p)
}

// finishPlan appends the final ORDER BY sort (executed on the master, where
// the result lands) and applies the LIMIT row cap to the plan metadata.
func (o *Optimizer) finishPlan(stmt *sqlparse.SelectStmt, p *Plan) (*Plan, error) {
	if len(stmt.OrderBy) > 0 {
		sec := o.masterSortCost(p.OutputRows, p.OutputRowSize)
		p.Steps = append(p.Steps, Step{Kind: "sort", System: querygrid.Master,
			Rows: p.OutputRows, RowSize: p.OutputRowSize, EstimatedSec: sec})
		p.EstimatedSec += sec
	}
	if stmt.Limit > 0 && p.OutputRows > float64(stmt.Limit) {
		p.OutputRows = float64(stmt.Limit)
	}
	return p, nil
}

// masterSortCost prices the final sort with the master's learned sub-op
// models when available, falling back to a coarse analytic estimate.
func (o *Optimizer) masterSortCost(rows, rowSize float64) float64 {
	if est, ok := o.Estimators.Get(querygrid.Master); ok {
		if sub, ok := est.(*subop.Estimator); ok && sub.Models != nil {
			return sub.Models.SortOnlyCost(rows, rowSize)
		}
	}
	return 0.05 + rows*2e-7
}

// estimator returns the cost estimator for a system.
func (o *Optimizer) estimator(system string) (core.Estimator, error) {
	e, ok := o.Estimators.Get(system)
	if !ok {
		return nil, fmt.Errorf("optimizer: no cost estimator registered for system %q", system)
	}
	return e, nil
}

// transferStep builds a transfer step (nil when src == dst).
func (o *Optimizer) transferStep(from, to string, rows, rowSize float64) (*Step, error) {
	if from == to {
		return nil, nil
	}
	sec, err := o.Grid.TransferCost(from, to, rows, rowSize)
	if err != nil {
		return nil, err
	}
	return &Step{Kind: "transfer", From: from, System: to, Rows: rows, RowSize: rowSize, EstimatedSec: sec}, nil
}

// pickBest selects the cheapest candidate and formats the rest as
// alternatives.
func pickBest(cands []candidate, outRows, outSize float64) *Plan {
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].total < cands[j].total })
	best := cands[0]
	p := &Plan{Steps: best.steps, EstimatedSec: best.total, OutputRows: outRows, OutputRowSize: outSize}
	for _, c := range cands[1:] {
		p.Alternatives = append(p.Alternatives, Alternative{Description: c.desc, EstimatedSec: c.total})
	}
	return p
}

// scanInput is everything a scan placement sweep needs, shared between the
// single-statement path and the grouped batch path.
type scanInput struct {
	owner   string
	rows    float64 // base table cardinality
	rowSize float64
	sel     float64
	proj    float64
	spec    plan.ScanSpec
	systems []string // candidate placements, in sweep order
}

// scanInputFor derives the scan spec and its candidate placements.
func (o *Optimizer) scanInputFor(a *analyzed) (scanInput, error) {
	b := a.order[0]
	t := a.bindings[b]
	owner, err := a.systemOf(b)
	if err != nil {
		return scanInput{}, err
	}
	sel, err := a.sideSelectivity(b)
	if err != nil {
		return scanInput{}, err
	}
	proj, err := a.projectedSize(b)
	if err != nil {
		return scanInput{}, err
	}
	return scanInput{
		owner:   owner,
		rows:    float64(t.Rows),
		rowSize: float64(t.RowSize()),
		sel:     sel,
		proj:    proj,
		spec: plan.ScanSpec{
			InputRows:     float64(t.Rows),
			InputRowSize:  float64(t.RowSize()),
			Selectivity:   sel,
			OutputRowSize: proj,
		},
		systems: a.placements(owner),
	}, nil
}

// scanCandidate assembles the placement candidate for sys around an
// already-computed scan estimate.
func (o *Optimizer) scanCandidate(in scanInput, sys string, ce core.Estimate) (candidate, error) {
	c := candidate{desc: fmt.Sprintf("scan on %s", sys)}
	if sys != in.owner {
		// Ship the (filtered, thanks to QueryGrid pushdown) table first.
		sec, err := o.Grid.TransferCostFiltered(in.owner, sys, in.rows, in.rowSize, in.sel)
		if err != nil {
			return candidate{}, err
		}
		c.add(Step{Kind: "transfer", From: in.owner, System: sys,
			Rows: in.rows * in.sel, RowSize: in.rowSize, EstimatedSec: sec})
	}
	spec := in.spec
	c.add(Step{Kind: "scan", System: sys, Scan: &spec, EstimatedSec: ce.Seconds, Estimate: ce})
	// Final result must land on the master.
	if ts, err := o.transferStep(sys, querygrid.Master, in.spec.OutputRows(), in.proj); err != nil {
		return candidate{}, err
	} else if ts != nil {
		c.add(*ts)
	}
	return c, nil
}

// costSpan opens one candidate-costing span (nil on untraced contexts) and
// annotates it with the placement being priced.
func costSpan(ctx context.Context, operator, system string) *trace.Span {
	_, sp := trace.Start(ctx, "cost")
	if sp != nil {
		sp.SetSystem(system)
		sp.SetAttr("operator", operator)
	}
	return sp
}

// endCostSpan closes a costing span with the estimate it produced.
func endCostSpan(sp *trace.Span, ce core.Estimate, err error) {
	if sp == nil {
		return
	}
	if err == nil {
		sp.SetAttr("approach", string(ce.Approach))
		sp.SetFloat("estimated_sec", ce.Seconds)
	}
	sp.EndErr(err)
}

// planScan places a single-table filter/project.
func (o *Optimizer) planScan(ctx context.Context, a *analyzed) (*Plan, error) {
	in, err := o.scanInputFor(a)
	if err != nil {
		return nil, err
	}
	// Every placement is costed independently (estimators are safe for
	// concurrent use), so candidates fan out across the worker pool; the
	// ordered results keep plan selection identical to a serial sweep.
	cands, err := parallel.MapN(o.Workers, len(in.systems), func(i int) (candidate, error) {
		sys := in.systems[i]
		est, err := o.estimator(sys)
		if err != nil {
			return candidate{}, err
		}
		sp := costSpan(ctx, "scan", sys)
		ce, err := est.EstimateScan(in.spec)
		endCostSpan(sp, ce, err)
		if err != nil {
			return candidate{}, fmt.Errorf("optimizer: scan estimate on %q: %w", sys, err)
		}
		return o.scanCandidate(in, sys, ce)
	})
	if err != nil {
		return nil, err
	}
	return pickBest(cands, in.spec.OutputRows(), in.proj), nil
}

// placements enumerates candidate systems for an operator over inputs owned
// by the given systems: every distinct non-excluded owner plus the master
// (which is never excluded).
func (a *analyzed) placements(owners ...string) []string {
	seen := map[string]bool{}
	var out []string
	for _, s := range append(owners, querygrid.Master) {
		if !seen[s] && !a.exclude[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

// aggInput is everything an aggregation placement sweep needs, shared
// between the single-statement path and the grouped batch path.
type aggInput struct {
	owner   string
	rows    float64 // base table cardinality (pre-filter)
	rowSize float64
	sel     float64
	spec    plan.AggSpec
	systems []string
}

// aggInputFor derives the aggregation spec and its candidate placements.
func (o *Optimizer) aggInputFor(a *analyzed) (aggInput, error) {
	b := a.order[0]
	t := a.bindings[b]
	owner, err := a.systemOf(b)
	if err != nil {
		return aggInput{}, err
	}
	sel, err := a.sideSelectivity(b)
	if err != nil {
		return aggInput{}, err
	}
	inRows := float64(t.Rows) * sel
	if inRows < 1 {
		inRows = 1
	}
	outRows, err := a.groupOutputRows(inRows)
	if err != nil {
		return aggInput{}, err
	}
	outSize, numAggs, err := a.aggOutputRowSize()
	if err != nil {
		return aggInput{}, err
	}
	return aggInput{
		owner:   owner,
		rows:    float64(t.Rows),
		rowSize: float64(t.RowSize()),
		sel:     sel,
		spec: plan.AggSpec{
			InputRows:     inRows,
			InputRowSize:  float64(t.RowSize()),
			OutputRows:    outRows,
			OutputRowSize: outSize,
			NumAggregates: numAggs,
		},
		systems: a.placements(owner),
	}, nil
}

// aggCandidate assembles the placement candidate for sys around an
// already-computed aggregation estimate.
func (o *Optimizer) aggCandidate(in aggInput, sys string, ce core.Estimate) (candidate, error) {
	c := candidate{desc: fmt.Sprintf("aggregation on %s", sys)}
	if sys != in.owner {
		sec, err := o.Grid.TransferCostFiltered(in.owner, sys, in.rows, in.rowSize, in.sel)
		if err != nil {
			return candidate{}, err
		}
		c.add(Step{Kind: "transfer", From: in.owner, System: sys,
			Rows: in.spec.InputRows, RowSize: in.rowSize, EstimatedSec: sec})
	}
	spec := in.spec
	c.add(Step{Kind: "aggregation", System: sys, Agg: &spec, EstimatedSec: ce.Seconds, Estimate: ce})
	if ts, err := o.transferStep(sys, querygrid.Master, in.spec.OutputRows, in.spec.OutputRowSize); err != nil {
		return candidate{}, err
	} else if ts != nil {
		c.add(*ts)
	}
	return c, nil
}

// planAgg places a single-table aggregation.
func (o *Optimizer) planAgg(ctx context.Context, a *analyzed) (*Plan, error) {
	in, err := o.aggInputFor(a)
	if err != nil {
		return nil, err
	}
	cands, err := parallel.MapN(o.Workers, len(in.systems), func(i int) (candidate, error) {
		sys := in.systems[i]
		est, err := o.estimator(sys)
		if err != nil {
			return candidate{}, err
		}
		sp := costSpan(ctx, "aggregation", sys)
		ce, err := est.EstimateAgg(in.spec)
		endCostSpan(sp, ce, err)
		if err != nil {
			return candidate{}, fmt.Errorf("optimizer: aggregation estimate on %q: %w", sys, err)
		}
		return o.aggCandidate(in, sys, ce)
	})
	if err != nil {
		return nil, err
	}
	return pickBest(cands, in.spec.OutputRows, in.spec.OutputRowSize), nil
}

// joinStep is one resolved left-deep join: the new table's binding, its
// join column, and the earlier binding/column it probes (empty for CROSS).
type joinStep struct {
	newBinding string
	newCol     string
	probeBind  string
	probeCol   string
	cross      bool
}

// resolveJoins validates the join chain: every non-cross condition must
// reference the newly joined table on one side and an already-available
// binding on the other.
func (a *analyzed) resolveJoins() ([]joinStep, error) {
	steps := make([]joinStep, 0, len(a.stmt.Joins))
	available := map[string]bool{a.order[0]: true}
	for i := range a.stmt.Joins {
		j := &a.stmt.Joins[i]
		nb := a.order[i+1]
		st := joinStep{newBinding: nb, cross: j.Cross}
		if !j.Cross {
			lb, lcol, err := a.resolve(j.Left)
			if err != nil {
				return nil, err
			}
			rb, rcol, err := a.resolve(j.Right)
			if err != nil {
				return nil, err
			}
			switch {
			case lb == nb && available[rb]:
				st.newCol, st.probeBind, st.probeCol = lcol.Name, rb, rcol.Name
			case rb == nb && available[lb]:
				st.newCol, st.probeBind, st.probeCol = rcol.Name, lb, lcol.Name
			default:
				return nil, fmt.Errorf("optimizer: join %d condition %s = %s must link %q to an earlier table",
					i+1, j.Left, j.Right, nb)
			}
		}
		available[nb] = true
		steps = append(steps, st)
	}
	return steps, nil
}

// planJoin places a left-deep join chain (with optional aggregation on
// top). Each join is placed greedily on the system minimizing the step's
// transfers plus estimated execution; intermediate results stay where they
// were produced until a cheaper placement pulls them (Section 2's "results
// ... may remain on that remote system for further computations").
func (o *Optimizer) planJoin(ctx context.Context, a *analyzed) (*Plan, error) {
	steps, err := a.resolveJoins()
	if err != nil {
		return nil, err
	}
	base := a.order[0]
	baseCol := ""
	if len(steps) > 0 && steps[0].probeBind == base {
		baseCol = steps[0].probeCol
	}
	cur, err := a.side(base, baseCol)
	if err != nil {
		return nil, err
	}
	curLoc, err := a.systemOf(base)
	if err != nil {
		return nil, err
	}
	curBase := base // non-empty while the intermediate is still a base table
	p := &Plan{}

	applied := make([]bool, len(a.stmt.Where))
	available := map[string]bool{base: true}

	for i, st := range steps {
		nxt, err := a.side(st.newBinding, st.newCol)
		if err != nil {
			return nil, err
		}
		nxtOwner, err := a.systemOf(st.newBinding)
		if err != nil {
			return nil, err
		}

		// The probe side's key statistics: NDV of the probe column on its
		// base table, capped by the intermediate cardinality.
		left := cur
		if st.probeBind != "" && st.probeBind != curBase {
			ndv, err := a.bindings[st.probeBind].NDV(st.probeCol)
			if err != nil {
				return nil, err
			}
			left.KeyNDV = math.Min(ndv, cur.Rows)
			left.PartitionedOn, left.SortedOn = false, false
		}

		// Output cardinality.
		var outRows float64
		if st.cross {
			outRows = left.Rows * nxt.Rows
		} else {
			maxNDV := math.Max(left.KeyNDV, nxt.KeyNDV)
			if maxNDV < 1 {
				maxNDV = 1
			}
			outRows = left.Rows * nxt.Rows / maxNDV
		}
		// Cross-table predicates become applicable once all their tables
		// are joined in.
		available[st.newBinding] = true
		minNDV := math.Min(left.KeyNDV, nxt.KeyNDV)
		for pi, pred := range a.stmt.Where {
			if applied[pi] {
				continue
			}
			tabs, err := a.predicateTables(pred)
			if err != nil {
				return nil, err
			}
			if len(tabs) < 2 {
				continue
			}
			all := true
			for b := range tabs {
				if !available[b] {
					all = false
					break
				}
			}
			if !all {
				continue
			}
			sel, err := a.predicateSelectivity(pred, minNDV)
			if err != nil {
				return nil, err
			}
			outRows *= sel
			applied[pi] = true
		}
		if outRows < 1 {
			outRows = 1
		}
		spec := plan.JoinSpec{Left: left, Right: nxt, OutputRows: outRows, Cartesian: st.cross}
		if err := spec.Validate(); err != nil {
			return nil, fmt.Errorf("optimizer: join %d spec: %w", i+1, err)
		}

		// Greedy placement of this join step: cost every candidate system
		// concurrently, then select from the ordered results exactly as a
		// serial sweep would (first-seen wins cost ties).
		type option struct {
			sys   string
			steps []Step
			cost  float64
		}
		systems := a.placements(curLoc, nxtOwner)
		options, err := parallel.MapN(o.Workers, len(systems), func(oi int) (option, error) {
			sys := systems[oi]
			est, err := o.estimator(sys)
			if err != nil {
				return option{}, err
			}
			opt := option{sys: sys}
			if sys != curLoc {
				sec, terr := o.shipInput(curLoc, sys, curBase, a, left)
				if terr != nil {
					return option{}, terr
				}
				opt.steps = append(opt.steps, Step{Kind: "transfer", From: curLoc, System: sys,
					Rows: left.Rows, RowSize: left.RowSize, EstimatedSec: sec})
				opt.cost += sec
			}
			if sys != nxtOwner {
				sec, terr := o.shipInput(nxtOwner, sys, st.newBinding, a, nxt)
				if terr != nil {
					return option{}, terr
				}
				opt.steps = append(opt.steps, Step{Kind: "transfer", From: nxtOwner, System: sys,
					Rows: nxt.Rows, RowSize: nxt.RowSize, EstimatedSec: sec})
				opt.cost += sec
			}
			sp := costSpan(ctx, "join", sys)
			sp.SetInt("join", i+1)
			ce, err := est.EstimateJoin(spec)
			endCostSpan(sp, ce, err)
			if err != nil {
				return option{}, fmt.Errorf("optimizer: join estimate on %q: %w", sys, err)
			}
			specCopy := spec
			opt.steps = append(opt.steps, Step{Kind: "join", System: sys, Join: &specCopy,
				EstimatedSec: ce.Seconds, Estimate: ce})
			opt.cost += ce.Seconds
			return opt, nil
		})
		if err != nil {
			return nil, err
		}
		var best *option
		var rejected []option
		for oi := range options {
			opt := options[oi]
			if best == nil || opt.cost < best.cost {
				if best != nil {
					rejected = append(rejected, *best)
				}
				best = &opt
			} else {
				rejected = append(rejected, opt)
			}
		}
		p.Steps = append(p.Steps, best.steps...)
		p.EstimatedSec += best.cost
		for _, r := range rejected {
			p.Alternatives = append(p.Alternatives, Alternative{
				Description:  fmt.Sprintf("join %d on %s", i+1, r.sys),
				EstimatedSec: p.EstimatedSec - best.cost + r.cost,
			})
		}

		// The intermediate result: projected attributes of both inputs.
		cur = plan.TableSide{
			Rows:          outRows,
			RowSize:       spec.OutputRowSize(),
			ProjectedSize: spec.OutputRowSize(),
			KeyNDV:        outRows,
		}
		curLoc = best.sys
		curBase = ""
	}

	finalRows, finalSize := cur.Rows, cur.RowSize
	if a.stmt.HasAggregates() || len(a.stmt.GroupBy) > 0 {
		aggRows, err := a.groupOutputRows(cur.Rows)
		if err != nil {
			return nil, err
		}
		aggSize, numAggs, err := a.aggOutputRowSize()
		if err != nil {
			return nil, err
		}
		aggSpec := plan.AggSpec{
			InputRows: cur.Rows, InputRowSize: cur.RowSize,
			OutputRows: aggRows, OutputRowSize: aggSize, NumAggregates: numAggs,
		}
		est, err := o.estimator(curLoc)
		if err != nil {
			return nil, err
		}
		sp := costSpan(ctx, "aggregation", curLoc)
		ace, err := est.EstimateAgg(aggSpec)
		endCostSpan(sp, ace, err)
		if err != nil {
			return nil, fmt.Errorf("optimizer: post-join aggregation on %q: %w", curLoc, err)
		}
		p.Steps = append(p.Steps, Step{Kind: "aggregation", System: curLoc, Agg: &aggSpec,
			EstimatedSec: ace.Seconds, Estimate: ace})
		p.EstimatedSec += ace.Seconds
		finalRows, finalSize = aggRows, aggSize
	}
	if ts, err := o.transferStep(curLoc, querygrid.Master, finalRows, finalSize); err != nil {
		return nil, err
	} else if ts != nil {
		p.Steps = append(p.Steps, *ts)
		p.EstimatedSec += ts.EstimatedSec
	}
	sort.SliceStable(p.Alternatives, func(x, y int) bool {
		return p.Alternatives[x].EstimatedSec < p.Alternatives[y].EstimatedSec
	})
	p.OutputRows, p.OutputRowSize = finalRows, finalSize
	return p, nil
}

// shipInput prices moving one join input to sys: base tables ship with
// QueryGrid predicate pushdown applied to their single-table filters;
// intermediates ship at full volume.
func (o *Optimizer) shipInput(from, to, binding string, a *analyzed, side plan.TableSide) (float64, error) {
	if binding != "" {
		t := a.bindings[binding]
		sel, err := a.sideSelectivity(binding)
		if err != nil {
			return 0, err
		}
		return o.Grid.TransferCostFiltered(from, to, float64(t.Rows), float64(t.RowSize()), sel)
	}
	return o.Grid.TransferCost(from, to, side.Rows, side.RowSize)
}
