package optimizer

import (
	"sync"
	"sync/atomic"
)

// PlanCache is a sharded, generation-stamped cache of finished plans keyed by
// normalized statement shape. Each entry records the generation vector sum
// (catalog + grid + estimator registry + per-estimator generations) observed
// when the plan was built; a lookup whose current generation differs treats
// the entry as stale and evicts it, so RegisterTable, InstallLogicalModels,
// Switch, TuneSystem, and link recalibration all invalidate implicitly — no
// explicit purge calls are threaded through the engine.
//
// The warm hit path is contention-free: the key is hashed to one of up to
// planCacheMaxShards shards, each shard publishes an immutable copy-on-write
// map behind an atomic pointer, and recency is a CLOCK access bit (an
// atomic.Bool set on hit, checked first so repeated hits on a hot entry do
// not even dirty the cache line). No lock is taken and no shared list is
// mutated on a hit; the per-shard mutex serializes only inserts, stale
// evictions, and Purge. Stats is likewise lock-free (per-shard atomic
// counters plus the published map sizes), so admin/metrics scrapes never
// block lookups.
//
// Cached *Plan values are shared across callers and must be treated as
// immutable; every consumer in this repo only reads them.
type PlanCache struct {
	cap    int // total capacity across shards
	mask   uint64
	shards []planShard
}

const (
	// planCacheMaxShards bounds the shard fan-out. 16 shards is enough to
	// spread inserts across the core counts this repo targets while keeping
	// Stats cheap.
	planCacheMaxShards = 16
	// planCacheMinPerShard keeps shards from becoming so small that the
	// CLOCK ring degenerates to direct-mapped behaviour; small caches stay
	// single-sharded, which also preserves the exact whole-cache eviction
	// order the LRU tests pin.
	planCacheMinPerShard = 16
)

// planShard is one independent slice of the cache. Counters are per-shard
// atomics summed by Stats; the trailing pad keeps one shard's hot counters
// off its neighbour's cache lines.
type planShard struct {
	m atomic.Pointer[map[string]*planEntry] // published read view, copy-on-write

	hits    atomic.Uint64
	misses  atomic.Uint64
	stale   atomic.Uint64
	evicted atomic.Uint64

	mu    sync.Mutex
	cap   int
	ring  []*planEntry // CLOCK ring; holes (nil) left by stale eviction
	holes []int        // free ring slots
	hand  int

	_ [64]byte
}

// planEntry is immutable once published except for the CLOCK access bit
// (lock-free) and the ring slot index (guarded by the shard mutex). put
// replaces an entry wholesale rather than mutating it in place, so readers
// holding an old map snapshot always see a consistent (key, gen, plan)
// triple.
type planEntry struct {
	key  string
	gen  uint64
	plan *Plan
	slot int
	ref  atomic.Bool
}

// NewPlanCache builds a cache bounded to capacity entries. Capacity ≤ 0
// selects the default of 256. The shard count is the largest power of two
// ≤ planCacheMaxShards that still leaves every shard planCacheMinPerShard
// entries, so tiny caches (and the eviction-order tests that exercise them)
// run single-sharded.
func NewPlanCache(capacity int) *PlanCache {
	if capacity <= 0 {
		capacity = 256
	}
	n := 1
	for n*2 <= planCacheMaxShards && capacity/(n*2) >= planCacheMinPerShard {
		n *= 2
	}
	c := &PlanCache{cap: capacity, mask: uint64(n - 1), shards: make([]planShard, n)}
	per := (capacity + n - 1) / n
	for i := range c.shards {
		sh := &c.shards[i]
		sh.cap = per
		m := make(map[string]*planEntry)
		sh.m.Store(&m)
	}
	return c
}

// shard maps a key to its shard. The hash only has to spread statements
// across ≤16 shards (a skewed spread costs eviction balance, never
// correctness), so instead of hashing the whole key it FNV-mixes the length
// with 16 bytes sampled at a stride — normalized SQL texts differ in table
// names, predicates, and limits scattered through the string, which the
// stride picks up at a fraction of a full-string hash's cost on the hit
// path.
func (c *PlanCache) shard(key string) *planShard {
	if c.mask == 0 {
		return &c.shards[0]
	}
	h := uint64(14695981039346656037) ^ uint64(len(key))
	step := len(key)/16 + 1
	for i := 0; i < len(key); i += step {
		h = (h ^ uint64(key[i])) * 1099511628211
	}
	return &c.shards[(h^h>>32)&c.mask]
}

// get returns the cached plan for key when present and built at the current
// generation. Stale entries are evicted on sight. The hit path performs no
// locking and no shared-structure mutation beyond (at most) one access-bit
// store.
func (c *PlanCache) get(key string, gen uint64) (*Plan, bool) {
	sh := c.shard(key)
	ent, ok := (*sh.m.Load())[key]
	if !ok {
		sh.misses.Add(1)
		return nil, false
	}
	if ent.gen != gen {
		sh.dropStale(ent)
		sh.stale.Add(1)
		sh.misses.Add(1)
		return nil, false
	}
	if !ent.ref.Load() { // check-then-set: hot entries stop dirtying the line
		ent.ref.Store(true)
	}
	sh.hits.Add(1)
	return ent.plan, true
}

// dropStale removes ent from the shard if it is still the published entry
// for its key. Racing callers may both observe the same stale entry; only
// the first removal mutates the shard, so counters stay exact per lookup.
func (sh *planShard) dropStale(ent *planEntry) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	cur := *sh.m.Load()
	if cur[ent.key] != ent {
		return // already replaced or removed by a racing put/evict
	}
	next := make(map[string]*planEntry, len(cur))
	for k, v := range cur {
		if k != ent.key {
			next[k] = v
		}
	}
	sh.m.Store(&next)
	sh.ring[ent.slot] = nil
	sh.holes = append(sh.holes, ent.slot)
}

// put installs a plan built at the given generation, evicting via CLOCK
// second-chance when the shard is full: the hand skips (and clears) entries
// whose access bit is set, evicting the first cold entry it finds — the
// MoveToFront-free analogue of LRU eviction.
func (c *PlanCache) put(key string, gen uint64, p *Plan) {
	sh := c.shard(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	cur := *sh.m.Load()
	ne := &planEntry{key: key, gen: gen, plan: p}
	if old, ok := cur[key]; ok {
		// Replace in place: reuse the ring slot, publish a fresh entry so
		// concurrent readers never see a half-updated (gen, plan) pair.
		ne.slot = old.slot
		ne.ref.Store(old.ref.Load())
		sh.ring[old.slot] = ne
		sh.publishWith(cur, ne, "")
		return
	}
	switch {
	case len(sh.holes) > 0:
		ne.slot = sh.holes[len(sh.holes)-1]
		sh.holes = sh.holes[:len(sh.holes)-1]
		sh.ring[ne.slot] = ne
	case len(sh.ring) < sh.cap:
		ne.slot = len(sh.ring)
		sh.ring = append(sh.ring, ne)
	default:
		// CLOCK sweep: terminates within two passes — the first pass clears
		// every set access bit, so the second pass must find a victim.
		for {
			v := sh.ring[sh.hand]
			if v.ref.Load() {
				v.ref.Store(false)
				sh.hand = (sh.hand + 1) % len(sh.ring)
				continue
			}
			ne.slot = sh.hand
			sh.ring[sh.hand] = ne
			sh.hand = (sh.hand + 1) % len(sh.ring)
			sh.evicted.Add(1)
			sh.publishWith(cur, ne, v.key)
			return
		}
	}
	sh.publishWith(cur, ne, "")
}

// publishWith stores a copy of cur with ne added (replacing its key) and
// drop removed (when non-empty). Callers hold sh.mu.
func (sh *planShard) publishWith(cur map[string]*planEntry, ne *planEntry, drop string) {
	next := make(map[string]*planEntry, len(cur)+1)
	for k, v := range cur {
		if k != drop {
			next[k] = v
		}
	}
	next[ne.key] = ne
	sh.m.Store(&next)
}

// Purge drops every entry (statistics are kept). Each shard is cleared
// independently under its own mutex, so lookups on other shards — and
// lock-free hits on this one until its empty map is published — are never
// stalled behind a global stop-the-world.
func (c *PlanCache) Purge() {
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		m := make(map[string]*planEntry)
		sh.m.Store(&m)
		sh.ring = sh.ring[:0]
		sh.holes = sh.holes[:0]
		sh.hand = 0
		sh.mu.Unlock()
	}
}

// CacheStats is a point-in-time snapshot of cache effectiveness.
type CacheStats struct {
	Size     int     `json:"size"`
	Capacity int     `json:"capacity"`
	Hits     uint64  `json:"hits"`
	Misses   uint64  `json:"misses"`
	Stale    uint64  `json:"stale"`
	Evicted  uint64  `json:"evicted"`
	HitRate  float64 `json:"hit_rate"`
}

// Stats reports the cache counters. It is lock-free: sizes come from the
// published per-shard maps and counters from per-shard atomics, so scrapes
// never block the hot path. Concurrent mutation can skew Size by in-flight
// operations, but the counters themselves are exact (every lookup increments
// exactly one of hits/misses).
func (c *PlanCache) Stats() CacheStats {
	s := CacheStats{Capacity: c.cap}
	for i := range c.shards {
		sh := &c.shards[i]
		s.Size += len(*sh.m.Load())
		s.Hits += sh.hits.Load()
		s.Misses += sh.misses.Load()
		s.Stale += sh.stale.Load()
		s.Evicted += sh.evicted.Load()
	}
	if total := s.Hits + s.Misses; total > 0 {
		s.HitRate = float64(s.Hits) / float64(total)
	}
	return s
}
