package optimizer

import (
	"container/list"
	"sync"
)

// PlanCache is an LRU cache of finished plans keyed by normalized statement
// shape. Each entry records the generation vector sum (catalog + grid +
// estimator registry + per-estimator generations) observed when the plan was
// built; a lookup whose current generation differs treats the entry as stale
// and evicts it, so RegisterTable, InstallLogicalModels, Switch, TuneSystem,
// and link recalibration all invalidate implicitly — no explicit purge calls
// are threaded through the engine.
//
// Cached *Plan values are shared across callers and must be treated as
// immutable; every consumer in this repo only reads them.
type PlanCache struct {
	mu      sync.Mutex
	cap     int
	ll      *list.List // front = most recently used
	entries map[string]*list.Element

	hits, misses, stale, evicted uint64
}

type cacheEntry struct {
	key  string
	gen  uint64
	plan *Plan
}

// NewPlanCache builds a cache bounded to capacity entries. Capacity ≤ 0
// selects the default of 256.
func NewPlanCache(capacity int) *PlanCache {
	if capacity <= 0 {
		capacity = 256
	}
	return &PlanCache{cap: capacity, ll: list.New(), entries: make(map[string]*list.Element)}
}

// get returns the cached plan for key when present and built at the current
// generation. Stale entries are evicted on sight.
func (c *PlanCache) get(key string, gen uint64) (*Plan, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	ent := el.Value.(*cacheEntry)
	if ent.gen != gen {
		c.ll.Remove(el)
		delete(c.entries, key)
		c.stale++
		c.misses++
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.hits++
	return ent.plan, true
}

// put installs a plan built at the given generation, evicting the least
// recently used entry when the cache is full.
func (c *PlanCache) put(key string, gen uint64, p *Plan) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		ent := el.Value.(*cacheEntry)
		ent.gen, ent.plan = gen, p
		c.ll.MoveToFront(el)
		return
	}
	c.entries[key] = c.ll.PushFront(&cacheEntry{key: key, gen: gen, plan: p})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
		c.evicted++
	}
}

// Purge drops every entry (statistics are kept).
func (c *PlanCache) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	c.entries = make(map[string]*list.Element)
}

// CacheStats is a point-in-time snapshot of cache effectiveness.
type CacheStats struct {
	Size     int     `json:"size"`
	Capacity int     `json:"capacity"`
	Hits     uint64  `json:"hits"`
	Misses   uint64  `json:"misses"`
	Stale    uint64  `json:"stale"`
	Evicted  uint64  `json:"evicted"`
	HitRate  float64 `json:"hit_rate"`
}

// Stats reports the cache counters.
func (c *PlanCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := CacheStats{
		Size: c.ll.Len(), Capacity: c.cap,
		Hits: c.hits, Misses: c.misses, Stale: c.stale, Evicted: c.evicted,
	}
	if total := s.Hits + s.Misses; total > 0 {
		s.HitRate = float64(s.Hits) / float64(total)
	}
	return s
}
