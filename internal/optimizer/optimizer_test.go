package optimizer

import (
	"strings"
	"testing"

	"intellisphere/internal/catalog"
	"intellisphere/internal/cluster"
	"intellisphere/internal/core"
	"intellisphere/internal/core/subop"
	"intellisphere/internal/datagen"
	"intellisphere/internal/querygrid"
	"intellisphere/internal/registry"
	"intellisphere/internal/remote"
	"intellisphere/internal/sqlparse"
)

// fixture builds a two-remote federation: Figure 10 tables on "hive", a few
// on "spark", plus master-resident copies, with sub-op estimators for all
// three systems.
type fixture struct {
	cat *catalog.Catalog
	opt *Optimizer
}

func newFixture(t testing.TB) *fixture {
	t.Helper()
	cat := catalog.New()
	if err := datagen.Register(cat, "hive"); err != nil {
		t.Fatal(err)
	}
	// A couple of spark-owned and master-owned tables.
	for _, spec := range []struct {
		rows   int64
		size   int
		system string
		rename string
	}{
		{1000000, 100, "spark", "s_orders"},
		{100000, 100, "spark", "s_items"},
		{50000, 100, "", "local_dim"},
	} {
		tb, err := datagen.Table(spec.rows, spec.size, spec.system)
		if err != nil {
			t.Fatal(err)
		}
		tb.Name = spec.rename
		if err := cat.Register(tb); err != nil {
			t.Fatal(err)
		}
	}

	hive, err := remote.NewHive("hive", cluster.DefaultHive(), remote.Options{NoiseAmp: 0.01, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	spark, err := remote.NewSpark("spark", cluster.DefaultHive(), remote.Options{NoiseAmp: 0.01, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	tdCfg := cluster.Config{Name: "teradata", Nodes: 2, DataNodes: 2, CoresPerNode: 8,
		MemoryPerNode: 64 << 30, DFSBlockBytes: 64 << 20, Replication: 1, MemoryFraction: 0.5}
	td, err := remote.NewRDBMS(querygrid.Master, tdCfg, remote.Options{NoiseAmp: 0.01, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}

	estimators := registry.New[core.Estimator]()
	for name, sys := range map[string]remote.System{"hive": hive, "spark": spark, querygrid.Master: td} {
		ms, _, err := subop.Train(sys, subop.TrainConfig{})
		if err != nil {
			t.Fatalf("train %s: %v", name, err)
		}
		kind := remote.EngineHive
		if name == "spark" {
			kind = remote.EngineSpark
		}
		est, err := subop.NewEstimator(ms, kind, subop.InHouseComparable)
		if err != nil {
			t.Fatal(err)
		}
		estimators.Set(name, est)
	}
	grid, err := querygrid.New(querygrid.DefaultLink())
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{cat: cat, opt: &Optimizer{Catalog: cat, Grid: grid, Estimators: estimators}}
}

func (f *fixture) plan(t *testing.T, sql string) *Plan {
	t.Helper()
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	p, err := f.opt.Plan(stmt)
	if err != nil {
		t.Fatalf("Plan(%q): %v", sql, err)
	}
	return p
}

func TestPlanScanStaysOnOwner(t *testing.T) {
	f := newFixture(t)
	// 80 GB unfiltered: QueryGrid pushdown cannot shrink the transfer, so
	// shipping the table to the master would cost minutes; the scan must
	// run on hive with only the projected result transferred back.
	p := f.plan(t, "SELECT a1 FROM t80000000_1000 WHERE a1 < 60000000")
	var scanSys string
	for _, s := range p.Steps {
		if s.Kind == "scan" {
			scanSys = s.System
		}
	}
	if scanSys != "hive" {
		t.Errorf("scan placed on %q, want hive\n%s", scanSys, p.Explain())
	}
	if p.EstimatedSec <= 0 || len(p.Alternatives) == 0 {
		t.Errorf("plan = %+v", p)
	}
}

func TestPlanScanSelectivityFlowsToOutput(t *testing.T) {
	f := newFixture(t)
	p := f.plan(t, "SELECT a1 FROM t1000000_100 WHERE a1 < 250000")
	// a1 is unique on 1e6 rows: threshold 250000 keeps 25%.
	if p.OutputRows < 2e5 || p.OutputRows > 3e5 {
		t.Errorf("output rows = %v, want ≈250000", p.OutputRows)
	}
}

func TestPlanAggregationOnOwner(t *testing.T) {
	// 80M × 500 B = 40 GB: shipping the table to the master would cost
	// minutes of transfer, so the aggregation must stay on hive.
	f := newFixture(t)
	p := f.plan(t, "SELECT a10, SUM(a1), SUM(a2) FROM t80000000_500 GROUP BY a10")
	var aggStep *Step
	for i := range p.Steps {
		if p.Steps[i].Kind == "aggregation" {
			aggStep = &p.Steps[i]
		}
	}
	if aggStep == nil {
		t.Fatalf("no aggregation step\n%s", p.Explain())
	}
	if aggStep.System != "hive" {
		t.Errorf("aggregation on %q, want hive", aggStep.System)
	}
	if aggStep.Agg.NumAggregates != 2 {
		t.Errorf("aggregate count = %d, want 2", aggStep.Agg.NumAggregates)
	}
	// Group by a10 on 8e7 rows → 8e6 groups.
	if aggStep.Agg.OutputRows != 8e6 {
		t.Errorf("output rows = %v, want 8e6", aggStep.Agg.OutputRows)
	}
}

func TestPlanJoinCoLocated(t *testing.T) {
	// 80M × 1000 B = 80 GB on hive: shipping it anywhere dwarfs executing
	// in place, so the join must stay on hive with only the result moving.
	f := newFixture(t)
	p := f.plan(t, "SELECT r.a1, s.a1 FROM t80000000_1000 r JOIN t1000000_100 s ON r.a1 = s.a1 WHERE r.a1 + s.z < 500000")
	var joinStep *Step
	transfers := 0
	for i := range p.Steps {
		switch p.Steps[i].Kind {
		case "join":
			joinStep = &p.Steps[i]
		case "transfer":
			transfers++
		}
	}
	if joinStep == nil {
		t.Fatal("no join step")
	}
	if joinStep.System != "hive" {
		t.Errorf("co-located join placed on %q, want hive\n%s", joinStep.System, p.Explain())
	}
	// Figure 10 semantics: threshold 500000 on a 1e6-row subset side → 50%.
	if joinStep.Join.OutputRows < 4e5 || joinStep.Join.OutputRows > 6e5 {
		t.Errorf("join output = %v, want ≈5e5", joinStep.Join.OutputRows)
	}
	// Both inputs already on hive: only the result moves.
	if transfers != 1 {
		t.Errorf("%d transfers, want 1 (result to master)\n%s", transfers, p.Explain())
	}
}

func TestPlanJoinCrossSystem(t *testing.T) {
	f := newFixture(t)
	p := f.plan(t, "SELECT r.a1 FROM t1000000_100 r JOIN s_items s ON r.a1 = s.a1")
	// Inputs live on hive and spark; some transfer is mandatory.
	hasTransfer := false
	var joinSys string
	for _, s := range p.Steps {
		if s.Kind == "transfer" && s.From != s.System {
			hasTransfer = true
		}
		if s.Kind == "join" {
			joinSys = s.System
		}
	}
	if !hasTransfer {
		t.Errorf("cross-system join needs a transfer\n%s", p.Explain())
	}
	valid := map[string]bool{"hive": true, "spark": true, querygrid.Master: true}
	if !valid[joinSys] {
		t.Errorf("join on unexpected system %q", joinSys)
	}
	// All three placements must have been considered.
	if len(p.Alternatives) != 2 {
		t.Errorf("%d alternatives, want 2\n%s", len(p.Alternatives), p.Explain())
	}
}

func TestPlanJoinWithAggregation(t *testing.T) {
	f := newFixture(t)
	p := f.plan(t, "SELECT r.a10, SUM(s.a1) FROM t1000000_100 r JOIN t100000_100 s ON r.a1 = s.a1 GROUP BY r.a10")
	kinds := map[string]int{}
	for _, s := range p.Steps {
		kinds[s.Kind]++
	}
	if kinds["join"] != 1 || kinds["aggregation"] != 1 {
		t.Errorf("step kinds = %v\n%s", kinds, p.Explain())
	}
}

func TestPlanCrossJoin(t *testing.T) {
	f := newFixture(t)
	p := f.plan(t, "SELECT r.a1 FROM t10000_40 r CROSS JOIN t10000_40 b")
	var joinStep *Step
	for i := range p.Steps {
		if p.Steps[i].Kind == "join" {
			joinStep = &p.Steps[i]
		}
	}
	if joinStep == nil || !joinStep.Join.Cartesian {
		t.Fatalf("cross join not marked cartesian\n%s", p.Explain())
	}
	if joinStep.Join.OutputRows != 1e8 {
		t.Errorf("cartesian output = %v, want 1e8", joinStep.Join.OutputRows)
	}
}

func TestPlanErrors(t *testing.T) {
	f := newFixture(t)
	bad := []string{
		"SELECT a1 FROM no_such_table",
		"SELECT nope FROM t10000_40",
		"SELECT r.a1 FROM t10000_40 r JOIN t10000_70 s ON r.a1 = r.a2", // one-sided condition
		"SELECT x.a1 FROM t10000_40 r",                                 // unknown qualifier
		"SELECT a1 FROM t10000_40 r JOIN t10000_40 s ON r.a1 = s.a1",   // ambiguous unqualified a1? (qualified is fine; duplicate binding names differ)
	}
	for _, sql := range bad[:4] {
		stmt, err := sqlparse.Parse(sql)
		if err != nil {
			t.Fatalf("Parse(%q): %v", sql, err)
		}
		if _, err := f.opt.Plan(stmt); err == nil {
			t.Errorf("Plan(%q) succeeded, want error", sql)
		}
	}
	// Duplicate binding: same table twice without distinct aliases.
	stmt, err := sqlparse.Parse("SELECT r.a1 FROM t10000_40 JOIN t10000_40 ON a1 = a1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.opt.Plan(stmt); err == nil {
		t.Error("duplicate binding accepted")
	}
}

func TestPlanRequiresMasterEstimator(t *testing.T) {
	f := newFixture(t)
	f.opt.Estimators.Delete(querygrid.Master)
	stmt, _ := sqlparse.Parse("SELECT a1 FROM t10000_40")
	if _, err := f.opt.Plan(stmt); err == nil {
		t.Error("plan without master estimator accepted")
	}
	empty := &Optimizer{}
	if _, err := empty.Plan(stmt); err == nil {
		t.Error("unconfigured optimizer accepted")
	}
}

func TestExplainOutput(t *testing.T) {
	f := newFixture(t)
	p := f.plan(t, "SELECT r.a1 FROM t1000000_100 r JOIN s_items s ON r.a1 = s.a1")
	out := p.Explain()
	for _, want := range []string{"plan (estimated", "join on", "rejected alternatives"} {
		if !strings.Contains(out, want) {
			t.Errorf("Explain missing %q:\n%s", want, out)
		}
	}
}

func TestAlternativesOrdered(t *testing.T) {
	f := newFixture(t)
	p := f.plan(t, "SELECT r.a1 FROM t1000000_100 r JOIN s_items s ON r.a1 = s.a1")
	last := p.EstimatedSec
	for _, alt := range p.Alternatives {
		if alt.EstimatedSec < last {
			t.Errorf("alternative %q (%v) cheaper than chosen plan (%v)", alt.Description, alt.EstimatedSec, last)
		}
		last = alt.EstimatedSec
	}
}

func TestPlanOrderByAddsSortStep(t *testing.T) {
	f := newFixture(t)
	p := f.plan(t, "SELECT a1 FROM t1000000_100 WHERE a1 < 250000 ORDER BY a1 DESC LIMIT 100")
	last := p.Steps[len(p.Steps)-1]
	if last.Kind != "sort" || last.System != querygrid.Master {
		t.Fatalf("final step = %+v, want a master-side sort\n%s", last, p.Explain())
	}
	if last.EstimatedSec <= 0 {
		t.Errorf("sort cost = %v", last.EstimatedSec)
	}
	if p.OutputRows != 100 {
		t.Errorf("LIMIT not applied to output rows: %v", p.OutputRows)
	}
	if !strings.Contains(p.Explain(), "sort") {
		t.Error("Explain missing the sort step")
	}
}

func TestPlanLimitWithoutOrder(t *testing.T) {
	f := newFixture(t)
	p := f.plan(t, "SELECT a1 FROM t1000000_100 LIMIT 10")
	for _, s := range p.Steps {
		if s.Kind == "sort" {
			t.Fatal("LIMIT alone must not add a sort step")
		}
	}
	if p.OutputRows != 10 {
		t.Errorf("output rows = %v, want 10", p.OutputRows)
	}
}

func TestPlanThreeWayJoin(t *testing.T) {
	f := newFixture(t)
	// hive ⋈ hive ⋈ spark: two join steps, left-deep, with transfers where
	// needed and cardinality flowing through the chain.
	p := f.plan(t, "SELECT r.a1 FROM t10000000_100 r JOIN t1000000_100 s ON r.a1 = s.a1 JOIN s_items u ON s.a1 = u.a1 WHERE r.a1 + u.z < 50000")
	joins := 0
	var last *Step
	for i := range p.Steps {
		if p.Steps[i].Kind == "join" {
			joins++
			last = &p.Steps[i]
		}
	}
	if joins != 2 {
		t.Fatalf("join steps = %d, want 2\n%s", joins, p.Explain())
	}
	// The final join's output carries the cross predicate: ≈ 50k rows.
	if last.Join.OutputRows < 2e4 || last.Join.OutputRows > 1e5 {
		t.Errorf("final join output = %v, want ≈5e4\n%s", last.Join.OutputRows, p.Explain())
	}
	if p.EstimatedSec <= 0 || len(p.Alternatives) == 0 {
		t.Errorf("plan = %+v", p)
	}
}

func TestPlanThreeWayJoinProbesFirstTable(t *testing.T) {
	f := newFixture(t)
	// The second join's condition references the FIRST table (r.a1 = u.a1).
	p := f.plan(t, "SELECT r.a1 FROM t1000000_100 r JOIN t100000_100 s ON r.a1 = s.a1 JOIN t10000_100 u ON r.a1 = u.a1")
	joins := 0
	for _, s := range p.Steps {
		if s.Kind == "join" {
			joins++
		}
	}
	if joins != 2 {
		t.Fatalf("join steps = %d\n%s", joins, p.Explain())
	}
}

func TestPlanJoinConditionMustLinkChain(t *testing.T) {
	f := newFixture(t)
	stmt, err := sqlparse.Parse("SELECT r.a1 FROM t10000_40 r JOIN t10000_70 s ON r.a1 = s.a1 JOIN t10000_100 u ON r.a1 = s.a2")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.opt.Plan(stmt); err == nil {
		t.Error("dangling join condition accepted")
	}
}

func TestPlanThreeWayKeepsIntermediateRemote(t *testing.T) {
	f := newFixture(t)
	// Over a slow QueryGrid link (12.5 MB/s), shipping gigabytes to the
	// faster master can never pay off: both joins must stay on hive, with
	// the intermediate result remaining remote between them (Section 2).
	slow := querygrid.LinkConfig{BandwidthBytesPerSec: 12.5e6, LatencySec: 0.5, PerRowOverheadUS: 0.2}
	if err := f.opt.Grid.SetLink("hive", slow); err != nil {
		t.Fatal(err)
	}
	p := f.plan(t, "SELECT * FROM t80000000_500 r JOIN t8000000_500 s ON r.a1 = s.a1 JOIN t1000000_100 u ON s.a1 = u.a1")
	for _, s := range p.Steps {
		if s.Kind == "join" && s.System != "hive" {
			t.Errorf("join placed on %q, want hive\n%s", s.System, p.Explain())
		}
		if s.Kind == "transfer" && s.From == "hive" && s.System == querygrid.Master && s.Rows > 1e7 {
			t.Errorf("bulk intermediate shipped over the slow link\n%s", p.Explain())
		}
	}
}
