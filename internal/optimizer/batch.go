package optimizer

import (
	"context"
	"fmt"
	"sort"

	"intellisphere/internal/core"
	"intellisphere/internal/plan"
	"intellisphere/internal/querygrid"
	"intellisphere/internal/sqlparse"
)

// PlanResult pairs one statement of a batch with its plan or error.
type PlanResult struct {
	Plan *Plan
	Err  error
	// CacheHit marks a plan served from the plan cache (duplicates of a
	// hit statement within the batch share the verdict).
	CacheHit bool
}

// pendingStmt is one cache-missed scan or aggregation statement awaiting
// grouped estimation. Exactly one of scan/agg is set; ests aligns with the
// input's candidate-system order.
type pendingStmt struct {
	idx  int
	key  string
	stmt *sqlparse.SelectStmt
	scan *scanInput
	agg  *aggInput
	ests []core.Estimate
	// bad marks a statement whose estimate group failed; it re-plans through
	// the scalar path so its own error (or success) is exactly what
	// sequential planning would have produced.
	bad bool
}

// specRef addresses one (statement, candidate-system) estimate slot inside a
// per-system group.
type specRef struct {
	p   *pendingStmt
	pos int
}

// PlanBatch plans a group of statements together, returning one result per
// statement. Every plan is identical to what Plan would build for that
// statement alone; the batch only changes how the work is organized:
//
//   - the plan cache and the generation vector are consulted once per
//     distinct statement shape (duplicates share one plan, like cache hits);
//   - single-table scan and aggregation statements pool their candidate
//     placements per system, so each estimator sees one batched call per
//     operator kind (core.EstimateScans/EstimateAggs) instead of one call
//     per statement — the batched serving path's estimator amortization;
//   - join statements fall back to the scalar planner per statement (the
//     greedy chain interleaves transfers and estimates, so there is no
//     cross-statement grouping to exploit).
//
// A failed group estimate re-plans each affected statement through the
// scalar path, so per-statement errors match sequential planning.
func (o *Optimizer) PlanBatch(stmts []*sqlparse.SelectStmt) []PlanResult {
	return o.PlanBatchCtx(context.Background(), stmts)
}

// PlanBatchCtx is PlanBatch with context plumbing: a traced context records
// one costing span per (system, operator-kind) estimate group.
func (o *Optimizer) PlanBatchCtx(ctx context.Context, stmts []*sqlparse.SelectStmt) []PlanResult {
	out := make([]PlanResult, len(stmts))
	if o.Catalog == nil || o.Grid == nil || o.Estimators == nil || o.Estimators.Len() == 0 {
		err := fmt.Errorf("optimizer: catalog, grid, and estimators are required")
		for i := range out {
			out[i].Err = err
		}
		return out
	}
	if _, ok := o.Estimators.Get(querygrid.Master); !ok {
		err := fmt.Errorf("optimizer: no estimator registered for the master %q", querygrid.Master)
		for i := range out {
			out[i].Err = err
		}
		return out
	}
	var gen uint64
	if o.Cache != nil {
		gen = o.generation()
	}
	done := func(i int, key string, p *Plan, err error) {
		out[i] = PlanResult{Plan: p, Err: err}
		if err == nil && o.Cache != nil {
			o.Cache.put(key, gen, p)
		}
	}

	// Deduplicate by normalized statement shape: repeats share one plan,
	// exactly as the plan cache would serve them.
	firstOf := make(map[string]int, len(stmts))
	dup := make([]int, len(stmts))
	var pend []*pendingStmt
	for i, stmt := range stmts {
		dup[i] = i
		if stmt == nil {
			out[i].Err = fmt.Errorf("optimizer: nil statement")
			continue
		}
		key := stmt.String()
		if j, ok := firstOf[key]; ok {
			dup[i] = j
			continue
		}
		firstOf[key] = i
		if o.Cache != nil {
			if p, ok := o.Cache.get(key, gen); ok {
				out[i].Plan = p
				out[i].CacheHit = true
				continue
			}
		}
		a, err := analyze(stmt, o.Catalog)
		if err != nil {
			out[i].Err = err
			continue
		}
		switch {
		case len(stmt.Joins) > 0:
			p, err := o.planUncached(ctx, stmt, nil)
			done(i, key, p, err)
		case stmt.HasAggregates() || len(stmt.GroupBy) > 0:
			in, err := o.aggInputFor(a)
			if err != nil {
				out[i].Err = err
				continue
			}
			pend = append(pend, &pendingStmt{idx: i, key: key, stmt: stmt,
				agg: &in, ests: make([]core.Estimate, len(in.systems))})
		default:
			in, err := o.scanInputFor(a)
			if err != nil {
				out[i].Err = err
				continue
			}
			pend = append(pend, &pendingStmt{idx: i, key: key, stmt: stmt,
				scan: &in, ests: make([]core.Estimate, len(in.systems))})
		}
	}

	// Pool candidate placements per (system, operator kind): every statement
	// contributes one spec per candidate system, and each group resolves
	// with a single batched estimator call.
	scanGroups := map[string][]specRef{}
	aggGroups := map[string][]specRef{}
	for _, p := range pend {
		if p.scan != nil {
			for pos, sys := range p.scan.systems {
				scanGroups[sys] = append(scanGroups[sys], specRef{p: p, pos: pos})
			}
		} else {
			for pos, sys := range p.agg.systems {
				aggGroups[sys] = append(aggGroups[sys], specRef{p: p, pos: pos})
			}
		}
	}
	for _, sys := range sortedKeys(scanGroups) {
		refs := scanGroups[sys]
		specs := make([]plan.ScanSpec, len(refs))
		for i, r := range refs {
			specs[i] = r.p.scan.spec
		}
		o.resolveGroup(ctx, "scan", sys, refs, func(est core.Estimator) ([]core.Estimate, error) {
			return core.EstimateScans(est, specs)
		})
	}
	for _, sys := range sortedKeys(aggGroups) {
		refs := aggGroups[sys]
		specs := make([]plan.AggSpec, len(refs))
		for i, r := range refs {
			specs[i] = r.p.agg.spec
		}
		o.resolveGroup(ctx, "aggregation", sys, refs, func(est core.Estimator) ([]core.Estimate, error) {
			return core.EstimateAggs(est, specs)
		})
	}

	// Assemble each pending statement's candidates from the pooled estimates
	// and select exactly as the scalar sweep would.
	for _, p := range pend {
		if p.bad {
			pl, err := o.planUncached(ctx, p.stmt, nil)
			done(p.idx, p.key, pl, err)
			continue
		}
		var (
			pl  *Plan
			err error
		)
		if p.scan != nil {
			pl, err = o.assemble(p.scan.systems, p.ests, p.scan.spec.OutputRows(), p.scan.proj,
				func(sys string, ce core.Estimate) (candidate, error) {
					return o.scanCandidate(*p.scan, sys, ce)
				})
		} else {
			pl, err = o.assemble(p.agg.systems, p.ests, p.agg.spec.OutputRows, p.agg.spec.OutputRowSize,
				func(sys string, ce core.Estimate) (candidate, error) {
					return o.aggCandidate(*p.agg, sys, ce)
				})
		}
		if err == nil {
			pl, err = o.finishPlan(p.stmt, pl)
		}
		done(p.idx, p.key, pl, err)
	}

	// Duplicates share the representative's result (plans are immutable).
	for i, j := range dup {
		if i != j {
			out[i] = out[j]
		}
	}
	return out
}

// resolveGroup runs one batched estimator call for a per-system group and
// scatters the estimates back into each statement's slot. Any failure —
// missing estimator or a failed batch — marks every member statement for
// scalar re-planning instead of failing the group wholesale.
func (o *Optimizer) resolveGroup(ctx context.Context, operator, sys string, refs []specRef, batch func(core.Estimator) ([]core.Estimate, error)) {
	sp := costSpan(ctx, operator, sys)
	sp.SetInt("specs", len(refs))
	est, err := o.estimator(sys)
	if err == nil {
		var ests []core.Estimate
		if ests, err = batch(est); err == nil {
			for i, r := range refs {
				r.p.ests[r.pos] = ests[i]
			}
			if sp != nil && len(ests) > 0 {
				sp.SetAttr("approach", string(ests[0].Approach))
			}
			sp.End()
			return
		}
	}
	sp.EndErr(err)
	for _, r := range refs {
		r.p.bad = true
	}
}

// assemble builds the candidate sweep from precomputed estimates and picks
// the best placement, mirroring the scalar planScan/planAgg selection.
func (o *Optimizer) assemble(systems []string, ests []core.Estimate, outRows, outSize float64,
	build func(string, core.Estimate) (candidate, error)) (*Plan, error) {
	cands := make([]candidate, len(systems))
	for pos, sys := range systems {
		c, err := build(sys, ests[pos])
		if err != nil {
			return nil, err
		}
		cands[pos] = c
	}
	return pickBest(cands, outRows, outSize), nil
}

func sortedKeys(m map[string][]specRef) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
