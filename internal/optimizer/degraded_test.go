package optimizer

import (
	"strings"
	"testing"

	"intellisphere/internal/datagen"
	"intellisphere/internal/querygrid"
	"intellisphere/internal/sqlparse"
)

// planExcluding parses and plans with exclusions, failing the test on error.
func (f *fixture) planExcluding(t *testing.T, sql string, exclude map[string]bool) *Plan {
	t.Helper()
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	p, err := f.opt.PlanExcluding(stmt, exclude)
	if err != nil {
		t.Fatalf("PlanExcluding(%q): %v", sql, err)
	}
	return p
}

// registerReplicated adds a hive-owned table with a spark replica.
func registerReplicated(t *testing.T, f *fixture, name string, rows int64) {
	t.Helper()
	tb, err := datagen.Table(rows, 100, "hive")
	if err != nil {
		t.Fatal(err)
	}
	tb.Name = name
	tb.Replicas = []string{"spark"}
	if err := f.cat.Register(tb); err != nil {
		t.Fatal(err)
	}
}

// touches collects every system a plan's steps reference (including
// transfer sources).
func touches(p *Plan) map[string]bool {
	out := map[string]bool{}
	for _, s := range p.Steps {
		out[s.System] = true
		if s.From != "" {
			out[s.From] = true
		}
	}
	return out
}

func TestPlanExcludingFallsBackToReplica(t *testing.T) {
	f := newFixture(t)
	registerReplicated(t, f, "rep_orders", 1000000)

	// Healthy plan reads from the primary owner.
	healthy := f.plan(t, "SELECT a1 FROM rep_orders WHERE a1 < 1000")
	if !touches(healthy)["hive"] {
		t.Fatalf("healthy plan avoids the owner: %v", healthy.Explain())
	}
	if len(healthy.Excluded) != 0 {
		t.Errorf("healthy plan marked degraded: %v", healthy.Excluded)
	}

	// With hive excluded, the replica serves and no step touches hive.
	deg := f.planExcluding(t, "SELECT a1 FROM rep_orders WHERE a1 < 1000", map[string]bool{"hive": true})
	tt := touches(deg)
	if tt["hive"] {
		t.Fatalf("degraded plan still touches hive:\n%s", deg.Explain())
	}
	if !tt["spark"] && !tt[querygrid.Master] {
		t.Fatalf("degraded plan reads from nowhere:\n%s", deg.Explain())
	}
	if len(deg.Excluded) != 1 || deg.Excluded[0] != "hive" {
		t.Errorf("Excluded = %v", deg.Excluded)
	}
	if !strings.Contains(deg.Explain(), "degraded plan (excluded: hive)") {
		t.Errorf("explain missing degraded banner:\n%s", deg.Explain())
	}
}

func TestPlanExcludingJoinAndAggregation(t *testing.T) {
	f := newFixture(t)
	registerReplicated(t, f, "rep_fact", 2000000)
	registerReplicated(t, f, "rep_dim", 100000)

	for _, sql := range []string{
		"SELECT r.a1 FROM rep_fact r JOIN rep_dim d ON r.a1 = d.a1",
		"SELECT a5, COUNT(a1) FROM rep_fact GROUP BY a5",
	} {
		deg := f.planExcluding(t, sql, map[string]bool{"hive": true})
		if touches(deg)["hive"] {
			t.Errorf("%q: degraded plan touches hive:\n%s", sql, deg.Explain())
		}
	}
}

func TestPlanExcludingUnreachableAndMaster(t *testing.T) {
	f := newFixture(t)
	stmt, err := sqlparse.Parse("SELECT a1 FROM t1000000_100")
	if err != nil {
		t.Fatal(err)
	}
	// t1000000_100 is hive-owned with no replica.
	if _, err := f.opt.PlanExcluding(stmt, map[string]bool{"hive": true}); err == nil {
		t.Error("plan for an unreachable table succeeded")
	}
	if _, err := f.opt.PlanExcluding(stmt, map[string]bool{querygrid.Master: true}); err == nil {
		t.Error("excluding the master succeeded")
	}
}

func TestPlanExcludingBypassesCache(t *testing.T) {
	f := newFixture(t)
	registerReplicated(t, f, "rep_c", 500000)
	f.opt.Cache = NewPlanCache(16)
	const sql = "SELECT a1 FROM rep_c WHERE a1 < 500"

	normal := f.plan(t, sql)
	stats := f.opt.Cache.Stats()
	if stats.Size != 1 {
		t.Fatalf("cache size = %d after normal plan", stats.Size)
	}
	deg := f.planExcluding(t, sql, map[string]bool{"hive": true})
	if touches(deg)["hive"] {
		t.Fatal("degraded plan served from cache (touches hive)")
	}
	// The degraded plan must not have displaced or polluted the cached one.
	if s := f.opt.Cache.Stats(); s.Size != 1 {
		t.Errorf("cache size = %d after degraded plan", s.Size)
	}
	again := f.plan(t, sql)
	if again != normal {
		t.Error("normal plan no longer served from cache after degraded plan")
	}
}
