// Package optimizer implements the master engine's federated planning: it
// binds a parsed SQL statement against the catalog, derives operator specs
// (cardinalities, row sizes, projections, selectivities), enumerates the
// placement candidates the paper describes in Section 2 — an operator may
// run on a remote system that owns (part of) its input, or on the master —
// costs every candidate with the remote systems' cost estimators plus
// QueryGrid transfer estimates, and picks the cheapest plan.
package optimizer

import (
	"fmt"
	"math"

	"intellisphere/internal/catalog"
	"intellisphere/internal/plan"
	"intellisphere/internal/querygrid"
	"intellisphere/internal/sqlparse"
)

// analyzed is the bound form of a statement.
type analyzed struct {
	stmt *sqlparse.SelectStmt
	// bindings maps the query's table bindings (alias or name) to tables.
	bindings map[string]*catalog.Table
	// order lists bindings in FROM order (1 or 2 entries).
	order []string
	// exclude names systems degraded re-planning must avoid (failed or
	// open-circuited remotes); nil for a normal plan.
	exclude map[string]bool
}

// analyze resolves every table reference and checks column references.
func analyze(stmt *sqlparse.SelectStmt, cat *catalog.Catalog) (*analyzed, error) {
	a := &analyzed{stmt: stmt, bindings: map[string]*catalog.Table{}}
	add := func(tr sqlparse.TableRef) error {
		t, err := cat.Lookup(tr.Name)
		if err != nil {
			return err
		}
		b := tr.Binding()
		if _, dup := a.bindings[b]; dup {
			return fmt.Errorf("optimizer: duplicate table binding %q", b)
		}
		a.bindings[b] = t
		a.order = append(a.order, b)
		return nil
	}
	if err := add(stmt.From); err != nil {
		return nil, err
	}
	for i := range stmt.Joins {
		if err := add(stmt.Joins[i].Table); err != nil {
			return nil, err
		}
	}
	// Validate column references in the select list, join condition,
	// predicates, and group-by.
	check := func(c sqlparse.ColRef) error {
		_, _, err := a.resolve(c)
		return err
	}
	for _, it := range stmt.Items {
		if it.Star {
			continue
		}
		if it.Agg != sqlparse.AggNone {
			for _, c := range it.Arg.Columns() {
				if err := check(c); err != nil {
					return nil, err
				}
			}
			continue
		}
		if err := check(it.Col); err != nil {
			return nil, err
		}
	}
	for i := range stmt.Joins {
		if stmt.Joins[i].Cross {
			continue
		}
		if err := check(stmt.Joins[i].Left); err != nil {
			return nil, err
		}
		if err := check(stmt.Joins[i].Right); err != nil {
			return nil, err
		}
	}
	for _, p := range stmt.Where {
		for _, c := range p.Left.Columns() {
			if err := check(c); err != nil {
				return nil, err
			}
		}
	}
	for _, g := range stmt.GroupBy {
		if err := check(g); err != nil {
			return nil, err
		}
	}
	return a, nil
}

// resolve finds the binding and column for a reference, handling
// unqualified names by searching every bound table (ambiguity is an error).
func (a *analyzed) resolve(c sqlparse.ColRef) (string, catalog.Column, error) {
	if c.Qualifier != "" {
		t, ok := a.bindings[c.Qualifier]
		if !ok {
			return "", catalog.Column{}, fmt.Errorf("optimizer: unknown table binding %q", c.Qualifier)
		}
		col, ok := t.Schema.Column(c.Column)
		if !ok {
			return "", catalog.Column{}, fmt.Errorf("optimizer: table %q has no column %q", t.Name, c.Column)
		}
		return c.Qualifier, col, nil
	}
	foundBinding := ""
	var foundCol catalog.Column
	for _, b := range a.order {
		if col, ok := a.bindings[b].Schema.Column(c.Column); ok {
			if foundBinding != "" {
				return "", catalog.Column{}, fmt.Errorf("optimizer: ambiguous column %q", c.Column)
			}
			foundBinding = b
			foundCol = col
		}
	}
	if foundBinding == "" {
		return "", catalog.Column{}, fmt.Errorf("optimizer: unknown column %q", c.Column)
	}
	return foundBinding, foundCol, nil
}

// projectedColumns returns the columns of one binding that survive into the
// output (from the select list, aggregate arguments, and group-by). A star
// select keeps every column.
func (a *analyzed) projectedColumns(binding string) ([]string, bool, error) {
	seen := map[string]bool{}
	var cols []string
	addRef := func(c sqlparse.ColRef) error {
		b, col, err := a.resolve(c)
		if err != nil {
			return err
		}
		if b == binding && !seen[col.Name] {
			seen[col.Name] = true
			cols = append(cols, col.Name)
		}
		return nil
	}
	for _, it := range a.stmt.Items {
		if it.Star {
			return nil, true, nil
		}
		if it.Agg != sqlparse.AggNone {
			for _, c := range it.Arg.Columns() {
				if err := addRef(c); err != nil {
					return nil, false, err
				}
			}
			continue
		}
		if err := addRef(it.Col); err != nil {
			return nil, false, err
		}
	}
	for _, g := range a.stmt.GroupBy {
		if err := addRef(g); err != nil {
			return nil, false, err
		}
	}
	return cols, false, nil
}

// projectedSize computes the projected byte width of one binding.
func (a *analyzed) projectedSize(binding string) (float64, error) {
	cols, star, err := a.projectedColumns(binding)
	if err != nil {
		return 0, err
	}
	t := a.bindings[binding]
	if star {
		return float64(t.RowSize()), nil
	}
	if len(cols) == 0 {
		// Nothing projected from this side: a minimal key column still flows.
		return 4, nil
	}
	w, err := t.Schema.ProjectedSize(cols)
	if err != nil {
		return 0, err
	}
	return float64(w), nil
}

// predicateTables returns the bindings a predicate touches.
func (a *analyzed) predicateTables(p sqlparse.Predicate) (map[string]bool, error) {
	out := map[string]bool{}
	for _, c := range p.Left.Columns() {
		b, _, err := a.resolve(c)
		if err != nil {
			return nil, err
		}
		out[b] = true
	}
	return out, nil
}

// predicateSelectivity estimates the fraction of rows surviving p using the
// classic uniform-domain heuristics: equality on a column with NDV n keeps
// 1/n; range predicates over a dominant column with values in [0, NDV) keep
// threshold/NDV; inequality keeps (1 - 1/n). Columns with constant domains
// (like Figure 10's all-zero z) don't affect the estimate.
func (a *analyzed) predicateSelectivity(p sqlparse.Predicate, keyNDVOverride float64) (float64, error) {
	// Find the dominant (largest-NDV) column in the expression.
	maxNDV := 0.0
	for _, c := range p.Left.Columns() {
		b, _, err := a.resolve(c)
		if err != nil {
			return 0, err
		}
		t := a.bindings[b]
		ndv, err := t.NDV(c.Column)
		if err != nil {
			return 0, err
		}
		// The all-zero z column has a single value; its presence in a sum
		// does not change the distribution.
		if col, _ := t.Schema.Column(c.Column); col.Name == "z" {
			ndv = 1
		}
		if ndv > maxNDV {
			maxNDV = ndv
		}
	}
	if keyNDVOverride > 0 {
		maxNDV = keyNDVOverride
	}
	if maxNDV <= 0 {
		return 1, nil
	}
	clamp := func(s float64) float64 {
		if s <= 0 {
			return 1.0 / maxNDV
		}
		if s > 1 {
			return 1
		}
		return s
	}
	switch p.Op {
	case "=":
		return clamp(1 / maxNDV), nil
	case "<>":
		return clamp(1 - 1/maxNDV), nil
	case "<", "<=":
		return clamp(p.Value / maxNDV), nil
	case ">", ">=":
		return clamp(1 - p.Value/maxNDV), nil
	default:
		return 1, nil
	}
}

// sideSelectivity multiplies the selectivities of all single-table
// predicates on one binding.
func (a *analyzed) sideSelectivity(binding string) (float64, error) {
	sel := 1.0
	for _, p := range a.stmt.Where {
		tabs, err := a.predicateTables(p)
		if err != nil {
			return 0, err
		}
		if len(tabs) == 1 && tabs[binding] {
			s, err := a.predicateSelectivity(p, 0)
			if err != nil {
				return 0, err
			}
			sel *= s
		}
	}
	if sel <= 0 {
		sel = 1e-9
	}
	return sel, nil
}

// side builds the plan.TableSide for one binding after its local filters.
func (a *analyzed) side(binding string, joinCol string) (plan.TableSide, error) {
	t := a.bindings[binding]
	sel, err := a.sideSelectivity(binding)
	if err != nil {
		return plan.TableSide{}, err
	}
	proj, err := a.projectedSize(binding)
	if err != nil {
		return plan.TableSide{}, err
	}
	rows := float64(t.Rows) * sel
	if rows < 1 {
		rows = 1
	}
	s := plan.TableSide{
		Rows:          rows,
		RowSize:       float64(t.RowSize()),
		ProjectedSize: proj,
	}
	if joinCol != "" {
		ndv, err := t.NDV(joinCol)
		if err != nil {
			return plan.TableSide{}, err
		}
		s.KeyNDV = math.Min(ndv, rows)
		s.PartitionedOn = t.PartitionedOn == joinCol
		s.SortedOn = t.SortedOn == joinCol
	}
	return s, nil
}

// groupOutputRows estimates GROUP BY output cardinality as the capped
// product of the group columns' distinct counts.
func (a *analyzed) groupOutputRows(inputRows float64) (float64, error) {
	if len(a.stmt.GroupBy) == 0 {
		return 1, nil // global aggregate
	}
	prod := 1.0
	for _, g := range a.stmt.GroupBy {
		b, col, err := a.resolve(g)
		if err != nil {
			return 0, err
		}
		ndv, err := a.bindings[b].NDV(col.Name)
		if err != nil {
			return 0, err
		}
		prod *= ndv
	}
	if prod > inputRows {
		prod = inputRows
	}
	if prod < 1 {
		prod = 1
	}
	return prod, nil
}

// aggOutputRowSize sums group-key widths plus eight bytes per aggregate.
func (a *analyzed) aggOutputRowSize() (float64, int, error) {
	width := 0.0
	numAggs := 0
	for _, g := range a.stmt.GroupBy {
		_, col, err := a.resolve(g)
		if err != nil {
			return 0, 0, err
		}
		width += float64(col.Width)
	}
	for _, it := range a.stmt.Items {
		if it.Agg != sqlparse.AggNone {
			numAggs++
			width += 8
		}
	}
	if width <= 0 {
		width = 8
	}
	return width, numAggs, nil
}

// systemOf returns the system a binding's table should be read from,
// mapping local tables to the master. The primary owner wins unless it is
// excluded (degraded re-planning), in which case the first non-excluded
// replica takes over; a table whose owner and replicas are all excluded is
// unreachable and fails the plan.
func (a *analyzed) systemOf(binding string) (string, error) {
	t := a.bindings[binding]
	owner := t.System
	if owner == "" {
		owner = querygrid.Master
	}
	if !a.exclude[owner] {
		return owner, nil
	}
	for _, r := range t.Replicas {
		if !a.exclude[r] {
			return r, nil
		}
	}
	return "", fmt.Errorf("optimizer: table %q is unreachable: owner %q and every replica excluded", t.Name, owner)
}
