package optimizer

import (
	"testing"

	"intellisphere/internal/sqlparse"
)

func parseAll(t *testing.T, sqls []string) []*sqlparse.SelectStmt {
	t.Helper()
	out := make([]*sqlparse.SelectStmt, len(sqls))
	for i, sql := range sqls {
		stmt, err := sqlparse.Parse(sql)
		if err != nil {
			t.Fatalf("Parse(%q): %v", sql, err)
		}
		out[i] = stmt
	}
	return out
}

// PlanBatch must produce, per statement, exactly the plan (or error) that
// Plan produces — scans and aggregations through the grouped estimate path,
// joins through the per-statement fallback, duplicates shared.
func TestPlanBatchMatchesPlan(t *testing.T) {
	f := newFixture(t)
	sqls := []string{
		"SELECT a1 FROM t80000000_1000 WHERE a1 < 60000000",                                             // scan on hive
		"SELECT a1 FROM s_orders WHERE a1 < 250000",                                                     // scan on spark
		"SELECT a2, COUNT(*) FROM t1000000_100 GROUP BY a2",                                             // aggregation
		"SELECT t1000000_100.a1 FROM t1000000_100 JOIN t100000_100 ON t1000000_100.a1 = t100000_100.a1", // join fallback
		"SELECT a1 FROM t80000000_1000 WHERE a1 < 60000000",                                             // duplicate of 0
		"SELECT a1 FROM local_dim",                                                                      // master-owned scan
	}
	stmts := parseAll(t, sqls)
	results := f.opt.PlanBatch(stmts)
	if len(results) != len(stmts) {
		t.Fatalf("got %d results for %d statements", len(results), len(stmts))
	}
	for i, stmt := range stmts {
		want, err := f.opt.Plan(stmt)
		if err != nil {
			t.Fatalf("Plan(%q): %v", sqls[i], err)
		}
		got := results[i]
		if got.Err != nil {
			t.Fatalf("PlanBatch[%d] (%q): %v", i, sqls[i], got.Err)
		}
		if got.Plan.Explain() != want.Explain() {
			t.Errorf("statement %d: batch plan differs from scalar plan\nbatch:\n%s\nscalar:\n%s",
				i, got.Plan.Explain(), want.Explain())
		}
		if got.Plan.EstimatedSec != want.EstimatedSec ||
			got.Plan.OutputRows != want.OutputRows ||
			got.Plan.OutputRowSize != want.OutputRowSize {
			t.Errorf("statement %d: batch totals %v/%v/%v, scalar %v/%v/%v", i,
				got.Plan.EstimatedSec, got.Plan.OutputRows, got.Plan.OutputRowSize,
				want.EstimatedSec, want.OutputRows, want.OutputRowSize)
		}
	}
	// Duplicates share one immutable plan.
	if results[0].Plan != results[4].Plan {
		t.Error("duplicate statements did not share a plan")
	}
}

// Per-statement errors surface individually: a bad statement in the batch
// must not fail its neighbors, and its error must match the scalar path's.
func TestPlanBatchPerStatementErrors(t *testing.T) {
	f := newFixture(t)
	stmts := parseAll(t, []string{
		"SELECT a1 FROM t1000000_100 WHERE a1 < 250000",
		"SELECT a1 FROM no_such_table",
	})
	results := f.opt.PlanBatch(stmts)
	if results[0].Err != nil || results[0].Plan == nil {
		t.Errorf("healthy statement failed: %v", results[0].Err)
	}
	if results[1].Err == nil {
		t.Fatal("unknown table accepted")
	}
	_, wantErr := f.opt.Plan(stmts[1])
	if wantErr == nil || results[1].Err.Error() != wantErr.Error() {
		t.Errorf("batch error %q, scalar error %q", results[1].Err, wantErr)
	}
	// Nil statements error without disturbing the rest.
	withNil := f.opt.PlanBatch([]*sqlparse.SelectStmt{nil, stmts[0]})
	if withNil[0].Err == nil || withNil[1].Err != nil {
		t.Errorf("nil handling: %v / %v", withNil[0].Err, withNil[1].Err)
	}
}

// PlanBatch is plan-cache aware in both directions: hits are served from the
// cache, and batch-built plans are stored for later scalar lookups.
func TestPlanBatchUsesPlanCache(t *testing.T) {
	f := newFixture(t)
	f.opt.Cache = NewPlanCache(16)
	stmts := parseAll(t, []string{
		"SELECT a1 FROM t1000000_100 WHERE a1 < 250000",
		"SELECT a2, COUNT(*) FROM t1000000_100 GROUP BY a2",
	})
	// Warm the cache with the first statement only.
	warm, err := f.opt.Plan(stmts[0])
	if err != nil {
		t.Fatal(err)
	}
	results := f.opt.PlanBatch(stmts)
	if results[0].Plan != warm {
		t.Error("batch did not serve the cached plan")
	}
	if results[1].Err != nil {
		t.Fatal(results[1].Err)
	}
	// The batch-built aggregation plan must now satisfy a scalar lookup.
	again, err := f.opt.Plan(stmts[1])
	if err != nil {
		t.Fatal(err)
	}
	if again != results[1].Plan {
		t.Error("batch-built plan was not cached for scalar planning")
	}
}
