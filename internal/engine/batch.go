package engine

import (
	"context"
	"time"

	"intellisphere/internal/sqlparse"
	"intellisphere/internal/trace"
)

// BatchItem is one statement's outcome within a query batch: exactly one of
// Res/Err is set, element-wise identical to what Query would have returned
// for the statement alone.
type BatchItem struct {
	Res *QueryResult
	Err error
}

// QueryBatch plans and executes a group of SQL statements, returning one
// item per statement in order. Results are identical to issuing the
// statements sequentially through Query; the batch only amortizes the
// serving overheads:
//
//   - statements parse through the statement LRU once per distinct text;
//   - planning goes through the optimizer's PlanBatch, which consults the
//     plan cache once per distinct statement shape and pools candidate
//     estimates into one batched estimator call per (system, operator kind);
//   - execution still runs per statement, in order, so actual costs,
//     feedback, and degraded re-planning behave exactly as in the scalar
//     path.
//
// A failed statement (parse, plan, or execution) fails only its own slot.
func (e *Engine) QueryBatch(ctx context.Context, sqls []string) []BatchItem {
	rec := e.events.Load()
	out := make([]BatchItem, len(sqls))
	stmts := make([]*sqlparse.SelectStmt, len(sqls))
	live := make([]int, 0, len(sqls))
	batch := make([]*sqlparse.SelectStmt, 0, len(sqls))
	for i, sql := range sqls {
		e.queries.Inc()
		stmt, err := e.parse(ctx, sql)
		if err != nil {
			e.queryErrors.Inc()
			out[i].Err = err
			if rec != nil {
				e.emitEvent(rec, "batch", sql, nil, err, 0, 0)
			}
			continue
		}
		stmts[i] = stmt
		live = append(live, i)
		batch = append(batch, stmt)
	}
	planStart := time.Now()
	pctx, psp := trace.Start(ctx, "plan")
	psp.SetInt("statements", len(batch))
	plans := e.opt.PlanBatchCtx(pctx, batch)
	psp.End()
	e.planHist.Observe(time.Since(planStart))
	// Slab-allocate result storage for the whole batch: one QueryResult
	// array and one step-actuals backing array replace two heap objects per
	// statement. Each statement gets a capacity-bounded sub-slice, so a
	// degraded re-plan that grows past its window reallocates safely.
	planned := 0
	steps := 0
	for bi := range live {
		if plans[bi].Err == nil {
			planned++
			steps += len(plans[bi].Plan.Steps)
		}
	}
	slab := make([]QueryResult, planned)
	actuals := make([]float64, steps)
	si, off := 0, 0
	// Execute-stage timing brackets the whole batch with two clock reads and
	// attributes the mean to each executed statement: the histogram's count
	// and sum match per-statement timing exactly, only the spread within one
	// batch is smoothed.
	execStart := time.Now()
	for bi, i := range live {
		if err := plans[bi].Err; err != nil {
			e.queryErrors.Inc()
			out[i].Err = err
			if rec != nil {
				e.emitEvent(rec, "batch", sqls[i], nil, err, 0, 0)
			}
			continue
		}
		p := plans[bi].Plan
		end := off + len(p.Steps)
		// Per-statement event timing brackets only execution (parse and
		// plan are batch-amortized, so no per-statement figure exists for
		// them); the clock reads happen only when events are on, keeping
		// the two-reads-per-batch pattern otherwise.
		var stStart time.Time
		if rec != nil {
			stStart = time.Now()
		}
		res, err := e.runInto(ctx, stmts[i], p, &slab[si], actuals[off:off:end])
		if res != nil {
			res.CacheHit = plans[bi].CacheHit
		}
		si, off = si+1, end
		if err != nil {
			e.queryErrors.Inc()
		}
		out[i] = BatchItem{Res: res, Err: err}
		if rec != nil {
			e.emitEvent(rec, "batch", sqls[i], res, err, time.Since(stStart), 0)
		}
	}
	if planned > 0 {
		e.executeHist.ObserveN(time.Since(execStart)/time.Duration(planned), planned)
	}
	return out
}
