package engine

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"intellisphere/internal/cluster"
	"intellisphere/internal/core/hybrid"
	"intellisphere/internal/core/logicalop"
	"intellisphere/internal/datagen"
	"intellisphere/internal/faults"
	"intellisphere/internal/metrics"
	"intellisphere/internal/modelver"
	"intellisphere/internal/nn"
	"intellisphere/internal/plan"
	"intellisphere/internal/remote"
)

// driftSQL runs one aggregation on the tune rig's big table; every execution
// logs one (features, actual) record into the logical aggregation model.
const driftSQL = "SELECT a10, SUM(a1) FROM t80000000_500 GROUP BY a10"

// newTuneRig builds an engine with one blackbox remote ("hivebb") behind a
// fault injector and logical-op models trained small — the smallest
// federation whose cost models the candidate tuner can retrain.
func newTuneRig(t *testing.T) (*Engine, *hybrid.Estimator, *faults.Injector) {
	t.Helper()
	e := newEngine(t)
	bb, err := remote.NewHive("hivebb", cluster.DefaultHive(), remote.Options{NoiseAmp: 0.01, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	inj := faults.Wrap(bb, faults.Config{Seed: 11})
	for _, spec := range []ts{{10000, 40}, {100000, 100}, {40000, 250}, {80000000, 500}} {
		tb, err := datagen.Table(spec.rows, spec.size, "hivebb")
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Catalog().Register(tb); err != nil {
			t.Fatal(err)
		}
	}
	cfg := logicalop.DefaultConfig(4, 1)
	cfg.NN.Train = nn.TrainConfig{Iterations: 100, Optimizer: nn.Adam, BatchSize: 32, Seed: 1}
	jcfg := logicalop.DefaultConfig(7, 2)
	jcfg.NN.Train = cfg.NN.Train
	est, _, err := e.RegisterRemoteLogicalOp(inj, remote.EngineHive, LogicalTrainOptions{JoinPairs: 4, Agg: cfg, Join: jcfg, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	return e, est, inj
}

// fastTune is the bounded retraining pass the rig's tests share.
func fastTune() TuneOptions {
	return TuneOptions{
		Holdout: 2,
		MinLog:  4,
		Train:   nn.TrainConfig{Iterations: 300, Optimizer: nn.Adam, BatchSize: 32, Seed: 3},
	}
}

// driftRig slows every hivebb call 20x and executes driftSQL n times, so the
// aggregation model's log fills with actuals far above its estimates and the
// accuracy window flags drift.
func driftRig(t *testing.T, e *Engine, inj *faults.Injector, n int) {
	t.Helper()
	inj.SetRates(faults.Rates{Latency: 1, LatencyFactor: 20})
	for i := 0; i < n; i++ {
		if _, err := e.Query(driftSQL); err != nil {
			t.Fatalf("drift query %d: %v", i, err)
		}
	}
	e.FlushFeedback()
}

func TestTuneCandidatePromotion(t *testing.T) {
	e, est, inj := newTuneRig(t)
	driftRig(t, e, inj, 8)

	acc := e.AccuracyStats()["hivebb/aggregation"]
	if !acc.Drifting || acc.MeanQError < metrics.DefaultDriftQError {
		t.Fatalf("rig not drifting before tune: %+v", acc)
	}
	staleBefore := e.PlanCacheStats().Stale

	out, err := e.TuneCandidate(context.Background(), "hivebb", fastTune())
	if err != nil {
		t.Fatalf("TuneCandidate: %v", err)
	}
	if !out.Promoted || out.Reason != "improved" {
		t.Fatalf("candidate not promoted: %+v", out)
	}
	if len(out.Tuned) != 1 || out.Tuned[0] != "aggregation" {
		t.Fatalf("Tuned = %v, want [aggregation]", out.Tuned)
	}
	if out.Holdout.Samples != 2 || !out.Holdout.Improved() {
		t.Fatalf("holdout = %+v, want 2 improved samples", out.Holdout)
	}
	if out.Version == nil || out.Version.Origin != modelver.OriginTuned || !out.Version.Live {
		t.Fatalf("promotion version = %+v", out.Version)
	}

	// The promoted estimator replaced the trained one in the registry.
	cur, err := e.Estimator("hivebb")
	if err != nil {
		t.Fatal(err)
	}
	if cur == est {
		t.Error("promotion left the old estimator serving")
	}

	// Promotion bumps the registry generation: the cached plan for driftSQL
	// was costed against the replaced model and must not be served again.
	if _, err := e.Explain(driftSQL); err != nil {
		t.Fatal(err)
	}
	if s := e.PlanCacheStats(); s.Stale != staleBefore+1 {
		t.Errorf("plan cache stale = %d, want %d (stale plan served?)", s.Stale, staleBefore+1)
	}

	// The accuracy window scored the replaced model; promotion resets it so
	// the drift flag does not latch against the new one.
	acc = e.AccuracyStats()["hivebb/aggregation"]
	if acc.Drifting || acc.Window != 0 {
		t.Errorf("drift flag latched after promotion: %+v", acc)
	}

	// Version history: the pre-tune baseline plus the promoted candidate.
	vs := e.ModelVersions("hivebb")
	if len(vs) != 2 {
		t.Fatalf("versions = %d, want 2 (baseline + tuned)", len(vs))
	}
	if vs[0].Origin != modelver.OriginInitial || vs[0].Live {
		t.Errorf("baseline version = %+v", vs[0])
	}
	if vs[1].Origin != modelver.OriginTuned || !vs[1].Live || vs[1].Holdout == nil {
		t.Errorf("tuned version = %+v", vs[1])
	}
	if got := e.ModelVersionSystems(); len(got) != 1 || got[0] != "hivebb" {
		t.Errorf("ModelVersionSystems = %v", got)
	}
	if ts := e.Stats().Tuning; ts.Attempts != 1 || ts.Promotions != 1 || ts.Rejections != 0 {
		t.Errorf("tuning stats = %+v", ts)
	}
}

func TestTuneCandidateRejectionLeavesLiveUntouched(t *testing.T) {
	e, est, inj := newTuneRig(t)
	driftRig(t, e, inj, 8)

	before, err := profileJSON(est)
	if err != nil {
		t.Fatal(err)
	}
	opts := fastTune()
	opts.MinGain = 1 // candidate < live·0 is impossible: promotion must not happen
	out, err := e.TuneCandidate(context.Background(), "hivebb", opts)
	if err != nil {
		t.Fatalf("TuneCandidate: %v", err)
	}
	if out.Promoted || out.Reason != "no-improvement" {
		t.Fatalf("rejection outcome = %+v", out)
	}
	if out.Holdout.Samples == 0 {
		t.Fatal("rejection skipped shadow scoring")
	}
	after, err := profileJSON(est)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Error("rejected candidate mutated the live model weights")
	}
	if cur, _ := e.Estimator("hivebb"); cur != est {
		t.Error("rejected candidate swapped the registry entry")
	}
	if vs := e.ModelVersions("hivebb"); len(vs) != 0 {
		t.Errorf("rejection archived versions: %+v", vs)
	}
	if ts := e.Stats().Tuning; ts.Attempts != 1 || ts.Rejections != 1 || ts.Promotions != 0 {
		t.Errorf("tuning stats = %+v", ts)
	}
}

func TestRollbackModelRestoresBytes(t *testing.T) {
	e, est, inj := newTuneRig(t)
	driftRig(t, e, inj, 8)

	baseline, err := profileJSON(est)
	if err != nil {
		t.Fatal(err)
	}
	opts := fastTune()
	opts.Force = true
	out, err := e.TuneCandidate(context.Background(), "hivebb", opts)
	if err != nil || !out.Promoted {
		t.Fatalf("forced tune: %+v, %v", out, err)
	}
	promoted, err := profileJSON(mustHybrid(t, e, "hivebb"))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(promoted, baseline) {
		t.Fatal("promotion did not change the serving model")
	}

	staleBefore := e.PlanCacheStats().Stale
	if _, err := e.Explain(driftSQL); err != nil { // warm the cache on the promoted model
		t.Fatal(err)
	}
	restored, err := e.RollbackModel("hivebb")
	if err != nil {
		t.Fatalf("RollbackModel: %v", err)
	}
	if restored.Origin != modelver.OriginInitial || !restored.Live {
		t.Fatalf("restored version = %+v", restored)
	}
	got, err := profileJSON(mustHybrid(t, e, "hivebb"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, baseline) {
		t.Error("rollback did not restore the prior model byte-identically")
	}
	// Rollback is a model change like any promotion: generation bump (the
	// plan cached against the promoted model goes stale) and window reset.
	if _, err := e.Explain(driftSQL); err != nil {
		t.Fatal(err)
	}
	if s := e.PlanCacheStats(); s.Stale != staleBefore+2 {
		t.Errorf("plan cache stale = %d, want %d", s.Stale, staleBefore+2)
	}
	if acc := e.AccuracyStats()["hivebb/aggregation"]; acc.Window != 0 {
		t.Errorf("accuracy window not reset by rollback: %+v", acc)
	}
	vs := e.ModelVersions("hivebb")
	if len(vs) != 2 || !vs[0].Live || vs[1].Live {
		t.Fatalf("live flag after rollback: %+v", vs)
	}
	if ts := e.Stats().Tuning; ts.Rollbacks != 1 {
		t.Errorf("tuning stats = %+v", ts)
	}
	// History is exhausted: nothing older than the restored baseline.
	if _, err := e.RollbackModel("hivebb"); err == nil {
		t.Error("rollback past the oldest version accepted")
	}
}

func TestTuneCandidateValidation(t *testing.T) {
	e, _, _ := newTuneRig(t)

	// No executed queries: every model's log is short, nothing retrains.
	out, err := e.TuneCandidate(context.Background(), "hivebb", fastTune())
	if err != nil {
		t.Fatalf("TuneCandidate: %v", err)
	}
	if out.Promoted || out.Reason != "insufficient-log" || len(out.Tuned) != 0 {
		t.Fatalf("empty-log outcome = %+v", out)
	}
	if ts := e.Stats().Tuning; ts.Attempts != 1 || ts.Rejections != 0 || ts.Promotions != 0 {
		t.Errorf("tuning stats = %+v", ts)
	}
	if vs := e.ModelVersions("hivebb"); len(vs) != 0 {
		t.Errorf("no-op tune archived versions: %+v", vs)
	}
	// The master and unknown systems are not tunable.
	if _, err := e.TuneCandidate(context.Background(), "teradata", fastTune()); err == nil {
		t.Error("tuning the master accepted")
	}
	if _, err := e.TuneCandidate(context.Background(), "ghost", fastTune()); err == nil {
		t.Error("tuning an unknown system accepted")
	}
	if _, err := e.RollbackModel("ghost"); err == nil {
		t.Error("rolling back an unknown system accepted")
	}
	if _, err := e.RollbackModel("hivebb"); err == nil {
		t.Error("rolling back without history accepted")
	}
}

// TestTuneSystemResetsDriftWindow pins the in-place tuning path's share of
// the fix: consuming the log and refitting must clear the accuracy window,
// or the drift flag stays latched against observations the old weights made.
func TestTuneSystemResetsDriftWindow(t *testing.T) {
	e, _, inj := newTuneRig(t)
	driftRig(t, e, inj, 8)

	if acc := e.AccuracyStats()["hivebb/aggregation"]; !acc.Drifting {
		t.Fatalf("rig not drifting before tune: %+v", acc)
	}
	rep, err := e.TuneSystem("hivebb", nn.TrainConfig{Iterations: 50, Optimizer: nn.Adam, BatchSize: 32, Seed: 3})
	if err != nil {
		t.Fatalf("TuneSystem: %v", err)
	}
	if !rep.AggTuned {
		t.Fatalf("aggregation not tuned: %+v", rep)
	}
	acc := e.AccuracyStats()["hivebb/aggregation"]
	if acc.Drifting || acc.Window != 0 {
		t.Errorf("drift flag latched after TuneSystem: %+v", acc)
	}
	if acc.Count == 0 {
		t.Error("window reset erased the lifetime observation count")
	}
	vs := e.ModelVersions("hivebb")
	if len(vs) != 1 || vs[0].Origin != modelver.OriginTuneSystem || !vs[0].Live {
		t.Errorf("TuneSystem versions = %+v", vs)
	}
}

// TestTunerBackgroundLoop drives the watch loop end to end: drifting windows
// debounce into a tune pass, the pass promotes, and the drift flag clears.
func TestTunerBackgroundLoop(t *testing.T) {
	e, _, inj := newTuneRig(t)
	driftRig(t, e, inj, 8)

	opts := fastTune()
	opts.Force = true // pin loop mechanics, not the holdout verdict
	tuner := e.StartTuner(TunerConfig{Interval: 5 * time.Millisecond, Debounce: 2, Tune: opts})
	defer tuner.Stop()

	deadline := time.Now().Add(10 * time.Second)
	for e.Stats().Tuning.Promotions == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("tuner never promoted: %+v", e.Stats().Tuning)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if acc := e.AccuracyStats()["hivebb/aggregation"]; acc.Drifting {
		t.Errorf("drift flag still set after background promotion: %+v", acc)
	}
	if vs := e.ModelVersions("hivebb"); len(vs) < 2 {
		t.Errorf("background promotion archived %d versions, want >= 2", len(vs))
	}
}

func mustHybrid(t *testing.T, e *Engine, system string) *hybrid.Estimator {
	t.Helper()
	est, err := e.Estimator(system)
	if err != nil {
		t.Fatal(err)
	}
	h, ok := est.(*hybrid.Estimator)
	if !ok {
		t.Fatalf("estimator for %q is not hybrid", system)
	}
	return h
}

// TestSaveProfileAtomic verifies SaveProfile's write-rename discipline: a
// reader racing repeated saves must never observe a partially written file,
// and no temporary files survive.
func TestSaveProfileAtomic(t *testing.T) {
	e := newEngine(t)
	registerHive(t, e)
	dir := t.TempDir()
	path := filepath.Join(dir, "hive.profile.json")
	if err := e.SaveProfile("hive", path); err != nil {
		t.Fatalf("SaveProfile: %v", err)
	}

	stop := make(chan struct{})
	errCh := make(chan error, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			data, err := os.ReadFile(path)
			if err != nil {
				// The file exists before the reader starts and rename never
				// removes it; any read error is a broken invariant.
				errCh <- err
				return
			}
			if !json.Valid(data) {
				errCh <- os.ErrInvalid
				return
			}
		}
	}()
	for i := 0; i < 50; i++ {
		if err := e.SaveProfile("hive", path); err != nil {
			t.Fatalf("SaveProfile %d: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatalf("reader observed a torn save: %v", err)
	default:
	}

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "hive.profile.json" {
		names := make([]string, 0, len(entries))
		for _, en := range entries {
			names = append(names, en.Name())
		}
		t.Errorf("stray files after atomic saves: %v", names)
	}
}

// countFeedback records applied observations, standing in for an estimator.
type countFeedback struct {
	mu      sync.Mutex
	applied []float64
}

func (c *countFeedback) observe(sec float64) {
	c.mu.Lock()
	c.applied = append(c.applied, sec)
	c.mu.Unlock()
}
func (c *countFeedback) ObserveJoin(_ plan.JoinSpec, sec float64) { c.observe(sec) }
func (c *countFeedback) ObserveAgg(_ plan.AggSpec, sec float64)   { c.observe(sec) }
func (c *countFeedback) ObserveScan(_ plan.ScanSpec, sec float64) { c.observe(sec) }

// TestFeedbackQueueBounded saturates the batcher while its drainer is held
// off and checks drop-oldest semantics: the queue never exceeds cap, the
// newest observations survive, and every drop is counted.
func TestFeedbackQueueBounded(t *testing.T) {
	cf := &countFeedback{}
	b := newFeedbackBatcher(4)
	// Pretend a drainer is already active so enqueue does not start one —
	// the deterministic stand-in for an estimator too slow to keep up.
	b.mu.Lock()
	b.draining = true
	b.mu.Unlock()

	for i := 0; i < 10; i++ {
		b.enqueue(feedbackItem{est: cf, kind: "scan", actualSec: float64(i)})
	}
	b.mu.Lock()
	queued := make([]float64, 0, len(b.queue))
	for _, it := range b.queue {
		queued = append(queued, it.actualSec)
	}
	b.draining = false
	b.mu.Unlock()

	if len(queued) != 4 {
		t.Fatalf("queue length = %d, want cap 4", len(queued))
	}
	for i, sec := range queued {
		if want := float64(6 + i); sec != want {
			t.Errorf("queue[%d] = %v, want %v (newest must survive)", i, sec, want)
		}
	}
	if got := b.dropped.Value(); got != 6 {
		t.Errorf("dropped = %d, want 6", got)
	}

	// Release the queue: the next enqueue evicts one more (the queue is
	// still at cap), starts a real drainer, and flush applies the rest.
	b.enqueue(feedbackItem{est: cf, kind: "scan", actualSec: 10})
	b.flush()
	cf.mu.Lock()
	applied := append([]float64(nil), cf.applied...)
	cf.mu.Unlock()
	if len(applied) != 4 || applied[0] != 7 || applied[3] != 10 {
		t.Errorf("applied = %v, want [7 8 9 10]", applied)
	}
	if got := b.dropped.Value(); got != 7 {
		t.Errorf("dropped after releasing enqueue = %d, want 7", got)
	}
	if b.backlog() != 0 {
		t.Errorf("backlog = %d after flush", b.backlog())
	}
}

// TestFeedbackCapConfig pins the Config.FeedbackCap resolution: zero selects
// the default bound, negative disables it, positive passes through.
func TestFeedbackCapConfig(t *testing.T) {
	for _, tc := range []struct {
		in, want int
	}{
		{0, defaultFeedbackCap},
		{-1, 0},
		{7, 7},
	} {
		e, err := New(Config{Seed: 9, FeedbackCap: tc.in})
		if err != nil {
			t.Fatal(err)
		}
		if e.fb.cap != tc.want {
			t.Errorf("FeedbackCap %d: batcher cap = %d, want %d", tc.in, e.fb.cap, tc.want)
		}
		if e.FeedbackDropped() != 0 {
			t.Errorf("fresh engine reports drops")
		}
	}
}
