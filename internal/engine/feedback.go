package engine

import (
	"sync"

	"intellisphere/internal/core"
	"intellisphere/internal/metrics"
	"intellisphere/internal/plan"
)

// feedbackItem is one executed operator awaiting delivery to its estimator's
// feedback interface (the logging phase of Figure 3). Exactly one of
// join/agg/scan is set, matching kind.
type feedbackItem struct {
	est       core.Feedback
	kind      string
	join      plan.JoinSpec
	agg       plan.AggSpec
	scan      plan.ScanSpec
	actualSec float64
}

func (it *feedbackItem) apply() {
	switch it.kind {
	case "join":
		it.est.ObserveJoin(it.join, it.actualSec)
	case "aggregation":
		it.est.ObserveAgg(it.agg, it.actualSec)
	case "scan":
		it.est.ObserveScan(it.scan, it.actualSec)
	}
}

// defaultFeedbackCap bounds the batcher's queue when the engine config does
// not say otherwise. Feedback is advisory telemetry for the models, not
// query results: under sustained overload it is strictly better to forget
// the oldest observations than to grow the queue without limit.
const defaultFeedbackCap = 4096

// feedbackBatcher decouples query execution from estimator feedback.
// Observe* on a logical-op model re-runs the (potentially expensive) remedy
// estimate under the model's mutex; doing that inline would serialize every
// hot query on the same lock. Instead executeStep enqueues a record under a
// cheap batcher mutex and returns; a single drainer goroutine — started
// lazily, exiting when the queue empties — applies batches in arrival order,
// so model mutations never contend with more than one writer.
//
// The queue is bounded: when a slow estimator lets it reach cap, the oldest
// pending items are dropped (and counted) to admit new ones — recent
// observations carry strictly more signal about the current workload.
type feedbackBatcher struct {
	mu       sync.Mutex
	cond     *sync.Cond
	queue    []feedbackItem
	cap      int  // max queued items; <= 0 means unbounded
	inflight int  // items handed to the drainer but not yet applied
	draining bool // a drainer goroutine is active

	dropped metrics.Counter // items discarded because the queue was full
}

func newFeedbackBatcher(cap int) *feedbackBatcher {
	b := &feedbackBatcher{cap: cap}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// enqueue appends an item — dropping the oldest queued items first when the
// queue is at cap — and ensures a drainer is running.
func (b *feedbackBatcher) enqueue(it feedbackItem) {
	b.mu.Lock()
	if b.cap > 0 && len(b.queue) >= b.cap {
		drop := len(b.queue) - b.cap + 1
		n := copy(b.queue, b.queue[drop:])
		// Zero the vacated tail so dropped items do not pin their estimators.
		for i := n; i < len(b.queue); i++ {
			b.queue[i] = feedbackItem{}
		}
		b.queue = b.queue[:n]
		b.dropped.Add(uint64(drop))
	}
	b.queue = append(b.queue, it)
	start := !b.draining
	b.draining = true
	b.mu.Unlock()
	if start {
		go b.drain()
	}
}

// drain applies queued batches until the queue stays empty.
func (b *feedbackBatcher) drain() {
	for {
		b.mu.Lock()
		if len(b.queue) == 0 {
			b.draining = false
			b.cond.Broadcast()
			b.mu.Unlock()
			return
		}
		batch := b.queue
		b.queue = nil
		b.inflight = len(batch)
		b.mu.Unlock()

		for i := range batch {
			batch[i].apply()
			b.mu.Lock()
			b.inflight--
			b.mu.Unlock()
		}
	}
}

// flush blocks until every enqueued item has been applied.
func (b *feedbackBatcher) flush() {
	b.mu.Lock()
	for b.draining || len(b.queue) > 0 || b.inflight > 0 {
		b.cond.Wait()
	}
	b.mu.Unlock()
}

// backlog reports the number of observations not yet applied.
func (b *feedbackBatcher) backlog() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.queue) + b.inflight
}

// FlushFeedback blocks until every logged execution produced by completed
// Query calls has reached its estimator. Offline tuning calls it implicitly;
// tests and shutdown paths call it to make feedback effects observable
// deterministically.
func (e *Engine) FlushFeedback() { e.fb.flush() }

// FeedbackBacklog reports how many executed-operator observations are still
// queued for delivery to estimators (a serving-health metric: a growing
// backlog means feedback is falling behind execution).
func (e *Engine) FeedbackBacklog() int { return e.fb.backlog() }

// FeedbackDropped reports how many observations were discarded because the
// feedback queue was at capacity (drop-oldest under sustained overload).
func (e *Engine) FeedbackDropped() uint64 { return e.fb.dropped.Value() }
