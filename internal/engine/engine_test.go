package engine

import (
	"strings"
	"sync"
	"testing"

	"intellisphere/internal/cluster"
	"intellisphere/internal/core"
	"intellisphere/internal/core/logicalop"
	"intellisphere/internal/core/subop"
	"intellisphere/internal/datagen"
	"intellisphere/internal/nn"
	intplan "intellisphere/internal/plan"
	"intellisphere/internal/remote"
)

func newEngine(t *testing.T) *Engine {
	t.Helper()
	e, err := New(Config{Seed: 9})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return e
}

func registerHive(t *testing.T, e *Engine) remote.System {
	t.Helper()
	h, err := remote.NewHive("hive", cluster.DefaultHive(), remote.Options{NoiseAmp: 0.01, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.RegisterRemoteSubOp(h, remote.EngineHive, subop.InHouseComparable); err != nil {
		t.Fatalf("RegisterRemoteSubOp: %v", err)
	}
	return h
}

func registerTables(t *testing.T, e *Engine, system string, specs ...struct {
	rows int64
	size int
}) {
	t.Helper()
	for _, s := range specs {
		tb, err := datagen.Table(s.rows, s.size, system)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.RegisterTable(tb); err != nil {
			t.Fatal(err)
		}
	}
}

type ts = struct {
	rows int64
	size int
}

func TestNewEngineCalibratesMaster(t *testing.T) {
	e := newEngine(t)
	est, err := e.Estimator("teradata")
	if err != nil {
		t.Fatalf("Estimator: %v", err)
	}
	if est.Approach() != core.SubOp {
		t.Errorf("master approach = %v", est.Approach())
	}
	if got := e.Systems(); len(got) != 1 || got[0] != "teradata" {
		t.Errorf("Systems = %v", got)
	}
}

func TestRegisterRemoteValidation(t *testing.T) {
	e := newEngine(t)
	if err := e.RegisterRemote(nil, nil); err == nil {
		t.Error("nil remote accepted")
	}
	h := registerHive(t, e)
	// Duplicate registration.
	est, _ := e.Estimator("hive")
	if err := e.RegisterRemote(h, est); err == nil {
		t.Error("duplicate remote accepted")
	}
	// Reserved name.
	td, err := remote.NewHive("teradata", cluster.DefaultHive(), remote.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.RegisterRemote(td, est); err == nil {
		t.Error("reserved master name accepted")
	}
	if _, err := e.Remote("hive"); err != nil {
		t.Errorf("Remote(hive): %v", err)
	}
	if _, err := e.Remote("nope"); err == nil {
		t.Error("unknown remote lookup succeeded")
	}
	if _, err := e.Estimator("nope"); err == nil {
		t.Error("unknown estimator lookup succeeded")
	}
}

func TestRegisterTableChecksSystem(t *testing.T) {
	e := newEngine(t)
	tb, _ := datagen.Table(10000, 100, "ghost")
	if err := e.RegisterTable(tb); err == nil {
		t.Error("table referencing unregistered system accepted")
	}
	registerHive(t, e)
	tb2, _ := datagen.Table(10000, 100, "hive")
	if err := e.RegisterTable(tb2); err != nil {
		t.Errorf("RegisterTable: %v", err)
	}
	local, _ := datagen.Table(1000, 40, "")
	local.Name = "local_t"
	if err := e.RegisterTable(local); err != nil {
		t.Errorf("local table: %v", err)
	}
}

func TestExplainAndQueryScan(t *testing.T) {
	e := newEngine(t)
	registerHive(t, e)
	registerTables(t, e, "hive", ts{80000000, 1000})
	out, err := e.Explain("SELECT a1 FROM t80000000_1000 WHERE a1 < 60000000")
	if err != nil {
		t.Fatalf("Explain: %v", err)
	}
	if !strings.Contains(out, "plan (estimated") {
		t.Errorf("Explain output: %s", out)
	}
	res, err := e.Query("SELECT a1 FROM t80000000_1000 WHERE a1 < 60000000")
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if res.ActualSec <= 0 || len(res.StepActuals) != len(res.Plan.Steps) {
		t.Errorf("result = %+v", res)
	}
	if res.Rows != nil {
		t.Error("unmaterialized query returned rows")
	}
}

func TestQueryJoinEstimateAccuracy(t *testing.T) {
	e := newEngine(t)
	registerHive(t, e)
	registerTables(t, e, "hive", ts{80000000, 500}, ts{1000000, 100})
	res, err := e.Query("SELECT r.a1, s.a1 FROM t80000000_500 r JOIN t1000000_100 s ON r.a1 = s.a1 WHERE r.a1 + s.z < 500000")
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	// Find the join step and compare estimate to actual.
	for i, step := range res.Plan.Steps {
		if step.Kind != "join" {
			continue
		}
		ratio := step.EstimatedSec / res.StepActuals[i]
		if ratio < 0.5 || ratio > 2.5 {
			t.Errorf("join estimate %v vs actual %v (ratio %.2f)", step.EstimatedSec, res.StepActuals[i], ratio)
		}
	}
}

func TestQueryWithRows(t *testing.T) {
	e := newEngine(t)
	registerHive(t, e)
	registerTables(t, e, "hive", ts{10000, 100}, ts{100000, 100})
	for _, name := range []string{"t10000_100", "t100000_100"} {
		if err := e.Materialize(name); err != nil {
			t.Fatalf("Materialize(%s): %v", name, err)
		}
	}
	res, err := e.Query("SELECT r.a1 FROM t100000_100 r JOIN t10000_100 s ON r.a1 = s.a1 WHERE r.a1 + s.z < 2500")
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if res.Rows == nil {
		t.Fatal("materialized query returned no rows")
	}
	if len(res.Rows.Rows) != 2500 {
		t.Errorf("got %d rows, want 2500 (Figure 10 semantics)", len(res.Rows.Rows))
	}
	// Aggregation end to end.
	res, err = e.Query("SELECT a10, SUM(a1) FROM t10000_100 GROUP BY a10")
	if err != nil {
		t.Fatalf("agg Query: %v", err)
	}
	if res.Rows == nil || len(res.Rows.Rows) != 1000 {
		t.Errorf("agg rows = %v", res.Rows)
	}
}

func TestMaterializeErrors(t *testing.T) {
	e := newEngine(t)
	registerHive(t, e)
	if err := e.Materialize("missing"); err == nil {
		t.Error("materializing unknown table accepted")
	}
	registerTables(t, e, "hive", ts{80000000, 1000})
	if err := e.Materialize("t80000000_1000"); err == nil {
		t.Error("materializing a huge table accepted")
	}
}

func TestQueryErrors(t *testing.T) {
	e := newEngine(t)
	if _, err := e.Query("not sql"); err == nil {
		t.Error("bad SQL accepted")
	}
	if _, err := e.Query("SELECT a1 FROM missing"); err == nil {
		t.Error("unknown table accepted")
	}
	if _, err := e.Explain("not sql"); err == nil {
		t.Error("bad SQL accepted by Explain")
	}
}

func TestRegisterRemoteLogicalOp(t *testing.T) {
	// The blackbox flow: foreign tables are registered in the catalog
	// first (directly — the system isn't registered yet), then
	// RegisterRemoteLogicalOp executes the Figure 10 workloads over them,
	// trains the neural models, and registers the remote.
	e := newEngine(t)
	bb, err := remote.NewHive("hivebb", cluster.DefaultHive(), remote.Options{NoiseAmp: 0.01, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range []ts{{10000, 40}, {100000, 100}, {1000000, 250}, {40000, 500}} {
		tb, err := datagen.Table(spec.rows, spec.size, "hivebb")
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Catalog().Register(tb); err != nil {
			t.Fatal(err)
		}
	}
	fast := logicalop.DefaultConfig(4, 1)
	fast.NN.Train.Iterations = 150
	fastJoin := logicalop.DefaultConfig(7, 2)
	fastJoin.NN.Train.Iterations = 150
	est, rep, err := e.RegisterRemoteLogicalOp(bb, remote.EngineHive, LogicalTrainOptions{
		JoinPairs: 6, Agg: fast, Join: fastJoin, Seed: 5,
	})
	if err != nil {
		t.Fatalf("RegisterRemoteLogicalOp: %v", err)
	}
	if est.Active() != core.LogicalOp {
		t.Errorf("active approach = %v", est.Active())
	}
	if rep.AggQueries != 4*6*5 {
		t.Errorf("agg queries = %d, want 120", rep.AggQueries)
	}
	if rep.JoinQueries != 24 {
		t.Errorf("join queries = %d, want 24", rep.JoinQueries)
	}
	if rep.JoinTrainSec <= rep.AggTrainSec/10 {
		t.Errorf("join training (%v) suspiciously cheap vs agg (%v)", rep.JoinTrainSec, rep.AggTrainSec)
	}
	// The registered estimator answers queries end to end.
	out, err := e.Query("SELECT a10, SUM(a1) FROM t1000000_250 GROUP BY a10")
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if out.ActualSec <= 0 {
		t.Error("no actual time")
	}
}

func TestRegisterRemoteLogicalOpNeedsTables(t *testing.T) {
	e := newEngine(t)
	bb, _ := remote.NewHive("bb", cluster.DefaultHive(), remote.Options{})
	if _, _, err := e.RegisterRemoteLogicalOp(bb, remote.EngineHive, LogicalTrainOptions{}); err == nil {
		t.Error("training without tables accepted")
	}
}

func TestFeedbackReachesLogicalModels(t *testing.T) {
	e := newEngine(t)
	bb, err := remote.NewHive("hivebb", cluster.DefaultHive(), remote.Options{NoiseAmp: 0.01, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range []ts{{10000, 40}, {100000, 100}, {40000, 250}, {80000000, 500}} {
		tb, err := datagen.Table(spec.rows, spec.size, "hivebb")
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Catalog().Register(tb); err != nil {
			t.Fatal(err)
		}
	}
	cfg := logicalop.DefaultConfig(4, 1)
	cfg.NN.Train = nn.TrainConfig{Iterations: 100, Optimizer: nn.Adam, BatchSize: 32, Seed: 1}
	jcfg := logicalop.DefaultConfig(7, 2)
	jcfg.NN.Train = cfg.NN.Train
	est, _, err := e.RegisterRemoteLogicalOp(bb, remote.EngineHive, LogicalTrainOptions{JoinPairs: 4, Agg: cfg, Join: jcfg, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	prof := est.Profile()
	before := prof.LogicalAgg.PendingLog()
	// 80M × 500 B stays on hivebb (shipping 40 GB would dominate), so the
	// aggregation executes remotely and the actual cost is logged.
	if _, err := e.Query("SELECT a10, SUM(a1) FROM t80000000_500 GROUP BY a10"); err != nil {
		t.Fatal(err)
	}
	e.FlushFeedback()
	if prof.LogicalAgg.PendingLog() <= before {
		t.Error("execution feedback did not reach the logical model's log")
	}
}

func TestQueryOrderByLimitEndToEnd(t *testing.T) {
	e := newEngine(t)
	registerHive(t, e)
	registerTables(t, e, "hive", ts{10000, 100})
	if err := e.Materialize("t10000_100"); err != nil {
		t.Fatal(err)
	}
	res, err := e.Query("SELECT a10, SUM(a1) AS total FROM t10000_100 GROUP BY a10 ORDER BY total DESC LIMIT 5")
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	// The plan must include an executed sort step.
	foundSort := false
	for i, s := range res.Plan.Steps {
		if s.Kind == "sort" {
			foundSort = true
			if res.StepActuals[i] <= 0 {
				t.Errorf("sort actual = %v", res.StepActuals[i])
			}
		}
	}
	if !foundSort {
		t.Fatalf("no sort step executed\n%s", res.Plan.Explain())
	}
	if res.Rows == nil || len(res.Rows.Rows) != 5 {
		t.Fatalf("rows = %+v", res.Rows)
	}
	// Descending totals.
	for i := 1; i < len(res.Rows.Rows); i++ {
		if res.Rows.Rows[i][1] > res.Rows.Rows[i-1][1] {
			t.Error("results not sorted descending")
		}
	}
}

func TestProfileSaveAndRestore(t *testing.T) {
	e := newEngine(t)
	h := registerHive(t, e)
	dir := t.TempDir()
	path := dir + "/hive.json"
	if err := e.SaveProfile("hive", path); err != nil {
		t.Fatalf("SaveProfile: %v", err)
	}
	if err := e.SaveProfile("teradata", path); err == nil {
		t.Error("saving the master's non-profile estimator accepted")
	}
	if err := e.SaveProfile("ghost", path); err == nil {
		t.Error("saving unknown system accepted")
	}

	// A fresh engine restores the profile without re-training.
	e2 := newEngine(t)
	est, err := e2.RegisterRemoteFromProfile(h, path)
	if err != nil {
		t.Fatalf("RegisterRemoteFromProfile: %v", err)
	}
	if est.Active() != core.SubOp {
		t.Errorf("restored approach = %v", est.Active())
	}
	registerTables(t, e2, "hive", ts{1000000, 100})
	if _, err := e2.Query("SELECT a1 FROM t1000000_100 WHERE a1 < 100"); err != nil {
		t.Fatalf("query on restored profile: %v", err)
	}

	// Mismatched system name must be rejected.
	other, err := remote.NewHive("other", cluster.DefaultHive(), remote.Options{})
	if err != nil {
		t.Fatal(err)
	}
	e3 := newEngine(t)
	if _, err := e3.RegisterRemoteFromProfile(other, path); err == nil {
		t.Error("profile/system name mismatch accepted")
	}
	if _, err := e3.RegisterRemoteFromProfile(h, dir+"/missing.json"); err == nil {
		t.Error("missing profile file accepted")
	}
}

func TestCalibrateLink(t *testing.T) {
	e := newEngine(t)
	registerHive(t, e)
	link := &querygridSimLink{}
	cfg, err := e.CalibrateLink("hive", link.measure)
	if err != nil {
		t.Fatalf("CalibrateLink: %v", err)
	}
	if cfg.BandwidthBytesPerSec < 2e8 || cfg.BandwidthBytesPerSec > 3e8 {
		t.Errorf("calibrated bandwidth = %v, truth 2.5e8", cfg.BandwidthBytesPerSec)
	}
	// Unknown system rejected.
	if _, err := e.CalibrateLink("ghost", link.measure); err == nil {
		t.Error("calibrating unknown system accepted")
	}
}

// querygridSimLink is a fast 2 Gbit/s link with hidden truth.
type querygridSimLink struct{}

func (querygridSimLink) measure(rows, rowSize float64) (float64, error) {
	return 0.2 + rows*rowSize/2.5e8 + rows*0.1/1e6, nil
}

func TestTuneSystem(t *testing.T) {
	e := newEngine(t)
	bb, err := remote.NewHive("hivebb", cluster.DefaultHive(), remote.Options{NoiseAmp: 0.01, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range []ts{{10000, 40}, {100000, 100}, {40000, 250}, {80000000, 500}} {
		tb, err := datagen.Table(spec.rows, spec.size, "hivebb")
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Catalog().Register(tb); err != nil {
			t.Fatal(err)
		}
	}
	cfg := logicalop.DefaultConfig(4, 1)
	cfg.NN.Train = nn.TrainConfig{Iterations: 100, Optimizer: nn.Adam, BatchSize: 32, Seed: 1}
	jcfg := logicalop.DefaultConfig(7, 2)
	jcfg.NN.Train = cfg.NN.Train
	est, _, err := e.RegisterRemoteLogicalOp(bb, remote.EngineHive, LogicalTrainOptions{JoinPairs: 4, Agg: cfg, Join: jcfg, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// No pending logs yet: tuning is a no-op.
	rep, err := e.TuneSystem("hivebb", nn.TrainConfig{Iterations: 50, Optimizer: nn.Adam, Seed: 3})
	if err != nil {
		t.Fatalf("TuneSystem: %v", err)
	}
	if rep.JoinTuned || rep.AggTuned {
		t.Errorf("tuning without logs reported work: %+v", rep)
	}
	// Execute a remote query to populate the log, then tune. TuneSystem
	// flushes the async feedback queue itself, so no explicit flush is
	// needed before it; flush here only to assert the log filled.
	if _, err := e.Query("SELECT a10, SUM(a1) FROM t80000000_500 GROUP BY a10"); err != nil {
		t.Fatal(err)
	}
	e.FlushFeedback()
	if est.Profile().LogicalAgg.PendingLog() == 0 {
		t.Fatal("no pending log after query")
	}
	rep, err = e.TuneSystem("hivebb", nn.TrainConfig{Iterations: 50, Optimizer: nn.Adam, BatchSize: 32, Seed: 3})
	if err != nil {
		t.Fatalf("TuneSystem: %v", err)
	}
	if !rep.AggTuned {
		t.Errorf("aggregation model not tuned: %+v", rep)
	}
	if rep.AggAlpha <= 0 || rep.AggAlpha > 1 {
		t.Errorf("AggAlpha = %v, want a refit value in (0, 1]", rep.AggAlpha)
	}
	if rep.JoinAlpha != 0 || rep.ScanAlpha != 0 {
		t.Errorf("untuned models reported α: %+v", rep)
	}
	if est.Profile().LogicalAgg.PendingLog() != 0 {
		t.Error("log not consumed by tuning")
	}
	// Non-profile systems are rejected.
	if _, err := e.TuneSystem("teradata", nn.TrainConfig{}); err == nil {
		t.Error("tuning the master accepted")
	}
	if _, err := e.TuneSystem("ghost", nn.TrainConfig{}); err == nil {
		t.Error("tuning unknown system accepted")
	}
}

func TestConcurrentQueries(t *testing.T) {
	// Estimators and the engine must be safe for the optimizer's concurrent
	// use — the paper's master plans many queries at once.
	e := newEngine(t)
	registerHive(t, e)
	registerTables(t, e, "hive",
		ts{1000000, 100}, ts{100000, 100}, ts{10000000, 250}, ts{80000000, 500})
	queries := []string{
		"SELECT a1 FROM t1000000_100 WHERE a1 < 1000",
		"SELECT a10, SUM(a1) FROM t10000000_250 GROUP BY a10",
		"SELECT r.a1 FROM t80000000_500 r JOIN t100000_100 s ON r.a1 = s.a1",
		"SELECT a1 FROM t100000_100 ORDER BY a1 DESC LIMIT 5",
	}
	var wg sync.WaitGroup
	errs := make(chan error, len(queries)*4)
	for round := 0; round < 4; round++ {
		for _, sql := range queries {
			wg.Add(1)
			go func(sql string) {
				defer wg.Done()
				if _, err := e.Query(sql); err != nil {
					errs <- err
				}
			}(sql)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("concurrent query failed: %v", err)
	}
}

func TestRegisterRemoteLogicalOpWithScan(t *testing.T) {
	e := newEngine(t)
	bb, err := remote.NewHive("hivebb", cluster.DefaultHive(), remote.Options{NoiseAmp: 0.01, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range []ts{{10000, 40}, {100000, 100}, {1000000, 250}} {
		tb, err := datagen.Table(spec.rows, spec.size, "hivebb")
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Catalog().Register(tb); err != nil {
			t.Fatal(err)
		}
	}
	fast := logicalop.DefaultConfig(4, 1)
	fast.NN.Train.Iterations = 150
	fastJoin := logicalop.DefaultConfig(7, 2)
	fastJoin.NN.Train.Iterations = 150
	est, rep, err := e.RegisterRemoteLogicalOp(bb, remote.EngineHive, LogicalTrainOptions{
		JoinPairs: 3, TrainScan: true, Agg: fast, Join: fastJoin, Scan: fast, Seed: 6,
	})
	if err != nil {
		t.Fatalf("RegisterRemoteLogicalOp: %v", err)
	}
	// 3 tables × 4 selectivities × 2 projections = 24 scan queries.
	if rep.ScanQueries != 24 {
		t.Errorf("scan queries = %d, want 24", rep.ScanQueries)
	}
	if rep.ScanResult == nil || rep.ScanTrainSec <= 0 {
		t.Errorf("scan report = %+v", rep)
	}
	if est.Profile().LogicalScan == nil {
		t.Fatal("scan model not installed in the profile")
	}
	// The scan model answers estimates end to end.
	ce, err := est.EstimateScan(intplan.ScanSpec{InputRows: 5e5, InputRowSize: 100, Selectivity: 0.5, OutputRowSize: 8})
	if err != nil {
		t.Fatalf("EstimateScan: %v", err)
	}
	if ce.Approach != core.LogicalOp || ce.Seconds <= 0 {
		t.Errorf("estimate = %+v", ce)
	}
}

func TestQueryThreeWayJoinEndToEnd(t *testing.T) {
	e := newEngine(t)
	registerHive(t, e)
	registerTables(t, e, "hive", ts{200000, 100}, ts{100000, 100}, ts{10000, 100})
	for _, name := range []string{"t200000_100", "t100000_100", "t10000_100"} {
		if err := e.Materialize(name); err != nil {
			t.Fatal(err)
		}
	}
	res, err := e.Query("SELECT r.a1 FROM t200000_100 r JOIN t100000_100 s ON r.a1 = s.a1 JOIN t10000_100 u ON s.a1 = u.a1 WHERE r.a1 + u.z < 2500")
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if res.Rows == nil || len(res.Rows.Rows) != 2500 {
		t.Fatalf("rows = %v, want 2500", len(res.Rows.Rows))
	}
	joins := 0
	for _, s := range res.Plan.Steps {
		if s.Kind == "join" {
			joins++
		}
	}
	if joins != 2 {
		t.Errorf("executed %d join steps, want 2\n%s", joins, res.Plan.Explain())
	}
}
