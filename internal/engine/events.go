package engine

import (
	"sort"
	"time"

	"intellisphere/internal/obs"
	"intellisphere/internal/optimizer"
)

// SetEventRecorder attaches (or, with nil, detaches) the wide-event
// recorder. Safe to call at any time; in-flight queries observe the old
// value. While no recorder is attached the serving path pays one atomic
// load per query and nothing else.
func (e *Engine) SetEventRecorder(r *obs.Recorder) {
	e.events.Store(r)
}

// EventRecorder returns the attached recorder (nil when events are off).
func (e *Engine) EventRecorder() *obs.Recorder { return e.events.Load() }

// emitEvent feeds the recorder at query completion: every query observes
// the end-to-end latency histogram, then the sampler decides whether this
// one becomes a wide event. The event struct (and the statement hash) is
// only built after a positive sampling decision, so skipped queries
// allocate nothing here.
func (e *Engine) emitEvent(rec *obs.Recorder, kind, sql string, res *QueryResult, err error, lat time.Duration, traceID uint64) {
	rec.Observe(lat, traceID)
	capture, ok := rec.Sample(err != nil, lat)
	if !ok {
		return
	}
	ev := &obs.Event{
		UnixNano:   time.Now().UnixNano(),
		Kind:       kind,
		Capture:    capture,
		SQL:        sql,
		StmtHash:   obs.StatementHash(sql),
		Outcome:    "ok",
		LatencySec: lat.Seconds(),
		TraceID:    traceID,
	}
	if err != nil {
		ev.Outcome = "error"
		ev.Error = err.Error()
	}
	if res != nil {
		ev.CacheHit = res.CacheHit
		ev.ActualSec = res.ActualSec
		ev.Retries = res.Retries
		ev.Degraded = res.Degraded
		if res.Plan != nil {
			ev.EstimatedSec = res.Plan.EstimatedSec
			ev.Systems = planSystems(res.Plan)
		}
	}
	rec.Record(ev)
}

// planSystems lists the distinct systems a plan places steps on, sorted.
// Transfer steps contribute both endpoints.
func planSystems(p *optimizer.Plan) []string {
	seen := make(map[string]bool, 4)
	for i := range p.Steps {
		st := &p.Steps[i]
		if st.System != "" {
			seen[st.System] = true
		}
		if st.From != "" {
			seen[st.From] = true
		}
	}
	out := make([]string, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}
