package engine

import (
	"context"
	"testing"
	"time"

	"intellisphere/internal/obs"
)

// TestQueryEmitsWideEvents attaches a capture-everything recorder and pins
// the wide-event fields the serving path fills in: statement hash, outcome,
// chosen systems, estimate vs actual, cache-hit flag on a repeat statement,
// and the error path's always-capture.
func TestQueryEmitsWideEvents(t *testing.T) {
	e := newEngine(t)
	registerHive(t, e)
	registerTables(t, e, "hive", ts{100000, 100})
	rec := obs.NewRecorder(obs.RecorderConfig{SampleRate: 1})
	e.SetEventRecorder(rec)
	if e.EventRecorder() != rec {
		t.Fatal("recorder did not attach")
	}

	sql := "SELECT a5, COUNT(a1) FROM t100000_100 GROUP BY a5"
	res, err := e.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	evs := rec.Ring().Recent(1)
	if len(evs) != 1 {
		t.Fatalf("recorded %d events, want 1", len(evs))
	}
	ev := evs[0]
	if ev.Kind != "query" || ev.Outcome != "ok" || ev.Capture != "head" {
		t.Errorf("event header = %s/%s/%s", ev.Kind, ev.Outcome, ev.Capture)
	}
	if ev.SQL != sql || ev.StmtHash != obs.StatementHash(sql) || len(ev.StmtHash) != 16 {
		t.Errorf("statement identity = %q / hash %q", ev.SQL, ev.StmtHash)
	}
	if ev.CacheHit {
		t.Error("first statement flagged as a plan-cache hit")
	}
	if len(ev.Systems) == 0 {
		t.Errorf("event lists no systems: %+v", ev)
	}
	if ev.EstimatedSec != res.Plan.EstimatedSec || ev.ActualSec != res.ActualSec {
		t.Errorf("costs = %v/%v, want %v/%v", ev.EstimatedSec, ev.ActualSec, res.Plan.EstimatedSec, res.ActualSec)
	}
	if ev.LatencySec <= 0 || ev.Error != "" || ev.TraceID != 0 {
		t.Errorf("latency/error/trace = %v/%q/%d", ev.LatencySec, ev.Error, ev.TraceID)
	}

	// The repeat is served from the plan cache and the event says so.
	if _, err := e.Query(sql); err != nil {
		t.Fatal(err)
	}
	if evs = rec.Ring().Recent(1); !evs[0].CacheHit {
		t.Error("repeat statement not flagged as cache hit")
	}

	// A traced query carries its trace ID so the event correlates to /trace.
	_, tr, err := e.QueryTraced(context.Background(), sql)
	if err != nil {
		t.Fatal(err)
	}
	if evs = rec.Ring().Recent(1); evs[0].TraceID != tr.ID || tr.ID == 0 {
		t.Errorf("event trace ID = %d, trace ID = %d", evs[0].TraceID, tr.ID)
	}

	// A failing statement is always captured, with the error attached.
	if _, err := e.Query("SELECT nope FROM missing"); err == nil {
		t.Fatal("bad statement succeeded")
	}
	ev = rec.Ring().Recent(1)[0]
	if ev.Outcome != "error" || ev.Capture != "error" || ev.Error == "" {
		t.Errorf("error event = %s/%s/%q", ev.Outcome, ev.Capture, ev.Error)
	}

	// Batch slots each emit an event with the batch kind.
	before := rec.Ring().Count()
	for _, item := range e.QueryBatch(context.Background(), []string{sql, sql}) {
		if item.Err != nil {
			t.Fatal(item.Err)
		}
	}
	if got := rec.Ring().Count() - before; got != 2 {
		t.Errorf("batch of 2 emitted %d events", got)
	}
	for _, ev := range rec.Ring().Recent(2) {
		if ev.Kind != "batch" {
			t.Errorf("batch event kind = %q", ev.Kind)
		}
	}

	// Detaching restores the recorder-free path; nothing further records.
	e.SetEventRecorder(nil)
	before = rec.Ring().Count()
	if _, err := e.Query(sql); err != nil {
		t.Fatal(err)
	}
	if rec.Ring().Count() != before {
		t.Error("detached recorder still receives events")
	}
}

// TestEventSamplingAlwaysKeepsErrorsAndSlow pins the sampler contract: with
// 1-in-N head sampling, errors and over-threshold queries bypass the
// counter while ordinary queries are decimated.
func TestEventSamplingAlwaysKeepsErrorsAndSlow(t *testing.T) {
	e := newEngine(t)
	registerHive(t, e)
	registerTables(t, e, "hive", ts{100000, 100})
	rec := obs.NewRecorder(obs.RecorderConfig{SampleRate: 0.01, SlowThreshold: time.Hour})
	e.SetEventRecorder(rec)

	sql := "SELECT a1 FROM t100000_100 WHERE a1 < 100"
	for i := 0; i < 50; i++ {
		if _, err := e.Query(sql); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.Query("SELECT nope FROM missing"); err == nil {
		t.Fatal("bad statement succeeded")
	}
	st := rec.Stats()
	if st.Errors != 1 {
		t.Errorf("error captures = %d, want 1", st.Errors)
	}
	if st.Captured >= 51 || st.Skipped == 0 {
		t.Errorf("head sampling at 1%% captured %d of 51 (skipped %d)", st.Captured, st.Skipped)
	}
	// Every query still feeds the latency histogram even when skipped.
	if got := rec.LatencySnapshot().Count; got != 51 {
		t.Errorf("latency observations = %d, want 51", got)
	}
}
