package engine

import (
	"context"
	"testing"

	"intellisphere/internal/cluster"
	"intellisphere/internal/core/subop"
	"intellisphere/internal/datagen"
	"intellisphere/internal/remote"
)

// batchFixture builds one deterministic single-remote federation. Two
// fixtures built from identical inputs serve identical results, so one can
// answer a batch while the other answers the same statements sequentially.
func batchFixture(t *testing.T) *Engine {
	t.Helper()
	e := newEngine(t)
	registerHive(t, e)
	registerTables(t, e, "hive", ts{10000, 100}, ts{100000, 100}, ts{1000000, 250})
	if err := e.Materialize("t10000_100"); err != nil {
		t.Fatal(err)
	}
	return e
}

var batchSQLs = []string{
	"SELECT a1 FROM t10000_100 WHERE a1 < 100",
	"SELECT a2, COUNT(*) FROM t100000_100 GROUP BY a2",
	"SELECT r.a1 FROM t1000000_250 r JOIN t100000_100 s ON r.a1 = s.a1",
	"SELECT a1 FROM t10000_100 WHERE a1 < 100", // duplicate of 0
	"SELECT a1 FROM t100000_100",
}

// QueryBatch must return, per statement, exactly what sequential Query
// calls return — plans, estimates, simulated actuals, and rows.
func TestQueryBatchMatchesSequential(t *testing.T) {
	batched := batchFixture(t)
	sequential := batchFixture(t)

	items := batched.QueryBatch(context.Background(), batchSQLs)
	if len(items) != len(batchSQLs) {
		t.Fatalf("got %d items for %d statements", len(items), len(batchSQLs))
	}
	for i, sql := range batchSQLs {
		want, err := sequential.Query(sql)
		if err != nil {
			t.Fatalf("Query(%q): %v", sql, err)
		}
		it := items[i]
		if it.Err != nil {
			t.Fatalf("batch[%d] (%q): %v", i, sql, it.Err)
		}
		if it.Res.Plan.Explain() != want.Plan.Explain() {
			t.Errorf("statement %d: plans differ\nbatch:\n%s\nsequential:\n%s",
				i, it.Res.Plan.Explain(), want.Plan.Explain())
		}
		if it.Res.ActualSec != want.ActualSec {
			t.Errorf("statement %d: actual %v, sequential %v", i, it.Res.ActualSec, want.ActualSec)
		}
		if len(it.Res.StepActuals) != len(want.StepActuals) {
			t.Fatalf("statement %d: %d step actuals, sequential %d",
				i, len(it.Res.StepActuals), len(want.StepActuals))
		}
		for j := range want.StepActuals {
			if it.Res.StepActuals[j] != want.StepActuals[j] {
				t.Errorf("statement %d step %d: actual %v, sequential %v",
					i, j, it.Res.StepActuals[j], want.StepActuals[j])
			}
		}
		if (it.Res.Rows == nil) != (want.Rows == nil) {
			t.Errorf("statement %d: rows presence differs", i)
		}
	}
	if q := batched.Stats().Queries; q != uint64(len(batchSQLs)) {
		t.Errorf("batch counted %d queries, want %d", q, len(batchSQLs))
	}
}

// A failing statement fails only its own slot.
func TestQueryBatchPerStatementErrors(t *testing.T) {
	e := batchFixture(t)
	items := e.QueryBatch(context.Background(), []string{
		"SELECT a1 FROM t10000_100",
		"NOT SQL AT ALL",
		"SELECT a1 FROM missing_table",
		"SELECT a1 FROM t100000_100",
	})
	if items[0].Err != nil || items[3].Err != nil {
		t.Errorf("healthy statements failed: %v / %v", items[0].Err, items[3].Err)
	}
	if items[1].Err == nil || items[2].Err == nil {
		t.Errorf("bad statements accepted: %v / %v", items[1].Err, items[2].Err)
	}
	if e.Stats().QueryErrors != 2 {
		t.Errorf("query errors = %d, want 2", e.Stats().QueryErrors)
	}
}

// Batches from many goroutines share the engine safely (run under -race).
func TestQueryBatchConcurrent(t *testing.T) {
	e := batchFixture(t)
	done := make(chan error, 4)
	for g := 0; g < 4; g++ {
		go func() {
			for i := 0; i < 3; i++ {
				for _, it := range e.QueryBatch(context.Background(), batchSQLs) {
					if it.Err != nil {
						done <- it.Err
						return
					}
				}
			}
			done <- nil
		}()
	}
	for g := 0; g < 4; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if q := e.Stats().Queries; q != uint64(4*3*len(batchSQLs)) {
		t.Errorf("queries = %d, want %d", q, 4*3*len(batchSQLs))
	}
}

// BenchmarkServeQueryBatch measures the serving-side amortization: the same
// statement mix answered by N sequential Query calls versus one QueryBatch.
// The batch path parses once per distinct text, consults the plan cache once
// per distinct shape, and pools estimator calls per (system, operator kind).
func BenchmarkServeQueryBatch(b *testing.B) {
	build := func(b *testing.B) *Engine {
		b.Helper()
		e, err := New(Config{Seed: 9})
		if err != nil {
			b.Fatal(err)
		}
		h, err := remote.NewHive("hive", cluster.DefaultHive(), remote.Options{NoiseAmp: 0.01, Seed: 3})
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := e.RegisterRemoteSubOp(h, remote.EngineHive, subop.InHouseComparable); err != nil {
			b.Fatal(err)
		}
		for _, spec := range []ts{{10000, 100}, {100000, 100}, {1000000, 250}} {
			tb, err := datagen.Table(spec.rows, spec.size, "hive")
			if err != nil {
				b.Fatal(err)
			}
			if err := e.RegisterTable(tb); err != nil {
				b.Fatal(err)
			}
		}
		return e
	}
	sqls := make([]string, 0, 16)
	for i := 0; i < 16; i++ {
		sqls = append(sqls, batchSQLs[i%len(batchSQLs)])
	}
	b.Run("sequential", func(b *testing.B) {
		e := build(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, sql := range sqls {
				if _, err := e.Query(sql); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("batch", func(b *testing.B) {
		e := build(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, it := range e.QueryBatch(context.Background(), sqls) {
				if it.Err != nil {
					b.Fatal(it.Err)
				}
			}
		}
	})
}
